DUNE ?= dune

.PHONY: all build test fmt fmt-check bench bench-smoke clean

all: build

build:
	$(DUNE) build

test:
	$(DUNE) runtest

fmt:
	$(DUNE) fmt

fmt-check:
	$(DUNE) build @fmt

# Full experiment sweep; writes one BENCH_<id>.json per experiment.
bench:
	$(DUNE) exec bench/main.exe

# End-to-end smoke of the machine-readable bench output: two cheap
# experiments at reduced scale, then a schema check of the emitted
# BENCH_<id>.json files.
bench-smoke:
	$(DUNE) exec bench/main.exe -- --small R1 M1
	$(DUNE) exec bin/sintra_cli.exe -- bench-check BENCH_R1.json BENCH_M1.json

clean:
	$(DUNE) clean
	rm -f BENCH_*.json
