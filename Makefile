DUNE ?= dune

.PHONY: all build test fmt fmt-check bench bench-num bench-num-smoke bench-check bench-smoke perf-diff faults faults-smoke link-smoke link-bless tput tput-smoke tput-bless flight flight-smoke flight-bless recov recov-smoke refresh refresh-smoke svc svc-smoke svc-bless schedule-search check clean

all: build

build:
	$(DUNE) build

test:
	$(DUNE) runtest

fmt:
	$(DUNE) fmt

fmt-check:
	$(DUNE) build @fmt

# Full experiment sweep; writes one BENCH_<id>.json per experiment.
bench:
	$(DUNE) exec bench/main.exe

# Modular-arithmetic micro-benchmarks (naive vs Montgomery-window
# pow_mod, fixed-base exp_g, exp2); writes BENCH_NUM.json.
bench-num:
	$(DUNE) exec bin/sintra_cli.exe -- bench-num
	$(DUNE) exec bin/sintra_cli.exe -- bench-check BENCH_NUM.json

# Schema check of every BENCH_*.json in the working directory.
bench-check:
	$(DUNE) exec bin/sintra_cli.exe -- bench-check

# Quick kernel micro-bench (including the DLEQ batch-verification
# sweep) to a scratch file, then the schema/invariant check.  Writes
# BENCH_NUM_SMOKE.json so the committed full-run BENCH_NUM.json is
# never clobbered with 0.02 s-window numbers; quick runs are held to
# relaxed thresholds by bench-check.
bench-num-smoke:
	$(DUNE) exec bin/sintra_cli.exe -- bench-num --quick --out BENCH_NUM_SMOKE.json
	$(DUNE) exec bin/sintra_cli.exe -- bench-check BENCH_NUM_SMOKE.json

# End-to-end smoke of the machine-readable bench output: two cheap
# experiments at reduced scale, then a schema check of the emitted
# BENCH_<id>.json files.
bench-smoke:
	$(DUNE) exec bench/main.exe -- --small R1 M1
	$(DUNE) exec bin/sintra_cli.exe -- bench-check BENCH_R1.json BENCH_M1.json

# Per-counter deltas between two bench JSON files:
#   make perf-diff A=BENCH_R2.baseline.json B=BENCH_R2.json
perf-diff:
	$(DUNE) exec bin/sintra_cli.exe -- perf-diff $(A) $(B)

# Full fault-injection campaign: 50 seeds x {drop, dup-reorder,
# partition} x {silent, crash, byzantine} over ABBA and ABC, with a
# maximal corrupted set per run.  Writes FAULTS_CAMPAIGN.json; exits
# non-zero on any safety violation (or liveness loss under a reliable
# policy).
faults:
	$(DUNE) exec bin/sintra_cli.exe -- faults --seeds 50
	$(DUNE) exec bin/sintra_cli.exe -- bench-check FAULTS_CAMPAIGN.json

# CI-sized campaign (5 seeds per cell) plus a schema check of the
# emitted sintra-faults/1 report; fails on any gating violation.
faults-smoke:
	$(DUNE) exec bin/sintra_cli.exe -- faults --quick --out SMOKE
	$(DUNE) exec bin/sintra_cli.exe -- bench-check FAULTS_SMOKE.json

# Fast lossy-gating sweep: 10 seeds per cell at 30% probabilistic drop
# with the reliable link layer on.  Under --link the drop policy is
# liveness-gating, so any honest party left undecided fails the
# campaign, bench-check re-verifies the same invariant from the emitted
# report, and the regression gate diffs retransmit/decide-time counters
# against the blessed baseline (seeded virtual-time runs reproduce the
# baseline on an unchanged tree).
link-smoke:
	$(DUNE) exec bin/sintra_cli.exe -- faults --seeds 10 --policies drop --drop-rate 0.3 --link --out LINK_SMOKE
	$(DUNE) exec bin/sintra_cli.exe -- bench-check FAULTS_LINK_SMOKE.json
	$(DUNE) exec bin/sintra_cli.exe -- compare baselines/FAULTS_LINK_BASELINE.json FAULTS_LINK_SMOKE.json

# Re-bless the checked-in link-campaign baseline after an intentional
# behaviour change (same config as link-smoke; commit the result).
link-bless:
	$(DUNE) exec bin/sintra_cli.exe -- faults --seeds 10 --policies drop --drop-rate 0.3 --link --out LINK_BASELINE
	mv FAULTS_LINK_BASELINE.json baselines/FAULTS_LINK_BASELINE.json

# Throughput sweep: batching x pipelining on the R2 config (n=4, t=1);
# writes BENCH_TPUT.json (payloads/round, bytes/round, decided payloads
# per 1k sim steps, per-policy progress curves), then validates the
# tput-specific invariants (non-zero rounds, monotone delivered counts).
tput:
	$(DUNE) exec bench/main.exe -- TPUT
	$(DUNE) exec bin/sintra_cli.exe -- bench-check BENCH_TPUT.json

# CI-sized throughput sweep (24 payloads instead of 64) plus the same
# schema and invariant checks, then the regression diff against the
# blessed baseline (virtual-time metrics, byte-stable on an unchanged
# tree).
tput-smoke:
	$(DUNE) exec bench/main.exe -- --small TPUT
	$(DUNE) exec bin/sintra_cli.exe -- bench-check BENCH_TPUT.json
	$(DUNE) exec bin/sintra_cli.exe -- compare baselines/BENCH_TPUT_BASELINE.json BENCH_TPUT.json

# Re-bless the checked-in throughput baseline after an intentional
# behaviour change (same config as tput-smoke; commit the result).
tput-bless:
	$(DUNE) exec bench/main.exe -- --small TPUT
	mv BENCH_TPUT.json baselines/BENCH_TPUT_BASELINE.json

# Full flight recording: the default campaign under the flight
# recorder; writes FLIGHT_CAMPAIGN.json (per-cell histograms, layer
# rollups, worst-run pointers, anomaly windows) and schema-checks it.
flight:
	$(DUNE) exec bin/sintra_cli.exe -- record --seeds 10 --out CAMPAIGN
	$(DUNE) exec bin/sintra_cli.exe -- bench-check FLIGHT_CAMPAIGN.json

# CI-sized recording plus the regression gate: record 3 seeds per cell,
# schema-check the FLIGHT file, then diff it against the blessed
# baseline.  FLIGHT files are derived from seeded virtual-time runs
# only, so an unchanged tree reproduces the baseline byte-for-byte and
# any strict regression (safety, gating liveness, decided counts) or
# >10% thresholded drift exits non-zero.
flight-smoke:
	$(DUNE) exec bin/sintra_cli.exe -- record --seeds 3 --quiet --out SMOKE
	$(DUNE) exec bin/sintra_cli.exe -- bench-check FLIGHT_SMOKE.json
	$(DUNE) exec bin/sintra_cli.exe -- compare baselines/FLIGHT_BASELINE.json FLIGHT_SMOKE.json

# Re-bless the checked-in baseline after an intentional behaviour
# change (same config as flight-smoke; commit the result).
flight-bless:
	$(DUNE) exec bin/sintra_cli.exe -- record --seeds 3 --quiet --out BASELINE
	mv FLIGHT_BASELINE.json baselines/FLIGHT_BASELINE.json

# Full crash-recovery campaign: 50 seeds x {crash-rejoin,
# partition-heal} x {plain, forged-server}, one replica knocked out
# mid-stream under 30% drop with the link on and required to rejoin the
# whole order via certified state transfer, plus the bounded-memory
# probe (checkpoint GC on vs off).  Writes RECOV_RECOVERY.json; exits
# non-zero on any safety violation, unrecovered victim, unwitnessed
# forgery, or unbounded delivered log.
recov:
	$(DUNE) exec bin/sintra_cli.exe -- recover --seeds 50
	$(DUNE) exec bin/sintra_cli.exe -- bench-check RECOV_RECOVERY.json

# CI-sized recovery campaign (3 seeds per cell) plus the schema /
# invariant check of the emitted sintra-recov/1 report.
recov-smoke:
	$(DUNE) exec bin/sintra_cli.exe -- recover --quick --payloads 12 --out SMOKE
	$(DUNE) exec bin/sintra_cli.exe -- bench-check RECOV_SMOKE.json

# Full epoch-reconfiguration campaign: 50 seeds x {refresh-only,
# add-replica, kill-and-replace} x {benign, lossy, byz-refresher} —
# proactive share refresh and membership change agreed through the
# service's own total order while a payload stream is in flight.
# Writes EPOCH_EPOCH.json; exits non-zero on any safety violation,
# incomplete reconfiguration, public-key drift, still-live old shares,
# missing reply certificates, or an unexcluded equivocating refresher.
refresh:
	$(DUNE) exec bin/sintra_cli.exe -- refresh --seeds 50
	$(DUNE) exec bin/sintra_cli.exe -- bench-check EPOCH_EPOCH.json

# CI-sized epoch campaign (2 seeds per cell, all scenarios and
# variants) plus the schema / invariant check of the emitted
# sintra-epoch/1 report.
refresh-smoke:
	$(DUNE) exec bin/sintra_cli.exe -- refresh --quick --payloads 12 --out SMOKE
	$(DUNE) exec bin/sintra_cli.exe -- bench-check EPOCH_SMOKE.json

# Full sustained-load service campaign: >= 100k requests (8 cells x
# 13k: {ca, directory, notary} x {benign, drop-arq, crash-rejoin},
# notary skipping crash-rejoin) driven by closed-loop clients through
# the whole request pipeline — ordered submissions, threshold reply
# certificates, the read-only fast path, resend-based loss recovery —
# with checkpoint GC keeping the delivered log bounded.  Writes
# BENCH_SVC.json (sintra-svc/1); exits non-zero on any safety
# violation, missed quota, certificate failure, cold fast path, or
# unbounded delivered log.
svc:
	$(DUNE) exec bin/sintra_cli.exe -- svc
	$(DUNE) exec bin/sintra_cli.exe -- bench-check BENCH_SVC.json

# CI-sized service campaign (1 seed, 48 requests per cell, all kinds
# and variants), schema/invariant check, then the regression gate
# against the blessed baseline: sintra-svc/1 metrics are derived from
# seeded virtual-time runs, so an unchanged tree reproduces the
# baseline and any strict regression (safety, certificate failures,
# missed requests) or >10% thresholded drift (requests per 1k steps,
# fast-path rate, log peak, retries) exits non-zero.
svc-smoke:
	$(DUNE) exec bin/sintra_cli.exe -- svc --quick --out SMOKE
	$(DUNE) exec bin/sintra_cli.exe -- bench-check BENCH_SVC_SMOKE.json
	$(DUNE) exec bin/sintra_cli.exe -- compare baselines/BENCH_SVC_BASELINE.json BENCH_SVC_SMOKE.json

# Re-bless the checked-in service-throughput baseline after an
# intentional behaviour change (same config as svc-smoke; commit the
# result).
svc-bless:
	$(DUNE) exec bin/sintra_cli.exe -- svc --quick --out BASELINE
	mv BENCH_SVC_BASELINE.json baselines/BENCH_SVC_BASELINE.json

# Adversarial schedule search over chaos genomes (hill-climb, seeded):
# maximises steps-to-decide and the link back-pressure peak, archiving
# the worst schedules found as replayable fixtures under
# test/fixtures/.  Exits non-zero if any evaluated schedule ever cost
# safety.
schedule-search:
	$(DUNE) exec bin/sintra_cli.exe -- search --objective decide-time --iters 12 --top 2 --out-dir test/fixtures
	$(DUNE) exec bin/sintra_cli.exe -- search --objective buffer-peak --iters 12 --top 2 --link --out-dir test/fixtures

# Aggregate CI gate: build, unit/property tests, and every smoke sweep,
# including the kernel micro-bench with its batch-verification gate and
# the flight-recorder regression diff against the blessed baseline.
check: build test bench-smoke bench-num-smoke faults-smoke link-smoke tput-smoke flight-smoke recov-smoke refresh-smoke svc-smoke

clean:
	$(DUNE) clean
	rm -f BENCH_*.json FAULTS_*.json FLIGHT_*.json RECOV_*.json EPOCH_*.json
