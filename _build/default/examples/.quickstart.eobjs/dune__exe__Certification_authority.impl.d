examples/certification_authority.ml: Adversary_structure Ca Codec Keyring Metrics Printf Service Sha256 Sim String
