examples/fair_exchange_demo.ml: Adversary_structure Codec Fair_exchange Keyring Printf Service Sim String
