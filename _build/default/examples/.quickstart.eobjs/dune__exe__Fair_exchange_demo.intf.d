examples/fair_exchange_demo.mli:
