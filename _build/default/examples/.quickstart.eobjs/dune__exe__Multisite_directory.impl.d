examples/multisite_directory.ml: Adversary_structure Array Canonical_structures Directory_service Keyring Metrics Printf Pset Service Sim
