examples/multisite_directory.mli:
