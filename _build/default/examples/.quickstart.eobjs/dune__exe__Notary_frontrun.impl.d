examples/notary_frontrun.ml: Abc Adversary_structure Array Keyring Notary Printf Scabc Service Sha256 Sim String
