examples/notary_frontrun.mli:
