examples/optimistic_ordering.ml: Adversary_structure Array Keyring List Metrics Optimistic_abc Printf Sim Stack
