examples/optimistic_ordering.mli:
