examples/quickstart.ml: Abc Adversary_structure Array Bignum Keyring List Metrics Printf Schnorr_group Sim Stack
