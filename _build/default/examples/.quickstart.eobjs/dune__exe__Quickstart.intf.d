examples/quickstart.mli:
