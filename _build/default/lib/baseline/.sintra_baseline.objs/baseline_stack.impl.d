lib/baseline/baseline_stack.ml: Array Pbft_lite Sim
