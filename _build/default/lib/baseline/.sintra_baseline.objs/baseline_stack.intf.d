lib/baseline/baseline_stack.mli: Pbft_lite Sim
