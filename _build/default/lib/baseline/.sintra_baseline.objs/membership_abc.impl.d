lib/baseline/membership_abc.ml: Hashtbl List Option Pset Sha256 String
