lib/baseline/membership_abc.mli: Pset
