lib/baseline/pbft_lite.ml: Hashtbl List Pset Sha256 String
