lib/baseline/pbft_lite.mli:
