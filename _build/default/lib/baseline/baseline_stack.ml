(* Deployment glue for the PBFT-lite baseline on the simulator (the
   baseline needs timers, which the randomized stack never uses). *)

let deploy ~(sim : Pbft_lite.msg Sim.t) ~f ?(timeout = 2000.0) ~deliver () :
    Pbft_lite.t array =
  let n = Sim.n sim in
  let nodes =
    Array.init n (fun me ->
        Pbft_lite.create ~me ~n ~f
          ~send:(fun dst m -> Sim.send sim ~src:me ~dst m)
          ~broadcast:(fun m -> Sim.broadcast sim ~src:me m)
          ~set_timer:(fun ~delay cb -> Sim.set_timer sim me ~delay cb)
          ~deliver:(deliver me) ~timeout ())
  in
  Array.iteri
    (fun me node ->
      Sim.set_handler sim me (fun ~src m -> Pbft_lite.handle node ~src m))
    nodes;
  nodes
