(** Deployment glue for the PBFT-lite baseline (needs the simulator's
    timers, which the randomized stack never uses). *)

val deploy :
  sim:Pbft_lite.msg Sim.t ->
  f:int ->
  ?timeout:float ->
  deliver:(int -> string -> unit) ->
  unit ->
  Pbft_lite.t array
