(* A Rampart-style view-based group-communication baseline
   ("Rampart-lite"): the second comparison row of the paper's Figure 1.

   Rampart (Reiter, CACM 1996) implements atomic broadcast on top of a
   dynamic group-membership protocol that removes apparently faulty
   servers from the current view.  The paper's critique (Section 2.3):

     "it easily falls prey to an attacker that is able to delay honest
      servers just long enough until corrupted servers hold the majority
      in the group" —

   i.e. its *safety*, not only liveness, rests on the timeout-based
   failure detector.  This module distills that architecture to the part
   the critique is about:

     - a view is a member set; the lowest member id is the sequencer;
     - the sequencer assigns sequence numbers: ORDER(view, seq, payload);
     - members ACK, and a payload is delivered once a majority of the
       *current view* acknowledged it (Rampart's deliveries are driven by
       agreement among the current members);
     - a member that sees no progress while work is pending suspects the
       members it has not heard from; a majority of suspicions among the
       remaining members evicts the suspect, shrinking the view.

   Under benign conditions this orders payloads cheaply and survives
   real crashes.  Under the Section 2.2 delay adversary, honest members
   get evicted one by one until a corrupted server dominates the ack
   majority of the shrunken view; if it then becomes the sequencer it can
   equivocate, and two honest members deliver different payloads for the
   same sequence number — a safety violation, reproduced by experiment F2
   and test_membership.ml.  This is precisely why the paper insists on a
   static group (Section 2.3).

   Simplifications: no signed view-change certificates, no state
   transfer on view change (members keep their own delivered prefix), no
   re-admission.  These only make the baseline *more* generous: even so,
   safety falls to the scheduling adversary. *)

type msg =
  | Submit of string
  | Order of int * int * string  (* view, seq, payload *)
  | Ack of int * int * string  (* view, seq, digest *)
  | Suspect of int * int  (* view, suspected member *)
  | Heartbeat  (* the failure detector's sign of life *)

type slot = {
  mutable payload : string option;
  mutable acks : Pset.t;
  mutable delivered : bool;
}

type t = {
  me : int;
  n : int;
  send : int -> msg -> unit;
  broadcast : msg -> unit;
  set_timer : delay:float -> (unit -> unit) -> unit;
  deliver : string -> unit;
  timeout : float;
  mutable view : int;
  mutable members : Pset.t;
  mutable next_seq : int;  (* sequencer side *)
  mutable next_exec : int;
  slots : (int * int, slot) Hashtbl.t;  (* (view, seq) *)
  mutable queue : string list;
  delivered_digests : (string, unit) Hashtbl.t;
  mutable delivered_log : string list;
  mutable proposed : string list;  (* digests ordered in the current view *)
  mutable suspicions : (int * int * int) list;  (* view, voter, suspect *)
  mutable my_suspects : Pset.t;
  mutable heard_from : Pset.t;  (* members heard from since the last timer *)
  mutable timer_armed : bool;
  mutable progress : int;
}

let create ~me ~n ~send ~broadcast ~set_timer ~deliver ?(timeout = 1000.0) ()
    =
  { me;
    n;
    send;
    broadcast;
    set_timer;
    deliver;
    timeout;
    view = 0;
    members = Pset.full n;
    next_seq = 0;
    next_exec = 0;
    slots = Hashtbl.create 16;
    queue = [];
    delivered_digests = Hashtbl.create 16;
    delivered_log = [];
    proposed = [];
    suspicions = [];
    my_suspects = Pset.empty;
    heard_from = Pset.empty;
    timer_armed = false;
    progress = 0 }

let digest = Sha256.digest
let sequencer t = match Pset.to_list t.members with [] -> -1 | m :: _ -> m
let is_sequencer t = sequencer t = t.me
let majority t = (Pset.card t.members / 2) + 1

let members t = t.members
let current_view t = t.view
let delivered_log t = List.rev t.delivered_log
let pending t = t.queue

let slot_of t view seq =
  match Hashtbl.find_opt t.slots (view, seq) with
  | Some s -> s
  | None ->
    let s = { payload = None; acks = Pset.empty; delivered = false } in
    Hashtbl.add t.slots (view, seq) s;
    s

(* ---------- ordering -------------------------------------------------- *)

let rec propose_pending t =
  (* Payloads stay queued until delivered (so progress timers keep
     running); the sequencer just avoids double-ordering within a view. *)
  if is_sequencer t then
    List.iter
      (fun payload ->
        let d = digest payload in
        if not (List.mem d t.proposed) then begin
          t.proposed <- d :: t.proposed;
          let seq = t.next_seq in
          t.next_seq <- seq + 1;
          t.broadcast (Order (t.view, seq, payload))
        end)
      t.queue

and try_execute t =
  let rec go () =
    match Hashtbl.find_opt t.slots (t.view, t.next_exec) with
    | Some slot
      when slot.delivered = false
           && slot.payload <> None
           && Pset.card slot.acks >= majority t ->
      slot.delivered <- true;
      t.next_exec <- t.next_exec + 1;
      t.progress <- t.progress + 1;
      let payload = Option.get slot.payload in
      let d = digest payload in
      if not (Hashtbl.mem t.delivered_digests d) then begin
        Hashtbl.replace t.delivered_digests d ();
        t.delivered_log <- payload :: t.delivered_log;
        t.queue <- List.filter (fun q -> digest q <> d) t.queue;
        t.deliver payload
      end;
      go ()
    | Some _ | None -> ()
  in
  go ()

(* ---------- membership ------------------------------------------------ *)

and suspicion_votes t suspect =
  List.fold_left
    (fun acc (v, voter, s) ->
      if v = t.view && s = suspect && Pset.mem voter t.members then
        Pset.add voter acc
      else acc)
    Pset.empty t.suspicions

(* Eviction rule: a majority of the members *other than the suspect*
   demand it. *)
and try_evict t suspect =
  if Pset.mem suspect t.members then begin
    let electorate = Pset.remove suspect t.members in
    let votes = Pset.inter (suspicion_votes t suspect) electorate in
    if Pset.card votes >= (Pset.card electorate / 2) + 1 then begin
      t.members <- Pset.remove suspect t.members;
      t.view <- t.view + 1;
      t.next_seq <- 0;
      t.next_exec <- 0;
      t.my_suspects <- Pset.empty;
      t.proposed <- [];
      t.progress <- t.progress + 1;
      (* the (possibly new) sequencer re-proposes pending work *)
      propose_pending t;
      arm_timer t
    end
  end

(* The failure-detector heart: every [timeout] the member broadcasts a
   heartbeat and — only when work is pending and nothing moved — suspects
   the members it has not heard from at all during the window. *)
and arm_timer t =
  if (not t.timer_armed) && Pset.mem t.me t.members then begin
    t.timer_armed <- true;
    let epoch = t.progress in
    t.heard_from <- Pset.singleton t.me;
    t.set_timer ~delay:t.timeout (fun () ->
        t.timer_armed <- false;
        if Pset.mem t.me t.members then begin
          t.broadcast Heartbeat;
          if t.queue <> [] && t.progress = epoch then begin
            (* retransmit this view's undelivered orders first — a view
               change may have raced past the original transmissions *)
            if is_sequencer t then
              Hashtbl.iter
                (fun (v, seq) slot ->
                  match slot.payload with
                  | Some p when v = t.view && not slot.delivered ->
                    t.broadcast (Order (v, seq, p))
                  | Some _ | None -> ())
                t.slots;
            (* no progress: suspect every member we have not heard from *)
            Pset.iter
              (fun m ->
                if
                  (not (Pset.mem m t.heard_from))
                  && not (Pset.mem m t.my_suspects)
                then begin
                  t.my_suspects <- Pset.add m t.my_suspects;
                  t.broadcast (Suspect (t.view, m));
                  t.suspicions <- (t.view, t.me, m) :: t.suspicions;
                  try_evict t m
                end)
              t.members
          end;
          arm_timer t
        end)
  end

(* ---------- API -------------------------------------------------------- *)

let start t =
  (* announce liveness before anyone's first suspicion window closes *)
  t.broadcast Heartbeat;
  arm_timer t

let submit t payload =
  let d = digest payload in
  if
    (not (Hashtbl.mem t.delivered_digests d))
    && not (List.exists (fun q -> digest q = d) t.queue)
  then begin
    t.queue <- t.queue @ [ payload ];
    t.broadcast (Submit payload);
    propose_pending t;
    arm_timer t
  end

let handle t ~src msg =
  t.heard_from <- Pset.add src t.heard_from;
  match msg with
  | Submit payload ->
    let d = digest payload in
    if
      (not (Hashtbl.mem t.delivered_digests d))
      && not (List.exists (fun q -> digest q = d) t.queue)
    then begin
      t.queue <- t.queue @ [ payload ];
      propose_pending t;
      arm_timer t
    end
  | Order (view, seq, payload) ->
    if view = t.view && src = sequencer t then begin
      let slot = slot_of t view seq in
      (match slot.payload with
      | None ->
        slot.payload <- Some payload;
        t.broadcast (Ack (view, seq, digest payload))
      | Some p when digest p = digest payload ->
        (* retransmitted order: re-ack (earlier acks may have been lost
           across a view change race) *)
        t.broadcast (Ack (view, seq, digest payload))
      | Some _ -> ());
      try_execute t
    end
  | Ack (view, seq, d) ->
    if view = t.view then begin
      let slot = slot_of t view seq in
      (match slot.payload with
      | Some p when digest p <> d -> ()  (* mismatched ack ignored *)
      | Some _ | None ->
        slot.acks <- Pset.add src slot.acks;
        try_execute t)
    end
  | Suspect (view, suspect) ->
    if
      view = t.view
      && Pset.mem src t.members
      && not
           (List.exists
              (fun (v, voter, s) -> v = view && voter = src && s = suspect)
              t.suspicions)
    then begin
      t.suspicions <- (view, src, suspect) :: t.suspicions;
      try_evict t suspect
    end
  | Heartbeat -> ()

let msg_size = function
  | Submit p -> 8 + String.length p
  | Order (_, _, p) -> 16 + String.length p
  | Ack _ -> 48
  | Suspect _ -> 16
  | Heartbeat -> 8
