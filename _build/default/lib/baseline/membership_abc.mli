(** Rampart-style view-based group communication ("Rampart-lite"): the
    dynamic-membership comparison row of the paper's Figure 1.

    A sequencer orders payloads within the current view; deliveries need
    acknowledgements from a majority of the view; timeout-based
    suspicions evict unresponsive members, shrinking the view.  Cheap and
    crash-tolerant when timeouts are accurate — but the Section 2.2 delay
    adversary can evict honest members until a corrupted server dominates
    the shrunken view's majority and, as sequencer, equivocates: a
    *safety* violation (experiment F2), which is the paper's argument for
    static groups (Section 2.3). *)

type msg =
  | Submit of string
  | Order of int * int * string  (** view, seq, payload *)
  | Ack of int * int * string  (** view, seq, digest *)
  | Suspect of int * int  (** view, suspected member *)
  | Heartbeat

type t

val create :
  me:int ->
  n:int ->
  send:(int -> msg -> unit) ->
  broadcast:(msg -> unit) ->
  set_timer:(delay:float -> (unit -> unit) -> unit) ->
  deliver:(string -> unit) ->
  ?timeout:float ->
  unit ->
  t

val start : t -> unit
(** Arm the failure-detector heartbeat (call once after deployment). *)

val submit : t -> string -> unit
val handle : t -> src:int -> msg -> unit
val members : t -> Pset.t
val current_view : t -> int
val delivered_log : t -> string list
val pending : t -> string list
val msg_size : msg -> int
