(* A CL99-style deterministic leader-based replication protocol
   ("PBFT-lite"): the comparison baseline of the paper's Figure 1.

   Castro-Liskov-style three-phase commit per sequence number:

     PRE-PREPARE(v, s, m)   from the leader of view v,
     PREPARE(v, s, d)       from everyone, quorum 2t+1,
     COMMIT(v, s, d)        from everyone, quorum 2t+1, then deliver;

   with a timeout-driven view change: a replica that has a pending
   request but sees no progress for [timeout] units of virtual time
   broadcasts VIEW-CHANGE(v+1) carrying its prepared entries; 2t+1 such
   messages install the view, whose leader re-proposes prepared entries
   first (safety across views) and then fresh requests.

   The paper's point, which experiment O1 reproduces: this protocol is
   very fast when the network is friendly — and it *keeps safety* under
   any schedule — but a malicious scheduler that merely delays whoever
   is currently leader keeps it changing views forever, while the
   randomized atomic broadcast keeps delivering.  Heuristic timeouts are
   exactly the assumption an Internet adversary gets to attack
   (Section 2.2).

   Simplifications vs. full PBFT (documented, irrelevant to the claims
   measured): point-to-point channels are authenticated by the network
   (MACs in CL99), checkpointing/garbage collection is omitted, and the
   new leader re-proposes the maximal prepared entry per sequence number
   without the full new-view proof. *)

type prepared_entry = { pe_view : int; pe_seq : int; pe_payload : string }

type msg =
  | Request of string
  | Pre_prepare of int * int * string  (* view, seq, payload *)
  | Prepare of int * int * string  (* view, seq, digest *)
  | Commit of int * int * string
  | View_change of int * prepared_entry list

type slot = {
  mutable payload : string option;  (* from PRE-PREPARE *)
  mutable prepares : Pset.t;
  mutable commits : Pset.t;
  mutable prepared : bool;
  mutable committed : bool;
}

type t = {
  me : int;
  n : int;
  f : int;  (* tolerated faults; quorum = 2f+1 *)
  send : int -> msg -> unit;
  broadcast : msg -> unit;
  set_timer : delay:float -> (unit -> unit) -> unit;
  deliver : string -> unit;
  timeout : float;
  mutable view : int;
  mutable next_seq : int;  (* leader: next sequence number to assign *)
  mutable next_exec : int;  (* next sequence number to deliver *)
  slots : (int * int, slot) Hashtbl.t;  (* (view, seq) *)
  mutable queue : string list;  (* pending client payloads *)
  delivered : (string, unit) Hashtbl.t;
  mutable delivered_log : string list;
  mutable view_changes : (int * int * prepared_entry list) list;
      (* (new view, sender, prepared) *)
  mutable timer_armed : bool;
  mutable progress_epoch : int;  (* bumped on every delivery/view change *)
}

let create ~me ~n ~f ~send ~broadcast ~set_timer ~deliver
    ?(timeout = 2000.0) () =
  { me;
    n;
    f;
    send;
    broadcast;
    set_timer;
    deliver;
    timeout;
    view = 0;
    next_seq = 0;
    next_exec = 0;
    slots = Hashtbl.create 16;
    queue = [];
    delivered = Hashtbl.create 16;
    delivered_log = [];
    view_changes = [];
    timer_armed = false;
    progress_epoch = 0 }

let leader_of t view = view mod t.n
let is_leader t = leader_of t t.view = t.me
let quorum t = (2 * t.f) + 1
let digest = Sha256.digest

let slot_of t view seq =
  match Hashtbl.find_opt t.slots (view, seq) with
  | Some s -> s
  | None ->
    let s =
      { payload = None;
        prepares = Pset.empty;
        commits = Pset.empty;
        prepared = false;
        committed = false }
    in
    Hashtbl.add t.slots (view, seq) s;
    s

(* ---------- view change timer --------------------------------------- *)

let rec arm_timer t =
  if (not t.timer_armed) && t.queue <> [] then begin
    t.timer_armed <- true;
    let epoch = t.progress_epoch in
    t.set_timer ~delay:t.timeout (fun () ->
        t.timer_armed <- false;
        if t.queue <> [] then begin
          if t.progress_epoch = epoch then start_view_change t (t.view + 1);
          (* keep the timer running while work is pending, as PBFT does *)
          arm_timer t
        end)
  end

and prepared_entries t =
  Hashtbl.fold
    (fun (v, s) slot acc ->
      match slot.payload with
      | Some p when slot.prepared && not slot.committed ->
        { pe_view = v; pe_seq = s; pe_payload = p } :: acc
      | Some _ | None -> acc)
    t.slots []

and start_view_change t new_view =
  if new_view > t.view then begin
    t.broadcast (View_change (new_view, prepared_entries t))
  end

(* ---------- leader -------------------------------------------------- *)

and propose_pending t =
  if is_leader t then begin
    let rec go () =
      match t.queue with
      | [] -> ()
      | payload :: rest ->
        t.queue <- rest;
        let seq = t.next_seq in
        t.next_seq <- seq + 1;
        t.broadcast (Pre_prepare (t.view, seq, payload));
        go ()
    in
    go ()
  end

(* ---------- execution ----------------------------------------------- *)

and try_execute t =
  (* Deliver committed slots of the current view in sequence order;
     committed slots of older views were re-proposed on view change. *)
  let rec go () =
    match Hashtbl.find_opt t.slots (t.view, t.next_exec) with
    | Some slot when slot.committed ->
      (match slot.payload with
      | Some payload ->
        t.next_exec <- t.next_exec + 1;
        t.progress_epoch <- t.progress_epoch + 1;
        let d = digest payload in
        if not (Hashtbl.mem t.delivered d) then begin
          Hashtbl.replace t.delivered d ();
          t.delivered_log <- payload :: t.delivered_log;
          t.queue <- List.filter (fun q -> digest q <> d) t.queue;
          t.deliver payload
        end;
        go ()
      | None -> ())
    | Some _ | None -> ()
  in
  go ()

(* ---------- API ------------------------------------------------------ *)

let submit t payload =
  let d = digest payload in
  if
    (not (Hashtbl.mem t.delivered d))
    && not (List.exists (fun q -> digest q = d) t.queue)
  then begin
    t.queue <- t.queue @ [ payload ];
    (* Relay to every replica (as PBFT clients do), so that all of them
       arm their view-change timers for this request. *)
    t.broadcast (Request payload);
    propose_pending t;
    arm_timer t
  end

let handle t ~src msg =
  match msg with
  | Request payload ->
    ignore src;
    let d = digest payload in
    if
      (not (Hashtbl.mem t.delivered d))
      && not (List.exists (fun q -> digest q = d) t.queue)
    then begin
      t.queue <- t.queue @ [ payload ];
      propose_pending t;
      arm_timer t
    end
  | Pre_prepare (v, seq, payload) ->
    if v = t.view && src = leader_of t v then begin
      let slot = slot_of t v seq in
      if slot.payload = None then begin
        slot.payload <- Some payload;
        t.broadcast (Prepare (v, seq, digest payload))
      end
    end
  | Prepare (v, seq, d) ->
    if v = t.view then begin
      let slot = slot_of t v seq in
      (match slot.payload with
      | Some p when digest p <> d -> ()
      | Some _ | None ->
        if not (Pset.mem src slot.prepares) then begin
          slot.prepares <- Pset.add src slot.prepares;
          if
            (not slot.prepared)
            && slot.payload <> None
            && Pset.card slot.prepares >= quorum t
          then begin
            slot.prepared <- true;
            t.broadcast (Commit (v, seq, d))
          end
        end)
    end
  | Commit (v, seq, _d) ->
    if v = t.view then begin
      let slot = slot_of t v seq in
      if not (Pset.mem src slot.commits) then begin
        slot.commits <- Pset.add src slot.commits;
        if
          (not slot.committed)
          && slot.prepared
          && Pset.card slot.commits >= quorum t
        then begin
          slot.committed <- true;
          try_execute t
        end
      end
    end
  | View_change (new_view, prepared) ->
    if new_view > t.view then begin
      if
        not
          (List.exists
             (fun (v, s, _) -> v = new_view && s = src)
             t.view_changes)
      then begin
        t.view_changes <- (new_view, src, prepared) :: t.view_changes;
        let voters =
          List.fold_left
            (fun acc (v, s, _) -> if v = new_view then Pset.add s acc else acc)
            Pset.empty t.view_changes
        in
        (* Join the view change once an honest party must be behind it. *)
        if Pset.card voters >= t.f + 1 then start_view_change t new_view;
        if Pset.card voters >= quorum t then begin
          (* Install the new view. *)
          t.view <- new_view;
          t.progress_epoch <- t.progress_epoch + 1;
          t.next_exec <- 0;
          t.next_seq <- 0;
          if is_leader t then begin
            (* Re-propose surviving prepared entries, newest view wins
               per sequence number, then fresh requests. *)
            let entries =
              List.concat_map
                (fun (v, _, es) -> if v = new_view then es else [])
                t.view_changes
              @ prepared_entries t
            in
            let best = Hashtbl.create 8 in
            List.iter
              (fun e ->
                match Hashtbl.find_opt best e.pe_seq with
                | Some e' when e'.pe_view >= e.pe_view -> ()
                | Some _ | None -> Hashtbl.replace best e.pe_seq e)
              entries;
            let payloads =
              Hashtbl.fold (fun _ e acc -> e.pe_payload :: acc) best []
              |> List.filter (fun p -> not (Hashtbl.mem t.delivered (digest p)))
            in
            List.iter
              (fun p ->
                if not (List.exists (fun q -> digest q = digest p) t.queue)
                then t.queue <- t.queue @ [ p ])
              payloads;
            propose_pending t
          end;
          arm_timer t
        end
      end
    end

let delivered_log t = List.rev t.delivered_log
let current_view t = t.view
let pending t = t.queue

let msg_size = function
  | Request p -> 8 + String.length p
  | Pre_prepare (_, _, p) -> 16 + String.length p
  | Prepare _ | Commit _ -> 48
  | View_change (_, es) ->
    16 + List.fold_left (fun acc e -> acc + 16 + String.length e.pe_payload) 0 es
