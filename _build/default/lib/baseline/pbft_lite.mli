(** CL99-style deterministic leader-based replication ("PBFT-lite"): the
    comparison baseline of the paper's Figure 1.

    Three-phase commit (pre-prepare / prepare / commit, quorum 2f+1) with
    timeout-driven view changes.  Fast and cheap when the network is
    friendly, safe under every schedule — but a scheduler that delays
    whoever is currently leader longer than the timeout keeps it rotating
    views forever (experiments F1/O1), which is the paper's argument for
    randomized agreement.  Simplifications vs. full PBFT (checkpoints,
    full new-view proofs, per-message MACs) are documented in the
    implementation and do not affect the measured claims. *)

type prepared_entry = { pe_view : int; pe_seq : int; pe_payload : string }

type msg =
  | Request of string
  | Pre_prepare of int * int * string  (** view, seq, payload *)
  | Prepare of int * int * string  (** view, seq, digest *)
  | Commit of int * int * string
  | View_change of int * prepared_entry list

type t

val create :
  me:int ->
  n:int ->
  f:int ->
  send:(int -> msg -> unit) ->
  broadcast:(msg -> unit) ->
  set_timer:(delay:float -> (unit -> unit) -> unit) ->
  deliver:(string -> unit) ->
  ?timeout:float ->
  unit ->
  t

val submit : t -> string -> unit
(** Client entry point: relay to all replicas and start ordering. *)

val handle : t -> src:int -> msg -> unit
val delivered_log : t -> string list
val current_view : t -> int
val pending : t -> string list
val msg_size : msg -> int
