lib/core/abba.ml: Adversary_structure Coin Hashtbl Keyring List Printf Proto_io Pset Ro
