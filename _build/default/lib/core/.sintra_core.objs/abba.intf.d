lib/core/abba.mli: Coin Keyring Proto_io
