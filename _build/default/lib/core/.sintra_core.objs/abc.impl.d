lib/core/abc.ml: Codec Hashtbl Keyring List Printf Proto_io Pset Ro Schnorr_sig Sha256 String Vba
