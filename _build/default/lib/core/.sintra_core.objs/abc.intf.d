lib/core/abc.mli: Keyring Proto_io Vba
