lib/core/cbc.ml: Keyring List Printf Proto_io Ro Sha256 String
