lib/core/cbc.mli: Keyring Proto_io
