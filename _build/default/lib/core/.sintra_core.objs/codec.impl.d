lib/core/codec.ml: Char List Ro String
