lib/core/codec.mli:
