lib/core/optimistic_abc.ml: Abc Adversary_structure Cbc Codec Hashtbl Keyring List Proto_io Pset Ro Schnorr_sig Sha256 String Vba
