lib/core/optimistic_abc.mli: Abc Cbc Keyring Proto_io Schnorr_sig Vba
