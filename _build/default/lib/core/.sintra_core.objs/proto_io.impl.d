lib/core/proto_io.ml: Adversary_structure Keyring
