lib/core/proto_io.mli: Adversary_structure Keyring Pset
