lib/core/rbc.ml: Hashtbl Printf Proto_io Pset String
