lib/core/rbc.mli: Proto_io
