lib/core/scabc.ml: Abc Hashtbl Keyring List Prng Proto_io Pset Sha256 Tdh2
