lib/core/scabc.mli: Abc Keyring Prng Proto_io Tdh2
