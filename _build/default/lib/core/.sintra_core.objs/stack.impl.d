lib/core/stack.ml: Abba Abc Array Cbc Keyring Proto_io Rbc Scabc Sim Vba
