lib/core/stack.mli: Abba Abc Cbc Keyring Proto_io Rbc Scabc Sim Vba
