lib/core/vba.ml: Abba Array Cbc Coin Fun Hashtbl Keyring List Printf Prng Proto_io Pset Ro String
