lib/core/vba.mli: Abba Cbc Coin Keyring Proto_io
