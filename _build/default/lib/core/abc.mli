(** Atomic broadcast: total ordering of payloads via one validated
    multi-valued agreement per global round (Chandra–Toueg round
    structure in the Byzantine model; paper, Section 3).

    Per round every party signs and disseminates the oldest undelivered
    payload it knows, collects a big-quorum of validly signed proposals,
    and agrees (VBA with the signature check as external validity) on one
    such list, delivered in deterministic order.  Liveness and fairness:
    a payload known to the honest parties appears in every honest
    proposal and is delivered within a round. *)

type msg =
  | Request of string  (** payload relay ("send to all servers") *)
  | Proposal of int * string * string  (** round, payload, signature *)
  | Vba_msg of int * Vba.msg

type t

val create :
  io:msg Proto_io.t -> tag:string -> deliver:(string -> unit) -> unit -> t
(** [deliver] is invoked in the agreed total order (identical at every
    honest party); duplicates are suppressed. *)

val broadcast : t -> string -> unit
(** Atomically broadcast a payload (relay to all, then order). *)

val enqueue : t -> string -> unit
(** Order a payload without relaying (it is already known here). *)

val handle : t -> src:int -> msg -> unit
val delivered_log : t -> string list
val current_round : t -> int
val pending : t -> string list
val msg_size : Keyring.t -> msg -> int

val msg_summary : msg -> string
