(** Consistent broadcast: Reiter-style echo broadcast with transferable
    delivery certificates (paper, Section 3).

    O(n) messages; guarantees uniqueness of the delivered payload but not
    totality — a party that missed the broadcast can be convinced later
    by the certificate, which is what validated agreement exploits. *)

type msg =
  | Send of string
  | Echo of Keyring.cert_share
  | Final of string * Keyring.cert

type t

val create :
  io:msg Proto_io.t ->
  tag:string ->
  sender:int ->
  ?validate:(string -> bool) ->
  deliver:(string -> Keyring.cert -> unit) ->
  unit ->
  t
(** [validate] gates endorsement: parties only echo acceptable payloads
    (the external-validity hook of VBA). *)

val broadcast : t -> string -> unit
val handle : t -> src:int -> msg -> unit
val delivered : t -> (string * Keyring.cert) option

val check_transferred :
  keyring:Keyring.t -> tag:string -> sender:int -> string -> Keyring.cert -> bool
(** Re-validate a (payload, certificate) pair carried inside another
    protocol's justification. *)

val msg_size : Keyring.t -> msg -> int

val msg_summary : msg -> string
