(* Minimal canonical wire codec: a length-prefixed string list, the
   inverse of {!Ro.encode}.  Used wherever structured protocol data must
   be carried inside a broadcast payload (e.g. the signed proposal lists
   of the atomic broadcast rounds). *)

let encode (parts : string list) : string = Ro.encode parts

let decode (s : string) : string list option =
  let len = String.length s in
  let read_u64 off =
    let v = ref 0 in
    for i = 0 to 7 do
      v := (!v lsl 8) lor Char.code s.[off + i]
    done;
    !v
  in
  let rec go off acc =
    if off = len then Some (List.rev acc)
    else if off + 8 > len then None
    else begin
      let l = read_u64 off in
      if l < 0 || off + 8 + l > len then None
      else go (off + 8 + l) (String.sub s (off + 8) l :: acc)
    end
  in
  go 0 []

let encode_int (i : int) : string = string_of_int i

let decode_int (s : string) : int option = int_of_string_opt s
