(** Canonical wire codec: length-prefixed string lists (the inverse of
    {!Ro.encode}), used wherever structured protocol data rides inside a
    broadcast payload. *)

val encode : string list -> string

val decode : string -> string list option
(** Total inverse of {!encode}; [None] on malformed input. *)

val encode_int : int -> string
val decode_int : string -> int option
