(* Environment handed to every protocol instance: identity, keys, and
   typed message transport.

   A parent protocol embeds a child by wrapping the child's message type
   into its own with {!embed}; the whole stack therefore has a single
   top-level wire type per deployment and runs unchanged under the
   network simulator or any other transport. *)

module AS = Adversary_structure

type 'm t = {
  me : int;
  keyring : Keyring.t;
  send : int -> 'm -> unit;
  broadcast : 'm -> unit;  (* to all servers, including self *)
}

let make ~me ~keyring ~send ~broadcast = { me; keyring; send; broadcast }

let structure io = io.keyring.Keyring.structure
let n io = AS.n (structure io)

let embed (io : 'p t) ~(wrap : 'c -> 'p) : 'c t =
  { me = io.me;
    keyring = io.keyring;
    send = (fun dst m -> io.send dst (wrap m));
    broadcast = (fun m -> io.broadcast (wrap m)) }

(* Predicate shorthands on the deployment's adversary structure. *)
let big_quorum io s = AS.big_quorum (structure io) s
let two_cover io s = AS.two_cover (structure io) s
let contains_honest io s = AS.contains_honest (structure io) s
