(** Environment handed to every protocol instance: identity, keyring and
    typed message transport.

    A parent protocol embeds a child with {!embed} by wrapping the
    child's messages into its own message type, so a whole deployment
    has a single top-level wire type and runs unchanged under the
    network simulator or any other transport. *)

type 'm t = {
  me : int;
  keyring : Keyring.t;
  send : int -> 'm -> unit;
  broadcast : 'm -> unit;  (** to all servers, including self *)
}

val make :
  me:int ->
  keyring:Keyring.t ->
  send:(int -> 'm -> unit) ->
  broadcast:('m -> unit) ->
  'm t

val structure : 'm t -> Adversary_structure.t
val n : 'm t -> int

val embed : 'p t -> wrap:('c -> 'p) -> 'c t
(** Child environment whose sends wrap into the parent's message type. *)

(** Quorum-predicate shorthands on the deployment's structure. *)

val big_quorum : 'm t -> Pset.t -> bool
val two_cover : 'm t -> Pset.t -> bool
val contains_honest : 'm t -> Pset.t -> bool
