(** Reliable broadcast: optimized Bracha–Toueg (paper, Section 3),
    generalized to arbitrary Q{^3} adversary structures via the monotone
    quorum predicates of Section 4.2.

    Guarantees, for corruption sets inside the structure: consistency
    (honest parties deliver the same payload or none), validity (an
    honest sender's payload is delivered by all), totality (if one honest
    party delivers, all do). *)

type msg = Send of string | Echo of string | Ready of string

type t

val create :
  io:msg Proto_io.t -> sender:int -> deliver:(string -> unit) -> t
(** One instance per (tag, sender); tags are separated by the parent's
    message wrapping. *)

val broadcast : t -> string -> unit
(** Start the broadcast; only valid at the sender. *)

val handle : t -> src:int -> msg -> unit
val has_delivered : t -> bool

val msg_size : msg -> int
(** Approximate wire size in bytes (metrics). *)

val msg_summary : msg -> string
(** Short rendering for simulator traces. *)
