lib/crypto/cert_sig.ml: Array Bignum Dl_sharing Dleq List Lsss Pset Schnorr_group
