lib/crypto/cert_sig.mli: Dl_sharing Dleq Pset Schnorr_group
