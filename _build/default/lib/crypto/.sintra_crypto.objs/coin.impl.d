lib/crypto/coin.ml: Array Bignum Char Dl_sharing Dleq List Lsss Pset Ro Schnorr_group String
