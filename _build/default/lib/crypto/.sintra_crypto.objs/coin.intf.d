lib/crypto/coin.mli: Dl_sharing Dleq Pset Schnorr_group
