lib/crypto/dl_sharing.ml: Adversary_structure Array Bignum List Lsss Prng Pset Schnorr_group
