lib/crypto/dl_sharing.mli: Adversary_structure Lsss Prng Pset Schnorr_group
