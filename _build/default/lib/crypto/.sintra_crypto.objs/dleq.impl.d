lib/crypto/dleq.ml: Bignum List Ro Schnorr_group
