lib/crypto/dleq.mli: Bignum Schnorr_group
