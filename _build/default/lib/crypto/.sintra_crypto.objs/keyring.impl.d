lib/crypto/keyring.ml: Adversary_structure Array Bignum Cert_sig Dl_sharing List Option Prng Pset Rsa_threshold Schnorr_group Schnorr_sig
