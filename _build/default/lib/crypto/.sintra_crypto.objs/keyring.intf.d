lib/crypto/keyring.mli: Adversary_structure Cert_sig Dl_sharing Rsa_threshold Schnorr_group Schnorr_sig
