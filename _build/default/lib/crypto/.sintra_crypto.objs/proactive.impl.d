lib/crypto/proactive.ml: Adversary_structure Array Bignum Dl_sharing List Lsss Prng Pset Schnorr_group
