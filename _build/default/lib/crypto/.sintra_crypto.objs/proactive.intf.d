lib/crypto/proactive.mli: Dl_sharing Lsss Prng Pset Schnorr_group
