lib/crypto/rsa_threshold.ml: Array Bignum List Poly Primes Prng Ro
