lib/crypto/rsa_threshold.mli: Bignum Prng
