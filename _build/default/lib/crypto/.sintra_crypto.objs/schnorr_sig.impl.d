lib/crypto/schnorr_sig.ml: Bignum Prng Ro Schnorr_group String
