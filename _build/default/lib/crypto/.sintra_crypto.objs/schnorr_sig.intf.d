lib/crypto/schnorr_sig.mli: Bignum Prng Schnorr_group
