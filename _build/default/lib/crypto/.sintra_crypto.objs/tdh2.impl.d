lib/crypto/tdh2.ml: Array Bignum Char Dl_sharing Dleq List Lsss Prng Pset Ro Schnorr_group String
