lib/crypto/tdh2.mli: Bignum Dl_sharing Dleq Prng Pset Schnorr_group
