(** Certificate-style threshold signatures for generalized adversary
    structures.

    The natural LSSS extension of the unique-signature approach: a share
    on M is H'(M){^{x_l}} per owned leaf with a DLEQ proof, and a
    signature is a sharing-qualified set of verified shares together with
    the recombined H'(M){^x}.  Same interface as a compact threshold
    signature, size proportional to the qualified set (substitution
    documented in DESIGN.md — no compact general-structure scheme was
    known in 2001). *)

type share = { leaf : int; value : Schnorr_group.elt; proof : Dleq.t }

type certificate = {
  signers : Pset.t;
  shares : (int * share list) list;
  combined : Schnorr_group.elt;  (** H'(M){^x}: the unique signature value *)
}

val sign_share : Dl_sharing.t -> party:int -> string -> share list
val verify_share : Dl_sharing.t -> party:int -> string -> share list -> bool

val combine :
  Dl_sharing.t -> string -> (int * share list) list -> certificate option
(** [None] unless the signers form a sharing-qualified set. *)

val verify : Dl_sharing.t -> string -> certificate -> bool
