(** Dealer-generated sharing of a discrete-log secret over an adversary
    structure: the common substrate of the threshold coin and TDH2.

    The trusted dealer (paper, Section 2) picks x ∈ Z{_q}, shares it with
    the Benaloh–Leichter LSSS of the structure's sharing formula, and
    publishes g{^x} and one verification key g{^{x_l}} per leaf. *)

type t = {
  group : Schnorr_group.params;
  structure : Adversary_structure.t;
  scheme : Lsss.scheme;
  subshares : Lsss.subshare list;
      (** dealer secret; honest party [i] reads only its own entries *)
  public_key : Schnorr_group.elt;
  leaf_keys : Schnorr_group.elt array;  (** leaf id → g{^{x_leaf}} *)
}

val deal : Schnorr_group.params -> Adversary_structure.t -> Prng.t -> t

val shares_of : t -> int -> Lsss.subshare list
(** The subshares owned by one party. *)

val combine_in_exponent :
  t ->
  avail:Pset.t ->
  leaf_values:(int * Schnorr_group.elt) list ->
  Schnorr_group.elt option
(** Combine per-leaf values [base^{x_l}] from the leaves owned by
    [avail] into [base^x]; [None] if [avail] is not sharing-qualified. *)
