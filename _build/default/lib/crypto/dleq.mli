(** Chaum–Pedersen proofs of discrete-log equality (Fiat–Shamir).

    The share-validity proof of the threshold coin and of TDH2: it makes
    both schemes robust by letting anyone reject bogus shares from
    corrupted servers.  Sound in the random-oracle model. *)

type t = { c : Bignum.t; z : Bignum.t }

val prove :
  Schnorr_group.params ->
  domain:string ->
  x:Bignum.t ->
  g1:Schnorr_group.elt -> h1:Schnorr_group.elt ->
  g2:Schnorr_group.elt -> h2:Schnorr_group.elt ->
  t
(** Proof that [log_{g1} h1 = log_{g2} h2 = x].  The commitment nonce is
    derived deterministically from witness and statement (RFC-6979
    style), so proving is stateless. *)

val verify :
  Schnorr_group.params ->
  domain:string ->
  g1:Schnorr_group.elt -> h1:Schnorr_group.elt ->
  g2:Schnorr_group.elt -> h2:Schnorr_group.elt ->
  t -> bool
(** Also validates group membership of [h1], [h2]. *)

val to_bytes : Schnorr_group.params -> t -> string
