(** Proactive share refresh (paper, Section 6): between epochs the
    parties re-randomize all key shares by adding verifiable sharings of
    zero, so a mobile adversary's knowledge from past epochs becomes
    useless while the public key and every derived object stay valid.

    This is the cryptographic epoch-refresh primitive; agreeing on epoch
    boundaries in a fully asynchronous network was an open problem at the
    time of the paper and remains out of scope (see DESIGN.md). *)

type refresh_package = {
  dealer : int;
  deltas : Lsss.subshare list;  (** a sharing of zero *)
  delta_keys : Schnorr_group.elt array;  (** leaf id → g{^δ} *)
}

val make_refresh : Dl_sharing.t -> dealer:int -> Prng.t -> refresh_package

val verify_refresh : Dl_sharing.t -> refresh_package -> bool
(** Deltas consistent with the published keys and recombining to zero. *)

val apply_refreshes : Dl_sharing.t -> refresh_package list -> Dl_sharing.t
(** Next epoch's sharing: same secret and public key, fresh shares and
    leaf keys. *)

val run_epoch :
  Dl_sharing.t -> refreshers:Pset.t -> Prng.t -> (Dl_sharing.t, string) result
(** One synchronous epoch: contributions from [refreshers], dropped when
    invalid; fails unless the accepted dealers surely contain an honest
    party. *)
