(** Plain (non-threshold) Schnorr signatures over the shared group, for
    individually signed protocol messages (e.g. the signed round
    proposals of atomic broadcast). *)

type keypair = { sk : Bignum.t; pk : Schnorr_group.elt }
type signature = { c : Bignum.t; z : Bignum.t }

val generate : Schnorr_group.params -> Prng.t -> keypair

val sign : Schnorr_group.params -> keypair -> string -> signature
(** Deterministic nonce (RFC-6979 style); stateless. *)

val verify :
  Schnorr_group.params -> pk:Schnorr_group.elt -> string -> signature -> bool

val to_bytes : Schnorr_group.params -> signature -> string
val of_bytes : Schnorr_group.params -> string -> signature option
