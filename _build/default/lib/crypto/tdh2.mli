(** TDH2: the Shoup–Gennaro threshold cryptosystem, secure against
    adaptive chosen-ciphertext attack in the random-oracle model.

    CCA security is what makes secure *causal* atomic broadcast work: an
    adversary seeing a ciphertext in transit can neither decrypt it nor
    maul it into a related ciphertext, so client requests stay
    confidential and unlinkable until the servers agree to deliver them
    (paper, Sections 3 and 5.2). *)

type ciphertext = {
  c : string;  (** symmetric part *)
  label : string;  (** authenticated label (e.g. client identity) *)
  u : Schnorr_group.elt;
  u' : Schnorr_group.elt;
  e : Bignum.t;
  f : Bignum.t;
}

type dec_share = { leaf : int; value : Schnorr_group.elt; proof : Dleq.t }

val encrypt : Dl_sharing.t -> Prng.t -> label:string -> string -> ciphertext

val is_valid : Dl_sharing.t -> ciphertext -> bool
(** Public consistency check; servers must refuse to decrypt invalid
    ciphertexts (the CCA2 barrier). *)

val decryption_share :
  Dl_sharing.t -> party:int -> ciphertext -> dec_share list option
(** [None] when the ciphertext is invalid. *)

val verify_share :
  Dl_sharing.t -> party:int -> ciphertext -> dec_share list -> bool

val combine :
  Dl_sharing.t ->
  ciphertext ->
  avail:Pset.t ->
  (int * dec_share list) list ->
  string option
(** Recover the plaintext from verified shares of a sharing-qualified
    set. *)

val ciphertext_to_bytes : Dl_sharing.t -> ciphertext -> string
val ciphertext_of_bytes : Dl_sharing.t -> string -> ciphertext option
