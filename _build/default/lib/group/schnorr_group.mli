(** Schnorr group: prime-order-[q] subgroup of Z{_p}{^*} for a safe prime
    [p = 2q + 1] — the discrete-log setting of the threshold coin (Cachin,
    Kursawe & Shoup) and of the Shoup–Gennaro TDH2 cryptosystem. *)

type params = { p : Bignum.t; q : Bignum.t; g : Bignum.t }

type elt = Bignum.t
(** A quadratic residue mod [p]; treat as abstract, validate foreign
    values with {!is_element} / {!elt_of_bytes}. *)

val params_equal : params -> params -> bool

val generate : ?bits:int -> Prng.t -> params
(** Fresh group parameters with a [bits]-bit safe prime (default 128;
    toy-sized for simulation speed — all algorithms are size-agnostic). *)

val default : ?bits:int -> unit -> params
(** Deterministic, memoized parameters shared by tests and benches. *)

val one : params -> elt
val generator : params -> elt
val elt_equal : elt -> elt -> bool

val is_element : params -> Bignum.t -> bool
(** Subgroup membership check ([x{^q} = 1 mod p]); must be applied to any
    value received from another (possibly corrupted) party. *)

val mul : params -> elt -> elt -> elt
val exp : params -> elt -> Bignum.t -> elt
val exp_g : params -> Bignum.t -> elt
val inv : params -> elt -> elt
val div : params -> elt -> elt -> elt
val elt_to_bytes : params -> elt -> string
val elt_of_bytes : params -> string -> elt option

val hash_to_elt : params -> domain:string -> string list -> elt
(** Random oracle into the group (reduce then square). *)

val random_exponent : params -> Prng.t -> Bignum.t

val hash_to_exponent : params -> domain:string -> string list -> Bignum.t
(** Random oracle into Z{_q} (Fiat–Shamir challenges). *)

val pp_params : Format.formatter -> params -> unit
