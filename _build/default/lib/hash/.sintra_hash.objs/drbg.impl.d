lib/hash/drbg.ml: Bignum Buffer Char Int64 Prng Ro String
