lib/hash/drbg.mli: Bignum Prng
