lib/hash/ro.ml: Bignum Buffer Char List Sha256 String
