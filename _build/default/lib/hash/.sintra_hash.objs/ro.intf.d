lib/hash/ro.mli: Bignum
