lib/hash/sha256.ml: Array Buffer Char List Printf String
