(* Deterministic random bit generator in the style of Hash_DRBG
   (NIST SP 800-90A), built on SHA-256.

   Used where randomness should be *cryptographically* derived from a
   seed — most importantly by the trusted dealer, so that a whole
   deployment's keys are reproducible from one master seed while
   remaining unpredictable without it.  The simulator keeps using the
   fast splitmix generator ({!Prng}) for scheduling decisions, where
   statistical quality is all that matters. *)

type t = {
  mutable v : string;  (* working state, 32 bytes *)
  mutable counter : int64;  (* blocks generated since last reseed *)
}

let create ~seed ~personalization =
  { v = Ro.hash ~domain:"drbg/instantiate" [ seed; personalization ];
    counter = 0L }

let of_int_seed seed =
  create ~seed:(string_of_int seed) ~personalization:"int-seed"

let reseed t ~entropy =
  t.v <- Ro.hash ~domain:"drbg/reseed" [ t.v; entropy ];
  t.counter <- 0L

(* One 32-byte output block; the state ratchets forward so output does
   not reveal previous or future blocks. *)
let block t =
  let out = Ro.hash ~domain:"drbg/out" [ t.v; Int64.to_string t.counter ] in
  t.counter <- Int64.add t.counter 1L;
  t.v <- Ro.hash ~domain:"drbg/ratchet" [ t.v ];
  out

let bytes t n =
  let buf = Buffer.create n in
  while Buffer.length buf < n do
    Buffer.add_string buf (block t)
  done;
  String.sub (Buffer.contents buf) 0 n

(* Uniform Bignum in [0, 2^nbits). *)
let bignum_bits t nbits =
  let nbytes = (nbits + 7) / 8 in
  let v = Bignum.of_bytes_be (bytes t nbytes) in
  Bignum.shift_right v ((8 * nbytes) - nbits)

(* Uniform Bignum in [0, bound) by rejection sampling. *)
let bignum_below t bound =
  if Bignum.sign bound <= 0 then invalid_arg "Drbg.bignum_below";
  let nb = Bignum.numbits bound in
  let rec draw () =
    let v = bignum_bits t nb in
    if Bignum.lt v bound then v else draw ()
  in
  draw ()

(* Bridge into the {!Prng} interface so existing seeded code paths can be
   driven by a DRBG: derives a 62-bit splitmix seed. *)
let to_prng t =
  let s = bytes t 8 in
  let seed = ref 0 in
  String.iter (fun c -> seed := ((!seed lsl 8) lor Char.code c) land max_int) s;
  Prng.create ~seed:!seed
