(** Hash-based deterministic random bit generator (Hash_DRBG style, NIST
    SP 800-90A, on SHA-256): cryptographic-quality determinism for the
    trusted dealer; the simulator keeps {!Prng} for scheduling. *)

type t

val create : seed:string -> personalization:string -> t
val of_int_seed : int -> t

val reseed : t -> entropy:string -> unit

val block : t -> string
(** Next 32-byte output block; the internal state ratchets forward
    (backtracking resistance). *)

val bytes : t -> int -> string
val bignum_bits : t -> int -> Bignum.t
val bignum_below : t -> Bignum.t -> Bignum.t

val to_prng : t -> Prng.t
(** Derive a {!Prng} seed, to drive seed-based code paths from a DRBG. *)
