(** Random-oracle helpers: domain separation, injective encoding of
    structured inputs, and hashing into integer ranges. *)

val encode : string list -> string
(** Length-prefixed concatenation; injective on lists of strings. *)

val hash : domain:string -> string list -> string
(** Domain-separated digest of an encoded field list (32 bytes). *)

val hash_expand : domain:string -> string list -> len:int -> string
(** Arbitrary-length output by counter-mode expansion. *)

val hash_to_bignum_below : domain:string -> string list -> Bignum.t -> Bignum.t
(** Hash into [\[0, bound)] with negligible modulo bias. *)

val hash_to_bit : domain:string -> string list -> bool

val xor_pad : domain:string -> key:string -> string -> string
(** One-time-pad style symmetric layer for hybrid encryption; involutive
    ([xor_pad ~key (xor_pad ~key m) = m]). *)
