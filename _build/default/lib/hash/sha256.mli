(** SHA-256 (FIPS 180-4), pure OCaml.

    Instantiates every random oracle of the architecture (coin names,
    Fiat–Shamir challenges, key derivation, message digests). *)

type ctx
(** Incremental hashing context. *)

val init : unit -> ctx

val feed : ctx -> string -> unit
(** Absorb more input. *)

val finalize : ctx -> string
(** Finish and return the 32-byte digest; the context must not be reused. *)

val digest : string -> string
(** One-shot digest (32 raw bytes). *)

val digest_list : string list -> string
(** Digest of the concatenation (without length separation — use
    {!Ro.hash} for injective structured hashing). *)

val to_hex : string -> string
(** Hex rendering of a raw digest (or any byte string). *)

val hex : string -> string
(** [hex s = to_hex (digest s)]. *)
