lib/num/bignum.ml: Buffer Bytes Char Format Limbs Printf Stdlib String
