lib/num/bignum.mli: Format
