lib/num/limbs.ml: Array Stdlib Sys
