lib/num/primes.ml: Array Bignum Prng
