lib/num/primes.mli: Bignum Prng
