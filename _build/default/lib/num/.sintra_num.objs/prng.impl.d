lib/num/prng.ml: Bignum Char Int64 String
