lib/num/prng.mli: Bignum
