(* Magnitude (natural-number) arithmetic on little-endian limb arrays.

   Limbs are stored in OCaml native ints, base 2^31.  On a 64-bit platform
   the product of two limbs plus a carry fits comfortably in the native
   63-bit integer range, which keeps every inner loop allocation-free.
   All arrays handled here are normalized: no trailing zero limb, and the
   empty array represents zero. *)

let base_bits = 31
let base = 1 lsl base_bits
let mask = base - 1

let zero : int array = [||]

let is_zero a = Array.length a = 0

(* Drop trailing zero limbs so that representations are canonical. *)
let normalize (a : int array) : int array =
  let n = ref (Array.length a) in
  while !n > 0 && a.(!n - 1) = 0 do decr n done;
  if !n = Array.length a then a else Array.sub a 0 !n

let of_int (x : int) : int array =
  assert (x >= 0);
  if x = 0 then zero
  else if x < base then [| x |]
  else if x lsr base_bits < base then [| x land mask; x lsr base_bits |]
  else [| x land mask; (x lsr base_bits) land mask; x lsr (2 * base_bits) |]

let to_int_opt (a : int array) : int option =
  match Array.length a with
  | 0 -> Some 0
  | 1 -> Some a.(0)
  | 2 -> Some ((a.(1) lsl base_bits) lor a.(0))
  | 3 when a.(2) < 1 lsl (Sys.int_size - 1 - (2 * base_bits)) ->
    Some ((a.(2) lsl (2 * base_bits)) lor (a.(1) lsl base_bits) lor a.(0))
  | _ -> None

let compare (a : int array) (b : int array) : int =
  let la = Array.length a and lb = Array.length b in
  if la <> lb then Stdlib.compare la lb
  else
    let rec go i =
      if i < 0 then 0
      else if a.(i) <> b.(i) then Stdlib.compare a.(i) b.(i)
      else go (i - 1)
    in
    go (la - 1)

let add (a : int array) (b : int array) : int array =
  let la = Array.length a and lb = Array.length b in
  let lr = 1 + max la lb in
  let r = Array.make lr 0 in
  let carry = ref 0 in
  for i = 0 to lr - 2 do
    let s =
      (if i < la then a.(i) else 0) + (if i < lb then b.(i) else 0) + !carry
    in
    r.(i) <- s land mask;
    carry := s lsr base_bits
  done;
  r.(lr - 1) <- !carry;
  normalize r

(* Requires a >= b. *)
let sub (a : int array) (b : int array) : int array =
  let la = Array.length a and lb = Array.length b in
  assert (compare a b >= 0);
  let r = Array.make la 0 in
  let borrow = ref 0 in
  for i = 0 to la - 1 do
    let d = a.(i) - (if i < lb then b.(i) else 0) - !borrow in
    if d < 0 then begin
      r.(i) <- d + base;
      borrow := 1
    end else begin
      r.(i) <- d;
      borrow := 0
    end
  done;
  assert (!borrow = 0);
  normalize r

let mul (a : int array) (b : int array) : int array =
  let la = Array.length a and lb = Array.length b in
  if la = 0 || lb = 0 then zero
  else begin
    let r = Array.make (la + lb) 0 in
    for i = 0 to la - 1 do
      let ai = a.(i) in
      if ai <> 0 then begin
        let carry = ref 0 in
        for j = 0 to lb - 1 do
          let t = r.(i + j) + (ai * b.(j)) + !carry in
          r.(i + j) <- t land mask;
          carry := t lsr base_bits
        done;
        let k = ref (i + lb) in
        while !carry <> 0 do
          let t = r.(!k) + !carry in
          r.(!k) <- t land mask;
          carry := t lsr base_bits;
          incr k
        done
      end
    done;
    normalize r
  end

let mul_int (a : int array) (x : int) : int array =
  assert (x >= 0 && x < base);
  if x = 0 || is_zero a then zero
  else begin
    let la = Array.length a in
    let r = Array.make (la + 1) 0 in
    let carry = ref 0 in
    for i = 0 to la - 1 do
      let t = (a.(i) * x) + !carry in
      r.(i) <- t land mask;
      carry := t lsr base_bits
    done;
    r.(la) <- !carry;
    normalize r
  end

let numbits (a : int array) : int =
  let la = Array.length a in
  if la = 0 then 0
  else begin
    let top = a.(la - 1) in
    let b = ref 0 in
    let t = ref top in
    while !t > 0 do
      incr b;
      t := !t lsr 1
    done;
    ((la - 1) * base_bits) + !b
  end

let testbit (a : int array) (i : int) : bool =
  let limb = i / base_bits and off = i mod base_bits in
  limb < Array.length a && (a.(limb) lsr off) land 1 = 1

let shift_left (a : int array) (k : int) : int array =
  if is_zero a || k = 0 then a
  else begin
    let limbs = k / base_bits and off = k mod base_bits in
    let la = Array.length a in
    let r = Array.make (la + limbs + 1) 0 in
    for i = 0 to la - 1 do
      let v = a.(i) lsl off in
      r.(i + limbs) <- r.(i + limbs) lor (v land mask);
      r.(i + limbs + 1) <- v lsr base_bits
    done;
    normalize r
  end

let shift_right (a : int array) (k : int) : int array =
  if is_zero a || k = 0 then a
  else begin
    let limbs = k / base_bits and off = k mod base_bits in
    let la = Array.length a in
    if limbs >= la then zero
    else begin
      let lr = la - limbs in
      let r = Array.make lr 0 in
      for i = 0 to lr - 1 do
        let lo = a.(i + limbs) lsr off in
        let hi =
          if off > 0 && i + limbs + 1 < la then
            (a.(i + limbs + 1) lsl (base_bits - off)) land mask
          else 0
        in
        r.(i) <- lo lor hi
      done;
      normalize r
    end
  end

(* Short division by a single limb. *)
let divmod_int (a : int array) (d : int) : int array * int =
  assert (d > 0 && d < base);
  let la = Array.length a in
  let q = Array.make la 0 in
  let rem = ref 0 in
  for i = la - 1 downto 0 do
    let cur = (!rem lsl base_bits) lor a.(i) in
    q.(i) <- cur / d;
    rem := cur mod d
  done;
  (normalize q, !rem)

(* Long division, Knuth Algorithm D.  Returns (quotient, remainder). *)
let divmod (a : int array) (b : int array) : int array * int array =
  if is_zero b then invalid_arg "Limbs.divmod: division by zero";
  if compare a b < 0 then (zero, a)
  else if Array.length b = 1 then begin
    let q, r = divmod_int a b.(0) in
    (q, of_int r)
  end else begin
    (* Normalize so that the top limb of the divisor has its high bit set. *)
    let top = b.(Array.length b - 1) in
    let s = ref 0 in
    let t = ref top in
    while !t < base / 2 do
      incr s;
      t := !t lsl 1
    done;
    let shift = !s in
    let u0 = shift_left a shift and v = shift_left b shift in
    let n = Array.length v in
    let m = Array.length u0 - n in
    (* u gets one extra limb of headroom for the subtraction steps. *)
    let u = Array.make (Array.length u0 + 1) 0 in
    Array.blit u0 0 u 0 (Array.length u0);
    let q = Array.make (m + 1) 0 in
    let vtop = v.(n - 1) and vnext = v.(n - 2) in
    for j = m downto 0 do
      let num = (u.(j + n) lsl base_bits) lor u.(j + n - 1) in
      let qhat = ref (num / vtop) and rhat = ref (num mod vtop) in
      let continue = ref true in
      while
        !continue
        && (!qhat >= base
            || !qhat * vnext > (!rhat lsl base_bits) lor u.(j + n - 2))
      do
        decr qhat;
        rhat := !rhat + vtop;
        if !rhat >= base then continue := false
      done;
      (* Multiply and subtract: u[j..j+n] -= qhat * v. *)
      let borrow = ref 0 and carry = ref 0 in
      for i = 0 to n - 1 do
        let p = (!qhat * v.(i)) + !carry in
        carry := p lsr base_bits;
        let d = u.(i + j) - (p land mask) - !borrow in
        if d < 0 then begin
          u.(i + j) <- d + base;
          borrow := 1
        end else begin
          u.(i + j) <- d;
          borrow := 0
        end
      done;
      let d = u.(j + n) - !carry - !borrow in
      if d < 0 then begin
        (* qhat was one too large: add back. *)
        u.(j + n) <- d + base;
        decr qhat;
        let c = ref 0 in
        for i = 0 to n - 1 do
          let s2 = u.(i + j) + v.(i) + !c in
          u.(i + j) <- s2 land mask;
          c := s2 lsr base_bits
        done;
        u.(j + n) <- (u.(j + n) + !c) land mask
      end else u.(j + n) <- d;
      q.(j) <- !qhat
    done;
    let r = normalize (Array.sub u 0 n) in
    (normalize q, shift_right r shift)
  end
