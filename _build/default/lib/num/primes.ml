(* Primality testing and prime generation.

   Miller-Rabin with deterministic small-prime trial division in front.
   Safe-prime generation (p = 2q + 1 with q prime) backs the Schnorr-group
   parameters and the RSA threshold-signature dealer; the paper's trusted
   dealer generates all of these once at setup time. *)

let small_primes =
  (* Primes below 1000, used for fast trial division. *)
  let limit = 1000 in
  let sieve = Array.make (limit + 1) true in
  sieve.(0) <- false;
  sieve.(1) <- false;
  for i = 2 to limit do
    if sieve.(i) then begin
      let j = ref (i * i) in
      while !j <= limit do
        sieve.(!j) <- false;
        j := !j + i
      done
    end
  done;
  let out = ref [] in
  for i = limit downto 2 do
    if sieve.(i) then out := i :: !out
  done;
  Array.of_list !out

let divisible_by_small_prime n =
  let exception Found in
  try
    Array.iter
      (fun p ->
        let bp = Bignum.of_int p in
        if Bignum.is_zero (Bignum.rem n bp) && not (Bignum.equal n bp) then
          raise Found)
      small_primes;
    false
  with Found -> true

(* One Miller-Rabin round with the given base. *)
let miller_rabin_round n ~base:a =
  let n1 = Bignum.pred n in
  (* n - 1 = d * 2^s with d odd *)
  let rec split d s = if Bignum.is_even d then split (Bignum.shift_right d 1) (s + 1) else (d, s) in
  let d, s = split n1 0 in
  let x = Bignum.pow_mod ~base:a ~exp:d ~modulus:n in
  if Bignum.equal x Bignum.one || Bignum.equal x n1 then true
  else begin
    let rec go x i =
      if i >= s - 1 then false
      else begin
        let x = Bignum.mul_mod x x n in
        if Bignum.equal x n1 then true
        else if Bignum.equal x Bignum.one then false
        else go x (i + 1)
      end
    in
    go x 0
  end

let is_probable_prime ?(rounds = 24) rng n =
  if Bignum.sign n <= 0 then false
  else
    match Bignum.to_int_opt n with
    | Some m when m < 2 -> false
    | Some m when m < 1_000_000 ->
      let rec go d = d * d > m || (m mod d <> 0 && go (d + 1)) in
      go 2
    | _ ->
      if Bignum.is_even n then false
      else if divisible_by_small_prime n then false
      else begin
        let n3 = Bignum.sub n (Bignum.of_int 3) in
        let rec loop i =
          i >= rounds
          ||
          let a = Bignum.add Bignum.two (Prng.bignum_below rng n3) in
          miller_rabin_round n ~base:a && loop (i + 1)
        in
        loop 0
      end

let random_prime rng ~bits =
  if bits < 3 then invalid_arg "Primes.random_prime: need at least 3 bits";
  let rec draw () =
    let c = Prng.bignum_bits rng (bits - 1) in
    (* Force top and bottom bit. *)
    let c = Bignum.add (Bignum.shift_left Bignum.one (bits - 1)) c in
    let c = if Bignum.is_even c then Bignum.succ c else c in
    if Bignum.numbits c = bits && is_probable_prime rng c then c else draw ()
  in
  draw ()

let random_safe_prime rng ~bits =
  if bits < 5 then invalid_arg "Primes.random_safe_prime: need at least 5 bits";
  (* Draw candidate q of bits-1 bits; accept when both q and 2q+1 prime.
     Cheap screens first: q odd, q mod 3 <> 1 would make p divisible by 3. *)
  let three = Bignum.of_int 3 in
  let rec draw () =
    let q = Bignum.add (Bignum.shift_left Bignum.one (bits - 2)) (Prng.bignum_bits rng (bits - 2)) in
    let q = if Bignum.is_even q then Bignum.succ q else q in
    let p = Bignum.succ (Bignum.shift_left q 1) in
    let q_mod3 = Bignum.rem q three in
    if
      Bignum.numbits p = bits
      && not (Bignum.equal q_mod3 Bignum.one)
      && (not (divisible_by_small_prime q))
      && (not (divisible_by_small_prime p))
      && is_probable_prime ~rounds:8 rng q
      && is_probable_prime ~rounds:8 rng p
      && is_probable_prime rng q
      && is_probable_prime rng p
    then (p, q)
    else draw ()
  in
  draw ()
