(** Primality testing and prime generation (Miller-Rabin). *)

val is_probable_prime : ?rounds:int -> Prng.t -> Bignum.t -> bool
(** Miller-Rabin with [rounds] random bases (default 24) after trial
    division; exact for values below 10{^6}. *)

val random_prime : Prng.t -> bits:int -> Bignum.t
(** Uniform-ish prime with exactly [bits] bits (top bit forced). *)

val random_safe_prime : Prng.t -> bits:int -> Bignum.t * Bignum.t
(** [random_safe_prime rng ~bits] is [(p, q)] with [p = 2q + 1], both
    prime, and [p] of exactly [bits] bits.  Used for Schnorr-group and
    threshold-RSA parameter generation by the trusted dealer. *)
