(* Deterministic pseudo-random generator (splitmix64).

   Used for reproducible simulation schedules, test-parameter generation
   and key generation in the simulated deployments.  Not a cryptographic
   generator; the architecture's security analysis is out of scope for the
   simulator, which only needs unpredictability *within the model* (the
   threshold coin provides that at the protocol level). *)

type t = { mutable state : int64 }

let create ~seed = { state = Int64.of_int seed }

let copy t = { state = t.state }

let next_int64 t =
  let open Int64 in
  t.state <- add t.state 0x9E3779B97F4A7C15L;
  let z = t.state in
  let z = mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL in
  logxor z (shift_right_logical z 31)

(* Uniform int in [0, 2^bits), bits <= 62. *)
let bits t b =
  assert (b >= 0 && b <= 62);
  if b = 0 then 0
  else Int64.to_int (Int64.shift_right_logical (next_int64 t) (64 - b)) land ((1 lsl b) - 1)

let int t bound =
  if bound <= 0 then invalid_arg "Prng.int: bound must be positive";
  (* Rejection sampling over the smallest covering power of two. *)
  let nb =
    let rec go b = if 1 lsl b >= bound then b else go (b + 1) in
    go 1
  in
  let rec draw () =
    let v = bits t nb in
    if v < bound then v else draw ()
  in
  draw ()

let bool t = bits t 1 = 1

let float t =
  Int64.to_float (Int64.shift_right_logical (next_int64 t) 11)
  /. 9007199254740992.0 (* 2^53 *)

let bytes t n =
  String.init n (fun _ -> Char.chr (bits t 8))

let split t =
  (* Derive an independently-seeded child generator. *)
  let s = next_int64 t in
  { state = Int64.logxor s 0xD1B54A32D192ED03L }

(* Uniform Bignum in [0, 2^nbits). *)
let bignum_bits t nbits =
  let full = nbits / 8 and rest = nbits mod 8 in
  let s = bytes t (full + if rest > 0 then 1 else 0) in
  let v = Bignum.of_bytes_be s in
  let excess = (8 * String.length s) - nbits in
  Bignum.shift_right v excess

(* Uniform Bignum in [0, bound). *)
let bignum_below t bound =
  if Bignum.sign bound <= 0 then invalid_arg "Prng.bignum_below";
  let nb = Bignum.numbits bound in
  let rec draw () =
    let v = bignum_bits t nb in
    if Bignum.lt v bound then v else draw ()
  in
  draw ()
