(** Deterministic pseudo-random generator (splitmix64).

    Drives reproducible simulation schedules and key generation.  Every
    experiment in this repository is seeded, so all results are exactly
    reproducible. *)

type t

val create : seed:int -> t
val copy : t -> t

val next_int64 : t -> int64

val bits : t -> int -> int
(** [bits t b] is uniform in [\[0, 2{^b})]; requires [0 <= b <= 62]. *)

val int : t -> int -> int
(** [int t bound] is uniform in [\[0, bound)]. *)

val bool : t -> bool

val float : t -> float
(** Uniform in [\[0, 1)]. *)

val bytes : t -> int -> string

val split : t -> t
(** Derive an independently seeded child generator (advances the parent). *)

val bignum_bits : t -> int -> Bignum.t
(** Uniform in [\[0, 2{^nbits})]. *)

val bignum_below : t -> Bignum.t -> Bignum.t
(** Uniform in [\[0, bound)] by rejection sampling. *)
