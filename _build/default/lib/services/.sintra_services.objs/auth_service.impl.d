lib/services/auth_service.ml: Codec Hashtbl Option Ro Sha256
