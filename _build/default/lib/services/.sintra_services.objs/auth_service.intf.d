lib/services/auth_service.mli:
