lib/services/ca.ml: Codec Hashtbl Option String
