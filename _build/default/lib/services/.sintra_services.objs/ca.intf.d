lib/services/ca.mli:
