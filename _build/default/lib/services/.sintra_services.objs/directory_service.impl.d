lib/services/directory_service.ml: Codec Hashtbl List
