lib/services/directory_service.mli:
