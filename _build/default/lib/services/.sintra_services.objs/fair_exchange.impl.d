lib/services/fair_exchange.ml: Codec Hashtbl Option Sha256
