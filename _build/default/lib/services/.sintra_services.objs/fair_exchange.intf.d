lib/services/fair_exchange.mli:
