lib/services/notary.ml: Codec Hashtbl Option Sha256
