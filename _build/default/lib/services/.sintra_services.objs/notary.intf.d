lib/services/notary.mli:
