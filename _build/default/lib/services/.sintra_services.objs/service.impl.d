lib/services/service.ml: Abc Adversary_structure Array Codec Hashtbl Keyring List Prng Proto_io Ro Scabc Sha256 Sim String
