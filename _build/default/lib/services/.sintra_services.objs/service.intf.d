lib/services/service.mli: Abc Keyring Scabc Sim
