(* Distributed authentication service (paper, Section 5: the MAFTIA
   deliverable's authentication service, a Kerberos-style ticket
   granter).

   Users register a verifier (the salted hash of their password); a
   successful login returns a ticket body whose threshold service
   signature IS the ticket — any relying service verifies it against the
   authentication service's single public key.  Tickets carry the
   service's logical clock (the count of executed requests) as issue
   time, so relying parties can enforce freshness windows without any
   real-time assumption.

   Login requests contain the password, so deployments should use the
   Confidential (secure causal broadcast) engine: the password must not
   be visible to corrupted servers before the request is ordered — the
   same reasoning as the notary. *)

type account = { salt : string; verifier : string }

type state = {
  accounts : (string, account) Hashtbl.t;
  mutable clock : int;  (* logical issue time *)
}

let hash_password ~salt ~password =
  Sha256.to_hex (Ro.hash ~domain:"auth/verifier" [ salt; password ])

let register_request ~user ~password ~salt =
  Codec.encode [ "register"; user; salt; hash_password ~salt ~password ]

let login_request ~user ~password = Codec.encode [ "login"; user; password ]
let change_password_request ~user ~old_password ~new_password ~salt =
  Codec.encode
    [ "change"; user; old_password; salt;
      hash_password ~salt ~password:new_password ]

let ticket_body ~user ~issued_at =
  Codec.encode [ "ticket"; user; string_of_int issued_at ]

let denial reason = Codec.encode [ "denied"; reason ]

let execute (st : state) (request : string) : string =
  st.clock <- st.clock + 1;
  match Codec.decode request with
  | Some [ "register"; user; salt; verifier ] ->
    if Hashtbl.mem st.accounts user then denial "user exists"
    else begin
      Hashtbl.replace st.accounts user { salt; verifier };
      Codec.encode [ "registered"; user ]
    end
  | Some [ "login"; user; password ] ->
    (match Hashtbl.find_opt st.accounts user with
    | None -> denial "unknown user"
    | Some acct ->
      if hash_password ~salt:acct.salt ~password = acct.verifier then
        ticket_body ~user ~issued_at:st.clock
      else denial "bad password")
  | Some [ "change"; user; old_password; salt; verifier ] ->
    (match Hashtbl.find_opt st.accounts user with
    | None -> denial "unknown user"
    | Some acct ->
      if hash_password ~salt:acct.salt ~password:old_password = acct.verifier
      then begin
        Hashtbl.replace st.accounts user { salt; verifier };
        Codec.encode [ "changed"; user ]
      end
      else denial "bad password")
  | Some _ | None -> denial "malformed request"

let make_app () : string -> string =
  let st = { accounts = Hashtbl.create 16; clock = 0 } in
  execute st

(* Relying-party side: a ticket is (body, service signature); this parses
   the body, the caller checks the signature with
   {!Keyring.service_verify} and applies its own freshness window on the
   logical issue time. *)
let parse_ticket (body : string) : (string * int) option =
  match Codec.decode body with
  | Some [ "ticket"; user; issued ] ->
    Option.map (fun t -> (user, t)) (int_of_string_opt issued)
  | Some _ | None -> None
