(** Distributed authentication service (Kerberos-style ticket granter;
    paper Section 5 / MAFTIA deliverable).  A successful login's
    threshold-signed response body IS the ticket, verifiable by any
    relying service against the single service key; tickets carry the
    service's logical clock as issue time.  Deploy over secure causal
    broadcast — login requests contain the password. *)

val hash_password : salt:string -> password:string -> string

val register_request : user:string -> password:string -> salt:string -> string
val login_request : user:string -> password:string -> string

val change_password_request :
  user:string -> old_password:string -> new_password:string -> salt:string ->
  string

val ticket_body : user:string -> issued_at:int -> string

val make_app : unit -> string -> string
(** Fresh per-replica state machine. *)

val parse_ticket : string -> (string * int) option
(** [(user, logical_issue_time)] from a ticket body; the caller verifies
    the accompanying service signature. *)
