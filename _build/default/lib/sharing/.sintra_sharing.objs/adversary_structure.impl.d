lib/sharing/adversary_structure.ml: Format List Monotone_formula Pset
