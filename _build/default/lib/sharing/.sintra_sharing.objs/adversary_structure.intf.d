lib/sharing/adversary_structure.mli: Format Monotone_formula Pset
