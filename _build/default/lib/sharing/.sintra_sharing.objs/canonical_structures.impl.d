lib/sharing/canonical_structures.ml: Adversary_structure List Monotone_formula Pset
