lib/sharing/lsss.ml: Array Bignum List Monotone_formula Poly Pset
