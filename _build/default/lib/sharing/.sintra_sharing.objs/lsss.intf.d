lib/sharing/lsss.mli: Bignum Monotone_formula Prng Pset
