lib/sharing/monotone_formula.ml: Format List Pset
