lib/sharing/monotone_formula.mli: Format Pset
