lib/sharing/poly.ml: Array Bignum List Prng
