lib/sharing/poly.mli: Bignum Prng
