lib/sharing/pset.ml: Format List String
