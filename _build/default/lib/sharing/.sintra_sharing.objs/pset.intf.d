lib/sharing/pset.mli: Format
