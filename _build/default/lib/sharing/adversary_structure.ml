(* Generalized adversary structures (paper, Section 4).

   An adversary structure A is the monotone (subset-closed) family of
   party subsets that the adversary may corrupt.  Alongside A, each
   structure carries a monotone *sharing formula* F describing the linear
   secret sharing scheme used by the threshold cryptography.  The two are
   related but not identical: the deployment is sound when

     secrecy:       every corruptible set is unqualified under F, and
     availability:  the complement of every corruptible set is qualified.

   (For the simple threshold case and for the paper's Example 1 the
   families coincide exactly; for Example 2 the sharing tolerates strictly
   more unqualified sets than the trust assumption requires, which is
   harmless — see {!check_sharing_compatible}.)

   The protocols of Section 3 are generalized by replacing their counting
   thresholds with the monotone predicates below (Section 4.2):

   - "n - t values"  -> a set whose complement is corruptible      [big_quorum]
   - "2t + 1 values" -> even after removing any corruptible set,
                        the rest is still not corruptible          [two_cover]
   - "t + 1 values"  -> a set that is not corruptible, hence
                        guaranteed to contain an honest party      [contains_honest]

   In the threshold case these coincide exactly with n-t, 2t+1, t+1. *)

type t = {
  n : int;
  kind : kind;
  access : Monotone_formula.t;  (* sharing formula *)
  mutable maximal_cache : Pset.t list option;
}

and kind =
  | Threshold_kind of int  (** classic t-out-of-n; fast paths apply *)
  | Complement_kind  (** corruptible = complement of the sharing formula *)
  | Explicit_kind of Pset.t list  (** corruptible = subset of a listed set *)
  | Hybrid_kind of int * int
      (** Section 6 "hybrid failure structures": up to [b] Byzantine
          corruptions and, separately, up to [c] crash failures.  Crashed
          parties are silent but never lie and never leak key material,
          so the quorum arithmetic improves: n > 3b + 2c suffices instead
          of n > 3(b + c). *)

let n t = t.n
let access_formula t = t.access

let threshold ~n ~t =
  if t < 0 || t >= n then invalid_arg "Adversary_structure.threshold";
  { n;
    kind = Threshold_kind t;
    access = Monotone_formula.simple_threshold ~n ~k:(t + 1);
    maximal_cache = None }

(* Hybrid failure structure: secrecy is threatened only by the b
   Byzantine corruptions (crashes do not leak), so the sharing threshold
   is b + 1; liveness must survive b liars plus c silent parties. *)
let hybrid_threshold ~n ~byzantine ~crash =
  if byzantine < 0 || crash < 0 || byzantine + crash >= n then
    invalid_arg "Adversary_structure.hybrid_threshold";
  { n;
    kind = Hybrid_kind (byzantine, crash);
    access = Monotone_formula.simple_threshold ~n ~k:(byzantine + 1);
    maximal_cache = None }

(* The adversary structure is exactly the complement of the access
   formula: corruptible = unqualified (paper, Section 4.1 and Example 1). *)
let of_access_formula ~n access =
  if n < 1 || n > Pset.max_parties then
    invalid_arg "Adversary_structure.of_access_formula: bad n";
  { n; kind = Complement_kind; access; maximal_cache = None }

(* Explicitly listed maximal corruptible sets, with a hand-picked sharing
   formula (paper, Example 2). *)
let of_maximal_sets ~n ~access (sets : Pset.t list) =
  if n < 1 || n > Pset.max_parties then
    invalid_arg "Adversary_structure.of_maximal_sets: bad n";
  if sets = [] then invalid_arg "Adversary_structure.of_maximal_sets: empty";
  { n; kind = Explicit_kind sets; access; maximal_cache = None }

let threshold_of t =
  match t.kind with
  | Threshold_kind k -> Some k
  | Hybrid_kind (b, _) -> Some b
  | Complement_kind | Explicit_kind _ -> None

(* Cardinality of the smallest big quorum, for counting-based kinds. *)
let min_big_quorum_size t =
  match t.kind with
  | Threshold_kind k -> Some (t.n - k)
  | Hybrid_kind (b, c) -> Some (t.n - b - c)
  | Complement_kind | Explicit_kind _ -> None

let is_corruptible t s =
  match t.kind with
  | Threshold_kind k -> Pset.card s <= k
  | Hybrid_kind (b, _) -> Pset.card s <= b
  | Complement_kind -> not (Monotone_formula.eval t.access s)
  | Explicit_kind sets -> List.exists (fun a -> Pset.subset s a) sets

let is_qualified t s = not (is_corruptible t s)

(* Wait-predicate replacing "received from at least n - t parties". *)
let big_quorum t (s : Pset.t) : bool =
  match t.kind with
  | Threshold_kind k -> Pset.card s >= t.n - k
  | Hybrid_kind (b, c) -> Pset.card s >= t.n - b - c
  | Complement_kind | Explicit_kind _ ->
    is_corruptible t (Pset.complement t.n s)

(* Wait-predicate replacing "received from at least t + 1 parties":
   guarantees at least one honest member. *)
let contains_honest t (s : Pset.t) : bool =
  match t.kind with
  | Threshold_kind k -> Pset.card s >= k + 1
  | Hybrid_kind (b, _) -> Pset.card s >= b + 1
  | Complement_kind | Explicit_kind _ -> is_qualified t s

(* All maximal corruptible sets A^*. *)
let maximal_adversary_sets t : Pset.t list =
  match t.maximal_cache with
  | Some l -> l
  | None ->
    let l =
      match t.kind with
      | Explicit_kind sets ->
        (* Drop sets contained in another listed set. *)
        List.filter
          (fun a ->
            not
              (List.exists
                 (fun b -> (not (Pset.equal a b)) && Pset.subset a b)
                 sets))
          sets
      | Threshold_kind _ | Hybrid_kind _ | Complement_kind ->
        (* S is maximal corruptible iff corruptible and S + {i} is
           qualified for every i outside S. *)
        let out = ref [] in
        Pset.iter_subsets t.n (fun s ->
            if
              is_corruptible t s
              && Pset.for_all
                   (fun i -> Pset.mem i s || is_qualified t (Pset.add i s))
                   (Pset.full t.n)
            then out := s :: !out);
        List.rev !out
    in
    t.maximal_cache <- Some l;
    l

(* Wait-predicate replacing "received from at least 2t + 1 parties":
   even after discarding any maximal corruptible set, what remains is
   still qualified (hence contains an honest party under any corruption
   pattern in A). *)
let two_cover t (s : Pset.t) : bool =
  match t.kind with
  | Threshold_kind k -> Pset.card s >= (2 * k) + 1
  | Hybrid_kind (b, _) -> Pset.card s >= (2 * b) + 1
  | Complement_kind | Explicit_kind _ ->
    List.for_all
      (fun a -> is_qualified t (Pset.diff s a))
      (maximal_adversary_sets t)

(* Q^3 condition (Hirt-Maurer): no three corruptible sets cover P.
   Necessary and sufficient for asynchronous Byzantine agreement with a
   general adversary; reduces to n > 3t in the threshold case. *)
let satisfies_q3 t : bool =
  match t.kind with
  | Threshold_kind k -> t.n > 3 * k
  | Hybrid_kind (b, c) -> t.n > (3 * b) + (2 * c)
  | Complement_kind | Explicit_kind _ ->
    let maxes = maximal_adversary_sets t in
    let full = Pset.full t.n in
    List.for_all
      (fun a ->
        List.for_all
          (fun b ->
            List.for_all
              (fun c -> not (Pset.equal (Pset.union a (Pset.union b c)) full))
              maxes)
          maxes)
      maxes

(* Q^2: no two corruptible sets cover P. *)
let satisfies_q2 t : bool =
  match t.kind with
  | Threshold_kind k -> t.n > 2 * k
  | Hybrid_kind (b, c) -> t.n > (2 * b) + c
  | Complement_kind | Explicit_kind _ ->
    let maxes = maximal_adversary_sets t in
    let full = Pset.full t.n in
    List.for_all
      (fun a ->
        List.for_all (fun b -> not (Pset.equal (Pset.union a b) full)) maxes)
      maxes

(* Soundness of the sharing formula w.r.t. the trust assumption:
   corruptible coalitions must not reconstruct, and the honest remainder
   of any corruption pattern must be able to.  Exhaustive over A^*
   (monotonicity covers the rest). *)
let check_sharing_compatible t : bool =
  List.for_all
    (fun a ->
      (not (Monotone_formula.eval t.access a))
      && Monotone_formula.eval t.access (Pset.complement t.n a))
    (maximal_adversary_sets t)

(* Largest f such that every f-subset is corruptible: the best uniform
   (pure-threshold) tolerance implied by the structure. *)
let max_uniform_tolerance t : int =
  let rec go f =
    if f >= t.n then t.n - 1
    else begin
      let ok = ref true in
      Pset.iter_subsets t.n (fun s ->
          if Pset.card s = f + 1 && is_qualified t s then ok := false);
      if !ok then go (f + 1) else f
    end
  in
  go 0

let pp fmt t =
  Format.fprintf fmt "@[<v>structure over %d parties, sharing=%a@]" t.n
    Monotone_formula.pp t.access
