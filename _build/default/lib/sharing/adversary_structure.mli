(** Generalized adversary structures (paper, Section 4).

    An adversary structure A is the monotone family of party subsets the
    adversary may corrupt; alongside it each structure carries a monotone
    sharing formula for the associated linear secret sharing scheme.  The
    protocols of Section 3 are generalized by replacing their counting
    thresholds with the three monotone predicates below (Section 4.2),
    which reduce to n−t / 2t+1 / t+1 in the threshold case. *)

type t

val threshold : n:int -> t:int -> t
(** Classic t-out-of-n structure (fast paths for all predicates). *)

val hybrid_threshold : n:int -> byzantine:int -> crash:int -> t
(** Section 6 "hybrid failure structure": up to [byzantine] arbitrary
    corruptions plus, separately, up to [crash] crash failures.  Crashed
    servers are silent but never lie or leak keys, so n > 3b + 2c
    suffices (instead of n > 3(b+c)): e.g. 6 servers tolerate one
    Byzantine plus one crashed, where uniform Byzantine treatment would
    need 7.  [threshold_of] reports [byzantine] (the sharing threshold
    is b + 1). *)

val of_access_formula : n:int -> Monotone_formula.t -> t
(** Structure whose corruptible sets are exactly the unqualified sets of
    the formula (paper Example 1). *)

val of_maximal_sets : n:int -> access:Monotone_formula.t -> Pset.t list -> t
(** Structure with explicitly listed maximal corruptible sets and a
    hand-picked sharing formula (paper Example 2); use
    {!check_sharing_compatible} to validate the pairing. *)

val n : t -> int

val access_formula : t -> Monotone_formula.t
(** The sharing formula used by the threshold cryptography. *)

val threshold_of : t -> int option
(** [Some t] for plain threshold structures; [Some b] (the Byzantine
    bound, which is also the sharing threshold minus one) for hybrid
    structures. *)

val min_big_quorum_size : t -> int option
(** Cardinality of the smallest big quorum for counting-based structures
    (n − t, or n − b − c for hybrid ones). *)

val is_corruptible : t -> Pset.t -> bool
val is_qualified : t -> Pset.t -> bool

val big_quorum : t -> Pset.t -> bool
(** Replaces "received from at least n − t parties": the complement of
    the set is corruptible. *)

val contains_honest : t -> Pset.t -> bool
(** Replaces "at least t + 1 parties": the set is not corruptible, hence
    surely contains an honest party. *)

val two_cover : t -> Pset.t -> bool
(** Replaces "at least 2t + 1 parties": removing any corruptible set
    still leaves a non-corruptible remainder. *)

val maximal_adversary_sets : t -> Pset.t list
(** A{^*}: enumerated (and cached); exhaustive search for formula-defined
    structures with n ≤ 24. *)

val satisfies_q3 : t -> bool
(** No three corruptible sets cover all parties — necessary and
    sufficient for asynchronous Byzantine agreement (n > 3t specializes
    this). *)

val satisfies_q2 : t -> bool

val check_sharing_compatible : t -> bool
(** Secrecy (no corruptible set is sharing-qualified) and availability
    (the complement of every corruptible set is sharing-qualified). *)

val max_uniform_tolerance : t -> int
(** Largest f such that every f-subset is corruptible: the best uniform
    threshold implied by the structure. *)

val pp : Format.formatter -> t -> unit
