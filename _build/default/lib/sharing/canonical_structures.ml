(* The concrete generalized adversary structures of Section 4.3.

   Parties are 0-indexed here (the paper numbers them 1..n). *)

module F = Monotone_formula

(* One attribute: [classes] partitions the parties; a set "covers" a
   class when it contains at least one member of it.  [class_cover ~k]
   is Theta_k over the class-characteristic functions chi_c. *)
let class_cover ~(classes : int list list) ~k : F.t =
  F.threshold k (List.map (fun members -> F.or_ (List.map F.leaf members)) classes)

(* Example 1 (paper): nine servers, one attribute class = {a,b,c,d} with
   class(1..4) = a, class(5..6) = b, class(7..8) = c, class(9) = d.
   Tolerates any two arbitrary servers or all servers of one class.
   Access structure: Theta_3^9(S)  AND  Theta_2^4(chi_a, ..., chi_d). *)
let example1_classes = [ [ 0; 1; 2; 3 ]; [ 4; 5 ]; [ 6; 7 ]; [ 8 ] ]

let example1 () : Adversary_structure.t =
  let access =
    F.and_
      [ F.simple_threshold ~n:9 ~k:3;
        class_cover ~classes:example1_classes ~k:2 ]
  in
  Adversary_structure.of_access_formula ~n:9 access

(* Example 2 (paper): sixteen servers arranged in a 4x4 grid of
   (location, operating system) cells, one server per cell.  Party index
   of cell (r, c) is 4r + c.  The secret splits into a location part and
   an OS part: each must be recovered from at least two rows
   (resp. columns), and each row/column value is shared 2-out-of-4 among
   its cells.  Tolerates the simultaneous corruption of all servers at
   one location plus all servers of one OS (7 of 16 servers). *)
let example2_party ~row ~col = (4 * row) + col

(* Sharing formula for a grid of (location, OS) cells: the secret splits
   into a location part and an OS part (AND); the location part needs at
   least [row_quorum] row values, each row value shared
   [cell_quorum]-out-of-[cols] among its cells; symmetrically for
   columns.  This is the nested Benaloh-Leichter scheme described in the
   Example 2 discussion of the paper. *)
let grid_sharing_formula ~rows ~cols ~row_quorum ~col_quorum ~cell_quorum : F.t =
  let cell r c = F.leaf ((cols * r) + c) in
  let row_part =
    F.threshold row_quorum
      (List.init rows (fun r ->
           F.threshold cell_quorum (List.init cols (fun c -> cell r c))))
  in
  let col_part =
    F.threshold col_quorum
      (List.init cols (fun c ->
           F.threshold cell_quorum (List.init rows (fun r -> cell r c))))
  in
  F.and_ [ row_part; col_part ]

(* The corruption patterns of Example 2: all servers at one location
   together with all servers running one operating system — a full row
   plus a full column of the grid (7 of 16 servers). *)
let row_plus_col ~rows ~cols ~row ~col : Pset.t =
  let s = ref Pset.empty in
  for c = 0 to cols - 1 do
    s := Pset.add ((cols * row) + c) !s
  done;
  for r = 0 to rows - 1 do
    s := Pset.add ((cols * r) + col) !s
  done;
  !s

let grid_structure ~rows ~cols : Adversary_structure.t =
  let maximal =
    List.concat
      (List.init rows (fun row ->
           List.init cols (fun col -> row_plus_col ~rows ~cols ~row ~col)))
  in
  Adversary_structure.of_maximal_sets ~n:(rows * cols)
    ~access:
      (grid_sharing_formula ~rows ~cols ~row_quorum:2 ~col_quorum:2
         ~cell_quorum:2)
    maximal

let example2 () : Adversary_structure.t = grid_structure ~rows:4 ~cols:4

let example2_site_plus_os ~row ~col : Pset.t =
  row_plus_col ~rows:4 ~cols:4 ~row ~col
