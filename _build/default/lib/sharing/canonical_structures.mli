(** The concrete generalized adversary structures of the paper's
    Section 4.3 (parties 0-indexed; the paper numbers them 1..n). *)

val class_cover : classes:int list list -> k:int -> Monotone_formula.t
(** Θ{_k} over the class-characteristic functions χ{_c} of a partition. *)

val example1_classes : int list list
(** class(0..3) = a, class(4,5) = b, class(6,7) = c, class(8) = d. *)

val example1 : unit -> Adversary_structure.t
(** Nine servers: tolerates any two servers or all servers of one class;
    access = Θ{_3}{^9}(S) ∧ Θ{_2}{^4}(χ{_a},χ{_b},χ{_c},χ{_d}). *)

val grid_sharing_formula :
  rows:int -> cols:int -> row_quorum:int -> col_quorum:int -> cell_quorum:int ->
  Monotone_formula.t
(** The nested two-level sharing of Example 2: a location part and an OS
    part, each recovered from [row_quorum] row values (resp. columns),
    every row value shared [cell_quorum]-out-of-[cols] among its cells. *)

val row_plus_col : rows:int -> cols:int -> row:int -> col:int -> Pset.t
(** All servers at one location plus all servers of one OS. *)

val grid_structure : rows:int -> cols:int -> Adversary_structure.t

val example2_party : row:int -> col:int -> int
(** Party index of grid cell (row = site, col = OS). *)

val example2 : unit -> Adversary_structure.t
(** Sixteen servers in a 4×4 site × OS grid: tolerates the simultaneous
    corruption of one full site plus one full OS (7 of 16 servers);
    satisfies Q{^3}, while thresholds on 16 servers stop at t = 5. *)

val example2_site_plus_os : row:int -> col:int -> Pset.t
