(* Monotone boolean formulas over party indices, built from threshold
   gates (paper, Section 4.2).

   A formula describes an access structure: [eval f s] tells whether the
   party set [s] is qualified.  AND and OR are the threshold gates
   Theta_n^n and Theta_1^n.  The same formulas drive the Benaloh-Leichter
   linear secret sharing scheme in {!Lsss}. *)

type t =
  | Leaf of int  (** party index *)
  | Threshold of int * t list  (** at least [k] of the children *)

let leaf i =
  if i < 0 then invalid_arg "Monotone_formula.leaf: negative index";
  Leaf i

let threshold k children =
  let m = List.length children in
  if k < 1 || k > m then invalid_arg "Monotone_formula.threshold: bad k";
  Threshold (k, children)

let and_ children = threshold (List.length children) children
let or_ children = threshold 1 children

(* k-out-of-n over parties 0..n-1. *)
let simple_threshold ~n ~k = threshold k (List.init n leaf)

(* Weighted threshold: party i counts with weight w_i; qualified when the
   total weight reaches [k].  Encoded by replicating leaves, exactly the
   "several logical parties per physical party" trick of the paper. *)
let weighted_threshold ~weights ~k =
  let leaves =
    List.concat (List.mapi (fun i w -> List.init w (fun _ -> leaf i)) weights)
  in
  threshold k leaves

let rec eval (f : t) (s : Pset.t) : bool =
  match f with
  | Leaf i -> Pset.mem i s
  | Threshold (k, children) ->
    let sat = List.fold_left (fun acc c -> if eval c s then acc + 1 else acc) 0 children in
    sat >= k

let rec parties (f : t) : Pset.t =
  match f with
  | Leaf i -> Pset.singleton i
  | Threshold (_, children) ->
    List.fold_left (fun acc c -> Pset.union acc (parties c)) Pset.empty children

let rec size (f : t) : int =
  match f with
  | Leaf _ -> 1
  | Threshold (_, children) ->
    List.fold_left (fun acc c -> acc + size c) 1 children

let rec leaves (f : t) : int list =
  match f with
  | Leaf i -> [ i ]
  | Threshold (_, children) -> List.concat_map leaves children

let rec pp fmt (f : t) =
  match f with
  | Leaf i -> Format.fprintf fmt "P%d" i
  | Threshold (k, children) ->
    Format.fprintf fmt "@[<hov 1>Theta_%d(%a)@]" k
      (Format.pp_print_list ~pp_sep:(fun fmt () -> Format.fprintf fmt ",@ ") pp)
      children
