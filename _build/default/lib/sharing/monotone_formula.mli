(** Monotone boolean formulas over party indices, built from threshold
    gates Θ{_k}{^n} (paper, Section 4.2).

    A formula describes an access structure: [eval f s] says whether the
    party set [s] is qualified.  The same formulas drive the
    Benaloh–Leichter linear secret sharing scheme in {!Lsss}. *)

type t =
  | Leaf of int  (** party index *)
  | Threshold of int * t list  (** at least [k] of the children *)

val leaf : int -> t

val threshold : int -> t list -> t
(** [threshold k children]; requires [1 <= k <= |children|]. *)

val and_ : t list -> t
(** Θ{_n}{^n}. *)

val or_ : t list -> t
(** Θ{_1}{^n}. *)

val simple_threshold : n:int -> k:int -> t
(** [k]-out-of-[n] over parties [0..n-1]. *)

val weighted_threshold : weights:int list -> k:int -> t
(** Party [i] counts with weight [weights_i]; qualified at total weight
    [k].  The "several logical parties per physical party" encoding. *)

val eval : t -> Pset.t -> bool
val parties : t -> Pset.t
val size : t -> int

val leaves : t -> int list
(** Leaf owners in DFS order — the leaf numbering used by {!Lsss}. *)

val pp : Format.formatter -> t -> unit
