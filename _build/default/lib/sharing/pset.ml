(* Sets of parties, represented as bit masks in a native int.

   Parties are indexed 0 .. n-1 with n <= 62.  The architecture targets
   small static server sets (the paper's examples use 9 and 16 servers),
   so a machine word is both sufficient and fast enough to enumerate
   adversary structures exhaustively. *)

type t = int

let max_parties = 62
let empty : t = 0

let full n : t =
  if n < 0 || n > max_parties then invalid_arg "Pset.full";
  (1 lsl n) - 1

let mem i (s : t) = (s lsr i) land 1 = 1
let add i (s : t) = s lor (1 lsl i)
let remove i (s : t) = s land lnot (1 lsl i)
let singleton i : t = 1 lsl i
let union (a : t) (b : t) : t = a lor b
let inter (a : t) (b : t) : t = a land b
let diff (a : t) (b : t) : t = a land lnot b
let subset (a : t) (b : t) = a land lnot b = 0
let disjoint (a : t) (b : t) = a land b = 0
let equal (a : t) (b : t) = a = b
let is_empty (s : t) = s = 0
let complement n (s : t) : t = full n land lnot s

let card (s : t) =
  let rec go s acc = if s = 0 then acc else go (s lsr 1) (acc + (s land 1)) in
  go s 0

let of_list l = List.fold_left (fun s i -> add i s) empty l

let to_list (s : t) =
  let rec go i acc =
    if i < 0 then acc else go (i - 1) (if mem i s then i :: acc else acc)
  in
  go (max_parties - 1) []

let iter f (s : t) = List.iter f (to_list s)
let fold f (s : t) init = List.fold_left (fun acc i -> f i acc) init (to_list s)
let for_all f (s : t) = List.for_all f (to_list s)
let exists f (s : t) = List.exists f (to_list s)

(* Iterate over all 2^n subsets of {0..n-1}. *)
let iter_subsets n f =
  if n > 24 then invalid_arg "Pset.iter_subsets: n too large to enumerate";
  for s = 0 to (1 lsl n) - 1 do
    f s
  done

let pp fmt (s : t) =
  Format.fprintf fmt "{%s}"
    (String.concat "," (List.map string_of_int (to_list s)))

let to_string (s : t) = Format.asprintf "%a" pp s
