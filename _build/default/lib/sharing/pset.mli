(** Sets of parties as machine-word bit masks (parties 0..61).

    The architecture targets small static server sets (the paper's
    examples use 9 and 16 servers), so a native [int] is sufficient and
    allows exhaustive enumeration of adversary structures. *)

type t = int

val max_parties : int
val empty : t

val full : int -> t
(** [full n] is [{0, ..., n-1}]. *)

val mem : int -> t -> bool
val add : int -> t -> t
val remove : int -> t -> t
val singleton : int -> t
val union : t -> t -> t
val inter : t -> t -> t
val diff : t -> t -> t
val subset : t -> t -> bool
val disjoint : t -> t -> bool
val equal : t -> t -> bool
val is_empty : t -> bool

val complement : int -> t -> t
(** [complement n s] relative to [full n]. *)

val card : t -> int
val of_list : int list -> t
val to_list : t -> int list
val iter : (int -> unit) -> t -> unit
val fold : (int -> 'a -> 'a) -> t -> 'a -> 'a
val for_all : (int -> bool) -> t -> bool
val exists : (int -> bool) -> t -> bool

val iter_subsets : int -> (t -> unit) -> unit
(** Enumerate all subsets of [{0..n-1}]; refuses [n > 24]. *)

val pp : Format.formatter -> t -> unit
val to_string : t -> string
