lib/sim/sim.ml: Array List Metrics Prng Pset
