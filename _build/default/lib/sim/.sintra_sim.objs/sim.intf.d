lib/sim/sim.mli: Metrics Pset
