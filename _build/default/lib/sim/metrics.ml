(* Counters collected by the network simulator; the message-complexity
   experiments (EXPERIMENTS.md, M1) read these. *)

type t = {
  mutable messages_sent : int;
  mutable bytes_sent : int;
  mutable deliveries : int;
  mutable drops : int;  (* messages to crashed parties *)
}

let create () = { messages_sent = 0; bytes_sent = 0; deliveries = 0; drops = 0 }

let reset t =
  t.messages_sent <- 0;
  t.bytes_sent <- 0;
  t.deliveries <- 0;
  t.drops <- 0

let pp fmt t =
  Format.fprintf fmt "sent=%d bytes=%d delivered=%d dropped=%d"
    t.messages_sent t.bytes_sent t.deliveries t.drops
