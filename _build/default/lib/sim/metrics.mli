(** Counters collected by the network simulator (read by the message-
    complexity experiments). *)

type t = {
  mutable messages_sent : int;
  mutable bytes_sent : int;
  mutable deliveries : int;
  mutable drops : int;  (** messages addressed to crashed parties *)
}

val create : unit -> t
val reset : t -> unit
val pp : Format.formatter -> t -> unit
