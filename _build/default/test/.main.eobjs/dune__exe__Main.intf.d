test/main.mli:
