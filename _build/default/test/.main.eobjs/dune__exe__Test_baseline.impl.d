test/test_baseline.ml: Abc Adversary_structure Alcotest Array Baseline_stack Fun Keyring List Pbft_lite Pset Sim Stack
