test/test_crypto_scale.ml: Adversary_structure Alcotest Bignum Char Coin Dl_sharing Keyring List Option Prng Pset Rsa_threshold Schnorr_group String Tdh2
