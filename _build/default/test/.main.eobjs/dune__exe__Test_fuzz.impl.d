test/test_fuzz.ml: Abba Adversary_structure Array Cbc Keyring Lazy List Printf Prng QCheck2 QCheck_alcotest Rbc Ro Sim Stack
