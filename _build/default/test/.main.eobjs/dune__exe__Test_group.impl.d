test/test_group.ml: Alcotest Bignum List Primes Prng QCheck2 QCheck_alcotest Schnorr_group String
