test/test_hash.ml: Alcotest Bignum List QCheck2 QCheck_alcotest Ro Sha256 String
