test/test_membership.ml: Alcotest Array List Membership_abc Pset Sha256 Sim
