test/test_num.ml: Alcotest Bignum List Primes Prng QCheck2 QCheck_alcotest String
