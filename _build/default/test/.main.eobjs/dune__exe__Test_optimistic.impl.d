test/test_optimistic.ml: Abc Adversary_structure Alcotest Array Keyring Lazy List Metrics Optimistic_abc Printf Proto_io Sim Stack
