test/test_protocols.ml: Abba Abc Adversary_structure Alcotest Array Canonical_structures Cbc Fun Hashtbl Keyring List Option Printf Prng Rbc Ro Scabc Sim Stack String Vba
