test/test_services.ml: Abc Adversary_structure Alcotest Array Ca Canonical_structures Codec Directory_service Keyring Lazy Notary Pset Scabc Service Sha256 Sim String
