test/test_services2.ml: Adversary_structure Alcotest Auth_service Codec Fair_exchange Keyring Lazy Service Sim
