test/test_sharing.ml: Adversary_structure Alcotest Bignum Canonical_structures List Lsss Monotone_formula Poly Printf Prng Pset QCheck2 QCheck_alcotest
