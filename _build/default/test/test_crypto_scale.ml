(* Scale and determinism checks for the crypto layer: larger RSA
   committees, multi-bit coins, kilobyte TDH2 payloads, and dealer
   reproducibility. *)

module B = Bignum
module AS = Adversary_structure

let tests =
  [ Alcotest.test_case "rsa threshold at n=10, k=4: disjoint share subsets"
      `Quick (fun () ->
        let keys = Rsa_threshold.deal ~bits:192 ~n:10 ~k:4 (Prng.create ~seed:90) in
        let msg = "scale test" in
        let share i = Rsa_threshold.sign_share keys ~party:i msg in
        List.iter
          (fun subset ->
            let shares = List.map share subset in
            List.iter
              (fun s ->
                Alcotest.(check bool) "share valid" true
                  (Rsa_threshold.verify_share keys msg s))
              shares;
            match Rsa_threshold.combine keys msg shares with
            | None -> Alcotest.fail "combine failed"
            | Some y ->
              Alcotest.(check bool) "signature valid" true
                (Rsa_threshold.verify keys.Rsa_threshold.pk msg y))
          [ [ 0; 1; 2; 3 ]; [ 6; 7; 8; 9 ]; [ 0; 3; 5; 9 ]; [ 2; 4; 6; 8 ] ];
        (* three shares are not enough *)
        Alcotest.(check bool) "k-1 refused" true
          (Rsa_threshold.combine keys msg (List.map share [ 0; 1; 2 ]) = None));
    Alcotest.test_case "coin with 8-bit output: in range, varies, consistent"
      `Quick (fun () ->
        let ps = Schnorr_group.default ~bits:96 () in
        let sharing =
          Dl_sharing.deal ps (AS.threshold ~n:4 ~t:1) (Prng.create ~seed:91)
        in
        let values =
          List.init 40 (fun k ->
              let name = "wide-coin-" ^ string_of_int k in
              let shares =
                List.init 2 (fun i ->
                    (i, Coin.generate_share sharing ~party:i ~name))
              in
              let a =
                Coin.combine sharing ~name ~avail:(Pset.of_list [ 0; 1 ])
                  shares ~bits:8 ()
              in
              (* a different qualified subset must agree *)
              let shares' =
                List.init 2 (fun i ->
                    (i + 2, Coin.generate_share sharing ~party:(i + 2) ~name))
              in
              let b =
                Coin.combine sharing ~name ~avail:(Pset.of_list [ 2; 3 ])
                  shares' ~bits:8 ()
              in
              Alcotest.(check bool) "consistent" true (a = b);
              match a with
              | Some v ->
                Alcotest.(check bool) "in range" true (v >= 0 && v < 256);
                v
              | None -> Alcotest.fail "combine failed")
        in
        Alcotest.(check bool) "values vary" true
          (List.length (List.sort_uniq compare values) > 8));
    Alcotest.test_case "tdh2 handles a 10 kB payload" `Quick (fun () ->
        let ps = Schnorr_group.default ~bits:96 () in
        let sharing =
          Dl_sharing.deal ps (AS.threshold ~n:4 ~t:1) (Prng.create ~seed:92)
        in
        let msg = String.init 10_240 (fun i -> Char.chr (i mod 251)) in
        let ct = Tdh2.encrypt sharing (Prng.create ~seed:1) ~label:"big" msg in
        let shares =
          List.filter_map
            (fun i ->
              Option.map (fun s -> (i, s)) (Tdh2.decryption_share sharing ~party:i ct))
            [ 1; 2 ]
        in
        Alcotest.(check (option string)) "roundtrip" (Some msg)
          (Tdh2.combine sharing ct ~avail:(Pset.of_list [ 1; 2 ]) shares));
    Alcotest.test_case "dealer determinism: same seed, same public material"
      `Quick (fun () ->
        let s = AS.threshold ~n:4 ~t:1 in
        let a = Keyring.deal ~rsa_bits:192 ~seed:93 s in
        let b = Keyring.deal ~rsa_bits:192 ~seed:93 s in
        let c = Keyring.deal ~rsa_bits:192 ~seed:94 s in
        Alcotest.(check bool) "same coin public key" true
          (Schnorr_group.elt_equal a.Keyring.coin.Dl_sharing.public_key
             b.Keyring.coin.Dl_sharing.public_key);
        Alcotest.(check bool) "same party key 0" true
          (Schnorr_group.elt_equal
             (Keyring.party_public_key a 0)
             (Keyring.party_public_key b 0));
        Alcotest.(check bool) "different seed differs" false
          (Schnorr_group.elt_equal a.Keyring.coin.Dl_sharing.public_key
             c.Keyring.coin.Dl_sharing.public_key);
        (match (a.Keyring.service, b.Keyring.service) with
        | Keyring.Rsa_keys ka, Keyring.Rsa_keys kb ->
          Alcotest.(check bool) "same RSA modulus" true
            (B.equal ka.Rsa_threshold.pk.Rsa_threshold.n_modulus
               kb.Rsa_threshold.pk.Rsa_threshold.n_modulus)
        | _ -> Alcotest.fail "expected RSA service keys"));
    Alcotest.test_case "signatures do not verify across keyrings" `Quick
      (fun () ->
        let s = AS.threshold ~n:4 ~t:1 in
        let a = Keyring.deal ~rsa_bits:192 ~seed:95 s in
        let b = Keyring.deal ~rsa_bits:192 ~seed:96 s in
        let sg = Keyring.sign a ~party:0 "msg" in
        Alcotest.(check bool) "own keyring ok" true
          (Keyring.verify_party_signature a ~party:0 "msg" sg);
        Alcotest.(check bool) "foreign keyring rejects" false
          (Keyring.verify_party_signature b ~party:0 "msg" sg))
  ]

let suite = ("crypto-scale", tests)
