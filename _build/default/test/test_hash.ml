(* SHA-256 known-answer tests (FIPS / NIST vectors) and random-oracle
   helper properties. *)

let qtest ?(count = 100) name gen f =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count ~name gen f)

let unit_tests =
  [ Alcotest.test_case "NIST vectors" `Quick (fun () ->
        let cases =
          [ ( "",
              "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855" );
            ( "abc",
              "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad" );
            ( "abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq",
              "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1" );
            ( "The quick brown fox jumps over the lazy dog",
              "d7a8fbb307d7809469ca9abcb0082e4f8d5651e46d3cdb762d02d0bf37c9e592" ) ]
        in
        List.iter
          (fun (input, expected) ->
            Alcotest.(check string) input expected (Sha256.hex input))
          cases);
    Alcotest.test_case "million a's" `Slow (fun () ->
        let s = String.make 1_000_000 'a' in
        Alcotest.(check string) "1M a"
          "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0"
          (Sha256.hex s));
    Alcotest.test_case "incremental = one-shot" `Quick (fun () ->
        let parts = [ "hello "; "world"; String.make 200 'x'; "" ; "tail" ] in
        let ctx = Sha256.init () in
        List.iter (Sha256.feed ctx) parts;
        Alcotest.(check string) "incremental"
          (Sha256.hex (String.concat "" parts))
          (Sha256.to_hex (Sha256.finalize ctx)));
    Alcotest.test_case "domain separation" `Quick (fun () ->
        let a = Ro.hash ~domain:"d1" [ "x" ] in
        let b = Ro.hash ~domain:"d2" [ "x" ] in
        Alcotest.(check bool) "different domains differ" false (a = b));
    Alcotest.test_case "encoding unambiguous" `Quick (fun () ->
        (* Concatenation-ambiguous inputs must hash differently. *)
        let a = Ro.hash ~domain:"d" [ "ab"; "c" ] in
        let b = Ro.hash ~domain:"d" [ "a"; "bc" ] in
        let c = Ro.hash ~domain:"d" [ "abc" ] in
        Alcotest.(check bool) "split1" false (a = b);
        Alcotest.(check bool) "split2" false (a = c));
    Alcotest.test_case "hash_expand length" `Quick (fun () ->
        List.iter
          (fun len ->
            Alcotest.(check int) "len" len
              (String.length (Ro.hash_expand ~domain:"d" [ "x" ] ~len)))
          [ 0; 1; 31; 32; 33; 100; 1000 ])
  ]

let prop_tests =
  [ qtest "xor_pad involutive"
      QCheck2.Gen.(pair string string)
      (fun (key, data) ->
        let enc = Ro.xor_pad ~domain:"pad" ~key data in
        Ro.xor_pad ~domain:"pad" ~key enc = data);
    qtest "hash_to_bignum_below in range"
      QCheck2.Gen.(pair string (int_range 1 1000000))
      (fun (s, bound) ->
        let b = Bignum.of_int bound in
        let v = Ro.hash_to_bignum_below ~domain:"d" [ s ] b in
        Bignum.sign v >= 0 && Bignum.lt v b);
    qtest "digest deterministic" QCheck2.Gen.string (fun s ->
        Sha256.digest s = Sha256.digest s);
    qtest "digest_list = digest of concat via feed"
      QCheck2.Gen.(list string)
      (fun parts -> Sha256.digest_list parts = Sha256.digest (String.concat "" parts))
  ]

let suite = ("hash", unit_tests @ prop_tests)
