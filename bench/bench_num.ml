(* Micro-benchmarks for the modular-arithmetic fast paths.

   Times the kernels that PR 2 introduced — Montgomery-window
   [Bignum.pow_mod], the fixed-base [Schnorr_group.exp_g] table, and the
   shared-squaring-chain [exp2] — against their naive counterparts at
   128/512/1024-bit odd moduli, and writes BENCH_NUM.json in the same
   sintra-bench/1 schema as the protocol experiments so [bench-check]
   and [perf-diff] work on it unchanged.

   The moduli are random odd numbers of exactly the requested size, not
   primes: none of the kernels cares about primality, and safe-prime
   generation at 1024 bits would dominate the benchmark run. *)

module B = Bignum
module G = Schnorr_group

(* The pre-PR-2 ladder: plain square-and-multiply with a full division
   at every step.  This is the baseline the tentpole replaces. *)
let naive_pow_mod ~base ~exp ~modulus =
  let b = ref (B.erem base modulus) and r = ref B.one in
  let nb = B.numbits exp in
  for i = 0 to nb - 1 do
    if B.testbit exp i then r := B.erem (B.mul !r !b) modulus;
    if i < nb - 1 then b := B.erem (B.mul !b !b) modulus
  done;
  !r

(* Wall-clock ns/op: repeat [f] until [min_time] seconds have elapsed
   (after one warm-up call, which also absorbs one-off precomputation
   such as the Montgomery context). *)
let time_ns ~min_time (f : unit -> unit) : float =
  f ();
  let t0 = Unix.gettimeofday () in
  let n = ref 0 in
  let elapsed = ref 0.0 in
  while !elapsed < min_time || !n = 0 do
    f ();
    incr n;
    elapsed := Unix.gettimeofday () -. t0
  done;
  !elapsed /. float_of_int !n *. 1e9

(* Random odd modulus with the top bit set, so it has exactly [bits]
   bits and takes the Montgomery path. *)
let random_odd_modulus rng ~bits =
  let m = Prng.bignum_below rng (B.shift_left B.one (bits - 1)) in
  let m = B.add m (B.shift_left B.one (bits - 1)) in
  if B.is_even m then B.succ m else m

type sample = {
  kernel : string;
  bits : int;
  batch : int option;  (* DLEQ sweep rows carry their batch size *)
  ns_per_op : float;
}

let run ?(out = "BENCH_NUM.json") ?(quick = false) () : unit =
  let min_time = if quick then 0.02 else 0.2 in
  let sizes = [ 128; 512; 1024 ] in
  let rng = Prng.create ~seed:0xBE7C4 in
  Obs_crypto.reset ();
  Obs_crypto.enable ();
  let t0 = Unix.gettimeofday () in
  let samples = ref [] in
  let speedups = ref [] in
  let sample ?batch kernel bits f =
    let ns = time_ns ~min_time f in
    samples := { kernel; bits; batch; ns_per_op = ns } :: !samples;
    ns
  in
  List.iter
    (fun bits ->
      let m = random_odd_modulus rng ~bits in
      let base = Prng.bignum_below rng m in
      let exp = Prng.bignum_below rng m in
      (* the bench guards itself: both ladders must agree *)
      let expect = naive_pow_mod ~base ~exp ~modulus:m in
      assert (B.equal expect (B.pow_mod ~base ~exp ~modulus:m));
      let naive =
        sample "naive_pow_mod" bits (fun () ->
            ignore (naive_pow_mod ~base ~exp ~modulus:m))
      in
      let window =
        sample "pow_mod_window" bits (fun () ->
            ignore (B.pow_mod ~base ~exp ~modulus:m))
      in
      speedups :=
        (Printf.sprintf "pow_mod_window_%d" bits, naive /. window)
        :: !speedups;
      (* Group-level kernels over the same modulus: primality does not
         matter for cost, only the operand sizes do. *)
      let q = B.shift_right (B.pred m) 1 in
      let g = B.mul_mod base base m in
      let ps = G.unsafe_params ~p:m ~q ~g in
      let e1 = Prng.bignum_below rng q and e2 = Prng.bignum_below rng q in
      let a = B.mul_mod exp exp m in
      G.prepare_base ps g;
      let fixed =
        sample "fixed_base_exp_g" bits (fun () -> ignore (G.exp_g ps e1))
      in
      speedups :=
        (Printf.sprintf "fixed_base_exp_g_%d" bits, window /. fixed)
        :: !speedups;
      let two_pow =
        sample "two_pow_mod_mul" bits (fun () ->
            ignore
              (B.mul_mod
                 (B.pow_mod ~base:a ~exp:e1 ~modulus:m)
                 (B.pow_mod ~base ~exp:e2 ~modulus:m)
                 m))
      in
      let exp2 =
        sample "exp2" bits (fun () ->
            ignore (B.pow2_mod ~b1:a ~e1 ~b2:base ~e2 ~modulus:m))
      in
      speedups :=
        (Printf.sprintf "exp2_%d" bits, two_pow /. exp2) :: !speedups;
      Printf.printf
        "[bench-num] %4d-bit: naive %9.0f ns/op, window %9.0f ns/op \
         (%.2fx), fixed-base %9.0f ns/op, exp2 %9.0f vs 2x pow_mod %9.0f \
         ns/op (%.2fx)\n\
         %!"
        bits naive window (naive /. window) fixed exp2 two_pow
        (two_pow /. exp2))
    sizes;
  (* DLEQ batch-verification sweep (the PR 7 crypto hot path): per-share
     cost of checking k coin/TDH2-shaped share proofs at once, against
     the k = 1 seed path (plain per-proof [Dleq.verify]).  Uses the real
     deterministic Schnorr group shared with the protocol tests, so the
     numbers match what the simulator pays. *)
  let ps = G.default () in
  let dleq_domain = "sintra/bench/dleq" in
  let g2 = G.hash_to_elt ps ~domain:(dleq_domain ^ "/base") [ "sweep" ] in
  G.prepare_base ps g2;
  ignore (G.exp_g ps B.one) (* build the generator's table too *);
  let proofs =
    List.init 16 (fun i ->
        let x =
          Ro.hash_to_bignum_below ~domain:(dleq_domain ^ "/x")
            [ string_of_int i ] ps.G.q
        in
        let h1 = G.exp_g ps x and h2 = G.exp ps g2 x in
        let proof =
          Dleq.prove ps ~domain:dleq_domain ~x ~g1:ps.G.g ~h1 ~g2 ~h2
        in
        ({ Dleq.g1 = ps.G.g; h1; g2; h2 }, proof))
  in
  let group_bits = B.numbits ps.G.p in
  let batch_sizes = [ 1; 2; 4; 8; 16 ] in
  let per_share = ref [] in
  List.iter
    (fun k ->
      let batch = List.filteri (fun i _ -> i < k) proofs in
      (* the bench guards itself: a valid batch must pass, a corrupted
         one must fail *)
      assert (Dleq.batch_verify ps ~domain:dleq_domain batch);
      (match batch with
      | (s, p) :: rest ->
        assert (
          not
            (Dleq.batch_verify ps ~domain:dleq_domain
               ((s, { p with Dleq.z = B.succ p.Dleq.z }) :: rest)))
      | [] -> ());
      let ns_total =
        if k = 1 then
          let s, p = List.hd batch in
          time_ns ~min_time (fun () ->
              assert (
                Dleq.verify ps ~domain:dleq_domain ~g1:s.Dleq.g1 ~h1:s.Dleq.h1
                  ~g2:s.Dleq.g2 ~h2:s.Dleq.h2 p))
        else
          time_ns ~min_time (fun () ->
              assert (Dleq.batch_verify ps ~domain:dleq_domain batch))
      in
      let ns = ns_total /. float_of_int k in
      samples :=
        { kernel = "dleq_verify"; bits = group_bits; batch = Some k;
          ns_per_op = ns }
        :: !samples;
      per_share := (k, ns) :: !per_share;
      if k > 1 then
        speedups :=
          (Printf.sprintf "dleq_batch_%d_vs_1" k,
           List.assoc 1 !per_share /. ns)
          :: !speedups)
    batch_sizes;
  Printf.printf "[bench-num] dleq %d-bit per-share ns:%s (batch 8: %.2fx)\n%!"
    group_bits
    (String.concat ""
       (List.rev_map
          (fun (k, ns) -> Printf.sprintf " k=%d %.0f" k ns)
          !per_share))
    (List.assoc "dleq_batch_8_vs_1" !speedups);
  let wall = Unix.gettimeofday () -. t0 in
  Obs_crypto.disable ();
  let counters =
    List.rev_map
      (fun s ->
        let labels =
          [ ("kernel", Obs_json.Str s.kernel);
            ("bits", Obs_json.Str (string_of_int s.bits)) ]
          @
          match s.batch with
          | None -> []
          | Some k -> [ ("batch", Obs_json.Str (string_of_int k)) ]
        in
        Obs_json.Obj
          [ ("name", Obs_json.Str "ns_per_op");
            ("labels", Obs_json.Obj labels);
            ("value", Obs_json.Int (int_of_float s.ns_per_op)) ])
      !samples
  in
  let doc =
    Obs_json.Obj
      [ ("experiment", Obs_json.Str "NUM");
        ("schema", Obs_json.Str "sintra-bench/1");
        ("wall_time_s", Obs_json.Float wall);
        ("virtual_time_total", Obs_json.Float 0.0);
        ( "metrics",
          Obs_json.Obj
            [ ("counters", Obs_json.Arr counters);
              ("gauges", Obs_json.Arr []);
              ("histograms", Obs_json.Arr []) ] );
        ("crypto_ops", Obs_crypto.to_json ());
        ( "speedups",
          Obs_json.Obj
            (List.rev_map
               (fun (k, v) -> (k, Obs_json.Float v))
               !speedups) );
        ("quick", Obs_json.Bool quick) ]
  in
  Obs_crypto.reset ();
  let oc = open_out out in
  output_string oc (Obs_json.to_string doc);
  output_char oc '\n';
  close_out oc;
  Printf.printf "[bench-num] wrote %s\n%!" out
