(* Machine-readable experiment output.

   Every experiment in bench/main.ml runs inside [with_experiment]: it
   gets a fresh, active observability instance (handed to every
   [Sim.create] via [obs ()]) and process-global crypto counters reset
   and enabled for its duration.  On completion the harness writes
   BENCH_<id>.json next to the working directory:

     { "experiment":      "<id>",
       "schema":          "sintra-bench/1",
       "wall_time_s":     <float>,
       "virtual_time_total": <float>,   (* summed over all sims *)
       "metrics":         { "counters": [...], "gauges": [...],
                            "histograms": [...] },
       "crypto_ops":      { "modexp": n, ... },
       ... any extra fields the experiment [put] }

   The per-layer message/byte counters appear under "metrics" with
   labels [("layer", "rbc" | "cbc" | "abba" | "vba" | "abc" | ...)];
   virtual time per sim run is the "virtual_time" histogram (observed
   once at the end of every [Sim.run]). *)

let current : Obs.t ref = ref Obs.noop
let extras : (string * Obs_json.t) list ref = ref []

let obs () = !current

(* Attach an extra top-level field to the current experiment's JSON.
   Later [put]s of the same key win. *)
let put key v = extras := (key, v) :: List.remove_assoc key !extras

let out_path id = Printf.sprintf "BENCH_%s.json" id

let virtual_time_total (snap : Obs_registry.snapshot) : float =
  match
    Obs_registry.find snap ~labels:[ ("layer", "sim") ] "virtual_time"
  with
  | Some (Obs_registry.Vhistogram h) -> Obs_histogram.sum h
  | Some (Obs_registry.Vcounter _ | Obs_registry.Vgauge _) | None -> 0.0

let write ~id ~wall (o : Obs.t) : unit =
  let snap = Obs.snapshot o in
  let doc =
    Obs_json.Obj
      ([ ("experiment", Obs_json.Str id);
         ("schema", Obs_json.Str "sintra-bench/1");
         ("wall_time_s", Obs_json.Float wall);
         ("virtual_time_total", Obs_json.Float (virtual_time_total snap));
         ("metrics", Obs_registry.snapshot_to_json snap);
         ("crypto_ops", Obs_crypto.to_json ())
       ]
      @ List.rev !extras)
  in
  let path = out_path id in
  let oc = open_out path in
  output_string oc (Obs_json.to_canonical_string doc);
  output_char oc '\n';
  close_out oc;
  Printf.printf "[bench] wrote %s\n%!" path

let with_experiment ~id (f : unit -> unit) : unit =
  let o = Obs.create () in
  current := o;
  extras := [];
  Obs_crypto.reset ();
  Obs_crypto.enable ();
  let t0 = Unix.gettimeofday () in
  Fun.protect
    ~finally:(fun () ->
      let wall = Unix.gettimeofday () -. t0 in
      Obs_crypto.disable ();
      current := Obs.noop;
      write ~id ~wall o;
      Obs_crypto.reset ())
    f
