(* Benchmark / experiment harness: regenerates every table- and
   figure-level claim of the paper (see DESIGN.md section 3 and
   EXPERIMENTS.md for the paper-vs-measured record).

     dune exec bench/main.exe             -- run everything
     dune exec bench/main.exe -- F1 R1    -- run selected experiments

   Experiments:
     F1  Figure 1: randomized ABC vs. CL99-style deterministic baseline
         under benign and adversarial scheduling (liveness & safety)
     F2  Figure 1, Rampart row: a dynamic-membership baseline loses
         safety under the delay adversary
     E1  Example 1 (9 servers, 4 classes): full corruption sweep
     E2  Example 2 (16 servers, site x OS grid): site+OS corruptions,
         comparison against the best threshold structure
     G1  Ablation: protocol cost over a generalized structure vs. a
         plain threshold of the same size
     R1  ABBA terminates in an expected constant number of rounds
     R2  Atomic broadcast delivery: rounds, messages, virtual latency
     M1  Message complexity per protocol layer as n grows
     M2  Certificate-compression ablation (vector vs. RSA dual-threshold)
     O1  Optimistic/deterministic trade-off: fast path vs. attack
     O2  The implemented optimistic atomic broadcast (Section 6):
         sequencer fast path vs. full agreement, and crash recovery
     S1  CA / directory service end-to-end with a Byzantine server
     S2  Notary confidentiality: SC-ABC vs. plain ABC front-running
     C1  Threshold-crypto micro-benchmarks (Bechamel)
     C2  Bignum substrate micro-benchmarks (Bechamel)
*)

module AS = Adversary_structure

(* --small: shrink the heavy sweeps (R1, M1) so `make bench-smoke` runs
   in seconds.  Every experiment still writes its BENCH_<id>.json. *)
let small = ref false

let line = String.make 78 '-'

let header id title =
  Printf.printf "\n%s\n%s  %s\n%s\n" line id title line

let keyrings : (string, Keyring.t) Hashtbl.t = Hashtbl.create 8

let keyring ?(cert_mode = Keyring.Vector_mode) (structure : AS.t) : Keyring.t =
  let key =
    Printf.sprintf "%d/%s/%b" (AS.n structure)
      (match AS.threshold_of structure with
      | Some t -> "t" ^ string_of_int t
      | None -> "gen")
      (cert_mode = Keyring.Compressed_mode)
  in
  match Hashtbl.find_opt keyrings key with
  | Some kr -> kr
  | None ->
    let kr = Keyring.deal ~rsa_bits:192 ~cert_mode ~seed:4242 structure in
    Hashtbl.add keyrings key kr;
    kr

(* ------------------------------------------------------------------ *)
(* Shared runners                                                      *)
(* ------------------------------------------------------------------ *)

type abc_run = {
  delivered_all : bool;
  safety_ok : bool;
  messages : int;
  bytes : int;
  virtual_time : float;
  rounds : int;
}

let run_abc_once ?(policy = Sim.Random_order) ?(crashed = Pset.empty)
    ?(adaptive = false) ~structure ~seed ~payloads ?(max_steps = 400_000)
    ?cert_mode () : abc_run =
  let kr = keyring ?cert_mode structure in
  let n = AS.n structure in
  let sim =
    Sim.create ~policy ~size:(Link.frame_size (Abc.msg_size kr)) ~obs:(Bench_out.obs ()) ~n
      ~seed ()
  in
  ignore adaptive;
  let logs = Array.make n [] in
  let nodes =
    Stack.deploy_abc ~sim ~keyring:kr ~tag:(Printf.sprintf "bench-%d" seed)
      ~deliver:(fun me p -> logs.(me) <- p :: logs.(me)) ()
  in
  Pset.iter (Sim.crash sim) crashed;
  List.iteri
    (fun i p ->
      let submitter = i mod n in
      let submitter =
        if Pset.mem submitter crashed then
          (* first honest server *)
          List.find (fun j -> not (Pset.mem j crashed)) (List.init n Fun.id)
        else submitter
      in
      Abc.broadcast nodes.(submitter) p)
    payloads;
  let honest = List.filter (fun i -> not (Pset.mem i crashed)) (List.init n Fun.id) in
  let want = List.length (List.sort_uniq compare payloads) in
  let delivered_all =
    try
      Sim.run sim ~max_steps
        ~until:(fun () ->
          List.for_all (fun i -> List.length logs.(i) >= want) honest);
      List.for_all (fun i -> List.length logs.(i) >= want) honest
    with Sim.Out_of_steps _ -> false
  in
  let safety_ok =
    (* prefix consistency over honest logs *)
    List.for_all
      (fun i ->
        List.for_all
          (fun j ->
            let a = List.rev logs.(i) and b = List.rev logs.(j) in
            let rec prefix x y =
              match (x, y) with
              | [], _ | _, [] -> true
              | h1 :: t1, h2 :: t2 -> h1 = h2 && prefix t1 t2
            in
            prefix a b)
          honest)
      honest
  in
  let m = Sim.metrics sim in
  { delivered_all;
    safety_ok;
    messages = m.Metrics.messages_sent;
    bytes = m.Metrics.bytes_sent;
    virtual_time = Sim.clock sim;
    rounds = List.fold_left (fun acc i -> max acc (Abc.current_round nodes.(i))) 0 honest }

let run_pbft_once ?(policy = Sim.Latency_order) ?(crashed = Pset.empty)
    ?(adaptive_leader_delay = false) ~n ~f ~seed ~payloads
    ?(max_steps = 100_000) () =
  let sim =
    Sim.create ~policy ~size:Pbft_lite.msg_size ~obs:(Bench_out.obs ()) ~n
      ~seed ()
  in
  let logs = Array.make n [] in
  let nodes =
    Baseline_stack.deploy ~sim ~f ~timeout:500.0
      ~deliver:(fun me p -> logs.(me) <- p :: logs.(me))
      ()
  in
  Pset.iter (Sim.crash sim) crashed;
  List.iteri
    (fun i p ->
      let s = i mod n in
      if not (Pset.mem s crashed) then Pbft_lite.submit nodes.(s) p)
    payloads;
  let honest = List.filter (fun i -> not (Pset.mem i crashed)) (List.init n Fun.id) in
  let want = List.length (List.sort_uniq compare payloads) in
  let delivered_all =
    try
      Sim.run sim ~max_steps
        ~until:(fun () ->
          (if adaptive_leader_delay then begin
             let victims =
               Array.fold_left
                 (fun acc node ->
                   Pset.add (Pbft_lite.current_view node mod n) acc)
                 Pset.empty nodes
             in
             Sim.set_policy sim (Sim.Delay_victims victims)
           end);
          List.for_all (fun i -> List.length logs.(i) >= want) honest);
      List.for_all (fun i -> List.length logs.(i) >= want) honest
    with Sim.Out_of_steps _ -> false
  in
  let safety_ok =
    List.for_all
      (fun i ->
        List.for_all
          (fun j ->
            let a = List.rev logs.(i) and b = List.rev logs.(j) in
            let rec prefix x y =
              match (x, y) with
              | [], _ | _, [] -> true
              | h1 :: t1, h2 :: t2 -> h1 = h2 && prefix t1 t2
            in
            prefix a b)
          honest)
      honest
  in
  let m = Sim.metrics sim in
  (delivered_all, safety_ok, m.Metrics.messages_sent, m.Metrics.bytes_sent,
   Sim.clock sim)

(* ------------------------------------------------------------------ *)
(* F1: Figure 1 reproduction                                           *)
(* ------------------------------------------------------------------ *)

let f1 () =
  header "F1" "Figure 1: systems for secure state machine replication";
  print_endline
    "Measured rows (n=4, t=1; 10 seeds each; payload must reach all replicas):";
  Printf.printf "%-22s %-8s %-8s %-5s %-18s %-18s %s\n" "system" "timing"
    "servers" "BA?" "benign: live/safe" "attack: live/safe" "mechanism";
  let th = AS.threshold ~n:4 ~t:1 in
  let seeds = List.init 10 (fun i -> 900 + i) in
  (* our system *)
  let ours_benign =
    List.map
      (fun seed ->
        run_abc_once ~policy:Sim.Latency_order ~structure:th ~seed
          ~payloads:[ "req" ] ())
      seeds
  in
  let ours_attack =
    List.map
      (fun seed ->
        run_abc_once
          ~policy:(Sim.Delay_victims (Pset.singleton 0))
          ~structure:th ~seed ~payloads:[ "req" ] ())
      seeds
  in
  let live rs = List.for_all (fun r -> r.delivered_all) rs in
  let safe rs = List.for_all (fun r -> r.safety_ok) rs in
  Printf.printf "%-22s %-8s %-8s %-5s %-18s %-18s %s\n" "this work (SINTRA)"
    "async" "static" "yes"
    (Printf.sprintf "%b / %b" (live ours_benign) (safe ours_benign))
    (Printf.sprintf "%b / %b" (live ours_attack) (safe ours_attack))
    "cryptographic coin, Q3 adversaries";
  (* CL99 baseline *)
  let pb_benign =
    List.map
      (fun seed ->
        run_pbft_once ~policy:Sim.Latency_order ~n:4 ~f:1 ~seed
          ~payloads:[ "req" ] ())
      seeds
  in
  let pb_attack =
    List.map
      (fun seed ->
        run_pbft_once
          ~policy:(Sim.Delay_victims (Pset.singleton 0))
          ~adaptive_leader_delay:true ~n:4 ~f:1 ~seed ~payloads:[ "req" ]
          ~max_steps:6_000 ())
      seeds
  in
  let live5 rs = List.for_all (fun (d, _, _, _, _) -> d) rs in
  let safe5 rs = List.for_all (fun (_, s, _, _, _) -> s) rs in
  Printf.printf "%-22s %-8s %-8s %-5s %-18s %-18s %s\n" "CL99 (PBFT-lite)"
    "async" "static" "no"
    (Printf.sprintf "%b / %b" (live5 pb_benign) (safe5 pb_benign))
    (Printf.sprintf "%b / %b" (live5 pb_attack) (safe5 pb_attack))
    "timeout failure detector for liveness";
  print_endline
    "\nPaper's Figure 1 rows (qualitative, for reference): RB94 async/static\n\
     (crash only), Rampart async/dynamic (FD for liveness AND safety), Total\n\
     prob-async/static, CL99 async/static (FD for liveness), Fleet (no state\n\
     machine), SecureRing & DGG00 (Byzantine FD), this paper: BA via\n\
     cryptographic coin, tolerates general Q3 adversaries."

(* ------------------------------------------------------------------ *)
(* F2: the Rampart row of Figure 1                                     *)
(* ------------------------------------------------------------------ *)

let f2 () =
  header "F2" "Figure 1, Rampart row: dynamic membership loses SAFETY";
  let deploy sim timeout =
    let n = Sim.n sim in
    let logs = Array.make n [] in
    let nodes =
      Array.init n (fun me ->
          Membership_abc.create ~me ~n
            ~send:(fun dst m -> Sim.send sim ~src:me ~dst m)
            ~broadcast:(fun m -> Sim.broadcast sim ~src:me m)
            ~set_timer:(fun ~delay cb -> Sim.set_timer sim me ~delay cb)
            ~deliver:(fun p -> logs.(me) <- p :: logs.(me))
            ~timeout ())
    in
    Array.iteri
      (fun me node ->
        Sim.set_handler sim me (fun ~src m -> Membership_abc.handle node ~src m))
      nodes;
    Array.iter Membership_abc.start nodes;
    (nodes, logs)
  in
  (* benign: works *)
  let sim =
    Sim.create ~policy:Sim.Latency_order ~size:Membership_abc.msg_size
      ~obs:(Bench_out.obs ()) ~n:4 ~seed:41 ()
  in
  let nodes, logs = deploy sim 500.0 in
  Membership_abc.submit nodes.(1) "benign-payload";
  Sim.run sim ~until:(fun () -> Array.for_all (fun l -> l <> []) logs);
  Printf.printf "benign network:   delivered everywhere = %b, view = %d (%d msgs)\n"
    (Array.for_all (fun l -> l = [ "benign-payload" ]) logs)
    (Membership_abc.current_view nodes.(0))
    (Sim.metrics sim).Metrics.messages_sent;
  (* attack: delay honest members 0 and 3 until eviction; the Byzantine
     member 1 then dominates the shrunken view and equivocates *)
  let sim =
    Sim.create ~policy:(Sim.Delay_victims (Pset.of_list [ 0; 3 ]))
      ~size:Membership_abc.msg_size ~obs:(Bench_out.obs ()) ~n:4 ~seed:42 ()
  in
  let nodes, logs = deploy sim 300.0 in
  let honest_handler = fun ~src m -> Membership_abc.handle nodes.(1) ~src m in
  let equivocations = ref 0 in
  let injected = ref (-1) in
  Sim.set_handler sim 1 (fun ~src m ->
      (match m with
      | Membership_abc.Submit _ -> ()  (* the Byzantine sequencer stalls *)
      | _ -> honest_handler ~src m);
      let self = nodes.(1) in
      let v = Membership_abc.current_view self in
      if v > !injected then begin
        injected := v;
        List.iter
          (fun suspect ->
            if Pset.mem suspect (Membership_abc.members self) then
              Sim.broadcast sim ~src:1 (Membership_abc.Suspect (v, suspect)))
          [ 0; 3 ]
      end;
      let victim = nodes.(2) in
      if
        !equivocations < 10
        && Pset.card (Membership_abc.members victim) <= 2
        && (match Pset.to_list (Membership_abc.members victim) with
           | s :: _ -> s = 1
           | [] -> false)
      then begin
        incr equivocations;
        let v = Membership_abc.current_view victim in
        Sim.send sim ~src:1 ~dst:2 (Membership_abc.Order (v, 0, "evil-A"));
        Sim.send sim ~src:1 ~dst:2
          (Membership_abc.Ack (v, 0, Sha256.digest "evil-A"));
        Sim.send sim ~src:1 ~dst:0 (Membership_abc.Order (v, 0, "evil-B"));
        Sim.send sim ~src:1 ~dst:3 (Membership_abc.Order (v, 0, "evil-B"))
      end);
  Membership_abc.submit nodes.(2) "victim-payload";
  (try Sim.run sim ~max_steps:8_000 with Sim.Out_of_steps _ -> ());
  let shrunk = Pset.card (Membership_abc.members nodes.(2)) in
  let equiv_delivered = List.mem "evil-A" logs.(2) in
  Printf.printf
    "delay adversary:  view shrank to %d members; equivocated payload\n\
    \                  delivered at an honest member = %b  => SAFETY VIOLATED\n"
    shrunk equiv_delivered;
  print_endline
    "(the paper, Section 2.3: a membership protocol \"easily falls prey to an\n\
    \ attacker that is able to delay honest servers just long enough until\n\
    \ corrupted servers hold the majority in the group\"; the static-group\n\
    \ randomized stack under the same adversary keeps safety AND liveness, F1)"

(* ------------------------------------------------------------------ *)
(* E1 / E2: generalized adversary structure sweeps                     *)
(* ------------------------------------------------------------------ *)

let e1 () =
  header "E1" "Example 1: 9 servers, classes a(4) b(2) c(2) d(1)";
  let s1 = Canonical_structures.example1 () in
  Printf.printf "Q3 condition: %b; sharing compatible: %b; |A*| = %d\n"
    (AS.satisfies_q3 s1)
    (AS.check_sharing_compatible s1)
    (List.length (AS.maximal_adversary_sets s1));
  let maxes = AS.maximal_adversary_sets s1 in
  let ok = ref 0 and total = ref 0 in
  List.iteri
    (fun idx bad ->
      incr total;
      let r =
        run_abc_once ~structure:s1 ~seed:(7000 + idx) ~crashed:bad
          ~payloads:[ "p1"; "p2" ] ()
      in
      if r.delivered_all && r.safety_ok then incr ok
      else
        Printf.printf "  FAILED pattern %s: live=%b safe=%b\n"
          (Pset.to_string bad) r.delivered_all r.safety_ok)
    maxes;
  Printf.printf
    "crash sweep over every maximal corruptible set: %d/%d patterns live & safe\n"
    !ok !total;
  (* boundary: a qualified (non-corruptible) set of 3 servers *)
  let beyond = Pset.of_list [ 0; 4; 6 ] in
  let r =
    run_abc_once ~structure:s1 ~seed:7999 ~crashed:beyond
      ~payloads:[ "p1" ] ~max_steps:60_000 ()
  in
  Printf.printf
    "beyond the structure (crash qualified set %s): live=%b (expected false), safe=%b\n"
    (Pset.to_string beyond) r.delivered_all r.safety_ok;
  Printf.printf
    "threshold comparison: best uniform tolerance of A1 = %d servers;\n\
     A1 additionally tolerates the whole class a (4 servers at once)\n"
    (AS.max_uniform_tolerance s1)

let e2 () =
  header "E2" "Example 2: 16 servers, 4 sites x 4 operating systems";
  let s2 = Canonical_structures.example2 () in
  Printf.printf "Q3 condition: %b; sharing compatible: %b; |A*| = %d\n"
    (AS.satisfies_q3 s2)
    (AS.check_sharing_compatible s2)
    (List.length (AS.maximal_adversary_sets s2));
  let ok = ref 0 and total = ref 0 in
  for row = 0 to 3 do
    for col = 0 to 3 do
      incr total;
      let bad = Canonical_structures.example2_site_plus_os ~row ~col in
      let r =
        run_abc_once ~structure:s2 ~seed:(8000 + (4 * row) + col) ~crashed:bad
          ~payloads:[ "p" ] ()
      in
      if r.delivered_all && r.safety_ok then incr ok
      else
        Printf.printf "  FAILED site %d + OS %d: live=%b safe=%b\n" row col
          r.delivered_all r.safety_ok
    done
  done;
  Printf.printf
    "site+OS sweep (7 of 16 servers down, all 16 patterns): %d/%d live & safe\n"
    !ok !total;
  Printf.printf
    "any threshold structure on 16 servers satisfies Q3 only up to t = 5:\n\
    \  q3(t=5) = %b, q3(t=6) = %b; the 7-server pattern is NOT corruptible at t=5: %b\n"
    (AS.satisfies_q3 (AS.threshold ~n:16 ~t:5))
    (AS.satisfies_q3 (AS.threshold ~n:16 ~t:6))
    (AS.is_corruptible (AS.threshold ~n:16 ~t:5)
       (Canonical_structures.example2_site_plus_os ~row:0 ~col:0));
  (* demonstrate the threshold deployment actually stalls on the pattern *)
  let th = AS.threshold ~n:16 ~t:5 in
  let bad = Canonical_structures.example2_site_plus_os ~row:0 ~col:0 in
  let r =
    run_abc_once ~structure:th ~seed:8100 ~crashed:bad ~payloads:[ "p" ]
      ~max_steps:120_000 ()
  in
  Printf.printf
    "t=5 threshold deployment under the same 7-server crash: live=%b (expected false), safe=%b\n"
    r.delivered_all r.safety_ok

(* ------------------------------------------------------------------ *)
(* G1: cost of generalized adversary structures                        *)
(* ------------------------------------------------------------------ *)

let g1 () =
  header "G1"
    "Overhead of generalized adversary structures (ablation, n = 9)";
  Printf.printf "%-28s %-10s %-12s %-12s\n" "structure" "msgs" "kB"
    "virt. time";
  List.iter
    (fun (name, structure) ->
      let r =
        run_abc_once ~structure ~seed:55 ~payloads:[ "g1-a"; "g1-b" ] ()
      in
      Printf.printf "%-28s %-10d %-12d %-12.0f%s\n" name r.messages
        (r.bytes / 1024) r.virtual_time
        (if r.delivered_all && r.safety_ok then "" else "  [FAILED]"))
    [ ("threshold t=2 (9 servers)", AS.threshold ~n:9 ~t:2);
      ("example 1 (9 servers)", Canonical_structures.example1 ()) ];
  print_endline
    "(same protocol code; the generalized structure evaluates monotone\n\
    \ formulas instead of counting, and its LSSS has more leaves than plain\n\
    \ Shamir -- message counts are similar, certificate and share payloads\n\
    \ grow with the number of formula leaves)"

(* ------------------------------------------------------------------ *)
(* R1: ABBA expected constant rounds                                   *)
(* ------------------------------------------------------------------ *)

let r1 () =
  header "R1" "ABBA: expected constant number of rounds";
  let n_seeds = if !small then 4 else 20 in
  Printf.printf "%-6s %-10s %-10s %-10s %-12s (%d seeds, mixed inputs, random scheduling)\n"
    "n" "mean rds" "max rds" "agree" "mean msgs" n_seeds;
  List.iter
    (fun (n, t) ->
      let structure = AS.threshold ~n ~t in
      let kr = keyring structure in
      let rounds = ref [] and msgs = ref [] and agree = ref true in
      for seed = 1 to n_seeds do
        let sim =
          Sim.create ~policy:Sim.Random_order ~size:(Link.frame_size (Abba.msg_size kr))
            ~obs:(Bench_out.obs ()) ~n ~seed:(seed * 31) ()
        in
        let decisions = Array.make n None in
        let nodes =
          Stack.deploy_abba ~sim ~keyring:kr
            ~tag:(Printf.sprintf "r1-%d-%d" n seed)
            ~on_decide:(fun me b -> decisions.(me) <- Some b) ()
        in
        Array.iteri (fun i node -> Abba.propose node (i mod 2 = 0)) nodes;
        Sim.run sim
          ~until:(fun () -> Array.for_all (fun d -> d <> None) decisions);
        let ds = Array.to_list decisions |> List.filter_map Fun.id in
        (match ds with
        | d :: rest -> if not (List.for_all (( = ) d) rest) then agree := false
        | [] -> agree := false);
        let max_round =
          Array.fold_left (fun acc node -> max acc (Abba.current_round node)) 0 nodes
        in
        rounds := max_round :: !rounds;
        msgs := (Sim.metrics sim).Metrics.messages_sent :: !msgs
      done;
      let mean l =
        float_of_int (List.fold_left ( + ) 0 l) /. float_of_int (List.length l)
      in
      Printf.printf "%-6d %-10.2f %-10d %-10b %-12.0f\n" n (mean !rounds)
        (List.fold_left max 0 !rounds)
        !agree (mean !msgs))
    (if !small then [ (4, 1) ] else [ (4, 1); (7, 2); (10, 3); (13, 4) ])

(* ------------------------------------------------------------------ *)
(* R2: atomic broadcast liveness / cost per delivery                   *)
(* ------------------------------------------------------------------ *)

let r2 () =
  header "R2" "Atomic broadcast: rounds, messages and virtual latency";
  Printf.printf "%-4s %-10s %-8s %-14s %-14s %-12s\n" "n" "payloads" "rounds"
    "msgs/payload" "kB/payload" "virt. time";
  List.iter
    (fun (n, t, k) ->
      let structure = AS.threshold ~n ~t in
      let payloads = List.init k (fun i -> Printf.sprintf "payload-%02d" i) in
      let r = run_abc_once ~structure ~seed:(100 * n) ~payloads () in
      Printf.printf "%-4d %-10d %-8d %-14.0f %-14.1f %-12.0f%s\n" n k r.rounds
        (float_of_int r.messages /. float_of_int k)
        (float_of_int r.bytes /. 1024.0 /. float_of_int k)
        r.virtual_time
        (if r.delivered_all && r.safety_ok then "" else "  [FAILED]"))
    [ (4, 1, 1); (4, 1, 4); (4, 1, 8); (7, 2, 4); (10, 3, 4) ]

(* ------------------------------------------------------------------ *)
(* M1: message complexity per layer                                    *)
(* ------------------------------------------------------------------ *)

let m1 () =
  header "M1" "Message complexity per protocol layer (one instance each)";
  Printf.printf "%-6s %-12s %-12s %-12s %-12s %-12s\n" "n" "rbc" "cbc" "abba"
    "vba" "abc";
  List.iter
    (fun (n, t) ->
      let structure = AS.threshold ~n ~t in
      let kr = keyring structure in
      (* RBC *)
      let rbc_m =
        let sim =
          Sim.create ~size:(Link.frame_size Rbc.msg_size) ~obs:(Bench_out.obs ()) ~n ~seed:1 ()
        in
        let cnt = ref 0 in
        let nodes =
          Stack.deploy_rbc ~sim ~keyring:kr ~sender:0 ~deliver:(fun _ _ -> incr cnt) ()
        in
        Rbc.broadcast nodes.(0) "m";
        Sim.run sim;
        ((Sim.metrics sim).Metrics.messages_sent, (Sim.metrics sim).Metrics.bytes_sent)
      in
      let cbc_m =
        let sim =
          Sim.create ~size:(Link.frame_size (Cbc.msg_size kr)) ~obs:(Bench_out.obs ()) ~n
            ~seed:2 ()
        in
        let nodes =
          Stack.deploy_cbc ~sim ~keyring:kr ~tag:"m1" ~sender:0
            ~deliver:(fun _ _ _ -> ()) ()
        in
        Cbc.broadcast nodes.(0) "m";
        Sim.run sim;
        ((Sim.metrics sim).Metrics.messages_sent, (Sim.metrics sim).Metrics.bytes_sent)
      in
      let abba_m =
        let sim =
          Sim.create ~size:(Link.frame_size (Abba.msg_size kr)) ~obs:(Bench_out.obs ()) ~n
            ~seed:3 ()
        in
        let nodes =
          Stack.deploy_abba ~sim ~keyring:kr ~tag:"m1a" ~on_decide:(fun _ _ -> ()) ()
        in
        Array.iteri (fun i node -> Abba.propose node (i mod 2 = 0)) nodes;
        Sim.run sim;
        ((Sim.metrics sim).Metrics.messages_sent, (Sim.metrics sim).Metrics.bytes_sent)
      in
      let vba_m =
        let sim =
          Sim.create ~size:(Link.frame_size (Vba.msg_size kr)) ~obs:(Bench_out.obs ()) ~n
            ~seed:4 ()
        in
        let nodes =
          Stack.deploy_vba ~sim ~keyring:kr ~tag:"m1v" ~on_decide:(fun _ ~winner:_ _ -> ()) ()
        in
        Array.iteri
          (fun i node -> Vba.propose node (Printf.sprintf "val-%d" i))
          nodes;
        Sim.run sim;
        ((Sim.metrics sim).Metrics.messages_sent, (Sim.metrics sim).Metrics.bytes_sent)
      in
      let abc_m =
        let r = run_abc_once ~structure ~seed:5 ~payloads:[ "m" ] () in
        (r.messages, r.bytes)
      in
      let pr (m, b) = Printf.sprintf "%d/%dk" m (b / 1024) in
      Printf.printf "%-6d %-12s %-12s %-12s %-12s %-12s\n" n (pr rbc_m)
        (pr cbc_m) (pr abba_m) (pr vba_m) (pr abc_m))
    (if !small then [ (4, 1) ] else [ (4, 1); (7, 2); (10, 3); (13, 4) ]);
  print_endline "(cells are messages / kilobytes until quiescence)"

(* ------------------------------------------------------------------ *)
(* M2: certificate compression ablation                                *)
(* ------------------------------------------------------------------ *)

let m2 () =
  header "M2"
    "Ablation: signature-vector vs. RSA dual-threshold certificates";
  Printf.printf "%-6s %-22s %-22s\n" "n" "vector msgs/bytes" "compressed msgs/bytes";
  List.iter
    (fun (n, t) ->
      let structure = AS.threshold ~n ~t in
      let vec =
        let r = run_abc_once ~structure ~seed:60 ~payloads:[ "m" ] () in
        (r.messages, r.bytes)
      in
      let comp =
        let r =
          run_abc_once ~structure ~seed:60 ~payloads:[ "m" ]
            ~cert_mode:Keyring.Compressed_mode ()
        in
        (r.messages, r.bytes)
      in
      let pr (m, b) = Printf.sprintf "%d / %d" m b in
      Printf.printf "%-6d %-22s %-22s\n" n (pr vec) (pr comp))
    [ (4, 1); (7, 2); (10, 3) ];
  print_endline
    "(the paper: \"threshold signatures are further employed to decrease all\n\
    \ messages to a constant size\" -- compression shrinks every certificate\n\
    \ from O(n) signatures to one RSA value; total bytes drop ~15-30% here\n\
    \ because payload dissemination, not certificates, dominates at these n)"

(* ------------------------------------------------------------------ *)
(* O2: the implemented optimistic protocol (Section 6 extension)       *)
(* ------------------------------------------------------------------ *)

let o2 () =
  header "O2"
    "Optimistic atomic broadcast: fast path cost vs. randomized fallback";
  Printf.printf "%-4s %-26s %-26s %-22s\n" "n" "fast path msgs/bytes"
    "full abc msgs/bytes" "sequencer crash: recovered?";
  List.iter
    (fun (n, t) ->
      let structure = AS.threshold ~n ~t in
      let kr = keyring structure in
      let run_opt ~crash_sequencer seed =
        let sim =
          Sim.create ~size:(Link.frame_size (Optimistic_abc.msg_size kr))
            ~obs:(Bench_out.obs ()) ~n ~seed ()
        in
        let logs = Array.make n [] in
        let nodes =
          Stack.deploy ~sim ~keyring:kr
            ~make:(fun me io ->
              Optimistic_abc.create ~io ~tag:"o2" ~sequencer:0
                ~set_timer:(fun ~delay cb -> Sim.set_timer sim me ~delay cb)
                ~timeout:800.0
                ~deliver:(fun p -> logs.(me) <- p :: logs.(me))
                ())
            ~handle:Optimistic_abc.handle ~layer:"opt-abc"
            ~bytes:(Optimistic_abc.msg_size kr) ()
        in
        if crash_sequencer then Sim.crash sim 0;
        Optimistic_abc.broadcast nodes.(1) "o2-payload-a";
        Optimistic_abc.broadcast nodes.(2) "o2-payload-b";
        let honest =
          List.filter (fun i -> not (crash_sequencer && i = 0)) (List.init n Fun.id)
        in
        let ok =
          try
            Sim.run sim ~max_steps:400_000
              ~until:(fun () ->
                List.for_all (fun i -> List.length logs.(i) >= 2) honest);
            true
          with Sim.Out_of_steps _ -> false
        in
        let m = Sim.metrics sim in
        (ok, m.Metrics.messages_sent, m.Metrics.bytes_sent)
      in
      let _, fm, fb = run_opt ~crash_sequencer:false 90 in
      let abc = run_abc_once ~structure ~seed:90 ~payloads:[ "o2-payload-a"; "o2-payload-b" ] () in
      let rec_ok, _, _ = run_opt ~crash_sequencer:true 91 in
      Printf.printf "%-4d %-26s %-26s %b\n" n
        (Printf.sprintf "%d / %dk" fm (fb / 1024))
        (Printf.sprintf "%d / %dk" abc.messages (abc.bytes / 1024))
        rec_ok)
    [ (4, 1); (7, 2) ];
  print_endline
    "(failure-free, the sequencer fast path avoids agreement entirely; when\n\
    \ the sequencer dies, complaints trigger one validated agreement on the\n\
    \ fast-path cut-over and the randomized protocol finishes the job)"

(* ------------------------------------------------------------------ *)
(* O1: optimistic trade-off                                            *)
(* ------------------------------------------------------------------ *)

let o1 () =
  header "O1" "Deterministic fast path vs. randomized robustness";
  Printf.printf "%-4s %-26s %-26s\n" "n"
    "failure-free: pbft | abc (msgs)" "under leader-delay attack: live?";
  List.iter
    (fun (n, t) ->
      let structure = AS.threshold ~n ~t in
      let pb_live, _, pb_msgs, _, _ =
        run_pbft_once ~policy:Sim.Latency_order ~n ~f:t ~seed:70
          ~payloads:[ "m" ] ()
      in
      let abc = run_abc_once ~policy:Sim.Latency_order ~structure ~seed:70 ~payloads:[ "m" ] () in
      let pb_attacked, pb_safe, _, _, _ =
        run_pbft_once
          ~policy:(Sim.Delay_victims (Pset.singleton 0))
          ~adaptive_leader_delay:true ~n ~f:t ~seed:71 ~payloads:[ "m" ]
          ~max_steps:6_000 ()
      in
      let abc_attacked =
        run_abc_once
          ~policy:(Sim.Delay_victims (Pset.singleton 0))
          ~structure ~seed:71 ~payloads:[ "m" ] ()
      in
      Printf.printf "%-4d %-26s pbft: %b (safe %b) | abc: %b\n" n
        (Printf.sprintf "%b %4d | %b %6d" pb_live pb_msgs abc.delivered_all
           abc.messages)
        pb_attacked pb_safe abc_attacked.delivered_all)
    [ (4, 1); (7, 2); (10, 3) ];
  print_endline
    "(the deterministic protocol is an order of magnitude cheaper when the\n\
    \ network is friendly -- the motivation for Section 6's optimistic\n\
    \ protocols -- but a scheduler that delays each leader starves it, while\n\
    \ the randomized atomic broadcast stays live)"

(* ------------------------------------------------------------------ *)
(* S1 / S2: services                                                   *)
(* ------------------------------------------------------------------ *)

let s1 () =
  header "S1" "Certification authority with a Byzantine forger (n=7, t=2)";
  let structure = AS.threshold ~n:7 ~t:2 in
  let kr = keyring structure in
  let sim =
    Sim.create ~size:(Link.frame_size (Service.msg_size kr))
      ~obs:(Bench_out.obs ()) ~n:7 ~seed:81 ()
  in
  let _nodes =
    Service.deploy ~sim ~keyring:kr ~mode:Service.Plain ~make_app:Ca.make_app ()
  in
  Sim.set_handler sim 6 (fun ~src:_ (frame : Service.msg Link.frame) ->
      match frame with
      | Link.Raw (Service.Request { client; body })
      | Link.Data { payload = Service.Request { client; body }; _ } ->
        let req_digest = Sha256.digest body in
        let response = Codec.encode [ "denied"; "forged" ] in
        let share =
          Keyring.service_sign_share kr ~party:6
            (Service.response_statement ~req_digest ~response)
        in
        Sim.send sim ~src:6 ~dst:client
          (Link.Raw
             (Service.Response
                (Codec.encode_svc_reply ~fast:false ~req_digest ~server:6
                   ~response ~share:(Keyring.sig_share_to_bytes kr share))))
      | Link.Raw _ | Link.Data _ | Link.Ack _ -> ());
  Sim.crash sim 1;
  let client = Service.Client.create ~sim ~keyring:kr ~slot:7 ~seed:5 () in
  let result = ref None in
  Service.Client.request client ~mode:Service.Plain
    (Ca.issue_request ~id:"alice" ~pubkey:"pk" ~credentials:"ok!ok")
    (fun rc -> result := Some rc);
  Sim.run sim ~until:(fun () -> !result <> None);
  (match !result with
  | Some rc ->
    Printf.printf
      "certificate issued despite 1 Byzantine + 1 crashed server: %b\n"
      (Ca.parse_certificate rc.Service.rc_response <> None)
  | None -> print_endline "FAILED: request did not complete");
  let m = Sim.metrics sim in
  Printf.printf "cost: %d messages, %d kB\n" m.Metrics.messages_sent
    (m.Metrics.bytes_sent / 1024)

let s2 () =
  header "S2" "Notary confidentiality: SC-ABC vs. plain ABC";
  let contains ~needle haystack =
    let n = String.length haystack and m = String.length needle in
    let rec go i =
      i + m <= n && (String.sub haystack i m = needle || go (i + 1))
    in
    go 0
  in
  let run mode seed =
    let doc = "secret-patent-claim" in
    let structure = AS.threshold ~n:4 ~t:1 in
    let kr = keyring structure in
    let sim = Sim.create ~obs:(Bench_out.obs ()) ~n:4 ~seed () in
    let nodes =
      Service.nodes
        (Service.deploy ~sim ~keyring:kr ~mode ~make_app:Notary.make_app ())
    in
    let leaked = ref false in
    Sim.wrap_handler sim 3 (fun honest ~src frame ->
        (if nodes.(3).Service.executed = 0 then
           match frame with
           | Link.Raw m | Link.Data { payload = m; _ } -> (
             match m with
             | Service.Request { body; _ } when contains ~needle:doc body ->
               leaked := true
             | Service.Engine (Service.Abc_m (Abc.Request p))
               when contains ~needle:doc p ->
               leaked := true
             | Service.Request _ | Service.Query _ | Service.Engine _
             | Service.Response _ ->
               ())
           | Link.Ack _ -> ());
        honest ~src frame);
    let client = Service.Client.create ~sim ~keyring:kr ~slot:4 ~seed:9 () in
    let result = ref None in
    Service.Client.request client ~mode (Notary.register_request ~document:doc)
      (fun rc -> result := Some rc);
    Sim.run sim ~until:(fun () -> !result <> None);
    (!result <> None, !leaked)
  in
  let ok_c, leak_c = run Service.Confidential 82 in
  let ok_p, leak_p = run Service.Plain 83 in
  Printf.printf
    "secure causal ABC:  registered=%b  plaintext visible pre-ordering=%b (expect false)\n"
    ok_c leak_c;
  Printf.printf
    "plain ABC:          registered=%b  plaintext visible pre-ordering=%b (expect true)\n"
    ok_p leak_p

(* ------------------------------------------------------------------ *)
(* C1: crypto micro-benchmarks (Bechamel)                              *)
(* ------------------------------------------------------------------ *)

let c1 () =
  header "C1" "Threshold-cryptography micro-benchmarks";
  let open Bechamel in
  let structure = AS.threshold ~n:4 ~t:1 in
  let kr = keyring structure in
  let ps = kr.Keyring.group in
  let rng = Prng.create ~seed:1 in
  let coin = kr.Keyring.coin in
  let enc = kr.Keyring.enc in
  let coin_shares =
    List.init 4 (fun i -> (i, Coin.generate_share coin ~party:i ~name:"bench"))
  in
  let ct = Tdh2.encrypt enc rng ~label:"bench" "a fairly short message" in
  let dec_shares =
    List.filter_map
      (fun i ->
        Option.map (fun s -> (i, s)) (Tdh2.decryption_share enc ~party:i ct))
      [ 0; 1 ]
  in
  let rsa =
    match kr.Keyring.service with
    | Keyring.Rsa_keys keys -> keys
    | Keyring.Cert_keys _ -> assert false
  in
  let rsa_shares =
    List.map (fun i -> Rsa_threshold.sign_share rsa ~party:i "bench-msg") [ 0; 1 ]
  in
  let exp_e = Schnorr_group.random_exponent ps rng in
  let kp = Schnorr_sig.generate ps rng in
  let sg = Schnorr_sig.sign ps kp "bench-msg" in
  let tests =
    Test.make_grouped ~name:"crypto"
      [ Test.make ~name:"group.exp"
          (Staged.stage (fun () -> ignore (Schnorr_group.exp_g ps exp_e)));
        Test.make ~name:"sha256.1kB"
          (let s = String.make 1024 'x' in
           Staged.stage (fun () -> ignore (Sha256.digest s)));
        Test.make ~name:"schnorr.sign"
          (Staged.stage (fun () -> ignore (Schnorr_sig.sign ps kp "bench-msg")));
        Test.make ~name:"schnorr.verify"
          (Staged.stage (fun () ->
               ignore (Schnorr_sig.verify ps ~pk:kp.Schnorr_sig.pk "bench-msg" sg)));
        Test.make ~name:"coin.share"
          (Staged.stage (fun () ->
               ignore (Coin.generate_share coin ~party:0 ~name:"bench")));
        Test.make ~name:"coin.verify"
          (Staged.stage (fun () ->
               ignore
                 (Coin.verify_share coin ~party:0 ~name:"bench"
                    (List.assoc 0 coin_shares))));
        Test.make ~name:"coin.combine(t+1)"
          (Staged.stage (fun () ->
               ignore
                 (Coin.combine coin ~name:"bench" ~avail:(Pset.of_list [ 0; 1 ])
                    (List.filter (fun (i, _) -> i < 2) coin_shares)
                    ())));
        Test.make ~name:"tdh2.encrypt"
          (Staged.stage (fun () ->
               ignore (Tdh2.encrypt enc rng ~label:"bench" "a fairly short message")));
        Test.make ~name:"tdh2.dec-share"
          (Staged.stage (fun () -> ignore (Tdh2.decryption_share enc ~party:0 ct)));
        Test.make ~name:"tdh2.combine"
          (Staged.stage (fun () ->
               ignore (Tdh2.combine enc ct ~avail:(Pset.of_list [ 0; 1 ]) dec_shares)));
        Test.make ~name:"rsa.sign-share"
          (Staged.stage (fun () ->
               ignore (Rsa_threshold.sign_share rsa ~party:0 "bench-msg")));
        Test.make ~name:"rsa.verify-share"
          (Staged.stage (fun () ->
               ignore (Rsa_threshold.verify_share rsa "bench-msg" (List.hd rsa_shares))));
        Test.make ~name:"rsa.combine"
          (Staged.stage (fun () ->
               ignore (Rsa_threshold.combine rsa "bench-msg" rsa_shares)))
      ]
  in
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.4) ~kde:None () in
  let raw = Benchmark.all cfg [ Toolkit.Instance.monotonic_clock ] tests in
  let ols =
    Analyze.ols ~r_square:false ~bootstrap:0 ~predictors:[| Measure.run |]
  in
  let results = Analyze.all ols Toolkit.Instance.monotonic_clock raw in
  let rows = Hashtbl.fold (fun name r acc -> (name, r) :: acc) results [] in
  Printf.printf "%-28s %14s\n" "operation"
    (Printf.sprintf "time (us), %d-bit group" (Bignum.numbits ps.Schnorr_group.p));
  List.iter
    (fun (name, r) ->
      match Analyze.OLS.estimates r with
      | Some (est :: _) -> Printf.printf "%-28s %14.1f\n" name (est /. 1000.0)
      | Some [] | None -> Printf.printf "%-28s %14s\n" name "n/a")
    (List.sort compare rows)

(* ------------------------------------------------------------------ *)

(* ------------------------------------------------------------------ *)
(* C2: bignum substrate micro-benchmarks                               *)
(* ------------------------------------------------------------------ *)

let c2 () =
  header "C2" "Bignum substrate micro-benchmarks (pure OCaml, per size)";
  let open Bechamel in
  let rng = Prng.create ~seed:9 in
  let tests =
    Test.make_grouped ~name:"bignum"
      (List.concat_map
         (fun bits ->
           let a = Prng.bignum_bits rng bits in
           let b = Prng.bignum_bits rng bits in
           let m = Bignum.add (Prng.bignum_bits rng bits) Bignum.one in
           let e = Prng.bignum_bits rng bits in
           [ Test.make ~name:(Printf.sprintf "mul.%d" bits)
               (Staged.stage (fun () -> ignore (Bignum.mul a b)));
             Test.make ~name:(Printf.sprintf "divmod.%d" bits)
               (Staged.stage (fun () -> ignore (Bignum.divmod (Bignum.mul a b) m)));
             Test.make ~name:(Printf.sprintf "pow_mod.%d" bits)
               (Staged.stage (fun () ->
                    ignore (Bignum.pow_mod ~base:a ~exp:e ~modulus:m)));
             Test.make ~name:(Printf.sprintf "inv_mod.%d" bits)
               (Staged.stage (fun () -> ignore (Bignum.inv_mod a m))) ])
         [ 128; 256; 512 ])
  in
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.25) ~kde:None () in
  let raw = Benchmark.all cfg [ Toolkit.Instance.monotonic_clock ] tests in
  let ols =
    Analyze.ols ~r_square:false ~bootstrap:0 ~predictors:[| Measure.run |]
  in
  let results = Analyze.all ols Toolkit.Instance.monotonic_clock raw in
  let rows = Hashtbl.fold (fun name r acc -> (name, r) :: acc) results [] in
  Printf.printf "%-28s %14s\n" "operation" "time (us)";
  List.iter
    (fun (name, r) ->
      match Analyze.OLS.estimates r with
      | Some (est :: _) -> Printf.printf "%-28s %14.2f\n" name (est /. 1000.0)
      | Some [] | None -> Printf.printf "%-28s %14s\n" name "n/a")
    (List.sort compare rows);
  print_endline
    "(pow_mod dominates every protocol cost and scales ~cubically in the\n\
    \ bit length, which is why tests and benches default to 128-bit toy\n\
    \ groups -- all algorithms are size-agnostic)"


(* ------------------------------------------------------------------ *)
(* TPUT: payload batching x pipelined agreement throughput sweep       *)
(* ------------------------------------------------------------------ *)

type tput_run = {
  tp_delivered : int;
  tp_rounds : int;
  tp_steps : int;
  tp_messages : int;
  tp_bytes : int;
  tp_progress : (int * int) list;
      (* (sim steps so far, cumulative payloads delivered at party 0) *)
  tp_ok : bool;
}

let run_tput ~structure ~seed ~payloads ~(abc_policy : Abc.policy) () :
    tput_run =
  let kr = keyring structure in
  let n = AS.n structure in
  let sim =
    Sim.create ~policy:Sim.Random_order ~size:(Link.frame_size (Abc.msg_size kr))
      ~obs:(Bench_out.obs ()) ~n ~seed ()
  in
  let logs = Array.make n [] in
  let progress = ref [] in
  let sim_ref = ref None in
  let nodes =
    Stack.deploy_abc ~policy:abc_policy ~sim ~keyring:kr
      ~tag:(Printf.sprintf "tput-%d" seed)
      ~deliver:(fun me p ->
        logs.(me) <- p :: logs.(me);
        if me = 0 then
          match !sim_ref with
          | Some s -> progress := (Sim.steps s, List.length logs.(0)) :: !progress
          | None -> ())
      ()
  in
  sim_ref := Some sim;
  List.iteri (fun i p -> Abc.broadcast nodes.(i mod n) p) payloads;
  let want = List.length (List.sort_uniq compare payloads) in
  let all = List.init n Fun.id in
  let tp_ok =
    try
      Sim.run sim ~max_steps:2_000_000
        ~until:(fun () ->
          List.for_all (fun i -> List.length logs.(i) >= want) all);
      List.for_all (fun i -> List.length logs.(i) >= want) all
    with Sim.Out_of_steps _ -> false
  in
  let m = Sim.metrics sim in
  { tp_delivered = List.length logs.(0);
    tp_rounds =
      List.fold_left (fun acc i -> max acc (Abc.current_round nodes.(i))) 0 all;
    tp_steps = Sim.steps sim;
    tp_messages = m.Metrics.messages_sent;
    tp_bytes = m.Metrics.bytes_sent;
    tp_progress = List.rev !progress;
    tp_ok }

let tput () =
  header "TPUT"
    "Throughput: batching x pipelining on the R2 config (n=4, t=1)";
  let structure = AS.threshold ~n:4 ~t:1 in
  let payloads_n = if !small then 24 else 64 in
  let payloads =
    List.init payloads_n (fun i -> Printf.sprintf "tput-payload-%03d" i)
  in
  (* (max_batch_msgs, window); (1,1) is the seed-equivalent baseline
     and (8,4) the headline configuration of the acceptance criterion. *)
  let grid = [ (1, 1); (4, 1); (1, 4); (4, 2); (8, 4) ] in
  Printf.printf "%-6s %-7s %-10s %-7s %-9s %-11s %-10s %-9s\n" "batch"
    "window" "delivered" "rounds" "steps" "payl/round" "kB/round"
    "dec/1k-st";
  let results =
    List.map
      (fun (b, w) ->
        let abc_policy =
          { Abc.default_policy with max_batch_msgs = b; window = w }
        in
        let r = run_tput ~structure ~seed:4242 ~payloads ~abc_policy () in
        let rounds = max 1 r.tp_rounds in
        let payloads_per_round =
          float_of_int r.tp_delivered /. float_of_int rounds
        in
        let bytes_per_round =
          float_of_int r.tp_bytes /. float_of_int rounds
        in
        let decided_per_1k_steps =
          1000.0 *. float_of_int r.tp_delivered
          /. float_of_int (max 1 r.tp_steps)
        in
        Printf.printf "%-6d %-7d %-10d %-7d %-9d %-11.2f %-10.1f %-9.2f%s\n"
          b w r.tp_delivered r.tp_rounds r.tp_steps payloads_per_round
          (bytes_per_round /. 1024.0) decided_per_1k_steps
          (if r.tp_ok then "" else "  [FAILED]");
        let row =
          Obs_json.Obj
            [ ("batch", Obs_json.Int b);
              ("window", Obs_json.Int w);
              ("payloads", Obs_json.Int payloads_n);
              ("delivered", Obs_json.Int r.tp_delivered);
              ("rounds", Obs_json.Int r.tp_rounds);
              ("steps", Obs_json.Int r.tp_steps);
              ("messages", Obs_json.Int r.tp_messages);
              ("bytes", Obs_json.Int r.tp_bytes);
              ("payloads_per_round", Obs_json.Float payloads_per_round);
              ("bytes_per_round", Obs_json.Float bytes_per_round);
              ("decided_per_1k_steps", Obs_json.Float decided_per_1k_steps);
              ("all_delivered", Obs_json.Bool r.tp_ok);
              ( "progress",
                Obs_json.Arr
                  (List.map
                     (fun (s, d) ->
                       Obs_json.Arr [ Obs_json.Int s; Obs_json.Int d ])
                     r.tp_progress) )
            ]
        in
        ((b, w), decided_per_1k_steps, row))
      grid
  in
  Bench_out.put "tput"
    (Obs_json.Arr (List.map (fun (_, _, row) -> row) results));
  let rate bw =
    List.find_map
      (fun (bw', rate, _) -> if bw' = bw then Some rate else None)
      results
  in
  (match (rate (1, 1), rate (8, 4)) with
  | Some base, Some best when base > 0.0 ->
    let speedup = best /. base in
    Printf.printf
      "speedup (8,4) vs (1,1), decided payloads per 1k sim steps: %.2fx\n"
      speedup;
    Bench_out.put "speedup_decided_per_1k_steps" (Obs_json.Float speedup)
  | _ -> ())

let experiments =
  [ ("F1", f1); ("F2", f2); ("E1", e1); ("E2", e2); ("G1", g1); ("R1", r1); ("R2", r2); ("M1", m1);
    ("M2", m2); ("O1", o1); ("O2", o2); ("S1", s1); ("S2", s2); ("C1", c1);
    ("C2", c2); ("TPUT", tput) ]

let () =
  let args =
    List.filter
      (fun a ->
        if a = "--small" then begin
          small := true;
          false
        end
        else true)
      (match Array.to_list Sys.argv with _ :: rest -> rest | [] -> [])
  in
  let requested =
    match args with [] -> List.map fst experiments | names -> names
  in
  List.iter
    (fun name ->
      match List.assoc_opt name experiments with
      | Some f -> Bench_out.with_experiment ~id:name f
      | None -> Printf.printf "unknown experiment %S\n" name)
    requested;
  print_newline ()
