(* Command-line interface to the SINTRA reproduction: inspect adversary
   structures, run protocol simulations, and exercise the trusted
   services from a shell.

     dune exec bin/sintra_cli.exe -- structure --example 2
     dune exec bin/sintra_cli.exe -- abc -n 7 -t 2 --payloads 5 --crash 0,1
     dune exec bin/sintra_cli.exe -- trace -n 4 --payloads 2 --jsonl
     dune exec bin/sintra_cli.exe -- coin -n 4 -t 1 --flips 16
     dune exec bin/sintra_cli.exe -- notary --documents "idea one,idea two"
     dune exec bin/sintra_cli.exe -- bench-check BENCH_M1.json
     dune exec bin/sintra_cli.exe -- faults --seeds 50
*)

module AS = Adversary_structure

open Cmdliner

(* ---------- span timeline ------------------------------------------- *)

(* Build an active observability instance whose tracer reads the
   simulator's virtual clock.  The sim must be created with [obs]
   first; the tracer closes over it afterwards via [set_tracer]. *)
let attach_tracer obs sim =
  let tr = Obs_trace.create ~now:(fun () -> Sim.clock sim) () in
  Obs.set_tracer obs tr;
  tr

let print_span_timeline ?(limit = 60) (tr : Obs_trace.t) =
  let records = Obs_trace.records tr in
  let st = Obs_trace.stats tr in
  Printf.printf
    "span timeline: %d spans begun, %d ended, %d points, %d dropped by the ring\n"
    st.Obs_trace.spans_started st.Obs_trace.spans_ended
    st.Obs_trace.points_recorded st.Obs_trace.records_dropped;
  Printf.printf "  %9s %7s  %-4s %s\n" "start" "dur" "who" "layer/event";
  List.iteri
    (fun i (r : Obs_trace.record) ->
      if i < limit then begin
        let indent = String.make (min 16 (2 * r.Obs_trace.depth)) ' ' in
        let who =
          if r.Obs_trace.party >= 0 then Printf.sprintf "p%d" r.Obs_trace.party
          else "--"
        in
        let dur =
          if r.Obs_trace.id = 0 then "      ."
          else if Float.is_nan r.Obs_trace.t_end then "   open"
          else Printf.sprintf "%7.1f" (r.Obs_trace.t_end -. r.Obs_trace.t_start)
        in
        Printf.printf "  %9.1f %s  %-4s %s%s/%s%s%s\n" r.Obs_trace.t_start dur
          who indent r.Obs_trace.layer r.Obs_trace.name
          (if r.Obs_trace.tag = "" then ""
           else " [" ^ r.Obs_trace.tag ^ "]")
          (if r.Obs_trace.detail = "" then "" else "  " ^ r.Obs_trace.detail)
      end)
    records;
  let total = List.length records in
  if total > limit then
    Printf.printf "  ... and %d more records (raise --limit or use --jsonl)\n"
      (total - limit)

(* ---------- shared arguments --------------------------------------- *)

let n_arg =
  Arg.(value & opt int 4 & info [ "n" ] ~docv:"N" ~doc:"Number of servers.")

let t_arg =
  Arg.(
    value & opt int 1
    & info [ "t" ] ~docv:"T" ~doc:"Corruption threshold (needs n > 3t).")

let seed_arg =
  Arg.(value & opt int 1 & info [ "seed" ] ~docv:"SEED" ~doc:"Simulation seed.")

let example_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "example" ] ~docv:"1|2"
        ~doc:"Use the paper's Example 1 (9 servers) or Example 2 (16 servers) \
              generalized adversary structure instead of a threshold.")

let crash_arg =
  Arg.(
    value & opt string ""
    & info [ "crash" ] ~docv:"IDS"
        ~doc:"Comma-separated server ids to crash before the run.")

let parse_crash s =
  if s = "" then []
  else List.map int_of_string (String.split_on_char ',' s)

let crypto_arg =
  Arg.(
    value & opt string "eager"
    & info [ "crypto" ] ~docv:"POLICY"
        ~doc:"Share-verification policy: eager (per-share at receipt, the \
              default), eager+batch (batched verify calls), or lazy \
              (defer proof checks to combine time, batched, with \
              bisection fallback).")

let set_crypto s =
  match Crypto_policy.of_string s with
  | Some p -> Crypto_policy.set p
  | None ->
    Printf.eprintf "unknown crypto policy %S (eager, eager+batch, lazy)\n" s;
    exit 2

let structure_of ~n ~t = function
  | Some 1 -> Canonical_structures.example1 ()
  | Some 2 -> Canonical_structures.example2 ()
  | Some k -> invalid_arg (Printf.sprintf "unknown example %d" k)
  | None -> AS.threshold ~n ~t

(* ---------- structure: inspect an adversary structure --------------- *)

let structure_cmd =
  let run n t example =
    let s = structure_of ~n ~t example in
    Printf.printf "parties:                  %d\n" (AS.n s);
    Printf.printf "Q3 condition:             %b\n" (AS.satisfies_q3 s);
    Printf.printf "Q2 condition:             %b\n" (AS.satisfies_q2 s);
    Printf.printf "sharing compatible:       %b\n" (AS.check_sharing_compatible s);
    Printf.printf "uniform tolerance:        any %d servers\n"
      (AS.max_uniform_tolerance s);
    let maxes = AS.maximal_adversary_sets s in
    Printf.printf "maximal corruptible sets: %d\n" (List.length maxes);
    List.iteri
      (fun i m ->
        if i < 12 then Printf.printf "  %s (%d servers)\n" (Pset.to_string m) (Pset.card m))
      maxes;
    if List.length maxes > 12 then
      Printf.printf "  ... and %d more\n" (List.length maxes - 12)
  in
  Cmd.v (Cmd.info "structure" ~doc:"Inspect an adversary structure.")
    Term.(const run $ n_arg $ t_arg $ example_arg)

(* ---------- abc: run atomic broadcast -------------------------------- *)

let abc_cmd =
  let payloads_arg =
    Arg.(
      value & opt int 3
      & info [ "payloads" ] ~docv:"K" ~doc:"Number of payloads to order.")
  in
  let trace_arg =
    Arg.(
      value & flag
      & info [ "trace" ]
          ~doc:"Print the first 40 simulator events (message-level trace) \
                and the protocol span timeline.")
  in
  let link_arg =
    Arg.(
      value & flag
      & info [ "link" ]
          ~doc:"Run over the reliable link layer (per-peer ack/retransmit \
                channels with the default policy).")
  in
  let drop_arg =
    Arg.(
      value & opt float 0.0
      & info [ "drop-rate" ] ~docv:"P"
          ~doc:"Drop each delivery attempt with probability P (lossy \
                chaos; combine with --link to see retransmission restore \
                liveness).")
  in
  let run n t example seed payloads crash trace link drop crypto =
    set_crypto crypto;
    let s = structure_of ~n ~t example in
    let n = AS.n s in
    let kr = Keyring.deal ~rsa_bits:192 ~seed:99 s in
    (* the link layer's counters live in the obs registry, so reporting
       them needs an active handle *)
    let obs = if trace || link then Obs.create () else Obs.noop in
    let sim =
      Sim.create ~policy:Sim.Random_order
        ~size:(Link.frame_size (Abc.msg_size kr)) ~obs ~n ~seed ()
    in
    if drop > 0.0 then
      Sim.set_chaos sim
        (Some
           {
             Sim.benign_chaos with
             default_link = { Sim.no_fault with drop };
           });
    let span_tracer = if trace then Some (attach_tracer obs sim) else None in
    if trace then
      Sim.enable_trace sim ~summarize:(Link.frame_summary Abc.msg_summary);
    let logs = Array.make n [] in
    let nodes =
      Stack.deploy_abc ~sim ~keyring:kr ~tag:"cli"
        ?link:(if link then Some Link.default_policy else None)
        ~deliver:(fun me p -> logs.(me) <- p :: logs.(me)) ()
    in
    let crashed = parse_crash crash in
    List.iter (Sim.crash sim) crashed;
    let honest = List.filter (fun i -> not (List.mem i crashed)) (List.init n Fun.id) in
    List.iteri
      (fun i p ->
        let srv = List.nth honest (i mod List.length honest) in
        Abc.broadcast nodes.(srv) p)
      (List.init payloads (fun i -> Printf.sprintf "payload-%02d" i));
    (try
       Sim.run sim ~until:(fun () ->
           List.for_all (fun i -> List.length logs.(i) >= payloads) honest)
     with Sim.Out_of_steps { at_clock; pending; timers; detail } ->
       Printf.printf
         "!! out of steps at clock %.0f (%d pending, %d timers) — liveness \
          lost?\n"
         at_clock pending timers;
       if detail <> "" then Printf.printf "!! %s\n" detail);
    let m = Sim.metrics sim in
    (if trace then begin
       print_endline "trace (first 40 events):";
       List.iteri
         (fun i ev ->
           if i < 40 then
             match ev with
             | Sim.Delivered { at; src; dst; summary } ->
               Printf.printf "  %8.1f  %d -> %d  %s\n" at src dst summary
             | Sim.Dropped { at; src; dst; reason } ->
               Printf.printf "  %8.1f  %d -> %d  (dropped: %s)\n" at src dst
                 (Sim.drop_reason_label reason)
             | Sim.Timer_fired { at; party } ->
               Printf.printf "  %8.1f  timer at %d\n" at party)
         (Sim.trace sim)
     end);
    Option.iter (fun tr -> print_span_timeline tr) span_tracer;
    Printf.printf "servers: %d (crashed: %s)\n" n
      (if crashed = [] then "none" else String.concat "," (List.map string_of_int crashed));
    Printf.printf "network: %d messages, %d kB, virtual time %.0f\n"
      m.Metrics.messages_sent (m.Metrics.bytes_sent / 1024) (Sim.clock sim);
    if drop > 0.0 then
      Printf.printf "chaos: %d deliveries dropped (rate %.2f)\n"
        m.Metrics.chaos_drops drop;
    if link then begin
      let snap = Obs.snapshot obs in
      let v name =
        Option.value ~default:0
          (Obs_registry.counter_value snap ~labels:[ ("layer", "link") ] name)
      in
      Printf.printf
        "link: %d retransmissions, %d duplicates suppressed, %d ack bytes\n"
        (v "link_retransmit")
        (v "link_dup_suppressed")
        (v "link_ack_bytes")
    end;
    (match honest with
    | h :: _ ->
      Printf.printf "total order at server %d:\n" h;
      List.iteri (fun k p -> Printf.printf "  %d. %s\n" k p) (List.rev logs.(h));
      let agree =
        List.for_all (fun i -> List.rev logs.(i) = List.rev logs.(h)) honest
      in
      Printf.printf "all honest servers agree on the order: %b\n" agree
    | [] -> ())
  in
  Cmd.v
    (Cmd.info "abc" ~doc:"Run atomic broadcast on the simulated network.")
    Term.(
      const run $ n_arg $ t_arg $ example_arg $ seed_arg $ payloads_arg
      $ crash_arg $ trace_arg $ link_arg $ drop_arg $ crypto_arg)

(* ---------- trace: span-level protocol trace ------------------------- *)

let trace_cmd =
  let payloads_arg =
    Arg.(
      value & opt int 2
      & info [ "payloads" ] ~docv:"K" ~doc:"Number of payloads to order.")
  in
  let jsonl_arg =
    Arg.(
      value & flag
      & info [ "jsonl" ]
          ~doc:"Emit the span records as JSON lines instead of the pretty \
                timeline.")
  in
  let limit_arg =
    Arg.(
      value & opt int 80
      & info [ "limit" ] ~docv:"N"
          ~doc:"Maximum records shown by the pretty timeline.")
  in
  let run n t example seed payloads jsonl limit =
    let s = structure_of ~n ~t example in
    let n = AS.n s in
    let kr = Keyring.deal ~rsa_bits:192 ~seed:99 s in
    let obs = Obs.create () in
    let sim =
      Sim.create ~policy:Sim.Random_order
        ~size:(Link.frame_size (Abc.msg_size kr)) ~obs ~n ~seed ()
    in
    let tr = attach_tracer obs sim in
    let logs = Array.make n [] in
    let nodes =
      Stack.deploy_abc ~sim ~keyring:kr ~tag:"trace"
        ~deliver:(fun me p -> logs.(me) <- p :: logs.(me)) ()
    in
    List.iteri
      (fun i p -> Abc.broadcast nodes.(i mod n) p)
      (List.init payloads (fun i -> Printf.sprintf "payload-%02d" i));
    (try
       Sim.run sim ~until:(fun () ->
           Array.for_all (fun l -> List.length l >= payloads) logs)
     with Sim.Out_of_steps { at_clock; pending; timers; detail } ->
       Printf.eprintf
         "!! out of steps at clock %.0f (%d pending, %d timers) — liveness \
          lost?\n"
         at_clock pending timers;
       if detail <> "" then Printf.eprintf "!! %s\n" detail);
    if jsonl then print_string (Obs_trace.to_jsonl tr)
    else print_span_timeline ~limit tr
  in
  Cmd.v
    (Cmd.info "trace"
       ~doc:"Run atomic broadcast and print the span-level protocol trace.")
    Term.(
      const run $ n_arg $ t_arg $ example_arg $ seed_arg $ payloads_arg
      $ jsonl_arg $ limit_arg)

(* ---------- bench-check: validate machine-readable artifacts --------- *)

(* Dispatches on the document's "schema" member: "sintra-bench/1"
   (BENCH_<id>.json, written by bench/main.ml) and "sintra-faults/2"
   (FAULTS_<id>.json, written by the fault-campaign runner). *)
let bench_check_cmd =
  let files_arg =
    Arg.(
      value & pos_all string []
      & info [] ~docv:"FILE"
          ~doc:"BENCH_<id>.json / FAULTS_<id>.json / FLIGHT_<id>.json / \
                RECOV_<id>.json / EPOCH_<id>.json files to validate \
                (default: every such artifact in the current directory).")
  in
  let read_file path =
    let ic = open_in_bin path in
    let s = really_input_string ic (in_channel_length ic) in
    close_in ic;
    s
  in
  let has_prefix p f =
    String.length f > String.length p + 5
    && String.sub f 0 (String.length p) = p
    && Filename.check_suffix f ".json"
  in
  let is_artifact f =
    has_prefix "BENCH_" f || has_prefix "FAULTS_" f || has_prefix "FLIGHT_" f
    || has_prefix "RECOV_" f || has_prefix "EPOCH_" f
  in
  let check_bench path doc : (string, string) result =
    let str k = Option.bind (Obs_json.member k doc) Obs_json.to_str in
    let num k = Option.bind (Obs_json.member k doc) Obs_json.to_float in
    let counters =
      Option.bind (Obs_json.member "metrics" doc) (Obs_json.member "counters")
      |> fun o -> Option.bind o Obs_json.to_list
    in
    let counter_ok c =
      Option.bind (Obs_json.member "name" c) Obs_json.to_str <> None
      && Option.bind (Obs_json.member "value" c) Obs_json.to_int <> None
    in
    let crypto_ok =
      match Obs_json.member "crypto_ops" doc with
      | Some ops ->
        List.for_all
          (fun kind ->
            Option.bind (Obs_json.member (Obs_crypto.name kind) ops)
              Obs_json.to_int
            <> None)
          Obs_crypto.all_kinds
      | None -> false
    in
    (* Throughput documents (BENCH_TPUT.json) additionally carry a
       "tput" array of sweep rows; enforce the throughput-specific
       invariants: non-zero rounds, delivered within bounds, and
       monotone cumulative-delivery progress samples. *)
    let tput_ok =
      match Obs_json.member "tput" doc with
      | None -> Ok 0
      | Some rows ->
        (match Obs_json.to_list rows with
        | None -> Error "\"tput\" is not an array"
        | Some [] -> Error "\"tput\" array is empty"
        | Some rs ->
          let row_err i row =
            let int k = Option.bind (Obs_json.member k row) Obs_json.to_int in
            match (int "rounds", int "delivered", int "payloads") with
            | Some rounds, _, _ when rounds < 1 ->
              Some
                (Printf.sprintf "tput row %d: rounds = %d (must be >= 1)" i
                   rounds)
            | Some _, Some delivered, Some payloads
              when delivered < 0 || delivered > payloads ->
              Some
                (Printf.sprintf "tput row %d: delivered %d outside [0, %d]" i
                   delivered payloads)
            | Some _, Some _, Some _ ->
              (match
                 Option.bind (Obs_json.member "progress" row) Obs_json.to_list
               with
              | None ->
                Some (Printf.sprintf "tput row %d: missing \"progress\"" i)
              | Some samples ->
                let rec monotone last = function
                  | [] -> None
                  | s :: rest ->
                    (match Option.bind (Obs_json.to_list s) (fun l ->
                         match l with
                         | [ steps; d ] ->
                           (match
                              (Obs_json.to_int steps, Obs_json.to_int d)
                            with
                           | Some _, Some d -> Some d
                           | _ -> None)
                         | _ -> None)
                     with
                    | Some d when d >= last -> monotone d rest
                    | Some d ->
                      Some
                        (Printf.sprintf
                           "tput row %d: delivered count drops %d -> %d" i
                           last d)
                    | None ->
                      Some
                        (Printf.sprintf
                           "tput row %d: ill-typed progress sample" i))
                in
                monotone 0 samples)
            | _ ->
              Some
                (Printf.sprintf
                   "tput row %d: missing rounds/delivered/payloads" i)
          in
          let rec scan i = function
            | [] -> Ok (List.length rs)
            | r :: rest ->
              (match row_err i r with
              | None -> scan (i + 1) rest
              | Some e -> Error e)
          in
          scan 0 rs)
    in
    (* BENCH_NUM batch-sweep rows (kernel "dleq_verify" with a "batch"
       label): per-share cost must be non-increasing in the batch size
       (25% slack for timer noise), and the headline batch-8 speedup
       recorded by the bench must clear 3x.  Quick runs (the make-check
       smoke) keep the schema checks but relax both thresholds: their
       0.02 s timing windows are too noisy to hold to the real gate. *)
    let is_quick =
      match Option.bind (Obs_json.member "quick" doc) Obs_json.to_bool with
      | Some b -> b
      | None -> false
    in
    let slack = if is_quick then 2.0 else 1.25 in
    let gate = if is_quick then 1.5 else 3.0 in
    let batch_ok =
      let rows =
        List.filter_map
          (fun c ->
            let labels = Obs_json.member "labels" c in
            let lab k =
              Option.bind labels (fun l ->
                  Option.bind (Obs_json.member k l) Obs_json.to_str)
            in
            match
              ( lab "kernel", lab "batch",
                Option.bind (Obs_json.member "value" c) Obs_json.to_int )
            with
            | Some "dleq_verify", Some b, Some v ->
              Option.map (fun b -> (b, v)) (int_of_string_opt b)
            | _ -> None)
          (Option.value ~default:[] counters)
      in
      match List.sort compare rows with
      | [] -> Ok 0
      | sorted ->
        let rec mono = function
          | (b1, v1) :: ((b2, v2) :: _ as rest) ->
            if float_of_int v2 > float_of_int v1 *. slack then
              Error
                (Printf.sprintf
                   "dleq batch sweep: per-share cost increases %d ns \
                    (batch %d) -> %d ns (batch %d)"
                   v1 b1 v2 b2)
            else mono rest
          | _ -> Ok (List.length sorted)
        in
        (match mono sorted with
        | Error e -> Error e
        | Ok n_rows ->
          if not (List.mem_assoc 1 sorted && List.mem_assoc 8 sorted) then
            Ok n_rows
          else (
            match
              Option.bind (Obs_json.member "speedups" doc) (fun sp ->
                  Option.bind
                    (Obs_json.member "dleq_batch_8_vs_1" sp)
                    Obs_json.to_float)
            with
            | None -> Error "dleq batch sweep: missing dleq_batch_8_vs_1"
            | Some s when s < gate ->
              Error
                (Printf.sprintf
                   "dleq batch sweep: batch-8 speedup %.2fx below the \
                    %.1fx gate" s gate)
            | Some _ -> Ok n_rows))
    in
    match (tput_ok, batch_ok) with
    | Error e, _ | _, Error e -> Error e
    | Ok tput_rows, Ok batch_rows ->
      (match (str "experiment", num "wall_time_s", num "virtual_time_total",
              counters) with
      | Some id, Some wall, Some vt, Some cs
        when wall >= 0.0 && List.for_all counter_ok cs && crypto_ok ->
        Ok
          (Printf.sprintf "%s: OK (%s: %d counters, virtual time %.0f%s%s)"
             path id (List.length cs) vt
             (if tput_rows = 0 then ""
              else Printf.sprintf ", %d tput rows" tput_rows)
             (if batch_rows = 0 then ""
              else Printf.sprintf ", %d dleq batch rows" batch_rows))
      | _ -> Error "missing or ill-typed required fields")
  in
  let check_faults path doc : (string, string) result =
    match Campaign.validate_json doc with
    | Error e -> Error e
    | Ok () ->
      let str k = Option.bind (Obs_json.member k doc) Obs_json.to_str in
      let obj_int parent name =
        Option.bind (Obs_json.member parent doc) (fun o ->
            Option.bind (Obs_json.member name o) Obs_json.to_int)
      in
      let runs =
        Option.value ~default:0
          (Option.bind (Obs_json.member "runs" doc) Obs_json.to_int)
      in
      let link_enabled =
        Option.bind (Obs_json.member "link" doc) (fun l ->
            Option.bind (Obs_json.member "enabled" l) Obs_json.to_bool)
        = Some true
      in
      let link_retx =
        Option.value ~default:0
          (Option.bind (Obs_json.member "link" doc) (fun l ->
               Option.bind
                 (Obs_json.member "retransmits_total" l)
                 Obs_json.to_int))
      in
      Ok
        (Printf.sprintf
           "%s: OK (%s: %d runs, %d safety / %d liveness violations, link %s)"
           path
           (Option.value (str "experiment") ~default:"?")
           runs
           (Option.value (obj_int "violations" "safety") ~default:0)
           (Option.value (obj_int "violations" "liveness") ~default:0)
           (if link_enabled then
              Printf.sprintf "on, %d retransmissions" link_retx
            else "off"))
  in
  let check_flight path doc : (string, string) result =
    match Flight.validate_json doc with
    | Error e -> Error e
    | Ok () ->
      let str k = Option.bind (Obs_json.member k doc) Obs_json.to_str in
      let int k = Option.bind (Obs_json.member k doc) Obs_json.to_int in
      let dropped =
        Option.value ~default:0
          (Option.bind (Obs_json.member "trace" doc) (fun t ->
               Option.bind (Obs_json.member "dropped_events" t) Obs_json.to_int))
      in
      Ok
        (Printf.sprintf
           "%s: OK (%s: %d runs, %d decided, %d hot-ring events dropped)" path
           (Option.value (str "experiment") ~default:"?")
           (Option.value (int "runs") ~default:0)
           (Option.value (int "decided") ~default:0)
           dropped)
  in
  let check_recov path doc : (string, string) result =
    match Rejoin.validate_json doc with
    | Error e -> Error e
    | Ok () ->
      let str k = Option.bind (Obs_json.member k doc) Obs_json.to_str in
      let int k = Option.bind (Obs_json.member k doc) Obs_json.to_int in
      let mem_peaks =
        Option.bind (Obs_json.member "memory" doc) (fun m ->
            match
              ( Option.bind (Obs_json.member "gc_on" m) (fun o ->
                    Option.bind (Obs_json.member "log_peak" o) Obs_json.to_int),
                Option.bind (Obs_json.member "gc_off" m) (fun o ->
                    Option.bind (Obs_json.member "log_peak" o) Obs_json.to_int)
              )
            with
            | Some a, Some b -> Some (a, b)
            | _ -> None)
      in
      Ok
        (Printf.sprintf
           "%s: OK (%s: %d runs, %d recovered, %d transferred, %d forged \
            replies rejected%s)"
           path
           (Option.value (str "experiment") ~default:"?")
           (Option.value (int "runs") ~default:0)
           (Option.value (int "recovered") ~default:0)
           (Option.value (int "transferred") ~default:0)
           (Option.value (int "rejected_total") ~default:0)
           (match mem_peaks with
           | Some (on_, off) ->
             Printf.sprintf ", log peak %d gc-on vs %d gc-off" on_ off
           | None -> ""))
  in
  let check_svc path doc : (string, string) result =
    match Svc.validate_json doc with
    | Error e -> Error e
    | Ok () ->
      let str k = Option.bind (Obs_json.member k doc) Obs_json.to_str in
      let int k = Option.bind (Obs_json.member k doc) Obs_json.to_int in
      let nested a b =
        Option.value ~default:0
          (Option.bind (Obs_json.member a doc) (fun o ->
               Option.bind (Obs_json.member b o) Obs_json.to_int))
      in
      Ok
        (Printf.sprintf
           "%s: OK (%s: %d runs, %d/%d requests, %d fast-path hits, log peak \
            %d <= %d)"
           path
           (Option.value (str "experiment") ~default:"?")
           (Option.value (int "runs") ~default:0)
           (nested "requests" "completed") (nested "requests" "target")
           (nested "fastpath" "hits")
           (nested "memory" "plain_log_peak")
           (nested "memory" "bound"))
  in
  let check_epoch path doc : (string, string) result =
    match Refresh.validate_json doc with
    | Error e -> Error e
    | Ok () ->
      let str k = Option.bind (Obs_json.member k doc) Obs_json.to_str in
      let int k = Option.bind (Obs_json.member k doc) Obs_json.to_int in
      Ok
        (Printf.sprintf
           "%s: OK (%s: %d runs, %d completed, %d dealer exclusions)" path
           (Option.value (str "experiment") ~default:"?")
           (Option.value (int "runs") ~default:0)
           (Option.value (int "completed") ~default:0)
           (Option.value (int "excluded_total") ~default:0))
  in
  let check path : (string, string) result =
    match Obs_json.of_string (read_file path) with
    | Error e -> Error (Printf.sprintf "parse error: %s" e)
    | Ok doc ->
      (match Option.bind (Obs_json.member "schema" doc) Obs_json.to_str with
      | Some "sintra-bench/1" -> check_bench path doc
      | Some "sintra-faults/2" -> check_faults path doc
      | Some "sintra-flight/1" -> check_flight path doc
      | Some "sintra-recov/1" -> check_recov path doc
      | Some "sintra-svc/1" -> check_svc path doc
      | Some "sintra-epoch/1" -> check_epoch path doc
      | Some s -> Error (Printf.sprintf "unknown schema %S" s)
      | None -> Error "missing \"schema\" member")
  in
  let run files =
    let files =
      match files with
      | [] ->
        Sys.readdir "." |> Array.to_list |> List.filter is_artifact
        |> List.sort compare
      | fs -> fs
    in
    if files = [] then begin
      prerr_endline
        "bench-check: no BENCH_/FAULTS_/FLIGHT_/RECOV_/EPOCH_*.json files \
         found";
      exit 1
    end;
    let failed = ref false in
    List.iter
      (fun path ->
        match check path with
        | Ok msg -> print_endline msg
        | Error e ->
          failed := true;
          Printf.eprintf "%s: FAILED (%s)\n" path e)
      files;
    if !failed then exit 1
  in
  Cmd.v
    (Cmd.info "bench-check"
       ~doc:
         "Validate the schema of machine-readable benchmark \
          (sintra-bench/1), fault-campaign (sintra-faults/2), \
          flight-record (sintra-flight/1), recovery-campaign \
          (sintra-recov/1) and epoch-campaign (sintra-epoch/1) output, \
          including the link section's gating invariant (no undecided \
          liveness-gating runs), the recovery campaign's bounded-memory \
          invariant, and the epoch campaign's key-stability and \
          old-share-uselessness invariants.")
    Term.(const run $ files_arg)

(* ---------- faults: seed-sweep fault-injection campaigns ------------- *)

let faults_cmd =
  let seeds_arg =
    Arg.(
      value & opt int 50
      & info [ "seeds" ] ~docv:"K" ~doc:"Seeds per (protocol, policy, mix) cell.")
  in
  let protocols_arg =
    Arg.(
      value & opt string "abba,abc"
      & info [ "protocols" ] ~docv:"LIST"
          ~doc:"Comma-separated protocols to sweep (abba, abc).")
  in
  let policies_arg =
    Arg.(
      value & opt string "drop,dup-reorder,partition"
      & info [ "policies" ] ~docv:"LIST"
          ~doc:"Comma-separated chaos policies (drop, dup-reorder, \
                partition).")
  in
  let mixes_arg =
    Arg.(
      value & opt string "silent,crash,byzantine"
      & info [ "mixes" ] ~docv:"LIST"
          ~doc:"Comma-separated corruption mixes (silent, crash, byzantine).")
  in
  let payloads_arg =
    Arg.(
      value & opt int 2
      & info [ "payloads" ] ~docv:"K"
          ~doc:"Atomic-broadcast payloads per abc run.")
  in
  let max_steps_arg =
    Arg.(
      value & opt int 200_000
      & info [ "max-steps" ] ~docv:"N" ~doc:"Per-run simulator step bound.")
  in
  let out_arg =
    Arg.(
      value & opt string "CAMPAIGN"
      & info [ "out" ] ~docv:"ID"
          ~doc:"Report id: the campaign writes FAULTS_<ID>.json.")
  in
  let quick_arg =
    Arg.(
      value & flag
      & info [ "quick" ] ~doc:"Sweep only 5 seeds (CI smoke runs).")
  in
  let link_arg =
    Arg.(
      value & flag
      & info [ "link" ]
          ~doc:"Run every deployment over the reliable link layer \
                (default policy).  Flips lossy drop policies to \
                liveness-gating: an undecided drop run then fails the \
                campaign.")
  in
  let drop_rate_arg =
    Arg.(
      value & opt (some float) None
      & info [ "drop-rate" ] ~docv:"P"
          ~doc:"Override the drop policy's per-delivery loss probability \
                (default 0.02).")
  in
  let parse_list ~what parse s =
    String.split_on_char ',' s
    |> List.filter (fun x -> x <> "")
    |> List.map (fun name ->
           match parse name with
           | Some v -> v
           | None ->
             Printf.eprintf "faults: unknown %s %S\n" what name;
             exit 2)
  in
  let run n t seed seeds protocols policies mixes payloads max_steps out
      quick link drop_rate crypto =
    set_crypto crypto;
    let seeds = if quick then min seeds 5 else seeds in
    let policy_of_name name =
      match (name, drop_rate) with
      | "drop", Some rate -> Some (Campaign.drop_policy ~rate ())
      | _ -> Campaign.policy_of_name ~n name
    in
    let cfg =
      Campaign.default_config ~seeds ~seed_base:seed ~n ~t
        ~protocols:
          (parse_list ~what:"protocol" Campaign.protocol_of_string protocols)
        ~policies:(parse_list ~what:"policy" policy_of_name policies)
        ~mixes:(parse_list ~what:"mix" Campaign.mix_of_name mixes)
        ~payloads
        ?link:(if link then Some Link.default_policy else None)
        ~max_steps ()
    in
    let t0 = Unix.gettimeofday () in
    let rep =
      Campaign.run
        ~progress:(fun (k, total) ->
          if k mod 25 = 0 || k = total then
            Printf.eprintf "\r[faults] %d/%d runs%!" k total)
        cfg
    in
    let wall = Unix.gettimeofday () -. t0 in
    Printf.eprintf "\n%!";
    Campaign.pp_summary Format.std_formatter rep;
    let path = Campaign.write ~id:out ~wall rep in
    Printf.printf "[faults] wrote %s (%.1fs)\n" path wall;
    if not (Campaign.ok rep) then begin
      prerr_endline
        "faults: safety violation or liveness loss under a gating policy";
      exit 1
    end
  in
  Cmd.v
    (Cmd.info "faults"
       ~doc:
         "Sweep seeds x chaos policies x corruption mixes per protocol, \
          check the safety/liveness oracles, and write a sintra-faults/2 \
          report.  Exits non-zero on any safety violation, or on liveness \
          loss under a gating policy (reliable chaos, or lossy chaos \
          repaired by --link).")
    Term.(
      const run $ n_arg $ t_arg $ seed_arg $ seeds_arg $ protocols_arg
      $ policies_arg $ mixes_arg $ payloads_arg $ max_steps_arg $ out_arg
      $ quick_arg $ link_arg $ drop_rate_arg $ crypto_arg)

(* ---------- record: fault campaign with the flight recorder ---------- *)

let record_cmd =
  let seeds_arg =
    Arg.(
      value & opt int 10
      & info [ "seeds" ] ~docv:"K" ~doc:"Seeds per (protocol, policy, mix) cell.")
  in
  let protocols_arg =
    Arg.(
      value & opt string "abba,abc"
      & info [ "protocols" ] ~docv:"LIST"
          ~doc:"Comma-separated protocols to sweep (abba, abc).")
  in
  let policies_arg =
    Arg.(
      value & opt string "drop,dup-reorder,partition"
      & info [ "policies" ] ~docv:"LIST"
          ~doc:"Comma-separated chaos policies (drop, dup-reorder, \
                partition).")
  in
  let mixes_arg =
    Arg.(
      value & opt string "silent,crash,byzantine"
      & info [ "mixes" ] ~docv:"LIST"
          ~doc:"Comma-separated corruption mixes (silent, crash, byzantine).")
  in
  let payloads_arg =
    Arg.(
      value & opt int 2
      & info [ "payloads" ] ~docv:"K"
          ~doc:"Atomic-broadcast payloads per abc run.")
  in
  let max_steps_arg =
    Arg.(
      value & opt int 200_000
      & info [ "max-steps" ] ~docv:"N" ~doc:"Per-run simulator step bound.")
  in
  let out_arg =
    Arg.(
      value & opt string "CAMPAIGN"
      & info [ "out" ] ~docv:"ID"
          ~doc:"Record id: the campaign writes FLIGHT_<ID>.json.")
  in
  let link_arg =
    Arg.(
      value & flag
      & info [ "link" ]
          ~doc:"Run every deployment over the reliable link layer (default \
                policy).")
  in
  let drop_rate_arg =
    Arg.(
      value & opt (some float) None
      & info [ "drop-rate" ] ~docv:"P"
          ~doc:"Override the drop policy's per-delivery loss probability \
                (default 0.02).")
  in
  let quiet_arg =
    Arg.(value & flag & info [ "quiet" ] ~doc:"No progress on stderr.")
  in
  let parse_list ~what parse s =
    String.split_on_char ',' s
    |> List.filter (fun x -> x <> "")
    |> List.map (fun name ->
           match parse name with
           | Some v -> v
           | None ->
             Printf.eprintf "record: unknown %s %S\n" what name;
             exit 2)
  in
  let run n t seed seeds protocols policies mixes payloads max_steps out link
      drop_rate quiet =
    let policy_of_name name =
      match (name, drop_rate) with
      | "drop", Some rate -> Some (Campaign.drop_policy ~rate ())
      | _ -> Campaign.policy_of_name ~n name
    in
    let cfg =
      Campaign.default_config ~seeds ~seed_base:seed ~n ~t
        ~protocols:
          (parse_list ~what:"protocol" Campaign.protocol_of_string protocols)
        ~policies:(parse_list ~what:"policy" policy_of_name policies)
        ~mixes:(parse_list ~what:"mix" Campaign.mix_of_name mixes)
        ~payloads
        ?link:(if link then Some Link.default_policy else None)
        ~max_steps ()
    in
    let env = Campaign.prepare cfg in
    let flight = Flight.create ~obs:(Campaign.env_obs env) () in
    let rep =
      Campaign.run_prepared
        ~progress:(fun (k, total) ->
          if (not quiet) && (k mod 25 = 0 || k = total) then
            Printf.eprintf "\r[record] %d/%d runs%!" k total)
        ~flight env cfg
    in
    if not quiet then Printf.eprintf "\n%!";
    let summary =
      Flight.summarize ~id:out
        ~config:(Campaign.config_json cfg)
        (Flight.runs flight)
    in
    Flight.pp_summary Format.std_formatter summary;
    let path = Flight.write ~id:out summary in
    Printf.printf "[record] wrote %s\n" path;
    if not (Campaign.ok rep) then begin
      prerr_endline
        "record: safety violation or liveness loss under a gating policy";
      exit 1
    end
  in
  Cmd.v
    (Cmd.info "record"
       ~doc:
         "Run a fault campaign under the flight recorder and write a \
          sintra-flight/1 summary (FLIGHT_<ID>.json): per-cell decide-time \
          / steps / retransmit / buffer-peak histograms, per-layer counter \
          rollups, worst-run pointers, and bounded hot-trace windows \
          around anomalies.  The file is derived from seeded virtual-time \
          runs only, so identical configurations produce identical bytes.")
    Term.(
      const run $ n_arg $ t_arg $ seed_arg $ seeds_arg $ protocols_arg
      $ policies_arg $ mixes_arg $ payloads_arg $ max_steps_arg $ out_arg
      $ link_arg $ drop_rate_arg $ quiet_arg)

(* ---------- recover: crash-and-rejoin recovery campaigns -------------- *)

let recover_cmd =
  let seeds_arg =
    Arg.(
      value & opt int 50
      & info [ "seeds" ] ~docv:"K" ~doc:"Seeds per (scenario, variant) cell.")
  in
  let scenarios_arg =
    Arg.(
      value & opt string "crash-rejoin,partition-heal"
      & info [ "scenarios" ] ~docv:"LIST"
          ~doc:"Comma-separated scenarios (crash-rejoin, partition-heal).")
  in
  let payloads_arg =
    Arg.(
      value & opt int 24
      & info [ "payloads" ] ~docv:"K" ~doc:"Payloads streamed per run.")
  in
  let interval_arg =
    Arg.(
      value & opt int 4
      & info [ "interval" ] ~docv:"R"
          ~doc:"Checkpoint period in atomic-broadcast rounds.")
  in
  let drop_arg =
    Arg.(
      value & opt float 0.3
      & info [ "drop-rate" ] ~docv:"P"
          ~doc:"Chaos drop probability (the reliable link restores).")
  in
  let mem_payloads_arg =
    Arg.(
      value & opt int 192
      & info [ "mem-payloads" ] ~docv:"K"
          ~doc:"Stream length of the bounded-memory probe (gc on vs off).")
  in
  let no_forged_arg =
    Arg.(
      value & flag
      & info [ "no-forged" ]
          ~doc:"Skip the forged-snapshot variant (plain runs only).")
  in
  let max_steps_arg =
    Arg.(
      value & opt int 600_000
      & info [ "max-steps" ] ~docv:"N" ~doc:"Per-run simulator step bound.")
  in
  let out_arg =
    Arg.(
      value & opt string "RECOVERY"
      & info [ "out" ] ~docv:"ID"
          ~doc:"Report id: the campaign writes RECOV_<ID>.json.")
  in
  let quick_arg =
    Arg.(
      value & flag
      & info [ "quick" ] ~doc:"Sweep only 3 seeds (CI smoke runs).")
  in
  let run n t seed seeds scenarios payloads interval drop mem_payloads
      no_forged max_steps out quick crypto =
    set_crypto crypto;
    let seeds = if quick then min seeds 3 else seeds in
    let scenarios =
      String.split_on_char ',' scenarios
      |> List.filter (fun x -> x <> "")
      |> List.map (fun name ->
             match Rejoin.scenario_of_string name with
             | Some s -> s
             | None ->
               Printf.eprintf "recover: unknown scenario %S\n" name;
               exit 2)
    in
    let cfg =
      Rejoin.default_config ~seeds ~seed_base:seed ~n ~t ~payloads ~interval
        ~drop ~mem_payloads ~scenarios
        ~variants:(if no_forged then [ false ] else [ false; true ])
        ~max_steps ()
    in
    let t0 = Unix.gettimeofday () in
    let rep =
      Rejoin.run
        ~progress:(fun (k, total) ->
          if k mod 10 = 0 || k = total then
            Printf.eprintf "\r[recover] %d/%d runs%!" k total)
        cfg
    in
    let wall = Unix.gettimeofday () -. t0 in
    Printf.eprintf "\n%!";
    Rejoin.pp_summary Format.std_formatter rep;
    let path = Rejoin.write ~id:out ~wall rep in
    Printf.printf "[recover] wrote %s (%.1fs)\n" path wall;
    if not (Rejoin.ok rep) then begin
      prerr_endline
        "recover: safety violation, unrecovered victim, unrejected forgery, \
         or unbounded delivered log";
      exit 1
    end
  in
  Cmd.v
    (Cmd.info "recover"
       ~doc:
         "Sweep crash-and-rejoin / partition-heal scenarios: stream \
          payloads through a checkpointing link-on deployment under lossy \
          chaos, knock one replica out mid-stream, bring it back, and \
          check with the recovery oracles that it rejoins the whole total \
          order via certified state transfer (forged snapshots from a \
          Byzantine peer must be rejected).  Also probes delivered-log \
          boundedness with checkpoint GC on vs off, and writes a \
          sintra-recov/1 report (RECOV_<ID>.json).")
    Term.(
      const run $ n_arg $ t_arg $ seed_arg $ seeds_arg $ scenarios_arg
      $ payloads_arg $ interval_arg $ drop_arg $ mem_payloads_arg
      $ no_forged_arg $ max_steps_arg $ out_arg $ quick_arg $ crypto_arg)

(* ---------- refresh: online epoch-reconfiguration campaigns ----------- *)

let refresh_cmd =
  let seeds_arg =
    Arg.(
      value & opt int 50
      & info [ "seeds" ] ~docv:"K" ~doc:"Seeds per (scenario, variant) cell.")
  in
  let scenarios_arg =
    Arg.(
      value & opt string "refresh-only,add-replica,kill-and-replace"
      & info [ "scenarios" ] ~docv:"LIST"
          ~doc:
            "Comma-separated scenarios (refresh-only, add-replica, \
             kill-and-replace).")
  in
  let variants_arg =
    Arg.(
      value & opt string "benign,lossy,byz-refresher"
      & info [ "variants" ] ~docv:"LIST"
          ~doc:"Comma-separated variants (benign, lossy, byz-refresher).")
  in
  let payloads_arg =
    Arg.(
      value & opt int 24
      & info [ "payloads" ] ~docv:"K" ~doc:"Payloads streamed per run.")
  in
  let interval_arg =
    Arg.(
      value & opt int 4
      & info [ "interval" ] ~docv:"R"
          ~doc:"Checkpoint period in atomic-broadcast rounds.")
  in
  let drop_arg =
    Arg.(
      value & opt float 0.3
      & info [ "drop-rate" ] ~docv:"P"
          ~doc:"Chaos drop probability for the lossy variant.")
  in
  let max_steps_arg =
    Arg.(
      value & opt int 800_000
      & info [ "max-steps" ] ~docv:"N" ~doc:"Per-run simulator step bound.")
  in
  let out_arg =
    Arg.(
      value & opt string "EPOCH"
      & info [ "out" ] ~docv:"ID"
          ~doc:"Report id: the campaign writes EPOCH_<ID>.json.")
  in
  let quick_arg =
    Arg.(
      value & flag
      & info [ "quick" ] ~doc:"Sweep only 2 seeds (CI smoke runs).")
  in
  let run n t seed seeds scenarios variants payloads interval drop max_steps
      out quick crypto =
    set_crypto crypto;
    let seeds = if quick then min seeds 2 else seeds in
    let parse_list what of_string s =
      String.split_on_char ',' s
      |> List.filter (fun x -> x <> "")
      |> List.map (fun name ->
             match of_string name with
             | Some v -> v
             | None ->
               Printf.eprintf "refresh: unknown %s %S\n" what name;
               exit 2)
    in
    let scenarios =
      parse_list "scenario" Refresh.scenario_of_string scenarios
    in
    let variants = parse_list "variant" Refresh.variant_of_string variants in
    let cfg =
      Refresh.default_config ~seeds ~seed_base:seed ~n ~t ~payloads ~interval
        ~drop ~scenarios ~variants ~max_steps ()
    in
    let t0 = Unix.gettimeofday () in
    let rep =
      Refresh.run
        ~progress:(fun (k, total) ->
          if k mod 5 = 0 || k = total then
            Printf.eprintf "\r[refresh] %d/%d runs%!" k total)
        cfg
    in
    let wall = Unix.gettimeofday () -. t0 in
    Printf.eprintf "\n%!";
    Refresh.pp_summary Format.std_formatter rep;
    let path = Refresh.write ~id:out ~wall rep in
    Printf.printf "[refresh] wrote %s (%.1fs)\n" path wall;
    if not (Refresh.ok rep) then begin
      prerr_endline
        "refresh: safety violation, incomplete reconfiguration, key drift, \
         live old shares, or missing reply certificates";
      exit 1
    end
  in
  Cmd.v
    (Cmd.info "refresh"
       ~doc:
         "Sweep online epoch-reconfiguration scenarios: stream payloads \
          through a checkpointing deployment while the replicas agree — \
          through their own total order — on a proactive share refresh, a \
          replica addition, or a kill-and-replace, then check that the \
          service public key never changes, pre-epoch shares open garbage \
          against the post-epoch sharing, every payload still earns a \
          valid reply certificate, and equivocating refreshers are \
          excluded.  Writes a sintra-epoch/1 report (EPOCH_<ID>.json).")
    Term.(
      const run $ n_arg $ t_arg $ seed_arg $ seeds_arg $ scenarios_arg
      $ variants_arg $ payloads_arg $ interval_arg $ drop_arg $ max_steps_arg
      $ out_arg $ quick_arg $ crypto_arg)

(* ---------- svc: sustained-load client-pipeline campaigns ------------- *)

let svc_cmd =
  let seeds_arg =
    Arg.(
      value & opt int 1
      & info [ "seeds" ] ~docv:"K" ~doc:"Seeds per (kind, variant) cell.")
  in
  let requests_arg =
    Arg.(
      value & opt int 13_000
      & info [ "requests" ] ~docv:"K"
          ~doc:"Completed reply certificates per run (all clients).")
  in
  let clients_arg =
    Arg.(
      value & opt int 3
      & info [ "clients" ] ~docv:"C" ~doc:"Closed-loop clients per run.")
  in
  let window_arg =
    Arg.(
      value & opt int 4
      & info [ "window" ] ~docv:"W" ~doc:"Per-client in-flight bound.")
  in
  let read_frac_arg =
    Arg.(
      value & opt float 0.75
      & info [ "read-frac" ] ~docv:"P"
          ~doc:"Fraction of submissions routed through the read-only fast \
                path.")
  in
  let kinds_arg =
    Arg.(
      value & opt string "ca,directory,notary"
      & info [ "kinds" ] ~docv:"LIST"
          ~doc:"Comma-separated service kinds (ca, directory, notary).")
  in
  let variants_arg =
    Arg.(
      value & opt string "benign,drop-arq,crash-rejoin"
      & info [ "variants" ] ~docv:"LIST"
          ~doc:"Comma-separated variants (benign, drop-arq, crash-rejoin).")
  in
  let interval_arg =
    Arg.(
      value & opt int 2
      & info [ "interval" ] ~docv:"R"
          ~doc:
            "Checkpoint period for the Plain-mode kinds (GC on).  Short on \
             purpose: under lossy links the delivered log grows by the \
             certification lag on top of the interval, and the campaign's \
             memory oracle holds the GC'd peak under mem-bound.")
  in
  let drop_arg =
    Arg.(
      value & opt float 0.3
      & info [ "drop-rate" ] ~docv:"P"
          ~doc:"Chaos drop probability for the drop-arq variant.")
  in
  let max_steps_arg =
    Arg.(
      value & opt int 200_000_000
      & info [ "max-steps" ] ~docv:"N" ~doc:"Per-run simulator step bound.")
  in
  let out_arg =
    Arg.(
      value & opt string "svc"
      & info [ "out" ] ~docv:"ID"
          ~doc:
            "Report id: the campaign writes BENCH_SVC_<ID>.json (plain \
             BENCH_SVC.json for the default id).")
  in
  let quick_arg =
    Arg.(
      value & flag
      & info [ "quick" ]
          ~doc:
            "CI smoke configuration: 1 seed, 48 requests per run (the full \
             sweep still covers every kind and variant).")
  in
  let run n t seed seeds requests clients window read_frac kinds variants
      interval drop max_steps out quick crypto =
    set_crypto crypto;
    let seeds = if quick then 1 else seeds in
    let requests = if quick then 48 else requests in
    let split conv what s =
      String.split_on_char ',' s
      |> List.filter (fun x -> x <> "")
      |> List.map (fun name ->
             match conv name with
             | Some v -> v
             | None ->
               Printf.eprintf "svc: unknown %s %S\n" what name;
               exit 2)
    in
    let cfg =
      Svc.default_config ~seeds ~seed_base:seed ~n ~t ~requests ~clients
        ~window ~read_frac ~interval ~drop
        ~kinds:(split Svc.kind_of_string "kind" kinds)
        ~variants:(split Svc.variant_of_string "variant" variants)
        ~max_steps ()
    in
    let t0 = Unix.gettimeofday () in
    let rep =
      Svc.run
        ~progress:(fun (k, total) ->
          Printf.eprintf "\r[svc] %d/%d runs%!" k total)
        cfg
    in
    let wall = Unix.gettimeofday () -. t0 in
    Printf.eprintf "\n%!";
    Svc.pp_summary Format.std_formatter rep;
    let path = Svc.write ~id:out ~wall rep in
    Printf.printf "[svc] wrote %s (%.1fs, %.0f requests/s wall)\n" path wall
      (float_of_int (Svc.completed_total rep) /. Float.max wall 1e-9);
    if not (Svc.ok rep) then begin
      prerr_endline
        "svc: safety violation, missed quota, certificate failure, cold \
         fast path, or unbounded delivered log";
      exit 1
    end
  in
  Cmd.v
    (Cmd.info "svc"
       ~doc:
         "Sustained-load campaigns over the replicated services: \
          closed-loop clients drive the CA / directory / notary through \
          the full request pipeline (ordered submissions, threshold reply \
          certificates, the read-only fast path, resend-based loss \
          recovery) under benign, lossy-with-ARQ and crash-rejoin \
          schedules.  Every accepted certificate is re-verified, dedup \
          and total-order oracles run per replica, checkpoint GC keeps \
          the delivered log bounded, and the sweep writes a sintra-svc/1 \
          report (BENCH_SVC.json).")
    Term.(
      const run $ n_arg $ t_arg $ seed_arg $ seeds_arg $ requests_arg
      $ clients_arg $ window_arg $ read_frac_arg $ kinds_arg $ variants_arg
      $ interval_arg $ drop_arg $ max_steps_arg $ out_arg $ quick_arg
      $ crypto_arg)

(* ---------- compare: regression gate over two artifacts -------------- *)

let compare_cmd =
  let a_arg =
    Arg.(
      required & pos 0 (some string) None
      & info [] ~docv:"BASELINE"
          ~doc:"Baseline FLIGHT/FAULTS/BENCH json file.")
  in
  let b_arg =
    Arg.(
      required & pos 1 (some string) None
      & info [] ~docv:"CANDIDATE"
          ~doc:"Candidate file of the same schema.")
  in
  let rel_arg =
    Arg.(
      value & opt float 0.10
      & info [ "rel" ] ~docv:"R"
          ~doc:"Relative worsening tolerated by thresholded metrics \
                (default 0.10).")
  in
  let abs_arg =
    Arg.(
      value & opt float 1e-9
      & info [ "abs" ] ~docv:"E"
          ~doc:"Absolute tolerance floor (default 1e-9: byte-stable reruns \
                compare equal).")
  in
  let run a b rel abs_eps =
    match
      Compare.compare_files ~thresholds:{ Compare.rel; abs_eps } a b
    with
    | Error e ->
      Printf.eprintf "compare: %s\n" e;
      exit 2
    | Ok report ->
      Compare.pp_report Format.std_formatter report;
      if not (Compare.ok report) then exit 1
  in
  Cmd.v
    (Cmd.info "compare"
       ~doc:
         "Diff two machine-readable artifacts of the same schema \
          (sintra-flight/1, sintra-faults/2 or sintra-bench/1) and \
          classify every metric delta as improved, regressed or neutral. \
          Safety violations, gating-liveness violations and decided \
          counts regress on any worsening; other metrics tolerate \
          --rel/--abs.  Exits 1 on regression, 2 on structural mismatch \
          — wiring this against a checked-in baseline turns it into a CI \
          regression gate.")
    Term.(const run $ a_arg $ b_arg $ rel_arg $ abs_arg)

(* ---------- search: adversarial schedule search ---------------------- *)

let search_cmd =
  let objective_arg =
    Arg.(
      value & opt string "decide-time"
      & info [ "objective" ] ~docv:"OBJ"
          ~doc:"What to maximise: decide-time (mean steps to completion, \
                stalls dominate) or buffer-peak (worst link send-buffer \
                depth; forces --link).")
  in
  let iters_arg =
    Arg.(
      value & opt int 40
      & info [ "iters" ] ~docv:"N" ~doc:"Hill-climb iterations.")
  in
  let eval_seeds_arg =
    Arg.(
      value & opt int 2
      & info [ "eval-seeds" ] ~docv:"K"
          ~doc:"Runs per candidate schedule evaluation.")
  in
  let protocol_arg =
    Arg.(
      value & opt string "abc"
      & info [ "protocol" ] ~docv:"P" ~doc:"Protocol to attack (abba, abc).")
  in
  let payloads_arg =
    Arg.(
      value & opt int 2
      & info [ "payloads" ] ~docv:"K"
          ~doc:"Atomic-broadcast payloads per abc run.")
  in
  let max_steps_arg =
    Arg.(
      value & opt int 60_000
      & info [ "max-steps" ] ~docv:"N" ~doc:"Per-run simulator step bound.")
  in
  let link_arg =
    Arg.(
      value & flag
      & info [ "link" ] ~doc:"Evaluate over the reliable link layer.")
  in
  let out_dir_arg =
    Arg.(
      value & opt (some string) None
      & info [ "out-dir" ] ~docv:"DIR"
          ~doc:"Archive the worst schedules as replayable \
                worst_<objective>_<rank>.json fixtures in DIR.")
  in
  let top_arg =
    Arg.(
      value & opt int 3
      & info [ "top" ] ~docv:"M"
          ~doc:"How many worst schedules to archive (default 3).")
  in
  let quiet_arg =
    Arg.(value & flag & info [ "quiet" ] ~doc:"No progress on stderr.")
  in
  let run n t seed objective iters eval_seeds protocol payloads max_steps link
      out_dir top quiet =
    let objective =
      match Schedule_search.objective_of_label objective with
      | Some o -> o
      | None ->
        Printf.eprintf "search: unknown objective %S\n" objective;
        exit 2
    in
    let protocol =
      match Campaign.protocol_of_string protocol with
      | Some p -> p
      | None ->
        Printf.eprintf "search: unknown protocol %S\n" protocol;
        exit 2
    in
    let params =
      {
        Schedule_search.default_params with
        Schedule_search.search_seed = seed;
        iters;
        eval_seeds;
        n;
        t;
        protocol;
        payloads;
        link;
        max_steps;
      }
    in
    let outcome =
      Schedule_search.search
        ~progress:(fun (k, budget, score) ->
          if not quiet then
            Printf.eprintf "\r[search] eval %d/%d  score %.0f    %!" k budget
              score)
        ~params ~objective ()
    in
    if not quiet then Printf.eprintf "\n%!";
    let best = outcome.Schedule_search.o_best in
    Printf.printf
      "search(%s): %d evaluations, best score %.0f (%d/%d decided, %d safety \
       violations)\n"
      (Schedule_search.objective_label objective)
      outcome.Schedule_search.o_evaluations best.Schedule_search.e_score
      best.Schedule_search.e_decided best.Schedule_search.e_runs
      best.Schedule_search.e_safety;
    let g = best.Schedule_search.e_genome in
    Printf.printf
      "  genome: drop %.3f  delay %.2f  dup %.3f  reorder %.3f  partition \
       [%.0f, +%.0f) frac %.2f\n"
      g.Schedule_search.g_drop g.Schedule_search.g_delay
      g.Schedule_search.g_dup g.Schedule_search.g_reorder
      g.Schedule_search.g_part_start g.Schedule_search.g_part_len
      g.Schedule_search.g_part_frac;
    (match out_dir with
    | None -> ()
    | Some dir ->
      let paths =
        Schedule_search.write_fixtures ~dir ~params ~objective outcome ~top
      in
      List.iter (fun p -> Printf.printf "[search] wrote %s\n" p) paths);
    (* an adversarial *schedule* must never cost safety; if the search
       found one that does, that is a protocol bug worth failing loudly *)
    let total_safety =
      List.fold_left
        (fun a e -> a + e.Schedule_search.e_safety)
        0 outcome.Schedule_search.o_archive
    in
    if total_safety > 0 then begin
      Printf.eprintf "search: %d safety violations during search\n"
        total_safety;
      exit 1
    end
  in
  Cmd.v
    (Cmd.info "search"
       ~doc:
         "Adversarial schedule search: hill-climb over chaos genomes \
          (drop/delay/duplication/reordering rates plus a healing \
          partition window), maximising steps-to-decide or link buffer \
          peaks.  Deterministic in --seed.  With --out-dir, archives the \
          worst schedules as replayable sintra-schedule/1 fixtures; exits \
          non-zero if any evaluated schedule cost safety.")
    Term.(
      const run $ n_arg $ t_arg $ seed_arg $ objective_arg $ iters_arg
      $ eval_seeds_arg $ protocol_arg $ payloads_arg $ max_steps_arg
      $ link_arg $ out_dir_arg $ top_arg $ quiet_arg)

(* ---------- bench-num: modular-arithmetic micro-benchmarks ----------- *)

let bench_num_cmd =
  let out_arg =
    Arg.(
      value & opt string "BENCH_NUM.json"
      & info [ "out" ] ~docv:"FILE" ~doc:"Where to write the bench JSON.")
  in
  let quick_arg =
    Arg.(
      value & flag
      & info [ "quick" ]
          ~doc:"Shorter timing loops (noisier numbers; for CI smoke runs).")
  in
  let run out quick = Bench_num.run ~out ~quick () in
  Cmd.v
    (Cmd.info "bench-num"
       ~doc:
         "Micro-benchmark the modular-arithmetic kernels (naive vs \
          Montgomery-window pow_mod, fixed-base exp_g, exp2) at \
          128/512/1024-bit moduli.")
    Term.(const run $ out_arg $ quick_arg)

(* ---------- perf-diff: compare two bench JSON files ------------------ *)

let perf_diff_cmd =
  let a_arg =
    Arg.(
      required & pos 0 (some string) None
      & info [] ~docv:"BEFORE" ~doc:"Baseline BENCH_<id>.json.")
  in
  let b_arg =
    Arg.(
      required & pos 1 (some string) None
      & info [] ~docv:"AFTER" ~doc:"Comparison BENCH_<id>.json.")
  in
  let read_json path =
    let ic = open_in_bin path in
    let s = really_input_string ic (in_channel_length ic) in
    close_in ic;
    match Obs_json.of_string s with
    | Ok doc -> doc
    | Error e ->
      Printf.eprintf "perf-diff: %s: parse error: %s\n" path e;
      exit 1
  in
  let fields = function Obs_json.Obj kvs -> kvs | _ -> [] in
  (* Key a metrics counter by name plus rendered labels, so per-layer
     entries with the same name stay distinct. *)
  let counter_entries doc =
    Option.bind (Obs_json.member "metrics" doc) (Obs_json.member "counters")
    |> fun o ->
    Option.bind o Obs_json.to_list |> Option.value ~default:[]
    |> List.filter_map (fun c ->
           match
             ( Option.bind (Obs_json.member "name" c) Obs_json.to_str,
               Option.bind (Obs_json.member "value" c) Obs_json.to_int )
           with
           | Some name, Some v ->
             let labels =
               match Obs_json.member "labels" c with
               | Some (Obs_json.Obj kvs) ->
                 "{"
                 ^ String.concat ","
                     (List.map
                        (fun (k, v) ->
                          k ^ "="
                          ^ Option.value (Obs_json.to_str v) ~default:"?")
                        kvs)
                 ^ "}"
               | Some _ | None -> ""
             in
             Some (name ^ labels, v)
           | _ -> None)
  in
  let crypto_entries doc =
    match Obs_json.member "crypto_ops" doc with
    | Some (Obs_json.Obj kvs) ->
      List.filter_map
        (fun (k, v) -> Option.map (fun i -> (k, i)) (Obs_json.to_int v))
        kvs
    | Some _ | None -> []
  in
  let diff_section title xs ys =
    let keys =
      List.sort_uniq compare (List.map fst xs @ List.map fst ys)
    in
    let changed = ref 0 and same = ref 0 in
    Printf.printf "%s:\n" title;
    List.iter
      (fun k ->
        let a = Option.value (List.assoc_opt k xs) ~default:0 in
        let b = Option.value (List.assoc_opt k ys) ~default:0 in
        if a <> b then begin
          incr changed;
          let pct =
            if a = 0 then ""
            else
              Printf.sprintf " (%+.1f%%)"
                (100.0 *. float_of_int (b - a) /. float_of_int a)
          in
          Printf.printf "  %-40s %10d -> %10d  %+d%s\n" k a b (b - a) pct
        end
        else incr same)
      keys;
    if !changed = 0 then Printf.printf "  (no differences)\n";
    if !same > 0 then Printf.printf "  (%d unchanged entries omitted)\n" !same
  in
  let run a_path b_path =
    let a = read_json a_path and b = read_json b_path in
    Printf.printf "perf-diff %s -> %s\n" a_path b_path;
    (match
       ( List.assoc_opt "wall_time_s" (fields a),
         List.assoc_opt "wall_time_s" (fields b) )
     with
    | Some wa, Some wb ->
      (match (Obs_json.to_float wa, Obs_json.to_float wb) with
      | Some wa, Some wb when wa > 0.0 ->
        Printf.printf "wall_time_s: %.3f -> %.3f (%+.1f%%)\n" wa wb
          (100.0 *. (wb -. wa) /. wa)
      | Some wa, Some wb -> Printf.printf "wall_time_s: %.3f -> %.3f\n" wa wb
      | _ -> ())
    | _ -> ());
    diff_section "crypto_ops" (crypto_entries a) (crypto_entries b);
    diff_section "counters" (counter_entries a) (counter_entries b)
  in
  Cmd.v
    (Cmd.info "perf-diff"
       ~doc:
         "Diff two sintra-bench/1 JSON files: wall time, per-kind crypto \
          operation counts and per-layer metric counters.")
    Term.(const run $ a_arg $ b_arg)

(* ---------- coin: flip the distributed coin -------------------------- *)

let coin_cmd =
  let flips_arg =
    Arg.(value & opt int 8 & info [ "flips" ] ~docv:"K" ~doc:"Number of coins.")
  in
  let run n t example flips =
    let s = structure_of ~n ~t example in
    let kr = Keyring.deal ~rsa_bits:192 ~seed:7 s in
    let coin = kr.Keyring.coin in
    Printf.printf
      "threshold coin over %d servers; each value needs a qualified set of shares\n"
      (AS.n s);
    for k = 0 to flips - 1 do
      let name = Printf.sprintf "cli-coin-%d" k in
      let shares =
        List.init (AS.n s) (fun i -> (i, Coin.generate_share coin ~party:i ~name))
      in
      (* combine from the first qualified prefix *)
      let rec try_prefix avail used = function
        | [] -> None
        | (i, sh) :: rest ->
          let avail = Pset.add i avail in
          let used = (i, sh) :: used in
          (match Coin.combine coin ~name ~avail used () with
          | Some v -> Some (v, Pset.card avail)
          | None -> try_prefix avail used rest)
      in
      match try_prefix Pset.empty [] shares with
      | Some (v, k') -> Printf.printf "  %-14s = %d  (combined from %d shares)\n" name v k'
      | None -> Printf.printf "  %-14s : could not combine\n" name
    done
  in
  Cmd.v (Cmd.info "coin" ~doc:"Flip the unpredictable threshold coin.")
    Term.(const run $ n_arg $ t_arg $ example_arg $ flips_arg)

(* ---------- notary: register documents ------------------------------- *)

let notary_cmd =
  let docs_arg =
    Arg.(
      value
      & opt string "first document,second document"
      & info [ "documents" ] ~docv:"DOCS" ~doc:"Comma-separated documents.")
  in
  let run n t seed docs =
    let s = AS.threshold ~n ~t in
    let kr = Keyring.deal ~rsa_bits:192 ~seed:13 s in
    let sim = Sim.create ~n ~seed () in
    let _nodes =
      Service.deploy ~sim ~keyring:kr ~mode:Service.Confidential
        ~make_app:Notary.make_app ()
    in
    let client = Service.Client.create ~sim ~keyring:kr ~slot:n ~seed:3 () in
    List.iter
      (fun doc ->
        let result = ref None in
        Service.Client.request client ~mode:Service.Confidential
          (Notary.register_request ~document:doc) (fun rc ->
            result := Some rc);
        Sim.run sim ~until:(fun () -> !result <> None);
        match !result with
        | Some rc ->
          (match Notary.parse_registration rc.Service.rc_response with
          | Some (seq, digest) ->
            Printf.printf "registered %-28S seq=%d digest=%s...\n" doc seq
              (String.sub (Sha256.to_hex digest) 0 12)
          | None -> Printf.printf "registration of %S failed\n" doc)
        | None -> Printf.printf "request for %S did not complete\n" doc)
      (String.split_on_char ',' docs)
  in
  Cmd.v
    (Cmd.info "notary"
       ~doc:"Register documents with the confidential notary service.")
    Term.(const run $ n_arg $ t_arg $ seed_arg $ docs_arg)

(* ---------- ca: issue and look up certificates ----------------------- *)

let ca_cmd =
  let id_arg =
    Arg.(
      value & opt string "alice@example.com"
      & info [ "id" ] ~docv:"ID" ~doc:"Identity to certify.")
  in
  let pubkey_arg =
    Arg.(
      value & opt string "ed25519:AAAA"
      & info [ "pubkey" ] ~docv:"KEY" ~doc:"Public key to bind.")
  in
  let byzantine_arg =
    Arg.(
      value & flag
      & info [ "byzantine" ]
          ~doc:"Make one server forge denials for every request.")
  in
  let run n t seed id pubkey byzantine =
    let s = AS.threshold ~n ~t in
    let kr = Keyring.deal ~rsa_bits:192 ~seed:17 s in
    let sim = Sim.create ~n ~seed () in
    let _nodes =
      Service.deploy ~sim ~keyring:kr ~mode:Service.Plain ~make_app:Ca.make_app ()
    in
    if byzantine then begin
      let evil = n - 1 in
      Printf.printf "server %d forges denials for every request\n" evil;
      Sim.set_handler sim evil (fun ~src:_ (frame : Service.msg Link.frame) ->
          match frame with
          | Link.Raw (Service.Request { client; body })
          | Link.Data { payload = Service.Request { client; body }; _ } ->
            let req_digest = Sha256.digest body in
            let response = Codec.encode [ "denied"; "forged" ] in
            let share =
              Keyring.service_sign_share kr ~party:evil
                (Service.response_statement ~req_digest ~response)
            in
            Sim.send sim ~src:evil ~dst:client
              (Link.Raw
                 (Service.Response
                    (Codec.encode_svc_reply ~fast:false ~req_digest
                       ~server:evil ~response
                       ~share:(Keyring.sig_share_to_bytes kr share))))
          | Link.Raw _ | Link.Data _ | Link.Ack _ -> ())
    end;
    let client = Service.Client.create ~sim ~keyring:kr ~slot:n ~seed:3 () in
    let call body =
      let result = ref None in
      Service.Client.request client ~mode:Service.Plain body (fun rc ->
          result := Some rc);
      Sim.run sim ~until:(fun () -> !result <> None);
      (Option.get !result).Service.rc_response
    in
    let response =
      call (Ca.issue_request ~id ~pubkey ~credentials:"cli!ok")
    in
    (match Ca.parse_certificate response with
    | Some (id', pk, serial) ->
      Printf.printf "certificate issued: id=%s pubkey=%s serial=%d\n" id' pk
        serial;
      Printf.printf
        "(threshold-signed under the CA's single public key; verify with the\n\
        \ service signature attached to the response)\n"
    | None -> print_endline "request denied");
    let lookup = call (Ca.lookup_request ~id) in
    match Ca.parse_certificate lookup with
    | Some (_, pk, serial) ->
      Printf.printf "lookup confirms: pubkey=%s serial=%d\n" pk serial
    | None -> print_endline "lookup found nothing"
  in
  Cmd.v
    (Cmd.info "ca" ~doc:"Issue a certificate from the replicated CA.")
    Term.(const run $ n_arg $ t_arg $ seed_arg $ id_arg $ pubkey_arg $ byzantine_arg)

(* ---------- main ------------------------------------------------------ *)

let () =
  let doc = "Distributing trust on the Internet: SINTRA reproduction tools" in
  let info = Cmd.info "sintra" ~version:"1.0" ~doc in
  exit
    (Cmd.eval
       (Cmd.group info
          [ structure_cmd; abc_cmd; trace_cmd; bench_check_cmd; bench_num_cmd;
            perf_diff_cmd; faults_cmd; record_cmd; recover_cmd; refresh_cmd;
            svc_cmd;
            compare_cmd;
            search_cmd;
            coin_cmd; notary_cmd; ca_cmd ]))
