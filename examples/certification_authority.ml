(* A distributed certification authority (paper, Section 5.1).

   Seven servers jointly run a CA whose RSA signing key exists only as
   threshold shares (t = 2): a client obtains a certificate signed under
   the CA's single public key although one server is actively malicious —
   it answers every request with a forged denial — and a second one is
   crashed half-way through.

     dune exec examples/certification_authority.exe *)

let step = ref 0

let banner fmt =
  incr step;
  Printf.printf "\n[%d] " !step;
  Printf.printf fmt

let () =
  print_endline "== distributed certification authority ==";
  let structure = Adversary_structure.threshold ~n:7 ~t:2 in
  let keyring = Keyring.deal ~rsa_bits:256 ~seed:11 structure in
  let sim = Sim.create ~policy:Sim.Random_order ~n:7 ~seed:3 () in
  let deployment =
    Service.deploy ~sim ~keyring ~mode:Service.Plain ~make_app:Ca.make_app ()
  in
  ignore (Service.nodes deployment);

  banner "server 6 turns malicious: it forges denials for every request\n";
  Sim.set_handler sim 6 (fun ~src:_ (frame : Service.msg Link.frame) ->
      match frame with
      | Link.Raw (Service.Request { client; body })
      | Link.Data { payload = Service.Request { client; body }; _ } ->
        let req_digest = Sha256.digest body in
        let response = Codec.encode [ "denied"; "no such user" ] in
        let share =
          Keyring.service_sign_share keyring ~party:6
            (Service.response_statement ~req_digest ~response)
        in
        Sim.send sim ~src:6 ~dst:client
          (Link.Raw
             (Service.Response
                (Codec.encode_svc_reply ~fast:false ~req_digest ~server:6
                   ~response
                   ~share:(Keyring.sig_share_to_bytes keyring share))))
      | Link.Raw _ | Link.Data _ | Link.Ack _ -> ());

  let client = Service.Client.create ~sim ~keyring ~slot:7 ~seed:99 () in
  let issue id pubkey =
    banner "client requests a certificate for %S\n" id;
    let result = ref None in
    Service.Client.request client ~mode:Service.Plain
      (Ca.issue_request ~id ~pubkey ~credentials:"notarized-papers!ok")
      (fun rc -> result := Some rc);
    Sim.run sim ~until:(fun () -> !result <> None);
    match !result with
    | None -> failwith "request did not complete"
    | Some rc ->
      let response = rc.Service.rc_response in
      (match Ca.parse_certificate response with
      | Some (id', pk, serial) ->
        Printf.printf
          "    certificate issued: id=%s pubkey=%s serial=%d\n\
          \    (threshold-signed under the CA's single public key;\n\
          \     the forged denial from server 6 was outvoted)\n"
          id' pk serial
      | None ->
        (match Codec.decode response with
        | Some ("denied" :: reason) ->
          Printf.printf "    denied: %s\n" (String.concat " " reason)
        | Some _ | None -> print_endline "    unparseable response"))
  in
  issue "alice@example.com" "ed25519:AAAA1111";
  banner "server 1 crashes\n";
  Sim.crash sim 1;
  issue "bob@example.com" "ed25519:BBBB2222";

  banner "client looks up alice's certificate\n";
  let result = ref None in
  Service.Client.request client ~mode:Service.Plain
    (Ca.lookup_request ~id:"alice@example.com") (fun rc -> result := Some rc);
  Sim.run sim ~until:(fun () -> !result <> None);
  (match !result with
  | Some rc ->
    (match Ca.parse_certificate rc.Service.rc_response with
    | Some (id, pk, serial) ->
      Printf.printf "    lookup: id=%s pubkey=%s serial=%d\n" id pk serial
    | None -> print_endline "    lookup failed")
  | None -> failwith "lookup did not complete");

  let m = Sim.metrics sim in
  Printf.printf
    "\ndone: 3 requests served with 1 Byzantine + 1 crashed of 7 servers (%d msgs)\n"
    m.Metrics.messages_sent
