(* Fair exchange through the replicated trusted party (paper, Section 5:
   the MAFTIA deliverable's "trusted party for fair exchange").

   Alice sells a digitally signed deed, Bob pays with a digital bearer
   note.  Neither trusts the other, and neither trusts any single server;
   they agree on digests of the two items, open an exchange at the
   replicated service, and deposit.  Items travel TDH2-encrypted (secure
   causal broadcast), so no server — not even a corrupted one — sees an
   item before its deposit is ordered; the service releases the
   counterparts only when both deposits match the agreed descriptions.

     dune exec examples/fair_exchange_demo.exe *)

let () =
  print_endline "== fair exchange via the replicated trusted party ==";
  let structure = Adversary_structure.threshold ~n:4 ~t:1 in
  let keyring = Keyring.deal ~rsa_bits:192 ~seed:23 structure in
  let sim = Sim.create ~n:4 ~seed:31 () in
  let _nodes =
    Service.deploy ~sim ~keyring ~mode:Service.Confidential
      ~make_app:Fair_exchange.make_app ()
  in
  let alice = Service.Client.create ~sim ~keyring ~slot:4 ~seed:1 () in
  let bob = Service.Client.create ~sim ~keyring ~slot:5 ~seed:2 () in
  let call client label body =
    let result = ref None in
    Service.Client.request client ~mode:Service.Confidential body (fun rc ->
        result := Some rc);
    Sim.run sim ~until:(fun () -> !result <> None);
    match !result with
    | None -> failwith (label ^ ": no answer")
    | Some rc -> rc.Service.rc_response
  in

  let deed = "deed: one castle on the Rhine, signed Alice" in
  let note = "bearer note: 1000 gulden, signed Bob's bank" in
  Printf.printf "agreed descriptions:\n  deed digest %s...\n  note digest %s...\n"
    (String.sub (Fair_exchange.item_digest deed) 0 16)
    (String.sub (Fair_exchange.item_digest note) 0 16);

  let _ =
    call alice "open"
      (Fair_exchange.open_request ~xid:"castle-sale"
         ~expect_left:(Fair_exchange.item_digest deed)
         ~expect_right:(Fair_exchange.item_digest note))
  in
  print_endline "exchange opened";

  (* Bob tries to cheat first: a counterfeit note is refused by digest. *)
  let r =
    call bob "cheat"
      (Fair_exchange.deposit_request ~xid:"castle-sale"
         ~side:Fair_exchange.Right ~item:"bearer note: 10 gulden")
  in
  (match Codec.decode r with
  | Some ("denied" :: reason) ->
    Printf.printf "bob's counterfeit note rejected: %s\n" (String.concat " " reason)
  | _ -> failwith "counterfeit accepted?!");

  let _ =
    call alice "deposit deed"
      (Fair_exchange.deposit_request ~xid:"castle-sale"
         ~side:Fair_exchange.Left ~item:deed)
  in
  print_endline "alice deposited the deed (sealed until ordered)";

  (* Alice cannot run off with anything yet. *)
  let r =
    call bob "early collect"
      (Fair_exchange.collect_request ~xid:"castle-sale" ~side:Fair_exchange.Right)
  in
  (match Fair_exchange.parse_item r with
  | None -> print_endline "bob's early collection attempt denied"
  | Some _ -> failwith "premature release!");

  let _ =
    call bob "deposit note"
      (Fair_exchange.deposit_request ~xid:"castle-sale"
         ~side:Fair_exchange.Right ~item:note)
  in
  print_endline "bob deposited the genuine note";

  let ra =
    call alice "collect"
      (Fair_exchange.collect_request ~xid:"castle-sale" ~side:Fair_exchange.Left)
  in
  let rb =
    call bob "collect"
      (Fair_exchange.collect_request ~xid:"castle-sale" ~side:Fair_exchange.Right)
  in
  (match (Fair_exchange.parse_item ra, Fair_exchange.parse_item rb) with
  | Some (_, got_a), Some (_, got_b) ->
    Printf.printf "alice received: %S\nbob received:   %S\n" got_a got_b;
    if got_a <> note || got_b <> deed then exit 1
  | _ -> failwith "collection failed");
  print_endline "exchange complete: both sides hold the counterpart, atomically."
