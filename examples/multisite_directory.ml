(* The multi-national deployment of the paper's Example 2 (Section 4.3).

   Sixteen directory servers for a multi-national company run at four
   sites (New York, Tokyo, Zurich, Haifa), four operating systems each.
   With the generalized adversary structure, the service survives the
   simultaneous loss of ALL servers at one site plus ALL servers of one
   operating system — 7 of 16 servers — which no threshold configuration
   on 16 servers can tolerate (n > 3t forces t <= 5).

     dune exec examples/multisite_directory.exe *)

module AS = Adversary_structure

let sites = [| "new-york"; "tokyo"; "zurich"; "haifa" |]
let oses = [| "aix"; "windows-nt"; "linux"; "solaris" |]

let () =
  print_endline "== multi-site directory over the Example 2 structure ==";
  let structure = Canonical_structures.example2 () in
  Printf.printf "structure: 16 servers (site x OS grid), Q3 condition: %b\n"
    (AS.satisfies_q3 structure);
  Printf.printf "sharing formula compatible with the trust assumption: %b\n"
    (AS.check_sharing_compatible structure);
  Printf.printf
    "largest uniform threshold on 16 servers with Q3: t = 5 (q3 at t=5: %b, at t=6: %b)\n"
    (AS.satisfies_q3 (AS.threshold ~n:16 ~t:5))
    (AS.satisfies_q3 (AS.threshold ~n:16 ~t:6));

  let keyring = Keyring.deal ~seed:1234 structure in
  let sim = Sim.create ~policy:Sim.Random_order ~n:16 ~seed:9 () in
  let deployment =
    Service.deploy ~sim ~keyring ~mode:Service.Plain
      ~read_only:Directory_service.read_only
      ~make_app:Directory_service.make_app ()
  in
  ignore (Service.nodes deployment);

  (* The disaster: Tokyo goes dark AND a Linux worm takes out every
     Linux box — 7 servers lost at once. *)
  let dead = Canonical_structures.example2_site_plus_os ~row:1 ~col:2 in
  Printf.printf "\ncorrupting all of %s plus every %s box: servers %s (%d of 16)\n"
    sites.(1) oses.(2) (Pset.to_string dead) (Pset.card dead);
  Printf.printf "this corruption set is inside the adversary structure: %b\n"
    (AS.is_corruptible structure dead);
  Printf.printf "a t=5 threshold structure would tolerate it: %b\n"
    (AS.is_corruptible (AS.threshold ~n:16 ~t:5) dead);
  Pset.iter (Sim.crash sim) dead;

  (* The directory still works, with threshold-signed answers. *)
  let client = Service.Client.create ~sim ~keyring ~slot:16 ~seed:77 () in
  let call label body =
    let result = ref None in
    Service.Client.request client ~mode:Service.Plain body (fun rc ->
        result := Some rc);
    Sim.run sim ~until:(fun () -> !result <> None);
    match !result with
    | None -> failwith (label ^ ": no answer")
    | Some rc -> rc.Service.rc_response
  in
  let _ =
    call "bind"
      (Directory_service.bind_request ~key:"ldap.example.com" ~value:"198.51.100.17")
  in
  print_endline "bound ldap.example.com -> 198.51.100.17";
  let r =
    call "lookup" (Directory_service.lookup_request ~key:"ldap.example.com")
  in
  (match Directory_service.parse_value r with
  | Some (k, v) ->
    Printf.printf "signed lookup answer from the surviving 9 servers: %s = %s\n" k v
  | None -> failwith "lookup failed");

  let m = Sim.metrics sim in
  Printf.printf
    "\nservice stayed live and safe with 7/16 servers corrupted (%d msgs, %d dropped at dead servers)\n"
    m.Metrics.messages_sent m.Metrics.drops;
  print_endline
    "a pure-threshold deployment of the same 16 servers tolerates at most 5."
