(* The notary service and the front-running attack (paper, Section 5.2).

   A patent office assigns sequence numbers to filings; earlier numbers
   win.  A corrupted server wants to read pending filings and register a
   competitor's copy first.  With *secure causal* atomic broadcast the
   filing travels as a TDH2 ciphertext and is decrypted only after its
   position in the order is fixed, so the spy sees nothing useful; the
   example also shows the contrast run with plain atomic broadcast where
   the plaintext is visible to the spy before ordering.

     dune exec examples/notary_frontrun.exe *)

let contains ~needle haystack =
  let n = String.length haystack and m = String.length needle in
  let rec go i = i + m <= n && (String.sub haystack i m = needle || go (i + 1)) in
  go 0

(* Run one filing through the notary and report what server 3 (the spy)
   could observe before the first decryption. *)
let run ~mode ~seed ~document =
  let structure = Adversary_structure.threshold ~n:4 ~t:1 in
  let keyring = Keyring.deal ~rsa_bits:192 ~seed:21 structure in
  let sim = Sim.create ~policy:Sim.Random_order ~n:4 ~seed () in
  let nodes =
    Service.nodes
      (Service.deploy ~sim ~keyring ~mode ~make_app:Notary.make_app ())
  in
  let observed = ref false in
  Sim.wrap_handler sim 3 (fun honest ~src frame ->
      let pre_ordering =
        match (mode, nodes.(3).Service.engine) with
        | Service.Confidential, Some (Service.Scabc_e sc) ->
          Scabc.delivered_count sc = 0
        | (Service.Plain | Service.Confidential), _ ->
          nodes.(3).Service.executed = 0
      in
      (if pre_ordering then
         match frame with
         | Link.Raw m | Link.Data { payload = m; _ } -> (
           match m with
           | Service.Request { body; _ } when contains ~needle:document body
             ->
             observed := true
           | Service.Engine (Service.Abc_m (Abc.Request p))
             when contains ~needle:document p ->
             observed := true
           | Service.Request _ | Service.Query _ | Service.Engine _
           | Service.Response _ ->
             ())
         | Link.Ack _ -> ());
      honest ~src frame);
  let client = Service.Client.create ~sim ~keyring ~slot:4 ~seed:5 () in
  let result = ref None in
  Service.Client.request client ~mode (Notary.register_request ~document)
    (fun rc -> result := Some rc);
  Sim.run sim ~until:(fun () -> !result <> None);
  match !result with
  | None -> failwith "filing did not complete"
  | Some rc ->
    (match Notary.parse_registration rc.Service.rc_response with
    | Some (seq, digest) -> (seq, String.sub (Sha256.to_hex digest) 0 16, !observed)
    | None -> failwith "registration failed")

let () =
  print_endline "== distributed notary: sealed filings vs. a spying server ==";
  let document = "claim: cold fusion at room temperature" in

  print_endline "\n-- run 1: secure causal atomic broadcast (TDH2-sealed) --";
  let seq, digest, leaked = run ~mode:Service.Confidential ~seed:31 ~document in
  Printf.printf "filing registered: seq=%d digest=%s...\n" seq digest;
  Printf.printf "spy saw the claim text before ordering: %b\n" leaked;
  if leaked then exit 1;

  print_endline "\n-- run 2 (control): plain atomic broadcast --";
  let seq2, _, leaked2 = run ~mode:Service.Plain ~seed:32 ~document in
  Printf.printf "filing registered: seq=%d\n" seq2;
  Printf.printf "spy saw the claim text before ordering: %b\n" leaked2;
  print_endline
    "\nwith plain broadcast a corrupted server reads pending filings and\n\
     could front-run them; secure causal broadcast (atomic broadcast +\n\
     CCA-secure threshold encryption) closes exactly this channel."
