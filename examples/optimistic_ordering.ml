(* The optimistic protocol of Section 6 in action: a sequencer fast path
   orders payloads at a fraction of the cost of full agreement; when the
   sequencer is killed mid-stream, the replicas complain, agree on the
   exact cut-over point, and finish the job with the randomized protocol
   — the already-delivered prefix is preserved everywhere.

     dune exec examples/optimistic_ordering.exe *)

let () =
  print_endline "== optimistic atomic broadcast: fast path + safe fallback ==";
  let structure = Adversary_structure.threshold ~n:4 ~t:1 in
  let keyring = Keyring.deal ~rsa_bits:192 ~seed:5 structure in
  let sim =
    Sim.create ~size:(Link.frame_size (Optimistic_abc.msg_size keyring)) ~n:4 ~seed:17 ()
  in
  let logs = Array.make 4 [] in
  let nodes =
    Stack.deploy ~sim ~keyring
      ~make:(fun me io ->
        Optimistic_abc.create ~io ~tag:"demo" ~sequencer:0
          ~set_timer:(fun ~delay cb -> Sim.set_timer sim me ~delay cb)
          ~timeout:4000.0
          ~deliver:(fun p -> logs.(me) <- p :: logs.(me))
          ())
      ~handle:Optimistic_abc.handle ()
  in

  print_endline "\n-- phase 1: sequencer (server 0) healthy --";
  Optimistic_abc.broadcast nodes.(1) "order #1: 10 widgets";
  Optimistic_abc.broadcast nodes.(2) "order #2: 3 gadgets";
  Optimistic_abc.broadcast nodes.(3) "order #3: 1 gizmo";
  Sim.run sim
    ~until:(fun () -> Array.for_all (fun l -> List.length l >= 3) logs);
  let m = Sim.metrics sim in
  Printf.printf "3 payloads ordered on the fast path: %d messages, %d kB\n"
    m.Metrics.messages_sent (m.Metrics.bytes_sent / 1024);
  Array.iteri
    (fun i node ->
      Printf.printf "  server %d: mode=%s, fast deliveries=%d\n" i
        (match Optimistic_abc.mode node with
        | Optimistic_abc.Fast -> "fast"
        | Optimistic_abc.Switching -> "switching"
        | Optimistic_abc.Fallback -> "fallback")
        (Optimistic_abc.fast_delivered_count node))
    nodes;

  print_endline "\n-- phase 2: the sequencer crashes --";
  Sim.crash sim 0;
  Optimistic_abc.broadcast nodes.(1) "order #4: emergency restock";
  Optimistic_abc.broadcast nodes.(2) "order #5: cancel gizmo";
  let honest = [ 1; 2; 3 ] in
  Sim.run sim
    ~until:(fun () ->
      List.for_all (fun i -> List.length logs.(i) >= 5) honest);
  Sim.run sim;
  Printf.printf "complaints -> agreed cut-over -> randomized fallback\n";
  List.iter
    (fun i ->
      Printf.printf "  server %d (mode=%s) delivered:\n" i
        (match Optimistic_abc.mode nodes.(i) with
        | Optimistic_abc.Fast -> "fast"
        | Optimistic_abc.Switching -> "switching"
        | Optimistic_abc.Fallback -> "fallback");
      List.iteri (fun k p -> Printf.printf "    %d. %s\n" k p) (List.rev logs.(i)))
    honest;
  let reference = List.rev logs.(1) in
  let agree = List.for_all (fun i -> List.rev logs.(i) = reference) honest in
  Printf.printf "orders identical on all surviving servers: %b\n" agree;
  if not agree then exit 1
