(* Quickstart: replicate a tiny trusted service over four servers.

   Sets up the trusted dealer, deploys the full protocol stack on the
   simulated asynchronous network, atomically broadcasts a few payloads
   submitted concurrently at different servers, and shows that every
   server delivers them in the same total order — even though the
   network delivers messages in an adversarially random order.

     dune exec examples/quickstart.exe *)

let () =
  print_endline "== sintra quickstart: atomic broadcast over 4 servers ==";
  (* 1. The trusted dealer: n = 4 servers, tolerating t = 1 Byzantine. *)
  let structure = Adversary_structure.threshold ~n:4 ~t:1 in
  let keyring = Keyring.deal ~rsa_bits:192 ~seed:42 structure in
  Printf.printf "dealer: n=4 t=1, group of %d bits, RSA threshold signatures\n"
    (Bignum.numbits keyring.Keyring.group.Schnorr_group.p);

  (* 2. An asynchronous network whose scheduler delivers in random
     order ("the network is the adversary"). *)
  let sim = Sim.create ~policy:Sim.Random_order ~n:4 ~seed:7 () in

  (* 3. One atomic-broadcast node per server. *)
  let logs = Array.make 4 [] in
  let nodes =
    Stack.deploy_abc ~sim ~keyring ~tag:"quickstart"
      ~deliver:(fun me payload -> logs.(me) <- payload :: logs.(me)) ()
  in

  (* 4. Concurrent submissions at different servers. *)
  Abc.broadcast nodes.(0) "transfer 10 CHF from alice to bob";
  Abc.broadcast nodes.(2) "transfer 5 CHF from bob to carol";
  Abc.broadcast nodes.(3) "freeze account mallory";
  Abc.broadcast nodes.(1) "transfer 7 CHF from carol to alice";

  (* 5. Run the network to quiescence and inspect the delivery order. *)
  Sim.run sim
    ~until:(fun () -> Array.for_all (fun l -> List.length l >= 4) logs);
  let m = Sim.metrics sim in
  Printf.printf "network: %d messages, %d delivered\n"
    m.Metrics.messages_sent m.Metrics.deliveries;
  Array.iteri
    (fun i log ->
      Printf.printf "server %d delivered:\n" i;
      List.iteri (fun k p -> Printf.printf "  %d. %s\n" k p) (List.rev log))
    logs;
  let reference = List.rev logs.(0) in
  let agree = Array.for_all (fun l -> List.rev l = reference) logs in
  Printf.printf "total order identical on all servers: %b\n" agree;
  if not agree then exit 1
