(* Asynchronous binary Byzantine agreement with a cryptographic common
   coin, after Cachin, Kursawe and Shoup (PODC 2000) — the protocol the
   paper builds its whole stack on.  Randomization circumvents the FLP
   impossibility result; expected constant number of rounds.

   Structure per round r >= 1 (all statements are bound to the instance
   tag and the round):

     pre-vote(r, b)   justified by
        r = 1 : a support certificate: a two-cover set endorsed b in the
                initial SUPPORT phase (this is what enforces validity —
                if every honest party proposes b, the other value can
                never gather a support certificate);
        r > 1 : the (unique) pre-certificate of round r-1 for b, or an
                abstain-certificate of round r-1 together with b being
                the round-(r-1) coin value.

     main-vote(r, v), v in {0, 1, abstain}, justified by
        v = b       : a pre-certificate for b in round r (a big-quorum
                      of pre-vote endorsements);
        v = abstain : two validly justified pre-votes of round r for
                      different values.

     After main-voting, each party releases its share of coin r.

     On a big-quorum of main-votes: all for b -> decide b and broadcast
     a self-contained DECIDE certificate; otherwise pre-vote in round
     r+1 for the value of any main-vote seen (carrying its embedded
     pre-certificate) or, if all abstained, for the coin value.

   Why the coin wins: certificates for both values in one round would
   need two big-quorums whose honest members pre-voted differently, so
   honest pre-voters split into corruptible H_0 and H_1 — together with
   the corrupted set these would be three corruptible sets covering all
   parties, contradicting Q^3.  Hence at most one value is certifiable
   per round, it is fixed before the coin is revealed, and with
   probability >= 1/2 the coin agrees with it, after which every honest
   party decides in the next round. *)

module AS = Adversary_structure

type mainv = Value of bool | Abstain

type support_cert = (int * Keyring.cert_share) list

type prevote_just =
  | J_support of support_cert
  | J_pre_cert of Keyring.cert
  | J_coin of Keyring.cert

type prevote = {
  pv_round : int;
  pv_vote : bool;
  pv_just : prevote_just;
  pv_share : Keyring.cert_share;
}

type signed_prevote = { sp_src : int; sp_pv : prevote }

type mainvote_just =
  | J_quorum of Keyring.cert
  | J_conflict of signed_prevote * signed_prevote

type mainvote = {
  mv_round : int;
  mv_value : mainv;
  mv_just : mainvote_just;
  mv_share : Keyring.cert_share;
}

type msg =
  | Support of bool * Keyring.cert_share
  | Prevote of prevote
  | Mainvote of mainvote
  | Coin_share of int * Coin.share list
  | Decide of int * bool * Keyring.cert

type round_state = {
  mutable prevotes : (int * prevote) list;  (* validated, one per source *)
  mutable mains : (int * mainvote) list;
  mutable coin_shares : (int * Coin.share list) list;
  mutable coin : int option;
  mutable sent_prevote : bool;
  mutable sent_main : bool;
  mutable sent_coin : bool;
}

type t = {
  io : msg Proto_io.t;
  tag : string;
  on_decide : bool -> unit;
  mutable input : bool option;
  mutable my_supports : bool list;  (* values I have SUPPORTed *)
  mutable sup_shares : (bool * int * Keyring.cert_share) list;
  mutable round : int;
  rounds : (int, round_state) Hashtbl.t;
  mutable decided : bool option;
  mutable deferred : (int * msg) list;  (* waiting for a coin value *)
  mutable sp_round : int;  (* open trace span of the current round *)
}

(* ---------- statements -------------------------------------------- *)

let sup_stmt t b = Ro.encode [ "abba-sup"; t.tag; string_of_bool b ]

let pre_stmt t r b =
  Ro.encode [ "abba-pre"; t.tag; string_of_int r; string_of_bool b ]

let main_stmt t r v =
  let vs = match v with Value b -> string_of_bool b | Abstain -> "abstain" in
  Ro.encode [ "abba-main"; t.tag; string_of_int r; vs ]

let coin_name t r = Ro.encode [ "abba-coin"; t.tag; string_of_int r ]

(* ---------- creation ----------------------------------------------- *)

let round_state t r =
  match Hashtbl.find_opt t.rounds r with
  | Some rs -> rs
  | None ->
    let rs =
      { prevotes = [];
        mains = [];
        coin_shares = [];
        coin = None;
        sent_prevote = false;
        sent_main = false;
        sent_coin = false }
    in
    Hashtbl.add t.rounds r rs;
    rs

let create ~(io : msg Proto_io.t) ~tag ~on_decide =
  { io;
    tag;
    on_decide;
    input = None;
    my_supports = [];
    sup_shares = [];
    round = 1;
    rounds = Hashtbl.create 4;
    decided = None;
    deferred = [];
    sp_round = 0 }

let obs t = t.io.Proto_io.obs

let decision t = t.decided

(* Round in which this party currently works; after a decision, the
   round the decision was reached in (used by the expected-constant-
   rounds experiment R1). *)
let current_round t = t.round

(* ---------- validation --------------------------------------------- *)

let supporters t b =
  List.fold_left
    (fun acc (v, p, _) -> if v = b then Pset.add p acc else acc)
    Pset.empty t.sup_shares

let support_cert_ok t b (sc : support_cert) : bool =
  let kr = t.io.Proto_io.keyring in
  let sc = List.sort_uniq (fun (a, _) (b, _) -> compare a b) sc in
  let endorsers =
    List.fold_left (fun acc (p, _) -> Pset.add p acc) Pset.empty sc
  in
  AS.two_cover (Proto_io.structure t.io) endorsers
  && List.for_all
       (fun (p, share) -> Keyring.verify_cert_share kr ~party:p (sup_stmt t b) share)
       sc

(* [`Defer] means the justification refers to a coin value this party
   does not know yet; the message is retried once the coin is learned. *)
let rec prevote_ok t ~src (pv : prevote) : [ `Valid | `Invalid | `Defer ] =
  let kr = t.io.Proto_io.keyring in
  if
    not
      (Keyring.verify_cert_share kr ~party:src
         (pre_stmt t pv.pv_round pv.pv_vote) pv.pv_share)
  then `Invalid
  else
    match pv.pv_just with
    | J_support sc ->
      if pv.pv_round = 1 && support_cert_ok t pv.pv_vote sc then `Valid
      else `Invalid
    | J_pre_cert c ->
      if
        pv.pv_round >= 2
        && Keyring.verify_cert kr (pre_stmt t (pv.pv_round - 1) pv.pv_vote) c
      then `Valid
      else `Invalid
    | J_coin c ->
      if
        pv.pv_round >= 2
        && Keyring.verify_cert kr (main_stmt t (pv.pv_round - 1) Abstain) c
      then begin
        match (round_state t (pv.pv_round - 1)).coin with
        | None -> `Defer
        | Some coin -> if pv.pv_vote = (coin = 1) then `Valid else `Invalid
      end
      else `Invalid

and mainvote_ok t ~src (mv : mainvote) : [ `Valid | `Invalid | `Defer ] =
  let kr = t.io.Proto_io.keyring in
  if
    not
      (Keyring.verify_cert_share kr ~party:src
         (main_stmt t mv.mv_round mv.mv_value) mv.mv_share)
  then `Invalid
  else
    match (mv.mv_value, mv.mv_just) with
    | Value b, J_quorum c ->
      if Keyring.verify_cert kr (pre_stmt t mv.mv_round b) c then `Valid
      else `Invalid
    | Abstain, J_conflict (s1, s2) ->
      if
        s1.sp_pv.pv_round = mv.mv_round
        && s2.sp_pv.pv_round = mv.mv_round
        && s1.sp_pv.pv_vote <> s2.sp_pv.pv_vote
      then begin
        match (prevote_ok t ~src:s1.sp_src s1.sp_pv,
               prevote_ok t ~src:s2.sp_src s2.sp_pv)
        with
        | `Valid, `Valid -> `Valid
        | `Defer, (`Valid | `Defer) | `Valid, `Defer -> `Defer
        | `Invalid, _ | _, `Invalid -> `Invalid
      end
      else `Invalid
    | Value _, J_conflict _ | Abstain, J_quorum _ -> `Invalid

(* ---------- helpers ------------------------------------------------ *)

let endorsers l = List.fold_left (fun acc (p, _) -> Pset.add p acc) Pset.empty l

let pre_shares_for rs b =
  List.filter_map
    (fun (p, pv) -> if pv.pv_vote = b then Some (p, pv.pv_share) else None)
    rs.prevotes

let main_shares_for rs v =
  List.filter_map
    (fun (p, mv) -> if mv.mv_value = v then Some (p, mv.mv_share) else None)
    rs.mains

let broadcast_support t b =
  if not (List.mem b t.my_supports) then begin
    t.my_supports <- b :: t.my_supports;
    let share =
      Keyring.cert_share t.io.Proto_io.keyring ~party:t.io.Proto_io.me
        (sup_stmt t b)
    in
    t.io.Proto_io.broadcast (Support (b, share))
  end

let established t b =
  AS.two_cover (Proto_io.structure t.io) (supporters t b)

let my_support_cert t b : support_cert =
  List.filter_map
    (fun (v, p, s) -> if v = b then Some (p, s) else None)
    t.sup_shares

let send_prevote t r b just =
  let rs = round_state t r in
  if not rs.sent_prevote then begin
    rs.sent_prevote <- true;
    (* One span per round, pre-vote to pre-vote: closing the previous
       round's span here makes round latencies directly readable. *)
    Obs.span_end (obs t) t.sp_round;
    t.sp_round <-
      Obs.span_begin (obs t) ~party:t.io.Proto_io.me ~tag:t.tag ~layer:"abba"
        ~detail:(Printf.sprintf "r%d vote=%b" r b)
        "round";
    let share =
      Keyring.cert_share t.io.Proto_io.keyring ~party:t.io.Proto_io.me
        (pre_stmt t r b)
    in
    t.io.Proto_io.broadcast
      (Prevote { pv_round = r; pv_vote = b; pv_just = just; pv_share = share })
  end

let send_main t r v just =
  let rs = round_state t r in
  if not rs.sent_main then begin
    rs.sent_main <- true;
    let share =
      Keyring.cert_share t.io.Proto_io.keyring ~party:t.io.Proto_io.me
        (main_stmt t r v)
    in
    t.io.Proto_io.broadcast
      (Mainvote { mv_round = r; mv_value = v; mv_just = just; mv_share = share });
    (* Release this round's coin share now: CKS00 reveals the coin only
       after the certifiable value of the round is already fixed. *)
    if not rs.sent_coin then begin
      rs.sent_coin <- true;
      let shares =
        Coin.generate_share t.io.Proto_io.keyring.Keyring.coin
          ~party:t.io.Proto_io.me ~name:(coin_name t r)
      in
      t.io.Proto_io.broadcast (Coin_share (r, shares))
    end
  end

let finish t b =
  if t.decided = None then begin
    t.decided <- Some b;
    Obs.span_end (obs t) t.sp_round;
    t.sp_round <- 0;
    Obs.point (obs t) ~party:t.io.Proto_io.me ~tag:t.tag ~layer:"abba"
      ~detail:(string_of_bool b) "decide";
    t.on_decide b
  end

(* ---------- progress ------------------------------------------------ *)

let rec step t =
  if t.decided = None then begin
    let r = t.round in
    let rs = round_state t r in
    (* Round 1 pre-vote: wait until some value is established by the
       SUPPORT phase, preferring our own input. *)
    if r = 1 && not rs.sent_prevote then begin
      let candidates =
        (match t.input with Some b -> [ b; not b ] | None -> [])
      in
      match List.find_opt (established t) candidates with
      | Some b -> send_prevote t 1 b (J_support (my_support_cert t b))
      | None -> ()
    end;
    (* Main vote: a big-quorum pre-certificate for one value, or a
       conflict between two validly justified pre-votes. *)
    if rs.sent_prevote && not rs.sent_main then begin
      let kr = t.io.Proto_io.keyring in
      let try_value b =
        let shares = pre_shares_for rs b in
        if Proto_io.big_quorum t.io (endorsers shares) then
          Keyring.make_cert kr (pre_stmt t r b) shares
        else None
      in
      match try_value true with
      | Some c -> send_main t r (Value true) (J_quorum c)
      | None ->
        (match try_value false with
        | Some c -> send_main t r (Value false) (J_quorum c)
        | None ->
          let find b = List.find_opt (fun (_, pv) -> pv.pv_vote = b) rs.prevotes in
          (match (find true, find false) with
          | Some (p1, v1), Some (p2, v2) ->
            send_main t r Abstain
              (J_conflict
                 ({ sp_src = p1; sp_pv = v1 }, { sp_src = p2; sp_pv = v2 }))
          | _, None | None, _ -> ()))
    end;
    (* Decision / round advance on a big-quorum of main votes. *)
    if rs.sent_main then begin
      let kr = t.io.Proto_io.keyring in
      let all = endorsers (List.map (fun (p, mv) -> (p, mv.mv_share)) rs.mains) in
      let decide_value b =
        let shares = main_shares_for rs (Value b) in
        if Proto_io.big_quorum t.io (endorsers shares) then
          Keyring.make_cert kr (main_stmt t r (Value b)) shares
        else None
      in
      match decide_value true with
      | Some c ->
        t.io.Proto_io.broadcast (Decide (r, true, c));
        finish t true
      | None ->
        (match decide_value false with
        | Some c ->
          t.io.Proto_io.broadcast (Decide (r, false, c));
          finish t false
        | None ->
          if Proto_io.big_quorum t.io all then begin
            (* No decision: advance with a seen value or with the coin. *)
            let valued =
              List.find_opt
                (fun (_, mv) -> match mv.mv_value with Value _ -> true | Abstain -> false)
                rs.mains
            in
            match valued with
            | Some (_, mv) ->
              (match (mv.mv_value, mv.mv_just) with
              | Value b, J_quorum c ->
                t.round <- r + 1;
                send_prevote t (r + 1) b (J_pre_cert c);
                step t
              | (Value _ | Abstain), _ -> assert false)
            | None ->
              (* All abstain: need the coin. *)
              (match rs.coin with
              | None -> ()
              | Some coin ->
                let shares = main_shares_for rs Abstain in
                (match Keyring.make_cert kr (main_stmt t r Abstain) shares with
                | None -> assert false  (* all mains abstained, quorum holds *)
                | Some c ->
                  t.round <- r + 1;
                  send_prevote t (r + 1) (coin = 1) (J_coin c);
                  step t))
          end)
    end
  end

(* ---------- coin ----------------------------------------------------- *)

let rec try_combine_coin t r =
  let rs = round_state t r in
  if rs.coin = None then begin
    let avail =
      List.fold_left (fun acc (p, _) -> Pset.add p acc) Pset.empty rs.coin_shares
    in
    match
      Coin.combine t.io.Proto_io.keyring.Keyring.coin ~name:(coin_name t r)
        ~avail rs.coin_shares ()
    with
    | None -> ()
    | Some v ->
      rs.coin <- Some v;
      (* Retry deferred messages that were waiting for this coin. *)
      let waiting = t.deferred in
      t.deferred <- [];
      List.iter (fun (src, m) -> handle t ~src m) waiting
  end

(* ---------- message handling --------------------------------------- *)

and handle t ~src msg =
  if t.decided = None then begin
    match msg with
    | Support (b, share) ->
      if
        (not (List.exists (fun (v, p, _) -> v = b && p = src) t.sup_shares))
        && Keyring.verify_cert_share t.io.Proto_io.keyring ~party:src
             (sup_stmt t b) share
      then begin
        t.sup_shares <- (b, src, share) :: t.sup_shares;
        (* Amplify: once a set surely containing an honest party supports
           b, adopt it too (the MMR-style dissemination step). *)
        if AS.contains_honest (Proto_io.structure t.io) (supporters t b) then
          broadcast_support t b;
        step t
      end
    | Prevote pv ->
      let rs = round_state t pv.pv_round in
      if not (List.mem_assoc src rs.prevotes) then begin
        match prevote_ok t ~src pv with
        | `Valid ->
          rs.prevotes <- (src, pv) :: rs.prevotes;
          step t
        | `Defer -> t.deferred <- (src, msg) :: t.deferred
        | `Invalid -> ()
      end
    | Mainvote mv ->
      let rs = round_state t mv.mv_round in
      if not (List.mem_assoc src rs.mains) then begin
        match mainvote_ok t ~src mv with
        | `Valid ->
          rs.mains <- (src, mv) :: rs.mains;
          step t
        | `Defer -> t.deferred <- (src, msg) :: t.deferred
        | `Invalid -> ()
      end
    | Coin_share (r, shares) ->
      let rs = round_state t r in
      if
        (not (List.mem_assoc src rs.coin_shares))
        (* Lazy policy: accept on shape alone; [Coin.combine] verifies
           the proofs in one batch and prunes attributed-bad parties. *)
        && (if Crypto_policy.is_lazy () then
              Coin.check_shape t.io.Proto_io.keyring.Keyring.coin ~party:src
                shares
            else
              Coin.verify_share t.io.Proto_io.keyring.Keyring.coin ~party:src
                ~name:(coin_name t r) shares)
      then begin
        rs.coin_shares <- (src, shares) :: rs.coin_shares;
        try_combine_coin t r;
        step t
      end
    | Decide (r, b, cert) ->
      if
        Keyring.verify_cert t.io.Proto_io.keyring (main_stmt t r (Value b))
          cert
      then begin
        (* Transferable: re-broadcast once so that every honest party
           terminates even if it lags several rounds behind. *)
        t.io.Proto_io.broadcast (Decide (r, b, cert));
        finish t b
      end
  end

let propose t b =
  if t.input = None then begin
    t.input <- Some b;
    broadcast_support t b;
    step t
  end

(* Approximate wire sizes (bytes) for the message-complexity benches. *)
let msg_size kr m =
  let share_size = 72 in
  let cert_size = function
    | c -> Keyring.cert_size kr c
  in
  let just_size = function
    | J_support sc -> List.length sc * share_size
    | J_pre_cert c | J_coin c -> cert_size c
  in
  match m with
  | Support _ -> 16 + share_size
  | Prevote pv -> 24 + share_size + just_size pv.pv_just
  | Mainvote mv ->
    24 + share_size
    + (match mv.mv_just with
      | J_quorum c -> cert_size c
      | J_conflict (a, b) ->
        (2 * (24 + share_size))
        + just_size a.sp_pv.pv_just
        + just_size b.sp_pv.pv_just)
  | Coin_share (_, shares) -> 16 + (List.length shares * 150)
  | Decide (_, _, c) -> 24 + cert_size c

(* Short rendering for simulator traces. *)
let msg_summary = function
  | Support (b, _) -> Printf.sprintf "abba.SUPPORT(%b)" b
  | Prevote pv -> Printf.sprintf "abba.PREVOTE(r%d,%b)" pv.pv_round pv.pv_vote
  | Mainvote mv ->
    Printf.sprintf "abba.MAINVOTE(r%d,%s)" mv.mv_round
      (match mv.mv_value with Value b -> string_of_bool b | Abstain -> "abstain")
  | Coin_share (r, _) -> Printf.sprintf "abba.COIN(r%d)" r
  | Decide (r, b, _) -> Printf.sprintf "abba.DECIDE(r%d,%b)" r b

(* Release per-round voting state.  Called when an enclosing protocol
   retires the whole instance (e.g. checkpoint GC of an old ABC round):
   any reference still alive afterwards holds only the terminal result,
   not the vote/justification tables that dominate its footprint. *)
let retire t =
  Hashtbl.reset t.rounds;
  t.sup_shares <- [];
  t.deferred <- [];
  t.my_supports <- []
