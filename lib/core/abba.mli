(** Asynchronous binary Byzantine agreement with a cryptographic common
    coin (Cachin–Kursawe–Shoup, PODC 2000) — the randomized primitive the
    whole architecture builds on; expected constant number of rounds.

    Properties for any corruption set in the structure and any message
    schedule: agreement (all honest decide the same bit), validity (the
    decision was proposed by an honest party — enforced by the SUPPORT
    phase: a value no honest party proposed can never gather a two-cover
    support certificate), and termination with probability one (the coin
    matches the unique certifiable value with probability ≥ 1/2 per
    round; two certifiable values would split the honest parties into
    three corruptible sets covering everything, contradicting Q{^3}). *)

type mainv = Value of bool | Abstain

type support_cert = (int * Keyring.cert_share) list

type prevote_just =
  | J_support of support_cert  (** round 1 *)
  | J_pre_cert of Keyring.cert  (** round r−1 pre-certificate for b *)
  | J_coin of Keyring.cert  (** round r−1 abstain-certificate, b = coin *)

type prevote = {
  pv_round : int;
  pv_vote : bool;
  pv_just : prevote_just;
  pv_share : Keyring.cert_share;
}

type signed_prevote = { sp_src : int; sp_pv : prevote }

type mainvote_just =
  | J_quorum of Keyring.cert
  | J_conflict of signed_prevote * signed_prevote

type mainvote = {
  mv_round : int;
  mv_value : mainv;
  mv_just : mainvote_just;
  mv_share : Keyring.cert_share;
}

type msg =
  | Support of bool * Keyring.cert_share
  | Prevote of prevote
  | Mainvote of mainvote
  | Coin_share of int * Coin.share list
  | Decide of int * bool * Keyring.cert
      (** self-contained, transferable decision certificate *)

type t

val create : io:msg Proto_io.t -> tag:string -> on_decide:(bool -> unit) -> t
(** Instances are passive until {!propose}; messages arriving earlier are
    processed and buffered, so instances may be created on first
    receipt. *)

val propose : t -> bool -> unit
val handle : t -> src:int -> msg -> unit
val decision : t -> bool option

val current_round : t -> int
(** After a decision: the round it was reached in (experiment R1). *)

val msg_size : Keyring.t -> msg -> int

val msg_summary : msg -> string
(** Short rendering for simulator traces. *)

val retire : t -> unit
(** Release the per-round voting state (round tables, support shares,
    deferred messages); the terminal {!decision} survives.  For
    enclosing protocols that garbage-collect finished instances. *)
