(* Atomic broadcast: total ordering of payloads via one multi-valued
   validated agreement per global round, following the round structure of
   Chandra-Toueg adapted to the Byzantine model (paper, Section 3).

   Round r at every party:
   1. sign the oldest not-yet-delivered payload you know (or an empty
      placeholder) under a statement binding the instance, the round and
      the payload, and send it to everyone;
   2. collect a big-quorum of validly signed round-r proposals and
      propose the encoded list to VBA_r, whose external-validity
      predicate re-checks exactly that: a list of properly signed
      round-r proposals from a big-quorum of distinct senders (so the
      agreement can only land on lists acceptable to honest parties, and
      at least a structurally honest portion of each decided list comes
      from honest senders);
   3. deliver the payloads of the decided list in a deterministic order,
      skipping placeholders and duplicates; then enter round r+1.

   Fairness: payloads are relayed to all servers on submission, and every
   honest party proposes the *globally smallest* (by digest) undelivered
   payload it knows.  Once a payload is known to the honest parties, it
   appears in every honest proposal, hence in at least one member of any
   valid decided list, and is delivered within the next round.

   Batching and pipelining (the throughput layer): per-payload cost is
   dominated by the per-round threshold-crypto agreement, so a {!policy}
   amortizes it two ways.  With [max_batch_msgs > 1] each proposal
   carries a {!Codec.encode_batch} frame of up to that many undelivered
   payloads (oldest first in digest order, capped at [max_batch_bytes]),
   and external validity additionally requires every non-placeholder
   entry of a decided list to be a well-formed frame within the caps —
   the policy is deployment-wide, so all honest parties agree on the
   framing and a malformed Byzantine frame is rejected whole, never
   mis-split.  With [window > 1] a party opens up to [window] rounds at
   once, packing *disjoint* batches (a payload sits in at most one
   in-flight proposal), so dissemination and signing for round r+1 run
   under round r's agreement; rounds still decide and deliver strictly
   in order, and a full window back-pressures (no new round is opened)
   instead of growing unbounded in-flight state.  Fairness is preserved
   inside a batch: payloads are packed oldest-undelivered-first, and the
   globally smallest undelivered payload still heads every honest
   proposal of the earliest unproposed round. *)

type policy = {
  max_batch_msgs : int;  (* payloads per proposal frame; 1 = no framing *)
  max_batch_bytes : int;  (* cap on summed payload bytes per frame *)
  window : int;  (* rounds a party may have in flight at once *)
  linger : float;
      (* sim-clock ticks to wait for a fuller batch before proposing;
         needs the io timer hook, ignored without one *)
}

let default_policy =
  { max_batch_msgs = 1; max_batch_bytes = 1 lsl 20; window = 1; linger = 0.0 }

let check_policy p =
  if p.max_batch_msgs < 1 then invalid_arg "Abc.create: max_batch_msgs < 1";
  if p.max_batch_bytes < 1 then invalid_arg "Abc.create: max_batch_bytes < 1";
  if p.window < 1 then invalid_arg "Abc.create: window < 1";
  if not (p.linger >= 0.0) then invalid_arg "Abc.create: negative linger"

type msg =
  | Request of string  (* payload relay ("send to all servers") *)
  | Proposal of int * string * string  (* round, payload, signature bytes *)
  | Vba_msg of int * Vba.msg

type t = {
  io : msg Proto_io.t;
  tag : string;
  policy : policy;
  deliver : string -> unit;  (* called in the agreed total order *)
  mutable queue : string list;  (* undelivered known payloads, digest-sorted *)
  delivered : (string, unit) Hashtbl.t;  (* digests of delivered payloads *)
  mutable delivered_log : string list;  (* newest first, for inspection *)
  mutable digest_log : string list;
      (* digests of the whole delivered history, newest first.  Unlike
         [delivered_log] this is never truncated: 32 bytes per payload
         buy permanent dedup and the digest history that checkpoint
         snapshots carry (the PBFT-style substitution for keeping full
         payloads forever). *)
  mutable base_len : int;  (* deliveries certified away by checkpoints *)
  mutable log_len : int;  (* length of [delivered_log] (kept O(1)) *)
  mutable log_peak : int;  (* high-water of [log_len], for GC evidence *)
  mutable retired : int;  (* rounds of protocol state retired so far *)
  mutable on_boundary : (int -> unit) option;
      (* called with the new round number each time a round completes;
         the recovery layer snapshots at interval boundaries here *)
  mutable round : int;
  mutable participated : int list;  (* rounds where our proposal is out *)
  my_batches : (int, string list) Hashtbl.t;
      (* in-flight round -> payloads we packed into its proposal *)
  mutable linger_fired : bool;  (* linger elapsed: flush partial batches *)
  mutable linger_armed : bool;
  proposals : (int, (int * string) list ref) Hashtbl.t;
      (* round -> (sender, payload); only validly signed entries *)
  raw_sigs : (int, (int * string) list ref) Hashtbl.t;
      (* round -> (sender, signature bytes), aligned with [proposals] *)
  vbas : (int, Vba.t) Hashtbl.t;
  mutable vba_proposed : int list;
  decisions : (int, string) Hashtbl.t;  (* round -> decided list, encoded *)
  digests : (string, string) Hashtbl.t;  (* payload -> digest, memoized *)
  mutable sp_epoch : int;  (* open trace span of the current round *)
}

let placeholder = ""

let prop_stmt t r payload =
  Ro.encode [ "abc-prop"; t.tag; string_of_int r; payload ]

(* Digests drive the queue order, dedup and batch bookkeeping, so they
   are recomputed on hot paths; memoize per payload. *)
let digest t p =
  match Hashtbl.find_opt t.digests p with
  | Some d -> d
  | None ->
    let d = Sha256.digest p in
    Hashtbl.add t.digests p d;
    d

(* ---------- batch frames ------------------------------------------- *)

let batching t = t.policy.max_batch_msgs > 1
let batch_bytes ps = List.fold_left (fun a p -> a + String.length p) 0 ps

(* A proposal's frame is acceptable iff an honest party under the same
   (deployment-wide) policy could have produced it.  A single payload
   larger than [max_batch_bytes] still travels alone — otherwise it
   could never be ordered — hence the singleton escape. *)
let valid_frame t (frame : string) : bool =
  match Codec.decode_batch frame with
  | None -> false
  | Some ps ->
    ps <> []
    && List.length ps <= t.policy.max_batch_msgs
    && List.for_all (fun p -> p <> placeholder) ps
    && (batch_bytes ps <= t.policy.max_batch_bytes || List.length ps = 1)

(* The payloads a (validated) proposal contributes to ordering. *)
let payloads_of_proposal t (p : string) : string list =
  if p = placeholder then []
  else if batching t then
    match Codec.decode_batch p with
    | Some ps -> List.filter (fun x -> x <> placeholder) ps
    | None -> []
  else [ p ]

(* Queue payloads not packed into any in-flight proposal of ours,
   oldest (smallest digest) first. *)
let unproposed t : string list =
  let in_flight =
    Hashtbl.fold
      (fun _ ps acc -> List.fold_left (fun acc p -> digest t p :: acc) acc ps)
      t.my_batches []
  in
  List.filter
    (fun p -> p <> placeholder && not (List.mem (digest t p) in_flight))
    t.queue

(* Greedy oldest-first packing under both caps. *)
let take_batch t avail : string list * string list =
  let rec go k bytes acc rest =
    match rest with
    | [] -> (List.rev acc, [])
    | p :: tl ->
      if k >= t.policy.max_batch_msgs then (List.rev acc, rest)
      else
        let lp = String.length p in
        if acc <> [] && bytes + lp > t.policy.max_batch_bytes then
          (List.rev acc, rest)
        else go (k + 1) (bytes + lp) (p :: acc) tl
  in
  go 0 0 [] avail

let in_flight t =
  List.length (List.filter (fun r -> r >= t.round) t.participated)

let in_flight_rounds t : (int * int) list =
  List.filter (fun r -> r >= t.round) t.participated
  |> List.sort compare
  |> List.map (fun r ->
         let props =
           match Hashtbl.find_opt t.proposals r with
           | Some l -> List.length !l
           | None -> 0
         in
         (r, props))

(* ---------- proposal-list encoding --------------------------------- *)

(* A proposal list is the VBA value: flattened triples
   (sender, payload, signature). *)
let encode_list (entries : (int * string * string) list) : string =
  Codec.encode
    (List.concat_map
       (fun (sender, payload, sg) -> [ string_of_int sender; payload; sg ])
       entries)

let decode_list (s : string) : (int * string * string) list option =
  match Codec.decode s with
  | None -> None
  | Some parts ->
    let rec go acc = function
      | [] -> Some (List.rev acc)
      | sender :: payload :: sg :: rest ->
        (match int_of_string_opt sender with
        | Some sender -> go ((sender, payload, sg) :: acc) rest
        | None -> None)
      | _ :: _ -> None
    in
    go [] parts

(* External validity for round r: a big-quorum of distinct senders, each
   with a valid signature on its own (round-bound) payload; under a
   batching policy every payload must additionally be a well-formed
   batch frame within the policy caps. *)
let valid_list t r (value : string) : bool =
  match decode_list value with
  | None -> false
  | Some entries ->
    List.for_all
      (fun (sender, _, _) -> sender >= 0 && sender < Proto_io.n t.io)
      entries
    &&
    let senders =
      List.fold_left (fun acc (s, _, _) -> Pset.add s acc) Pset.empty entries
    in
    List.length entries = Pset.card senders  (* distinct senders *)
    && Proto_io.big_quorum t.io senders
    && ((not (batching t))
       || List.for_all
            (fun (_, p, _) -> p = placeholder || valid_frame t p)
            entries)
    && List.for_all
         (fun (sender, payload, sg) ->
           match Schnorr_sig.of_bytes t.io.Proto_io.keyring.Keyring.group sg with
           | None -> false
           | Some sg ->
             Keyring.verify_party_signature t.io.Proto_io.keyring ~party:sender
               (prop_stmt t r payload) sg)
         entries

(* ---------- construction ------------------------------------------- *)

let rec create ?(policy = default_policy) ~(io : msg Proto_io.t) ~tag ~deliver
    () : t =
  check_policy policy;
  (* Linger needs a clock; without a timer hook it degrades to eager
     proposing rather than deferring forever. *)
  let policy =
    match io.Proto_io.timer with
    | None -> { policy with linger = 0.0 }
    | Some _ -> policy
  in
  let t =
    { io;
      tag;
      policy;
      deliver;
      queue = [];
      delivered = Hashtbl.create 32;
      delivered_log = [];
      digest_log = [];
      base_len = 0;
      log_len = 0;
      log_peak = 0;
      retired = 0;
      on_boundary = None;
      round = 0;
      participated = [];
      my_batches = Hashtbl.create 8;
      linger_fired = false;
      linger_armed = false;
      proposals = Hashtbl.create 8;
      raw_sigs = Hashtbl.create 8;
      vbas = Hashtbl.create 8;
      vba_proposed = [];
      decisions = Hashtbl.create 8;
      digests = Hashtbl.create 64;
      sp_epoch = 0 }
  in
  t

and proposals_of t r =
  match Hashtbl.find_opt t.proposals r with
  | Some l -> l
  | None ->
    let l = ref [] in
    Hashtbl.add t.proposals r l;
    l

and sigs_of t r =
  match Hashtbl.find_opt t.raw_sigs r with
  | Some l -> l
  | None ->
    let l = ref [] in
    Hashtbl.add t.raw_sigs r l;
    l

and vba_of t r : Vba.t =
  match Hashtbl.find_opt t.vbas r with
  | Some v -> v
  | None ->
    let v =
      Vba.create
        ~io:
          (Proto_io.embed ~layer:"vba"
             ~bytes:(Vba.msg_size t.io.Proto_io.keyring) t.io
             ~wrap:(fun m -> Vba_msg (r, m)))
        ~tag:(t.tag ^ "/r" ^ string_of_int r)
        ~validate:(fun value -> valid_list t r value)
        ~on_decide:(fun ~winner:_ value -> on_decision t r value)
        ()
    in
    Hashtbl.add t.vbas r v;
    v

and on_decision t r value =
  if not (Hashtbl.mem t.decisions r) then begin
    Hashtbl.replace t.decisions r value;
    step t
  end

(* ---------- round progression -------------------------------------- *)

and participate t r payload =
  if not (List.mem r t.participated) then begin
    t.participated <- r :: t.participated;
    if t.sp_epoch = 0 then
      t.sp_epoch <-
        Obs.span_begin t.io.Proto_io.obs ~party:t.io.Proto_io.me ~tag:t.tag
          ~layer:"abc"
          ~detail:(Printf.sprintf "r%d" r)
          "epoch";
    let sg =
      Schnorr_sig.to_bytes t.io.Proto_io.keyring.Keyring.group
        (Keyring.sign t.io.Proto_io.keyring ~party:t.io.Proto_io.me
           (prop_stmt t r payload))
    in
    t.io.Proto_io.broadcast (Proposal (r, payload, sg))
  end

(* Defer proposing a partial batch until [linger] sim-clock ticks have
   passed, in the hope of packing a fuller one; the timer re-enters
   [step], which then flushes whatever is available. *)
and arm_linger t =
  if t.policy.linger > 0.0 && (not t.linger_armed) && not t.linger_fired then
    match t.io.Proto_io.timer with
    | None -> ()  (* normalized away in [create] *)
    | Some set_timer ->
      t.linger_armed <- true;
      set_timer ~delay:t.policy.linger (fun () ->
          t.linger_armed <- false;
          t.linger_fired <- true;
          step t)

(* Open rounds [t.round .. t.round + window - 1] in order, packing
   disjoint batches of undelivered payloads — the pipelining half: round
   r+1's dissemination and signing start while round r's agreement is
   still running.  A round is opened when someone else demonstrably
   started it (we must join with at least a placeholder for liveness) or
   when we have a batch worth proposing; a full window opens nothing
   more — that is the back-pressure bound on in-flight state. *)
and open_rounds t =
  let limit = t.round + t.policy.window in
  let opened_payloads = ref false in
  let rec go r avail =
    if r < limit then begin
      if List.mem r t.participated then go (r + 1) avail
      else begin
        let others_active =
          match Hashtbl.find_opt t.proposals r with
          | Some l -> !l <> []
          | None -> false
        in
        let batch_ready =
          avail <> []
          && (t.policy.linger <= 0.0 || t.linger_fired
             || List.length avail >= t.policy.max_batch_msgs
             || batch_bytes avail >= t.policy.max_batch_bytes)
        in
        if others_active || batch_ready then begin
          let batch, rest = take_batch t avail in
          let payload =
            match batch with
            | [] -> placeholder
            | [ p ] when not (batching t) -> p
            | ps -> Codec.encode_batch ps
          in
          if batch <> [] then begin
            Hashtbl.replace t.my_batches r batch;
            opened_payloads := true
          end;
          participate t r payload;
          if Obs.active t.io.Proto_io.obs then begin
            let labels = [ ("layer", "abc") ] in
            Obs.observe t.io.Proto_io.obs ~labels "abc_batch_size"
              (float_of_int (List.length batch));
            Obs.observe t.io.Proto_io.obs ~labels "abc_pipeline_depth"
              (float_of_int (in_flight t))
          end;
          go (r + 1) rest
        end
        else if avail <> [] then arm_linger t
        (* not opening r: later rounds stay closed too (contiguity) *)
      end
    end
  in
  go t.round (unproposed t);
  if !opened_payloads then t.linger_fired <- false

(* Feed each in-flight round's VBA once a big-quorum of signed proposals
   for it is collected. *)
and feed_vbas t =
  let limit = t.round + t.policy.window in
  let rec go r =
    if r < limit then begin
      if List.mem r t.participated && not (List.mem r t.vba_proposed) then begin
        let props = !(proposals_of t r) in
        let senders =
          List.fold_left (fun acc (s, _) -> Pset.add s acc) Pset.empty props
        in
        if Proto_io.big_quorum t.io senders then begin
          t.vba_proposed <- r :: t.vba_proposed;
          let sigs = !(sigs_of t r) in
          let entries =
            List.map (fun (s, p) -> (s, p, List.assoc s sigs)) props
          in
          Vba.propose (vba_of t r) (encode_list entries)
        end
      end;
      go (r + 1)
    end
  in
  go t.round

and step t =
  open_rounds t;
  feed_vbas t;
  (* Consume the decision of the current round, in order: later rounds
     may already have decided, but delivery stays strictly sequential. *)
  let r = t.round in
  match Hashtbl.find_opt t.decisions r with
  | None -> ()
  | Some value ->
    (match decode_list value with
    | None -> assert false  (* external validity guarantees decodability *)
    | Some entries ->
      let payloads =
        List.concat_map (fun (_, p, _) -> payloads_of_proposal t p) entries
        |> List.sort_uniq compare
      in
      List.iter
        (fun p ->
          let d = digest t p in
          if not (Hashtbl.mem t.delivered d) then begin
            Hashtbl.replace t.delivered d ();
            t.delivered_log <- p :: t.delivered_log;
            t.digest_log <- d :: t.digest_log;
            t.log_len <- t.log_len + 1;
            if t.log_len > t.log_peak then t.log_peak <- t.log_len;
            t.queue <- List.filter (fun q -> digest t q <> d) t.queue;
            Obs.point t.io.Proto_io.obs ~party:t.io.Proto_io.me ~tag:t.tag
              ~layer:"abc" "deliver";
            t.deliver p
          end)
        payloads;
      Obs.span_end t.io.Proto_io.obs
        ~detail:(Printf.sprintf "r%d done" r)
        t.sp_epoch;
      t.sp_epoch <- 0;
      (* Payloads we packed for round r but the decided list missed stay
         in the queue and become packable again for a later round. *)
      Hashtbl.remove t.my_batches r;
      t.round <- r + 1;
      (match t.on_boundary with
      | Some f -> f (r + 1)
      | None -> ());
      step t)

(* ---------- API ----------------------------------------------------- *)

let enqueue t payload =
  let d = digest t payload in
  if
    (not (Hashtbl.mem t.delivered d))
    && not (List.exists (fun q -> digest t q = d) t.queue)
  then begin
    (* Digest order makes "oldest undelivered" a global notion, which is
       what the fairness argument needs. *)
    t.queue <- List.sort (fun a b -> compare (digest t a) (digest t b)) (payload :: t.queue);
    step t;
    (* Back-pressure diagnostics: the payload could not be packed
       because every round of the pipeline window is already in flight. *)
    if Obs.active t.io.Proto_io.obs then begin
      let window_full =
        let rec full r =
          r >= t.round + t.policy.window
          || (List.mem r t.participated && full (r + 1))
        in
        full t.round
      in
      let packed =
        Hashtbl.fold
          (fun _ ps acc -> acc || List.exists (fun p -> digest t p = d) ps)
          t.my_batches false
      in
      if window_full && (not (Hashtbl.mem t.delivered d)) && not packed then
        Obs.incr t.io.Proto_io.obs
          ~labels:[ ("layer", "abc") ]
          "abc_backpressure"
    end
  end

(* Atomic broadcast entry point: relay to every server, then enqueue. *)
let broadcast t payload =
  t.io.Proto_io.broadcast (Request payload);
  enqueue t payload

let handle t ~src msg =
  match msg with
  | Request payload -> enqueue t payload
  | Proposal (r, payload, sg) ->
    if r >= t.round && r < t.round + 64 then begin
      (* Under a batching policy a non-placeholder proposal must be a
         well-formed frame; reject it whole otherwise (a malformed frame
         is never mis-split, and never counts toward the quorum). *)
      let frame_ok =
        payload = placeholder || (not (batching t)) || valid_frame t payload
      in
      if frame_ok then begin
        let props = proposals_of t r in
        if not (List.mem_assoc src !props) then begin
          match Schnorr_sig.of_bytes t.io.Proto_io.keyring.Keyring.group sg with
          | None -> ()
          | Some parsed ->
            if
              Keyring.verify_party_signature t.io.Proto_io.keyring ~party:src
                (prop_stmt t r payload) parsed
            then begin
              props := (src, payload) :: !props;
              let sigs = sigs_of t r in
              sigs := (src, sg) :: !sigs;
              (* A payload proposed by someone else is also worth
                 ordering. *)
              List.iter (fun p -> enqueue t p) (payloads_of_proposal t payload);
              step t
            end
        end
      end
    end
  | Vba_msg (r, m) ->
    if r >= t.round && r < t.round + 64 then begin
      Vba.handle (vba_of t r) ~src m;
      step t
    end
    else if Hashtbl.mem t.vbas r then Vba.handle (vba_of t r) ~src m

let delivered_log t = List.rev t.delivered_log
let current_round t = t.round
let pending t = t.queue
let backlog t = List.length (unproposed t)

(* ---------- checkpointing: truncation and state transfer ------------ *)

let delivered_count t = t.base_len + t.log_len
let delivered_digests t = List.rev t.digest_log
let base_len t = t.base_len
let log_len t = t.log_len
let log_peak t = t.log_peak
let retired_rounds t = t.retired
let is_delivered t payload = Hashtbl.mem t.delivered (digest t payload)

let set_boundary_hook t f = t.on_boundary <- Some f

(* Retire every per-round structure below [r].  VBA instances are
   emptied before removal so that even an aliased reference releases its
   CBC/ABBA children.  Returns the number of VBA rounds retired (the
   dominant per-round state). *)
let retire_rounds_below t r =
  let doomed tbl =
    Hashtbl.fold (fun k _ acc -> if k < r then k :: acc else acc) tbl []
  in
  let vgone = doomed t.vbas in
  List.iter
    (fun k ->
      (match Hashtbl.find_opt t.vbas k with
      | Some v -> Vba.retire v
      | None -> ());
      Hashtbl.remove t.vbas k)
    vgone;
  List.iter (Hashtbl.remove t.proposals) (doomed t.proposals);
  List.iter (Hashtbl.remove t.raw_sigs) (doomed t.raw_sigs);
  List.iter (Hashtbl.remove t.decisions) (doomed t.decisions);
  List.iter (Hashtbl.remove t.my_batches) (doomed t.my_batches);
  t.participated <- List.filter (fun x -> x >= r) t.participated;
  t.vba_proposed <- List.filter (fun x -> x >= r) t.vba_proposed;
  List.length vgone

let note_gc t gone =
  t.retired <- t.retired + gone;
  let obs = t.io.Proto_io.obs in
  if Obs.active obs then begin
    let labels = [ ("layer", "abc") ] in
    if gone > 0 then Obs.incr obs ~by:gone ~labels "round_state_retired";
    Obs_registry.set_max (Obs.gauge obs ~labels "abc_log_len")
      (float_of_int t.log_peak)
  end

let truncate t ~upto_round ~upto_len =
  if upto_len > delivered_count t then invalid_arg "Abc.truncate: future len";
  if upto_len > t.base_len then begin
    let keep = delivered_count t - upto_len in
    (* [delivered_log] is newest-first: the first [keep] entries stay,
       the remainder — the certified prefix — is dropped. *)
    let rec split i acc rest =
      if i = keep then (List.rev acc, rest)
      else
        match rest with
        | [] -> (List.rev acc, [])
        | x :: tl -> split (i + 1) (x :: acc) tl
    in
    let kept, dropped = split 0 [] t.delivered_log in
    (* The digest memo of a dropped payload is recomputed on the (rare)
       re-arrival of the payload; [delivered] keeps the digest itself,
       so dedup is unaffected. *)
    List.iter (Hashtbl.remove t.digests) dropped;
    t.delivered_log <- kept;
    t.log_len <- keep;
    t.base_len <- upto_len
  end;
  note_gc t (retire_rounds_below t upto_round)

(* Adopt a verified remote state: the certified digest history plus the
   serving peers' uncertified log suffix.  Existing local deliveries are
   merged (their digests stay in [delivered]), so a lagging-but-live
   party keeps its dedup; suffix payloads not yet delivered locally are
   replayed through the deliver callback, in order, before any newer
   decision is consumed.  The caller is responsible for certificate and
   quorum checks. *)
let install_checkpoint t ~round ~digests ~suffix =
  if round < 0 then invalid_arg "Abc.install_checkpoint";
  let fresh = List.filter (fun p -> not (is_delivered t p)) suffix in
  List.iter (fun d -> Hashtbl.replace t.delivered d ()) digests;
  let sdigs = List.map (digest t) suffix in
  List.iter (fun d -> Hashtbl.replace t.delivered d ()) sdigs;
  t.digest_log <- List.rev_append sdigs (List.rev digests);
  t.base_len <- List.length digests;
  t.delivered_log <- List.rev suffix;
  t.log_len <- List.length suffix;
  if t.log_len > t.log_peak then t.log_peak <- t.log_len;
  t.queue <- List.filter (fun q -> not (Hashtbl.mem t.delivered (digest t q))) t.queue;
  if round > t.round then t.round <- round;
  note_gc t (retire_rounds_below t t.round);
  List.iter
    (fun p ->
      Obs.point t.io.Proto_io.obs ~party:t.io.Proto_io.me ~tag:t.tag
        ~layer:"abc" "deliver";
      t.deliver p)
    fresh;
  step t

let msg_size kr = function
  | Request p -> 8 + String.length p
  | Proposal (_, p, sg) -> 16 + String.length p + String.length sg
  | Vba_msg (_, m) -> 8 + Vba.msg_size kr m

let msg_summary = function
  | Request p -> Printf.sprintf "abc.REQUEST(%d B)" (String.length p)
  | Proposal (r, p, _) -> Printf.sprintf "abc.PROPOSAL(r%d,%d B)" r (String.length p)
  | Vba_msg (r, m) -> Printf.sprintf "abc.r%d/%s" r (Vba.msg_summary m)
