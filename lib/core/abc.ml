(* Atomic broadcast: total ordering of payloads via one multi-valued
   validated agreement per global round, following the round structure of
   Chandra-Toueg adapted to the Byzantine model (paper, Section 3).

   Round r at every party:
   1. sign the oldest not-yet-delivered payload you know (or an empty
      placeholder) under a statement binding the instance, the round and
      the payload, and send it to everyone;
   2. collect a big-quorum of validly signed round-r proposals and
      propose the encoded list to VBA_r, whose external-validity
      predicate re-checks exactly that: a list of properly signed
      round-r proposals from a big-quorum of distinct senders (so the
      agreement can only land on lists acceptable to honest parties, and
      at least a structurally honest portion of each decided list comes
      from honest senders);
   3. deliver the payloads of the decided list in a deterministic order,
      skipping placeholders and duplicates; then enter round r+1.

   Fairness: payloads are relayed to all servers on submission, and every
   honest party proposes the *globally smallest* (by digest) undelivered
   payload it knows.  Once a payload is known to the honest parties, it
   appears in every honest proposal, hence in at least one member of any
   valid decided list, and is delivered within the next round. *)

type msg =
  | Request of string  (* payload relay ("send to all servers") *)
  | Proposal of int * string * string  (* round, payload, signature bytes *)
  | Vba_msg of int * Vba.msg

type t = {
  io : msg Proto_io.t;
  tag : string;
  deliver : string -> unit;  (* called in the agreed total order *)
  mutable queue : string list;  (* undelivered known payloads, digest-sorted *)
  delivered : (string, unit) Hashtbl.t;  (* digests of delivered payloads *)
  mutable delivered_log : string list;  (* newest first, for inspection *)
  mutable round : int;
  mutable participated : int list;  (* rounds where our proposal is out *)
  proposals : (int, (int * string) list ref) Hashtbl.t;
      (* round -> (sender, payload); only validly signed entries *)
  raw_sigs : (int, (int * string) list ref) Hashtbl.t;
      (* round -> (sender, signature bytes), aligned with [proposals] *)
  vbas : (int, Vba.t) Hashtbl.t;
  mutable vba_proposed : int list;
  decisions : (int, string) Hashtbl.t;  (* round -> decided list, encoded *)
  mutable sp_epoch : int;  (* open trace span of the current round *)
}

let placeholder = ""

let prop_stmt t r payload =
  Ro.encode [ "abc-prop"; t.tag; string_of_int r; payload ]

let digest p = Sha256.digest p

(* ---------- proposal-list encoding --------------------------------- *)

(* A proposal list is the VBA value: flattened triples
   (sender, payload, signature). *)
let encode_list (entries : (int * string * string) list) : string =
  Codec.encode
    (List.concat_map
       (fun (sender, payload, sg) -> [ string_of_int sender; payload; sg ])
       entries)

let decode_list (s : string) : (int * string * string) list option =
  match Codec.decode s with
  | None -> None
  | Some parts ->
    let rec go acc = function
      | [] -> Some (List.rev acc)
      | sender :: payload :: sg :: rest ->
        (match int_of_string_opt sender with
        | Some sender -> go ((sender, payload, sg) :: acc) rest
        | None -> None)
      | _ :: _ -> None
    in
    go [] parts

(* External validity for round r: a big-quorum of distinct senders, each
   with a valid signature on its own (round-bound) payload. *)
let valid_list t r (value : string) : bool =
  match decode_list value with
  | None -> false
  | Some entries ->
    List.for_all
      (fun (sender, _, _) -> sender >= 0 && sender < Proto_io.n t.io)
      entries
    &&
    let senders =
      List.fold_left (fun acc (s, _, _) -> Pset.add s acc) Pset.empty entries
    in
    List.length entries = Pset.card senders  (* distinct senders *)
    && Proto_io.big_quorum t.io senders
    && List.for_all
         (fun (sender, payload, sg) ->
           match Schnorr_sig.of_bytes t.io.Proto_io.keyring.Keyring.group sg with
           | None -> false
           | Some sg ->
             Keyring.verify_party_signature t.io.Proto_io.keyring ~party:sender
               (prop_stmt t r payload) sg)
         entries

(* ---------- construction ------------------------------------------- *)

let rec create ~(io : msg Proto_io.t) ~tag ~deliver () : t =
  let t =
    { io;
      tag;
      deliver;
      queue = [];
      delivered = Hashtbl.create 32;
      delivered_log = [];
      round = 0;
      participated = [];
      proposals = Hashtbl.create 8;
      raw_sigs = Hashtbl.create 8;
      vbas = Hashtbl.create 8;
      vba_proposed = [];
      decisions = Hashtbl.create 8;
      sp_epoch = 0 }
  in
  t

and proposals_of t r =
  match Hashtbl.find_opt t.proposals r with
  | Some l -> l
  | None ->
    let l = ref [] in
    Hashtbl.add t.proposals r l;
    l

and sigs_of t r =
  match Hashtbl.find_opt t.raw_sigs r with
  | Some l -> l
  | None ->
    let l = ref [] in
    Hashtbl.add t.raw_sigs r l;
    l

and vba_of t r : Vba.t =
  match Hashtbl.find_opt t.vbas r with
  | Some v -> v
  | None ->
    let v =
      Vba.create
        ~io:
          (Proto_io.embed ~layer:"vba"
             ~bytes:(Vba.msg_size t.io.Proto_io.keyring) t.io
             ~wrap:(fun m -> Vba_msg (r, m)))
        ~tag:(t.tag ^ "/r" ^ string_of_int r)
        ~validate:(fun value -> valid_list t r value)
        ~on_decide:(fun ~winner:_ value -> on_decision t r value)
        ()
    in
    Hashtbl.add t.vbas r v;
    v

and on_decision t r value =
  if not (Hashtbl.mem t.decisions r) then begin
    Hashtbl.replace t.decisions r value;
    step t
  end

(* ---------- round progression -------------------------------------- *)

and participate t r =
  if not (List.mem r t.participated) then begin
    t.participated <- r :: t.participated;
    if t.sp_epoch = 0 then
      t.sp_epoch <-
        Obs.span_begin t.io.Proto_io.obs ~party:t.io.Proto_io.me ~tag:t.tag
          ~layer:"abc"
          ~detail:(Printf.sprintf "r%d" r)
          "epoch";
    let payload = match t.queue with [] -> placeholder | p :: _ -> p in
    let sg =
      Schnorr_sig.to_bytes t.io.Proto_io.keyring.Keyring.group
        (Keyring.sign t.io.Proto_io.keyring ~party:t.io.Proto_io.me
           (prop_stmt t r payload))
    in
    t.io.Proto_io.broadcast (Proposal (r, payload, sg))
  end

and step t =
  let r = t.round in
  (* Join the current round as soon as we have something to order or
     somebody else demonstrably started it. *)
  let others_active =
    match Hashtbl.find_opt t.proposals r with
    | Some l -> !l <> []
    | None -> false
  in
  if t.queue <> [] || others_active then participate t r;
  (* Feed VBA once a big-quorum of signed proposals is collected. *)
  if List.mem r t.participated && not (List.mem r t.vba_proposed) then begin
    let props = !(proposals_of t r) in
    let senders =
      List.fold_left (fun acc (s, _) -> Pset.add s acc) Pset.empty props
    in
    if Proto_io.big_quorum t.io senders then begin
      t.vba_proposed <- r :: t.vba_proposed;
      let sigs = !(sigs_of t r) in
      let entries =
        List.map (fun (s, p) -> (s, p, List.assoc s sigs)) props
      in
      Vba.propose (vba_of t r) (encode_list entries)
    end
  end;
  (* Consume the decision of the current round, in order. *)
  match Hashtbl.find_opt t.decisions r with
  | None -> ()
  | Some value ->
    (match decode_list value with
    | None -> assert false  (* external validity guarantees decodability *)
    | Some entries ->
      let payloads =
        List.filter_map
          (fun (_, p, _) -> if p = placeholder then None else Some p)
          entries
        |> List.sort_uniq compare
      in
      List.iter
        (fun p ->
          let d = digest p in
          if not (Hashtbl.mem t.delivered d) then begin
            Hashtbl.replace t.delivered d ();
            t.delivered_log <- p :: t.delivered_log;
            t.queue <- List.filter (fun q -> digest q <> d) t.queue;
            Obs.point t.io.Proto_io.obs ~party:t.io.Proto_io.me ~tag:t.tag
              ~layer:"abc" "deliver";
            t.deliver p
          end)
        payloads;
      Obs.span_end t.io.Proto_io.obs
        ~detail:(Printf.sprintf "r%d done" r)
        t.sp_epoch;
      t.sp_epoch <- 0;
      t.round <- r + 1;
      step t)

(* ---------- API ----------------------------------------------------- *)

let enqueue t payload =
  let d = digest payload in
  if
    (not (Hashtbl.mem t.delivered d))
    && not (List.exists (fun q -> digest q = d) t.queue)
  then begin
    (* Digest order makes "oldest undelivered" a global notion, which is
       what the fairness argument needs. *)
    t.queue <- List.sort (fun a b -> compare (digest a) (digest b)) (payload :: t.queue);
    step t
  end

(* Atomic broadcast entry point: relay to every server, then enqueue. *)
let broadcast t payload =
  t.io.Proto_io.broadcast (Request payload);
  enqueue t payload

let handle t ~src msg =
  match msg with
  | Request payload -> enqueue t payload
  | Proposal (r, payload, sg) ->
    if r >= t.round && r < t.round + 64 then begin
      let props = proposals_of t r in
      if not (List.mem_assoc src !props) then begin
        match Schnorr_sig.of_bytes t.io.Proto_io.keyring.Keyring.group sg with
        | None -> ()
        | Some parsed ->
          if
            Keyring.verify_party_signature t.io.Proto_io.keyring ~party:src
              (prop_stmt t r payload) parsed
          then begin
            props := (src, payload) :: !props;
            let sigs = sigs_of t r in
            sigs := (src, sg) :: !sigs;
            (* A payload proposed by someone else is also worth ordering. *)
            if payload <> placeholder then enqueue t payload;
            step t
          end
      end
    end
  | Vba_msg (r, m) ->
    if r >= t.round && r < t.round + 64 then begin
      Vba.handle (vba_of t r) ~src m;
      step t
    end
    else if Hashtbl.mem t.vbas r then Vba.handle (vba_of t r) ~src m

let delivered_log t = List.rev t.delivered_log
let current_round t = t.round
let pending t = t.queue

let msg_size kr = function
  | Request p -> 8 + String.length p
  | Proposal (_, p, sg) -> 16 + String.length p + String.length sg
  | Vba_msg (_, m) -> 8 + Vba.msg_size kr m

let msg_summary = function
  | Request p -> Printf.sprintf "abc.REQUEST(%d B)" (String.length p)
  | Proposal (r, p, _) -> Printf.sprintf "abc.PROPOSAL(r%d,%d B)" r (String.length p)
  | Vba_msg (r, m) -> Printf.sprintf "abc.r%d/%s" r (Vba.msg_summary m)
