(** Atomic broadcast: total ordering of payloads via one validated
    multi-valued agreement per global round (Chandra–Toueg round
    structure in the Byzantine model; paper, Section 3).

    Per round every party signs and disseminates the oldest undelivered
    payload it knows, collects a big-quorum of validly signed proposals,
    and agrees (VBA with the signature check as external validity) on one
    such list, delivered in deterministic order.  Liveness and fairness:
    a payload known to the honest parties appears in every honest
    proposal and is delivered within a round.

    A {!policy} amortizes the per-round agreement cost: proposals carry
    {!Codec.encode_batch} frames of up to [max_batch_msgs] payloads
    (oldest-undelivered first, capped at [max_batch_bytes]), and up to
    [window] rounds run in flight at once with disjoint batches — a full
    window back-pressures instead of growing unbounded state.  The
    policy must be deployment-wide (all honest parties configured
    alike); {!default_policy} reproduces the unbatched, one-round
    behaviour exactly. *)

type policy = {
  max_batch_msgs : int;  (** payloads per proposal frame; 1 = no framing *)
  max_batch_bytes : int;  (** cap on summed payload bytes per frame *)
  window : int;  (** rounds a party may have in flight at once *)
  linger : float;
      (** sim-clock ticks to wait for a fuller batch before proposing a
          partial one; needs the io timer hook, ignored without one *)
}

val default_policy : policy
(** [{ max_batch_msgs = 1; max_batch_bytes = 1 MiB; window = 1;
    linger = 0. }] — no framing, no pipelining. *)

type msg =
  | Request of string  (** payload relay ("send to all servers") *)
  | Proposal of int * string * string  (** round, payload, signature *)
  | Vba_msg of int * Vba.msg

type t

val create :
  ?policy:policy ->
  io:msg Proto_io.t ->
  tag:string ->
  deliver:(string -> unit) ->
  unit ->
  t
(** [deliver] is invoked in the agreed total order (identical at every
    honest party); duplicates are suppressed.  Raises [Invalid_argument]
    on a non-positive policy field. *)

val broadcast : t -> string -> unit
(** Atomically broadcast a payload (relay to all, then order). *)

val enqueue : t -> string -> unit
(** Order a payload without relaying (it is already known here). *)

val handle : t -> src:int -> msg -> unit
val delivered_log : t -> string list
val current_round : t -> int
val pending : t -> string list

val in_flight : t -> int
(** Rounds this party has proposed in but not yet completed (bounded by
    the policy window). *)

val in_flight_rounds : t -> (int * int) list
(** [(round, proposals collected)] for each in-flight round, ascending —
    the per-round diagnostics the deployment's stall probe reports. *)

val backlog : t -> int
(** Undelivered payloads not packed into any in-flight proposal —
    non-zero under back-pressure when the window is full. *)

val msg_size : Keyring.t -> msg -> int

val msg_summary : msg -> string
