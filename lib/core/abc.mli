(** Atomic broadcast: total ordering of payloads via one validated
    multi-valued agreement per global round (Chandra–Toueg round
    structure in the Byzantine model; paper, Section 3).

    Per round every party signs and disseminates the oldest undelivered
    payload it knows, collects a big-quorum of validly signed proposals,
    and agrees (VBA with the signature check as external validity) on one
    such list, delivered in deterministic order.  Liveness and fairness:
    a payload known to the honest parties appears in every honest
    proposal and is delivered within a round.

    A {!policy} amortizes the per-round agreement cost: proposals carry
    {!Codec.encode_batch} frames of up to [max_batch_msgs] payloads
    (oldest-undelivered first, capped at [max_batch_bytes]), and up to
    [window] rounds run in flight at once with disjoint batches — a full
    window back-pressures instead of growing unbounded state.  The
    policy must be deployment-wide (all honest parties configured
    alike); {!default_policy} reproduces the unbatched, one-round
    behaviour exactly. *)

type policy = {
  max_batch_msgs : int;  (** payloads per proposal frame; 1 = no framing *)
  max_batch_bytes : int;  (** cap on summed payload bytes per frame *)
  window : int;  (** rounds a party may have in flight at once *)
  linger : float;
      (** sim-clock ticks to wait for a fuller batch before proposing a
          partial one; needs the io timer hook, ignored without one *)
}

val default_policy : policy
(** [{ max_batch_msgs = 1; max_batch_bytes = 1 MiB; window = 1;
    linger = 0. }] — no framing, no pipelining. *)

type msg =
  | Request of string  (** payload relay ("send to all servers") *)
  | Proposal of int * string * string  (** round, payload, signature *)
  | Vba_msg of int * Vba.msg

type t

val create :
  ?policy:policy ->
  io:msg Proto_io.t ->
  tag:string ->
  deliver:(string -> unit) ->
  unit ->
  t
(** [deliver] is invoked in the agreed total order (identical at every
    honest party); duplicates are suppressed.  Raises [Invalid_argument]
    on a non-positive policy field. *)

val broadcast : t -> string -> unit
(** Atomically broadcast a payload (relay to all, then order). *)

val enqueue : t -> string -> unit
(** Order a payload without relaying (it is already known here). *)

val handle : t -> src:int -> msg -> unit

val delivered_log : t -> string list
(** Delivered payloads still held locally, oldest first.  Before any
    {!truncate} this is the whole history; after one it is the suffix
    past the last certified checkpoint — exactly what a state-serving
    peer ships alongside the certified snapshot. *)

val current_round : t -> int
val pending : t -> string list

val in_flight : t -> int
(** Rounds this party has proposed in but not yet completed (bounded by
    the policy window). *)

val in_flight_rounds : t -> (int * int) list
(** [(round, proposals collected)] for each in-flight round, ascending —
    the per-round diagnostics the deployment's stall probe reports. *)

val backlog : t -> int
(** Undelivered payloads not packed into any in-flight proposal —
    non-zero under back-pressure when the window is full. *)

(** {2 Checkpointing: truncation and state transfer}

    Hooks for the recovery layer.  None of them is invoked by the
    protocol itself, so a deployment that never checkpoints behaves
    bit-identically to one built before these existed. *)

val delivered_count : t -> int
(** Total deliveries over the instance's lifetime, including the
    truncated prefix. *)

val delivered_digests : t -> string list
(** Digests of the whole delivered history, oldest first — never
    truncated (32 bytes per payload buy permanent dedup and the
    digest history a checkpoint snapshot carries). *)

val base_len : t -> int
(** Deliveries certified away by checkpoints (length of the truncated
    prefix); [delivered_count t - base_len t] payloads remain in
    {!delivered_log}. *)

val log_len : t -> int
(** Payloads currently held in {!delivered_log}. *)

val log_peak : t -> int
(** High-water mark of {!log_len} — the boundedness evidence the
    recovery experiments report. *)

val retired_rounds : t -> int
(** Rounds of per-round protocol state retired by {!truncate} /
    {!install_checkpoint} so far. *)

val is_delivered : t -> string -> bool
(** Whether a payload has ever been delivered here (survives
    truncation via the digest set). *)

val set_boundary_hook : t -> (int -> unit) -> unit
(** Install a callback invoked with the new round number each time a
    round completes and delivery for it is done — the recovery layer
    snapshots at interval boundaries from here.  At the moment of the
    call the delivered state is exactly the round boundary's, which is
    identical at every honest party. *)

val truncate : t -> upto_round:int -> upto_len:int -> unit
(** Garbage-collect a certified prefix: drop the oldest
    [upto_len - base_len] payloads from {!delivered_log} and retire
    every per-round structure (proposals, signatures, VBA instances and
    their children, decisions) below [upto_round].  Dedup is preserved
    through the digest set.  Updates the [round_state_retired] counter
    and [abc_log_len] gauge (layer ["abc"]).  Raises [Invalid_argument]
    if [upto_len] exceeds {!delivered_count}. *)

val install_checkpoint :
  t -> round:int -> digests:string list -> suffix:string list -> unit
(** Adopt a verified remote state: [digests] is the certified digest
    history (oldest first), [suffix] the serving peers' uncertified
    payload suffix, [round] their current round.  Local deliveries are
    merged into the dedup set, per-round state below the adopted round
    is retired, suffix payloads not previously delivered here are
    replayed through the deliver callback in order, and ordering
    resumes from [round].  The caller must have verified the
    checkpoint certificate and reply quorum. *)

val msg_size : Keyring.t -> msg -> int

val msg_summary : msg -> string
