(* Consistent broadcast: Reiter-style echo broadcast with certificates
   (paper, Section 3).

   The sender disseminates a payload; every server returns an
   endorsement (a quorum-certificate share over the payload digest) to
   the sender, who combines a big-quorum of them into a transferable
   delivery certificate and re-broadcasts payload + certificate.

   Compared to reliable broadcast this costs O(n) messages instead of
   O(n^2) and guarantees *uniqueness* of the delivered payload (two
   big-quorums intersect in an honest server, which endorses only one
   payload per instance) but not totality: a party may never deliver,
   although it can always be convinced later by the certificate — which
   is exactly what the validated agreement protocol exploits. *)

type msg =
  | Send of string
  | Echo of Keyring.cert_share  (* back to the sender *)
  | Final of string * Keyring.cert

type t = {
  io : msg Proto_io.t;
  tag : string;  (* instance identity, bound into the statement *)
  sender : int;
  validate : string -> bool;  (* endorse only acceptable payloads *)
  deliver : string -> Keyring.cert -> unit;
  mutable echoed : bool;
  mutable payload : string option;  (* sender side: what we broadcast *)
  mutable shares : (int * Keyring.cert_share) list;  (* sender side *)
  mutable sent_final : bool;
  mutable delivered : (string * Keyring.cert) option;
  mutable sp_inst : int;  (* open trace span; 0 = none *)
}

let statement t payload =
  Ro.encode [ "cbc"; t.tag; string_of_int t.sender; Sha256.digest payload ]

let create ~(io : msg Proto_io.t) ~tag ~sender ?(validate = fun _ -> true)
    ~deliver () =
  { io;
    tag;
    sender;
    validate;
    deliver;
    echoed = false;
    payload = None;
    shares = [];
    sent_final = false;
    delivered = None;
    sp_inst = 0 }

let obs t = t.io.Proto_io.obs

let broadcast t payload =
  assert (t.io.Proto_io.me = t.sender);
  t.payload <- Some payload;
  t.sp_inst <-
    Obs.span_begin (obs t) ~party:t.io.Proto_io.me ~tag:t.tag ~layer:"cbc"
      "instance";
  t.io.Proto_io.broadcast (Send payload)

let delivered t = t.delivered

let try_final t =
  match t.payload with
  | None -> ()
  | Some payload ->
    if not t.sent_final then begin
      let stmt = statement t payload in
      match Keyring.make_cert t.io.Proto_io.keyring stmt t.shares with
      | None -> ()
      | Some cert ->
        t.sent_final <- true;
        t.io.Proto_io.broadcast (Final (payload, cert))
    end

let handle t ~src msg =
  let kr = t.io.Proto_io.keyring in
  match msg with
  | Send payload ->
    if src = t.sender && (not t.echoed) && t.validate payload then begin
      t.echoed <- true;
      if t.io.Proto_io.me <> t.sender then
        t.sp_inst <-
          Obs.span_begin (obs t) ~party:t.io.Proto_io.me ~src ~tag:t.tag
            ~layer:"cbc" "instance";
      let share =
        Keyring.cert_share kr ~party:t.io.Proto_io.me (statement t payload)
      in
      t.io.Proto_io.send t.sender (Echo share)
    end
  | Echo share ->
    (match t.payload with
    | Some payload when t.io.Proto_io.me = t.sender ->
      if
        (not (List.mem_assoc src t.shares))
        && Keyring.verify_cert_share kr ~party:src (statement t payload) share
      then begin
        t.shares <- (src, share) :: t.shares;
        try_final t
      end
    | Some _ | None -> ())
  | Final (payload, cert) ->
    if
      t.delivered = None
      && Keyring.verify_cert kr (statement t payload) cert
    then begin
      t.delivered <- Some (payload, cert);
      Obs.span_end (obs t) t.sp_inst;
      t.sp_inst <- 0;
      Obs.point (obs t) ~party:t.io.Proto_io.me ~src:t.sender ~tag:t.tag
        ~layer:"cbc" "deliver";
      t.deliver payload cert
    end

(* Re-validate a transferred (payload, certificate) pair, e.g. one that
   arrived inside another protocol's justification. *)
let check_transferred ~(keyring : Keyring.t) ~tag ~sender payload cert : bool =
  let stmt =
    Ro.encode [ "cbc"; tag; string_of_int sender; Sha256.digest payload ]
  in
  Keyring.verify_cert keyring stmt cert

let msg_size kr = function
  | Send p -> 8 + String.length p
  | Echo _ -> 72
  | Final (p, cert) -> 8 + String.length p + Keyring.cert_size kr cert

let msg_summary = function
  | Send p -> Printf.sprintf "cbc.SEND(%d B)" (String.length p)
  | Echo _ -> "cbc.ECHO"
  | Final (p, _) -> Printf.sprintf "cbc.FINAL(%d B)" (String.length p)
