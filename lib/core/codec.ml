(* Minimal canonical wire codec: a length-prefixed string list, the
   inverse of {!Ro.encode}.  Used wherever structured protocol data must
   be carried inside a broadcast payload (e.g. the signed proposal lists
   of the atomic broadcast rounds). *)

let encode (parts : string list) : string = Ro.encode parts

(* Big-endian u64 field -> OCaml int.  A field >= 2^62 cannot fit in an
   int and can never be a valid length, count or sequence number, so it
   returns -1 and is rejected by the callers' sign checks.  Without the
   top-byte guard the high bits would be shifted out of the 63-bit int,
   and a non-canonical encoding (high garbage over a small value) would
   decode as if the garbage were zero — a frame that decodes must
   re-encode to the very same bytes. *)
let read_u64 (s : string) (off : int) : int =
  if Char.code s.[off] land 0xC0 <> 0 then -1
  else begin
    let v = ref 0 in
    for i = 0 to 7 do
      v := (!v lsl 8) lor Char.code s.[off + i]
    done;
    !v
  end

let decode (s : string) : string list option =
  let len = String.length s in
  let rec go off acc =
    if off = len then Some (List.rev acc)
    else if off + 8 > len then None
    else begin
      let l = read_u64 s off in
      if l < 0 || off + 8 + l > len then None
      else go (off + 8 + l) (String.sub s (off + 8) l :: acc)
    end
  in
  go 0 []

let encode_int (i : int) : string = string_of_int i

let decode_int (s : string) : int option = int_of_string_opt s

(* ---------- batch frames -------------------------------------------- *)

(* A batch frame carries many payloads inside one atomically broadcast
   proposal: magic, a payload count, then count length-prefixed
   payloads.  Unlike {!decode}, the explicit count makes every proper
   prefix of a frame invalid (a truncated frame can never be mistaken
   for a shorter batch), and the magic keeps random bytes from decoding
   at all.  The frame must be consumed exactly: trailing bytes are
   rejected, so two distinct frames never decode to the same batch. *)

let batch_magic = "SBF1"

let encode_batch (payloads : string list) : string =
  let buf = Buffer.create 64 in
  Buffer.add_string buf batch_magic;
  let add_u64 v =
    for i = 7 downto 0 do
      Buffer.add_char buf (Char.chr ((v lsr (8 * i)) land 0xff))
    done
  in
  add_u64 (List.length payloads);
  List.iter
    (fun p ->
      add_u64 (String.length p);
      Buffer.add_string buf p)
    payloads;
  Buffer.contents buf

let decode_batch (s : string) : string list option =
  let len = String.length s in
  let mlen = String.length batch_magic in
  if len < mlen + 8 || String.sub s 0 mlen <> batch_magic then None
  else begin
    let count = read_u64 s mlen in
    if count < 0 then None
    else
      let rec go k off acc =
        if k = 0 then if off = len then Some (List.rev acc) else None
        else if off + 8 > len then None
        else begin
          let l = read_u64 s off in
          if l < 0 || off + 8 + l > len then None
          else go (k - 1) (off + 8 + l) (String.sub s (off + 8) l :: acc)
        end
      in
      go count (mlen + 8) []
  end

(* ---------- checkpoint frames --------------------------------------- *)

(* A snapshot frame fixes one replica's ordered state at a round
   boundary: the boundary round, an opaque application-state blob, and
   the full digest history of the delivered log (oldest first).  Its
   SHA-256 hash is the statement the checkpoint certificate signs, so
   the frame follows the batch-frame discipline exactly: magic, explicit
   count, length prefixes, exact consumption — a frame that decodes
   re-encodes to the very same bytes, hence to the very same hash. *)

let snapshot_magic = "SCK1"

let add_u64 buf v =
  for i = 7 downto 0 do
    Buffer.add_char buf (Char.chr ((v lsr (8 * i)) land 0xff))
  done

let encode_snapshot ~round ~app ~digests : string =
  if round < 0 then invalid_arg "Codec.encode_snapshot";
  let buf = Buffer.create 256 in
  Buffer.add_string buf snapshot_magic;
  add_u64 buf round;
  add_u64 buf (String.length app);
  Buffer.add_string buf app;
  add_u64 buf (List.length digests);
  List.iter
    (fun d ->
      add_u64 buf (String.length d);
      Buffer.add_string buf d)
    digests;
  Buffer.contents buf

let decode_snapshot (s : string) : (int * string * string list) option =
  let len = String.length s in
  let mlen = String.length snapshot_magic in
  if len < mlen + 16 || String.sub s 0 mlen <> snapshot_magic then None
  else begin
    let round = read_u64 s mlen in
    let alen = read_u64 s (mlen + 8) in
    if round < 0 || alen < 0 || mlen + 16 + alen + 8 > len then None
    else begin
      let app = String.sub s (mlen + 16) alen in
      let coff = mlen + 16 + alen in
      let count = read_u64 s coff in
      if count < 0 then None
      else
        let rec go k off acc =
          if k = 0 then
            if off = len then Some (round, app, List.rev acc) else None
          else if off + 8 > len then None
          else begin
            let l = read_u64 s off in
            if l < 0 || off + 8 + l > len then None
            else go (k - 1) (off + 8 + l) (String.sub s (off + 8) l :: acc)
          end
        in
        go count (coff + 8) []
    end
  end

(* A checkpoint frame pairs a snapshot with its threshold certificate
   (the serialized combined service signature over the snapshot hash).
   Both fields are length-prefixed and the frame must be consumed
   exactly, so a certificate can never be spliced onto a different
   snapshot without changing the bytes a verifier hashes. *)

let ckpt_magic = "SCP1"

let encode_ckpt ~snapshot ~cert : string =
  let buf = Buffer.create (String.length snapshot + String.length cert + 24) in
  Buffer.add_string buf ckpt_magic;
  add_u64 buf (String.length snapshot);
  Buffer.add_string buf snapshot;
  add_u64 buf (String.length cert);
  Buffer.add_string buf cert;
  Buffer.contents buf

let decode_ckpt (s : string) : (string * string) option =
  let len = String.length s in
  let mlen = String.length ckpt_magic in
  if len < mlen + 16 || String.sub s 0 mlen <> ckpt_magic then None
  else begin
    let slen = read_u64 s mlen in
    if slen < 0 || mlen + 8 + slen + 8 > len then None
    else begin
      let snapshot = String.sub s (mlen + 8) slen in
      let coff = mlen + 8 + slen in
      let clen = read_u64 s coff in
      if clen < 0 || coff + 8 + clen <> len then None
      else Some (snapshot, String.sub s (coff + 8) clen)
    end
  end

(* ---------- service frames ------------------------------------------ *)

(* The client-facing half of the service stack speaks three strict
   frames.  All follow the batch-frame discipline — magic, explicit
   lengths, exact consumption — because each crosses a trust boundary:
   the request frame is the ordered plaintext whose SHA-256 digest names
   the request in every reply, the reply frame is what an (possibly
   Byzantine) server hands a client, and the certificate frame is what a
   client hands an arbitrary third party.

     SVQ1: u64 client + nonce + body.  The nonce must be non-empty: it
           is what makes retries distinct payloads for the broadcast and
           what keys execution dedup, so an empty nonce would collapse
           every request of a client onto one dedup slot.
     SVR1: kind byte (0 ordered / 1 query) + req_digest + u64 server +
           response + serialized signature share.
     SVC1: kind byte + req_digest + response + serialized combined
           service signature. *)

let svc_request_magic = "SVQ1"

let encode_svc_request ~client ~nonce ~body : string =
  if client < 0 then invalid_arg "Codec.encode_svc_request: negative client";
  if nonce = "" then invalid_arg "Codec.encode_svc_request: empty nonce";
  let buf =
    Buffer.create (String.length nonce + String.length body + 36)
  in
  Buffer.add_string buf svc_request_magic;
  add_u64 buf client;
  add_u64 buf (String.length nonce);
  Buffer.add_string buf nonce;
  add_u64 buf (String.length body);
  Buffer.add_string buf body;
  Buffer.contents buf

let decode_svc_request (s : string) : (int * string * string) option =
  let len = String.length s in
  let mlen = String.length svc_request_magic in
  if len < mlen + 24 || String.sub s 0 mlen <> svc_request_magic then None
  else begin
    let client = read_u64 s mlen in
    let nlen = read_u64 s (mlen + 8) in
    if client < 0 || nlen < 1 || mlen + 16 + nlen + 8 > len then None
    else begin
      let nonce = String.sub s (mlen + 16) nlen in
      let boff = mlen + 16 + nlen in
      let blen = read_u64 s boff in
      if blen < 0 || boff + 8 + blen <> len then None
      else Some (client, nonce, String.sub s (boff + 8) blen)
    end
  end

let svc_reply_magic = "SVR1"

let encode_svc_reply ~fast ~req_digest ~server ~response ~share : string =
  if server < 0 then invalid_arg "Codec.encode_svc_reply: negative server";
  let buf =
    Buffer.create
      (String.length req_digest + String.length response
      + String.length share + 48)
  in
  Buffer.add_string buf svc_reply_magic;
  Buffer.add_char buf (if fast then '\001' else '\000');
  add_u64 buf (String.length req_digest);
  Buffer.add_string buf req_digest;
  add_u64 buf server;
  add_u64 buf (String.length response);
  Buffer.add_string buf response;
  add_u64 buf (String.length share);
  Buffer.add_string buf share;
  Buffer.contents buf

let decode_svc_reply (s : string) :
    (bool * string * int * string * string) option =
  let len = String.length s in
  let mlen = String.length svc_reply_magic in
  if len < mlen + 33 || String.sub s 0 mlen <> svc_reply_magic then None
  else
    match s.[mlen] with
    | ('\000' | '\001') as k ->
      let fast = k = '\001' in
      let doff = mlen + 1 in
      let dlen = read_u64 s doff in
      if dlen < 0 || doff + 8 + dlen + 24 > len then None
      else begin
        let req_digest = String.sub s (doff + 8) dlen in
        let soff = doff + 8 + dlen in
        let server = read_u64 s soff in
        let rlen = read_u64 s (soff + 8) in
        if server < 0 || rlen < 0 || soff + 16 + rlen + 8 > len then None
        else begin
          let response = String.sub s (soff + 16) rlen in
          let hoff = soff + 16 + rlen in
          let hlen = read_u64 s hoff in
          if hlen < 0 || hoff + 8 + hlen <> len then None
          else
            Some
              (fast, req_digest, server, response,
               String.sub s (hoff + 8) hlen)
        end
      end
    | _ -> None

let reply_cert_magic = "SVC1"

let encode_reply_cert ~fast ~req_digest ~response ~cert : string =
  let buf =
    Buffer.create
      (String.length req_digest + String.length response
      + String.length cert + 40)
  in
  Buffer.add_string buf reply_cert_magic;
  Buffer.add_char buf (if fast then '\001' else '\000');
  add_u64 buf (String.length req_digest);
  Buffer.add_string buf req_digest;
  add_u64 buf (String.length response);
  Buffer.add_string buf response;
  add_u64 buf (String.length cert);
  Buffer.add_string buf cert;
  Buffer.contents buf

let decode_reply_cert (s : string) :
    (bool * string * string * string) option =
  let len = String.length s in
  let mlen = String.length reply_cert_magic in
  if len < mlen + 25 || String.sub s 0 mlen <> reply_cert_magic then None
  else
    match s.[mlen] with
    | ('\000' | '\001') as k ->
      let fast = k = '\001' in
      let doff = mlen + 1 in
      let dlen = read_u64 s doff in
      if dlen < 0 || doff + 8 + dlen + 16 > len then None
      else begin
        let req_digest = String.sub s (doff + 8) dlen in
        let roff = doff + 8 + dlen in
        let rlen = read_u64 s roff in
        if rlen < 0 || roff + 8 + rlen + 8 > len then None
        else begin
          let response = String.sub s (roff + 8) rlen in
          let coff = roff + 8 + rlen in
          let clen = read_u64 s coff in
          if clen < 0 || coff + 8 + clen <> len then None
          else
            Some (fast, req_digest, response, String.sub s (coff + 8) clen)
        end
      end
    | _ -> None

(* ---------- link frames --------------------------------------------- *)

(* The byte-transport instantiation of {!Link.frame}: magic, a kind
   byte, then kind-specific fields.  Validation follows the batch-frame
   discipline: the magic keeps random bytes from decoding, explicit
   lengths/counts make every truncation invalid, and the frame must be
   consumed exactly, so two distinct frames never decode alike.

     RAW  (kind 0): u64 length + payload bytes
     DATA (kind 1): u64 seq (>= 1) + u64 length + payload bytes
     ACK  (kind 2): u64 cum + u64 count + count u64s, strictly ascending
                    and every entry > cum (the canonical selective set) *)

let link_magic = "SLF1"

let encode_link_frame (frame : string Link.frame) : string =
  let buf = Buffer.create 64 in
  Buffer.add_string buf link_magic;
  let add_u64 v =
    for i = 7 downto 0 do
      Buffer.add_char buf (Char.chr ((v lsr (8 * i)) land 0xff))
    done
  in
  (match frame with
  | Link.Raw m ->
    Buffer.add_char buf '\000';
    add_u64 (String.length m);
    Buffer.add_string buf m
  | Link.Data { seq; payload } ->
    Buffer.add_char buf '\001';
    add_u64 seq;
    add_u64 (String.length payload);
    Buffer.add_string buf payload
  | Link.Ack { cum; sel } ->
    Buffer.add_char buf '\002';
    add_u64 cum;
    add_u64 (List.length sel);
    List.iter add_u64 sel);
  Buffer.contents buf

let decode_link_frame (s : string) : string Link.frame option =
  let len = String.length s in
  let mlen = String.length link_magic in
  if len < mlen + 1 || String.sub s 0 mlen <> link_magic then None
  else begin
    let body = mlen + 1 in
    match s.[mlen] with
    | '\000' ->
      if body + 8 > len then None
      else begin
        let l = read_u64 s body in
        if l < 0 || body + 8 + l <> len then None
        else Some (Link.Raw (String.sub s (body + 8) l))
      end
    | '\001' ->
      if body + 16 > len then None
      else begin
        let seq = read_u64 s body in
        let l = read_u64 s (body + 8) in
        if seq < 1 || l < 0 || body + 16 + l <> len then None
        else Some (Link.Data { seq; payload = String.sub s (body + 16) l })
      end
    | '\002' ->
      if body + 16 > len then None
      else begin
        let cum = read_u64 s body in
        let count = read_u64 s (body + 8) in
        if cum < 0 || count < 0 || body + 16 + (8 * count) <> len then None
        else begin
          let rec go k off prev acc =
            if k = 0 then Some (Link.Ack { cum; sel = List.rev acc })
            else
              let seq = read_u64 s off in
              (* Canonical selective set: strictly ascending, all > cum. *)
              if seq <= prev then None
              else go (k - 1) (off + 8) seq (seq :: acc)
          in
          go count (body + 16) cum []
        end
      end
    | _ -> None
  end

(* ---------- epoch frames -------------------------------------------- *)

(* The epoch-reconfiguration protocol moves cryptographic material over
   the wire: zero-sharing refresh packages (SEP1), cross-structure
   reshare packages (SER1), the epoch-advance statement body (SEA1) and
   its certified form (SEC1).  All follow the checkpoint-frame
   discipline — magic, explicit counts, length prefixes, exact
   consumption — and the crypto-bearing frames additionally pin every
   exponent to the canonical fixed-width big-endian form with value
   below the group order and every group element to a validated member
   of the subgroup, so a frame that decodes re-encodes to the very same
   bytes and never smuggles an out-of-range value into the crypto
   layer. *)

let exp_len (g : Schnorr_group.params) =
  (Bignum.numbits g.Schnorr_group.q + 7) / 8

let elt_len (g : Schnorr_group.params) =
  (Bignum.numbits g.Schnorr_group.p + 7) / 8

let add_exp g buf v =
  Buffer.add_string buf (Bignum.to_bytes_be ~len:(exp_len g) v)

(* Fixed-width exponent field: exactly [exp_len] bytes, value < q.  A
   value >= q (or a short read) rejects the frame, so the range check
   callers would otherwise owe the crypto layer happens once, here. *)
let read_exp g s off =
  let l = exp_len g in
  if off + l > String.length s then None
  else
    let v = Bignum.of_bytes_be (String.sub s off l) in
    if Bignum.lt v g.Schnorr_group.q then Some v else None

(* Fixed-width group element: exactly [elt_len] bytes, subgroup
   membership checked by {!Schnorr_group.elt_of_bytes}. *)
let read_elt g s off =
  let l = elt_len g in
  if off + l > String.length s then None
  else Schnorr_group.elt_of_bytes g (String.sub s off l)

let add_subshare g buf (ss : Lsss.subshare) =
  if ss.Lsss.leaf < 0 || ss.Lsss.party < 0 then
    invalid_arg "Codec: negative subshare index";
  add_u64 buf ss.Lsss.leaf;
  add_u64 buf ss.Lsss.party;
  add_exp g buf ss.Lsss.value

let read_subshare g s off : (Lsss.subshare * int) option =
  if off + 16 > String.length s then None
  else begin
    let leaf = read_u64 s off in
    let party = read_u64 s (off + 8) in
    if leaf < 0 || party < 0 then None
    else
      match read_exp g s (off + 16) with
      | None -> None
      | Some value ->
        Some ({ Lsss.leaf; party; value }, off + 16 + exp_len g)
  end

let refresh_magic = "SEP1"

let encode_refresh_pkg g (pkg : Proactive.refresh_package) : string =
  if pkg.Proactive.dealer < 0 then invalid_arg "Codec.encode_refresh_pkg";
  let buf = Buffer.create 256 in
  Buffer.add_string buf refresh_magic;
  add_u64 buf pkg.Proactive.dealer;
  add_u64 buf (List.length pkg.Proactive.deltas);
  List.iter (add_subshare g buf) pkg.Proactive.deltas;
  add_u64 buf (Array.length pkg.Proactive.delta_keys);
  Array.iter
    (fun k -> Buffer.add_string buf (Schnorr_group.elt_to_bytes g k))
    pkg.Proactive.delta_keys;
  Buffer.contents buf

let decode_refresh_pkg g (s : string) : Proactive.refresh_package option =
  let len = String.length s in
  let mlen = String.length refresh_magic in
  if len < mlen + 16 || String.sub s 0 mlen <> refresh_magic then None
  else begin
    let dealer = read_u64 s mlen in
    let nd = read_u64 s (mlen + 8) in
    if dealer < 0 || nd < 0 then None
    else
      let rec deltas k off acc =
        if k = 0 then Some (List.rev acc, off)
        else
          match read_subshare g s off with
          | None -> None
          | Some (ss, off') -> deltas (k - 1) off' (ss :: acc)
      in
      match deltas nd (mlen + 16) [] with
      | None -> None
      | Some (deltas, off) ->
        if off + 8 > len then None
        else begin
          let nk = read_u64 s off in
          let el = elt_len g in
          if nk < 0 || off + 8 + (nk * el) <> len then None
          else begin
            let keys = Array.make nk (Schnorr_group.one g) in
            let ok = ref true in
            for i = 0 to nk - 1 do
              match read_elt g s (off + 8 + (i * el)) with
              | None -> ok := false
              | Some e -> keys.(i) <- e
            done;
            if !ok then
              Some { Proactive.dealer; deltas; delta_keys = keys }
            else None
          end
        end
  end

let reshare_magic = "SER1"

let encode_reshare_pkg g (pkg : Proactive.reshare_package) : string =
  if pkg.Proactive.r_dealer < 0 then invalid_arg "Codec.encode_reshare_pkg";
  let buf = Buffer.create 512 in
  Buffer.add_string buf reshare_magic;
  add_u64 buf pkg.Proactive.r_dealer;
  add_u64 buf (List.length pkg.Proactive.r_deals);
  List.iter
    (fun (old_leaf, subs, keys) ->
      if old_leaf < 0 then invalid_arg "Codec.encode_reshare_pkg";
      add_u64 buf old_leaf;
      add_u64 buf (List.length subs);
      List.iter (add_subshare g buf) subs;
      add_u64 buf (Array.length keys);
      Array.iter
        (fun k -> Buffer.add_string buf (Schnorr_group.elt_to_bytes g k))
        keys)
    pkg.Proactive.r_deals;
  Buffer.contents buf

let decode_reshare_pkg g (s : string) : Proactive.reshare_package option =
  let len = String.length s in
  let mlen = String.length reshare_magic in
  if len < mlen + 16 || String.sub s 0 mlen <> reshare_magic then None
  else begin
    let dealer = read_u64 s mlen in
    let ndeals = read_u64 s (mlen + 8) in
    if dealer < 0 || ndeals < 0 then None
    else
      let el = elt_len g in
      let rec deals k off acc =
        if k = 0 then
          if off = len then Some (List.rev acc) else None
        else if off + 16 > len then None
        else begin
          let old_leaf = read_u64 s off in
          let nsub = read_u64 s (off + 8) in
          if old_leaf < 0 || nsub < 0 then None
          else
            let rec subs j off acc =
              if j = 0 then Some (List.rev acc, off)
              else
                match read_subshare g s off with
                | None -> None
                | Some (ss, off') -> subs (j - 1) off' (ss :: acc)
            in
            match subs nsub (off + 16) [] with
            | None -> None
            | Some (subs, off) ->
              if off + 8 > len then None
              else begin
                let nk = read_u64 s off in
                if nk < 0 || off + 8 + (nk * el) > len then None
                else begin
                  let keys = Array.make nk (Schnorr_group.one g) in
                  let ok = ref true in
                  for i = 0 to nk - 1 do
                    match read_elt g s (off + 8 + (i * el)) with
                    | None -> ok := false
                    | Some e -> keys.(i) <- e
                  done;
                  if !ok then
                    deals (k - 1)
                      (off + 8 + (nk * el))
                      ((old_leaf, subs, keys) :: acc)
                  else None
                end
              end
        end
      in
      match deals ndeals (mlen + 16) [] with
      | None -> None
      | Some r_deals -> Some { Proactive.r_dealer = dealer; r_deals }
  end

(* Monotone access formula, recursively: a leaf is tag 0 plus the party
   index; a threshold gate is tag 1, the threshold k, the child count,
   then the children.  Strict: k must satisfy 1 <= k <= count. *)

let rec add_formula buf (f : Monotone_formula.t) =
  match f with
  | Monotone_formula.Leaf p ->
    if p < 0 then invalid_arg "Codec: negative formula leaf";
    Buffer.add_char buf '\000';
    add_u64 buf p
  | Monotone_formula.Threshold (k, children) ->
    let c = List.length children in
    if k < 1 || k > c then invalid_arg "Codec: malformed threshold gate";
    Buffer.add_char buf '\001';
    add_u64 buf k;
    add_u64 buf c;
    List.iter (add_formula buf) children

let rec read_formula s off : (Monotone_formula.t * int) option =
  let len = String.length s in
  if off >= len then None
  else
    match s.[off] with
    | '\000' ->
      if off + 9 > len then None
      else begin
        let p = read_u64 s (off + 1) in
        if p < 0 then None else Some (Monotone_formula.Leaf p, off + 9)
      end
    | '\001' ->
      if off + 17 > len then None
      else begin
        let k = read_u64 s (off + 1) in
        let c = read_u64 s (off + 9) in
        if k < 1 || c < k then None
        else
          let rec children j off acc =
            if j = 0 then
              Some (Monotone_formula.Threshold (k, List.rev acc), off)
            else
              match read_formula s off with
              | None -> None
              | Some (f, off') -> children (j - 1) off' (f :: acc)
          in
          children c (off + 17) []
      end
    | _ -> None

let adv_magic = "SEA1"

let encode_epoch_adv ~epoch ~(target : (int * Monotone_formula.t) option)
    ~(pkgs : string list) : string =
  if epoch < 0 then invalid_arg "Codec.encode_epoch_adv";
  let buf = Buffer.create 512 in
  Buffer.add_string buf adv_magic;
  add_u64 buf epoch;
  (match target with
  | None -> Buffer.add_char buf '\000'
  | Some (n, f) ->
    if n < 1 then invalid_arg "Codec.encode_epoch_adv";
    Buffer.add_char buf '\001';
    add_u64 buf n;
    add_formula buf f);
  add_u64 buf (List.length pkgs);
  List.iter
    (fun p ->
      add_u64 buf (String.length p);
      Buffer.add_string buf p)
    pkgs;
  Buffer.contents buf

let decode_epoch_adv (s : string) :
    (int * (int * Monotone_formula.t) option * string list) option =
  let len = String.length s in
  let mlen = String.length adv_magic in
  if len < mlen + 9 || String.sub s 0 mlen <> adv_magic then None
  else begin
    let epoch = read_u64 s mlen in
    if epoch < 0 then None
    else
      let target =
        match s.[mlen + 8] with
        | '\000' -> Some (None, mlen + 9)
        | '\001' ->
          if mlen + 17 > len then None
          else begin
            let n = read_u64 s (mlen + 9) in
            if n < 1 then None
            else
              match read_formula s (mlen + 17) with
              | None -> None
              | Some (f, off) -> Some (Some (n, f), off)
          end
        | _ -> None
      in
      match target with
      | None -> None
      | Some (target, off) ->
        if off + 8 > len then None
        else begin
          let count = read_u64 s off in
          if count < 0 then None
          else
            let rec go k off acc =
              if k = 0 then
                if off = len then Some (List.rev acc) else None
              else if off + 8 > len then None
              else begin
                let l = read_u64 s off in
                if l < 0 || off + 8 + l > len then None
                else go (k - 1) (off + 8 + l) (String.sub s (off + 8) l :: acc)
              end
            in
            match go count (off + 8) [] with
            | None -> None
            | Some pkgs -> Some (epoch, target, pkgs)
        end
  end

let epoch_cert_magic = "SEC1"

let encode_epoch_cert ~body ~cert : string =
  let buf = Buffer.create (String.length body + String.length cert + 24) in
  Buffer.add_string buf epoch_cert_magic;
  add_u64 buf (String.length body);
  Buffer.add_string buf body;
  add_u64 buf (String.length cert);
  Buffer.add_string buf cert;
  Buffer.contents buf

let decode_epoch_cert (s : string) : (string * string) option =
  let len = String.length s in
  let mlen = String.length epoch_cert_magic in
  if len < mlen + 16 || String.sub s 0 mlen <> epoch_cert_magic then None
  else begin
    let blen = read_u64 s mlen in
    if blen < 0 || mlen + 8 + blen + 8 > len then None
    else begin
      let body = String.sub s (mlen + 8) blen in
      let coff = mlen + 8 + blen in
      let clen = read_u64 s coff in
      if clen < 0 || coff + 8 + clen <> len then None
      else Some (body, String.sub s (coff + 8) clen)
    end
  end
