(** Canonical wire codec: length-prefixed string lists (the inverse of
    {!Ro.encode}), used wherever structured protocol data rides inside a
    broadcast payload. *)

val encode : string list -> string

val decode : string -> string list option
(** Total inverse of {!encode}; [None] on malformed input. *)

val encode_int : int -> string
val decode_int : string -> int option

val encode_batch : string list -> string
(** Batch frame for the atomic-broadcast batching layer: magic + payload
    count + [count] length-prefixed payloads.  Deterministic: equal
    batches encode to equal frames. *)

val decode_batch : string -> string list option
(** Strict total inverse of {!encode_batch}: [None] on a missing or
    wrong magic, on truncation anywhere (the explicit count makes every
    proper prefix invalid), and on trailing bytes — a malformed frame is
    rejected whole, never mis-split into payloads. *)

val encode_link_frame : string Link.frame -> string
(** Byte-transport encoding of a reliable-link frame: magic ["SLF1"], a
    kind byte (RAW / DATA / ACK), then kind-specific u64 fields and
    payload bytes.  Deterministic: equal frames encode equally. *)

val decode_link_frame : string -> string Link.frame option
(** Strict total inverse of {!encode_link_frame}: [None] on a missing
    or wrong magic, an unknown kind, truncation or trailing bytes, a
    DATA sequence number below 1, or a non-canonical ACK selective set
    (entries must be strictly ascending and above the cumulative
    watermark). *)
