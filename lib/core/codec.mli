(** Canonical wire codec: length-prefixed string lists (the inverse of
    {!Ro.encode}), used wherever structured protocol data rides inside a
    broadcast payload. *)

val encode : string list -> string

val decode : string -> string list option
(** Total inverse of {!encode}; [None] on malformed input. *)

val encode_int : int -> string
val decode_int : string -> int option

val encode_batch : string list -> string
(** Batch frame for the atomic-broadcast batching layer: magic + payload
    count + [count] length-prefixed payloads.  Deterministic: equal
    batches encode to equal frames. *)

val decode_batch : string -> string list option
(** Strict total inverse of {!encode_batch}: [None] on a missing or
    wrong magic, on truncation anywhere (the explicit count makes every
    proper prefix invalid), and on trailing bytes — a malformed frame is
    rejected whole, never mis-split into payloads. *)

val encode_snapshot :
  round:int -> app:string -> digests:string list -> string
(** Snapshot frame (magic ["SCK1"]): one replica's ordered state at a
    round boundary — the boundary round, an opaque application-state
    blob, and the delivered log's digest history (oldest first).  Its
    SHA-256 hash is the statement a checkpoint certificate signs.
    Deterministic: equal snapshots encode equally.  Raises
    [Invalid_argument] on a negative round. *)

val decode_snapshot : string -> (int * string * string list) option
(** Strict total inverse of {!encode_snapshot}: [None] on a missing or
    wrong magic, truncation anywhere (the explicit digest count makes
    every proper prefix invalid), or trailing bytes.  A frame that
    decodes re-encodes to the very same bytes, hence hashes to the very
    same statement. *)

val encode_ckpt : snapshot:string -> cert:string -> string
(** Certified-checkpoint frame (magic ["SCP1"]): a snapshot frame paired
    with its serialized threshold certificate.  Both fields are
    length-prefixed, so a certificate cannot be spliced onto a different
    snapshot without changing the hashed bytes. *)

val decode_ckpt : string -> (string * string) option
(** Strict total inverse of {!encode_ckpt} ([(snapshot, cert)]); [None]
    on wrong magic, truncation or trailing bytes. *)

val encode_link_frame : string Link.frame -> string
(** Byte-transport encoding of a reliable-link frame: magic ["SLF1"], a
    kind byte (RAW / DATA / ACK), then kind-specific u64 fields and
    payload bytes.  Deterministic: equal frames encode equally. *)

val decode_link_frame : string -> string Link.frame option
(** Strict total inverse of {!encode_link_frame}: [None] on a missing
    or wrong magic, an unknown kind, truncation or trailing bytes, a
    DATA sequence number below 1, or a non-canonical ACK selective set
    (entries must be strictly ascending and above the cumulative
    watermark). *)
