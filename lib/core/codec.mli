(** Canonical wire codec: length-prefixed string lists (the inverse of
    {!Ro.encode}), used wherever structured protocol data rides inside a
    broadcast payload. *)

val encode : string list -> string

val decode : string -> string list option
(** Total inverse of {!encode}; [None] on malformed input. *)

val encode_int : int -> string
val decode_int : string -> int option

val encode_batch : string list -> string
(** Batch frame for the atomic-broadcast batching layer: magic + payload
    count + [count] length-prefixed payloads.  Deterministic: equal
    batches encode to equal frames. *)

val decode_batch : string -> string list option
(** Strict total inverse of {!encode_batch}: [None] on a missing or
    wrong magic, on truncation anywhere (the explicit count makes every
    proper prefix invalid), and on trailing bytes — a malformed frame is
    rejected whole, never mis-split into payloads. *)
