(** Canonical wire codec: length-prefixed string lists (the inverse of
    {!Ro.encode}), used wherever structured protocol data rides inside a
    broadcast payload. *)

val encode : string list -> string

val decode : string -> string list option
(** Total inverse of {!encode}; [None] on malformed input. *)

val encode_int : int -> string
val decode_int : string -> int option

val encode_batch : string list -> string
(** Batch frame for the atomic-broadcast batching layer: magic + payload
    count + [count] length-prefixed payloads.  Deterministic: equal
    batches encode to equal frames. *)

val decode_batch : string -> string list option
(** Strict total inverse of {!encode_batch}: [None] on a missing or
    wrong magic, on truncation anywhere (the explicit count makes every
    proper prefix invalid), and on trailing bytes — a malformed frame is
    rejected whole, never mis-split into payloads. *)

val encode_snapshot :
  round:int -> app:string -> digests:string list -> string
(** Snapshot frame (magic ["SCK1"]): one replica's ordered state at a
    round boundary — the boundary round, an opaque application-state
    blob, and the delivered log's digest history (oldest first).  Its
    SHA-256 hash is the statement a checkpoint certificate signs.
    Deterministic: equal snapshots encode equally.  Raises
    [Invalid_argument] on a negative round. *)

val decode_snapshot : string -> (int * string * string list) option
(** Strict total inverse of {!encode_snapshot}: [None] on a missing or
    wrong magic, truncation anywhere (the explicit digest count makes
    every proper prefix invalid), or trailing bytes.  A frame that
    decodes re-encodes to the very same bytes, hence hashes to the very
    same statement. *)

val encode_ckpt : snapshot:string -> cert:string -> string
(** Certified-checkpoint frame (magic ["SCP1"]): a snapshot frame paired
    with its serialized threshold certificate.  Both fields are
    length-prefixed, so a certificate cannot be spliced onto a different
    snapshot without changing the hashed bytes. *)

val decode_ckpt : string -> (string * string) option
(** Strict total inverse of {!encode_ckpt} ([(snapshot, cert)]); [None]
    on wrong magic, truncation or trailing bytes. *)

val encode_svc_request : client:int -> nonce:string -> body:string -> string
(** Service request frame (magic ["SVQ1"]): the ordered plaintext of a
    client request — client slot, nonce, application body.  Its SHA-256
    digest names the request in every reply and certificate.  Raises
    [Invalid_argument] on a negative client or an empty nonce (the nonce
    keys execution dedup, so emptiness would collapse a client's
    requests onto one dedup slot). *)

val decode_svc_request : string -> (int * string * string) option
(** Strict total inverse of {!encode_svc_request}
    ([(client, nonce, body)]); [None] on wrong magic, truncation,
    trailing bytes, a negative client, or an empty nonce. *)

val encode_svc_reply :
  fast:bool ->
  req_digest:string ->
  server:int ->
  response:string ->
  share:string ->
  string
(** Service reply frame (magic ["SVR1"]): one server's partial answer —
    a kind byte (ordered / fast-path query), the request digest, the
    answering server, the response bytes, and its serialized
    threshold-signature share.  Raises [Invalid_argument] on a negative
    server. *)

val decode_svc_reply : string -> (bool * string * int * string * string) option
(** Strict total inverse of {!encode_svc_reply}
    ([(fast, req_digest, server, response, share)]); [None] on wrong
    magic, an unknown kind byte, truncation or trailing bytes. *)

val encode_reply_cert :
  fast:bool -> req_digest:string -> response:string -> cert:string -> string
(** Reply-certificate frame (magic ["SVC1"]): the transferable form of
    an assembled reply — kind byte, request digest, agreed response, and
    the serialized combined service signature.  Length prefixes bind the
    signature to exactly this (digest, response) pair. *)

val decode_reply_cert : string -> (bool * string * string * string) option
(** Strict total inverse of {!encode_reply_cert}
    ([(fast, req_digest, response, cert)]); [None] on wrong magic, an
    unknown kind byte, truncation or trailing bytes. *)

val encode_link_frame : string Link.frame -> string
(** Byte-transport encoding of a reliable-link frame: magic ["SLF1"], a
    kind byte (RAW / DATA / ACK), then kind-specific u64 fields and
    payload bytes.  Deterministic: equal frames encode equally. *)

val decode_link_frame : string -> string Link.frame option
(** Strict total inverse of {!encode_link_frame}: [None] on a missing
    or wrong magic, an unknown kind, truncation or trailing bytes, a
    DATA sequence number below 1, or a non-canonical ACK selective set
    (entries must be strictly ascending and above the cumulative
    watermark). *)

val encode_refresh_pkg :
  Schnorr_group.params -> Proactive.refresh_package -> string
(** Epoch refresh-package frame (magic ["SEP1"]): the dealer, its
    zero-sharing subshares and the per-leaf commitment keys.  Exponents
    are fixed-width canonical big-endian; elements are fixed-width group
    members.  Raises [Invalid_argument] on negative indices. *)

val decode_refresh_pkg :
  Schnorr_group.params -> string -> Proactive.refresh_package option
(** Strict total inverse of {!encode_refresh_pkg}: [None] on wrong
    magic, truncation or trailing bytes, an exponent at or above the
    group order, or a key outside the subgroup. *)

val encode_reshare_pkg :
  Schnorr_group.params -> Proactive.reshare_package -> string
(** Membership-change reshare-package frame (magic ["SER1"]): the
    dealer, then per owned old leaf a fresh target-scheme sharing with
    its per-leaf keys, under the same field discipline as ["SEP1"]. *)

val decode_reshare_pkg :
  Schnorr_group.params -> string -> Proactive.reshare_package option
(** Strict total inverse of {!encode_reshare_pkg}. *)

val encode_epoch_adv :
  epoch:int ->
  target:(int * Monotone_formula.t) option ->
  pkgs:string list ->
  string
(** Epoch-advance statement body (magic ["SEA1"]): the epoch being
    opened, an optional target access structure ([n] and its monotone
    formula) for membership changes, and the agreed package frames as
    opaque length-prefixed blobs.  Its hash is what the advance
    certificate signs, so the frame is canonical byte for byte.  Raises
    [Invalid_argument] on a negative epoch, [n < 1] or a malformed
    formula gate. *)

val decode_epoch_adv :
  string -> (int * (int * Monotone_formula.t) option * string list) option
(** Strict total inverse of {!encode_epoch_adv}
    ([(epoch, target, pkgs)]); [None] on wrong magic, an unknown kind
    byte, a threshold gate with [k < 1] or [k] above its child count,
    truncation or trailing bytes. *)

val encode_epoch_cert : body:string -> cert:string -> string
(** Certified epoch advance (magic ["SEC1"]): the ["SEA1"] body paired
    with the serialized combined service signature over its hash — the
    self-certifying form carried through the total order and replayed to
    catching-up replicas. *)

val decode_epoch_cert : string -> (string * string) option
(** Strict total inverse of {!encode_epoch_cert} ([(body, cert)]);
    [None] on wrong magic, truncation or trailing bytes. *)
