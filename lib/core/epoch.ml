(* Online epoch reconfiguration: proactive refresh and replica
   replacement over the live atomic-broadcast stack.

   {!Proactive} supplies the cryptographic primitive (zero-resharing,
   cross-structure resharing); what was left open is the coordination
   problem the paper flags in Section 6 — agreeing on the epoch boundary
   in an asynchronous network so that every honest replica swaps shares
   at the same point.  This module closes it by running the boundary
   *through the total order the service already maintains*:

   1. Every participating replica deals one package over the wire as a
      strict {!Codec} frame (["SEP1"] refresh / ["SER1"] reshare) and
      broadcasts it.  A receiver accepts the first frame per dealer that
      passes [verify_refresh] / [verify_reshare] *and* whose claimed
      dealer is the authenticated sender; a dealer caught with two
      different valid frames (equivocation) or an invalid one is
      excluded.

   2. A replica holding verified packages from a dealer set that surely
      contains an honest party proposes the next epoch: the ["SEA1"]
      body fixing the epoch number, the optional target structure, and
      the exact package frames (sorted by dealer).  An endorser signs a
      threshold-signature share over the body's hash ONLY if every
      included frame is byte-identical to the one it received directly
      from that dealer — this is the safety hinge: a Byzantine proposer
      cannot attribute fabricated (known-randomness) packages to honest
      dealers, because no honest replica would countersign them, and
      the service threshold is unreachable without an honest signer.

   3. Combined shares yield the certified advance (["SEC1"] body +
      service signature), which is submitted through the atomic
      broadcast like any payload.  At total-order delivery every
      replica re-verifies the certificate and the packages and installs
      the next sharing — same public key, fresh shares — at the same
      log position, so in-flight agreement rounds never stall and
      everything signed before the boundary stays valid.

   Equivocation is contained rather than fatal: both frames of an
   equivocating dealer are valid zero-sharings, and only the one pinned
   by the certified body is ever applied, so exclusion is hygiene (and
   observable via the [refresh_excluded] counter), not a safety
   requirement.

   Membership changes ride the same path with a reshare target: the
   next sharing lives on a different access structure (a replica added
   by inclusion, removed by omission).  A replica that was down across
   boundaries catches up from the *advance chain*: each certified
   advance is self-certifying under the never-changing service key, so
   [Epoch_pull] / [Epoch_push] over raw transport replay it safely and
   deterministically — the rejoiner recomputes the current sharing from
   epoch zero without trusting the pusher. *)

module AS = Adversary_structure

type msg =
  | Rec of Recovery.msg  (** the wrapped recovery + atomic broadcast *)
  | Refresh of { epoch : int; frame : string }
      (** one dealer's ["SEP1"] / ["SER1"] package for [epoch] *)
  | Adv_prop of { body : string }  (** an ["SEA1"] advance proposal *)
  | Adv_share of { epoch : int; hash : string; share : Keyring.sig_share }
      (** endorsement share over an advance body's hash *)
  | Epoch_pull of { have : int }  (** chain catch-up request (raw) *)
  | Epoch_push of { certs : string list }  (** chain suffix (raw) *)

type intent = I_refresh | I_reshare of AS.t * Proactive.target

type t = {
  io : msg Proto_io.t;
  tag : string;
  epoch_retry : float;
  rng : Prng.t;
  rec_ : Recovery.t;
  mutable raw_to : int -> msg -> unit;
  mutable sharing : Dl_sharing.t;
  mutable epoch : int;
  mutable chain : string list;  (* certified advances, oldest first *)
  mutable intent : intent option;
  mutable own_frame : string;  (* our package for the open epoch *)
  received : (int, string) Hashtbl.t;  (* dealer -> first valid frame *)
  mutable excluded : Pset.t;  (* per-epoch exclusions *)
  mutable excluded_total : int;
  mutable proposed : string;  (* our proposal body, [""] if none *)
  shares : (string, (int * Keyring.sig_share) list) Hashtbl.t;
  bodies : (string, string) Hashtbl.t;  (* hash -> endorsed body *)
  mutable submitted : int;  (* highest epoch whose cert we submitted *)
  mutable pulling : bool;
  mutable on_advance : (epoch:int -> sharing:Dl_sharing.t -> unit) option;
}

let epoch_labels = [ ("layer", "epoch") ]

let bump t name =
  let obs = t.io.Proto_io.obs in
  if Obs.active obs then Obs.incr obs ~labels:epoch_labels name

let stmt t epoch hash =
  Ro.encode [ "epoch-adv"; t.tag; string_of_int epoch; hash ]

let group t = t.sharing.Dl_sharing.group
let recovery t = t.rec_
let submit t payload = Recovery.submit t.rec_ payload
let epoch t = t.epoch
let sharing t = t.sharing
let chain t = t.chain
let excluded t = t.excluded
let excluded_total t = t.excluded_total
let set_on_advance t f = t.on_advance <- Some f

(* ---------- package collection --------------------------------------- *)

(* Decode a package frame under the open epoch's intent and verify it
   as coming from [dealer]; the channel binding (claimed dealer =
   authenticated sender) is the caller's. *)
let valid_frame t it ~dealer frame =
  match it with
  | I_refresh -> (
    match Codec.decode_refresh_pkg (group t) frame with
    | Some pkg ->
      pkg.Proactive.dealer = dealer && Proactive.verify_refresh t.sharing pkg
    | None -> false)
  | I_reshare (_, tgt) -> (
    match Codec.decode_reshare_pkg (group t) frame with
    | Some pkg ->
      pkg.Proactive.r_dealer = dealer
      && Proactive.verify_reshare t.sharing tgt pkg
    | None -> false)

let exclude t dealer =
  if not (Pset.mem dealer t.excluded) then begin
    t.excluded <- Pset.add dealer t.excluded;
    t.excluded_total <- t.excluded_total + 1;
    Hashtbl.remove t.received dealer;
    (* Our standing proposal may carry the excluded dealer; retract it
       so the next [maybe_propose] emits one others can endorse. *)
    t.proposed <- "";
    bump t "refresh_excluded"
  end

let dealer_set t =
  Hashtbl.fold (fun d _ acc -> Pset.add d acc) t.received Pset.empty

(* A dealer set is proposable when it surely contains an honest party
   under the *current* sharing's structure (which after membership
   changes may differ from the keyring's), and — for a reshare — can
   actually recombine in the old scheme. *)
let proposable t it dealers =
  AS.contains_honest t.sharing.Dl_sharing.structure dealers
  &&
  match it with
  | I_refresh -> true
  | I_reshare _ ->
    Lsss.recombination t.sharing.Dl_sharing.scheme dealers <> None

let endorse t epoch body =
  let h = Sha256.digest body in
  if not (Hashtbl.mem t.bodies h) then begin
    Hashtbl.replace t.bodies h body;
    let share =
      Keyring.service_sign_share t.io.Proto_io.keyring
        ~party:t.io.Proto_io.me (stmt t epoch h)
    in
    t.io.Proto_io.broadcast (Adv_share { epoch; hash = h; share })
  end

let maybe_propose t =
  match t.intent with
  | None -> ()
  | Some it ->
    if t.proposed = "" then begin
      let dealers = dealer_set t in
      if proposable t it dealers then begin
        let epoch = t.epoch + 1 in
        let target =
          match it with
          | I_refresh -> None
          | I_reshare (s, _) -> Some (AS.n s, AS.access_formula s)
        in
        let pkgs =
          List.map
            (fun d -> Hashtbl.find t.received d)
            (List.sort compare (Pset.to_list dealers))
        in
        let body = Codec.encode_epoch_adv ~epoch ~target ~pkgs in
        t.proposed <- body;
        t.io.Proto_io.broadcast (Adv_prop { body });
        (* Our own endorsement; the broadcast also loops the proposal
           back to us, but endorsing here keeps it prompt under loss. *)
        endorse t epoch body
      end
    end

let on_refresh t ~src epoch frame =
  match t.intent with
  | Some it when epoch = t.epoch + 1 && not (Pset.mem src t.excluded) -> (
    match Hashtbl.find_opt t.received src with
    | Some f0 when f0 = frame -> ()  (* retry duplicate *)
    | Some _ ->
      (* A second, different frame from the same dealer: equivocation
         if it is also valid, garbage either way — exclude. *)
      exclude t src;
      maybe_propose t
    | None ->
      if valid_frame t it ~dealer:src frame then begin
        Hashtbl.replace t.received src frame;
        bump t "refresh_pkgs_verified";
        maybe_propose t
      end
      else exclude t src)
  | _ -> ()

(* ---------- proposals and endorsement -------------------------------- *)

let target_matches it target =
  match (it, target) with
  | I_refresh, None -> true
  | I_reshare (s, _), Some (n, f) ->
    n = AS.n s && f = AS.access_formula s
  | _ -> false

(* Endorsement check of a proposal's package list: dealers strictly
   ascending (canonical, duplicate-free), none excluded, and every
   frame byte-identical to the one received *directly* from its dealer.
   A frame differing from our direct copy while itself valid is
   equivocation evidence: exclude the dealer and refuse; the refreshed
   proposal without it converges.  A frame for a dealer we never heard
   from directly is refused too — countersigning it would launder the
   channel binding. *)
let check_frames t it frames =
  let dealer_of frame =
    match it with
    | I_refresh -> (
      match Codec.decode_refresh_pkg (group t) frame with
      | Some pkg -> Some pkg.Proactive.dealer
      | None -> None)
    | I_reshare _ -> (
      match Codec.decode_reshare_pkg (group t) frame with
      | Some pkg -> Some pkg.Proactive.r_dealer
      | None -> None)
  in
  let rec go prev acc = function
    | [] -> if Pset.card acc = 0 then `Refuse else `Endorse acc
    | frame :: rest -> (
      match dealer_of frame with
      | None -> `Refuse
      | Some d ->
        if d <= prev || Pset.mem d t.excluded then `Refuse
        else begin
          match Hashtbl.find_opt t.received d with
          | Some f0 when f0 = frame -> go d (Pset.add d acc) rest
          | Some _ ->
            if valid_frame t it ~dealer:d frame then exclude t d;
            `Refuse
          | None -> `Refuse
        end)
  in
  go (-1) Pset.empty frames

let on_prop t ~src:_ body =
  match t.intent with
  | None -> ()
  | Some it -> (
    match Codec.decode_epoch_adv body with
    | None -> ()
    | Some (epoch, target, frames) ->
      if epoch = t.epoch + 1 && target_matches it target then begin
        match check_frames t it frames with
        | `Refuse -> maybe_propose t
        | `Endorse dealers ->
          if proposable t it dealers then endorse t epoch body
      end)

let try_combine t epoch hash =
  if t.submitted < epoch then begin
    match Hashtbl.find_opt t.bodies hash with
    | None -> ()  (* shares ahead of the body; wait for the proposal *)
    | Some body -> (
      let kr = t.io.Proto_io.keyring in
      let entries =
        match Hashtbl.find_opt t.shares hash with Some l -> l | None -> []
      in
      match Keyring.service_combine kr (stmt t epoch hash)
              (List.map snd entries)
      with
      | None -> ()
      | Some s ->
        if Keyring.service_verify kr (stmt t epoch hash) s then begin
          let cert = Keyring.service_signature_to_bytes kr s in
          t.submitted <- epoch;
          submit t (Codec.encode_epoch_cert ~body ~cert)
        end)
  end

let on_share t ~src epoch hash share =
  if epoch = t.epoch + 1 then begin
    let kr = t.io.Proto_io.keyring in
    if Keyring.service_verify_share kr ~party:src (stmt t epoch hash) share
    then begin
      let entries =
        match Hashtbl.find_opt t.shares hash with Some l -> l | None -> []
      in
      if not (List.mem_assoc src entries) then
        Hashtbl.replace t.shares hash ((src, share) :: entries);
      try_combine t epoch hash
    end
  end

(* ---------- the boundary: certified advance in the total order ------- *)

(* Re-verify and apply an advance body against the current sharing.
   [None] when malformed or not certifiably honest content. *)
let apply_body t target frames =
  match target with
  | None -> (
    let pkgs =
      List.map (Codec.decode_refresh_pkg (group t)) frames
    in
    if List.exists (fun p -> p = None) pkgs then None
    else
      let pkgs = List.filter_map Fun.id pkgs in
      let rec ascending prev = function
        | [] -> true
        | (p : Proactive.refresh_package) :: rest ->
          p.Proactive.dealer > prev && ascending p.Proactive.dealer rest
      in
      if
        ascending (-1) pkgs
        && List.for_all (Proactive.verify_refresh t.sharing) pkgs
        && AS.contains_honest t.sharing.Dl_sharing.structure
             (List.fold_left
                (fun acc (p : Proactive.refresh_package) ->
                  Pset.add p.Proactive.dealer acc)
                Pset.empty pkgs)
      then Some (Proactive.apply_refreshes t.sharing pkgs)
      else None)
  | Some (n, formula) -> (
    match
      (try Some (AS.of_access_formula ~n formula) with _ -> None)
    with
    | None -> None
    | Some structure -> (
      let tgt = Proactive.target_of t.sharing structure in
      let pkgs =
        List.map (Codec.decode_reshare_pkg (group t)) frames
      in
      if List.exists (fun p -> p = None) pkgs then None
      else
        let pkgs = List.filter_map Fun.id pkgs in
        let rec ascending prev = function
          | [] -> true
          | (p : Proactive.reshare_package) :: rest ->
            p.Proactive.r_dealer > prev
            && ascending p.Proactive.r_dealer rest
        in
        if
          ascending (-1) pkgs
          && List.for_all (Proactive.verify_reshare t.sharing tgt) pkgs
          && AS.contains_honest t.sharing.Dl_sharing.structure
               (List.fold_left
                  (fun acc (p : Proactive.reshare_package) ->
                    Pset.add p.Proactive.r_dealer acc)
                  Pset.empty pkgs)
        then
          match Proactive.apply_reshares t.sharing tgt pkgs with
          | Ok sharing' -> Some sharing'
          | Error _ -> None
        else None))

let install t frame epoch sharing' =
  t.sharing <- sharing';
  t.epoch <- epoch;
  t.chain <- t.chain @ [ frame ];
  t.intent <- None;
  (* Any in-flight pull chain is now stale (its [have] no longer
     matches) and dies at its next firing; without this reset a pull
     satisfied by the total-order or replay path instead of a push
     would leave [pulling] latched and every later [start_pull] — gap
     detection, operator nudges — a silent no-op. *)
  t.pulling <- false;
  t.own_frame <- "";
  Hashtbl.reset t.received;
  t.excluded <- Pset.empty;
  t.proposed <- "";
  Hashtbl.reset t.shares;
  Hashtbl.reset t.bodies;
  bump t "epoch_advanced";
  match t.on_advance with
  | Some f -> f ~epoch ~sharing:sharing'
  | None -> ()

let rec pull_round t have =
  if t.pulling && t.epoch = have then begin
    let n = Proto_io.n t.io in
    for dst = 0 to n - 1 do
      if dst <> t.io.Proto_io.me then t.raw_to dst (Epoch_pull { have })
    done;
    match t.io.Proto_io.timer with
    | Some set -> set ~delay:t.epoch_retry (fun () -> pull_round t have)
    | None -> ()
  end

let start_pull t =
  if not t.pulling then begin
    t.pulling <- true;
    pull_round t t.epoch
  end

(* A certified advance, from the total order or from a pushed chain.
   Verification is complete in either case (certificate under the fixed
   service key, packages against the deterministically recomputed
   current sharing), so both paths install the identical sharing. *)
let try_install_cert t frame =
  match Codec.decode_epoch_cert frame with
  | None -> ()
  | Some (body, certb) -> (
    match Codec.decode_epoch_adv body with
    | None -> ()
    | Some (epoch, target, frames) ->
      if epoch = t.epoch + 1 then begin
        let kr = t.io.Proto_io.keyring in
        let h = Sha256.digest body in
        match Keyring.service_signature_of_bytes kr certb with
        | None -> ()
        | Some s ->
          if Keyring.service_verify kr (stmt t epoch h) s then begin
            match apply_body t target frames with
            | Some sharing' -> install t frame epoch sharing'
            | None -> ()
          end
      end
      else if epoch > t.epoch + 1 then
        (* A gap: we were offline across a boundary.  The chain is the
           recovery path. *)
        start_pull t)

let on_pull t ~src have =
  let n = Proto_io.n t.io in
  if src >= 0 && src < n && src <> t.io.Proto_io.me && have < t.epoch
  then begin
    let rec drop k l =
      if k <= 0 then l else match l with [] -> [] | _ :: r -> drop (k - 1) r
    in
    let certs = drop have t.chain in
    if certs <> [] then t.raw_to src (Epoch_push { certs })
  end

let on_push t ~src:_ certs =
  List.iter (fun frame -> try_install_cert t frame) certs

(* ---------- opening an epoch ----------------------------------------- *)

let rec retry_round t epoch =
  if t.epoch < epoch && t.intent <> None then begin
    if t.own_frame <> "" then
      t.io.Proto_io.broadcast (Refresh { epoch; frame = t.own_frame });
    if t.proposed <> "" then
      t.io.Proto_io.broadcast (Adv_prop { body = t.proposed });
    match t.io.Proto_io.timer with
    | Some set -> set ~delay:t.epoch_retry (fun () -> retry_round t epoch)
    | None -> ()
  end

let begin_epoch t it =
  t.intent <- Some it;
  let epoch = t.epoch + 1 in
  let me = t.io.Proto_io.me in
  (* A replica holding no shares (it is being added) contributes no
     package; it still collects, endorses and installs. *)
  if Dl_sharing.shares_of t.sharing me <> [] then begin
    let frame =
      match it with
      | I_refresh ->
        Codec.encode_refresh_pkg (group t)
          (Proactive.make_refresh t.sharing ~dealer:me t.rng)
      | I_reshare (_, tgt) ->
        Codec.encode_reshare_pkg (group t)
          (Proactive.make_reshare t.sharing tgt ~dealer:me t.rng)
    in
    t.own_frame <- frame;
    t.io.Proto_io.broadcast (Refresh { epoch; frame })
  end;
  match t.io.Proto_io.timer with
  | Some set -> set ~delay:t.epoch_retry (fun () -> retry_round t epoch)
  | None -> ()

let begin_refresh t = begin_epoch t I_refresh

let begin_reshare t structure =
  begin_epoch t (I_reshare (structure, Proactive.target_of t.sharing structure))

(* ---------- dispatch -------------------------------------------------- *)

let handle t ~src m =
  match m with
  | Rec m -> Recovery.handle t.rec_ ~src m
  | Refresh { epoch; frame } -> on_refresh t ~src epoch frame
  | Adv_prop { body } -> on_prop t ~src body
  | Adv_share { epoch; hash; share } -> on_share t ~src epoch hash share
  | Epoch_pull { have } -> on_pull t ~src have
  | Epoch_push { certs } -> on_push t ~src certs

let msg_size keyring = function
  | Rec m -> Recovery.msg_size keyring m
  | Refresh { frame; _ } -> 8 + String.length frame
  | Adv_prop { body } -> String.length body
  | Adv_share { hash; _ } -> 8 + String.length hash + 128
  | Epoch_pull _ -> 8
  | Epoch_push { certs } ->
    List.fold_left (fun a c -> a + String.length c + 8) 8 certs

let msg_summary = function
  | Rec m -> "rec:" ^ Recovery.msg_summary m
  | Refresh { epoch; _ } -> Printf.sprintf "refresh e%d" epoch
  | Adv_prop _ -> "adv-prop"
  | Adv_share { epoch; _ } -> Printf.sprintf "adv-share e%d" epoch
  | Epoch_pull { have } -> Printf.sprintf "epoch-pull e%d" have
  | Epoch_push { certs } -> Printf.sprintf "epoch-push |%d|" (List.length certs)

(* ---------- deployment glue ------------------------------------------ *)

type deployment = {
  d_sim : msg Link.frame Sim.t;
  d_keyring : Keyring.t;
  d_sharing : Dl_sharing.t;  (* the epoch-0 service sharing *)
  d_policy : Abc.policy option;
  d_link : Link.policy option;
  d_interval : int;
  d_retry : float;
  d_epoch_retry : float;
  d_app_state : (unit -> string) option;
  d_seed : int;
  d_tag : string;
  d_deliver : int -> string -> unit;
  d_wrap : (int -> msg Sim.handler -> msg Sim.handler) option;
  d_nodes : t array;
}

let nodes d = d.d_nodes

let is_advance payload =
  String.length payload >= 4 && String.sub payload 0 4 = "SEC1"

(* Instantiate and wire one party, mirroring [Recovery.wire]'s two arms
   (link-off Raw passthrough / link-on ARQ endpoint).  The wrapped
   recovery node delivers through the epoch interceptor: certified
   advances install the next sharing at their total-order position,
   everything else reaches the application. *)
let wire d ~wrapped me =
  let sim = d.d_sim and keyring = d.d_keyring in
  let timer ~delay cb = Sim.set_timer sim me ~delay cb in
  let make_io ~send ~broadcast =
    Proto_io.make ~obs:(Sim.obs sim) ~layer:"epoch"
      ~bytes:(msg_size keyring) ~timer ~me ~keyring ~send ~broadcast ()
  in
  let make_node io ~raw ~link =
    let tref = ref None in
    let rec_io =
      Proto_io.embed io ~layer:"recov"
        ~bytes:(Recovery.msg_size keyring)
        ~wrap:(fun m -> Rec m)
    in
    let rec_ =
      Recovery.create ?policy:d.d_policy ~interval:d.d_interval
        ~retry:d.d_retry ?app_state:d.d_app_state ~io:rec_io ~tag:d.d_tag
        ~deliver:(fun p ->
          if is_advance p then
            match !tref with
            | Some t -> try_install_cert t p
            | None -> ()
          else d.d_deliver me p)
        ()
    in
    Recovery.set_transport rec_ ~raw:(fun dst m -> raw dst (Rec m)) ~link;
    let t =
      {
        io;
        tag = d.d_tag;
        epoch_retry = d.d_epoch_retry;
        rng = Prng.create ~seed:(d.d_seed + (7919 * me) + 13);
        rec_;
        raw_to = raw;
        sharing = d.d_sharing;
        epoch = 0;
        chain = [];
        intent = None;
        own_frame = "";
        received = Hashtbl.create 7;
        excluded = Pset.empty;
        excluded_total = 0;
        proposed = "";
        shares = Hashtbl.create 7;
        bodies = Hashtbl.create 7;
        submitted = 0;
        pulling = false;
        on_advance = None;
      }
    in
    tref := Some t;
    t
  in
  match d.d_link with
  | None ->
    let raw dst m = Sim.send sim ~src:me ~dst (Link.Raw m) in
    let io =
      make_io ~send:raw
        ~broadcast:(fun m -> Sim.broadcast sim ~src:me (Link.Raw m))
    in
    let node = make_node io ~raw ~link:None in
    let honest ~src m = handle node ~src m in
    let h =
      match d.d_wrap with Some w when wrapped -> w me honest | _ -> honest
    in
    Sim.set_handler sim me (fun ~src frame ->
        match frame with
        | Link.Raw m | Link.Data { payload = m; _ } -> h ~src m
        | Link.Ack _ -> ());
    node
  | Some lp ->
    let n = Sim.n sim in
    let ep =
      Link.create ~obs:(Sim.obs sim) ~policy:lp ~me ~n
        ~raw_send:(fun dst frame -> Sim.send sim ~src:me ~dst frame)
        ~timer
        ~deliver:(fun ~src:_ _ -> ())
        ()
    in
    let raw dst m = Sim.send sim ~src:me ~dst (Link.Raw m) in
    let io =
      make_io
        ~send:(fun dst m -> Link.send ep dst m)
        ~broadcast:(fun m -> Link.broadcast ep m)
    in
    let node = make_node io ~raw ~link:(Some ep) in
    let honest ~src m = handle node ~src m in
    let h =
      match d.d_wrap with Some w when wrapped -> w me honest | _ -> honest
    in
    Link.set_deliver ep (fun ~src m -> h ~src m);
    Sim.set_handler sim me (fun ~src frame -> Link.handle ep ~src frame);
    node

let deploy ?wrap ?policy ?link ?(interval = 8) ?(retry = 350.)
    ?(epoch_retry = 400.) ?app_state ?(seed = 0) ~sim ~keyring ~sharing
    ~tag ~deliver () =
  let d =
    {
      d_sim = sim;
      d_keyring = keyring;
      d_sharing = sharing;
      d_policy = policy;
      d_link = link;
      d_interval = interval;
      d_retry = retry;
      d_epoch_retry = epoch_retry;
      d_app_state = app_state;
      d_seed = seed;
      d_tag = tag;
      d_deliver = deliver;
      d_wrap = wrap;
      d_nodes = [||];
    }
  in
  let nodes = Array.init (Sim.n sim) (fun me -> wire d ~wrapped:true me) in
  let d = { d with d_nodes = nodes } in
  Sim.set_stall_probe sim (fun () ->
      Stack.abc_stall_summary
        (Array.map (fun nd -> Recovery.abc nd.rec_) d.d_nodes));
  d

(* Kill-and-replace support: the revived party restarts with the
   epoch-0 sharing and recomputes the present one by replaying the
   self-certifying advance chain (pull), while the recovery layer
   transfers the ordered state.  Replayed log suffixes re-deliver
   certified advances; installs are idempotent (epoch <= current is
   ignored), so both paths compose. *)
let revive d party =
  Sim.recover d.d_sim party;
  let node = wire d ~wrapped:false party in
  d.d_nodes.(party) <- node;
  Recovery.start_catch_up node.rec_;
  start_pull node;
  node
