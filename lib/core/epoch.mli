(** Online epoch reconfiguration over the live stack: proactive share
    refresh and membership change (replica add/remove) agreed through
    the service's own total order.

    Replicas broadcast verifiable {!Proactive} packages as strict codec
    frames, countersign an advance body listing the exact frames they
    received first-hand (a Byzantine proposer cannot attribute
    fabricated packages to honest dealers), and carry the certified
    advance through the atomic broadcast.  Every replica installs the
    next sharing — same public key, fresh shares — at the same log
    position, so in-flight agreement rounds never stall and pre-boundary
    artifacts stay valid while pre-boundary shares become useless.

    A replica that was down across boundaries replays the
    self-certifying advance chain ([Epoch_pull] / [Epoch_push]) and
    recomputes the current sharing deterministically from epoch zero,
    composing with the recovery layer's ordered-state transfer. *)

type msg =
  | Rec of Recovery.msg  (** the wrapped recovery + atomic broadcast *)
  | Refresh of { epoch : int; frame : string }
      (** one dealer's ["SEP1"] / ["SER1"] package for [epoch] *)
  | Adv_prop of { body : string }  (** an ["SEA1"] advance proposal *)
  | Adv_share of { epoch : int; hash : string; share : Keyring.sig_share }
      (** endorsement share over an advance body's hash *)
  | Epoch_pull of { have : int }  (** chain catch-up request (raw) *)
  | Epoch_push of { certs : string list }  (** chain suffix (raw) *)

type t

val handle : t -> src:int -> msg -> unit
val recovery : t -> Recovery.t

val submit : t -> string -> unit
(** Client payload into the wrapped atomic broadcast. *)

val epoch : t -> int
(** Epochs installed here (0 = the dealt sharing). *)

val sharing : t -> Dl_sharing.t
(** The current epoch's service sharing. *)

val chain : t -> string list
(** Certified advances installed so far, oldest first. *)

val excluded : t -> Pset.t
(** Dealers excluded in the currently open epoch. *)

val excluded_total : t -> int
(** Dealers excluded since this node started (equivocation or invalid
    packages). *)

val set_on_advance : t -> (epoch:int -> sharing:Dl_sharing.t -> unit) -> unit

val begin_refresh : t -> unit
(** Open the next epoch as a proactive refresh: deal and broadcast this
    replica's zero-sharing and start collecting/endorsing. *)

val begin_reshare : t -> Adversary_structure.t -> unit
(** Open the next epoch as a membership change toward [structure]; a
    replica holding no current shares (it is being added) contributes
    no package but still endorses and installs. *)

val start_pull : t -> unit
(** Ask peers for the advance-chain suffix (raw transport, retried). *)

val msg_size : Keyring.t -> msg -> int
val msg_summary : msg -> string

(** {2 Simulator deployment} *)

type deployment

val deploy :
  ?wrap:(int -> msg Sim.handler -> msg Sim.handler) ->
  ?policy:Abc.policy ->
  ?link:Link.policy ->
  ?interval:int ->
  ?retry:float ->
  ?epoch_retry:float ->
  ?app_state:(unit -> string) ->
  ?seed:int ->
  sim:msg Link.frame Sim.t ->
  keyring:Keyring.t ->
  sharing:Dl_sharing.t ->
  tag:string ->
  deliver:(int -> string -> unit) ->
  unit ->
  deployment
(** One node per simulator party, mirroring {!Recovery.deploy}:
    [interval]/[retry] configure the wrapped checkpointing,
    [epoch_retry] the package/proposal rebroadcast and chain-pull
    period, [seed] the per-node dealing randomness.  [deliver] receives
    application payloads only — certified advances are consumed at
    their total-order position. *)

val nodes : deployment -> t array

val revive : deployment -> int -> t
(** Kill-and-replace: restart [party] with fresh state; the recovery
    layer transfers the ordered state while the epoch layer replays the
    advance chain.  The replacement is honest (a Byzantine [wrap] stays
    with the dead incarnation). *)
