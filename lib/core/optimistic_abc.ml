(* Optimistic atomic broadcast (paper, Section 6, "Optimistic
   Protocols"; after Kursawe & Shoup, "Optimistic asynchronous atomic
   broadcast").

   Fast path: a fixed sequencer orders payloads by consistent broadcast,
   one instance per sequence number — O(n) messages per payload and no
   heavyweight agreement.  Every party broadcasts *cumulative*
   acknowledgements ("my contiguous c-delivered prefix reaches s"), and a
   payload is delivered once a big-quorum acknowledgement certificate for
   its prefix exists.

   Fallback: parties that see no progress while work is pending complain
   (a quorum-certificate share, amplified like a Bracha READY); once the
   complainers form a two-cover set, everyone switches: each party signs
   a STATE message carrying its delivered prefix d and the prefix's
   acknowledgement certificate, a big-quorum of states is proposed to one
   validated Byzantine agreement, and the decided maximum D becomes the
   final length of the fast path.  Because fast delivery of s needs a
   big-quorum of *cumulative* acks, any honest-delivered s is reflected
   in at least one honest state of every big-quorum, so D covers every
   honest delivery — switching can never roll back.  Missing payloads
   up to D are fetched with their transferable consistent-broadcast
   certificates.  Everything else is re-ordered by the randomized atomic
   broadcast, which is live under any schedule.

   Timing only affects liveness of the fast path: the complaint trigger
   is a virtual-time timer (or, without a timer hook, a count of handled
   messages); safety is completely independent of it — exactly the
   optimistic-protocol design point of Section 6 ("one has to make sure
   that safety is never violated"). *)

module AS = Adversary_structure

type state_report = {
  st_party : int;
  st_prefix : int;  (* delivered fast-path prefix: seqs 0..st_prefix-1 *)
  st_cert : Keyring.cert option;  (* ack certificate, None iff prefix = 0 *)
  st_sig : Schnorr_sig.signature;
}

type msg =
  | Submit of string  (* payload relay *)
  | Seq_cbc of int * Cbc.msg  (* sequencer's CBC for one slot *)
  | Ack of int * Keyring.cert_share  (* cumulative prefix acknowledgement *)
  | Complain of Keyring.cert_share
  | State of state_report
  | Recovery_vba of Vba.msg
  | Fetch of int
  | Fetch_reply of int * string * Keyring.cert
  | Fallback_abc of Abc.msg

type mode = Fast | Switching | Fallback

type t = {
  io : msg Proto_io.t;
  tag : string;
  sequencer : int;
  patience : int;
  set_timer : (delay:float -> (unit -> unit) -> unit) option;
  timeout : float;
  abc_policy : Abc.policy option;  (* batching policy of the fallback *)
  deliver : string -> unit;
  (* fast path *)
  cbcs : (int, Cbc.t) Hashtbl.t;  (* seq -> instance *)
  cdelivered : (int, string * Keyring.cert) Hashtbl.t;
  mutable acked_prefix : int;  (* largest cumulative ack we sent *)
  ack_shares : (int, (int * Keyring.cert_share) list ref) Hashtbl.t;
  ack_certs : (int, Keyring.cert) Hashtbl.t;
  mutable fast_delivered : int;  (* delivered seqs 0..fast_delivered-1 *)
  mutable next_seq : int;  (* sequencer: next slot *)
  (* submissions *)
  mutable pending : string list;
  delivered_digests : (string, unit) Hashtbl.t;
  mutable delivered_log : string list;
  (* complaint / switch *)
  mutable mode : mode;
  mutable complained : bool;
  mutable complain_shares : (int * Keyring.cert_share) list;
  mutable idle_ticks : int;
  mutable timer_armed : bool;
  mutable progress_epoch : int;
  (* recovery *)
  mutable states : state_report list;
  mutable vba : Vba.t option;
  mutable final_prefix : int option;
  mutable fetched : (int * string * Keyring.cert) list;
  (* fallback *)
  mutable abc : Abc.t option;
}

let digest = Sha256.digest
let ack_stmt t s = Ro.encode [ "opt-ack"; t.tag; string_of_int s ]
let complain_stmt t = Ro.encode [ "opt-complain"; t.tag ]
let state_stmt t d = Ro.encode [ "opt-state"; t.tag; string_of_int d ]
let cbc_tag t seq = t.tag ^ "/slot/" ^ string_of_int seq

let mode t = t.mode
let fast_delivered_count t = t.fast_delivered

(* ---------- construction -------------------------------------------- *)

let rec create ~(io : msg Proto_io.t) ~tag ?(sequencer = 0) ?(patience = 200)
    ?set_timer ?(timeout = 1500.0) ?abc_policy ~deliver () : t =
  { io;
    tag;
    sequencer;
    patience;
    set_timer;
    timeout;
    abc_policy;
    deliver;
    cbcs = Hashtbl.create 8;
    cdelivered = Hashtbl.create 8;
    acked_prefix = 0;
    ack_shares = Hashtbl.create 8;
    ack_certs = Hashtbl.create 8;
    fast_delivered = 0;
    next_seq = 0;
    pending = [];
    delivered_digests = Hashtbl.create 16;
    delivered_log = [];
    mode = Fast;
    complained = false;
    complain_shares = [];
    idle_ticks = 0;
    timer_armed = false;
    progress_epoch = 0;
    states = [];
    vba = None;
    final_prefix = None;
    fetched = [];
    abc = None }

and cbc_of t seq : Cbc.t =
  match Hashtbl.find_opt t.cbcs seq with
  | Some c -> c
  | None ->
    let c =
      Cbc.create
        ~io:
          (Proto_io.embed ~layer:"cbc"
             ~bytes:(Cbc.msg_size t.io.Proto_io.keyring) t.io
             ~wrap:(fun m -> Seq_cbc (seq, m)))
        ~tag:(cbc_tag t seq) ~sender:t.sequencer
        ~deliver:(fun payload cert -> on_cdeliver t seq payload cert)
        ()
    in
    Hashtbl.add t.cbcs seq c;
    c

and on_cdeliver t seq payload cert =
  if not (Hashtbl.mem t.cdelivered seq) then begin
    Hashtbl.replace t.cdelivered seq (payload, cert);
    advance_acks t;
    (* the certificate may have formed before this slot's payload *)
    try_fast_delivery t
  end

(* Cumulative acknowledgement: extend as far as the contiguous
   c-delivered prefix reaches. *)
and advance_acks t =
  if t.mode = Fast then begin
    let rec reach s = if Hashtbl.mem t.cdelivered s then reach (s + 1) else s in
    let prefix = reach 0 in
    (* one share per prefix value, so certificates form for every s *)
    while t.acked_prefix < prefix do
      t.acked_prefix <- t.acked_prefix + 1;
      let share =
        Keyring.cert_share t.io.Proto_io.keyring ~party:t.io.Proto_io.me
          (ack_stmt t t.acked_prefix)
      in
      t.io.Proto_io.broadcast (Ack (t.acked_prefix, share))
    done
  end

and ack_shares_of t s =
  match Hashtbl.find_opt t.ack_shares s with
  | Some l -> l
  | None ->
    let l = ref [] in
    Hashtbl.add t.ack_shares s l;
    l

and try_fast_delivery t =
  if t.mode = Fast then begin
    (* deliver every seq below the largest certified prefix *)
    let best =
      Hashtbl.fold (fun s _ acc -> max s acc) t.ack_certs t.fast_delivered
    in
    while
      t.fast_delivered < best && Hashtbl.mem t.cdelivered t.fast_delivered
    do
      let payload, _ = Hashtbl.find t.cdelivered t.fast_delivered in
      t.fast_delivered <- t.fast_delivered + 1;
      t.idle_ticks <- 0;
      t.progress_epoch <- t.progress_epoch + 1;
      output t payload
    done
  end

and output t payload =
  let d = digest payload in
  if not (Hashtbl.mem t.delivered_digests d) then begin
    Hashtbl.replace t.delivered_digests d ();
    t.delivered_log <- payload :: t.delivered_log;
    t.pending <- List.filter (fun p -> digest p <> d) t.pending;
    t.deliver payload
  end

(* ---------- complaints and switching -------------------------------- *)

and send_complaint t =
  if not t.complained then begin
    t.complained <- true;
    let share =
      Keyring.cert_share t.io.Proto_io.keyring ~party:t.io.Proto_io.me
        (complain_stmt t)
    in
    t.io.Proto_io.broadcast (Complain share)
  end

and maybe_switch t =
  let complainers =
    List.fold_left (fun acc (p, _) -> Pset.add p acc) Pset.empty
      t.complain_shares
  in
  if AS.contains_honest (Proto_io.structure t.io) complainers then
    send_complaint t;
  if t.mode = Fast && AS.two_cover (Proto_io.structure t.io) complainers
  then begin
    t.mode <- Switching;
    (* Report the largest *certified* prefix we know (it dominates our own
       deliveries, which never outrun the certificates). *)
    let d = Hashtbl.fold (fun s _ acc -> max s acc) t.ack_certs 0 in
    let cert = Hashtbl.find_opt t.ack_certs d in
    let report =
      { st_party = t.io.Proto_io.me;
        st_prefix = d;
        st_cert = cert;
        st_sig =
          Keyring.sign t.io.Proto_io.keyring ~party:t.io.Proto_io.me
            (state_stmt t d) }
    in
    t.io.Proto_io.broadcast (State report)
  end

and state_valid t (r : state_report) : bool =
  r.st_party >= 0
  && r.st_party < Proto_io.n t.io
  && Keyring.verify_party_signature t.io.Proto_io.keyring ~party:r.st_party
       (state_stmt t r.st_prefix) r.st_sig
  &&
  match (r.st_prefix, r.st_cert) with
  | 0, None -> true
  | d, Some cert when d > 0 ->
    Keyring.verify_cert t.io.Proto_io.keyring (ack_stmt t d) cert
  | _, (Some _ | None) -> false

and proposal_of_states t (reports : state_report list) : string =
  Codec.encode
    (List.concat_map
       (fun r ->
         [ string_of_int r.st_party;
           string_of_int r.st_prefix;
           Schnorr_sig.to_bytes t.io.Proto_io.keyring.Keyring.group r.st_sig ])
       reports)

and decode_proposal t (s : string) : (int * int * Schnorr_sig.signature) list option =
  match Codec.decode s with
  | None -> None
  | Some parts ->
    let rec go acc = function
      | [] -> Some (List.rev acc)
      | party :: prefix :: sg :: rest ->
        (match
           ( int_of_string_opt party,
             int_of_string_opt prefix,
             Schnorr_sig.of_bytes t.io.Proto_io.keyring.Keyring.group sg )
         with
        | Some p, Some d, Some sg -> go ((p, d, sg) :: acc) rest
        | _, _, _ -> None)
      | _ :: _ -> None
    in
    go [] parts

(* External validity for the recovery agreement: a big-quorum of distinct
   parties, each with a valid signature on its claimed prefix.  The
   certificates themselves travel in the STATE messages; the signature
   pins the claim, and the decided prefix is the maximum claim — safety
   only needs the maximum to be at least every honest delivery, which
   holds because honest parties sign their true prefix and any big quorum
   contains an honest member of every delivery quorum. *)
and proposal_valid t (value : string) : bool =
  match decode_proposal t value with
  | None -> false
  | Some entries ->
    List.for_all (fun (p, _, _) -> p >= 0 && p < Proto_io.n t.io) entries
    &&
    let parties =
      List.fold_left (fun acc (p, _, _) -> Pset.add p acc) Pset.empty entries
    in
    List.length entries = Pset.card parties
    && Proto_io.big_quorum t.io parties
    && List.for_all
         (fun (p, d, sg) ->
           d >= 0
           && Keyring.verify_party_signature t.io.Proto_io.keyring ~party:p
                (state_stmt t d) sg)
         entries

and vba_of t : Vba.t =
  match t.vba with
  | Some v -> v
  | None ->
    let v =
      Vba.create
        ~io:
          (Proto_io.embed ~layer:"vba"
             ~bytes:(Vba.msg_size t.io.Proto_io.keyring) t.io
             ~wrap:(fun m -> Recovery_vba m))
        ~tag:(t.tag ^ "/recovery")
        ~validate:(fun value -> proposal_valid t value)
        ~on_decide:(fun ~winner:_ value -> on_recovery_decision t value)
        ()
    in
    t.vba <- Some v;
    v

and try_propose_recovery t =
  if t.mode = Switching then begin
    let valid = List.filter (state_valid t) t.states in
    let parties =
      List.fold_left (fun acc r -> Pset.add r.st_party acc) Pset.empty valid
    in
    if Proto_io.big_quorum t.io parties then begin
      (* keep one report per party *)
      let dedup =
        List.fold_left
          (fun acc r -> if List.exists (fun r' -> r'.st_party = r.st_party) acc then acc else r :: acc)
          [] valid
      in
      Vba.propose (vba_of t) (proposal_of_states t dedup)
    end
  end

and on_recovery_decision t value =
  if t.final_prefix = None then begin
    match decode_proposal t value with
    | None -> ()
    | Some entries ->
      let final = List.fold_left (fun acc (_, d, _) -> max acc d) 0 entries in
      t.final_prefix <- Some final;
      finish_fast_path t
  end

(* Deliver the agreed fast-path prefix (fetching missing payloads), then
   hand everything still pending to the randomized fallback. *)
and finish_fast_path t =
  match t.final_prefix with
  | None -> ()
  | Some final ->
    let missing = ref [] in
    for s = t.fast_delivered to final - 1 do
      if not (Hashtbl.mem t.cdelivered s) then
        match List.find_opt (fun (s', _, _) -> s' = s) t.fetched with
        | Some (_, payload, cert) -> Hashtbl.replace t.cdelivered s (payload, cert)
        | None -> missing := s :: !missing
    done;
    if !missing <> [] then
      List.iter (fun s -> t.io.Proto_io.broadcast (Fetch s)) !missing
    else begin
      while t.fast_delivered < final do
        let payload, _ = Hashtbl.find t.cdelivered t.fast_delivered in
        t.fast_delivered <- t.fast_delivered + 1;
        output t payload
      done;
      t.mode <- Fallback;
      let abc = fallback_abc t in
      (* everything not delivered by the fast path is re-ordered *)
      List.iter (fun p -> Abc.broadcast abc p) t.pending;
      Hashtbl.iter
        (fun s (payload, _) ->
          if s >= final && not (Hashtbl.mem t.delivered_digests (digest payload))
          then Abc.broadcast abc payload)
        t.cdelivered
    end

and fallback_abc t : Abc.t =
  match t.abc with
  | Some a -> a
  | None ->
    let a =
      Abc.create ?policy:t.abc_policy
        ~io:
          (Proto_io.embed ~layer:"abc"
             ~bytes:(Abc.msg_size t.io.Proto_io.keyring) t.io
             ~wrap:(fun m -> Fallback_abc m))
        ~tag:(t.tag ^ "/fallback")
        ~deliver:(fun payload -> output t payload)
        ()
    in
    t.abc <- Some a;
    a

(* ---------- progress heuristics ------------------------------------- *)

(* Complaint triggers — purely liveness heuristics; safety never depends
   on them.  With a timer hook (the normal deployment), a party that has
   pending work and sees no fast-path progress for [timeout] units of
   virtual time complains; without one, a count of handled messages is
   used as a crude substitute. *)
and tick t =
  if t.mode = Fast && t.pending <> [] then begin
    t.idle_ticks <- t.idle_ticks + 1;
    if t.idle_ticks > t.patience then send_complaint t
  end

and arm_timer t =
  match t.set_timer with
  | None -> ()
  | Some set_timer ->
    if (not t.timer_armed) && t.mode = Fast && t.pending <> [] then begin
      t.timer_armed <- true;
      let epoch = t.progress_epoch in
      set_timer ~delay:t.timeout (fun () ->
          t.timer_armed <- false;
          if t.mode = Fast && t.pending <> [] then begin
            if t.progress_epoch = epoch then send_complaint t;
            arm_timer t
          end)
    end

(* ---------- API ------------------------------------------------------ *)

let broadcast t payload =
  let d = digest payload in
  if
    (not (Hashtbl.mem t.delivered_digests d))
    && not (List.exists (fun p -> digest p = d) t.pending)
  then begin
    t.pending <- payload :: t.pending;
    (match t.mode with
    | Fast | Switching -> t.io.Proto_io.broadcast (Submit payload)
    | Fallback -> Abc.broadcast (fallback_abc t) payload);
    arm_timer t
  end

let handle t ~src msg =
  tick t;
  match msg with
  | Submit payload ->
    let d = digest payload in
    if
      (not (Hashtbl.mem t.delivered_digests d))
      && not (List.exists (fun p -> digest p = d) t.pending)
    then begin
      t.pending <- payload :: t.pending;
      arm_timer t
    end;
    (* the sequencer assigns the next slot *)
    if
      t.io.Proto_io.me = t.sequencer
      && t.mode = Fast
      && not (Hashtbl.mem t.delivered_digests d)
      &&
      (* not already sequenced *)
      not
        (Hashtbl.fold
           (fun _ (p, _) acc -> acc || digest p = d)
           t.cdelivered false)
    then begin
      let seq = t.next_seq in
      t.next_seq <- seq + 1;
      Cbc.broadcast (cbc_of t seq) payload
    end
  | Seq_cbc (seq, m) ->
    if seq >= 0 && seq < 100_000 && t.mode <> Fallback then
      Cbc.handle (cbc_of t seq) ~src m
  | Ack (s, share) ->
    if s > 0 && t.mode = Fast then begin
      let shares = ack_shares_of t s in
      if
        (not (List.mem_assoc src !shares))
        && Keyring.verify_cert_share t.io.Proto_io.keyring ~party:src
             (ack_stmt t s) share
      then begin
        shares := (src, share) :: !shares;
        if not (Hashtbl.mem t.ack_certs s) then begin
          match Keyring.make_cert t.io.Proto_io.keyring (ack_stmt t s) !shares with
          | Some cert ->
            Hashtbl.replace t.ack_certs s cert;
            try_fast_delivery t
          | None -> ()
        end
      end
    end
  | Complain share ->
    if
      (not (List.mem_assoc src t.complain_shares))
      && Keyring.verify_cert_share t.io.Proto_io.keyring ~party:src
           (complain_stmt t) share
    then begin
      t.complain_shares <- (src, share) :: t.complain_shares;
      maybe_switch t
    end
  | State report ->
    if
      (not (List.exists (fun r -> r.st_party = report.st_party) t.states))
      && state_valid t report
    then begin
      t.states <- report :: t.states;
      try_propose_recovery t
    end
  | Recovery_vba m ->
    Vba.handle (vba_of t) ~src m
  | Fetch s ->
    (match Hashtbl.find_opt t.cdelivered s with
    | Some (payload, cert) ->
      t.io.Proto_io.send src (Fetch_reply (s, payload, cert))
    | None -> ())
  | Fetch_reply (s, payload, cert) ->
    if
      (not (List.exists (fun (s', _, _) -> s' = s) t.fetched))
      && Cbc.check_transferred ~keyring:t.io.Proto_io.keyring
           ~tag:(cbc_tag t s) ~sender:t.sequencer payload cert
    then begin
      t.fetched <- (s, payload, cert) :: t.fetched;
      finish_fast_path t
    end
  | Fallback_abc m ->
    (match t.mode with
    | Fallback -> Abc.handle (fallback_abc t) ~src m
    | Fast | Switching ->
      (* fallback traffic from parties that switched earlier: join in *)
      Abc.handle (fallback_abc t) ~src m)

let delivered_log t = List.rev t.delivered_log
let pending t = t.pending

let msg_size kr = function
  | Submit p -> 8 + String.length p
  | Seq_cbc (_, m) -> 8 + Cbc.msg_size kr m
  | Ack _ -> 80
  | Complain _ -> 80
  | State r ->
    100 + (match r.st_cert with None -> 0 | Some c -> Keyring.cert_size kr c)
  | Recovery_vba m -> 8 + Vba.msg_size kr m
  | Fetch _ -> 16
  | Fetch_reply (_, p, c) -> 16 + String.length p + Keyring.cert_size kr c
  | Fallback_abc m -> 8 + Abc.msg_size kr m
