(** Optimistic atomic broadcast (paper, Section 6; after Kursawe–Shoup):
    a sequencer-driven fast path ordering payloads by consistent
    broadcast with cumulative acknowledgement certificates — O(n)
    messages per payload, no heavyweight agreement — plus a complaint-
    triggered switch that agrees (one validated Byzantine agreement) on
    the final fast-path prefix and hands everything else to the
    randomized atomic broadcast.

    Safety never depends on timing: fast delivery of sequence s needs a
    big-quorum certificate over *cumulative* acknowledgements, so the
    agreed cut-over prefix always covers every honest delivery.  The
    complaint trigger is a message-count heuristic ([patience]); a slow
    or corrupted sequencer costs liveness of the fast path only. *)

type state_report = {
  st_party : int;
  st_prefix : int;
  st_cert : Keyring.cert option;
  st_sig : Schnorr_sig.signature;
}

type msg =
  | Submit of string
  | Seq_cbc of int * Cbc.msg
  | Ack of int * Keyring.cert_share
  | Complain of Keyring.cert_share
  | State of state_report
  | Recovery_vba of Vba.msg
  | Fetch of int
  | Fetch_reply of int * string * Keyring.cert
  | Fallback_abc of Abc.msg

type mode = Fast | Switching | Fallback

type t

val create :
  io:msg Proto_io.t ->
  tag:string ->
  ?sequencer:int ->
  ?patience:int ->
  ?set_timer:(delay:float -> (unit -> unit) -> unit) ->
  ?timeout:float ->
  ?abc_policy:Abc.policy ->
  deliver:(string -> unit) ->
  unit ->
  t
(** Complaints fire after [timeout] (default 1500) units of virtual time
    without progress while work is pending, via the [set_timer] hook
    (wire it to [Sim.set_timer]); without a hook, [patience] (default
    200) handled messages serve as a crude substitute.  Both are
    liveness heuristics only — safety is independent of timing.
    [abc_policy] is the batching / pipelining policy of the randomized
    fallback atomic broadcast (the fast path is already O(n) per payload
    and is not batched). *)

val broadcast : t -> string -> unit
val handle : t -> src:int -> msg -> unit
val mode : t -> mode
val fast_delivered_count : t -> int
val delivered_log : t -> string list
val pending : t -> string list
val msg_size : Keyring.t -> msg -> int
