(* Environment handed to every protocol instance: identity, keys, typed
   message transport, and the observability handle.

   A parent protocol embeds a child by wrapping the child's message type
   into its own with {!embed}; the whole stack therefore has a single
   top-level wire type per deployment and runs unchanged under the
   network simulator or any other transport.

   Per-layer attribution: [send]/[broadcast] count messages and bytes
   against the environment's layer label, while [raw_send] /
   [raw_broadcast] reach the transport uncounted.  [embed ~layer] builds
   the child's raw transport from the *parent's* raw transport, so each
   wire message is counted exactly once — at the layer that originated
   it, with that layer's size estimate — no matter how deep the wrapping
   goes.  With the default [Obs.noop] the counting wrappers *are* the
   raw functions, so the uninstrumented path costs nothing. *)

module AS = Adversary_structure

type 'm t = {
  me : int;
  keyring : Keyring.t;
  send : int -> 'm -> unit;
  broadcast : 'm -> unit;  (* to all servers, including self *)
  obs : Obs.t;
  layer : string;
  raw_send : int -> 'm -> unit;  (* transport, bypassing the counters *)
  raw_broadcast : 'm -> unit;
  timer : (delay:float -> (unit -> unit) -> unit) option;
      (* one-shot virtual-time timer for this party, when the transport
         has a clock (the simulator does); protocols must treat it as a
         liveness aid only *)
}

(* Counting wrappers around a raw transport.  Counter handles are
   resolved once, here; each send then costs two field increments. *)
let counted ~obs ~layer ~bytes ~fanout ~raw_send ~raw_broadcast =
  if not (Obs.active obs) then (raw_send, raw_broadcast)
  else begin
    let labels = [ ("layer", layer) ] in
    let c_msgs = Obs.counter obs ~labels "messages" in
    let c_bytes = Obs.counter obs ~labels "bytes" in
    let send dst m =
      Obs_registry.incr c_msgs;
      Obs_registry.incr ~by:(bytes m) c_bytes;
      raw_send dst m
    and broadcast m =
      Obs_registry.incr ~by:fanout c_msgs;
      Obs_registry.incr ~by:(fanout * bytes m) c_bytes;
      raw_broadcast m
    in
    (send, broadcast)
  end

let make ?(obs = Obs.noop) ?(layer = "app") ?(bytes = fun _ -> 0) ?timer ~me
    ~keyring ~send ~broadcast () =
  let fanout = AS.n keyring.Keyring.structure in
  let counted_send, counted_broadcast =
    counted ~obs ~layer ~bytes ~fanout ~raw_send:send ~raw_broadcast:broadcast
  in
  { me; keyring;
    send = counted_send;
    broadcast = counted_broadcast;
    obs; layer;
    raw_send = send;
    raw_broadcast = broadcast;
    timer }

let structure io = io.keyring.Keyring.structure
let n io = AS.n (structure io)

let embed ?layer ?bytes (io : 'p t) ~(wrap : 'c -> 'p) : 'c t =
  match layer with
  | None ->
    (* Same layer as the parent: route through the parent's counting
       send, which also applies the parent's size estimate to the
       wrapped message. *)
    { me = io.me;
      keyring = io.keyring;
      send = (fun dst m -> io.send dst (wrap m));
      broadcast = (fun m -> io.broadcast (wrap m));
      obs = io.obs;
      layer = io.layer;
      raw_send = (fun dst m -> io.raw_send dst (wrap m));
      raw_broadcast = (fun m -> io.raw_broadcast (wrap m));
      timer = io.timer }
  | Some layer ->
    (* Own layer: wrap into the parent's *raw* transport so the child's
       traffic is attributed here and nowhere else. *)
    let raw_send dst m = io.raw_send dst (wrap m)
    and raw_broadcast m = io.raw_broadcast (wrap m) in
    let bytes = match bytes with Some f -> f | None -> fun _ -> 0 in
    let send, broadcast =
      counted ~obs:io.obs ~layer ~bytes ~fanout:(n io) ~raw_send
        ~raw_broadcast
    in
    { me = io.me; keyring = io.keyring; send; broadcast; obs = io.obs;
      layer; raw_send; raw_broadcast; timer = io.timer }

(* Predicate shorthands on the deployment's adversary structure. *)
let big_quorum io s = AS.big_quorum (structure io) s
let two_cover io s = AS.two_cover (structure io) s
let contains_honest io s = AS.contains_honest (structure io) s
