(** Environment handed to every protocol instance: identity, keyring,
    typed message transport, and the observability handle.

    A parent protocol embeds a child with {!embed} by wrapping the
    child's messages into its own message type, so a whole deployment
    has a single top-level wire type and runs unchanged under the
    network simulator or any other transport.

    Per-layer attribution: {!field-send} / {!field-broadcast} count
    messages and bytes against the registry of [obs] under the
    environment's [layer] label (counters ["messages"] and ["bytes"]
    with label [layer=<name>]); [raw_send] / [raw_broadcast] reach the
    transport uncounted.  [embed ~layer] builds the child's raw
    transport from the parent's raw transport, so every wire message is
    counted exactly once, at the layer that originated it.  With the
    default [Obs.noop] the counting wrappers are the raw functions
    themselves — the uninstrumented path costs nothing. *)

type 'm t = {
  me : int;
  keyring : Keyring.t;
  send : int -> 'm -> unit;  (** counting send *)
  broadcast : 'm -> unit;  (** to all servers, including self; counting *)
  obs : Obs.t;  (** observability handle; [Obs.noop] by default *)
  layer : string;  (** label the counting wrappers attribute to *)
  raw_send : int -> 'm -> unit;  (** transport, bypassing the counters *)
  raw_broadcast : 'm -> unit;
  timer : (delay:float -> (unit -> unit) -> unit) option;
      (** one-shot virtual-time timer for this party when the transport
          has a clock ({!Stack.deploy} wires [Sim.set_timer]); a
          liveness aid only — protocol safety must never depend on it.
          [embed] passes it through unchanged. *)
}

val make :
  ?obs:Obs.t ->
  ?layer:string ->
  ?bytes:('m -> int) ->
  ?timer:(delay:float -> (unit -> unit) -> unit) ->
  me:int ->
  keyring:Keyring.t ->
  send:(int -> 'm -> unit) ->
  broadcast:('m -> unit) ->
  unit ->
  'm t
(** [layer] defaults to ["app"], [bytes] (the per-message wire-size
    estimate used by the byte counters) to [fun _ -> 0]; [timer] is
    absent by default. *)

val structure : 'm t -> Adversary_structure.t
val n : 'm t -> int

val embed : ?layer:string -> ?bytes:('c -> int) -> 'p t -> wrap:('c -> 'p) -> 'c t
(** Child environment whose sends wrap into the parent's message type.
    Without [~layer] the child shares the parent's layer and counters
    (its traffic routes through the parent's counting send); with
    [~layer] the child gets its own counters and size estimate, and its
    traffic bypasses the parent's. *)

(** Quorum-predicate shorthands on the deployment's structure. *)

val big_quorum : 'm t -> Pset.t -> bool
val two_cover : 'm t -> Pset.t -> bool
val contains_honest : 'm t -> Pset.t -> bool
