(* Reliable broadcast: an optimized variant of the Bracha-Toueg protocol
   (paper, Section 3), generalized to arbitrary Q^3 adversary structures
   by replacing the counting thresholds with the structure's monotone
   quorum predicates (Section 4.2):

     SEND  m   : the sender disseminates the payload;
     ECHO  m   : on the first SEND, everyone echoes; a big-quorum of
                 echoes for the same payload triggers READY (in the
                 threshold case, n - t echoes);
     READY m   : amplified as soon as a set that surely contains an
                 honest party sent READY (t + 1); delivered once the
                 READY senders form a two-cover set (2t + 1).

   Guarantees (for a corruption set inside the adversary structure):
   all honest parties deliver the same payload or none (consistency),
   everyone delivers if the sender is honest (validity), and if any
   honest party delivers then all do (totality). *)

type msg =
  | Send of string
  | Echo of string
  | Ready of string

type t = {
  io : msg Proto_io.t;
  sender : int;
  deliver : string -> unit;
  mutable sent_echo : bool;
  mutable sent_ready : bool;
  mutable delivered : bool;
  echoes : (string, Pset.t ref) Hashtbl.t;
  readies : (string, Pset.t ref) Hashtbl.t;
  mutable sp_echo : int;  (* open trace spans; 0 = none *)
  mutable sp_ready : int;
}

let create ~(io : msg Proto_io.t) ~sender ~deliver =
  { io;
    sender;
    deliver;
    sent_echo = false;
    sent_ready = false;
    delivered = false;
    echoes = Hashtbl.create 4;
    readies = Hashtbl.create 4;
    sp_echo = 0;
    sp_ready = 0 }

let obs t = t.io.Proto_io.obs
let me t = t.io.Proto_io.me

let broadcast t payload =
  assert (t.io.Proto_io.me = t.sender);
  t.io.Proto_io.broadcast (Send payload)

let votes table payload =
  match Hashtbl.find_opt table payload with
  | Some r -> r
  | None ->
    let r = ref Pset.empty in
    Hashtbl.add table payload r;
    r

let maybe_ready t payload =
  if not t.sent_ready then begin
    t.sent_ready <- true;
    Obs.span_end (obs t) t.sp_echo;
    t.sp_echo <- 0;
    t.sp_ready <- Obs.span_begin (obs t) ~party:(me t) ~layer:"rbc" "ready";
    t.io.Proto_io.broadcast (Ready payload)
  end

let maybe_deliver t payload =
  if not t.delivered then begin
    t.delivered <- true;
    Obs.span_end (obs t) t.sp_ready;
    t.sp_ready <- 0;
    Obs.point (obs t) ~party:(me t) ~src:t.sender ~layer:"rbc" "deliver";
    t.deliver payload
  end

let handle t ~src msg =
  match msg with
  | Send payload ->
    if src = t.sender && not t.sent_echo then begin
      t.sent_echo <- true;
      t.sp_echo <- Obs.span_begin (obs t) ~party:(me t) ~layer:"rbc" "echo";
      t.io.Proto_io.broadcast (Echo payload)
    end
  | Echo payload ->
    let v = votes t.echoes payload in
    if not (Pset.mem src !v) then begin
      v := Pset.add src !v;
      if Proto_io.big_quorum t.io !v then maybe_ready t payload
    end
  | Ready payload ->
    let v = votes t.readies payload in
    if not (Pset.mem src !v) then begin
      v := Pset.add src !v;
      if Proto_io.contains_honest t.io !v then maybe_ready t payload;
      if Proto_io.two_cover t.io !v then maybe_deliver t payload
    end

let has_delivered t = t.delivered

(* Approximate wire size in bytes (header + payload). *)
let msg_size = function
  | Send p | Echo p | Ready p -> 8 + String.length p

(* Short rendering for simulator traces. *)
let msg_summary = function
  | Send p -> Printf.sprintf "rbc.SEND(%d B)" (String.length p)
  | Echo p -> Printf.sprintf "rbc.ECHO(%d B)" (String.length p)
  | Ready p -> Printf.sprintf "rbc.READY(%d B)" (String.length p)
