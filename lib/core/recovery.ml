(* Crash recovery for the atomic-broadcast stack: certified checkpoints,
   log truncation, and a catch-up/state-transfer path for rejoining or
   lagging replicas.

   Every [interval] rounds each replica snapshots its ordered state at
   the round boundary (the boundary hook fires the instant round [b]
   completes, when the delivered history is identical at every honest
   party), hashes the canonical {!Codec.encode_snapshot} frame, and
   broadcasts a threshold-signature share over the statement
   ["recov-ckpt" | tag | b | hash].  Once shares from a set that surely
   contains an honest party combine ([Keyring.service_combine] — t+1 in
   the threshold case), the snapshot plus combined signature form a
   *checkpoint certificate*: transferable evidence that at least one
   honest replica vouched for exactly these bytes.  Certification
   triggers {!Abc.truncate}, which drops the delivered-log prefix and
   retires every per-round protocol structure below the boundary, so
   memory stays bounded under sustained load.

   A recovering replica (fresh state after {!Sim.recover}) or a lagging
   one (it sees checkpoint shares for rounds far beyond its own)
   broadcasts [Fetch] — as raw, unsequenced transport, because its link
   state is gone — and peers answer with [State]: their latest
   certificate, their delivered-log suffix, their round, and the
   {!Link.prepare_rejoin} resume points that resynchronize the ARQ
   channel pair.  The fetcher rejects any reply whose certificate fails
   to verify (a forged snapshot dies here: the adversary holds only its
   own key shares, short of what combining requires), then waits until
   replies agreeing *exactly* on (certificate, suffix, round) come from
   a set that surely contains an honest party.  The honest member
   guarantees the uncertified suffix too, so installing the group's
   state via {!Abc.install_checkpoint} is safe; a retry timer re-fetches
   until the quorum forms (at the latest when the stream quiesces and
   all honest replicas answer identically).

   Nothing here runs unless a deployment opts in: with [interval = 0]
   and no [Fetch] traffic the wrapped {!Abc} behaves bit-identically to
   a bare one. *)

type msg =
  | App of Abc.msg  (** the wrapped atomic-broadcast traffic *)
  | Ckpt_share of { round : int; hash : string; share : Keyring.sig_share }
  | Fetch of { epoch : int }  (** catch-up request (raw transport) *)
  | State of {
      epoch : int;
      ck : string;  (** latest certified checkpoint frame, [""] if none *)
      suffix : string list;  (** delivered log past the checkpoint *)
      round : int;
      expect : int;  (** link resume: expect my DATA from this seq *)
      start : int;  (** link resume: emit your DATA from this seq *)
    }

(* A stored catch-up reply, certificate already decoded and verified
   (validation happens at receipt so a forged certificate is rejected
   and counted the moment it arrives).  Reply agreement groups on the
   *snapshot* frame, not the whole certificate frame: any valid
   certificate over the same snapshot is equivalent evidence, and
   generalized (LSSS) certificates legitimately differ by endorser
   subset across honest peers. *)
type reply = {
  r_snap : string;  (* decoded snapshot frame, [""] at genesis *)
  r_base : string list;  (* digest history certified by the snapshot *)
  r_ckinfo : (int * int * string) option;  (* round, len, ckpt frame *)
  r_suffix : string list;
  r_round : int;
}

type t = {
  io : msg Proto_io.t;
  tag : string;
  interval : int;  (* checkpoint every this many rounds; 0 = off *)
  retry : float;  (* catch-up re-fetch period (virtual time) *)
  abc : Abc.t;
  app_state : unit -> string;
  mutable raw_to : int -> msg -> unit;  (* unsequenced transport *)
  (* ARQ resynchronization hooks, stored as closures so the wrapping
     deployment's link endpoint can carry any message type (e.g. the
     service layer's, where recovery traffic is embedded). *)
  mutable link_rejoin : (peer:int -> expect:int -> start:int -> unit) option;
  mutable link_prepare : (peer:int -> int * int) option;
  (* checkpoint-in-progress state, all keyed by boundary round *)
  mutable created : int;  (* highest boundary snapshotted here *)
  snaps : (int, string * int) Hashtbl.t;  (* frame, digest count *)
  hashes : (int, string) Hashtbl.t;
  shares : (int, (int * string * Keyring.sig_share) list) Hashtbl.t;
  mutable certified : (int * int * string) option;  (* round, len, frame *)
  (* serving side *)
  served : (int * int, int * int) Hashtbl.t;  (* peer, epoch -> resume *)
  (* fetching side *)
  mutable epoch : int;
  mutable fetching : bool;
  mutable replies : (int * reply) list;
  mutable rejected : int;  (* replies dropped for a bad certificate *)
  mutable transfers : int;
  mutable transfer_bytes : int;
  mutable on_transfer : (bytes:int -> round:int -> unit) option;
}

let recov_labels = [ ("layer", "recov") ]

let stmt t round hash =
  Ro.encode [ "recov-ckpt"; t.tag; string_of_int round; hash ]

let abc t = t.abc
let submit t payload = Abc.broadcast t.abc payload
let certified_round t = match t.certified with Some (r, _, _) -> r | None -> 0
let fetching t = t.fetching
let transfers t = t.transfers
let transfer_bytes t = t.transfer_bytes
let rejected_replies t = t.rejected
let set_on_transfer t f = t.on_transfer <- Some f

let set_transport t ~raw ~link =
  t.raw_to <- raw;
  match link with
  | None ->
    t.link_rejoin <- None;
    t.link_prepare <- None
  | Some ep ->
    t.link_rejoin <-
      Some (fun ~peer ~expect ~start -> Link.rejoin ep ~peer ~expect ~start);
    t.link_prepare <- Some (fun ~peer -> Link.prepare_rejoin ep ~peer)

(* ---------- checkpoint creation and certification ------------------- *)

let cleanup_upto t b =
  let dead tbl =
    Hashtbl.fold (fun r _ acc -> if r <= b then r :: acc else acc) tbl []
  in
  List.iter (Hashtbl.remove t.snaps) (dead t.snaps);
  List.iter (Hashtbl.remove t.hashes) (dead t.hashes);
  List.iter (Hashtbl.remove t.shares) (dead t.shares)

let try_certify t b =
  match Hashtbl.find_opt t.hashes b with
  | None -> ()
  | Some h -> (
    let kr = t.io.Proto_io.keyring in
    let entries =
      match Hashtbl.find_opt t.shares b with Some l -> l | None -> []
    in
    let good =
      List.filter_map
        (fun (src, hash, share) ->
          if hash = h && Keyring.service_verify_share kr ~party:src (stmt t b h) share
          then Some share
          else None)
        entries
    in
    match Keyring.service_combine kr (stmt t b h) good with
    | None -> ()
    | Some s ->
      if Keyring.service_verify kr (stmt t b h) s then begin
        let frame, len = Hashtbl.find t.snaps b in
        (match t.certified with
        | Some (r0, _, _) when r0 >= b -> ()
        | _ ->
          let ck =
            Codec.encode_ckpt ~snapshot:frame
              ~cert:(Keyring.service_signature_to_bytes kr s)
          in
          t.certified <- Some (b, len, ck);
          let obs = t.io.Proto_io.obs in
          if Obs.active obs then
            Obs.incr obs ~labels:recov_labels "ckpt_certified";
          Abc.truncate t.abc ~upto_round:b ~upto_len:len);
        cleanup_upto t b
      end)

let maybe_checkpoint t b =
  if t.interval > 0 && b > t.created && b mod t.interval = 0 then begin
    t.created <- b;
    let digests = Abc.delivered_digests t.abc in
    let frame =
      Codec.encode_snapshot ~round:b ~app:(t.app_state ()) ~digests
    in
    let hash = Sha256.digest frame in
    Hashtbl.replace t.snaps b (frame, List.length digests);
    Hashtbl.replace t.hashes b hash;
    let obs = t.io.Proto_io.obs in
    if Obs.active obs then Obs.incr obs ~labels:recov_labels "ckpt_created";
    let share =
      Keyring.service_sign_share t.io.Proto_io.keyring
        ~party:t.io.Proto_io.me (stmt t b hash)
    in
    (* Reliable (counted, sequenced) traffic: shares are protocol
       messages, not recovery-path raw transport. *)
    t.io.Proto_io.broadcast (Ckpt_share { round = b; hash; share });
    (* Peers ahead of us may have delivered their shares already. *)
    try_certify t b
  end

let create ?policy ?(interval = 0) ?(retry = 350.)
    ?(app_state = fun () -> "") ~(io : msg Proto_io.t) ~tag ~deliver () =
  if interval < 0 then invalid_arg "Recovery.create: negative interval";
  if retry <= 0. then invalid_arg "Recovery.create: non-positive retry";
  let abc_io =
    Proto_io.embed io ~layer:"abc"
      ~bytes:(Abc.msg_size io.Proto_io.keyring)
      ~wrap:(fun m -> App m)
  in
  let abc = Abc.create ?policy ~io:abc_io ~tag ~deliver () in
  let t =
    {
      io;
      tag;
      interval;
      retry;
      abc;
      app_state;
      raw_to = (fun dst m -> io.Proto_io.raw_send dst m);
      link_rejoin = None;
      link_prepare = None;
      created = 0;
      snaps = Hashtbl.create 7;
      hashes = Hashtbl.create 7;
      shares = Hashtbl.create 7;
      certified = None;
      served = Hashtbl.create 7;
      epoch = 0;
      fetching = false;
      replies = [];
      rejected = 0;
      transfers = 0;
      transfer_bytes = 0;
      on_transfer = None;
    }
  in
  if interval > 0 then Abc.set_boundary_hook abc (fun b -> maybe_checkpoint t b);
  t

(* ---------- catch-up: fetching side --------------------------------- *)

let rec request_round t epoch =
  if t.fetching && t.epoch = epoch then begin
    let n = Proto_io.n t.io in
    for dst = 0 to n - 1 do
      if dst <> t.io.Proto_io.me then t.raw_to dst (Fetch { epoch })
    done;
    match t.io.Proto_io.timer with
    | Some set -> set ~delay:t.retry (fun () -> request_round t epoch)
    | None -> ()
  end

let start_catch_up t =
  t.epoch <- t.epoch + 1;
  t.fetching <- true;
  t.replies <- [];
  request_round t t.epoch

(* Decode and verify a reply's certificate.  [None] means forged or
   malformed; [Some (digest history, ckinfo)] that the certified part is
   sound ([""] = genesis: nothing certified yet, an honest answer early
   in a stream). *)
let validate_ck t ck =
  if ck = "" then Some ("", [], None)
  else
    match Codec.decode_ckpt ck with
    | None -> None
    | Some (snap, certb) -> (
      match Codec.decode_snapshot snap with
      | None -> None
      | Some (b, _app, digests) -> (
        let kr = t.io.Proto_io.keyring in
        match Keyring.service_signature_of_bytes kr certb with
        | None -> None
        | Some s ->
          if Keyring.service_verify kr (stmt t b (Sha256.digest snap)) s
          then Some (snap, digests, Some (b, List.length digests, ck))
          else None))

let reject_reply t ~src =
  ignore src;
  t.rejected <- t.rejected + 1;
  let obs = t.io.Proto_io.obs in
  if Obs.active obs then Obs.incr obs ~labels:recov_labels "ckpt_rejected"

let install t (r : reply) =
  let ck_bytes =
    match r.r_ckinfo with Some (_, _, ck) -> String.length ck | None -> 0
  in
  let bytes =
    ck_bytes
    + List.fold_left (fun a p -> a + String.length p + 8) 0 r.r_suffix
    + 24
  in
  Abc.install_checkpoint t.abc ~round:r.r_round ~digests:r.r_base
    ~suffix:r.r_suffix;
  (match r.r_ckinfo with
  | None -> ()
  | Some (b, len, ck) ->
    if b > t.created then t.created <- b;
    (match t.certified with
    | Some (r0, _, _) when r0 >= b -> ()
    | _ -> t.certified <- Some (b, len, ck)));
  t.fetching <- false;
  t.replies <- [];
  t.transfers <- t.transfers + 1;
  t.transfer_bytes <- t.transfer_bytes + bytes;
  let obs = t.io.Proto_io.obs in
  if Obs.active obs then
    Obs.incr obs ~labels:recov_labels ~by:bytes "state_transfer_bytes";
  match t.on_transfer with
  | Some f -> f ~bytes ~round:r.r_round
  | None -> ()

(* Install once replies agreeing exactly on (certificate, suffix, round)
   come from a set that surely contains an honest party.  The honest
   member vouches for the uncertified suffix; the certificate is already
   verified per reply.  A Byzantine server can only join a group by
   matching honest content exactly — in which case the content is
   honest. *)
let try_install t =
  if t.fetching then begin
    let groups : ((string * string list * int) * int list) list =
      List.fold_left
        (fun acc (src, r) ->
          let key = (r.r_snap, r.r_suffix, r.r_round) in
          match List.assoc_opt key acc with
          | Some srcs ->
            (key, src :: srcs) :: List.remove_assoc key acc
          | None -> (key, [ src ]) :: acc)
        [] t.replies
    in
    let viable =
      List.filter
        (fun (_, srcs) ->
          Proto_io.contains_honest t.io (Pset.of_list srcs))
        groups
    in
    (* Prefer the most advanced agreed state if several quorums exist. *)
    let viable =
      List.sort
        (fun ((_, _, r1), _) ((_, _, r2), _) -> compare r2 r1)
        viable
    in
    match viable with
    | [] -> ()
    | ((_, _, _), src :: _) :: _ ->
      let r = List.assoc src t.replies in
      let total = List.length r.r_base + List.length r.r_suffix in
      if
        total > Abc.delivered_count t.abc
        || r.r_round > Abc.current_round t.abc
      then install t r
      else begin
        (* The quorum's state is no newer than ours: already caught up. *)
        t.fetching <- false;
        t.replies <- []
      end
    | (_, []) :: _ -> ()
  end

let on_state t ~src (epoch, ck, suffix, round, expect, start) =
  let n = Proto_io.n t.io in
  if src >= 0 && src < n && src <> t.io.Proto_io.me then begin
    (* Transport-level resync applies regardless of content: the resume
       points concern the channel pair, not the snapshot. *)
    (match t.link_rejoin with
    | Some rejoin -> rejoin ~peer:src ~expect ~start
    | None -> ());
    (* Verify the certificate on every reply, even one arriving after an
       install closed the episode: a forged snapshot is refused (and
       counted) whenever it shows up, not only while it could race the
       honest quorum. *)
    match validate_ck t ck with
    | None -> reject_reply t ~src
    | Some (snap, base, ckinfo) ->
      let ck_round = match ckinfo with Some (b, _, _) -> b | None -> 0 in
      if ck_round > round then reject_reply t ~src
      else if t.fetching && epoch = t.epoch then begin
        t.replies <-
          (src, { r_snap = snap; r_base = base; r_ckinfo = ckinfo;
                  r_suffix = suffix; r_round = round })
          :: List.remove_assoc src t.replies;
        try_install t
      end
  end

(* ---------- catch-up: serving side ---------------------------------- *)

let serve t ~src epoch =
  let n = Proto_io.n t.io in
  if src >= 0 && src < n && src <> t.io.Proto_io.me then begin
    let resume =
      match Hashtbl.find_opt t.served (src, epoch) with
      | Some r -> r
      | None ->
        (* A new episode from this peer obsoletes its older ones. *)
        let stale =
          Hashtbl.fold
            (fun (p, e) _ acc ->
              if p = src && e < epoch then (p, e) :: acc else acc)
            t.served []
        in
        List.iter (Hashtbl.remove t.served) stale;
        let r =
          match t.link_prepare with
          | Some prepare -> prepare ~peer:src
          | None -> (0, 0)
        in
        Hashtbl.replace t.served (src, epoch) r;
        r
    in
    let expect, start = resume in
    let ck = match t.certified with Some (_, _, f) -> f | None -> "" in
    t.raw_to src
      (State
         {
           epoch;
           ck;
           suffix = Abc.delivered_log t.abc;
           round = Abc.current_round t.abc;
           expect;
           start;
         })
  end

(* ---------- dispatch ------------------------------------------------- *)

let handle t ~src m =
  match m with
  | App m -> Abc.handle t.abc ~src m
  | Ckpt_share { round; hash; share } ->
    if t.interval > 0 && round > certified_round t && round mod t.interval = 0
    then begin
      (* Lag detection: an honest peer only checkpoints boundaries it
         reached; seeing one a whole interval past our round means we
         lost traffic (e.g. a healed partition) — catch up. *)
      if
        (not t.fetching)
        && round > Abc.current_round t.abc + t.interval
      then start_catch_up t;
      let entries =
        match Hashtbl.find_opt t.shares round with Some l -> l | None -> []
      in
      if not (List.exists (fun (s, _, _) -> s = src) entries) then
        Hashtbl.replace t.shares round ((src, hash, share) :: entries);
      if Hashtbl.mem t.hashes round then try_certify t round
    end
  | Fetch { epoch } -> serve t ~src epoch
  | State { epoch; ck; suffix; round; expect; start } ->
    on_state t ~src (epoch, ck, suffix, round, expect, start)

(* ---------- wire-size estimate and summaries ------------------------- *)

let msg_size keyring = function
  | App m -> Abc.msg_size keyring m
  | Ckpt_share { hash; _ } -> 8 + String.length hash + 128
  | Fetch _ -> 8
  | State { ck; suffix; _ } ->
    24 + String.length ck
    + List.fold_left (fun a p -> a + String.length p + 8) 0 suffix

let msg_summary = function
  | App m -> "app:" ^ Abc.msg_summary m
  | Ckpt_share { round; _ } -> Printf.sprintf "ckpt-share r%d" round
  | Fetch { epoch } -> Printf.sprintf "fetch e%d" epoch
  | State { epoch; round; suffix; _ } ->
    Printf.sprintf "state e%d r%d |%d|" epoch round (List.length suffix)

(* ---------- deployment glue ------------------------------------------ *)

type deployment = {
  d_sim : msg Link.frame Sim.t;
  d_keyring : Keyring.t;
  d_policy : Abc.policy option;
  d_link : Link.policy option;
  d_interval : int;
  d_retry : float;
  d_app_state : (unit -> string) option;
  d_tag : string;
  d_deliver : int -> string -> unit;
  d_wrap : (int -> msg Sim.handler -> msg Sim.handler) option;
  d_nodes : t array;
}

let nodes d = d.d_nodes

(* Instantiate and wire one party: mirrors [Stack.deploy]'s two arms
   (link-off Raw passthrough / link-on ARQ endpoint), plus the raw
   transport and endpoint handles the recovery paths need. *)
let wire d ~wrapped me =
  let sim = d.d_sim and keyring = d.d_keyring in
  let timer ~delay cb = Sim.set_timer sim me ~delay cb in
  let make_io ~send ~broadcast =
    Proto_io.make ~obs:(Sim.obs sim) ~layer:"recov"
      ~bytes:(msg_size keyring) ~timer ~me ~keyring ~send ~broadcast ()
  in
  let make_node io =
    create ?policy:d.d_policy ~interval:d.d_interval ~retry:d.d_retry
      ?app_state:d.d_app_state ~io ~tag:d.d_tag
      ~deliver:(d.d_deliver me) ()
  in
  match d.d_link with
  | None ->
    let io =
      make_io
        ~send:(fun dst m -> Sim.send sim ~src:me ~dst (Link.Raw m))
        ~broadcast:(fun m -> Sim.broadcast sim ~src:me (Link.Raw m))
    in
    let node = make_node io in
    let honest ~src m = handle node ~src m in
    let h =
      match d.d_wrap with
      | Some w when wrapped -> w me honest
      | _ -> honest
    in
    Sim.set_handler sim me (fun ~src frame ->
        match frame with
        | Link.Raw m | Link.Data { payload = m; _ } -> h ~src m
        | Link.Ack _ -> ());
    node
  | Some lp ->
    let n = Sim.n sim in
    let ep =
      Link.create ~obs:(Sim.obs sim) ~policy:lp ~me ~n
        ~raw_send:(fun dst frame -> Sim.send sim ~src:me ~dst frame)
        ~timer
        ~deliver:(fun ~src:_ _ -> ())
        ()
    in
    let io =
      make_io
        ~send:(fun dst m -> Link.send ep dst m)
        ~broadcast:(fun m -> Link.broadcast ep m)
    in
    let node = make_node io in
    set_transport node
      ~raw:(fun dst m -> Sim.send sim ~src:me ~dst (Link.Raw m))
      ~link:(Some ep);
    let honest ~src m = handle node ~src m in
    let h =
      match d.d_wrap with
      | Some w when wrapped -> w me honest
      | _ -> honest
    in
    Link.set_deliver ep (fun ~src m -> h ~src m);
    Sim.set_handler sim me (fun ~src frame -> Link.handle ep ~src frame);
    node

let deploy ?wrap ?policy ?link ?(interval = 8) ?(retry = 350.) ?app_state
    ~sim ~keyring ~tag ~deliver () =
  let d =
    {
      d_sim = sim;
      d_keyring = keyring;
      d_policy = policy;
      d_link = link;
      d_interval = interval;
      d_retry = retry;
      d_app_state = app_state;
      d_tag = tag;
      d_deliver = deliver;
      d_wrap = wrap;
      d_nodes = [||];
    }
  in
  let nodes = Array.init (Sim.n sim) (fun me -> wire d ~wrapped:true me) in
  let d = { d with d_nodes = nodes } in
  Sim.set_stall_probe sim (fun () ->
      Stack.abc_stall_summary (Array.map (fun nd -> nd.abc) d.d_nodes));
  d

let revive d party =
  Sim.recover d.d_sim party;
  (* The revived party is honest: a Byzantine wrap, if any, stays with
     the dead incarnation. *)
  let node = wire d ~wrapped:false party in
  d.d_nodes.(party) <- node;
  start_catch_up node;
  node
