(** Crash recovery for the atomic-broadcast stack: certified
    checkpoints, log truncation, and a catch-up/state-transfer path for
    rejoining or lagging replicas.

    Every [interval] rounds each replica snapshots its ordered state at
    the round boundary (identical at every honest party), hashes the
    canonical snapshot frame and collects threshold-signature shares
    over it; once a set of endorsers that surely contains an honest
    party combines, the snapshot plus signature form a {e checkpoint
    certificate} and the delivered-log prefix and per-round protocol
    state below the boundary are garbage-collected ({!Abc.truncate}).

    A replica revived after a crash — or one that notices checkpoint
    shares for rounds far beyond its own — fetches the latest
    certificate plus log suffix from its peers over raw (unsequenced)
    transport, rejects any reply whose certificate fails verification,
    resynchronizes the ARQ channel pair via {!Link.prepare_rejoin} /
    {!Link.rejoin}, and installs the first state on which a
    surely-honest-containing set of peers agrees exactly.

    With [interval = 0] and no fetch traffic the wrapped {!Abc} behaves
    bit-identically to a bare one: checkpointing never fires and no
    extra messages exist.

    {b Scope: this wrapper covers the plain atomic broadcast only.}
    Secure causal broadcast ({!Scabc}) deliberately has no recovery
    hook: a revived replica would need its threshold-decryption key
    share re-issued before it could help open post-revival ciphertexts,
    and handing it the old share from a snapshot would defeat the point
    of proactive refresh (a mobile adversary could harvest shares from
    crashed disks).  Until re-keying of decryption shares rides the
    epoch-reconfiguration path ({!Epoch}), confidential deployments
    refuse crash-rejoin rather than fake it — the service campaign
    ({!Svc}) reports such cells as skipped with this reason instead of
    silently shrinking its sweep matrix. *)

type msg =
  | App of Abc.msg  (** the wrapped atomic-broadcast traffic *)
  | Ckpt_share of { round : int; hash : string; share : Keyring.sig_share }
      (** one replica's endorsement of the boundary snapshot it hashed *)
  | Fetch of { epoch : int }  (** catch-up request (raw transport) *)
  | State of {
      epoch : int;
      ck : string;  (** latest certified checkpoint frame, [""] if none *)
      suffix : string list;  (** delivered log past the checkpoint *)
      round : int;
      expect : int;  (** link resume: expect my DATA from this seq *)
      start : int;  (** link resume: emit your DATA from this seq *)
    }  (** a peer's answer: certified prefix, live suffix, ARQ resume *)

type t

val create :
  ?policy:Abc.policy ->
  ?interval:int ->
  ?retry:float ->
  ?app_state:(unit -> string) ->
  io:msg Proto_io.t ->
  tag:string ->
  deliver:(string -> unit) ->
  unit ->
  t
(** Wrap an {!Abc} instance (created internally, [deliver] passed
    through) with the recovery layer.  [interval] is the checkpoint
    period in rounds ([0], the default, disables checkpointing
    entirely); [retry] the catch-up re-fetch period in virtual time;
    [app_state] an opaque service-state blob snapshotted alongside the
    digest history.  Raises [Invalid_argument] on a negative interval
    or non-positive retry. *)

val handle : t -> src:int -> msg -> unit
val submit : t -> string -> unit
(** Atomically broadcast a payload through the wrapped {!Abc}. *)

val abc : t -> Abc.t
(** The wrapped instance — for log/round introspection in tests and
    experiments. *)

val start_catch_up : t -> unit
(** Begin (or restart, under a fresh epoch) the fetch protocol: request
    state from every peer and keep re-requesting on the [retry] timer
    until a valid agreeing reply quorum installs. *)

val fetching : t -> bool
val certified_round : t -> int
(** Boundary round of the latest certificate held ([0] if none). *)

val transfers : t -> int
(** Completed state-transfer installs at this replica. *)

val transfer_bytes : t -> int
(** Total bytes of certificate + suffix adopted via state transfer. *)

val rejected_replies : t -> int
(** Catch-up replies dropped for a forged or malformed certificate. *)

val set_on_transfer : t -> (bytes:int -> round:int -> unit) -> unit
(** Hook fired after each successful install — the flight recorder
    notes its state-transfer anomaly window from here. *)

val set_transport : t -> raw:(int -> msg -> unit) -> link:'a Link.t option -> unit
(** Deployment wiring: an unsequenced transport for Fetch/State (the
    fetcher's link state is gone, the server's is stale) and the
    party's ARQ endpoint for resynchronization.  The endpoint's message
    type is free because only its sequencing state is touched
    ({!Link.rejoin} / {!Link.prepare_rejoin}) — a deployment that embeds
    recovery traffic inside a larger message type (the service layer)
    passes its own endpoint.  {!deploy} calls this; standalone instances
    default to the io's raw send and no link. *)

val msg_size : Keyring.t -> msg -> int
val msg_summary : msg -> string

(** {2 Deployment} *)

type deployment

val deploy :
  ?wrap:(int -> msg Sim.handler -> msg Sim.handler) ->
  ?policy:Abc.policy ->
  ?link:Link.policy ->
  ?interval:int ->
  ?retry:float ->
  ?app_state:(unit -> string) ->
  sim:msg Link.frame Sim.t ->
  keyring:Keyring.t ->
  tag:string ->
  deliver:(int -> string -> unit) ->
  unit ->
  deployment
(** One recovery-wrapped node per server on the simulator, mirroring
    {!Stack.deploy}'s two transport arms (link-off Raw passthrough /
    link-on ARQ endpoints).  [interval] defaults to [8] here — a
    deployment of this subsystem wants checkpoints; pass [0] to measure
    the GC-off baseline.  [wrap] corrupts parties at the payload level
    exactly as in {!Stack.deploy}.  Also installs the ABC stall
    probe. *)

val nodes : deployment -> t array

val revive : deployment -> int -> t
(** Un-crash a party ({!Sim.recover}), wire a fresh amnesiac node in
    its slot — honest even if the dead incarnation was wrapped — and
    start its catch-up.  Returns the new node (the [nodes] array is
    updated in place). *)
