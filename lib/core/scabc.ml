(* Secure causal atomic broadcast (paper, Sections 3 and 5.2): atomic
   broadcast composed with the TDH2 threshold cryptosystem.

   Clients encrypt their requests under the service's single public
   encryption key; the servers atomically order the *ciphertexts* and
   only then cooperate to decrypt, so the content of a request stays
   secret until its position in the total order is fixed.  Because TDH2
   is secure against adaptive chosen-ciphertext attack, a corrupted
   server that sees a ciphertext in transit can neither read it nor
   submit a related request of its own — this is precisely the causality
   property a notary or sealed-bid service needs (a competitor cannot
   front-run a patent filing it cannot read). *)

type msg =
  | Abc_msg of Abc.msg
  | Dec_share of string * Tdh2.dec_share list  (* ciphertext digest *)

type slot = {
  position : int;
  ct : Tdh2.ciphertext;
  mutable shares : (int * Tdh2.dec_share list) list;
  mutable plaintext : string option;
  mutable sp_decrypt : int;  (* open trace span; 0 = none *)
}

type t = {
  io : msg Proto_io.t;
  deliver : label:string -> string -> unit;  (* plaintexts, total order *)
  abc : Abc.t;
  slots : (string, slot) Hashtbl.t;  (* digest -> slot *)
  mutable order : string list;  (* digests, oldest first (reversed) *)
  mutable next_position : int;
  mutable next_delivery : int;
  mutable early_shares : (string * int * Tdh2.dec_share list) list;
      (* shares that arrived before their ciphertext was ordered *)
}

let enc_sharing t = t.io.Proto_io.keyring.Keyring.enc

let rec create ?policy ~(io : msg Proto_io.t) ~tag ~deliver () : t =
  let t_ref = ref None in
  let abc =
    Abc.create ?policy
      ~io:
        (Proto_io.embed ~layer:"abc"
           ~bytes:(Abc.msg_size io.Proto_io.keyring) io
           ~wrap:(fun m -> Abc_msg m))
      ~tag:(tag ^ "/abc")
      ~deliver:(fun payload ->
        match !t_ref with Some t -> on_ordered t payload | None -> ())
      ()
  in
  let t =
    { io;
      deliver;
      abc;
      slots = Hashtbl.create 16;
      order = [];
      next_position = 0;
      next_delivery = 0;
      early_shares = [];
      }
  in
  t_ref := Some t;
  t

(* A ciphertext has been assigned its place in the total order: start
   the threshold decryption. *)
and on_ordered t (payload : string) =
  match Tdh2.ciphertext_of_bytes (enc_sharing t) payload with
  | None -> ()  (* garbage from a corrupted client: ordered but skipped *)
  | Some ct ->
    if not (Tdh2.is_valid (enc_sharing t) ct) then ()
    else begin
      let d = Sha256.digest payload in
      if not (Hashtbl.mem t.slots d) then begin
        let slot =
          { position = t.next_position;
            ct;
            shares = [];
            plaintext = None;
            sp_decrypt =
              Obs.span_begin t.io.Proto_io.obs ~party:t.io.Proto_io.me
                ~layer:"scabc"
                ~detail:(Printf.sprintf "pos=%d" t.next_position)
                "decrypt" }
        in
        t.next_position <- t.next_position + 1;
        Hashtbl.add t.slots d slot;
        t.order <- d :: t.order;
        (match Tdh2.decryption_share (enc_sharing t) ~party:t.io.Proto_io.me ct with
        | Some shares -> t.io.Proto_io.broadcast (Dec_share (d, shares))
        | None -> ());
        (* Validate any shares that raced ahead of the ordering. *)
        let early, rest =
          List.partition (fun (d', _, _) -> d' = d) t.early_shares
        in
        t.early_shares <- rest;
        List.iter (fun (_, src, shares) -> add_share t d ~src shares) early
      end
    end

and add_share t d ~src shares =
  match Hashtbl.find_opt t.slots d with
  | None ->
    if List.length t.early_shares < 4096 then
      t.early_shares <- (d, src, shares) :: t.early_shares
  | Some slot ->
    if
      (not (List.mem_assoc src slot.shares))
      (* Lazy policy: shape check at receipt, batched proof check at
         combine time (with attributed pruning). *)
      && (if Crypto_policy.is_lazy () then
            Tdh2.check_shape (enc_sharing t) ~party:src shares
          else Tdh2.verify_share (enc_sharing t) ~party:src slot.ct shares)
    then begin
      slot.shares <- (src, shares) :: slot.shares;
      try_decrypt t slot
    end

and try_decrypt t slot =
  if slot.plaintext = None then begin
    let avail =
      List.fold_left (fun acc (p, _) -> Pset.add p acc) Pset.empty slot.shares
    in
    match Tdh2.combine (enc_sharing t) slot.ct ~avail slot.shares with
    | None -> ()
    | Some plaintext ->
      slot.plaintext <- Some plaintext;
      Obs.span_end t.io.Proto_io.obs slot.sp_decrypt;
      slot.sp_decrypt <- 0;
      flush_deliveries t
  end

(* Deliver decrypted requests strictly in the agreed order. *)
and flush_deliveries t =
  let by_position = List.rev t.order in
  let rec go () =
    match List.nth_opt by_position t.next_delivery with
    | None -> ()
    | Some d ->
      let slot = Hashtbl.find t.slots d in
      (match slot.plaintext with
      | None -> ()
      | Some plaintext ->
        t.next_delivery <- t.next_delivery + 1;
        Obs.point t.io.Proto_io.obs ~party:t.io.Proto_io.me ~layer:"scabc"
          ~detail:(Printf.sprintf "pos=%d" slot.position)
          "deliver";
        t.deliver ~label:slot.ct.Tdh2.label plaintext;
        go ())
  in
  go ()

(* ---------- API ----------------------------------------------------- *)

(* Client-side helper: encrypt a request for this service. *)
let encrypt_request (keyring : Keyring.t) (rng : Prng.t) ~label
    (request : string) : string =
  Tdh2.ciphertext_to_bytes keyring.Keyring.enc
    (Tdh2.encrypt keyring.Keyring.enc rng ~label request)

(* Server entry point: order an (encrypted) request. *)
let broadcast t (ciphertext_bytes : string) = Abc.broadcast t.abc ciphertext_bytes

let handle t ~src msg =
  match msg with
  | Abc_msg m -> Abc.handle t.abc ~src m
  | Dec_share (d, shares) -> add_share t d ~src shares

let delivered_count t = t.next_delivery

let msg_size kr = function
  | Abc_msg m -> 8 + Abc.msg_size kr m
  | Dec_share (_, shares) -> 40 + (List.length shares * 150)

(* Checkpoint GC hook: drop the decryption-share sets (n share lists
   per ciphertext — the dominant per-slot state) of every slot already
   delivered.  The slot entry itself stays, keeping ordered-ciphertext
   dedup intact.  Returns the number of slots compacted. *)
let compact t =
  let freed = ref 0 in
  Hashtbl.iter
    (fun _ slot ->
      if slot.position < t.next_delivery && slot.shares <> [] then begin
        slot.shares <- [];
        incr freed
      end)
    t.slots;
  t.early_shares <-
    List.filter
      (fun (d, _, _) ->
        match Hashtbl.find_opt t.slots d with
        | Some slot -> slot.position >= t.next_delivery
        | None -> true)
      t.early_shares;
  !freed

let abc t = t.abc
