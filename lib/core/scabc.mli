(** Secure causal atomic broadcast (paper, Sections 3 and 5.2): atomic
    broadcast composed with the TDH2 threshold cryptosystem.

    Requests are ordered as ciphertexts and decrypted only after their
    position is fixed, so contents stay secret until scheduled; CCA
    security prevents a corrupted server from submitting a related
    request (front-running protection for notary-style services). *)

type msg =
  | Abc_msg of Abc.msg
  | Dec_share of string * Tdh2.dec_share list

type t

val create :
  ?policy:Abc.policy ->
  io:msg Proto_io.t ->
  tag:string ->
  deliver:(label:string -> string -> unit) ->
  unit ->
  t
(** [deliver] receives decrypted requests strictly in the agreed order,
    with the authenticated TDH2 label.  [policy] is the batching /
    pipelining policy of the underlying atomic broadcast (ciphertexts
    are what gets batched; decryption still runs per ciphertext). *)

val encrypt_request : Keyring.t -> Prng.t -> label:string -> string -> string
(** Client-side: encrypt a request under the service's public key. *)

val broadcast : t -> string -> unit
(** Order an encrypted request (ciphertext bytes). *)

val handle : t -> src:int -> msg -> unit
val delivered_count : t -> int
val msg_size : Keyring.t -> msg -> int

val compact : t -> int
(** Checkpoint GC hook: drop the decryption-share sets of every slot
    already delivered (ordered-ciphertext dedup is preserved through
    the slot table).  Returns the number of slots compacted. *)

val abc : t -> Abc.t
(** The underlying atomic-broadcast instance, for checkpoint/GC
    plumbing. *)
