(* Deployment glue: instantiate one protocol node per server on top of
   the network simulator.

   The simulator's wire type is ['msg Link.frame] — every deployment
   frames its traffic, but with the link layer off (the default) each
   message travels as [Link.Raw], an unsequenced passthrough that the
   receiving side unwraps directly.  That keeps the message count, the
   delivery order and hence every PRNG draw identical to an unframed
   transport: link-off deployments behave bit-for-bit like the seed.
   Passing [?link] interposes a {!Link} endpoint per party, which
   sequences, acks and retransmits so that lossy chaos no longer costs
   liveness.

   The returned array holds every party's instance; tests and
   experiments corrupt a party by crashing it in the simulator, by
   replacing its handler with a malicious one ([Sim.set_handler] /
   [Sim.wrap_handler]), or — at deployment time — through the [?wrap]
   hook below, which the Byzantine behaviour library (lib/faults) uses.
   [wrap] operates at the payload level, below any link endpoint: a
   corrupted party still runs the link machinery (acks, dedup), because
   the link is transport infrastructure, not protocol logic — withheld
   acks are modelled separately, as chaos loss towards the victim.  All
   of these model full Byzantine corruption: the adversary even gets
   the party's keyring secrets, since the keyring record is shared. *)

let deploy (type node) ?layer ?bytes ?link ?on_link
    ?(wrap : (int -> 'msg Sim.handler -> 'msg Sim.handler) option)
    ~(sim : 'msg Link.frame Sim.t) ~(keyring : Keyring.t)
    ~(make : int -> 'msg Proto_io.t -> node)
    ~(handle : node -> src:int -> 'msg -> unit) () : node array =
  let n = Sim.n sim in
  match link with
  | None ->
    let nodes =
      Array.init n (fun me ->
          let io =
            Proto_io.make ~obs:(Sim.obs sim) ?layer ?bytes
              ~timer:(fun ~delay cb -> Sim.set_timer sim me ~delay cb)
              ~me ~keyring
              ~send:(fun dst m -> Sim.send sim ~src:me ~dst (Link.Raw m))
              ~broadcast:(fun m -> Sim.broadcast sim ~src:me (Link.Raw m))
              ()
          in
          make me io)
    in
    Array.iteri
      (fun me node ->
        let honest ~src m = handle node ~src m in
        let h = match wrap with None -> honest | Some w -> w me honest in
        Sim.set_handler sim me (fun ~src frame ->
            match frame with
            | Link.Raw m | Link.Data { payload = m; _ } -> h ~src m
            | Link.Ack _ -> ()))
      nodes;
    nodes
  | Some policy ->
    let endpoints =
      Array.init n (fun me ->
          let ep =
            Link.create ~obs:(Sim.obs sim) ~policy ~me ~n
              ~raw_send:(fun dst frame -> Sim.send sim ~src:me ~dst frame)
              ~timer:(fun ~delay cb -> Sim.set_timer sim me ~delay cb)
              ~deliver:(fun ~src:_ _ -> ())
              ()
          in
          (match on_link with None -> () | Some f -> f me ep);
          ep)
    in
    let nodes =
      Array.init n (fun me ->
          let ep = endpoints.(me) in
          let io =
            Proto_io.make ~obs:(Sim.obs sim) ?layer ?bytes
              ~timer:(fun ~delay cb -> Sim.set_timer sim me ~delay cb)
              ~me ~keyring
              ~send:(fun dst m -> Link.send ep dst m)
              ~broadcast:(fun m -> Link.broadcast ep m)
              ()
          in
          make me io)
    in
    Array.iteri
      (fun me node ->
        let honest ~src m = handle node ~src m in
        let h = match wrap with None -> honest | Some w -> w me honest in
        let ep = endpoints.(me) in
        Link.set_deliver ep (fun ~src m -> h ~src m);
        Sim.set_handler sim me (fun ~src frame -> Link.handle ep ~src frame))
      nodes;
    nodes

(* Client endpoints: a slot >= n attached to the same framed simulator.
   Clients are outside the replica group, so they never run link
   machinery — their traffic travels as [Link.Raw] in both directions
   and their loss recovery is protocol-level (request resend against
   execution dedup), not transport-level ARQ.  The handler unwraps
   whatever frame arrives; stray ACKs are ignored. *)

type 'msg client_io = {
  c_send : int -> 'msg -> unit;  (* to one server, Raw-framed *)
  c_send_all : 'msg -> unit;  (* to every server *)
  c_timer : delay:float -> (unit -> unit) -> unit;
  c_clock : unit -> float;
  c_obs : Obs.t;
  c_n : int;  (* server count *)
}

let client_endpoint ~(sim : 'msg Link.frame Sim.t) ~slot
    ~(handle : src:int -> 'msg -> unit) () : 'msg client_io =
  let n = Sim.n sim in
  if slot < n then
    invalid_arg "Stack.client_endpoint: slot collides with a server";
  Sim.set_handler sim slot (fun ~src frame ->
      match frame with
      | Link.Raw m | Link.Data { payload = m; _ } -> handle ~src m
      | Link.Ack _ -> ());
  {
    c_send = (fun dst m -> Sim.send sim ~src:slot ~dst (Link.Raw m));
    c_send_all =
      (fun m ->
        for dst = 0 to n - 1 do
          Sim.send sim ~src:slot ~dst (Link.Raw m)
        done);
    c_timer = (fun ~delay cb -> Sim.set_timer sim slot ~delay cb);
    c_clock = (fun () -> Sim.clock sim);
    c_obs = Sim.obs sim;
    c_n = n;
  }

(* Convenience deployments for each layer of the stack; each declares
   its layer label and wire-size estimate so the simulator's obs handle
   gets per-layer message/byte counters. *)

let deploy_rbc ?wrap ?link ~sim ~keyring ~sender ~deliver () =
  deploy ?wrap ?link ~sim ~keyring ~layer:"rbc" ~bytes:Rbc.msg_size
    ~make:(fun me io -> Rbc.create ~io ~sender ~deliver:(deliver me))
    ~handle:Rbc.handle ()

let deploy_cbc ?wrap ?link ~sim ~keyring ~tag ~sender ?validate ~deliver () =
  deploy ?wrap ?link ~sim ~keyring ~layer:"cbc" ~bytes:(Cbc.msg_size keyring)
    ~make:(fun me io -> Cbc.create ~io ~tag ~sender ?validate ~deliver:(deliver me) ())
    ~handle:Cbc.handle ()

let deploy_abba ?wrap ?link ?on_link ~sim ~keyring ~tag ~on_decide () =
  deploy ?wrap ?link ?on_link ~sim ~keyring ~layer:"abba"
    ~bytes:(Abba.msg_size keyring)
    ~make:(fun me io -> Abba.create ~io ~tag ~on_decide:(on_decide me))
    ~handle:Abba.handle ()

let deploy_vba ?wrap ?link ~sim ~keyring ~tag ?validate ~on_decide () =
  deploy ?wrap ?link ~sim ~keyring ~layer:"vba" ~bytes:(Vba.msg_size keyring)
    ~make:(fun me io -> Vba.create ~io ~tag ?validate ~on_decide:(on_decide me) ())
    ~handle:Vba.handle ()

(* Per-round in-flight diagnostics for the simulator's stall probe:
   which rounds each party has proposed in but not completed, and how
   many round proposals it has collected for each — the first thing to
   look at when a pipelined run exhausts its step budget. *)
let abc_stall_summary (nodes : Abc.t array) : string =
  let parts = ref [] in
  Array.iteri
    (fun i node ->
      match Abc.in_flight_rounds node with
      | [] -> ()
      | rs ->
        let s =
          String.concat ","
            (List.map (fun (r, props) -> Printf.sprintf "r%d:%d" r props) rs)
        in
        parts := Printf.sprintf "p%d[%s]" i s :: !parts)
    nodes;
  match List.rev !parts with
  | [] -> "abc: no rounds in flight"
  | ps -> "abc in-flight rounds (round:proposals) " ^ String.concat " " ps

let deploy_abc ?wrap ?policy ?link ?on_link ~sim ~keyring ~tag ~deliver () =
  let nodes =
    deploy ?wrap ?link ?on_link ~sim ~keyring ~layer:"abc"
      ~bytes:(Abc.msg_size keyring)
      ~make:(fun me io -> Abc.create ?policy ~io ~tag ~deliver:(deliver me) ())
      ~handle:Abc.handle ()
  in
  Sim.set_stall_probe sim (fun () -> abc_stall_summary nodes);
  nodes

let deploy_scabc ?wrap ?policy ?link ~sim ~keyring ~tag ~deliver () =
  deploy ?wrap ?link ~sim ~keyring ~layer:"scabc" ~bytes:(Scabc.msg_size keyring)
    ~make:(fun me io -> Scabc.create ?policy ~io ~tag ~deliver:(deliver me) ())
    ~handle:Scabc.handle ()
