(** Deployment glue: one protocol node per server on the simulator.

    The simulator's wire type is ['msg Link.frame].  With the link
    layer off (the default) every message travels as [Link.Raw] — an
    unsequenced passthrough with identical message count and delivery
    order to an unframed transport, so link-off deployments behave
    bit-for-bit like the pre-link stack.  Passing [?link] interposes a
    reliable {!Link} endpoint per party (sequencing, acks, timer-driven
    retransmission), which restores liveness under lossy chaos.

    Corrupt a party by crashing it ([Sim.crash]), replacing its handler
    with a malicious one ([Sim.set_handler] / [Sim.wrap_handler]), or by
    passing [?wrap] at deployment time — the injection point the
    Byzantine behaviour library (lib/faults) uses, which avoids any
    window where the honest handler could run first.  [wrap] operates at
    the payload level, below any link endpoint: a corrupted party still
    acks and deduplicates, because the link is transport infrastructure
    rather than protocol logic (ack withholding is modelled as chaos
    loss towards the victim).  The keyring record is shared, so a
    corrupted handler models full corruption including key exposure. *)

val deploy :
  ?layer:string ->
  ?bytes:('msg -> int) ->
  ?link:Link.policy ->
  ?on_link:(int -> 'msg Link.t -> unit) ->
  ?wrap:(int -> 'msg Sim.handler -> 'msg Sim.handler) ->
  sim:'msg Link.frame Sim.t ->
  keyring:Keyring.t ->
  make:(int -> 'msg Proto_io.t -> 'node) ->
  handle:('node -> src:int -> 'msg -> unit) ->
  unit ->
  'node array
(** Each node's [Proto_io.t] carries the simulator's observability
    handle ([Sim.obs]); [layer]/[bytes] feed its per-layer counters.
    [wrap me honest] is applied to every party's handler before it is
    installed (identity by default).  With [?link], [on_link me ep]
    exposes each party's link endpoint as it is created (introspection
    for tests: in-flight depth, backlog, retransmit counts).  The
    [deploy_*] conveniences below set layer and size (layers ["rbc"],
    ["cbc"], ["abba"], ["vba"], ["abc"], ["scabc"], with the matching
    [msg_size]) and pass [?wrap] / [?link] through. *)

type 'msg client_io = {
  c_send : int -> 'msg -> unit;  (** to one server, Raw-framed *)
  c_send_all : 'msg -> unit;  (** to every server *)
  c_timer : delay:float -> (unit -> unit) -> unit;
  c_clock : unit -> float;  (** the simulator's virtual clock *)
  c_obs : Obs.t;
  c_n : int;  (** server count *)
}
(** What a client needs from the deployment: addressed/broadcast sends,
    a virtual-time timer for resend schedules, the clock for latency
    measurement, and the observability handle. *)

val client_endpoint :
  sim:'msg Link.frame Sim.t ->
  slot:int ->
  handle:(src:int -> 'msg -> unit) ->
  unit ->
  'msg client_io
(** Attach a client to simulator slot [slot] (must be >= n: clients live
    outside the replica group).  Client traffic travels as [Link.Raw] in
    both directions — clients run no ARQ; their loss recovery is
    protocol-level resend against server-side execution dedup.  The
    installed handler unwraps Raw and Data frames and ignores ACKs.
    Raises [Invalid_argument] if [slot] names a server. *)

val deploy_rbc :
  ?wrap:(int -> Rbc.msg Sim.handler -> Rbc.msg Sim.handler) ->
  ?link:Link.policy ->
  sim:Rbc.msg Link.frame Sim.t ->
  keyring:Keyring.t ->
  sender:int ->
  deliver:(int -> string -> unit) ->
  unit ->
  Rbc.t array

val deploy_cbc :
  ?wrap:(int -> Cbc.msg Sim.handler -> Cbc.msg Sim.handler) ->
  ?link:Link.policy ->
  sim:Cbc.msg Link.frame Sim.t ->
  keyring:Keyring.t ->
  tag:string ->
  sender:int ->
  ?validate:(string -> bool) ->
  deliver:(int -> string -> Keyring.cert -> unit) ->
  unit ->
  Cbc.t array

val deploy_abba :
  ?wrap:(int -> Abba.msg Sim.handler -> Abba.msg Sim.handler) ->
  ?link:Link.policy ->
  ?on_link:(int -> Abba.msg Link.t -> unit) ->
  sim:Abba.msg Link.frame Sim.t ->
  keyring:Keyring.t ->
  tag:string ->
  on_decide:(int -> bool -> unit) ->
  unit ->
  Abba.t array

val deploy_vba :
  ?wrap:(int -> Vba.msg Sim.handler -> Vba.msg Sim.handler) ->
  ?link:Link.policy ->
  sim:Vba.msg Link.frame Sim.t ->
  keyring:Keyring.t ->
  tag:string ->
  ?validate:(string -> bool) ->
  on_decide:(int -> winner:int -> string -> unit) ->
  unit ->
  Vba.t array

val abc_stall_summary : Abc.t array -> string
(** Per-party, per-round in-flight diagnostics ("p0[r3:2,r4:1] ..." —
    round:proposals-collected); [deploy_abc] installs it as the
    simulator's stall probe so [Sim.Out_of_steps] reports where a
    pipelined run was stuck. *)

val deploy_abc :
  ?wrap:(int -> Abc.msg Sim.handler -> Abc.msg Sim.handler) ->
  ?policy:Abc.policy ->
  ?link:Link.policy ->
  ?on_link:(int -> Abc.msg Link.t -> unit) ->
  sim:Abc.msg Link.frame Sim.t ->
  keyring:Keyring.t ->
  tag:string ->
  deliver:(int -> string -> unit) ->
  unit ->
  Abc.t array
(** Also installs {!abc_stall_summary} over the deployed nodes as the
    simulator's stall probe.  [policy] (default {!Abc.default_policy})
    is applied identically to every party, as batching requires. *)

val deploy_scabc :
  ?wrap:(int -> Scabc.msg Sim.handler -> Scabc.msg Sim.handler) ->
  ?policy:Abc.policy ->
  ?link:Link.policy ->
  sim:Scabc.msg Link.frame Sim.t ->
  keyring:Keyring.t ->
  tag:string ->
  deliver:(int -> label:string -> string -> unit) ->
  unit ->
  Scabc.t array
