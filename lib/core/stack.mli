(** Deployment glue: one protocol node per server on the simulator.

    Corrupt a party by crashing it ([Sim.crash]) or replacing its handler
    with a malicious one ([Sim.set_handler]) — the keyring record is
    shared, so a replaced handler models full corruption including key
    exposure. *)

val deploy :
  ?layer:string ->
  ?bytes:('msg -> int) ->
  sim:'msg Sim.t ->
  keyring:Keyring.t ->
  make:(int -> 'msg Proto_io.t -> 'node) ->
  handle:('node -> src:int -> 'msg -> unit) ->
  unit ->
  'node array
(** Each node's [Proto_io.t] carries the simulator's observability
    handle ([Sim.obs]); [layer]/[bytes] feed its per-layer counters.
    The [deploy_*] conveniences below set both (layers ["rbc"], ["cbc"],
    ["abba"], ["vba"], ["abc"], ["scabc"], with the matching
    [msg_size]). *)

val deploy_rbc :
  sim:Rbc.msg Sim.t ->
  keyring:Keyring.t ->
  sender:int ->
  deliver:(int -> string -> unit) ->
  Rbc.t array

val deploy_cbc :
  sim:Cbc.msg Sim.t ->
  keyring:Keyring.t ->
  tag:string ->
  sender:int ->
  ?validate:(string -> bool) ->
  deliver:(int -> string -> Keyring.cert -> unit) ->
  unit ->
  Cbc.t array

val deploy_abba :
  sim:Abba.msg Sim.t ->
  keyring:Keyring.t ->
  tag:string ->
  on_decide:(int -> bool -> unit) ->
  Abba.t array

val deploy_vba :
  sim:Vba.msg Sim.t ->
  keyring:Keyring.t ->
  tag:string ->
  ?validate:(string -> bool) ->
  on_decide:(int -> winner:int -> string -> unit) ->
  unit ->
  Vba.t array

val deploy_abc :
  sim:Abc.msg Sim.t ->
  keyring:Keyring.t ->
  tag:string ->
  deliver:(int -> string -> unit) ->
  Abc.t array

val deploy_scabc :
  sim:Scabc.msg Sim.t ->
  keyring:Keyring.t ->
  tag:string ->
  deliver:(int -> label:string -> string -> unit) ->
  Scabc.t array
