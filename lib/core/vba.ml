(* Multi-valued validated Byzantine agreement (Cachin, Kursawe, Petzold,
   Shoup), the engine of the atomic broadcast protocol (paper, Section 3).

   "External validity": agreement is on values from an arbitrary domain,
   constrained by a global predicate every honest party can evaluate, so
   the decided value is always acceptable to honest parties — this rules
   out deciding a value nobody proposed.

   Structure:
   1. every party consistent-broadcasts its (validated) proposal;
   2. once a big-quorum of proposals is delivered, the parties release
      shares of a fresh threshold coin whose value selects a random
      permutation of the candidates (so the adversary cannot aim its
      corruptions at the candidates that will be examined first);
   3. the candidates are examined in permuted order, one binary ABBA per
      candidate with input "do I hold this candidate's proposal?";
      parties voting 1 first forward the transferable consistent-
      broadcast certificate, so by ABBA validity a 1-decision implies
      the proposal is held by an honest party and reaches everyone;
   4. the first 1-decision selects the agreed value.  If a whole sweep
      decides 0 (possible when honest commit sets are disjoint enough),
      the loop re-examines candidates in further attempts; meanwhile
      the forwarded certificates have propagated, so a later attempt
      has every honest party voting 1.  Expected number of ABBA
      instances is constant. *)

type msg =
  | Proposal_cbc of int * Cbc.msg  (* proposer, embedded CBC *)
  | Perm_share of Coin.share list
  | Abba_msg of int * Abba.msg  (* position in the examination sequence *)
  | Final_fwd of int * string * Keyring.cert  (* candidate, payload, cert *)

type t = {
  io : msg Proto_io.t;
  tag : string;
  validate : string -> bool;
  on_decide : winner:int -> string -> unit;
  cbcs : Cbc.t array;
  mutable proposals : (int * (string * Keyring.cert)) list;  (* delivered *)
  mutable committed : bool;
  mutable sent_perm_share : bool;
  mutable perm_shares : (int * Coin.share list) list;
  mutable perm : int array option;
  abbas : (int, Abba.t) Hashtbl.t;  (* position -> instance *)
  decisions : (int, bool) Hashtbl.t;  (* position -> ABBA decision *)
  forwarded : (int, unit) Hashtbl.t;  (* candidates whose cert we forwarded *)
  mutable position : int;  (* first position not yet decided *)
  mutable winner : int option;
  mutable decided : (int * string) option;
  mutable sp_inst : int;  (* open trace span; 0 = none *)
}

let cbc_tag t proposer = t.tag ^ "/prop/" ^ string_of_int proposer
let perm_coin_name t = Ro.encode [ "vba-perm"; t.tag ]

let n t = Proto_io.n t.io

let rec create ~(io : msg Proto_io.t) ~tag ?(validate = fun _ -> true)
    ~on_decide () : t =
  let t_ref = ref None in
  let cbcs =
    Array.init (Proto_io.n io) (fun proposer ->
        Cbc.create
          ~io:
            (Proto_io.embed ~layer:"cbc"
               ~bytes:(Cbc.msg_size io.Proto_io.keyring) io
               ~wrap:(fun m -> Proposal_cbc (proposer, m)))
          ~tag:(tag ^ "/prop/" ^ string_of_int proposer)
          ~sender:proposer ~validate
          ~deliver:(fun payload cert ->
            match !t_ref with
            | Some t -> on_proposal t proposer payload cert
            | None -> ())
          ())
  in
  let t =
    { io;
      tag;
      validate;
      on_decide;
      cbcs;
      proposals = [];
      committed = false;
      sent_perm_share = false;
      perm_shares = [];
      perm = None;
      abbas = Hashtbl.create 8;
      decisions = Hashtbl.create 8;
      forwarded = Hashtbl.create 8;
      position = 0;
      winner = None;
      decided = None;
      sp_inst = 0 }
  in
  t_ref := Some t;
  t

and on_proposal t proposer payload cert =
  if not (List.mem_assoc proposer t.proposals) then begin
    t.proposals <- (proposer, (payload, cert)) :: t.proposals;
    step t
  end

and abba_at t position : Abba.t =
  match Hashtbl.find_opt t.abbas position with
  | Some a -> a
  | None ->
    let a =
      Abba.create
        ~io:
          (Proto_io.embed ~layer:"abba"
             ~bytes:(Abba.msg_size t.io.Proto_io.keyring) t.io
             ~wrap:(fun m -> Abba_msg (position, m)))
        ~tag:(t.tag ^ "/abba/" ^ string_of_int position)
        ~on_decide:(fun b -> on_abba_decision t position b)
    in
    Hashtbl.add t.abbas position a;
    a

and on_abba_decision t position b =
  if not (Hashtbl.mem t.decisions position) then begin
    Hashtbl.replace t.decisions position b;
    step t
  end

and candidate_of t position =
  match t.perm with
  | None -> None
  | Some perm -> Some perm.(position mod Array.length perm)

and step t =
  if t.decided = None then begin
    (* Release the permutation-coin share once our commit quorum holds. *)
    let delivered =
      List.fold_left (fun acc (p, _) -> Pset.add p acc) Pset.empty t.proposals
    in
    if (not t.committed) && Proto_io.big_quorum t.io delivered then begin
      t.committed <- true;
      if not t.sent_perm_share then begin
        t.sent_perm_share <- true;
        let shares =
          Coin.generate_share t.io.Proto_io.keyring.Keyring.coin
            ~party:t.io.Proto_io.me ~name:(perm_coin_name t)
        in
        t.io.Proto_io.broadcast (Perm_share shares)
      end
    end;
    (* Walk the examination sequence. *)
    match t.perm with
    | None -> ()
    | Some _ ->
      (match t.winner with
      | Some c ->
        (* Waiting for the winning proposal (it is held by at least one
           honest party and forwarded, so it arrives). *)
        (match List.assoc_opt c t.proposals with
        | Some (payload, _) ->
          t.decided <- Some (c, payload);
          let obs = t.io.Proto_io.obs in
          Obs.span_end obs t.sp_inst;
          t.sp_inst <- 0;
          Obs.point obs ~party:t.io.Proto_io.me ~src:c ~tag:t.tag
            ~layer:"vba" "decide";
          t.on_decide ~winner:c payload
        | None -> ())
      | None ->
        let rec walk pos =
          match Hashtbl.find_opt t.decisions pos with
          | Some true ->
            t.position <- pos;
            (match candidate_of t pos with
            | Some c ->
              t.winner <- Some c;
              step t
            | None -> ())
          | Some false -> walk (pos + 1)
          | None ->
            t.position <- pos;
            let a = abba_at t pos in
            (match candidate_of t pos with
            | None -> ()
            | Some c ->
              let input =
                match List.assoc_opt c t.proposals with
                | Some (payload, cert) ->
                  (* Forward the transferable proposal (once) before
                     voting 1, so 0-attempts converge and the winner
                     propagates to every honest party. *)
                  if not (Hashtbl.mem t.forwarded c) then begin
                    Hashtbl.replace t.forwarded c ();
                    t.io.Proto_io.broadcast (Final_fwd (c, payload, cert))
                  end;
                  true
                | None -> false
              in
              Abba.propose a input)
        in
        walk t.position)
  end

and try_combine_perm t =
  if t.perm = None then begin
    let avail =
      List.fold_left (fun acc (p, _) -> Pset.add p acc) Pset.empty t.perm_shares
    in
    match
      Coin.combine t.io.Proto_io.keyring.Keyring.coin ~name:(perm_coin_name t)
        ~avail t.perm_shares ~bits:30 ()
    with
    | None -> ()
    | Some seed ->
      (* Fisher-Yates driven by the coin: same permutation everywhere. *)
      let rng = Prng.create ~seed in
      let perm = Array.init (n t) Fun.id in
      for i = n t - 1 downto 1 do
        let j = Prng.int rng (i + 1) in
        let tmp = perm.(i) in
        perm.(i) <- perm.(j);
        perm.(j) <- tmp
      done;
      t.perm <- Some perm;
      step t
  end

let propose t (value : string) =
  assert (t.validate value);
  if t.sp_inst = 0 && t.decided = None then
    t.sp_inst <-
      Obs.span_begin t.io.Proto_io.obs ~party:t.io.Proto_io.me ~tag:t.tag
        ~layer:"vba" "instance";
  Cbc.broadcast t.cbcs.(t.io.Proto_io.me) value

let handle t ~src msg =
  match msg with
  | Proposal_cbc (proposer, m) ->
    if proposer >= 0 && proposer < n t then
      Cbc.handle t.cbcs.(proposer) ~src m
  | Perm_share shares ->
    if
      (not (List.mem_assoc src t.perm_shares))
      (* Lazy policy: shape check at receipt, batched proof check at
         combine time (with attributed pruning). *)
      && (if Crypto_policy.is_lazy () then
            Coin.check_shape t.io.Proto_io.keyring.Keyring.coin ~party:src
              shares
          else
            Coin.verify_share t.io.Proto_io.keyring.Keyring.coin ~party:src
              ~name:(perm_coin_name t) shares)
    then begin
      t.perm_shares <- (src, shares) :: t.perm_shares;
      try_combine_perm t
    end
  | Abba_msg (position, m) ->
    if position >= 0 && position < 64 * n t then
      Abba.handle (abba_at t position) ~src m
  | Final_fwd (candidate, payload, cert) ->
    if
      candidate >= 0 && candidate < n t
      && (not (List.mem_assoc candidate t.proposals))
      && t.validate payload
      && Cbc.check_transferred ~keyring:t.io.Proto_io.keyring
           ~tag:(cbc_tag t candidate) ~sender:candidate payload cert
    then begin
      t.proposals <- (candidate, (payload, cert)) :: t.proposals;
      step t
    end

let result t = t.decided

let msg_size kr = function
  | Proposal_cbc (_, m) -> 8 + Cbc.msg_size kr m
  | Perm_share shares -> 8 + (List.length shares * 150)
  | Abba_msg (_, m) -> 8 + Abba.msg_size kr m
  | Final_fwd (_, payload, cert) ->
    16 + String.length payload + Keyring.cert_size kr cert

let msg_summary = function
  | Proposal_cbc (p, m) -> Printf.sprintf "vba.prop[%d]/%s" p (Cbc.msg_summary m)
  | Perm_share _ -> "vba.PERM-COIN"
  | Abba_msg (pos, m) -> Printf.sprintf "vba.cand[%d]/%s" pos (Abba.msg_summary m)
  | Final_fwd (c, p, _) -> Printf.sprintf "vba.FWD[%d](%d B)" c (String.length p)

(* Release the instance's agreement state (proposals, permutation
   shares, ABBA children and their vote tables).  The terminal result
   survives; everything else is what checkpoint GC wants back. *)
let retire t =
  Hashtbl.iter (fun _ a -> Abba.retire a) t.abbas;
  Hashtbl.reset t.abbas;
  Hashtbl.reset t.decisions;
  Hashtbl.reset t.forwarded;
  t.proposals <- [];
  t.perm_shares <- [];
  t.perm <- None
