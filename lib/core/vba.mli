(** Multi-valued validated Byzantine agreement (Cachin, Kursawe, Petzold
    & Shoup) — agreement on values from arbitrary domains constrained by
    an external-validity predicate, so the decision is always acceptable
    to honest parties (paper, Section 3).

    Every party consistent-broadcasts its proposal; a threshold coin
    picks a random examination order; one binary agreement per candidate
    ("do I hold its proposal?") selects the winner, whose transferable
    consistent-broadcast certificate propagates it to everyone.  Expected
    constant number of binary agreements. *)

type msg =
  | Proposal_cbc of int * Cbc.msg
  | Perm_share of Coin.share list
  | Abba_msg of int * Abba.msg
  | Final_fwd of int * string * Keyring.cert

type t

val create :
  io:msg Proto_io.t ->
  tag:string ->
  ?validate:(string -> bool) ->
  on_decide:(winner:int -> string -> unit) ->
  unit ->
  t

val propose : t -> string -> unit
(** The value must satisfy the validity predicate. *)

val handle : t -> src:int -> msg -> unit
val result : t -> (int * string) option
val msg_size : Keyring.t -> msg -> int

val msg_summary : msg -> string

val retire : t -> unit
(** Release the agreement state — proposals, permutation shares, ABBA
    children (each {!Abba.retire}d) — keeping only the terminal
    {!result}.  For checkpoint GC of decided rounds. *)
