(* Certificate-style threshold signatures for generalized adversary
   structures.

   Section 4.2 of the paper asserts that all threshold-cryptographic
   protocols extend to any Q^3 structure with a linear secret sharing
   scheme.  For signatures, no *compact* such scheme was known in 2001;
   we implement the natural LSSS extension of the unique-signature
   approach: party i's share on message M is sigma_l = H'(M)^{x_l} per
   owned leaf with a DLEQ proof against the leaf verification key, and a
   "signature" is a sharing-qualified set of verified shares together
   with the recombined value H'(M)^x.  Verification re-checks the proofs
   and the recombination, so the certificate is publicly verifiable
   against the dealer's public keys — same interface as a threshold
   signature, with size proportional to the qualified set (the
   substitution is recorded in DESIGN.md). *)

module B = Bignum
module G = Schnorr_group

type share = { leaf : int; value : G.elt; proof : Dleq.t }

type certificate = {
  signers : Pset.t;
  shares : (int * share list) list;  (* party -> leaf shares *)
  combined : G.elt;  (* H'(M)^x : the unique signature value *)
}

let domain = "sintra/certsig"
let base_domain = domain ^ "/base"
let share_domain = domain ^ "/share"

let base (t : Dl_sharing.t) (msg : string) : G.elt =
  G.hash_to_elt t.Dl_sharing.group ~domain:base_domain [ msg ]

let sign_share (t : Dl_sharing.t) ~(party : int) (msg : string) : share list =
  Obs_crypto.sign ();
  let ps = t.Dl_sharing.group in
  let h = base t msg in
  let own = Dl_sharing.shares_of t party in
  (* As for the coin base: H'(M) is exponentiated twice per owned leaf
     here and once per leaf by every verifier, all through the shared
     table cache. *)
  if List.length own >= 3 then G.prepare_base ps h;
  List.map
    (fun (s : Lsss.subshare) ->
      let value = G.exp ps h s.value in
      let proof =
        Dleq.prove ps ~domain:share_domain ~x:s.value ~g1:ps.G.g
          ~h1:t.Dl_sharing.leaf_keys.(s.leaf) ~g2:h ~h2:value
      in
      { leaf = s.leaf; value; proof })
    own

(* Structural validity alone (share count, leaf bounds, ownership). *)
let check_shape (t : Dl_sharing.t) ~(party : int) (shares : share list) :
    bool =
  let expected = Dl_sharing.shares_of t party in
  List.length shares = List.length expected
  && List.for_all
       (fun (s : share) ->
         s.leaf >= 0
         && s.leaf < Array.length t.Dl_sharing.leaf_keys
         && Lsss.leaf_owner t.Dl_sharing.scheme s.leaf = party)
       shares

let flatten_shares party (shares : share list) : Share_batch.flat list =
  List.map
    (fun (s : share) ->
      { Share_batch.party; leaf = s.leaf; value = s.value; proof = s.proof })
    shares

let verify_share (t : Dl_sharing.t) ~(party : int) (msg : string)
    (shares : share list) : bool =
  Obs_crypto.share_verify ();
  let ps = t.Dl_sharing.group in
  let h = base t msg in
  let expected = Dl_sharing.shares_of t party in
  if List.length expected >= 3 then G.prepare_base ps h;
  if Crypto_policy.batchable (List.length shares) then
    check_shape t ~party shares
    && Share_batch.verify_party_batch t ~domain:share_domain ~base:h
         (flatten_shares party shares)
  else
    List.length shares = List.length expected
    && List.for_all
         (fun (s : share) ->
           s.leaf >= 0
           && s.leaf < Array.length t.Dl_sharing.leaf_keys
           && Lsss.leaf_owner t.Dl_sharing.scheme s.leaf = party
           && Dleq.verify ps ~domain:share_domain ~g1:ps.G.g
                ~h1:t.Dl_sharing.leaf_keys.(s.leaf) ~g2:h ~h2:s.value s.proof)
         shares

(* Eager policy: the caller verified each party's shares and this only
   recombines (seed behaviour).  Lazy policy: shares arrive
   proof-unchecked and are validated here with one batched check,
   pruning attributed-bad parties. *)
let combine (t : Dl_sharing.t) (msg : string)
    (shares : (int * share list) list) : certificate option =
  Obs_crypto.combine ();
  let recombine (shares : (int * share list) list) =
    let signers =
      List.fold_left (fun acc (p, _) -> Pset.add p acc) Pset.empty shares
    in
    let leaf_values =
      List.concat_map
        (fun (_, ss) -> List.map (fun (s : share) -> (s.leaf, s.value)) ss)
        shares
    in
    match Dl_sharing.combine_in_exponent t ~avail:signers ~leaf_values with
    | None -> None
    | Some combined -> Some { signers; shares; combined }
  in
  if not (Crypto_policy.is_lazy ()) then recombine shares
  else begin
    let avail =
      List.fold_left (fun acc (p, _) -> Pset.add p acc) Pset.empty shares
    in
    let flat =
      List.concat_map (fun (party, ss) -> flatten_shares party ss) shares
    in
    match
      Share_batch.validate_for_combine t ~domain:share_domain
        ~base:(base t msg) ~avail flat
    with
    | None -> None
    | Some (_, good) ->
      let keep p =
        List.exists (fun (f : Share_batch.flat) -> f.party = p) good
      in
      recombine (List.filter (fun (p, _) -> keep p) shares)
  end

let verify (t : Dl_sharing.t) (msg : string) (cert : certificate) : bool =
  Obs_crypto.verify ();
  (* A full certificate re-checks one DLEQ proof per leaf share; when
     there are enough of them, table the message base once up front. *)
  let total_leaves =
    List.fold_left (fun n (_, ss) -> n + List.length ss) 0 cert.shares
  in
  let h = base t msg in
  if total_leaves >= 3 then G.prepare_base t.Dl_sharing.group h;
  (if Crypto_policy.batchable total_leaves then
     (* Every share of a certificate proves against the same (g, H'(M))
        base pair, so the whole certificate folds into one batch. *)
     List.for_all (fun (party, ss) -> check_shape t ~party ss) cert.shares
     && Share_batch.verify_party_batch t ~domain:share_domain ~base:h
          (List.concat_map
             (fun (party, ss) -> flatten_shares party ss)
             cert.shares)
   else
     List.for_all
       (fun (party, ss) -> verify_share t ~party msg ss)
       cert.shares)
  &&
  let signers =
    List.fold_left (fun acc (p, _) -> Pset.add p acc) Pset.empty cert.shares
  in
  Pset.equal signers cert.signers
  &&
  let leaf_values =
    List.concat_map
      (fun (_, ss) -> List.map (fun (s : share) -> (s.leaf, s.value)) ss)
      cert.shares
  in
  match Dl_sharing.combine_in_exponent t ~avail:signers ~leaf_values with
  | None -> false
  | Some c -> G.elt_equal c cert.combined
