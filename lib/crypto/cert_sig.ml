(* Certificate-style threshold signatures for generalized adversary
   structures.

   Section 4.2 of the paper asserts that all threshold-cryptographic
   protocols extend to any Q^3 structure with a linear secret sharing
   scheme.  For signatures, no *compact* such scheme was known in 2001;
   we implement the natural LSSS extension of the unique-signature
   approach: party i's share on message M is sigma_l = H'(M)^{x_l} per
   owned leaf with a DLEQ proof against the leaf verification key, and a
   "signature" is a sharing-qualified set of verified shares together
   with the recombined value H'(M)^x.  Verification re-checks the proofs
   and the recombination, so the certificate is publicly verifiable
   against the dealer's public keys — same interface as a threshold
   signature, with size proportional to the qualified set (the
   substitution is recorded in DESIGN.md). *)

module B = Bignum
module G = Schnorr_group

type share = { leaf : int; value : G.elt; proof : Dleq.t }

type certificate = {
  signers : Pset.t;
  shares : (int * share list) list;  (* party -> leaf shares *)
  combined : G.elt;  (* H'(M)^x : the unique signature value *)
}

let domain = "sintra/certsig"

let base (t : Dl_sharing.t) (msg : string) : G.elt =
  G.hash_to_elt t.Dl_sharing.group ~domain:(domain ^ "/base") [ msg ]

let sign_share (t : Dl_sharing.t) ~(party : int) (msg : string) : share list =
  Obs_crypto.sign ();
  let ps = t.Dl_sharing.group in
  let h = base t msg in
  let own = Dl_sharing.shares_of t party in
  (* As for the coin base: H'(M) is exponentiated twice per owned leaf
     here and once per leaf by every verifier, all through the shared
     table cache. *)
  if List.length own >= 3 then G.prepare_base ps h;
  List.map
    (fun (s : Lsss.subshare) ->
      let value = G.exp ps h s.value in
      let proof =
        Dleq.prove ps ~domain:(domain ^ "/share") ~x:s.value ~g1:ps.G.g
          ~h1:t.Dl_sharing.leaf_keys.(s.leaf) ~g2:h ~h2:value
      in
      { leaf = s.leaf; value; proof })
    own

let verify_share (t : Dl_sharing.t) ~(party : int) (msg : string)
    (shares : share list) : bool =
  Obs_crypto.share_verify ();
  let ps = t.Dl_sharing.group in
  let h = base t msg in
  let expected = Dl_sharing.shares_of t party in
  if List.length expected >= 3 then G.prepare_base ps h;
  List.length shares = List.length expected
  && List.for_all
       (fun (s : share) ->
         s.leaf >= 0
         && s.leaf < Array.length t.Dl_sharing.leaf_keys
         && Lsss.leaf_owner t.Dl_sharing.scheme s.leaf = party
         && Dleq.verify ps ~domain:(domain ^ "/share") ~g1:ps.G.g
              ~h1:t.Dl_sharing.leaf_keys.(s.leaf) ~g2:h ~h2:s.value s.proof)
       shares

let combine (t : Dl_sharing.t) (_msg : string)
    (shares : (int * share list) list) : certificate option =
  Obs_crypto.combine ();
  let signers =
    List.fold_left (fun acc (p, _) -> Pset.add p acc) Pset.empty shares
  in
  let leaf_values =
    List.concat_map
      (fun (_, ss) -> List.map (fun (s : share) -> (s.leaf, s.value)) ss)
      shares
  in
  match Dl_sharing.combine_in_exponent t ~avail:signers ~leaf_values with
  | None -> None
  | Some combined -> Some { signers; shares; combined }

let verify (t : Dl_sharing.t) (msg : string) (cert : certificate) : bool =
  Obs_crypto.verify ();
  (* A full certificate re-checks one DLEQ proof per leaf share; when
     there are enough of them, table the message base once up front. *)
  let total_leaves =
    List.fold_left (fun n (_, ss) -> n + List.length ss) 0 cert.shares
  in
  if total_leaves >= 3 then G.prepare_base t.Dl_sharing.group (base t msg);
  List.for_all
    (fun (party, ss) -> verify_share t ~party msg ss)
    cert.shares
  &&
  let signers =
    List.fold_left (fun acc (p, _) -> Pset.add p acc) Pset.empty cert.shares
  in
  Pset.equal signers cert.signers
  &&
  let leaf_values =
    List.concat_map
      (fun (_, ss) -> List.map (fun (s : share) -> (s.leaf, s.value)) ss)
      cert.shares
  in
  match Dl_sharing.combine_in_exponent t ~avail:signers ~leaf_values with
  | None -> false
  | Some c -> G.elt_equal c cert.combined
