(** Certificate-style threshold signatures for generalized adversary
    structures.

    The natural LSSS extension of the unique-signature approach: a share
    on M is H'(M){^{x_l}} per owned leaf with a DLEQ proof, and a
    signature is a sharing-qualified set of verified shares together with
    the recombined H'(M){^x}.  Same interface as a compact threshold
    signature, size proportional to the qualified set (substitution
    documented in DESIGN.md — no compact general-structure scheme was
    known in 2001). *)

type share = { leaf : int; value : Schnorr_group.elt; proof : Dleq.t }

type certificate = {
  signers : Pset.t;
  shares : (int * share list) list;
  combined : Schnorr_group.elt;  (** H'(M){^x}: the unique signature value *)
}

val sign_share : Dl_sharing.t -> party:int -> string -> share list

val check_shape : Dl_sharing.t -> party:int -> share list -> bool
(** Structural validity only (share count, leaf bounds, ownership). *)

val verify_share : Dl_sharing.t -> party:int -> string -> share list -> bool
(** Per-proof as in the seed, or one batched check when
    {!Crypto_policy.batchable} says so. *)

val combine :
  Dl_sharing.t -> string -> (int * share list) list -> certificate option
(** [None] unless the signers form a sharing-qualified set.  Under the
    lazy policy, shares are proof-checked here (one batch, with pruning
    of attributed-bad parties) instead of at receipt. *)

val verify : Dl_sharing.t -> string -> certificate -> bool
(** Re-checks every share proof — as one batch over the whole
    certificate when {!Crypto_policy.batchable} says so — plus the
    signer set and the recombination. *)
