(* Threshold coin-tossing scheme of Cachin, Kursawe and Shoup.

   For a coin with name N, let g_N = H'(N) be a random group element.
   Party i's coin share for leaf l is sigma_l = g_N^{x_l} together with a
   DLEQ proof against the leaf verification key.  Any sharing-qualified
   set of verified shares recombines (in the exponent) to g_N^x, whose
   hash gives the coin value — unpredictable until a qualified set
   cooperates, and identical for all parties.  This is the source of
   shared randomness that lets the ABBA protocol of Section 3 circumvent
   the FLP impossibility result. *)

module B = Bignum
module G = Schnorr_group

type share = { leaf : int; value : G.elt; proof : Dleq.t }

let domain = "sintra/coin"

let coin_base (t : Dl_sharing.t) ~(name : string) : G.elt =
  G.hash_to_elt t.Dl_sharing.group ~domain:(domain ^ "/base") [ name ]

let generate_share (t : Dl_sharing.t) ~(party : int) ~(name : string) :
    share list =
  Obs_crypto.sign ();
  let ps = t.Dl_sharing.group in
  let g_name = coin_base t ~name in
  let own = Dl_sharing.shares_of t party in
  (* Each owned leaf costs two exponentiations on g_N (the share and the
     DLEQ commitment); from a few leaves a fixed-base table pays off,
     and verifiers of the same coin reuse it via the shared cache. *)
  if List.length own >= 3 then G.prepare_base ps g_name;
  List.map
    (fun (s : Lsss.subshare) ->
      let value = G.exp ps g_name s.value in
      let proof =
        Dleq.prove ps ~domain:(domain ^ "/share") ~x:s.value ~g1:ps.G.g
          ~h1:t.Dl_sharing.leaf_keys.(s.leaf) ~g2:g_name ~h2:value
      in
      { leaf = s.leaf; value; proof })
    own

(* A share from a (possibly corrupted) party is accepted only when every
   claimed leaf belongs to that party and every DLEQ proof verifies. *)
let verify_share (t : Dl_sharing.t) ~(party : int) ~(name : string)
    (shares : share list) : bool =
  Obs_crypto.share_verify ();
  let ps = t.Dl_sharing.group in
  let g_name = coin_base t ~name in
  let expected = Dl_sharing.shares_of t party in
  if List.length expected >= 3 then G.prepare_base ps g_name;
  List.length shares = List.length expected
  && List.for_all
       (fun (s : share) ->
         s.leaf >= 0
         && s.leaf < Array.length t.Dl_sharing.leaf_keys
         && Lsss.leaf_owner t.Dl_sharing.scheme s.leaf = party
         && Dleq.verify ps ~domain:(domain ^ "/share") ~g1:ps.G.g
              ~h1:t.Dl_sharing.leaf_keys.(s.leaf) ~g2:g_name ~h2:s.value
              s.proof)
       shares

(* Combine verified shares from the parties in [avail] into the coin
   value.  [bits] selects how many unpredictable bits to extract (the
   ABBA protocol needs one; the validated-agreement permutation uses
   30); at most 30. *)
let combine (t : Dl_sharing.t) ~(name : string) ~(avail : Pset.t)
    (shares : (int * share list) list) ?(bits = 1) () : int option =
  if bits < 1 || bits > 30 then invalid_arg "Coin.combine: bits out of range";
  Obs_crypto.combine ();
  let leaf_values =
    List.concat_map
      (fun (_, ss) -> List.map (fun (s : share) -> (s.leaf, s.value)) ss)
      shares
  in
  match Dl_sharing.combine_in_exponent t ~avail ~leaf_values with
  | None -> None
  | Some sigma ->
    let raw =
      Ro.hash ~domain:(domain ^ "/value")
        [ name; G.elt_to_bytes t.Dl_sharing.group sigma ]
    in
    let v =
      (Char.code raw.[0] lsl 24)
      lor (Char.code raw.[1] lsl 16)
      lor (Char.code raw.[2] lsl 8)
      lor Char.code raw.[3]
    in
    Some (v land ((1 lsl bits) - 1))
