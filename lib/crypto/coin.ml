(* Threshold coin-tossing scheme of Cachin, Kursawe and Shoup.

   For a coin with name N, let g_N = H'(N) be a random group element.
   Party i's coin share for leaf l is sigma_l = g_N^{x_l} together with a
   DLEQ proof against the leaf verification key.  Any sharing-qualified
   set of verified shares recombines (in the exponent) to g_N^x, whose
   hash gives the coin value — unpredictable until a qualified set
   cooperates, and identical for all parties.  This is the source of
   shared randomness that lets the ABBA protocol of Section 3 circumvent
   the FLP impossibility result. *)

module B = Bignum
module G = Schnorr_group

type share = { leaf : int; value : G.elt; proof : Dleq.t }

let domain = "sintra/coin"
let base_domain = domain ^ "/base"
let share_domain = domain ^ "/share"
let value_domain = domain ^ "/value"

let coin_base (t : Dl_sharing.t) ~(name : string) : G.elt =
  G.hash_to_elt t.Dl_sharing.group ~domain:base_domain [ name ]

let generate_share (t : Dl_sharing.t) ~(party : int) ~(name : string) :
    share list =
  Obs_crypto.sign ();
  let ps = t.Dl_sharing.group in
  let g_name = coin_base t ~name in
  let own = Dl_sharing.shares_of t party in
  (* Each owned leaf costs two exponentiations on g_N (the share and the
     DLEQ commitment); from a few leaves a fixed-base table pays off,
     and verifiers of the same coin reuse it via the shared cache. *)
  if List.length own >= 3 then G.prepare_base ps g_name;
  List.map
    (fun (s : Lsss.subshare) ->
      let value = G.exp ps g_name s.value in
      let proof =
        Dleq.prove ps ~domain:share_domain ~x:s.value ~g1:ps.G.g
          ~h1:t.Dl_sharing.leaf_keys.(s.leaf) ~g2:g_name ~h2:value
      in
      { leaf = s.leaf; value; proof })
    own

(* Structural validity alone: the right number of shares, each for a
   leaf that exists and belongs to [party].  This is what a lazy call
   site checks at receipt; the proofs wait for combine time. *)
let check_shape (t : Dl_sharing.t) ~(party : int) (shares : share list) :
    bool =
  let expected = Dl_sharing.shares_of t party in
  List.length shares = List.length expected
  && List.for_all
       (fun (s : share) ->
         s.leaf >= 0
         && s.leaf < Array.length t.Dl_sharing.leaf_keys
         && Lsss.leaf_owner t.Dl_sharing.scheme s.leaf = party)
       shares

(* A share from a (possibly corrupted) party is accepted only when every
   claimed leaf belongs to that party and every DLEQ proof verifies —
   per proof as in the seed, or with one batched check when the policy
   allows it and the party owns enough leaves. *)
let verify_share (t : Dl_sharing.t) ~(party : int) ~(name : string)
    (shares : share list) : bool =
  Obs_crypto.share_verify ();
  let ps = t.Dl_sharing.group in
  let g_name = coin_base t ~name in
  let expected = Dl_sharing.shares_of t party in
  if List.length expected >= 3 then G.prepare_base ps g_name;
  if Crypto_policy.batchable (List.length shares) then
    check_shape t ~party shares
    && Share_batch.verify_party_batch t ~domain:share_domain ~base:g_name
         (List.map
            (fun (s : share) ->
              { Share_batch.party; leaf = s.leaf; value = s.value;
                proof = s.proof })
            shares)
  else
    List.length shares = List.length expected
    && List.for_all
         (fun (s : share) ->
           s.leaf >= 0
           && s.leaf < Array.length t.Dl_sharing.leaf_keys
           && Lsss.leaf_owner t.Dl_sharing.scheme s.leaf = party
           && Dleq.verify ps ~domain:share_domain ~g1:ps.G.g
                ~h1:t.Dl_sharing.leaf_keys.(s.leaf) ~g2:g_name ~h2:s.value
                s.proof)
         shares

let value_of_sigma (t : Dl_sharing.t) ~(name : string) ~(bits : int)
    (sigma : G.elt) : int =
  let raw =
    Ro.hash ~domain:value_domain
      [ name; G.elt_to_bytes t.Dl_sharing.group sigma ]
  in
  let v =
    (Char.code raw.[0] lsl 24)
    lor (Char.code raw.[1] lsl 16)
    lor (Char.code raw.[2] lsl 8)
    lor Char.code raw.[3]
  in
  v land ((1 lsl bits) - 1)

(* Combine shares from the parties in [avail] into the coin value.
   [bits] selects how many unpredictable bits to extract (the ABBA
   protocol needs one; the validated-agreement permutation uses 30); at
   most 30.

   Under the eager policy the shares were verified at receipt and
   recombine directly, as in the seed.  Under the lazy policy they
   arrive proof-unchecked (shape-checked only) and are validated here
   with one batched check, pruning attributed-bad parties on failure. *)
let combine (t : Dl_sharing.t) ~(name : string) ~(avail : Pset.t)
    (shares : (int * share list) list) ?(bits = 1) () : int option =
  if bits < 1 || bits > 30 then invalid_arg "Coin.combine: bits out of range";
  Obs_crypto.combine ();
  let recombine avail shares =
    let leaf_values =
      List.concat_map
        (fun (_, ss) -> List.map (fun (s : share) -> (s.leaf, s.value)) ss)
        shares
    in
    match Dl_sharing.combine_in_exponent t ~avail ~leaf_values with
    | None -> None
    | Some sigma -> Some (value_of_sigma t ~name ~bits sigma)
  in
  if not (Crypto_policy.is_lazy ()) then recombine avail shares
  else begin
    let flat =
      List.concat_map
        (fun (party, ss) ->
          List.map
            (fun (s : share) ->
              { Share_batch.party; leaf = s.leaf; value = s.value;
                proof = s.proof })
            ss)
        shares
    in
    match
      Share_batch.validate_for_combine t ~domain:share_domain
        ~base:(coin_base t ~name) ~avail flat
    with
    | None -> None
    | Some (avail', good) ->
      let keep p = List.exists (fun (f : Share_batch.flat) -> f.party = p) good in
      recombine avail' (List.filter (fun (p, _) -> keep p) shares)
  end
