(** The threshold coin-tossing scheme of Cachin, Kursawe and Shoup: the
    source of shared unpredictable randomness that lets the ABBA protocol
    circumvent the FLP impossibility result.

    For a coin named N, party i's share is H'(N){^{x_l}} per owned leaf
    with a DLEQ proof; any sharing-qualified set of verified shares
    recombines to H'(N){^x}, whose hash is the coin value — identical for
    everyone and unpredictable until a qualified set cooperates. *)

type share = { leaf : int; value : Schnorr_group.elt; proof : Dleq.t }

val coin_base : Dl_sharing.t -> name:string -> Schnorr_group.elt
(** The random group element H'(N) for a coin name. *)

val generate_share : Dl_sharing.t -> party:int -> name:string -> share list

val check_shape : Dl_sharing.t -> party:int -> share list -> bool
(** Structural validity only (share count, leaf bounds, leaf ownership)
    — what a lazy call site checks at receipt, deferring the DLEQ proofs
    to {!combine}. *)

val verify_share :
  Dl_sharing.t -> party:int -> name:string -> share list -> bool
(** Rejects shares with wrong leaves, wrong owners or invalid proofs.
    Checks proofs individually, or as one batch when
    {!Crypto_policy.batchable} says so. *)

val combine :
  Dl_sharing.t ->
  name:string ->
  avail:Pset.t ->
  (int * share list) list ->
  ?bits:int ->
  unit ->
  int option
(** Coin value from the shares of the parties in [avail]; [None] if
    [avail] is not sharing-qualified.  [bits] (default 1, max 30)
    selects how many bits to extract.  Under the eager policy the
    shares must have been verified at receipt (seed behaviour); under
    the lazy policy they are validated here with one batched proof
    check, pruning attributed-bad parties on failure. *)
