(* Verification policy for the threshold-crypto hot path.

   PR 2 made a single exponentiation fast; this knob is about doing
   *fewer* verifications.  Two independent levers:

   - [batch]: a scheme-level verify call covering at least [batch_min]
     DLEQ proofs is checked with one random-linear-combination
     multi-exponentiation instead of per-proof verification (with
     bisection fallback to attribute bad proofs when the batch fails).

   - [mode = Lazy]: protocol call sites skip per-share proof
     verification at message receipt (keeping the cheap structural
     checks) and the scheme's [combine] validates the shares it
     actually uses — batched for the DLEQ schemes, by the final
     signature equation for threshold RSA — falling back to per-share
     attribution only when that check fails.

   The policy is an ambient global, mirroring [Obs_crypto]: the crypto
   layer sits below anything a handle could be threaded through without
   taxing the hot path.  The default ([eager]) reproduces the seed
   behaviour bit for bit — same checks, same order, same counters. *)

type mode = Eager | Lazy

type t = {
  mode : mode;
  batch : bool;  (* batch multi-proof verify calls *)
  batch_min : int;  (* smallest proof count worth one RLC multi-exp *)
}

let eager : t = { mode = Eager; batch = false; batch_min = 2 }
let lazy_batched : t = { mode = Lazy; batch = true; batch_min = 2 }

let current = ref eager

let get () = !current
let set p = current := p

let with_policy p f =
  let saved = !current in
  current := p;
  Fun.protect ~finally:(fun () -> current := saved) f

let is_lazy () = !current.mode = Lazy

(* True when a verify call covering [k] proofs should take the batched
   path under the current policy. *)
let batchable k =
  let p = !current in
  (p.batch || p.mode = Lazy) && k >= p.batch_min

let to_string p =
  match (p.mode, p.batch) with
  | Eager, false -> "eager"
  | Eager, true -> "eager+batch"
  | Lazy, _ -> "lazy"

let of_string = function
  | "eager" -> Some eager
  | "eager+batch" -> Some { eager with batch = true }
  | "lazy" -> Some lazy_batched
  | _ -> None
