(** Verification policy for the threshold-crypto hot path: batched
    (random-linear-combination) proof checking and lazy
    verify-at-combine, behind one ambient knob.

    The default, {!eager}, reproduces the seed behaviour bit for bit:
    every share proof is verified individually at receipt, and no new
    counter fires.  {!lazy_batched} defers proof checking to combine
    time and batches it into one multi-exponentiation, with bisection
    fallback when a batch fails.  The policy is process-global
    (mirroring [Obs_crypto]): set it once per run, or scope it with
    {!with_policy}. *)

type mode = Eager | Lazy

type t = {
  mode : mode;
  batch : bool;  (** batch multi-proof verify calls *)
  batch_min : int;  (** smallest proof count worth one RLC multi-exp *)
}

val eager : t
(** Seed-identical default: per-share verification at receipt. *)

val lazy_batched : t
(** Defer share verification to combine time and batch it. *)

val get : unit -> t
val set : t -> unit

val with_policy : t -> (unit -> 'a) -> 'a
(** Run a thunk under a policy, restoring the previous one (also on
    exceptions). *)

val is_lazy : unit -> bool

val batchable : int -> bool
(** [batchable k]: should a verify call covering [k] proofs take the
    batched path under the current policy? *)

val to_string : t -> string

val of_string : string -> t option
(** Recognizes ["eager"], ["eager+batch"] and ["lazy"]. *)
