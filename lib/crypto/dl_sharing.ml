(* Dealer-generated sharing of a discrete-log secret over an adversary
   structure.

   The trusted dealer of the model (paper, Section 2) picks x uniformly
   in Z_q, shares it with the Benaloh-Leichter LSSS for the structure's
   sharing formula, and publishes g^x together with one verification key
   g^{x_l} per leaf.  Both the threshold coin and the TDH2 cryptosystem
   are instances over such a sharing. *)

module B = Bignum
module G = Schnorr_group
module AS = Adversary_structure

type t = {
  group : G.params;
  structure : AS.t;
  scheme : Lsss.scheme;
  subshares : Lsss.subshare list;  (* secret; party i reads only its own *)
  public_key : G.elt;
  leaf_keys : G.elt array;  (* leaf id -> g^{x_leaf} *)
}

let deal (group : G.params) (structure : AS.t) (rng : Prng.t) : t =
  let scheme =
    Lsss.build ~modulus:group.G.q (AS.access_formula structure)
  in
  let secret = G.random_exponent group rng in
  let subshares = Lsss.share scheme rng ~secret in
  let leaf_keys = Array.make (Lsss.num_leaves scheme) (G.one group) in
  List.iter
    (fun (s : Lsss.subshare) -> leaf_keys.(s.leaf) <- G.exp_g group s.value)
    subshares;
  { group;
    structure;
    scheme;
    subshares;
    public_key = G.exp_g group secret;
    leaf_keys }

let shares_of (t : t) (party : int) : Lsss.subshare list =
  Lsss.shares_of_party t.subshares party

(* Combine per-leaf group elements sigma_l = base^{x_l} from the leaves
   owned by [avail] into base^x.  [None] when [avail] is not qualified
   under the sharing formula. *)
let combine_in_exponent (t : t) ~(avail : Pset.t)
    ~(leaf_values : (int * G.elt) list) : G.elt option =
  match Lsss.recombination t.scheme avail with
  | None -> None
  | Some coeffs ->
    let lookup leaf =
      match List.assoc_opt leaf leaf_values with
      | Some v -> v
      | None -> invalid_arg "Dl_sharing.combine_in_exponent: missing leaf"
    in
    Some
      (G.multi_exp t.group
         (List.map (fun (leaf, c) -> (lookup leaf, c)) coeffs))
