(* Chaum-Pedersen proof of discrete-log equality, made non-interactive
   with the Fiat-Shamir transform.

   Proves log_{g1} h1 = log_{g2} h2 in a Schnorr group.  This is the
   share-validity proof of both the threshold coin (Cachin-Kursawe-Shoup)
   and the TDH2 threshold cryptosystem (Shoup-Gennaro): it is what makes
   the schemes robust, i.e. lets anyone discard bogus shares submitted by
   corrupted servers.  Sound in the random-oracle model.

   A proof carries the commitment pair (a1, a2) alongside the classic
   (c, z).  The pair is redundant — [verify] recomputes it from (c, z)
   exactly as before — but it is what makes *batch* verification
   possible: with commitments in hand, checking k proofs splits into k
   cheap hash re-checks (binding each c_i to its a_i) plus 2k group
   equations  g1^{z_i} = a1_i h1_i^{c_i}  and  g2^{z_i} = a2_i
   h2_i^{c_i}, and the group equations fold into ONE multi-
   exponentiation under a random linear combination.  [to_bytes] still
   serializes only (c, z), so nothing downstream observes the field. *)

module B = Bignum
module G = Schnorr_group

type t = { c : B.t; z : B.t; a1 : G.elt; a2 : G.elt }

type statement = { g1 : G.elt; h1 : G.elt; g2 : G.elt; h2 : G.elt }

let transcript ps ~domain g1 h1 g2 h2 a1 a2 =
  G.hash_to_exponent ps ~domain
    (List.map (G.elt_to_bytes ps) [ g1; h1; g2; h2; a1; a2 ])

(* The commitment nonce is derived deterministically from the witness and
   the statement (as in RFC 6979); in the random-oracle model this is as
   good as fresh randomness and keeps proving stateless. *)
let prove ps ~domain ~x ~g1 ~h1 ~g2 ~h2 : t =
  let r =
    Ro.hash_to_bignum_below ~domain:(domain ^ "/nonce")
      (B.to_bytes_be x :: List.map (G.elt_to_bytes ps) [ g1; h1; g2; h2 ])
      ps.G.q
  in
  let a1 = G.exp ps g1 r and a2 = G.exp ps g2 r in
  let c = transcript ps ~domain g1 h1 g2 h2 a1 a2 in
  let z = B.add_mod r (B.mul_mod c x ps.G.q) ps.G.q in
  { c; z; a1; a2 }

let verify ps ~domain ~g1 ~h1 ~g2 ~h2 (proof : t) : bool =
  G.is_element ps h1 && G.is_element ps h2
  && B.sign proof.z >= 0 && B.lt proof.z ps.G.q
  &&
  (* a_i = g_i^z * h_i^{-c} = g_i^z * (h_i^-1)^c must re-produce the
     challenge; the two exponentiations share one squaring chain. *)
  let a1 = G.exp2 ps g1 proof.z (G.inv ps h1) proof.c in
  let a2 = G.exp2 ps g2 proof.z (G.inv ps h2) proof.c in
  B.equal proof.c (transcript ps ~domain g1 h1 g2 h2 a1 a2)

let to_bytes ps (p : t) : string =
  let len = (B.numbits ps.G.q + 7) / 8 in
  B.to_bytes_be ~len p.c ^ B.to_bytes_be ~len p.z

(* ------------------------------------------------------------------ *)
(* Batch verification                                                  *)
(* ------------------------------------------------------------------ *)

(* Subgroup membership for adversary-supplied elements on the batch
   path: in a safe-prime Schnorr group (p = 2q + 1) the order-q
   subgroup is exactly the quadratic residues, so the Jacobi symbol —
   a GCD-style computation, no exponentiation — decides membership.
   The eager path keeps its historical [x^q = 1] check so its counter
   profile stays bit-identical to the seed. *)
let in_group ps (x : G.elt) : bool =
  B.sign x > 0 && B.lt x ps.G.p && B.jacobi x ps.G.p = 1

(* RLC coefficient width.  A batch with one invalid proof survives the
   folded check with probability 2^-63 over the oracle-derived
   coefficients; short coefficients also keep their terms cheap inside
   the shared squaring chain.  Coefficients are made EVEN (a random
   63-bit value doubled): Z_p^* for a safe prime is QR x {+-1}, and an
   even exponent annihilates any order-2 component an adversary smuggles
   into a commitment, so a1/a2 need no membership check at all — only
   h2, whose value flows into recombination with arbitrary-parity
   Lagrange coefficients, must be checked (see DESIGN.md, section 12). *)
let rho_bits = 64

(* One proof's transcript parts, with the shared g1/g2 encodings hoisted
   out of the per-proof loop (they are the same group elements for every
   share of a batch: the generator and the coin/ciphertext base). *)
let proof_parts ps ~g1b ~g2b (s : statement) (p : t) : string list =
  [ g1b;
    G.elt_to_bytes ps s.h1;
    g2b;
    G.elt_to_bytes ps s.h2;
    G.elt_to_bytes ps p.a1;
    G.elt_to_bytes ps p.a2 ]

(* Deterministic random-linear-combination coefficients, seeded by the
   batch's (c_i, z_i) pairs.  Each c_i is itself a random-oracle hash of
   the full statement and commitments of proof i — and the batch check
   only proceeds once that binding has been re-verified — so hashing the
   (short) serialized proofs commits to every element of every
   transcript without re-absorbing the transcripts themselves.  The z_i
   MUST be absorbed here: they are the one part of a proof not bound by
   its challenge, and coefficients independent of z would let an
   adversary solve for responses that cancel across two bad proofs of
   the same batch (DESIGN.md, section 12). *)
let rlc_coeffs ~domain (proof_bytes : string list) (k : int) :
    (B.t * B.t) array =
  (* one counter-mode expansion covers the whole batch: 16 bytes per
     proof, amortizing the oracle calls instead of hashing per index *)
  let raw =
    Ro.hash_expand ~domain:(domain ^ "/batch-rlc") proof_bytes
      ~len:(k * 2 * (rho_bits / 8))
  in
  Array.init k (fun i ->
      let half n =
        String.sub raw ((2 * i + n) * (rho_bits / 8)) (rho_bits / 8)
      in
      let even v =
        let v = B.shift_right v 1 in
        B.shift_left (if B.is_zero v then B.one else v) 1
      in
      (even (B.of_bytes_be (half 0)), even (B.of_bytes_be (half 1))))

(* The folded check over a non-empty list of (statement, proof):

     g1^{sum z_i rho_i} * g2^{sum z_i sigma_i}
       = prod a1_i^{rho_i} h1_i^{c_i rho_i} a2_i^{sigma_i} h2_i^{c_i sigma_i}

   plus the k hash re-checks binding each c_i to (a1_i, a2_i), plus
   range/subgroup checks on every adversary-suppliable element.  One
   multi-exponentiation (shared squaring chain) carries the whole right-
   hand side; the left folds onto the (usually fixed-base-tabled) g1 and
   g2. *)
let batch_holds ps ~domain (batch : (statement * t) list) : bool =
  match batch with
  | [] -> true
  | (s0, _) :: _ ->
    let q = ps.G.q in
    let g1b = G.elt_to_bytes ps s0.g1 and g2b = G.elt_to_bytes ps s0.g2 in
    Obs_crypto.batch_verify (List.length batch);
    List.for_all
      (fun ((s : statement), (p : t)) ->
        B.sign p.z >= 0 && B.lt p.z q
        (* h1 is the dealer-published leaf verification key at every
           call site, and a1/a2 are neutralized by the even RLC
           coefficients; only the adversary's share value h2 needs a
           subgroup check (cf. the eager path's two [is_element]s). *)
        && in_group ps s.h2
        (* all statements of one batch share the proving bases *)
        && G.elt_equal s.g1 s0.g1 && G.elt_equal s.g2 s0.g2)
      batch
    && begin
      let hashes_ok =
        List.for_all
          (fun ((s : statement), (p : t)) ->
            B.equal p.c
              (G.hash_to_exponent ps ~domain (proof_parts ps ~g1b ~g2b s p)))
          batch
      in
      hashes_ok
      && begin
        let proof_bytes =
          List.map (fun (_, (p : t)) -> to_bytes ps p) batch
        in
        let coeffs = rlc_coeffs ~domain proof_bytes (List.length batch) in
        let e1 = ref B.zero and e2 = ref B.zero in
        let rhs = ref [] in
        List.iteri
          (fun i ((s : statement), (p : t)) ->
            let rho, sigma = coeffs.(i) in
            e1 := B.add_mod !e1 (B.mul_mod p.z rho q) q;
            e2 := B.add_mod !e2 (B.mul_mod p.z sigma q) q;
            rhs :=
              (p.a1, rho)
              :: (s.h1, B.mul_mod p.c rho q)
              :: (p.a2, sigma)
              :: (s.h2, B.mul_mod p.c sigma q)
              :: !rhs)
          batch;
        let lhs = G.multi_exp ps [ (s0.g1, !e1); (s0.g2, !e2) ] in
        G.elt_equal lhs (G.multi_exp ps !rhs)
      end
    end

(* Exact single-proof check used to attribute failures: the classic
   verification plus the binding of the carried commitments to the
   challenge (a proof whose (c, z) verifies but whose carried (a1, a2)
   does not hash to c must be rejected here too, or it would poison
   every batch it joins while passing singleton checks). *)
let verify_one ps ~domain ((s : statement), (p : t)) : bool =
  B.equal p.c (transcript ps ~domain s.g1 s.h1 s.g2 s.h2 p.a1 p.a2)
  && verify ps ~domain ~g1:s.g1 ~h1:s.h1 ~g2:s.g2 ~h2:s.h2 p

let batch_verify ps ~domain (batch : (statement * t) list) : bool =
  batch_holds ps ~domain batch

(* Indices (into the input list) of the proofs that fail, attributed by
   bisection: re-run the folded check on halves of a failing batch and
   recurse, deciding singletons exactly.  A clean batch costs one
   multi-exp; a batch with one bad proof costs O(log k) sub-batches. *)
let batch_find_bad ps ~domain (batch : (statement * t) list) : int list =
  let rec go (indexed : (int * (statement * t)) list) =
    match indexed with
    | [] -> []
    | [ (i, sp) ] -> if verify_one ps ~domain sp then [] else [ i ]
    | _ ->
      if batch_holds ps ~domain (List.map snd indexed) then []
      else begin
        Obs_crypto.batch_verify_fallback ();
        let k = List.length indexed / 2 in
        let left = List.filteri (fun j _ -> j < k) indexed in
        let right = List.filteri (fun j _ -> j >= k) indexed in
        go left @ go right
      end
  in
  let indexed = List.mapi (fun i sp -> (i, sp)) batch in
  match indexed with
  | [] -> []
  | _ ->
    if batch_holds ps ~domain batch then []
    else begin
      Obs_crypto.batch_verify_fallback ();
      let k = List.length indexed / 2 in
      go (List.filteri (fun j _ -> j < k) indexed)
      @ go (List.filteri (fun j _ -> j >= k) indexed)
    end
