(* Chaum-Pedersen proof of discrete-log equality, made non-interactive
   with the Fiat-Shamir transform.

   Proves log_{g1} h1 = log_{g2} h2 in a Schnorr group.  This is the
   share-validity proof of both the threshold coin (Cachin-Kursawe-Shoup)
   and the TDH2 threshold cryptosystem (Shoup-Gennaro): it is what makes
   the schemes robust, i.e. lets anyone discard bogus shares submitted by
   corrupted servers.  Sound in the random-oracle model. *)

module B = Bignum
module G = Schnorr_group

type t = { c : B.t; z : B.t }

let transcript ps ~domain g1 h1 g2 h2 a1 a2 =
  G.hash_to_exponent ps ~domain
    (List.map (G.elt_to_bytes ps) [ g1; h1; g2; h2; a1; a2 ])

(* The commitment nonce is derived deterministically from the witness and
   the statement (as in RFC 6979); in the random-oracle model this is as
   good as fresh randomness and keeps proving stateless. *)
let prove ps ~domain ~x ~g1 ~h1 ~g2 ~h2 : t =
  let r =
    Ro.hash_to_bignum_below ~domain:(domain ^ "/nonce")
      (B.to_bytes_be x :: List.map (G.elt_to_bytes ps) [ g1; h1; g2; h2 ])
      ps.G.q
  in
  let a1 = G.exp ps g1 r and a2 = G.exp ps g2 r in
  let c = transcript ps ~domain g1 h1 g2 h2 a1 a2 in
  let z = B.add_mod r (B.mul_mod c x ps.G.q) ps.G.q in
  { c; z }

let verify ps ~domain ~g1 ~h1 ~g2 ~h2 (proof : t) : bool =
  G.is_element ps h1 && G.is_element ps h2
  && B.sign proof.z >= 0 && B.lt proof.z ps.G.q
  &&
  (* a_i = g_i^z * h_i^{-c} = g_i^z * (h_i^-1)^c must re-produce the
     challenge; the two exponentiations share one squaring chain. *)
  let a1 = G.exp2 ps g1 proof.z (G.inv ps h1) proof.c in
  let a2 = G.exp2 ps g2 proof.z (G.inv ps h2) proof.c in
  B.equal proof.c (transcript ps ~domain g1 h1 g2 h2 a1 a2)

let to_bytes ps (p : t) : string =
  let len = (B.numbits ps.G.q + 7) / 8 in
  B.to_bytes_be ~len p.c ^ B.to_bytes_be ~len p.z
