(** Chaum–Pedersen proofs of discrete-log equality (Fiat–Shamir).

    The share-validity proof of the threshold coin and of TDH2: it makes
    both schemes robust by letting anyone reject bogus shares from
    corrupted servers.  Sound in the random-oracle model.

    Proofs carry their commitment pair [(a1, a2)] so that k proofs over
    shared bases can be checked together: k hash re-checks plus one
    random-linear-combination multi-exponentiation ({!batch_verify}),
    with bisection attribution of bad proofs when the batch fails
    ({!batch_find_bad}).  {!verify} and {!to_bytes} ignore the carried
    commitments, so the eager path is unchanged from the seed. *)

type t = {
  c : Bignum.t;
  z : Bignum.t;
  a1 : Schnorr_group.elt;  (** prover commitment [g1^r] *)
  a2 : Schnorr_group.elt;  (** prover commitment [g2^r] *)
}

type statement = {
  g1 : Schnorr_group.elt;
  h1 : Schnorr_group.elt;
  g2 : Schnorr_group.elt;
  h2 : Schnorr_group.elt;
}
(** The claim [log_{g1} h1 = log_{g2} h2], bundled for batch calls. *)

val prove :
  Schnorr_group.params ->
  domain:string ->
  x:Bignum.t ->
  g1:Schnorr_group.elt -> h1:Schnorr_group.elt ->
  g2:Schnorr_group.elt -> h2:Schnorr_group.elt ->
  t
(** Proof that [log_{g1} h1 = log_{g2} h2 = x].  The commitment nonce is
    derived deterministically from witness and statement (RFC-6979
    style), so proving is stateless. *)

val verify :
  Schnorr_group.params ->
  domain:string ->
  g1:Schnorr_group.elt -> h1:Schnorr_group.elt ->
  g2:Schnorr_group.elt -> h2:Schnorr_group.elt ->
  t -> bool
(** Also validates group membership of [h1], [h2].  Checks only [(c, z)]
    — the carried commitments do not participate. *)

val verify_one :
  Schnorr_group.params -> domain:string -> statement * t -> bool
(** Exact single-proof check used on the batch path: {!verify} plus the
    binding of the carried commitments to the challenge, so a proof that
    would poison batches can never pass attribution. *)

val batch_verify :
  Schnorr_group.params -> domain:string -> (statement * t) list -> bool
(** Check every proof of the batch at once: per-proof range, subgroup
    (Jacobi-symbol) and challenge-hash checks, then one folded
    multi-exponentiation under deterministic 64-bit random-linear-
    combination coefficients.  All statements must share [g1] and [g2].
    A batch with any invalid proof is rejected except with probability
    2{^-64} per coefficient draw.  Empty batches pass. *)

val batch_find_bad :
  Schnorr_group.params -> domain:string -> (statement * t) list -> int list
(** Indices of the invalid proofs, attributed by bisection over failing
    sub-batches (singletons decided exactly with {!verify_one}).
    Returns [[]] iff {!batch_verify} accepts. *)

val to_bytes : Schnorr_group.params -> t -> string
(** Serializes [(c, z)] only, as in the seed. *)
