(* The trusted dealer's output: everything a deployment of n servers
   needs (paper, Section 2: "a trusted dealer generates and distributes
   secret values to all servers once and for all").

   A keyring bundles, for one adversary structure:
   - the shared Schnorr group,
   - a DL sharing for the threshold coin,
   - an independent DL sharing for the TDH2 cryptosystem,
   - the service signature scheme (Shoup RSA threshold signatures when
     the structure is a plain threshold; LSSS certificate signatures for
     generalized structures),
   - one plain Schnorr keypair per server for signed protocol messages.

   In the simulator every party holds the whole record but honest code
   only ever reads its own secrets; corrupted parties may read
   everything, which faithfully models full corruption. *)

module B = Bignum
module G = Schnorr_group
module AS = Adversary_structure

type service_keys =
  | Rsa_keys of Rsa_threshold.keys
  | Cert_keys of Dl_sharing.t

type sig_share =
  | Rsa_share of Rsa_threshold.share
  | Cert_share of int * Cert_sig.share list  (* party, leaf shares *)

type service_signature =
  | Rsa_signature of Rsa_threshold.signature
  | Cert_signature of Cert_sig.certificate

type cert_mode =
  | Vector_mode
      (** quorum certificates are vectors of individual signatures *)
  | Compressed_mode
      (** quorum certificates are dual-threshold RSA signatures with
          reconstruction threshold n - t — the constant-size-message
          optimization of Section 3; threshold structures only *)

type t = {
  group : G.params;
  structure : AS.t;
  coin : Dl_sharing.t;
  enc : Dl_sharing.t;
  service : service_keys;
  party_keys : Schnorr_sig.keypair array;
  cert_mode : cert_mode;
  cert_rsa : Rsa_threshold.keys option;  (* present in Compressed_mode *)
}

let deal ?(group_bits = 128) ?(rsa_bits = 256) ?(cert_mode = Vector_mode)
    ~seed (structure : AS.t) : t =
  let rng = Prng.create ~seed in
  let group = G.default ~bits:group_bits () in
  let coin = Dl_sharing.deal group structure (Prng.split rng) in
  let enc = Dl_sharing.deal group structure (Prng.split rng) in
  let service =
    match AS.threshold_of structure with
    | Some tt ->
      Rsa_keys
        (Rsa_threshold.deal ~bits:rsa_bits ~n:(AS.n structure) ~k:(tt + 1)
           (Prng.split rng))
    | None -> Cert_keys (Dl_sharing.deal group structure (Prng.split rng))
  in
  let cert_rsa =
    match (cert_mode, AS.min_big_quorum_size structure) with
    | Compressed_mode, Some q ->
      Some (Rsa_threshold.deal ~bits:rsa_bits ~n:(AS.n structure) ~k:q (Prng.split rng))
    | Compressed_mode, None ->
      invalid_arg
        "Keyring.deal: compressed certificates need a counting structure"
    | Vector_mode, (Some _ | None) -> None
  in
  let party_keys =
    Array.init (AS.n structure) (fun _ -> Schnorr_sig.generate group rng)
  in
  { group; structure; coin; enc; service; party_keys; cert_mode; cert_rsa }

let n t = AS.n t.structure

let party_public_key t i = t.party_keys.(i).Schnorr_sig.pk

let sign t ~party msg = Schnorr_sig.sign t.group t.party_keys.(party) msg

let verify_party_signature t ~party msg s =
  party >= 0 && party < n t
  && Schnorr_sig.verify t.group ~pk:(party_public_key t party) msg s

(* --- service (threshold) signatures ------------------------------- *)

let service_sign_share t ~party msg : sig_share =
  match t.service with
  | Rsa_keys keys -> Rsa_share (Rsa_threshold.sign_share keys ~party msg)
  | Cert_keys sh -> Cert_share (party, Cert_sig.sign_share sh ~party msg)

let service_verify_share t ~party msg (s : sig_share) : bool =
  match (t.service, s) with
  | Rsa_keys keys, Rsa_share sh ->
    sh.Rsa_threshold.signer = party && Rsa_threshold.verify_share keys msg sh
  | Cert_keys dl, Cert_share (p, ss) ->
    p = party && Cert_sig.verify_share dl ~party msg ss
  | Rsa_keys _, Cert_share _ | Cert_keys _, Rsa_share _ -> false

let service_combine t msg (shares : sig_share list) :
    service_signature option =
  match t.service with
  | Rsa_keys keys ->
    let rsa =
      List.filter_map
        (function Rsa_share s -> Some s | Cert_share _ -> None)
        shares
    in
    Option.map (fun s -> Rsa_signature s) (Rsa_threshold.combine keys msg rsa)
  | Cert_keys dl ->
    let cs =
      List.filter_map
        (function Cert_share (p, ss) -> Some (p, ss) | Rsa_share _ -> None)
        shares
    in
    Option.map (fun c -> Cert_signature c) (Cert_sig.combine dl msg cs)

let service_verify t msg (s : service_signature) : bool =
  match (t.service, s) with
  | Rsa_keys keys, Rsa_signature y -> Rsa_threshold.verify keys.Rsa_threshold.pk msg y
  | Cert_keys dl, Cert_signature c -> Cert_sig.verify dl msg c
  | Rsa_keys _, Cert_signature _ | Cert_keys _, Rsa_signature _ -> false

(* --- service signature serialization ------------------------------ *)

(* Combined service signatures travel inside checkpoint certificates,
   which cross the wire during state transfer, so both arms need a
   byte form.  Fields are length-prefixed with [Ro.encode]; decoding
   re-validates every group element against the keyring's group, and a
   signature only decodes under a keyring whose service arm matches. *)

(* Inverse of [Ro.encode] (the codec lives above this library). *)
let decode_fields (s : string) : string list option =
  let len = String.length s in
  let read_u64 off =
    if Char.code s.[off] land 0xC0 <> 0 then -1
    else begin
      let v = ref 0 in
      for i = off to off + 7 do
        v := (!v lsl 8) lor Char.code s.[i]
      done;
      !v
    end
  in
  let rec go off acc =
    if off = len then Some (List.rev acc)
    else if off + 8 > len then None
    else
      let l = read_u64 off in
      if l < 0 || off + 8 + l > len then None
      else go (off + 8 + l) (String.sub s (off + 8) l :: acc)
  in
  go 0 []

let encode_share t (sh : Cert_sig.share) : string =
  let open Cert_sig in
  Ro.encode
    [ string_of_int sh.leaf;
      G.elt_to_bytes t.group sh.value;
      B.to_bytes_be sh.proof.Dleq.c;
      B.to_bytes_be sh.proof.Dleq.z;
      G.elt_to_bytes t.group sh.proof.Dleq.a1;
      G.elt_to_bytes t.group sh.proof.Dleq.a2 ]

let decode_share t (s : string) : Cert_sig.share option =
  match decode_fields s with
  | Some [ leaf; value; c; z; a1; a2 ] ->
    let elt b = G.elt_of_bytes t.group b in
    (match (int_of_string_opt leaf, elt value, elt a1, elt a2) with
    | Some leaf, Some value, Some a1, Some a2 ->
      Some
        { Cert_sig.leaf;
          value;
          proof =
            { Dleq.c = B.of_bytes_be c; z = B.of_bytes_be z; a1; a2 } }
    | _ -> None)
  | _ -> None

let service_signature_to_bytes (t : t) (s : service_signature) : string =
  match s with
  | Rsa_signature y -> Ro.encode [ "rsa"; B.to_bytes_be y ]
  | Cert_signature c ->
    Ro.encode
      [ "cert";
        Ro.encode (List.map string_of_int (Pset.to_list c.Cert_sig.signers));
        Ro.encode
          (List.map
             (fun (p, ss) ->
               Ro.encode (string_of_int p :: List.map (encode_share t) ss))
             c.Cert_sig.shares);
        G.elt_to_bytes t.group c.Cert_sig.combined ]

let service_signature_of_bytes t (b : string) : service_signature option =
  match decode_fields b with
  | Some [ "rsa"; y ] ->
    (match t.service with
    | Rsa_keys _ -> Some (Rsa_signature (B.of_bytes_be y))
    | Cert_keys _ -> None)
  | Some [ "cert"; signers; shares; combined ] ->
    (match t.service with
    | Rsa_keys _ -> None
    | Cert_keys _ ->
      let ( let* ) = Option.bind in
      let* signer_fields = decode_fields signers in
      let* signer_ids =
        List.fold_left
          (fun acc f ->
            match (acc, int_of_string_opt f) with
            | Some l, Some i when i >= 0 && i < n t -> Some (i :: l)
            | _ -> None)
          (Some []) signer_fields
      in
      let* share_fields = decode_fields shares in
      let* shares =
        List.fold_left
          (fun acc f ->
            let* l = acc in
            let* parts = decode_fields f in
            match parts with
            | p :: ss ->
              let* p = int_of_string_opt p in
              let* ss =
                List.fold_left
                  (fun acc s ->
                    let* l = acc in
                    let* sh = decode_share t s in
                    Some (sh :: l))
                  (Some []) ss
              in
              Some ((p, List.rev ss) :: l)
            | [] -> None)
          (Some []) share_fields
      in
      let* combined = G.elt_of_bytes t.group combined in
      Some
        (Cert_signature
           { Cert_sig.signers = Pset.of_list (List.rev signer_ids);
             shares = List.rev shares;
             combined }))
  | _ -> None

(* Individual shares travel inside service replies, so they need a byte
   form too.  Same discipline as combined signatures: the arm is
   explicit and only decodes under a keyring whose service scheme
   matches, and every group element is re-validated on decode. *)

let sig_share_to_bytes t (s : sig_share) : string =
  match s with
  | Rsa_share sh ->
    Ro.encode
      [ "rsa-share";
        string_of_int sh.Rsa_threshold.signer;
        B.to_bytes_be sh.Rsa_threshold.x;
        B.to_bytes_be sh.Rsa_threshold.c;
        B.to_bytes_be sh.Rsa_threshold.z ]
  | Cert_share (p, ss) ->
    Ro.encode ("cert-share" :: string_of_int p :: List.map (encode_share t) ss)

let sig_share_of_bytes t (b : string) : sig_share option =
  match decode_fields b with
  | Some [ "rsa-share"; signer; x; c; z ] ->
    (match t.service with
    | Rsa_keys _ ->
      (match int_of_string_opt signer with
      | Some signer when signer >= 0 && signer < n t ->
        Some
          (Rsa_share
             { Rsa_threshold.signer;
               x = B.of_bytes_be x;
               c = B.of_bytes_be c;
               z = B.of_bytes_be z })
      | Some _ | None -> None)
    | Cert_keys _ -> None)
  | Some ("cert-share" :: p :: ss) ->
    (match t.service with
    | Rsa_keys _ -> None
    | Cert_keys _ ->
      let ( let* ) = Option.bind in
      let* p = int_of_string_opt p in
      if p < 0 || p >= n t then None
      else
        let* ss =
          List.fold_left
            (fun acc s ->
              let* l = acc in
              let* sh = decode_share t s in
              Some (sh :: l))
            (Some []) ss
        in
        Some (Cert_share (p, List.rev ss)))
  | _ -> None

(* --- quorum certificates ------------------------------------------ *)

(* Transferable evidence that a big-quorum of servers endorsed a
   statement: the protocol "justifications" of the CKS00 agreement
   protocol and the delivery certificates of consistent broadcast.  In
   [Vector_mode] a certificate is a vector of individual Schnorr
   signatures; in [Compressed_mode] it is a single dual-threshold RSA
   signature with reconstruction threshold n - t (constant size). *)

type cert_share =
  | Sig_share of Schnorr_sig.signature
  | Rsa_cert_share of Rsa_threshold.share

type cert =
  | Vector_cert of (int * Schnorr_sig.signature) list
  | Rsa_cert of Rsa_threshold.signature

let cert_share t ~party (statement : string) : cert_share =
  match t.cert_rsa with
  | None -> Sig_share (sign t ~party statement)
  | Some keys -> Rsa_cert_share (Rsa_threshold.sign_share keys ~party statement)

let verify_cert_share t ~party (statement : string) (s : cert_share) : bool =
  match (t.cert_rsa, s) with
  | None, Sig_share sg -> verify_party_signature t ~party statement sg
  | Some keys, Rsa_cert_share sh ->
    sh.Rsa_threshold.signer = party && Rsa_threshold.verify_share keys statement sh
  | None, Rsa_cert_share _ | Some _, Sig_share _ -> false

(* Build a certificate from verified shares; requires a big quorum of
   distinct endorsers.  Shares must have been verified by the caller. *)
let make_cert t (statement : string) (shares : (int * cert_share) list) :
    cert option =
  let shares = List.sort_uniq (fun (a, _) (b, _) -> compare a b) shares in
  let endorsers =
    List.fold_left (fun acc (p, _) -> Pset.add p acc) Pset.empty shares
  in
  if not (AS.big_quorum t.structure endorsers) then None
  else
    match t.cert_rsa with
    | None ->
      Some
        (Vector_cert
           (List.filter_map
              (fun (p, s) ->
                match s with Sig_share sg -> Some (p, sg) | Rsa_cert_share _ -> None)
              shares))
    | Some keys ->
      let rsa =
        List.filter_map
          (fun (_, s) ->
            match s with Rsa_cert_share sh -> Some sh | Sig_share _ -> None)
          shares
      in
      Option.map (fun y -> Rsa_cert y) (Rsa_threshold.combine keys statement rsa)

let verify_cert t (statement : string) (c : cert) : bool =
  match (t.cert_rsa, c) with
  | None, Vector_cert sigs ->
    let sigs = List.sort_uniq (fun (a, _) (b, _) -> compare a b) sigs in
    let endorsers =
      List.fold_left (fun acc (p, _) -> Pset.add p acc) Pset.empty sigs
    in
    AS.big_quorum t.structure endorsers
    && List.for_all
         (fun (p, sg) -> verify_party_signature t ~party:p statement sg)
         sigs
  | Some keys, Rsa_cert y -> Rsa_threshold.verify keys.Rsa_threshold.pk statement y
  | None, Rsa_cert _ | Some _, Vector_cert _ -> false

(* Approximate wire size of a certificate in bytes, for the message
   complexity experiments. *)
let cert_size t (c : cert) : int =
  match c with
  | Vector_cert sigs ->
    List.length sigs * (4 + (2 * ((B.numbits t.group.G.q + 7) / 8)))
  | Rsa_cert y -> (B.numbits y + 7) / 8
