(** The trusted dealer's output (paper, Section 2): everything one
    deployment needs, bundled per adversary structure — the shared group,
    independent DL sharings for the threshold coin and TDH2, the service
    signature scheme, one Schnorr keypair per server, and the quorum-
    certificate scheme used as protocol justifications.

    In the simulator every party holds the record but honest code reads
    only its own secrets; corrupted parties may read everything, which
    faithfully models full corruption. *)

type service_keys =
  | Rsa_keys of Rsa_threshold.keys  (** threshold structures *)
  | Cert_keys of Dl_sharing.t  (** generalized structures *)

type sig_share =
  | Rsa_share of Rsa_threshold.share
  | Cert_share of int * Cert_sig.share list

type service_signature =
  | Rsa_signature of Rsa_threshold.signature
  | Cert_signature of Cert_sig.certificate

type cert_mode =
  | Vector_mode  (** quorum certificates = vectors of Schnorr signatures *)
  | Compressed_mode
      (** quorum certificates = dual-threshold RSA signatures with
          k = n − t: the constant-size-message optimization of Section 3;
          threshold structures only *)

type t = {
  group : Schnorr_group.params;
  structure : Adversary_structure.t;
  coin : Dl_sharing.t;
  enc : Dl_sharing.t;
  service : service_keys;
  party_keys : Schnorr_sig.keypair array;
  cert_mode : cert_mode;
  cert_rsa : Rsa_threshold.keys option;
}

val deal :
  ?group_bits:int -> ?rsa_bits:int -> ?cert_mode:cert_mode -> seed:int ->
  Adversary_structure.t -> t
(** Run the trusted dealer (defaults: 128-bit group, 256-bit RSA,
    vector certificates). *)

val n : t -> int
val party_public_key : t -> int -> Schnorr_group.elt

(** {2 Individual server signatures} *)

val sign : t -> party:int -> string -> Schnorr_sig.signature
val verify_party_signature : t -> party:int -> string -> Schnorr_sig.signature -> bool

(** {2 Service (threshold) signatures} *)

val service_sign_share : t -> party:int -> string -> sig_share
val service_verify_share : t -> party:int -> string -> sig_share -> bool

val service_combine : t -> string -> sig_share list -> service_signature option
(** Succeeds once the contributing servers can reconstruct (k = t+1 RSA
    shares, or a sharing-qualified set of certificate shares). *)

val service_verify : t -> string -> service_signature -> bool

val service_signature_to_bytes : t -> service_signature -> string
(** Byte form of a combined service signature, for certificates that
    cross the wire (e.g. checkpoint certificates during state
    transfer).  Deterministic: equal signatures encode equally. *)

val service_signature_of_bytes : t -> string -> service_signature option
(** Inverse of {!service_signature_to_bytes} under the same keyring:
    [None] on malformed bytes, on group elements outside the keyring's
    group, or when the encoded arm does not match the keyring's service
    scheme.  A decoded signature still carries no authority until
    {!service_verify} accepts it. *)

val sig_share_to_bytes : t -> sig_share -> string
(** Byte form of an individual signature share, for partial answers that
    cross the wire (service replies).  Deterministic: equal shares
    encode equally. *)

val sig_share_of_bytes : t -> string -> sig_share option
(** Inverse of {!sig_share_to_bytes} under the same keyring: [None] on
    malformed bytes, out-of-range parties, group elements outside the
    keyring's group, or an arm mismatch with the keyring's service
    scheme.  A decoded share carries no authority until
    {!service_verify_share} accepts it. *)

(** {2 Quorum certificates}

    Transferable evidence that a big-quorum of servers endorsed a
    statement — the protocol justifications of the CKS00 agreement
    protocol and the delivery certificates of consistent broadcast. *)

type cert_share =
  | Sig_share of Schnorr_sig.signature
  | Rsa_cert_share of Rsa_threshold.share

type cert = Vector_cert of (int * Schnorr_sig.signature) list | Rsa_cert of Rsa_threshold.signature

val cert_share : t -> party:int -> string -> cert_share
val verify_cert_share : t -> party:int -> string -> cert_share -> bool

val make_cert : t -> string -> (int * cert_share) list -> cert option
(** [None] unless the (deduplicated) endorsers form a big quorum; shares
    must have been verified by the caller. *)

val verify_cert : t -> string -> cert -> bool

val cert_size : t -> cert -> int
(** Approximate wire size in bytes, for the message-size experiments. *)
