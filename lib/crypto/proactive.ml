(* Proactive share refresh (paper, Section 6, "Proactive Protocols").

   Proactive security divides time into epochs; between epochs the
   parties re-randomize their key shares so that everything a mobile
   adversary learned in past epochs becomes useless — it must corrupt a
   qualified set *within one epoch* to win.

   The refresh is the classic zero-resharing: every participating party
   deals a fresh LSSS sharing of 0 over the same scheme and sends each
   leaf owner its delta; leaf l's new share is x_l + sum_i delta_{i,l},
   and the published leaf keys update to vk_l * g^{sum delta}.  The
   shared secret x, the public key g^x, and all derived objects
   (ciphertexts under the old public key, issued signatures) stay valid,
   while any unqualified mix of old-epoch and new-epoch shares is useless
   because the two epochs are independent sharings of x.

   The paper notes that *asynchronous* proactive protocols were an open
   problem (agreeing on epoch boundaries without timing assumptions);
   this module provides the cryptographic epoch-refresh primitive and a
   synchronous-epoch driver, which is exactly the part Section 6 sketches
   — the open coordination question is out of scope and documented in
   DESIGN.md. *)

module B = Bignum
module G = Schnorr_group

type refresh_package = {
  dealer : int;  (* the refreshing party *)
  deltas : Lsss.subshare list;  (* a sharing of zero *)
  delta_keys : G.elt array;  (* leaf id -> g^{delta_leaf}, for checking *)
}

(* One party's contribution to the epoch refresh: a verifiable sharing
   of zero. *)
let make_refresh (t : Dl_sharing.t) ~(dealer : int) (rng : Prng.t) :
    refresh_package =
  let deltas = Lsss.share t.Dl_sharing.scheme rng ~secret:B.zero in
  (* A refresh exponentiates g once per leaf here and once per leaf at
     every verifier; build the generator's fixed-base table up front so
     the whole epoch refresh runs off it (the cache is shared). *)
  G.prepare_base t.Dl_sharing.group t.Dl_sharing.group.G.g;
  let delta_keys = Array.make (Lsss.num_leaves t.Dl_sharing.scheme) (G.one t.Dl_sharing.group) in
  List.iter
    (fun (s : Lsss.subshare) ->
      delta_keys.(s.leaf) <- G.exp_g t.Dl_sharing.group s.value)
    deltas;
  { dealer; deltas; delta_keys }

(* Verify that a refresh package is a sharing of zero consistent with its
   published delta keys: every qualified recombination of the delta keys
   must land on the identity (checked on one canonical qualified set —
   linearity extends it to all), and each delta must match its key. *)
let verify_refresh (t : Dl_sharing.t) (pkg : refresh_package) : bool =
  let ps = t.Dl_sharing.group in
  let scheme = t.Dl_sharing.scheme in
  List.for_all
    (fun (s : Lsss.subshare) ->
      s.leaf >= 0
      && s.leaf < Array.length pkg.delta_keys
      && Lsss.leaf_owner scheme s.leaf = s.party
      && G.elt_equal pkg.delta_keys.(s.leaf) (G.exp_g ps s.value))
    pkg.deltas
  && List.length pkg.deltas = Lsss.num_leaves scheme
  &&
  let full = Pset.full (Adversary_structure.n t.Dl_sharing.structure) in
  match Dl_sharing.combine_in_exponent t ~avail:full
          ~leaf_values:
            (List.mapi (fun leaf k -> (leaf, k)) (Array.to_list pkg.delta_keys))
  with
  | Some combined -> G.elt_equal combined (G.one ps)
  | None -> false

(* Apply a set of verified refresh packages: returns the next epoch's
   sharing.  The contributing dealers must contain at least one honest
   party (contains_honest) for the refresh to actually re-randomize. *)
let apply_refreshes (t : Dl_sharing.t) (pkgs : refresh_package list) :
    Dl_sharing.t =
  let ps = t.Dl_sharing.group in
  let add_leaf acc (s : Lsss.subshare) =
    List.map
      (fun (old : Lsss.subshare) ->
        if old.Lsss.leaf = s.Lsss.leaf then
          { old with Lsss.value = B.add_mod old.Lsss.value s.Lsss.value ps.G.q }
        else old)
      acc
  in
  let subshares =
    List.fold_left
      (fun acc pkg -> List.fold_left add_leaf acc pkg.deltas)
      t.Dl_sharing.subshares pkgs
  in
  let leaf_keys =
    Array.mapi
      (fun leaf vk ->
        List.fold_left
          (fun acc pkg -> G.mul ps acc pkg.delta_keys.(leaf))
          vk pkgs)
      t.Dl_sharing.leaf_keys
  in
  { t with Dl_sharing.subshares; leaf_keys }

(* Synchronous-epoch driver: every party in [refreshers] contributes one
   zero-sharing; invalid packages are dropped; the epoch advances only if
   the honest-containment predicate holds on the accepted dealers. *)
let run_epoch (t : Dl_sharing.t) ~(refreshers : Pset.t) (rng : Prng.t) :
    (Dl_sharing.t, string) result =
  let pkgs =
    Pset.fold
      (fun dealer acc -> make_refresh t ~dealer (Prng.split rng) :: acc)
      refreshers []
  in
  let accepted = List.filter (verify_refresh t) pkgs in
  let dealers =
    List.fold_left (fun acc p -> Pset.add p.dealer acc) Pset.empty accepted
  in
  if not (Adversary_structure.contains_honest t.Dl_sharing.structure dealers)
  then Error "refresh set may be fully corrupted; epoch not advanced"
  else Ok (apply_refreshes t accepted)
