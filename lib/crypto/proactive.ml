(* Proactive share refresh (paper, Section 6, "Proactive Protocols").

   Proactive security divides time into epochs; between epochs the
   parties re-randomize their key shares so that everything a mobile
   adversary learned in past epochs becomes useless — it must corrupt a
   qualified set *within one epoch* to win.

   The refresh is the classic zero-resharing: every participating party
   deals a fresh LSSS sharing of 0 over the same scheme and sends each
   leaf owner its delta; leaf l's new share is x_l + sum_i delta_{i,l},
   and the published leaf keys update to vk_l * g^{sum delta}.  The
   shared secret x, the public key g^x, and all derived objects
   (ciphertexts under the old public key, issued signatures) stay valid,
   while any unqualified mix of old-epoch and new-epoch shares is useless
   because the two epochs are independent sharings of x.

   The paper notes that *asynchronous* proactive protocols were an open
   problem (agreeing on epoch boundaries without timing assumptions);
   this module provides the cryptographic epoch-refresh primitive and a
   synchronous-epoch driver, which is exactly the part Section 6 sketches
   — the open coordination question is out of scope and documented in
   DESIGN.md. *)

module B = Bignum
module G = Schnorr_group

type refresh_package = {
  dealer : int;  (* the refreshing party *)
  deltas : Lsss.subshare list;  (* a sharing of zero *)
  delta_keys : G.elt array;  (* leaf id -> g^{delta_leaf}, for checking *)
}

(* One party's contribution to the epoch refresh: a verifiable sharing
   of zero. *)
let make_refresh (t : Dl_sharing.t) ~(dealer : int) (rng : Prng.t) :
    refresh_package =
  let deltas = Lsss.share t.Dl_sharing.scheme rng ~secret:B.zero in
  (* A refresh exponentiates g once per leaf here and once per leaf at
     every verifier; build the generator's fixed-base table up front so
     the whole epoch refresh runs off it (the cache is shared). *)
  G.prepare_base t.Dl_sharing.group t.Dl_sharing.group.G.g;
  let delta_keys = Array.make (Lsss.num_leaves t.Dl_sharing.scheme) (G.one t.Dl_sharing.group) in
  List.iter
    (fun (s : Lsss.subshare) ->
      delta_keys.(s.leaf) <- G.exp_g t.Dl_sharing.group s.value)
    deltas;
  { dealer; deltas; delta_keys }

(* Verify that a refresh package is a sharing of zero consistent with its
   published delta keys: every qualified recombination of the delta keys
   must land on the identity (checked on one canonical qualified set —
   linearity extends it to all), and each delta must match its key. *)
let verify_refresh (t : Dl_sharing.t) (pkg : refresh_package) : bool =
  let ps = t.Dl_sharing.group in
  let scheme = t.Dl_sharing.scheme in
  let nl = Lsss.num_leaves scheme in
  (* Every leaf exactly once: a duplicated leaf (hiding a missing one)
     would pass the per-delta checks yet desynchronize shares from keys
     when applied. *)
  let seen = Array.make nl false in
  pkg.dealer >= 0
  && pkg.dealer < Adversary_structure.n t.Dl_sharing.structure
  && Array.length pkg.delta_keys = nl
  && List.length pkg.deltas = nl
  && List.for_all
       (fun (s : Lsss.subshare) ->
         s.leaf >= 0
         && s.leaf < nl
         && (not seen.(s.leaf))
         && (seen.(s.leaf) <- true;
             Lsss.leaf_owner scheme s.leaf = s.party
             && G.elt_equal pkg.delta_keys.(s.leaf) (G.exp_g ps s.value)))
       pkg.deltas
  &&
  let full = Pset.full (Adversary_structure.n t.Dl_sharing.structure) in
  match Dl_sharing.combine_in_exponent t ~avail:full
          ~leaf_values:
            (List.mapi (fun leaf k -> (leaf, k)) (Array.to_list pkg.delta_keys))
  with
  | Some combined -> G.elt_equal combined (G.one ps)
  | None -> false

(* Apply a set of verified refresh packages: returns the next epoch's
   sharing.  The contributing dealers must contain at least one honest
   party (contains_honest) for the refresh to actually re-randomize. *)
let apply_refreshes (t : Dl_sharing.t) (pkgs : refresh_package list) :
    Dl_sharing.t =
  let ps = t.Dl_sharing.group in
  let add_leaf acc (s : Lsss.subshare) =
    List.map
      (fun (old : Lsss.subshare) ->
        if old.Lsss.leaf = s.Lsss.leaf then
          { old with Lsss.value = B.add_mod old.Lsss.value s.Lsss.value ps.G.q }
        else old)
      acc
  in
  let subshares =
    List.fold_left
      (fun acc pkg -> List.fold_left add_leaf acc pkg.deltas)
      t.Dl_sharing.subshares pkgs
  in
  let leaf_keys =
    Array.mapi
      (fun leaf vk ->
        List.fold_left
          (fun acc pkg -> G.mul ps acc pkg.delta_keys.(leaf))
          vk pkgs)
      t.Dl_sharing.leaf_keys
  in
  { t with Dl_sharing.subshares; leaf_keys }

(* Synchronous-epoch driver: every party in [refreshers] contributes one
   zero-sharing; invalid packages are dropped; the epoch advances only if
   the honest-containment predicate holds on the accepted dealers. *)
let run_epoch (t : Dl_sharing.t) ~(refreshers : Pset.t) (rng : Prng.t) :
    (Dl_sharing.t, string) result =
  let pkgs =
    Pset.fold
      (fun dealer acc -> make_refresh t ~dealer (Prng.split rng) :: acc)
      refreshers []
  in
  let accepted = List.filter (verify_refresh t) pkgs in
  let dealers =
    List.fold_left (fun acc p -> Pset.add p.dealer acc) Pset.empty accepted
  in
  if not (Adversary_structure.contains_honest t.Dl_sharing.structure dealers)
  then Error "refresh set may be fully corrupted; epoch not advanced"
  else Ok (apply_refreshes t accepted)

(* ---- resharing toward a new access structure (membership change) ----

   The refresh above re-randomizes shares of a frozen structure; a
   membership change moves the same secret x from one access structure
   to another (add a replica by including it in the target, remove one
   by leaving it out).  Classic LSSS-to-LSSS resharing: every dealer
   B-shares each old leaf value it owns over the *target* scheme and
   publishes per-target-leaf exponent keys; a verifier checks each
   sub-dealing against the old leaf's public key in the exponent.  Any
   old-structure sharing-qualified dealer set then recombines: with
   old-scheme coefficients c_l over the dealers' leaves,

     new share of target leaf m  =  sum_l c_l * w_{l,m}
     new key of target leaf m    =  prod_l (K_{l,m})^{c_l}

   so the secret (sum_l c_l * v_l = x) and the public key g^x are
   untouched while every share lives in the new scheme.  Old-epoch
   shares are useless afterwards for the same reason refresh kills
   them: the two epochs are independent sharings of x. *)

type target = {
  t_structure : Adversary_structure.t;
  t_scheme : Lsss.scheme;
}

let target_of (t : Dl_sharing.t) (structure : Adversary_structure.t) : target =
  { t_structure = structure;
    t_scheme =
      Lsss.build ~modulus:t.Dl_sharing.group.G.q
        (Adversary_structure.access_formula structure) }

type reshare_package = {
  r_dealer : int;
  r_deals : (int * Lsss.subshare list * G.elt array) list;
      (* old leaf -> fresh sharing of its value over the target scheme,
         plus per-target-leaf keys g^{w} *)
}

let make_reshare (t : Dl_sharing.t) (target : target) ~(dealer : int)
    (rng : Prng.t) : reshare_package =
  let ps = t.Dl_sharing.group in
  G.prepare_base ps ps.G.g;
  let r_deals =
    List.map
      (fun (s : Lsss.subshare) ->
        let shares = Lsss.share target.t_scheme rng ~secret:s.Lsss.value in
        let keys =
          Array.make (Lsss.num_leaves target.t_scheme) (G.one ps)
        in
        List.iter
          (fun (w : Lsss.subshare) ->
            keys.(w.Lsss.leaf) <- G.exp_g ps w.Lsss.value)
          shares;
        (s.Lsss.leaf, shares, keys))
      (Dl_sharing.shares_of t dealer)
  in
  { r_dealer = dealer; r_deals = r_deals }

(* A reshare package is valid when it covers exactly the dealer's old
   leaves and each sub-dealing is a well-formed target-scheme sharing
   whose exponent recombination lands on the old leaf's public key. *)
let verify_reshare (t : Dl_sharing.t) (target : target)
    (pkg : reshare_package) : bool =
  let ps = t.Dl_sharing.group in
  let old_scheme = t.Dl_sharing.scheme in
  let nl' = Lsss.num_leaves target.t_scheme in
  let full = Pset.full (Adversary_structure.n target.t_structure) in
  let covered = List.sort compare (List.map (fun (l, _, _) -> l) pkg.r_deals) in
  let owned =
    List.sort compare
      (List.map (fun (s : Lsss.subshare) -> s.Lsss.leaf)
         (Dl_sharing.shares_of t pkg.r_dealer))
  in
  covered = owned
  && covered <> []
  && List.for_all
       (fun (old_leaf, shares, keys) ->
         old_leaf >= 0
         && old_leaf < Array.length t.Dl_sharing.leaf_keys
         && Lsss.leaf_owner old_scheme old_leaf = pkg.r_dealer
         && Array.length keys = nl'
         && List.length shares = nl'
         &&
         (* Every target leaf exactly once, as in {!verify_refresh}: a
            duplicate hiding a missing leaf would leave one key
            unchecked against any share. *)
         let seen = Array.make nl' false in
         List.for_all
           (fun (w : Lsss.subshare) ->
             w.Lsss.leaf >= 0
             && w.Lsss.leaf < nl'
             && (not seen.(w.Lsss.leaf))
             && (seen.(w.Lsss.leaf) <- true;
                 Lsss.leaf_owner target.t_scheme w.Lsss.leaf = w.Lsss.party
                 && G.elt_equal keys.(w.Lsss.leaf) (G.exp_g ps w.Lsss.value)))
           shares
         &&
         match Lsss.recombination target.t_scheme full with
         | None -> false
         | Some coeffs ->
           G.elt_equal
             (G.multi_exp ps
                (List.map (fun (leaf, c) -> (keys.(leaf), c)) coeffs))
             t.Dl_sharing.leaf_keys.(old_leaf))
       pkg.r_deals

(* Recombine verified reshare packages into the next epoch's sharing
   over the target structure.  The dealers must be distinct and form an
   old-structure sharing-qualified set (so the recombination vector
   exists); re-randomization additionally needs an honest dealer among
   them, which the caller establishes (run_reshare, or the epoch
   protocol's certificate). *)
let apply_reshares (t : Dl_sharing.t) (target : target)
    (pkgs : reshare_package list) : (Dl_sharing.t, string) result =
  let ps = t.Dl_sharing.group in
  let dealers =
    List.fold_left (fun acc p -> Pset.add p.r_dealer acc) Pset.empty pkgs
  in
  if List.length pkgs <> Pset.card dealers then
    Error "duplicate dealer in reshare set"
  else
    match Lsss.recombination t.Dl_sharing.scheme dealers with
    | None -> Error "dealer set not sharing-qualified in the old structure"
    | Some coeffs ->
      let deal_of old_leaf =
        List.find_map
          (fun p ->
            List.find_map
              (fun (l, shares, keys) ->
                if l = old_leaf then Some (shares, keys) else None)
              p.r_deals)
          pkgs
      in
      (try
         let nl' = Lsss.num_leaves target.t_scheme in
         let values = Array.make nl' B.zero in
         List.iter
           (fun (old_leaf, c) ->
             match deal_of old_leaf with
             | None -> raise Exit
             | Some (shares, _) ->
               List.iter
                 (fun (w : Lsss.subshare) ->
                   values.(w.Lsss.leaf) <-
                     B.add_mod
                       values.(w.Lsss.leaf)
                       (B.mul_mod w.Lsss.value c ps.G.q)
                       ps.G.q)
                 shares)
           coeffs;
         let leaf_keys =
           Array.init nl' (fun l' ->
               G.multi_exp ps
                 (List.map
                    (fun (old_leaf, c) ->
                      match deal_of old_leaf with
                      | None -> raise Exit
                      | Some (_, keys) -> (keys.(l'), c))
                    coeffs))
         in
         let subshares =
           List.init nl' (fun l' ->
               { Lsss.leaf = l';
                 party = Lsss.leaf_owner target.t_scheme l';
                 value = values.(l') })
         in
         let next =
           { t with
             Dl_sharing.structure = target.t_structure;
             scheme = target.t_scheme;
             subshares;
             leaf_keys }
         in
         (* Defence in depth: the recombined keys must still open to the
            deployment's public key. *)
         let full = Pset.full (Adversary_structure.n target.t_structure) in
         match
           Dl_sharing.combine_in_exponent next ~avail:full
             ~leaf_values:
               (List.mapi (fun l k -> (l, k)) (Array.to_list leaf_keys))
         with
         | Some pk when G.elt_equal pk t.Dl_sharing.public_key -> Ok next
         | _ -> Error "resharing does not open to the public key"
       with Exit -> Error "reshare packages do not cover the dealer leaves")

(* Synchronous membership-change driver, the reshare analogue of
   [run_epoch]: every dealer holding old shares contributes, invalid
   packages are dropped, and the move happens only when the accepted
   dealers surely contain an honest party (secrecy of the
   re-randomization) and are old-structure sharing-qualified
   (availability of the recombination). *)
let run_reshare (t : Dl_sharing.t) ~(structure : Adversary_structure.t)
    ~(dealers : Pset.t) (rng : Prng.t) : (Dl_sharing.t, string) result =
  let target = target_of t structure in
  let pkgs =
    Pset.fold
      (fun dealer acc ->
        if Dl_sharing.shares_of t dealer = [] then acc
        else make_reshare t target ~dealer (Prng.split rng) :: acc)
      dealers []
  in
  let accepted = List.filter (verify_reshare t target) pkgs in
  let dealer_set =
    List.fold_left (fun acc p -> Pset.add p.r_dealer acc) Pset.empty accepted
  in
  if
    not (Adversary_structure.contains_honest t.Dl_sharing.structure dealer_set)
  then Error "reshare set may be fully corrupted; epoch not advanced"
  else apply_reshares t target accepted
