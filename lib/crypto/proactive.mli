(** Proactive share refresh (paper, Section 6): between epochs the
    parties re-randomize all key shares by adding verifiable sharings of
    zero, so a mobile adversary's knowledge from past epochs becomes
    useless while the public key and every derived object stay valid.

    This is the cryptographic epoch-refresh primitive; agreeing on epoch
    boundaries in a fully asynchronous network was an open problem at the
    time of the paper and remains out of scope (see DESIGN.md). *)

type refresh_package = {
  dealer : int;
  deltas : Lsss.subshare list;  (** a sharing of zero *)
  delta_keys : Schnorr_group.elt array;  (** leaf id → g{^δ} *)
}

val make_refresh : Dl_sharing.t -> dealer:int -> Prng.t -> refresh_package

val verify_refresh : Dl_sharing.t -> refresh_package -> bool
(** Deltas consistent with the published keys and recombining to zero. *)

val apply_refreshes : Dl_sharing.t -> refresh_package list -> Dl_sharing.t
(** Next epoch's sharing: same secret and public key, fresh shares and
    leaf keys. *)

val run_epoch :
  Dl_sharing.t -> refreshers:Pset.t -> Prng.t -> (Dl_sharing.t, string) result
(** One synchronous epoch: contributions from [refreshers], dropped when
    invalid; fails unless the accepted dealers surely contain an honest
    party. *)

(** {2 Resharing toward a new access structure (membership change)}

    Moves the same secret (and public key) from the current access
    structure to a target one — adding a replica by including it in the
    target, removing one by leaving it out.  Every dealer re-shares each
    old leaf value it owns over the target scheme; any old-structure
    sharing-qualified dealer set recombines into the next epoch's
    sharing. *)

type target = {
  t_structure : Adversary_structure.t;
  t_scheme : Lsss.scheme;
}

val target_of : Dl_sharing.t -> Adversary_structure.t -> target
(** The target structure paired with its LSSS scheme over the same
    group. *)

type reshare_package = {
  r_dealer : int;
  r_deals : (int * Lsss.subshare list * Schnorr_group.elt array) list;
      (** old leaf → fresh target-scheme sharing of its value, with
          per-target-leaf keys g{^w} *)
}

val make_reshare :
  Dl_sharing.t -> target -> dealer:int -> Prng.t -> reshare_package

val verify_reshare : Dl_sharing.t -> target -> reshare_package -> bool
(** Covers exactly the dealer's old leaves; every sub-dealing is a
    well-formed target sharing whose exponent recombination lands on the
    old leaf's public key. *)

val apply_reshares :
  Dl_sharing.t ->
  target ->
  reshare_package list ->
  (Dl_sharing.t, string) result
(** Recombine verified packages from distinct, old-structure
    sharing-qualified dealers into the target structure's sharing; the
    public key is checked unchanged. *)

val run_reshare :
  Dl_sharing.t ->
  structure:Adversary_structure.t ->
  dealers:Pset.t ->
  Prng.t ->
  (Dl_sharing.t, string) result
(** Synchronous membership-change driver: contributions from [dealers]
    (those holding old shares), dropped when invalid; fails unless the
    accepted dealers surely contain an honest party and can recombine. *)
