(* Practical threshold RSA signatures (Shoup, EUROCRYPT 2000).

   The signature scheme of the paper's trusted services: clients verify a
   single RSA public key (N, e) while the private exponent d is Shamir-
   shared among the servers by the trusted dealer.  Shares are
   non-interactive, carry validity proofs, and any k valid shares combine
   into a standard RSA signature.  The reconstruction threshold k is a
   parameter, so the same scheme also provides the "dual-threshold"
   certificates that compress protocol messages to constant size
   (Section 3: "threshold signatures are further employed to decrease
   all messages to a constant size").

   Key facts used below (Delta = n!):
     share of party j (1-indexed):  s_j = f(j) mod m,  f(0) = d,
                                    m = p'q' for safe primes p = 2p'+1 etc.
     signature share:   x_j = H(M)^{2 Delta s_j} mod N
     combination:       w = prod x_j^{2 lambda_j} = H(M)^{4 Delta^2 d},
                        with integer Lagrange lambda_j = Delta * l_j(0)
     final signature:   y = w^a H(M)^b where 4 Delta^2 a + e b = 1,
                        so y^e = H(M). *)

module B = Bignum

type public_key = { n_modulus : B.t; e : B.t; n_parties : int; k : int }

type keys = {
  pk : public_key;
  shares : B.t array;  (* party i (0-indexed) holds shares.(i) = f(i+1) *)
  v : B.t;  (* verification base, a generator of QR_N *)
  vks : B.t array;  (* vks.(i) = v^{shares.(i)} mod N *)
}

type share = { signer : int; x : B.t; c : B.t; z : B.t }
type signature = B.t

let domain = "sintra/tsig"
let fdh_domain = domain ^ "/fdh"
let chal_domain = domain ^ "/chal"
let nonce_domain = domain ^ "/nonce"

(* delta = n! — memoized: the same server-set size recurs for every
   share and combine of a key's lifetime. *)
let delta_cache : (int * B.t) list ref = ref []

let delta n =
  match List.assoc_opt n !delta_cache with
  | Some d -> d
  | None ->
    let rec go acc i = if i > n then acc else go (B.mul_int acc i) (i + 1) in
    let d = go B.one 2 in
    delta_cache := (n, d) :: !delta_cache;
    d

let pow_signed ~base ~exp ~modulus =
  if B.sign exp >= 0 then B.pow_mod ~base ~exp ~modulus
  else
    match B.inv_mod base modulus with
    | Some inv -> B.pow_mod ~base:inv ~exp:(B.neg exp) ~modulus
    | None -> invalid_arg "Rsa_threshold.pow_signed: not invertible"

(* b1^e1 * b2^e2 mod N with a possibly-negative e2 (e1 is always a
   non-negative proof response here): invert the base, then fuse the two
   exponentiations into one shared squaring chain. *)
let pow2_signed ~b1 ~e1 ~b2 ~e2 ~modulus =
  let b2, e2 =
    if B.sign e2 >= 0 then (b2, e2)
    else
      match B.inv_mod b2 modulus with
      | Some inv -> (inv, B.neg e2)
      | None -> invalid_arg "Rsa_threshold.pow2_signed: not invertible"
  in
  B.pow2_mod ~b1 ~e1 ~b2 ~e2 ~modulus

let deal ?(bits = 256) ~n ~k (rng : Prng.t) : keys =
  if k < 1 || k > n then invalid_arg "Rsa_threshold.deal: bad k";
  if n >= 65537 then invalid_arg "Rsa_threshold.deal: n too large for e";
  let rec pick_moduli () =
    let p, p' = Primes.random_safe_prime rng ~bits:(bits / 2) in
    let q, q' = Primes.random_safe_prime rng ~bits:(bits / 2) in
    if B.equal p q then pick_moduli () else (p, p', q, q')
  in
  let p, p', q, q' = pick_moduli () in
  let n_modulus = B.mul p q in
  let m = B.mul p' q' in
  let e = B.of_int 65537 in
  let d =
    match B.inv_mod e m with
    | Some d -> d
    | None -> invalid_arg "Rsa_threshold.deal: e divides m (retry seed)"
  in
  let poly = Poly.random rng ~modulus:m ~degree:(k - 1) ~secret:d in
  let shares = Array.init n (fun i -> Poly.eval_at_int poly (i + 1)) in
  (* v must generate QR_N: a random square does with overwhelming
     probability (QR_N is cyclic of order p'q'). *)
  let r = Prng.bignum_below rng n_modulus in
  let v = B.mul_mod r r n_modulus in
  let vks =
    Array.map (fun s -> B.pow_mod ~base:v ~exp:s ~modulus:n_modulus) shares
  in
  { pk = { n_modulus; e; n_parties = n; k }; shares; v; vks }

(* Full-domain-ish hash into Z_N^*. *)
let hash_to_zn (pk : public_key) (msg : string) : B.t =
  let rec go ctr =
    let h =
      Ro.hash_to_bignum_below ~domain:fdh_domain
        [ msg; string_of_int ctr ] pk.n_modulus
    in
    if B.sign h > 0 && B.equal (B.gcd h pk.n_modulus) B.one then h else go (ctr + 1)
  in
  go 0

let proof_challenge (pk : public_key) ~v ~xt ~vi ~xi2 ~v' ~x' : B.t =
  let h =
    Ro.hash_expand ~domain:chal_domain
      (List.map B.to_bytes_be [ v; xt; vi; xi2; v'; x'; pk.n_modulus ])
      ~len:16
  in
  B.of_bytes_be h

let sign_share (keys : keys) ~(party : int) (msg : string) : share =
  Obs_crypto.sign ();
  let pk = keys.pk in
  let nn = pk.n_modulus in
  let dd = delta pk.n_parties in
  let s_i = keys.shares.(party) in
  let xhat = hash_to_zn pk msg in
  let x = B.pow_mod ~base:xhat ~exp:(B.mul (B.shift_left dd 1) s_i) ~modulus:nn in
  (* Shoup's share-correctness proof: log_v vks = log_{x~} x^2 where
     x~ = xhat^{4 Delta}.  Deterministic nonce, as in the DLEQ proofs. *)
  let xt = B.pow_mod ~base:xhat ~exp:(B.shift_left dd 2) ~modulus:nn in
  let nonce_bound = B.shift_left B.one (B.numbits nn + 2 + 256) in
  let r =
    Ro.hash_to_bignum_below ~domain:nonce_domain
      [ B.to_bytes_be s_i; msg ] nonce_bound
  in
  let v' = B.pow_mod ~base:keys.v ~exp:r ~modulus:nn in
  let x' = B.pow_mod ~base:xt ~exp:r ~modulus:nn in
  let xi2 = B.mul_mod x x nn in
  let c = proof_challenge pk ~v:keys.v ~xt ~vi:keys.vks.(party) ~xi2 ~v' ~x' in
  let z = B.add (B.mul s_i c) r in
  { signer = party; x; c; z }

(* Structural validity alone: the receipt-time check of a lazy call
   site; the correctness proof is subsumed by the combine-time
   signature check. *)
let check_shape (keys : keys) (sh : share) : bool =
  let pk = keys.pk in
  let nn = pk.n_modulus in
  sh.signer >= 0 && sh.signer < pk.n_parties
  && B.sign sh.x > 0 && B.lt sh.x nn
  && B.equal (B.gcd sh.x nn) B.one

let verify_share (keys : keys) (msg : string) (sh : share) : bool =
  Obs_crypto.share_verify ();
  let pk = keys.pk in
  let nn = pk.n_modulus in
  sh.signer >= 0 && sh.signer < pk.n_parties
  && B.sign sh.x > 0 && B.lt sh.x nn
  && B.equal (B.gcd sh.x nn) B.one
  &&
  let dd = delta pk.n_parties in
  let xhat = hash_to_zn pk msg in
  let xt = B.pow_mod ~base:xhat ~exp:(B.shift_left dd 2) ~modulus:nn in
  let xi2 = B.mul_mod sh.x sh.x nn in
  let vi = keys.vks.(sh.signer) in
  let v' = pow2_signed ~b1:keys.v ~e1:sh.z ~b2:vi ~e2:(B.neg sh.c) ~modulus:nn in
  let x' = pow2_signed ~b1:xt ~e1:sh.z ~b2:xi2 ~e2:(B.neg sh.c) ~modulus:nn in
  B.equal sh.c (proof_challenge pk ~v:keys.v ~xt ~vi ~xi2 ~v' ~x')

(* Integer Lagrange coefficients lambda_j = Delta * prod_{j' != j} j'/(j'-j),
   over the 1-indexed point set [points]; Delta clears all denominators. *)
let integer_lagrange_uncached ~n_parties (points : int list) :
    (int * B.t) list =
  let dd = delta n_parties in
  List.map
    (fun j ->
      let num, den =
        List.fold_left
          (fun (num, den) j' ->
            if j' = j then (num, den)
            else (B.mul_int num j', B.mul_int den (j' - j)))
          (dd, B.one) points
      in
      let q, r = B.divmod num den in
      assert (B.is_zero r);
      (j, q))
    points

(* Memoized per (n_parties, points) in a small move-to-front LRU: a
   stable server set signs every message with the same k fastest
   responders, so the coefficient vector recurs run-long.  Keyed by the
   sorted point list (not a Pset) because RSA keys may span more parties
   than a bit-mask set holds. *)
let lagrange_cache_capacity = 64
let lagrange_cache : ((int * int list) * (int * B.t) list) list ref = ref []

let integer_lagrange ~n_parties (points : int list) : (int * B.t) list =
  let key = (n_parties, points) in
  let rec lookup acc = function
    | [] -> None
    | ((k, v) as hd) :: tl ->
      if k = key then begin
        lagrange_cache := hd :: List.rev_append acc tl;
        Some v
      end
      else lookup (hd :: acc) tl
  in
  match lookup [] !lagrange_cache with
  | Some v ->
    Obs_crypto.recomb_cache_hit ();
    v
  | None ->
    Obs_crypto.recomb_cache_miss ();
    let v = integer_lagrange_uncached ~n_parties points in
    lagrange_cache :=
      List.filteri (fun i _ -> i < lagrange_cache_capacity)
        ((key, v) :: !lagrange_cache);
    v

(* Combine exactly [k] shares into the candidate signature. *)
let combine_raw (keys : keys) ~(xhat : B.t) (shares : share list) :
    signature =
  let pk = keys.pk in
  let nn = pk.n_modulus in
  let points = List.map (fun s -> s.signer + 1) shares in
  let lambdas = integer_lagrange ~n_parties:pk.n_parties points in
  let w =
    List.fold_left
      (fun acc s ->
        let lambda = List.assoc (s.signer + 1) lambdas in
        B.mul_mod acc
          (pow_signed ~base:s.x ~exp:(B.shift_left lambda 1) ~modulus:nn)
          nn)
      B.one shares
  in
  (* w^e = H(M)^{4 Delta^2}; Bezout lifts it to an e-th root of H(M). *)
  let dd = delta pk.n_parties in
  let four_d2 = B.shift_left (B.mul dd dd) 2 in
  let g, a, b = B.egcd four_d2 pk.e in
  assert (B.equal g B.one);
  B.mul_mod
    (pow_signed ~base:w ~exp:a ~modulus:nn)
    (pow_signed ~base:xhat ~exp:b ~modulus:nn)
    nn

(* The public signature equation, reused as the lazy-combine acceptance
   check: one short-exponent pow_mod (e = 65537), far cheaper than the
   per-share proof checks it replaces. *)
let signature_ok (pk : public_key) ~(xhat : B.t) (y : signature) : bool =
  B.sign y > 0 && B.lt y pk.n_modulus
  && B.equal (B.pow_mod ~base:y ~exp:pk.e ~modulus:pk.n_modulus) xhat

(* Eager policy (seed behaviour): the caller verified the shares; take
   the k first signers and combine.  Lazy policy: combine optimistically
   and accept iff y^e = H(M) — RSA, unlike the coin, has a public
   predicate on the combined value, so the happy path checks no share
   proof at all.  On failure, fall back to per-share verification,
   drop the bad shares and retry, so an invalid signature is never
   returned. *)
let combine (keys : keys) (msg : string) (shares : share list) :
    signature option =
  Obs_crypto.combine ();
  let pk = keys.pk in
  let shares =
    List.sort_uniq (fun a b -> compare a.signer b.signer) shares
  in
  if List.length shares < pk.k then None
  else if not (Crypto_policy.is_lazy ()) then begin
    let shares = List.filteri (fun i _ -> i < pk.k) shares in
    Some (combine_raw keys ~xhat:(hash_to_zn pk msg) shares)
  end
  else begin
    let xhat = hash_to_zn pk msg in
    let chosen = List.filteri (fun i _ -> i < pk.k) shares in
    let y = combine_raw keys ~xhat chosen in
    if signature_ok pk ~xhat y then begin
      Obs_crypto.lazy_verify_hit ();
      Some y
    end
    else begin
      Obs_crypto.batch_verify_fallback ();
      let good = List.filter (verify_share keys msg) shares in
      if List.length good < pk.k then None
      else begin
        let chosen = List.filteri (fun i _ -> i < pk.k) good in
        let y = combine_raw keys ~xhat chosen in
        if signature_ok pk ~xhat y then Some y else None
      end
    end
  end

let verify (pk : public_key) (msg : string) (y : signature) : bool =
  Obs_crypto.verify ();
  B.sign y > 0 && B.lt y pk.n_modulus
  && B.equal
       (B.pow_mod ~base:y ~exp:pk.e ~modulus:pk.n_modulus)
       (hash_to_zn pk msg)
