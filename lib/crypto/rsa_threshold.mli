(** Practical threshold RSA signatures (Shoup, EUROCRYPT 2000).

    Clients verify a single RSA key (N, e) while the private exponent is
    Shamir-shared over Z{_{p'q'}} by the trusted dealer; shares are
    non-interactive, carry validity proofs, and any [k] valid shares
    combine into a standard RSA signature.  The reconstruction threshold
    [k] is a free parameter, which also provides the dual-threshold
    certificates (k = n − t) that compress protocol messages to constant
    size (paper, Section 3). *)

type public_key = { n_modulus : Bignum.t; e : Bignum.t; n_parties : int; k : int }

type keys = {
  pk : public_key;
  shares : Bignum.t array;  (** party i holds [shares.(i)] = f(i+1) *)
  v : Bignum.t;  (** verification base (generator of QR{_N}) *)
  vks : Bignum.t array;  (** [vks.(i) = v^{shares.(i)}] *)
}

type share = { signer : int; x : Bignum.t; c : Bignum.t; z : Bignum.t }
type signature = Bignum.t

val deal : ?bits:int -> n:int -> k:int -> Prng.t -> keys
(** Safe-prime RSA modulus of [bits] bits (default 256; toy-sized),
    e = 65537; requires [n < 65537]. *)

val delta : int -> Bignum.t
(** Δ = n! — the denominator-clearing factor. *)

val sign_share : keys -> party:int -> string -> share
(** [H(M)^{2Δs_i}] with Shoup's share-correctness proof. *)

val check_shape : keys -> share -> bool
(** Structural validity only (signer bounds, range, invertibility) —
    what a lazy call site checks at receipt, deferring the correctness
    proof to {!combine}'s signature check. *)

val verify_share : keys -> string -> share -> bool

val combine : keys -> string -> share list -> signature option
(** Any [k] distinct valid shares; [None] if fewer.  Eager policy:
    shares must have been verified by the caller (seed behaviour).
    Lazy policy: combine optimistically and accept iff [y^e = H(M)],
    falling back to per-share verification when that fails — an invalid
    signature is never returned. *)

val verify : public_key -> string -> signature -> bool
(** Standard RSA full-domain-hash verification: [y^e = H(M) mod N]. *)
