(* Plain (non-threshold) Schnorr signatures over the shared group.

   Used where the protocols call for ordinary digital signatures from
   individual servers — e.g. the signed proposals inside the atomic
   broadcast protocol ("every party digitally signs the message it
   proposes for the current round", Section 3). *)

module B = Bignum
module G = Schnorr_group

type keypair = { sk : B.t; pk : G.elt }
type signature = { c : B.t; z : B.t }

let domain = "sintra/schnorr"

let generate (ps : G.params) (rng : Prng.t) : keypair =
  let sk = G.random_exponent ps rng in
  { sk; pk = G.exp_g ps sk }

let challenge ps ~a ~pk ~msg =
  G.hash_to_exponent ps ~domain:(domain ^ "/c")
    [ G.elt_to_bytes ps a; G.elt_to_bytes ps pk; msg ]

let sign (ps : G.params) (kp : keypair) (msg : string) : signature =
  Obs_crypto.sign ();
  (* Deterministic nonce (RFC 6979 style). *)
  let r =
    Ro.hash_to_bignum_below ~domain:(domain ^ "/nonce")
      [ B.to_bytes_be kp.sk; msg ] ps.G.q
  in
  let a = G.exp_g ps r in
  let c = challenge ps ~a ~pk:kp.pk ~msg in
  { c; z = B.add_mod r (B.mul_mod c kp.sk ps.G.q) ps.G.q }

let verify (ps : G.params) ~(pk : G.elt) (msg : string) (s : signature) : bool
    =
  Obs_crypto.verify ();
  B.sign s.z >= 0 && B.lt s.z ps.G.q
  &&
  (* a = g^z * pk^-c; g is served by its fixed-base table, pk by the
     ordinary ladder, fused in one exp2. *)
  let a = G.exp2 ps ps.G.g s.z (G.inv ps pk) s.c in
  B.equal s.c (challenge ps ~a ~pk ~msg)

let to_bytes (ps : G.params) (s : signature) : string =
  let len = (B.numbits ps.G.q + 7) / 8 in
  B.to_bytes_be ~len s.c ^ B.to_bytes_be ~len s.z

let of_bytes (ps : G.params) (raw : string) : signature option =
  let len = (B.numbits ps.G.q + 7) / 8 in
  if String.length raw <> 2 * len then None
  else
    Some
      { c = B.of_bytes_be (String.sub raw 0 len);
        z = B.of_bytes_be (String.sub raw len len) }
