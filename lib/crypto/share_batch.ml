(* Batched and lazy verification driver shared by the DLEQ-based share
   schemes (threshold coin, TDH2 decryption, certificate signatures).

   All three schemes hand out shares of the same shape: for a scheme
   base b (H'(name), the ciphertext's u, or H'(M)), a share for leaf l
   is b^{x_l} with a DLEQ proof of log_g leafkey_l = log_b value.  That
   makes their statements batch together — same g1 = g and g2 = b across
   a whole message, or across every share of a combine call — and makes
   the lazy combine-time check identical for all of them. *)

module B = Bignum
module G = Schnorr_group

(* A share flattened out of its scheme-specific record. *)
type flat = { party : int; leaf : int; value : G.elt; proof : Dleq.t }

let statements (t : Dl_sharing.t) ~(base : G.elt) (shares : flat list) :
    (Dleq.statement * Dleq.t) list =
  let ps = t.Dl_sharing.group in
  List.map
    (fun (f : flat) ->
      ( { Dleq.g1 = ps.G.g;
          h1 = t.Dl_sharing.leaf_keys.(f.leaf);
          g2 = base;
          h2 = f.value },
        f.proof ))
    shares

(* One party's shares checked as a batch — the [verify_share] fast path
   when the policy allows batching.  The caller has already validated
   leaf bounds and ownership. *)
let verify_party_batch (t : Dl_sharing.t) ~(domain : string) ~(base : G.elt)
    (shares : flat list) : bool =
  Dleq.batch_verify t.Dl_sharing.group ~domain (statements t ~base shares)

(* Lazy combine-time validation: batch-check every proof behind the
   qualified set at once; on failure, attribute the bad proofs by
   bisection and drop the submitting parties, repeating until the batch
   is clean or the surviving set is no longer qualified.  Returns the
   availability set and shares that passed, or [None] when validation
   cannot leave a qualified set.

   An honest execution takes one batch check ([Obs_crypto.lazy_verify_hit]
   counts these); each round of the pruning loop removes at least one
   party, so the loop terminates. *)
let validate_for_combine (t : Dl_sharing.t) ~(domain : string)
    ~(base : G.elt) ~(avail : Pset.t) (shares : flat list) :
    (Pset.t * flat list) option =
  let scheme = t.Dl_sharing.scheme in
  let rec attempt (avail : Pset.t) (shares : flat list) =
    (* Qualification gate first: the recombination lookup is cached, and
       an unqualified set should not pay for proof checks at all. *)
    match Lsss.recombination scheme avail with
    | None -> None
    | Some _ ->
      if Dleq.batch_verify t.Dl_sharing.group ~domain
           (statements t ~base shares)
      then begin
        Obs_crypto.lazy_verify_hit ();
        Some (avail, shares)
      end
      else begin
        let arr = Array.of_list shares in
        let bad =
          Dleq.batch_find_bad t.Dl_sharing.group ~domain
            (statements t ~base shares)
        in
        let bad_parties =
          List.sort_uniq compare (List.map (fun i -> arr.(i).party) bad)
        in
        match bad_parties with
        | [] -> None (* batch fails but nothing attributable: refuse *)
        | _ ->
          attempt
            (List.fold_left (fun a p -> Pset.remove p a) avail bad_parties)
            (List.filter
               (fun (f : flat) -> not (List.mem f.party bad_parties))
               shares)
      end
  in
  attempt avail shares
