(** Batched and lazy verification driver shared by the DLEQ-based share
    schemes (threshold coin, TDH2 decryption, certificate signatures),
    whose shares all prove the same statement shape
    [log_g leafkey_l = log_b value]. *)

type flat = {
  party : int;
  leaf : int;
  value : Schnorr_group.elt;
  proof : Dleq.t;
}
(** A share flattened out of its scheme-specific record. *)

val statements :
  Dl_sharing.t ->
  base:Schnorr_group.elt ->
  flat list ->
  (Dleq.statement * Dleq.t) list

val verify_party_batch :
  Dl_sharing.t -> domain:string -> base:Schnorr_group.elt -> flat list -> bool
(** One party's shares checked with a single {!Dleq.batch_verify}; the
    caller has already validated leaf bounds and ownership. *)

val validate_for_combine :
  Dl_sharing.t ->
  domain:string ->
  base:Schnorr_group.elt ->
  avail:Pset.t ->
  flat list ->
  (Pset.t * flat list) option
(** Lazy combine-time validation: batch-check every proof at once; on
    failure attribute bad proofs by bisection, drop the submitting
    parties and retry, until the batch is clean ([Some (avail', shares')])
    or the survivors are no longer sharing-qualified ([None]). *)
