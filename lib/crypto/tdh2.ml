(* TDH2: the threshold public-key cryptosystem of Shoup and Gennaro,
   secure against adaptive chosen-ciphertext attack in the random-oracle
   model.

   CCA security is what makes secure *causal* atomic broadcast possible
   (paper, Sections 3 and 5.2): an adversary who sees a ciphertext in
   transit can neither decrypt it nor maul it into a related ciphertext
   of its own, so client requests stay confidential and unlinkable until
   the servers agree to deliver them.

   Encryption of message m under label L:
     k, r  random in Z_q
     c  = m XOR KDF(h^k)            (h = g^x is the public key)
     u  = g^k,  u' = g'^k           (g' an independent generator)
     w  = g^r,  w' = g'^r
     e  = H(c, L, u, w, u', w'),  f = r + k e
   The tuple (c, L, u, u', e, f) is the ciphertext; (e, f) is a proof of
   consistency that every server checks before emitting a decryption
   share, which is u^{x_l} plus a DLEQ proof. *)

module B = Bignum
module G = Schnorr_group

type ciphertext = {
  c : string;  (* symmetric part *)
  label : string;
  u : G.elt;
  u' : G.elt;
  e : B.t;
  f : B.t;
}

type dec_share = { leaf : int; value : G.elt; proof : Dleq.t }

let domain = "sintra/tdh2"
let g'_domain = domain ^ "/g'"
let e_domain = domain ^ "/e"
let share_domain = domain ^ "/share"
let kdf_domain = domain ^ "/kdf"

(* Independent second generator, derived by hashing (nothing up the
   sleeve: its discrete log w.r.t. g is unknown). *)
let g' (ps : G.params) : G.elt =
  G.hash_to_elt ps ~domain:g'_domain [ G.elt_to_bytes ps ps.G.g ]

let challenge ps ~c ~label ~u ~w ~u' ~w' : B.t =
  G.hash_to_exponent ps ~domain:e_domain
    (c :: label :: List.map (G.elt_to_bytes ps) [ u; w; u'; w' ])

let encrypt (t : Dl_sharing.t) (rng : Prng.t) ~(label : string)
    (plaintext : string) : ciphertext =
  let ps = t.Dl_sharing.group in
  let k = G.random_exponent ps rng and r = G.random_exponent ps rng in
  let shared = G.exp ps t.Dl_sharing.public_key k in
  let c =
    Ro.xor_pad ~domain:kdf_domain ~key:(G.elt_to_bytes ps shared)
      plaintext
  in
  let gp = g' ps in
  G.prepare_base ps gp;
  let u = G.exp_g ps k and u' = G.exp ps gp k in
  let w = G.exp_g ps r and w' = G.exp ps gp r in
  let e = challenge ps ~c ~label ~u ~w ~u' ~w' in
  let f = B.add_mod r (B.mul_mod k e ps.G.q) ps.G.q in
  { c; label; u; u'; e; f }

(* Public validity check; servers must refuse to decrypt invalid
   ciphertexts (this is the CCA2 barrier). *)
let is_valid (t : Dl_sharing.t) (ct : ciphertext) : bool =
  let ps = t.Dl_sharing.group in
  G.is_element ps ct.u && G.is_element ps ct.u'
  && B.sign ct.f >= 0 && B.lt ct.f ps.G.q
  &&
  let gp = g' ps in
  (* w = g^f * u^-e (and likewise for g'), each pair fused into one
     shared-squaring-chain exponentiation.  g' recurs across every
     ciphertext of a key, so it earns a fixed-base table. *)
  G.prepare_base ps gp;
  let w = G.exp2 ps ps.G.g ct.f (G.inv ps ct.u) ct.e in
  let w' = G.exp2 ps gp ct.f (G.inv ps ct.u') ct.e in
  B.equal ct.e (challenge ps ~c:ct.c ~label:ct.label ~u:ct.u ~w ~u':ct.u' ~w')

let decryption_share (t : Dl_sharing.t) ~(party : int) (ct : ciphertext) :
    dec_share list option =
  Obs_crypto.sign ();
  if not (is_valid t ct) then None
  else begin
    let ps = t.Dl_sharing.group in
    Some
      (List.map
         (fun (s : Lsss.subshare) ->
           let value = G.exp ps ct.u s.value in
           let proof =
             Dleq.prove ps ~domain:share_domain ~x:s.value ~g1:ps.G.g
               ~h1:t.Dl_sharing.leaf_keys.(s.leaf) ~g2:ct.u ~h2:value
           in
           { leaf = s.leaf; value; proof })
         (Dl_sharing.shares_of t party))
  end

(* Structural validity alone (share count, leaf bounds, ownership): the
   receipt-time check of a lazy call site; proofs wait for combine. *)
let check_shape (t : Dl_sharing.t) ~(party : int) (shares : dec_share list) :
    bool =
  let expected = Dl_sharing.shares_of t party in
  List.length shares = List.length expected
  && List.for_all
       (fun (s : dec_share) ->
         s.leaf >= 0
         && s.leaf < Array.length t.Dl_sharing.leaf_keys
         && Lsss.leaf_owner t.Dl_sharing.scheme s.leaf = party)
       shares

let flatten_shares party (shares : dec_share list) : Share_batch.flat list =
  List.map
    (fun (s : dec_share) ->
      { Share_batch.party; leaf = s.leaf; value = s.value; proof = s.proof })
    shares

let verify_share (t : Dl_sharing.t) ~(party : int) (ct : ciphertext)
    (shares : dec_share list) : bool =
  Obs_crypto.share_verify ();
  let ps = t.Dl_sharing.group in
  let expected = Dl_sharing.shares_of t party in
  if Crypto_policy.batchable (List.length shares) then
    check_shape t ~party shares
    && Share_batch.verify_party_batch t ~domain:share_domain ~base:ct.u
         (flatten_shares party shares)
  else
    List.length shares = List.length expected
    && List.for_all
         (fun (s : dec_share) ->
           s.leaf >= 0
           && s.leaf < Array.length t.Dl_sharing.leaf_keys
           && Lsss.leaf_owner t.Dl_sharing.scheme s.leaf = party
           && Dleq.verify ps ~domain:share_domain ~g1:ps.G.g
                ~h1:t.Dl_sharing.leaf_keys.(s.leaf) ~g2:ct.u ~h2:s.value
                s.proof)
         shares

(* Under the eager policy the shares were verified at receipt and
   recombine directly (seed behaviour); under the lazy policy they
   arrive proof-unchecked and are validated here with one batched
   check, pruning attributed-bad parties on failure. *)
let combine (t : Dl_sharing.t) (ct : ciphertext) ~(avail : Pset.t)
    (shares : (int * dec_share list) list) : string option =
  Obs_crypto.combine ();
  if not (is_valid t ct) then None
  else begin
    let ps = t.Dl_sharing.group in
    let recombine avail shares =
      let leaf_values =
        List.concat_map
          (fun (_, ss) ->
            List.map (fun (s : dec_share) -> (s.leaf, s.value)) ss)
          shares
      in
      match Dl_sharing.combine_in_exponent t ~avail ~leaf_values with
      | None -> None
      | Some shared ->
        Some
          (Ro.xor_pad ~domain:kdf_domain
             ~key:(G.elt_to_bytes ps shared) ct.c)
    in
    if not (Crypto_policy.is_lazy ()) then recombine avail shares
    else begin
      let flat =
        List.concat_map (fun (party, ss) -> flatten_shares party ss) shares
      in
      match
        Share_batch.validate_for_combine t ~domain:share_domain ~base:ct.u
          ~avail flat
      with
      | None -> None
      | Some (avail', good) ->
        let keep p =
          List.exists (fun (f : Share_batch.flat) -> f.party = p) good
        in
        recombine avail' (List.filter (fun (p, _) -> keep p) shares)
    end
  end

(* Wire encoding, so ciphertexts can be hashed / carried in messages. *)
let ciphertext_to_bytes (t : Dl_sharing.t) (ct : ciphertext) : string =
  let ps = t.Dl_sharing.group in
  Ro.encode
    [ ct.c; ct.label; G.elt_to_bytes ps ct.u; G.elt_to_bytes ps ct.u';
      B.to_bytes_be ct.e; B.to_bytes_be ct.f ]

(* Inverse of {!ciphertext_to_bytes}.  Parses the length-prefixed fields
   and checks group membership; the caller still runs {!is_valid}. *)
let ciphertext_of_bytes (t : Dl_sharing.t) (raw : string) : ciphertext option =
  let ps = t.Dl_sharing.group in
  let decode s =
    (* fields are 8-byte length-prefixed, same format as Ro.encode *)
    let len = String.length s in
    let read_u64 off =
      let v = ref 0 in
      for i = 0 to 7 do
        v := (!v lsl 8) lor Char.code s.[off + i]
      done;
      !v
    in
    let rec go off acc =
      if off = len then Some (List.rev acc)
      else if off + 8 > len then None
      else begin
        let l = read_u64 off in
        if l < 0 || off + 8 + l > len then None
        else go (off + 8 + l) (String.sub s (off + 8) l :: acc)
      end
    in
    go 0 []
  in
  match decode raw with
  | Some [ c; label; u; u'; e; f ] ->
    (match (G.elt_of_bytes ps u, G.elt_of_bytes ps u') with
    | Some u, Some u' ->
      Some { c; label; u; u'; e = B.of_bytes_be e; f = B.of_bytes_be f }
    | None, _ | _, None -> None)
  | Some _ | None -> None
