(** TDH2: the Shoup–Gennaro threshold cryptosystem, secure against
    adaptive chosen-ciphertext attack in the random-oracle model.

    CCA security is what makes secure *causal* atomic broadcast work: an
    adversary seeing a ciphertext in transit can neither decrypt it nor
    maul it into a related ciphertext, so client requests stay
    confidential and unlinkable until the servers agree to deliver them
    (paper, Sections 3 and 5.2). *)

type ciphertext = {
  c : string;  (** symmetric part *)
  label : string;  (** authenticated label (e.g. client identity) *)
  u : Schnorr_group.elt;
  u' : Schnorr_group.elt;
  e : Bignum.t;
  f : Bignum.t;
}

type dec_share = { leaf : int; value : Schnorr_group.elt; proof : Dleq.t }

val encrypt : Dl_sharing.t -> Prng.t -> label:string -> string -> ciphertext

val is_valid : Dl_sharing.t -> ciphertext -> bool
(** Public consistency check; servers must refuse to decrypt invalid
    ciphertexts (the CCA2 barrier). *)

val decryption_share :
  Dl_sharing.t -> party:int -> ciphertext -> dec_share list option
(** [None] when the ciphertext is invalid. *)

val check_shape : Dl_sharing.t -> party:int -> dec_share list -> bool
(** Structural validity only (share count, leaf bounds, ownership) —
    what a lazy call site checks at receipt, deferring the DLEQ proofs
    to {!combine}. *)

val verify_share :
  Dl_sharing.t -> party:int -> ciphertext -> dec_share list -> bool
(** Per-proof as in the seed, or one batched check when
    {!Crypto_policy.batchable} says so. *)

val combine :
  Dl_sharing.t ->
  ciphertext ->
  avail:Pset.t ->
  (int * dec_share list) list ->
  string option
(** Recover the plaintext from shares of a sharing-qualified set.
    Eager policy: shares must have been verified at receipt (seed
    behaviour).  Lazy policy: shares are validated here with one
    batched proof check, pruning attributed-bad parties on failure. *)

val ciphertext_to_bytes : Dl_sharing.t -> ciphertext -> string
val ciphertext_of_bytes : Dl_sharing.t -> string -> ciphertext option
