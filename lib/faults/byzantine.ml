(* Reusable Byzantine behaviours, installed over a deployed party's
   honest handler.

   The simulator models full corruption by handler replacement: a
   corrupted party's incoming messages are routed to arbitrary code that
   holds the shared keyring (so it can sign, share and equivocate with
   the party's real keys) and the simulator handle (so it can send
   anything to anyone).  Before this module, every test hand-rolled that
   code inline; here the recurring shapes are named, parameterized and
   composable, and a whole corruptible set from the adversary structure
   can be corrupted at once — which is exactly the quantification the
   paper's Section 2 model asks for ("for every set in the structure"). *)

(* Behaviours operate at the payload level, below any link endpoint:
   the simulator's wire carries ['msg Link.frame], and a behaviour's
   own sends travel as [Link.Raw] — the adversary controls its local
   transport and is free to bypass its own link sequencing, while its
   forged payloads still reach every honest handler (link-off unwraps
   [Raw] directly; link-on delivers it as an unsequenced frame). *)
type 'msg ctx = {
  sim : 'msg Link.frame Sim.t;
  keyring : Keyring.t;
  party : int;
  rng : Prng.t;
}

type 'msg t = 'msg ctx -> 'msg Sim.handler -> 'msg Sim.handler

(* ---------- generic behaviours -------------------------------------- *)

let honest : 'msg t = fun _ctx h -> h

let silent : 'msg t = fun _ctx _honest ~src:_ _msg -> ()

let crash_at time : 'msg t =
 fun ctx honest ->
  let delay = Float.max 0.0 (time -. Sim.clock ctx.sim) in
  Sim.set_timer ctx.sim ctx.party ~delay (fun () ->
      Sim.crash ctx.sim ctx.party);
  honest

let replayer ?(copies = 1) ?(budget = 64) () : 'msg t =
 fun ctx honest ->
  let used = ref 0 in
  fun ~src msg ->
    honest ~src msg;
    if !used < budget then begin
      incr used;
      for _ = 1 to copies do
        Sim.broadcast ctx.sim ~src:ctx.party (Link.Raw msg)
      done
    end

let injector ?(budget = 64) forge : 'msg t =
 fun ctx honest ->
  let used = ref 0 in
  fun ~src msg ->
    honest ~src msg;
    if !used < budget then begin
      incr used;
      List.iter
        (fun (dst, m) -> Sim.send ctx.sim ~src:ctx.party ~dst (Link.Raw m))
        (forge ctx ~src msg)
    end

let equivocator ?(budget = 64) forge : 'msg t =
 fun ctx _honest ->
  let used = ref 0 in
  fun ~src msg ->
    if !used < budget then
      match forge ctx ~src msg with
      | None -> ()
      | Some (ma, mb) ->
        incr used;
        let n = Sim.n ctx.sim in
        for dst = 0 to n - 1 do
          Sim.send ctx.sim ~src:ctx.party ~dst
            (Link.Raw (if 2 * dst < n then ma else mb))
        done

let mutator mutate : 'msg t =
 fun ctx honest ~src msg ->
  match mutate ctx ~src msg with
  | None -> honest ~src msg
  | Some msg' -> honest ~src msg'

let compose a b : 'msg t = fun ctx honest -> a ctx (b ctx honest)

(* ---------- installation -------------------------------------------- *)

let context ~sim ~keyring ~rng party =
  { sim; keyring; party; rng = Prng.split rng }

(* Post-deployment corruption intercepts at the frame level, so under a
   link-on deployment it also swallows the party's ack machinery (the
   behaviour sees payloads, never acks): peers keep retransmitting to it
   until their windows fill and back-pressure engages — i.e. [corrupt]
   models ack withholding as a side effect.  Campaigns use {!wrap_of}
   instead, which corrupts below the link at install time. *)
let corrupt ~sim ~keyring ~seed ~set behavior =
  let rng = Prng.create ~seed in
  Pset.iter
    (fun party ->
      Sim.wrap_handler sim party (fun installed ->
          let honest ~src m = installed ~src (Link.Raw m) in
          let wrapped =
            behavior (context ~sim ~keyring ~rng party) honest
          in
          fun ~src frame ->
            match frame with
            | Link.Raw m | Link.Data { payload = m; _ } -> wrapped ~src m
            | Link.Ack _ -> ()))
    set

let wrap_of ~sim ~keyring ~seed ~set behavior =
  let rng = Prng.create ~seed in
  fun party h ->
    if Pset.mem party set then behavior (context ~sim ~keyring ~rng party) h
    else h

(* ---------- protocol-specific forgeries ------------------------------ *)

(* Behaviours against the binary-agreement layer.  The forged objects go
   through the real signing paths of the shared keyring, so they pass
   every check that does not bind them to a statement — precisely the
   attacks the justification machinery must (and does) reject. *)
module For_abba = struct
  let round_of = function
    | Abba.Support _ -> Some 1
    | Abba.Prevote pv -> Some pv.Abba.pv_round
    | Abba.Mainvote mv -> Some mv.Abba.mv_round
    | Abba.Coin_share (r, _) -> Some r
    | Abba.Decide _ -> None

  (* Structurally valid coin shares whose group elements are garbled, so
     the DLEQ proofs fail: honest parties must filter them out and still
     assemble the coin from the honest shares. *)
  let coin_forger ?(budget = 32) ~tag () : Abba.msg t =
    injector ~budget (fun ctx ~src:_ msg ->
        match round_of msg with
        | None -> []
        | Some r ->
          let g = ctx.keyring.Keyring.group in
          let name =
            Ro.encode [ "abba-coin"; tag; string_of_int r ]
          in
          let shares =
            Coin.generate_share ctx.keyring.Keyring.coin ~party:ctx.party
              ~name
            |> List.map (fun (s : Coin.share) ->
                   { s with
                     Coin.value =
                       Schnorr_group.mul g s.Coin.value g.Schnorr_group.g })
          in
          List.init (Sim.n ctx.sim) (fun dst ->
              (dst, Abba.Coin_share (r, shares))))

  (* Genuinely signed, conflicting SUPPORT endorsements: true to one half
     of the parties, false to the other.  Quorum intersection must keep
     at most one value certifiable. *)
  let support_equivocator ?(budget = 4) ~tag () : Abba.msg t =
    equivocator ~budget (fun ctx ~src:_ _msg ->
        let share b =
          Keyring.cert_share ctx.keyring ~party:ctx.party
            (Ro.encode [ "abba-sup"; tag; string_of_bool b ])
        in
        Some (Abba.Support (true, share true), Abba.Support (false, share false)))

  (* coin_forger is the outer layer: its injector calls through to the
     support equivocator (which never runs honest logic) and then floods
     its forged shares — so both attacks are live. *)
  let byzantine ~tag () : Abba.msg t =
    compose (coin_forger ~tag ()) (support_equivocator ~tag ())
end

(* Behaviours against the atomic-broadcast layer. *)
module For_abc = struct
  (* Validly signed, conflicting proposals for the current round: payload
     A to one half, payload B to the other.  Both pass the signature
     check, so honest parties may hold different views of the corrupted
     party's proposal — agreement must come from the VBA layer alone. *)
  let proposal_equivocator ?(budget = 8) ~tag () : Abc.msg t =
    equivocator ~budget (fun ctx ~src:_ msg ->
        match msg with
        | Abc.Proposal (r, _, _) ->
          let sign payload =
            Schnorr_sig.to_bytes ctx.keyring.Keyring.group
              (Keyring.sign ctx.keyring ~party:ctx.party
                 (Ro.encode [ "abc-prop"; tag; string_of_int r; payload ]))
          in
          let pa = Printf.sprintf "equiv-a-%d" ctx.party
          and pb = Printf.sprintf "equiv-b-%d" ctx.party in
          Some
            (Abc.Proposal (r, pa, sign pa), Abc.Proposal (r, pb, sign pb))
        | Abc.Request _ | Abc.Vba_msg _ -> None)

  (* Replays captured proposals into later rounds under the original
     (now round-mismatched) signature; the round-bound statement must
     make every replay invalid. *)
  let proposal_replayer ?(budget = 32) () : Abc.msg t =
    injector ~budget (fun ctx ~src:_ msg ->
        match msg with
        | Abc.Proposal (r, payload, sg) ->
          List.init (Sim.n ctx.sim) (fun dst ->
              (dst, Abc.Proposal (r + 1, payload, sg)))
        | Abc.Request _ | Abc.Vba_msg _ -> [])

  (* replayer outer, equivocator inner, for the same reason as
     [For_abba.byzantine]. *)
  let byzantine ~tag () : Abc.msg t =
    compose (proposal_replayer ()) (proposal_equivocator ~tag ())
end

(* Behaviours against the recovery layer's state-transfer path. *)
module For_recovery = struct
  (* Answers every catch-up [Fetch] with a forged [State]: a fabricated
     digest history, a garbage "certificate" and a forged suffix,
     claiming a round ahead of everyone.  The fetcher must reject the
     reply on certificate verification and install from the remaining
     honest peers.  Everything else runs the honest logic — the forger
     stays a live, otherwise-useful replica, which is the strongest
     position for this attack (its reply races the honest ones).  The
     zero resume points are ignored by [Link.rejoin] as malformed, so
     the forgery cannot even desynchronize the victim's channel. *)
  let forged_server ?(budget = 64) () : Recovery.msg t =
   fun ctx honest ->
    let used = ref 0 in
    fun ~src msg ->
      match msg with
      | Recovery.Fetch { epoch } when !used < budget ->
        incr used;
        let digests =
          List.init 4 (fun i ->
              Sha256.digest (Printf.sprintf "forged-%d-%d" ctx.party i))
        in
        let snap = Codec.encode_snapshot ~round:8 ~app:"" ~digests in
        let ck =
          Codec.encode_ckpt ~snapshot:snap ~cert:(String.make 48 '\x2a')
        in
        Sim.send ctx.sim ~src:ctx.party ~dst:src
          (Link.Raw
             (Recovery.State
                {
                  epoch;
                  ck;
                  suffix = [ Printf.sprintf "forged-tx-%d" ctx.party ];
                  round = 9;
                  expect = 0;
                  start = 0;
                }))
      | _ -> honest ~src msg
end
