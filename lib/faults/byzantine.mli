(** Reusable Byzantine behaviours.

    A behaviour is a handler transformer: given the corrupted party's
    context (simulator handle, shared keyring, party index, private PRNG)
    and its honest handler, it returns the handler actually installed.
    Behaviours compose, and {!corrupt} applies one to every party of a
    [Pset.t], so any set of the adversary structure can be corrupted
    wholesale — the quantification the paper's fault model requires.

    Corrupted parties hold the full keyring record, so forged objects go
    through the genuine signing paths: they pass every check that does
    not bind them to a statement, which is exactly what the protocols'
    justification machinery must reject. *)

type 'msg ctx = {
  sim : 'msg Link.frame Sim.t;
      (** the framed wire — a behaviour's own sends travel as [Link.Raw],
          bypassing the party's link sequencing (the adversary controls
          its local transport) while still reaching every handler *)
  keyring : Keyring.t;
  party : int;
  rng : Prng.t;  (** private per-party stream, split off the install seed *)
}

type 'msg t = 'msg ctx -> 'msg Sim.handler -> 'msg Sim.handler

(** {2 Generic behaviours} *)

val honest : 'msg t
(** Identity — the honest handler unchanged. *)

val silent : 'msg t
(** Receives everything, sends nothing, runs no protocol logic (a
    fail-silent party that never formally crashes). *)

val crash_at : float -> 'msg t
(** Behave honestly until the given virtual time, then [Sim.crash]. *)

val replayer : ?copies:int -> ?budget:int -> unit -> 'msg t
(** Behave honestly, but also rebroadcast each received message verbatim
    [copies] times (default 1), for the first [budget] messages
    (default 64) — stale/duplicate traffic from a correct-looking
    party. *)

val injector :
  ?budget:int -> ('msg ctx -> src:int -> 'msg -> (Sim.party * 'msg) list) -> 'msg t
(** Behave honestly, but on each of the first [budget] receipts also send
    every forged [(dst, msg)] the callback produces. *)

val equivocator :
  ?budget:int -> ('msg ctx -> src:int -> 'msg -> ('msg * 'msg) option) -> 'msg t
(** Run {e no} honest logic; when the callback produces [(a, b)], send
    [a] to the lower half of the servers and [b] to the upper half. *)

val mutator : ('msg ctx -> src:int -> 'msg -> 'msg option) -> 'msg t
(** Transform inbound messages before the honest logic sees them
    ([None] = pass through unchanged). *)

val compose : 'msg t -> 'msg t -> 'msg t
(** [compose outer inner] wraps [inner]'s result with [outer]. *)

(** {2 Installation} *)

val corrupt :
  sim:'msg Link.frame Sim.t ->
  keyring:Keyring.t ->
  seed:int ->
  set:Pset.t ->
  'msg t ->
  unit
(** Apply a behaviour to every party of [set] via [Sim.wrap_handler],
    after deployment.  Each party gets an independent PRNG split off
    [seed].  Intercepts at the frame level: under a link-on deployment
    the corrupted party's ack machinery is swallowed too (it withholds
    acks), so peers retransmit to it until back-pressure engages —
    campaigns prefer {!wrap_of}, which corrupts below the link. *)

val wrap_of :
  sim:'msg Link.frame Sim.t ->
  keyring:Keyring.t ->
  seed:int ->
  set:Pset.t ->
  'msg t ->
  int ->
  'msg Sim.handler ->
  'msg Sim.handler
(** The same corruption as a [Stack.deploy ?wrap] argument, applied at
    handler-installation time (no window where the honest handler could
    run), at the payload level below any link endpoint — a corrupted
    party still acks and deduplicates. *)

(** {2 Protocol-specific forgeries} *)

module For_abba : sig
  val coin_forger : ?budget:int -> tag:string -> unit -> Abba.msg t
  (** Floods structurally valid coin shares whose group elements are
      garbled, so every DLEQ proof fails verification. *)

  val support_equivocator : ?budget:int -> tag:string -> unit -> Abba.msg t
  (** Sends genuinely signed, conflicting SUPPORT endorsements — [true]
      to one half of the parties, [false] to the other. *)

  val byzantine : tag:string -> unit -> Abba.msg t
  (** The composition of both attacks. *)
end

module For_abc : sig
  val proposal_equivocator : ?budget:int -> tag:string -> unit -> Abc.msg t
  (** Sends validly signed, conflicting round proposals to the two
      halves of the parties. *)

  val proposal_replayer : ?budget:int -> unit -> Abc.msg t
  (** Replays captured proposals into the next round under their
      original (now round-mismatched) signature. *)

  val byzantine : tag:string -> unit -> Abc.msg t
  (** The composition of both attacks. *)
end

(** Behaviours against the recovery layer's state-transfer path. *)
module For_recovery : sig
  val forged_server : ?budget:int -> unit -> Recovery.msg t
  (** Answers every catch-up [Fetch] with a forged snapshot under a
      garbage certificate; otherwise honest.  The fetcher must reject
      the reply on certificate verification. *)
end
