(* Seed-sweep fault campaigns: seeds × chaos policies × corruption mixes
   per protocol, with oracle checking and a machine-readable report.

   Every run is fully determined by (protocol, policy, mix, seed): the
   simulator schedule, the chaos draws and the Byzantine behaviours all
   derive from the seed, so any violation the sweep finds is replayable
   in isolation.  The corrupted set rotates through the maximal sets of
   the adversary structure, so over a sweep every worst-case corruption
   is exercised.

   Reporting distinguishes safety from liveness violations: lossy chaos
   specs ([p_reliable = false]) break the paper's reliable-channel
   assumption, so their liveness violations are recorded but do not gate
   ({!ok}); safety violations always gate.  Enabling the reliable link
   layer ([config.link]) flips that for the specs it can repair
   ([p_link_restores]): retransmission restores eventual delivery, the
   reliable-channel assumption holds again, and those runs gate on
   liveness like any reliable spec. *)

type policy_spec = {
  p_name : string;
  p_chaos : Sim.chaos;
  p_reliable : bool;
      (* channels still deliver eventually (duplication, reordering,
         healing partitions) — liveness oracles remain meaningful *)
  p_link_restores : bool;
      (* the link layer's retransmission repairs this spec's losses
         (probabilistic drops, no permanent partition), so with
         [config.link] set the run becomes liveness-gating *)
}

type mix_kind = Silent | Crash_at of float | Byz

type mix = { m_name : string; m_kind : mix_kind }

type protocol = P_abba | P_abc

let protocol_label = function P_abba -> "abba" | P_abc -> "abc"

let protocol_of_string = function
  | "abba" -> Some P_abba
  | "abc" -> Some P_abc
  | _ -> None

type config = {
  seeds : int;
  seed_base : int;
  n : int;
  t : int;
  rsa_bits : int;
  group_bits : int;
  protocols : protocol list;
  policies : policy_spec list;
  mixes : mix list;
  payloads : int;  (* atomic-broadcast payloads per run *)
  abc_policy : Abc.policy;  (* batching / pipelining policy of ABC runs *)
  link : Link.policy option;  (* reliable link layer (None = off) *)
  max_steps : int;
}

(* ---------- defaults -------------------------------------------------- *)

let drop_policy ?(rate = 0.02) () =
  {
    p_name = "drop";
    p_reliable = false;
    (* no permanent partition: retransmission eventually gets through *)
    p_link_restores = true;
    p_chaos =
      { Sim.benign_chaos with default_link = { Sim.no_fault with drop = rate } };
  }

let dup_reorder_policy ?(rate = 0.1) () =
  {
    p_name = "dup-reorder";
    p_reliable = true;
    p_link_restores = false;
    p_chaos =
      {
        Sim.benign_chaos with
        default_link = { Sim.no_fault with duplicate = rate; reorder = rate };
      };
  }

let partition_policy ~n () =
  (* Split the servers into halves for a virtual-time window long enough
     to stall several protocol rounds, then heal. *)
  let lower = Pset.of_list (List.init (n / 2) Fun.id)
  and upper = Pset.of_list (List.init (n - (n / 2)) (fun i -> (n / 2) + i)) in
  {
    p_name = "partition";
    p_reliable = true;
    p_link_restores = false;
    p_chaos =
      {
        Sim.benign_chaos with
        partitions = [ { Sim.from_t = 50.0; until_t = 400.0; cells = [ lower; upper ] } ];
      };
  }

let default_policies ~n = [ drop_policy (); dup_reorder_policy (); partition_policy ~n () ]

let default_mixes =
  [
    { m_name = "silent"; m_kind = Silent };
    { m_name = "crash"; m_kind = Crash_at 150.0 };
    { m_name = "byzantine"; m_kind = Byz };
  ]

let policy_of_name ~n = function
  | "drop" -> Some (drop_policy ())
  | "dup-reorder" -> Some (dup_reorder_policy ())
  | "partition" -> Some (partition_policy ~n ())
  | _ -> None

let mix_of_name name =
  List.find_opt (fun m -> m.m_name = name) default_mixes

let default_config ?(seeds = 50) ?(seed_base = 1) ?(n = 4) ?(t = 1)
    ?(rsa_bits = 192) ?(group_bits = 128) ?protocols ?policies ?mixes
    ?(payloads = 2) ?(abc_policy = Abc.default_policy) ?link
    ?(max_steps = 200_000) () =
  {
    seeds;
    seed_base;
    n;
    t;
    rsa_bits;
    group_bits;
    protocols = Option.value protocols ~default:[ P_abba; P_abc ];
    policies = Option.value policies ~default:(default_policies ~n);
    mixes = Option.value mixes ~default:default_mixes;
    payloads;
    abc_policy;
    link;
    max_steps;
  }

(* ---------- single runs ----------------------------------------------- *)

type run_result = {
  r_protocol : string;
  r_policy : string;
  r_mix : string;
  r_seed : int;
  r_corrupted : Pset.t;
  r_reliable : bool;
      (* effective: the spec delivers eventually, or the link layer
         restores delivery ([p_link_restores] with [config.link] set) —
         exactly the runs whose liveness violations gate *)
  r_violations : Oracle.violation list;
  r_decide_clock : float option;  (* virtual time of the last honest decision *)
  r_decided : bool;  (* every honest party finished within max_steps *)
  r_chaos_drops : int;
  r_chaos_dups : int;
  r_chaos_reorders : int;
  r_link_retransmits : int;  (* link-layer retransmissions in this run *)
  r_steps : int;  (* simulator steps this run consumed *)
  r_buffer_peak : int;
      (* max link send-buffer depth across this run's endpoints (0 with
         the link off) — the back-pressure signal the schedule search
         maximises *)
}

(* The corrupted set for a given seed: rotate through A* so a sweep
   covers every maximal corruption of the structure. *)
let corrupted_set keyring seed =
  let sets = Adversary_structure.maximal_adversary_sets keyring.Keyring.structure in
  match sets with
  | [] -> Pset.empty
  | _ -> List.nth sets (abs seed mod List.length sets)

let abba_behavior ~tag = function
  | Silent -> Byzantine.silent
  | Crash_at at -> Byzantine.crash_at at
  | Byz -> Byzantine.For_abba.byzantine ~tag ()

let abc_behavior ~tag = function
  | Silent -> Byzantine.silent
  | Crash_at at -> Byzantine.crash_at at
  | Byz -> Byzantine.For_abc.byzantine ~tag ()

(* Corrupted parties still run the protocol's sending side (propose /
   broadcast) only when the behaviour starts from honest logic. *)
let mix_sends_honestly = function
  | Silent | Byz -> false
  | Crash_at _ -> true

(* Effective reliability: the chaos spec delivers eventually on its own,
   or the link layer is on and repairs it. *)
let effective_reliable cfg policy =
  policy.p_reliable || (cfg.link <> None && policy.p_link_restores)

(* Per-run link retransmission counts come from the shared registry
   counter (the link endpoints of every run increment the same handle),
   metered as a before/after delta around the run. *)
let link_retransmit_counter obs =
  Obs.counter obs ~labels:[ ("layer", "link") ] "link_retransmit"

let finish cfg ~protocol ~policy ~mix ~seed ~corrupted ~sim ~violations
    ~decide_clock ~decided ~link_retransmits ~steps ~buffer_peak =
  let m = Sim.metrics sim in
  {
    r_protocol = protocol;
    r_policy = policy.p_name;
    r_mix = mix.m_name;
    r_seed = seed;
    r_corrupted = corrupted;
    r_reliable = effective_reliable cfg policy;
    r_violations = violations;
    r_decide_clock = decide_clock;
    r_decided = decided;
    r_chaos_drops = m.Metrics.chaos_drops;
    r_chaos_dups = m.Metrics.chaos_dups;
    r_chaos_reorders = m.Metrics.chaos_reorders;
    r_link_retransmits = link_retransmits;
    r_steps = steps;
    r_buffer_peak = buffer_peak;
  }

(* Flight-recorder glue: the campaign feeds the recorder plain scalars;
   the recorder depends only on sintra_obs, so the dependency arrow runs
   faults -> recorder -> obs with no cycle. *)

let flight_begin flight sim =
  Option.iter
    (fun fl -> Flight.run_begin fl ~now:(fun () -> Sim.clock sim))
    flight

let flight_stall flight ~at_clock ~detail =
  Option.iter
    (fun fl ->
      Flight.note_anomaly fl Flight.Stall ~at:at_clock
        ~detail:(if detail = "" then "out of steps" else detail))
    flight

let flight_end flight cfg ~protocol ~policy ~mix ~seed ~violations ~decided
    ~decide_clock ~steps ~buffer_peak =
  Option.iter
    (fun fl ->
      List.iter
        (fun (v : Oracle.violation) ->
          if v.Oracle.severity = Oracle.Safety then
            Flight.note_anomaly fl Flight.Safety_trip
              ~detail:(Oracle.violation_to_string v))
        violations;
      Flight.run_end fl
        ~key:
          { Flight.protocol;
            policy = policy.p_name;
            mix = mix.m_name;
            seed }
        ~decided
        ~gating:(effective_reliable cfg policy)
        ~decide_clock ~steps
        ~safety:(Oracle.count_safety violations)
        ~liveness:(Oracle.count_liveness violations)
        ~buffer_peak)
    flight

(* Max link send-buffer depth across a run's endpoints, via the
   [?on_link] deployment hook (0 with the link off).  Probes are stored
   as thunks so one helper serves every protocol's endpoint type. *)
let peak_probe () =
  let probes : (unit -> int) list ref = ref [] in
  let on_link _me ep = probes := (fun () -> Link.buffer_peak ep) :: !probes in
  let peak () = List.fold_left (fun acc f -> max acc (f ())) 0 !probes in
  (on_link, peak)

let run_abba ?flight cfg ~obs ~keyring ~policy ~mix ~seed =
  let n = cfg.n in
  let corrupted = corrupted_set keyring seed in
  let honest = Pset.diff (Pset.full n) corrupted in
  let sim = Sim.create ~n ~seed ~obs () in
  Sim.set_chaos sim (Some policy.p_chaos);
  flight_begin flight sim;
  let on_link, peak = peak_probe () in
  let tag = Printf.sprintf "flt-abba-%d" seed in
  let decisions = Array.make n None in
  let last_decide = ref None in
  let wrap =
    Byzantine.wrap_of ~sim ~keyring ~seed:(seed lxor 0x5eed) ~set:corrupted
      (abba_behavior ~tag mix.m_kind)
  in
  let retx = link_retransmit_counter obs in
  let retx0 = Obs_registry.value retx in
  let nodes =
    Stack.deploy_abba ~wrap ?link:cfg.link ~on_link ~sim ~keyring ~tag
      ~on_decide:(fun p b ->
        if decisions.(p) = None then begin
          decisions.(p) <- Some b;
          if Pset.mem p honest then last_decide := Some (Sim.clock sim)
        end)
      ()
  in
  let rng = Prng.create ~seed:(seed * 7919 + 11) in
  let proposals = Array.init n (fun _ -> Prng.bool rng) in
  Array.iteri
    (fun p node ->
      if Pset.mem p honest || mix_sends_honestly mix.m_kind then
        Abba.propose node proposals.(p))
    nodes;
  let done_ () = Pset.for_all (fun p -> decisions.(p) <> None) honest in
  let stall =
    try
      Sim.run ~max_steps:cfg.max_steps ~until:done_ sim;
      []
    with Sim.Out_of_steps { at_clock; pending; timers; detail } ->
      flight_stall flight ~at_clock ~detail;
      [ Oracle.out_of_steps ~detail ~at_clock ~pending ~timers () ]
  in
  let violations = Oracle.check_abba ~honest ~proposals decisions @ stall in
  let decided = done_ () in
  let decide_clock = if decided then !last_decide else None in
  let steps = Sim.steps sim and buffer_peak = peak () in
  flight_end flight cfg ~protocol:"abba" ~policy ~mix ~seed ~violations
    ~decided ~decide_clock ~steps ~buffer_peak;
  finish cfg ~protocol:"abba" ~policy ~mix ~seed ~corrupted ~sim ~violations
    ~decide_clock ~decided
    ~link_retransmits:(Obs_registry.value retx - retx0)
    ~steps ~buffer_peak

let run_abc ?flight cfg ~obs ~keyring ~policy ~mix ~seed =
  let n = cfg.n in
  let corrupted = corrupted_set keyring seed in
  let honest = Pset.diff (Pset.full n) corrupted in
  let sim = Sim.create ~n ~seed ~obs () in
  Sim.set_chaos sim (Some policy.p_chaos);
  flight_begin flight sim;
  let on_link, peak = peak_probe () in
  let tag = Printf.sprintf "flt-abc-%d" seed in
  let logs_rev = Array.make n [] in
  let last_decide = ref None in
  let expected = cfg.payloads in
  let wrap =
    Byzantine.wrap_of ~sim ~keyring ~seed:(seed lxor 0x5eed) ~set:corrupted
      (abc_behavior ~tag mix.m_kind)
  in
  let retx = link_retransmit_counter obs in
  let retx0 = Obs_registry.value retx in
  let nodes =
    Stack.deploy_abc ~wrap ~policy:cfg.abc_policy ?link:cfg.link ~on_link ~sim
      ~keyring ~tag
      ~deliver:(fun p payload ->
        logs_rev.(p) <- payload :: logs_rev.(p);
        if Pset.mem p honest && List.length logs_rev.(p) >= expected then
          last_decide := Some (Sim.clock sim))
      ()
  in
  (* Submit the payloads round-robin from the honest parties, so total
     order must reconcile genuinely concurrent senders. *)
  let submitters = Pset.to_list honest in
  List.iteri
    (fun k payload ->
      let s = List.nth submitters (k mod List.length submitters) in
      Abc.broadcast nodes.(s) payload)
    (List.init expected (fun k -> Printf.sprintf "tx-%d-%d" seed k));
  let done_ () =
    Pset.for_all (fun p -> List.length logs_rev.(p) >= expected) honest
  in
  let stall =
    try
      Sim.run ~max_steps:cfg.max_steps ~until:done_ sim;
      []
    with Sim.Out_of_steps { at_clock; pending; timers; detail } ->
      flight_stall flight ~at_clock ~detail;
      [ Oracle.out_of_steps ~detail ~at_clock ~pending ~timers () ]
  in
  let logs = Array.map List.rev logs_rev in
  let violations = Oracle.check_abc ~honest ~expected logs @ stall in
  let decided = done_ () in
  let decide_clock = if decided then !last_decide else None in
  let steps = Sim.steps sim and buffer_peak = peak () in
  flight_end flight cfg ~protocol:"abc" ~policy ~mix ~seed ~violations
    ~decided ~decide_clock ~steps ~buffer_peak;
  finish cfg ~protocol:"abc" ~policy ~mix ~seed ~corrupted ~sim ~violations
    ~decide_clock ~decided
    ~link_retransmits:(Obs_registry.value retx - retx0)
    ~steps ~buffer_peak

(* ---------- the sweep ------------------------------------------------- *)

type report = {
  config : config;
  results : run_result list;  (* in execution order *)
  obs : Obs.t;  (* accumulated sim metrics + decide-time histograms *)
}

let safety_count rep =
  List.fold_left
    (fun acc r -> acc + Oracle.count_safety r.r_violations)
    0 rep.results

let liveness_count rep =
  List.fold_left
    (fun acc r -> acc + Oracle.count_liveness r.r_violations)
    0 rep.results

(* Liveness violations under reliable chaos specs — the only ones that
   falsify the paper's claims, hence the only ones that gate. *)
let gating_liveness_count rep =
  List.fold_left
    (fun acc r ->
      if r.r_reliable then acc + Oracle.count_liveness r.r_violations else acc)
    0 rep.results

let ok rep = safety_count rep = 0 && gating_liveness_count rep = 0

(* Dealing the toy keyring dominates campaign start-up; [prepare] does
   it once so repeated sweeps over the same (n, t, bits) — the
   adversarial schedule search evaluates hundreds of candidate chaos
   specs — share the environment. *)
type env = { e_keyring : Keyring.t; e_obs : Obs.t }

let prepare cfg =
  let structure = Adversary_structure.threshold ~n:cfg.n ~t:cfg.t in
  let keyring =
    Keyring.deal ~group_bits:cfg.group_bits ~rsa_bits:cfg.rsa_bits
      ~seed:(cfg.seed_base + 7770) structure
  in
  { e_keyring = keyring; e_obs = Obs.create () }

let env_obs env = env.e_obs

let run_one ?flight env cfg ~protocol ~policy ~mix ~seed =
  let obs = env.e_obs and keyring = env.e_keyring in
  match protocol with
  | P_abba -> run_abba ?flight cfg ~obs ~keyring ~policy ~mix ~seed
  | P_abc -> run_abc ?flight cfg ~obs ~keyring ~policy ~mix ~seed

let run_prepared ?(progress = fun _ -> ()) ?flight env cfg =
  let obs = env.e_obs in
  let results = ref [] in
  let total =
    List.length cfg.protocols * List.length cfg.policies
    * List.length cfg.mixes * cfg.seeds
  in
  let done_runs = ref 0 in
  List.iter
    (fun protocol ->
      List.iter
        (fun policy ->
          List.iter
            (fun mix ->
              for i = 0 to cfg.seeds - 1 do
                let seed = cfg.seed_base + i in
                let r = run_one ?flight env cfg ~protocol ~policy ~mix ~seed in
                (match r.r_decide_clock with
                | Some c ->
                  Obs.observe obs
                    ~labels:
                      [ ("layer", "faults"); ("protocol", r.r_protocol) ]
                    "decide_time" c
                | None -> ());
                results := r :: !results;
                incr done_runs;
                progress (!done_runs, total)
              done)
            cfg.mixes)
        cfg.policies)
    cfg.protocols;
  { config = cfg; results = List.rev !results; obs }

let run ?progress ?flight cfg = run_prepared ?progress ?flight (prepare cfg) cfg

(* ---------- report output --------------------------------------------- *)

(* /2 added the "link" section (policy + per-run retransmit rows) and
   the per-run gating/decided flags the validator checks. *)
let schema = "sintra-faults/2"

let out_path id = Printf.sprintf "FAULTS_%s.json" id

let violation_json r (v : Oracle.violation) =
  Obs_json.Obj
    [
      ("protocol", Obs_json.Str r.r_protocol);
      ("policy", Obs_json.Str r.r_policy);
      ("mix", Obs_json.Str r.r_mix);
      ("seed", Obs_json.Int r.r_seed);
      ("oracle", Obs_json.Str v.Oracle.oracle);
      ("severity", Obs_json.Str (Oracle.severity_label v.Oracle.severity));
      ( "party",
        match v.Oracle.party with
        | None -> Obs_json.Null
        | Some p -> Obs_json.Int p );
      ("detail", Obs_json.Str v.Oracle.detail);
    ]

let link_policy_json (p : Link.policy) =
  Obs_json.Obj
    [
      ("rto", Obs_json.Float p.Link.rto);
      ("backoff", Obs_json.Float p.Link.backoff);
      ("max_rto", Obs_json.Float p.Link.max_rto);
      ("jitter", Obs_json.Float p.Link.jitter);
      ("window", Obs_json.Int p.Link.window);
      ("ack_delay", Obs_json.Float p.Link.ack_delay);
      ("seed", Obs_json.Int p.Link.seed);
    ]

(* One row per run: enough to audit the gating flip (which runs became
   liveness-gating, whether they decided) and to attribute the link
   layer's repair work (retransmissions) to individual runs. *)
let link_run_json r =
  Obs_json.Obj
    [
      ("protocol", Obs_json.Str r.r_protocol);
      ("policy", Obs_json.Str r.r_policy);
      ("mix", Obs_json.Str r.r_mix);
      ("seed", Obs_json.Int r.r_seed);
      ("gating", Obs_json.Bool r.r_reliable);
      ("decided", Obs_json.Bool r.r_decided);
      ("retransmits", Obs_json.Int r.r_link_retransmits);
    ]

(* The configuration echo, shared between the FAULTS report and the
   flight recorder's FLIGHT summary (the compare engine shows it to the
   user when two files disagree structurally). *)
let config_json cfg =
  Obs_json.Obj
    [
      ("seeds", Obs_json.Int cfg.seeds);
      ("seed_base", Obs_json.Int cfg.seed_base);
      ("n", Obs_json.Int cfg.n);
      ("t", Obs_json.Int cfg.t);
      ("payloads", Obs_json.Int cfg.payloads);
      ( "abc_policy",
        Obs_json.Obj
          [
            ("max_batch_msgs", Obs_json.Int cfg.abc_policy.Abc.max_batch_msgs);
            ("max_batch_bytes", Obs_json.Int cfg.abc_policy.Abc.max_batch_bytes);
            ("window", Obs_json.Int cfg.abc_policy.Abc.window);
            ("linger", Obs_json.Float cfg.abc_policy.Abc.linger);
          ] );
      ("max_steps", Obs_json.Int cfg.max_steps);
      ("link_enabled", Obs_json.Bool (cfg.link <> None));
      ( "protocols",
        Obs_json.Arr
          (List.map (fun p -> Obs_json.Str (protocol_label p)) cfg.protocols)
      );
      ( "policies",
        Obs_json.Arr
          (List.map
             (fun p ->
               Obs_json.Obj
                 [
                   ("name", Obs_json.Str p.p_name);
                   ("reliable", Obs_json.Bool p.p_reliable);
                 ])
             cfg.policies) );
      ("mixes", Obs_json.Arr (List.map (fun m -> Obs_json.Str m.m_name) cfg.mixes));
    ]

let to_json ~id ~wall rep =
  let cfg = rep.config in
  let chaos_total f = List.fold_left (fun a r -> a + f r) 0 rep.results in
  let details =
    List.concat_map
      (fun r -> List.map (violation_json r) r.r_violations)
      rep.results
  in
  let details_capped =
    if List.length details > 50 then List.filteri (fun i _ -> i < 50) details
    else details
  in
  Obs_json.Obj
    [
      ("experiment", Obs_json.Str id);
      ("schema", Obs_json.Str schema);
      ("wall_time_s", Obs_json.Float wall);
      ("config", config_json cfg);
      ("runs", Obs_json.Int (List.length rep.results));
      ( "violations",
        Obs_json.Obj
          [
            ("safety", Obs_json.Int (safety_count rep));
            ("liveness", Obs_json.Int (liveness_count rep));
            ("liveness_gating", Obs_json.Int (gating_liveness_count rep));
          ] );
      ( "chaos",
        Obs_json.Obj
          [
            ("drops", Obs_json.Int (chaos_total (fun r -> r.r_chaos_drops)));
            ("dups", Obs_json.Int (chaos_total (fun r -> r.r_chaos_dups)));
            ( "reorders",
              Obs_json.Int (chaos_total (fun r -> r.r_chaos_reorders)) );
          ] );
      ( "link",
        Obs_json.Obj
          [
            ("enabled", Obs_json.Bool (cfg.link <> None));
            ( "policy",
              match cfg.link with
              | None -> Obs_json.Null
              | Some p -> link_policy_json p );
            ( "retransmits_total",
              Obs_json.Int (chaos_total (fun r -> r.r_link_retransmits)) );
            ("per_run", Obs_json.Arr (List.map link_run_json rep.results));
          ] );
      ("metrics", Obs_registry.snapshot_to_json (Obs.snapshot rep.obs));
      ("violation_details", Obs_json.Arr details_capped);
    ]

let write ~id ~wall rep =
  let path = out_path id in
  let oc = open_out path in
  output_string oc (Obs_json.to_canonical_string (to_json ~id ~wall rep));
  output_char oc '\n';
  close_out oc;
  path

(* Shape validator for sintra-faults/1 documents, shared with the CLI's
   bench-check so campaign artifacts are checked like bench artifacts. *)
let validate_json (doc : Obs_json.t) : (unit, string) result =
  let ( let* ) = Result.bind in
  let need kind name conv =
    match Option.bind (Obs_json.member name doc) conv with
    | Some v -> Ok v
    | None -> Error (Printf.sprintf "missing or non-%s member %S" kind name)
  in
  let* s = need "string" "schema" Obs_json.to_str in
  let* () = if s = schema then Ok () else Error ("unexpected schema " ^ s) in
  let* _ = need "string" "experiment" Obs_json.to_str in
  let* _ = need "float" "wall_time_s" Obs_json.to_float in
  let* runs = need "int" "runs" Obs_json.to_int in
  let* () = if runs >= 0 then Ok () else Error "negative \"runs\"" in
  let obj_int parent name =
    match
      Option.bind (Obs_json.member parent doc) (fun o ->
          Option.bind (Obs_json.member name o) Obs_json.to_int)
    with
    | Some v -> Ok v
    | None ->
      Error (Printf.sprintf "missing or non-int member %S.%S" parent name)
  in
  let* _ = obj_int "config" "seeds" in
  let* _ = obj_int "config" "n" in
  let* _ = obj_int "config" "t" in
  let* safety = obj_int "violations" "safety" in
  let* liveness = obj_int "violations" "liveness" in
  let* () =
    if safety >= 0 && liveness >= 0 then Ok ()
    else Error "negative violation count"
  in
  let* _ = obj_int "chaos" "drops" in
  let* _ = obj_int "chaos" "dups" in
  let* _ = obj_int "chaos" "reorders" in
  let* _ =
    match
      Option.bind (Obs_json.member "metrics" doc) (Obs_json.member "counters")
    with
    | Some _ -> Ok ()
    | None -> Error "missing \"metrics\".\"counters\""
  in
  (* The link section, including the gating invariant: a run whose
     channels are (effectively) reliable — natively, or because the link
     layer restores delivery — must have decided.  An undecided gating
     row is a liveness violation dressed up as a report, so the document
     is rejected whole. *)
  let* link =
    match Obs_json.member "link" doc with
    | Some l -> Ok l
    | None -> Error "missing \"link\" section"
  in
  let* enabled =
    match Option.bind (Obs_json.member "enabled" link) Obs_json.to_bool with
    | Some b -> Ok b
    | None -> Error "missing or non-bool \"link\".\"enabled\""
  in
  let* () =
    match (enabled, Obs_json.member "policy" link) with
    | _, None -> Error "missing \"link\".\"policy\""
    | true, Some p ->
      if Obs_json.member "window" p <> None then Ok ()
      else Error "link enabled but \"link\".\"policy\" has no \"window\""
    | false, Some _ -> Ok ()
  in
  let* retx =
    match
      Option.bind (Obs_json.member "retransmits_total" link) Obs_json.to_int
    with
    | Some v -> Ok v
    | None -> Error "missing or non-int \"link\".\"retransmits_total\""
  in
  let* () =
    if retx >= 0 then Ok () else Error "negative \"link\".\"retransmits_total\""
  in
  let* rows =
    match Option.bind (Obs_json.member "per_run" link) Obs_json.to_list with
    | Some rows -> Ok rows
    | None -> Error "missing or non-array \"link\".\"per_run\""
  in
  let* () =
    if List.length rows = runs then Ok ()
    else
      Error
        (Printf.sprintf "\"link\".\"per_run\" has %d rows for %d runs"
           (List.length rows) runs)
  in
  let check_row i row =
    let field name conv =
      match Option.bind (Obs_json.member name row) conv with
      | Some v -> Ok v
      | None ->
        Error
          (Printf.sprintf "link per_run row %d: missing or ill-typed %S" i name)
    in
    let* gating = field "gating" Obs_json.to_bool in
    let* decided = field "decided" Obs_json.to_bool in
    let* row_retx = field "retransmits" Obs_json.to_int in
    let* seed = field "seed" Obs_json.to_int in
    let* () =
      if row_retx >= 0 then Ok ()
      else Error (Printf.sprintf "link per_run row %d: negative retransmits" i)
    in
    if gating && not decided then
      Error
        (Printf.sprintf
           "link per_run row %d (seed %d): gating run left undecided parties"
           i seed)
    else Ok ()
  in
  let rec check_rows i = function
    | [] -> Ok ()
    | row :: rest ->
      let* () = check_row i row in
      check_rows (i + 1) rest
  in
  let* () = check_rows 0 rows in
  Ok ()

(* ---------- summary --------------------------------------------------- *)

let pp_summary fmt rep =
  (* One line per (protocol, policy, mix) cell of the sweep. *)
  let cells = Hashtbl.create 16 in
  let order = ref [] in
  List.iter
    (fun r ->
      let key = (r.r_protocol, r.r_policy, r.r_mix) in
      let cell =
        match Hashtbl.find_opt cells key with
        | Some c -> c
        | None ->
          let c = ref [] in
          Hashtbl.add cells key c;
          order := key :: !order;
          c
      in
      cell := r :: !cell)
    rep.results;
  List.iter
    (fun ((proto, pol, mix) as key) ->
      let rs = !(Hashtbl.find cells key) in
      let total = List.length rs in
      let decided = List.filter (fun r -> r.r_decide_clock <> None) rs in
      let safety =
        List.fold_left
          (fun a r -> a + Oracle.count_safety r.r_violations)
          0 rs
      and liveness =
        List.fold_left
          (fun a r -> a + Oracle.count_liveness r.r_violations)
          0 rs
      in
      let mean_clock =
        match decided with
        | [] -> nan
        | _ ->
          List.fold_left
            (fun a r -> a +. Option.value r.r_decide_clock ~default:0.0)
            0.0 decided
          /. float_of_int (List.length decided)
      in
      Format.fprintf fmt
        "%-5s %-11s %-10s %3d/%-3d decided  mean clock %7.0f  safety %d  liveness %d%s@."
        proto pol mix (List.length decided) total mean_clock safety liveness
        (if safety > 0 then "  << SAFETY VIOLATION" else ""))
    (List.rev !order);
  Format.fprintf fmt
    "total: %d runs, %d safety violations, %d liveness (%d gating)@."
    (List.length rep.results) (safety_count rep) (liveness_count rep)
    (gating_liveness_count rep);
  match rep.config.link with
  | None -> ()
  | Some p ->
    Format.fprintf fmt
      "link: on (rto %g, backoff %g, window %d), %d retransmissions@." p.Link.rto
      p.Link.backoff p.Link.window
      (List.fold_left (fun a r -> a + r.r_link_retransmits) 0 rep.results)
