(** Seed-sweep fault campaigns: seeds × chaos policies × corruption
    mixes per protocol, oracle-checked, with a machine-readable
    ["sintra-faults/1"] report.

    Every run is fully determined by (protocol, policy, mix, seed), so
    any violation found by a sweep is replayable in isolation.  The
    corrupted set rotates through the maximal sets of the adversary
    structure across seeds. *)

type policy_spec = {
  p_name : string;
  p_chaos : Sim.chaos;
  p_reliable : bool;
      (** channels still deliver eventually (duplication, reordering,
          healing partitions): liveness oracles remain meaningful.
          Lossy specs record liveness violations without gating. *)
  p_link_restores : bool;
      (** the reliable link layer repairs this spec's losses
          (probabilistic drops without a permanent partition): with
          [config.link] set, runs under it become liveness-gating *)
}

type mix_kind =
  | Silent  (** receive everything, send nothing *)
  | Crash_at of float  (** honest until the given virtual time *)
  | Byz  (** the protocol-specific {!Byzantine} attack composition *)

type mix = { m_name : string; m_kind : mix_kind }

type protocol = P_abba | P_abc

val protocol_label : protocol -> string
val protocol_of_string : string -> protocol option

type config = {
  seeds : int;  (** seeds [seed_base .. seed_base + seeds - 1] *)
  seed_base : int;
  n : int;
  t : int;
  rsa_bits : int;
  group_bits : int;
  protocols : protocol list;
  policies : policy_spec list;
  mixes : mix list;
  payloads : int;  (** atomic-broadcast payloads per run *)
  abc_policy : Abc.policy;
      (** batching / pipelining policy applied to every ABC run (the
          same policy at every party, as batching requires) *)
  link : Link.policy option;
      (** reliable link layer under every deployment ([None] = off, the
          seed behaviour); flips [p_link_restores] policies to
          liveness-gating *)
  max_steps : int;  (** per-run simulator step bound *)
}

(** {2 Built-in policies and mixes} *)

val drop_policy : ?rate:float -> unit -> policy_spec
(** Lossy links: every delivery attempt dropped with probability [rate]
    (default 0.02).  Not reliable on its own; the link layer restores
    it ([p_link_restores = true]). *)

val dup_reorder_policy : ?rate:float -> unit -> policy_spec
(** Duplication and extra reordering at probability [rate] (default
    0.1) each.  Reliable. *)

val partition_policy : n:int -> unit -> policy_spec
(** Halves the servers for virtual time [\[50, 400)], then heals.
    Reliable. *)

val default_policies : n:int -> policy_spec list
val default_mixes : mix list

val policy_of_name : n:int -> string -> policy_spec option
val mix_of_name : string -> mix option

val default_config :
  ?seeds:int ->
  ?seed_base:int ->
  ?n:int ->
  ?t:int ->
  ?rsa_bits:int ->
  ?group_bits:int ->
  ?protocols:protocol list ->
  ?policies:policy_spec list ->
  ?mixes:mix list ->
  ?payloads:int ->
  ?abc_policy:Abc.policy ->
  ?link:Link.policy ->
  ?max_steps:int ->
  unit ->
  config
(** Defaults: 50 seeds from 1, n = 4 / t = 1, toy 192-bit RSA and
    128-bit group, both protocols, all built-in policies and mixes,
    2 payloads, [Abc.default_policy] (unbatched, window 1), link off,
    200k steps. *)

(** {2 Runs and reports} *)

type run_result = {
  r_protocol : string;
  r_policy : string;
  r_mix : string;
  r_seed : int;
  r_corrupted : Pset.t;
  r_reliable : bool;
      (** effective reliability: the spec delivers eventually, or the
          link layer restores delivery — exactly the runs whose
          liveness violations gate *)
  r_violations : Oracle.violation list;
  r_decide_clock : float option;
      (** virtual time of the last honest decision; [None] when some
          honest party never finished *)
  r_decided : bool;  (** every honest party finished within [max_steps] *)
  r_chaos_drops : int;
  r_chaos_dups : int;
  r_chaos_reorders : int;
  r_link_retransmits : int;
      (** link-layer retransmissions attributed to this run (registry
          counter delta; 0 with the link off) *)
  r_steps : int;  (** simulator steps this run consumed *)
  r_buffer_peak : int;
      (** max link send-buffer depth across this run's endpoints (0 with
          the link off) — the back-pressure signal {!Schedule_search}
          maximises *)
}

type report = {
  config : config;
  results : run_result list;  (** in execution order *)
  obs : Obs.t;
      (** accumulated sim metrics plus per-protocol ["decide_time"]
          histograms under layer ["faults"] *)
}

type env
(** Prepared campaign environment: the dealt keyring (start-up
    dominant) plus the shared observability instance every run's
    simulator reports into. *)

val prepare : config -> env
(** Deal the keyring for [(n, t, rsa_bits, group_bits)] once; repeated
    sweeps over the same parameters — the adversarial schedule search
    evaluates hundreds of candidate chaos specs — share the result. *)

val env_obs : env -> Obs.t
(** The environment's observability instance — what a {!Flight.recorder}
    should be created over so it taps the campaign's registry. *)

val run_one :
  ?flight:Flight.recorder ->
  env ->
  config ->
  protocol:protocol ->
  policy:policy_spec ->
  mix:mix ->
  seed:int ->
  run_result
(** One fully-determined run.  With [?flight], the run is bracketed by
    {!Flight.run_begin} / {!Flight.run_end}: stalls and safety trips are
    noted as anomalies with bounded hot windows, and per-run deltas
    (steps, retransmits, buffer peak) feed the durable tier. *)

val run_prepared :
  ?progress:(int * int -> unit) ->
  ?flight:Flight.recorder ->
  env ->
  config ->
  report

val run :
  ?progress:(int * int -> unit) -> ?flight:Flight.recorder -> config -> report
(** Execute the sweep; [progress (done, total)] after every run.
    [?flight] must have been created over this campaign's obs — use
    {!prepare} + {!env_obs} + {!run_prepared} in that case. *)

val safety_count : report -> int
val liveness_count : report -> int

val gating_liveness_count : report -> int
(** Liveness violations under effectively reliable policies (natively
    reliable, or lossy-but-link-restored) — the only liveness
    violations that falsify the paper's claims. *)

val ok : report -> bool
(** No safety violations and no gating liveness violations. *)

(** {2 Artifacts} *)

val schema : string
(** ["sintra-faults/2"] — /2 added the ["link"] section (policy and
    per-run retransmit/gating/decided rows). *)

val out_path : string -> string
(** [out_path id] is ["FAULTS_<id>.json"]. *)

val config_json : config -> Obs_json.t
(** The configuration echo embedded in FAULTS reports, also handed to
    {!Flight.summarize} so FLIGHT files record what produced them. *)

val to_json : id:string -> wall:float -> report -> Obs_json.t

val write : id:string -> wall:float -> report -> string
(** Write the report next to the working directory; returns the path. *)

val validate_json : Obs_json.t -> (unit, string) result
(** Shape check for ["sintra-faults/2"] documents (shared with the
    CLI's [bench-check]), including the link section and the gating
    invariant: a per-run row marked [gating] (reliable, natively or by
    link repair) with [decided = false] rejects the whole document —
    an undecided gating run is a liveness violation. *)

val pp_summary : Format.formatter -> report -> unit
(** One line per (protocol, policy, mix) cell, plus totals. *)
