(* Post-run invariant checkers over per-party outcomes.

   Each oracle inspects arrays indexed by party (slot [i] = party [i]'s
   outcome) restricted to an honest set, and returns the violations it
   found.  Violations are classified: a [Safety] violation falsifies a
   property that must hold under every schedule and every corruption in
   the structure; a [Liveness] violation only falsifies the paper's
   claims when the channels were reliable — probabilistic chaos drops
   step outside that model, so campaigns report the two classes
   separately and only safety gates a lossy run. *)

type severity = Safety | Liveness

type violation = {
  oracle : string;
  severity : severity;
  party : int option;
  detail : string;
}

let severity_label = function Safety -> "safety" | Liveness -> "liveness"

let pp_violation fmt v =
  Format.fprintf fmt "[%s/%s]%s %s" v.oracle (severity_label v.severity)
    (match v.party with None -> "" | Some p -> Printf.sprintf " party %d:" p)
    v.detail

let violation_to_string v = Format.asprintf "%a" pp_violation v

let make ~oracle ~severity ?party detail = { oracle; severity; party; detail }

(* Fold over the honest slots of an outcome array. *)
let honest_slots honest arr =
  let out = ref [] in
  Array.iteri
    (fun p x -> if Pset.mem p honest then out := (p, x) :: !out)
    arr;
  List.rev !out

(* ---------- safety ---------------------------------------------------- *)

let agreement ?(name = "agreement") ~honest ~show outcomes =
  let decided =
    List.filter_map
      (fun (p, o) -> Option.map (fun v -> (p, v)) o)
      (honest_slots honest outcomes)
  in
  match decided with
  | [] | [ _ ] -> []
  | (p0, v0) :: rest ->
    List.filter_map
      (fun (p, v) ->
        if v = v0 then None
        else
          Some
            (make ~oracle:name ~severity:Safety ~party:p
               (Printf.sprintf "decided %s but party %d decided %s" (show v)
                  p0 (show v0))))
      rest

let abba_validity ~honest ~proposals decisions =
  (* If every honest party proposed the same bit, no honest party may
     decide the other bit (a value nobody honest proposed can never win). *)
  let honest_props =
    List.map snd (honest_slots honest proposals) |> List.sort_uniq compare
  in
  match honest_props with
  | [ b ] ->
    List.filter_map
      (fun (p, d) ->
        match d with
        | Some d when d <> b ->
          Some
            (make ~oracle:"abba-validity" ~severity:Safety ~party:p
               (Printf.sprintf
                  "decided %b though every honest party proposed %b" d b))
        | _ -> None)
      (honest_slots honest decisions)
  | _ -> []

let is_prefix xs ys =
  let rec go = function
    | [], _ -> true
    | _, [] -> false
    | x :: xs, y :: ys -> x = y && go (xs, ys)
  in
  go (xs, ys)

let total_order ?(show = fun s -> s) ~honest logs =
  (* No honest log may contain duplicates, and any two honest logs must
     be prefix-comparable — the pairwise form of total order. *)
  let slots = honest_slots honest logs in
  let dups =
    List.filter_map
      (fun (p, log) ->
        let seen = Hashtbl.create 16 in
        let dup =
          List.find_opt
            (fun x ->
              if Hashtbl.mem seen x then true
              else (Hashtbl.add seen x (); false))
            log
        in
        Option.map
          (fun x ->
            make ~oracle:"total-order" ~severity:Safety ~party:p
              (Printf.sprintf "delivered %s twice" (show x)))
          dup)
      slots
  in
  let rec pairs = function
    | [] -> []
    | (p, log) :: rest ->
      List.filter_map
        (fun (q, log') ->
          if is_prefix log log' || is_prefix log' log then None
          else
            Some
              (make ~oracle:"total-order" ~severity:Safety ~party:q
                 (Printf.sprintf
                    "delivery order diverges from party %d (lengths %d / %d)"
                    p (List.length log') (List.length log))))
        rest
      @ pairs rest
  in
  dups @ pairs slots

(* ---------- liveness -------------------------------------------------- *)

let all_decided ?(name = "termination") ~honest outcomes =
  List.filter_map
    (fun (p, o) ->
      match o with
      | Some _ -> None
      | None ->
        Some
          (make ~oracle:name ~severity:Liveness ~party:p
             "did not decide before quiescence"))
    (honest_slots honest outcomes)

let totality ?(name = "totality") ~honest ~expected counts =
  List.filter_map
    (fun (p, c) ->
      if c >= expected then None
      else
        Some
          (make ~oracle:name ~severity:Liveness ~party:p
             (Printf.sprintf "delivered %d of %d expected payloads" c
                expected)))
    (honest_slots honest counts)

let out_of_steps ?(detail = "") ~at_clock ~pending ~timers () =
  make ~oracle:"progress" ~severity:Liveness
    (Printf.sprintf
       "ran out of steps at clock %.0f with %d pending messages, %d timers%s"
       at_clock pending timers
       (if detail = "" then "" else "; " ^ detail))

(* ---------- protocol bundles ------------------------------------------ *)

let check_abba ~honest ~proposals decisions =
  agreement ~name:"abba-agreement" ~honest ~show:string_of_bool decisions
  @ abba_validity ~honest ~proposals decisions
  @ all_decided ~name:"abba-termination" ~honest decisions

let check_abc ~honest ~expected logs =
  total_order ~honest logs
  @ totality ~honest ~expected (Array.map List.length logs)

(* Recovery runs compare *digest histories* ([Abc.delivered_digests]):
   these survive checkpoint truncation, so the check spans the whole
   order — certified prefix included — across a crash-rejoin or
   partition-heal.  Pairwise prefix agreement (with the recovered
   party's transferred state in the comparison) is safety; reaching the
   expected total is the liveness evidence that catch-up completed. *)
let check_recovery ~honest ~expected histories =
  total_order
    ~show:(fun d -> "#" ^ String.sub (Sha256.hex d) 0 12)
    ~honest histories
  @ totality ~name:"catch-up-totality" ~honest ~expected
      (Array.map List.length histories)

let count_safety vs =
  List.length (List.filter (fun v -> v.severity = Safety) vs)

let count_liveness vs =
  List.length (List.filter (fun v -> v.severity = Liveness) vs)
