(** Post-run safety/liveness invariant checkers.

    Oracles inspect per-party outcome arrays (slot [i] = party [i]),
    restricted to an [honest] set, after a simulated run has gone
    quiescent.  [Safety] violations falsify properties that must hold
    under {e every} schedule and corruption in the structure; [Liveness]
    violations only falsify the paper's claims when channels were
    reliable, so campaigns under lossy chaos specs report them
    separately and gate only on safety. *)

type severity = Safety | Liveness

type violation = {
  oracle : string;  (** e.g. ["abba-agreement"], ["total-order"] *)
  severity : severity;
  party : int option;  (** offending honest party, when attributable *)
  detail : string;
}

val severity_label : severity -> string
(** ["safety"] / ["liveness"]. *)

val pp_violation : Format.formatter -> violation -> unit
val violation_to_string : violation -> string

(** {2 Safety oracles} *)

val agreement :
  ?name:string ->
  honest:Pset.t ->
  show:('a -> string) ->
  'a option array ->
  violation list
(** All honest parties that decided must have decided the same value. *)

val abba_validity :
  honest:Pset.t -> proposals:bool array -> bool option array -> violation list
(** If every honest party proposed the same bit, no honest decision may
    be the other bit. *)

val total_order :
  ?show:(string -> string) -> honest:Pset.t -> string list array -> violation list
(** No honest delivery log contains duplicates, and any two honest logs
    are prefix-comparable. *)

(** {2 Liveness oracles} *)

val all_decided :
  ?name:string -> honest:Pset.t -> 'a option array -> violation list
(** Every honest party decided before quiescence. *)

val totality :
  ?name:string -> honest:Pset.t -> expected:int -> int array -> violation list
(** Every honest party delivered at least [expected] payloads. *)

val out_of_steps :
  ?detail:string -> at_clock:float -> pending:int -> timers:int -> unit ->
  violation
(** The liveness violation recording a [Sim.Out_of_steps] stall;
    [detail] carries the stall probe's protocol-level diagnostics
    (per-round in-flight counts under pipelining). *)

(** {2 Protocol bundles} *)

val check_abba :
  honest:Pset.t -> proposals:bool array -> bool option array -> violation list
(** Agreement + validity + termination over ABBA decisions. *)

val check_abc :
  honest:Pset.t -> expected:int -> string list array -> violation list
(** Total order + totality over ABC delivery logs. *)

val check_recovery :
  honest:Pset.t -> expected:int -> string list array -> violation list
(** Total order + totality over {e digest histories}
    ([Abc.delivered_digests]), which survive checkpoint truncation —
    the whole-order agreement check for crash-rejoin and partition-heal
    runs, recovered party included. *)

val count_safety : violation list -> int
val count_liveness : violation list -> int
