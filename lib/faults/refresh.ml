(* Epoch-reconfiguration campaigns over the {!Epoch} subsystem: seeded
   scenario runs with proactive-security oracles and a machine-readable
   EPOCH report.

   Each run streams client payloads through an epoch-wrapped deployment
   while the sweep's scenario reconfigures the service sharing online —
   a proactive refresh, a membership change that adds a replica, or a
   kill-and-replace (crash the victim, reshare it out, revive it,
   reshare it back in) — under a benign network, 30% loss restored by
   the ARQ link, or an equivocating Byzantine refresher.

   Every delivered payload is countersigned with the signer's *current*
   epoch sharing ({!Cert_sig}), so the reply-certificate oracle checks
   end to end that the service kept answering across every boundary:
   for each payload some epoch's share group recombines into a
   certificate valid under the never-changing public key.  The
   proactive oracles check that the public key survived every advance
   and that pre-epoch shares die at the boundary: a qualified-size mix
   of old and new shares reconstructs garbage. *)

module AS = Adversary_structure
module G = Schnorr_group

type scenario = Refresh_only | Add_replica | Kill_replace

let scenario_label = function
  | Refresh_only -> "refresh-only"
  | Add_replica -> "add-replica"
  | Kill_replace -> "kill-and-replace"

let scenario_of_string = function
  | "refresh-only" -> Some Refresh_only
  | "add-replica" -> Some Add_replica
  | "kill-and-replace" -> Some Kill_replace
  | _ -> None

type variant = Benign | Lossy | Byz_refresher

let variant_label = function
  | Benign -> "benign"
  | Lossy -> "lossy"
  | Byz_refresher -> "byz-refresher"

let variant_of_string = function
  | "benign" -> Some Benign
  | "lossy" -> Some Lossy
  | "byz-refresher" -> Some Byz_refresher
  | _ -> None

type config = {
  e_seeds : int;
  e_seed_base : int;
  e_n : int;
  e_t : int;
  e_rsa_bits : int;
  e_group_bits : int;
  e_payloads : int;
  e_submit_gap : float;
  e_interval : int;  (* checkpoint period of the wrapped recovery *)
  e_drop : float;  (* chaos drop rate for the lossy variant *)
  e_abc_policy : Abc.policy;
  e_link : Link.policy;
  (* Progress-driven triggers, as in the recovery campaigns: virtual
     round duration varies wildly with the drop rate, so the
     reconfiguration is fired when the stream crosses these fractions
     of the payload count, polled by a monitor party. *)
  e_down_frac : float;
  e_up_frac : float;
  e_poll : float;
  e_epoch_retry : float;
  e_scenarios : scenario list;
  e_variants : variant list;
  e_max_steps : int;
}

let default_config ?(seeds = 50) ?(seed_base = 1) ?(n = 4) ?(t = 1)
    ?(rsa_bits = 192) ?(group_bits = 128) ?(payloads = 24)
    ?(submit_gap = 6.0) ?(interval = 4) ?(drop = 0.3) ?abc_policy ?link
    ?(down_frac = 0.35) ?(up_frac = 0.7) ?(poll = 200.0)
    ?(epoch_retry = 400.0) ?scenarios ?variants ?(max_steps = 800_000) () =
  {
    e_seeds = seeds;
    e_seed_base = seed_base;
    e_n = n;
    e_t = t;
    e_rsa_bits = rsa_bits;
    e_group_bits = group_bits;
    e_payloads = payloads;
    e_submit_gap = submit_gap;
    e_interval = interval;
    e_drop = drop;
    e_abc_policy =
      Option.value abc_policy
        ~default:
          { Abc.default_policy with Abc.max_batch_msgs = 4; window = 2 };
    e_link = Option.value link ~default:Link.default_policy;
    e_down_frac = down_frac;
    e_up_frac = up_frac;
    e_poll = poll;
    e_epoch_retry = epoch_retry;
    e_scenarios =
      Option.value scenarios
        ~default:[ Refresh_only; Add_replica; Kill_replace ];
    e_variants =
      Option.value variants ~default:[ Benign; Lossy; Byz_refresher ];
    e_max_steps = max_steps;
  }

type run_result = {
  er_scenario : scenario;
  er_seed : int;
  er_variant : variant;
  er_victim : int;
  er_epochs : int;  (* epochs every live replica reached *)
  er_completed : bool;  (* stream + reconfiguration done, no safety *)
  er_pk_stable : bool;  (* public key identical across every epoch *)
  er_old_shares_dead : bool;  (* qualified old/new mix opens garbage *)
  er_certs_ok : int;  (* payloads with a valid reply certificate *)
  er_excluded : int;  (* dealer exclusions witnessed across replicas *)
  er_replaced_serving : bool;  (* victim signs from the final epoch *)
  er_violations : Oracle.violation list;
  er_steps : int;
}

(* Shared dealt keyring/group + obs across a sweep. *)
type env = {
  v_keyring : Keyring.t;
  v_group : G.params;
  v_obs : Obs.t;
}

let prepare cfg =
  let structure = AS.threshold ~n:cfg.e_n ~t:cfg.e_t in
  let keyring =
    Keyring.deal ~group_bits:cfg.e_group_bits ~rsa_bits:cfg.e_rsa_bits
      ~seed:(cfg.e_seed_base + 8810) structure
  in
  {
    v_keyring = keyring;
    v_group = G.default ~bits:cfg.e_group_bits ();
    v_obs = Obs.create ();
  }

let env_obs env = env.v_obs

(* A [t]-of-members access structure over the full party universe: the
   removed replicas simply own no leaves.  Used as the reshare target
   for membership changes. *)
let member_structure ~n ~t members =
  AS.of_access_formula ~n
    (Monotone_formula.threshold (t + 1)
       (List.map Monotone_formula.leaf members))

(* ---------- one scenario run ------------------------------------------ *)

let run_one env cfg ~scenario ~variant ~seed =
  let n = cfg.e_n and t = cfg.e_t in
  let keyring = env.v_keyring and obs = env.v_obs in
  let victim = abs seed mod n in
  let byz = (victim + 1) mod n in
  let others = List.filter (fun p -> p <> victim) (List.init n Fun.id) in
  (* Initial service sharing: the add-replica scenario starts with the
     victim outside the access structure and reshares it in; the others
     start on the full threshold structure. *)
  let structure0 =
    match scenario with
    | Add_replica -> member_structure ~n ~t others
    | Refresh_only | Kill_replace -> AS.threshold ~n ~t
  in
  let sharing0 =
    Dl_sharing.deal env.v_group structure0
      (Prng.create ~seed:(seed lxor 0x3a11))
  in
  let pk = sharing0.Dl_sharing.public_key in
  let sim = Sim.create ~n ~seed ~obs () in
  let chaos =
    match variant with
    | Lossy ->
      Some
        {
          Sim.benign_chaos with
          Sim.default_link = { Sim.no_fault with Sim.drop = cfg.e_drop };
        }
    | Benign | Byz_refresher -> Some Sim.benign_chaos
  in
  Sim.set_chaos sim chaos;
  let link = match variant with Lossy -> Some cfg.e_link | _ -> None in
  let tag =
    Printf.sprintf "epoch-%s-%s-%d" (scenario_label scenario)
      (variant_label variant) seed
  in
  (* Reply-certificate bookkeeping: payload -> epoch -> per-party share
     lists, written by each node's deliver hook with its then-current
     sharing.  [epoch_sharings] collects every installed sharing (they
     are identical across replicas: deterministic install of identical
     certified bodies). *)
  let sigs : (string, (int, (int * Cert_sig.share list) list) Hashtbl.t)
      Hashtbl.t =
    Hashtbl.create 64
  in
  let epoch_sharings : (int, Dl_sharing.t) Hashtbl.t = Hashtbl.create 4 in
  Hashtbl.replace epoch_sharings 0 sharing0;
  let depref = ref None in
  (* Distinct application payloads each party has delivered: the raw
     [Abc.delivered_count] also counts certified advances, and a revived
     incarnation re-delivers its replayed prefix. *)
  let seen_payloads = Array.init n (fun _ -> Hashtbl.create 64) in
  let deliver me payload =
    Hashtbl.replace seen_payloads.(me) payload ();
    match !depref with
    | None -> ()
    | Some dep ->
      let node = (Epoch.nodes dep).(me) in
      let sh = Epoch.sharing node in
      if Dl_sharing.shares_of sh me <> [] then begin
        let per_epoch =
          match Hashtbl.find_opt sigs payload with
          | Some h -> h
          | None ->
            let h = Hashtbl.create 4 in
            Hashtbl.replace sigs payload h;
            h
        in
        let e = Epoch.epoch node in
        let entries =
          match Hashtbl.find_opt per_epoch e with Some l -> l | None -> []
        in
        if not (List.mem_assoc me entries) then
          Hashtbl.replace per_epoch e
            ((me, Cert_sig.sign_share sh ~party:me payload) :: entries)
      end
  in
  let dep =
    Epoch.deploy ~policy:cfg.e_abc_policy ?link ~interval:cfg.e_interval
      ~epoch_retry:cfg.e_epoch_retry ~seed:(seed lxor 0xe90c) ~sim ~keyring
      ~sharing:sharing0 ~tag ~deliver ()
  in
  depref := Some dep;
  let nodes () = Epoch.nodes dep in
  let watch_advances p node =
    Epoch.set_on_advance node (fun ~epoch ~sharing ->
        ignore p;
        if not (Hashtbl.mem epoch_sharings epoch) then
          Hashtbl.replace epoch_sharings epoch sharing)
  in
  Array.iteri watch_advances (nodes ());
  (* Client stream: staggered submissions from non-victim replicas (a
     crashed submitter would silently shrink the expected total). *)
  let submitters = others in
  List.iteri
    (fun k payload ->
      let s = List.nth submitters (k mod List.length submitters) in
      Sim.set_timer sim s
        ~delay:(float_of_int k *. cfg.e_submit_gap)
        (fun () -> Epoch.submit (nodes ()).(s) payload))
    (List.init cfg.e_payloads (fun k -> Printf.sprintf "etx-%d-%d" seed k));
  let count p = Hashtbl.length seen_payloads.(p) in
  let epoch_of p = Epoch.epoch (nodes ()).(p) in
  let alive p = not (Sim.is_crashed sim p) in
  let progress () =
    List.fold_left (fun acc p -> max acc (count p)) 0 others
  in
  let down_th =
    max 1 (int_of_float (cfg.e_down_frac *. float_of_int cfg.e_payloads))
  in
  let up_th =
    min
      (cfg.e_payloads - 1)
      (int_of_float (cfg.e_up_frac *. float_of_int cfg.e_payloads))
  in
  (* The reconfiguration trigger: open the epoch on every live replica;
     under the Byzantine variant the [byz] replica instead equivocates —
     two different valid packages, one to each half of its peers — and
     stays silent in the advance protocol. *)
  let byz_active = variant = Byz_refresher in
  let byz_frames = ref None in
  let equivocate target =
    let node = (nodes ()).(byz) in
    let sh = Epoch.sharing node in
    if Dl_sharing.shares_of sh byz <> [] then begin
      let frames =
        match !byz_frames with
        | Some fs -> fs
        | None ->
          let mk k =
            let rng = Prng.create ~seed:(seed lxor (0xb1 + k)) in
            match target with
            | None ->
              Codec.encode_refresh_pkg sh.Dl_sharing.group
                (Proactive.make_refresh sh ~dealer:byz rng)
            | Some structure ->
              Codec.encode_reshare_pkg sh.Dl_sharing.group
                (Proactive.make_reshare sh
                   (Proactive.target_of sh structure)
                   ~dealer:byz rng)
          in
          let fs = (mk 0, mk 1) in
          byz_frames := Some fs;
          fs
      in
      let fa, fb = frames in
      let epoch = Epoch.epoch node + 1 in
      List.iteri
        (fun i p ->
          let frame = if i mod 2 = 0 then fa else fb in
          Sim.send sim ~src:byz ~dst:p
            (Link.Raw (Epoch.Refresh { epoch; frame })))
        (List.filter (fun p -> p <> byz) (List.init n Fun.id))
    end
  in
  let open_epoch target =
    byz_frames := None;
    Array.iteri
      (fun p node ->
        if alive p && not (byz_active && p = byz) then
          match target with
          | None -> Epoch.begin_refresh node
          | Some structure -> Epoch.begin_reshare node structure)
      (nodes ());
    if byz_active && alive byz then equivocate target
  in
  let target_full = AS.threshold ~n ~t in
  let target_without_victim = member_structure ~n ~t others in
  (* Scenario phase machine, driven by the monitor's poll timer. *)
  let monitor = (victim + 2) mod n in
  let final_epoch =
    match scenario with Kill_replace -> 2 | _ -> 1
  in
  let phase = ref `Wait_down in
  let pending_target = ref None in
  (* One extra payload submitted only after every replica has installed
     the final epoch: its reply certificate proves the service is still
     answering — with the victim countersigning — from the new sharing. *)
  let tail_payload = Printf.sprintf "etx-%d-tail" seed in
  let tail_submitted = ref false in
  let rec poll () =
    (match (!phase, scenario) with
    | `Wait_down, Refresh_only when progress () >= down_th ->
      pending_target := None;
      open_epoch None;
      phase := `Reconfiguring
    | `Wait_down, Add_replica when progress () >= down_th ->
      pending_target := Some target_full;
      open_epoch (Some target_full);
      phase := `Reconfiguring
    | `Wait_down, Kill_replace when progress () >= down_th ->
      Sim.crash sim victim;
      pending_target := Some target_without_victim;
      open_epoch (Some target_without_victim);
      phase := `Wait_up
    | `Wait_up, Kill_replace
      when progress () >= up_th
           && List.for_all (fun p -> epoch_of p >= 1) others ->
      let node = Epoch.revive dep victim in
      watch_advances victim node;
      phase := `Wait_caught_up
    | `Wait_caught_up, Kill_replace when epoch_of victim >= 1 ->
      pending_target := Some target_full;
      open_epoch (Some target_full);
      phase := `Reconfiguring
    | (`Reconfiguring | `Wait_up), _ ->
      (* Re-send the equivocation while the epoch is open: the frames
         are one-shot raw sends and the variant's network is benign,
         but proposal races can outpace a single volley. *)
      if
        byz_active && alive byz
        && Epoch.epoch (nodes ()).(byz) < final_epoch
      then equivocate !pending_target
    | _ -> ());
    (match !phase with
    | `Reconfiguring
      when Array.for_all
             (fun node -> Epoch.epoch node >= final_epoch)
             (nodes ()) ->
      if not !tail_submitted then begin
        tail_submitted := true;
        Epoch.submit (nodes ()).(victim) tail_payload
      end;
      phase := `Done
    | `Reconfiguring ->
      (* A replica that installed an epoch while its catch-up was
         still replaying can have the next certified advance
         fast-forwarded past it inside a newer checkpoint; the
         self-certifying chain is its only remaining source, so keep
         re-pulling stragglers while the reconfiguration is open. *)
      Array.iteri
        (fun p node ->
          if alive p && Epoch.epoch node < final_epoch then
            Epoch.start_pull node)
        (nodes ())
    | _ -> ());
    if !phase <> `Done then Sim.set_timer sim monitor ~delay:cfg.e_poll poll
  in
  Sim.set_timer sim monitor ~delay:cfg.e_poll poll;
  let stream_total () =
    cfg.e_payloads + if !tail_submitted then 1 else 0
  in
  (* A revived replica fast-forwards over the checkpointed prefix, so
     it never sees pre-checkpoint payloads one by one: its liveness
     condition is delivering the post-reconfiguration tail live. *)
  let caught_up p =
    if scenario = Kill_replace && p = victim then
      Hashtbl.mem seen_payloads.(p) tail_payload
    else count p >= stream_total ()
  in
  let done_ () =
    !tail_submitted
    && Array.for_all (fun node -> Epoch.epoch node >= final_epoch) (nodes ())
    && List.for_all caught_up (List.init n Fun.id)
  in
  let stall = ref [] in
  (try Sim.run ~max_steps:cfg.e_max_steps ~until:done_ sim with
  | Sim.Out_of_steps { at_clock; pending; timers; detail } ->
    stall := [ Oracle.out_of_steps ~detail ~at_clock ~pending ~timers () ]);
  (* Nudge stragglers the way an operator would, as in the recovery
     campaign: a quiesced replica slightly behind re-fetches. *)
  let nudges = ref 0 in
  while (not (done_ ())) && !stall = [] && !nudges < 3 do
    incr nudges;
    Array.iteri
      (fun p node ->
        if alive p && ((not (caught_up p)) || epoch_of p < final_epoch)
        then begin
          Recovery.start_catch_up (Epoch.recovery node);
          Epoch.start_pull node
        end)
      (nodes ());
    (try Sim.run ~max_steps:cfg.e_max_steps ~until:done_ sim with
    | Sim.Out_of_steps { at_clock; pending; timers; detail } ->
      stall :=
        [ Oracle.out_of_steps ~detail ~at_clock ~pending ~timers () ])
  done;
  (* ---- oracles ---- *)
  let honest = Pset.full n in
  let histories =
    Array.map
      (fun node -> Abc.delivered_digests (Recovery.abc (Epoch.recovery node)))
      (nodes ())
  in
  let order_violations =
    Oracle.check_recovery ~honest ~expected:cfg.e_payloads histories @ !stall
  in
  (* Public-key invariance across every installed epoch. *)
  let pk_stable =
    Hashtbl.fold
      (fun _ sh acc -> acc && G.elt_equal sh.Dl_sharing.public_key pk)
      epoch_sharings true
  in
  (* Old shares die at a refresh boundary: a qualified-size mix of
     pre- and post-epoch subshares reconstructs a value whose exponent
     misses the public key.  Checked on every same-structure advance
     (membership changes swap schemes, making cross-epoch mixing
     impossible outright). *)
  let old_shares_dead =
    Hashtbl.fold
      (fun e sh_new acc ->
        acc
        &&
        match Hashtbl.find_opt epoch_sharings (e - 1) with
        | None -> true
        | Some sh_old ->
          if sh_old.Dl_sharing.scheme != sh_new.Dl_sharing.scheme
             && AS.access_formula sh_old.Dl_sharing.structure
                <> AS.access_formula sh_new.Dl_sharing.structure
          then true
          else begin
            let holders =
              List.filter
                (fun p -> Dl_sharing.shares_of sh_new p <> [])
                (List.init n Fun.id)
            in
            match holders with
            | a :: b :: _ ->
              let mix =
                Lsss.shares_of_party sh_old.Dl_sharing.subshares a
                @ Lsss.shares_of_party sh_new.Dl_sharing.subshares b
              in
              (match
                 Lsss.reconstruct sh_new.Dl_sharing.scheme mix
                   (Pset.of_list [ a; b ])
               with
              | None -> true
              | Some v ->
                not (G.elt_equal (G.exp_g sh_new.Dl_sharing.group v) pk))
            | _ -> false
          end)
      epoch_sharings true
  in
  (* Reply certificates: every payload must recombine, in some epoch's
     share group, into a certificate valid under the original public
     key.  The final sharing record is the verifier's view — its public
     key equals the original whenever pk_stable holds. *)
  let certs_ok = ref 0 in
  List.iter
    (fun k ->
      let payload = Printf.sprintf "etx-%d-%d" seed k in
      match Hashtbl.find_opt sigs payload with
      | None -> ()
      | Some per_epoch ->
        let ok =
          Hashtbl.fold
            (fun e entries acc ->
              acc
              ||
              match Hashtbl.find_opt epoch_sharings e with
              | None -> false
              | Some sh -> (
                match Cert_sig.combine sh payload entries with
                | None -> false
                | Some cert -> Cert_sig.verify sh payload cert))
            per_epoch false
        in
        if ok then incr certs_ok)
    (List.init cfg.e_payloads Fun.id);
  let excluded_witnessed =
    Array.fold_left
      (fun acc node -> acc + Epoch.excluded_total node)
      0 (nodes ())
  in
  let final_sharing =
    match Hashtbl.find_opt epoch_sharings final_epoch with
    | Some sh -> Some sh
    | None -> None
  in
  (* The replaced replica answers from the new epoch: it holds final-
     epoch shares and actually countersigned some payload with them. *)
  let victim_signed_final =
    Hashtbl.fold
      (fun _ per_epoch acc ->
        acc
        ||
        match Hashtbl.find_opt per_epoch final_epoch with
        | Some entries -> List.mem_assoc victim entries
        | None -> false)
      sigs false
  in
  let replaced_serving =
    match scenario with
    | Kill_replace | Add_replica -> (
      match final_sharing with
      | None -> false
      | Some sh -> Dl_sharing.shares_of sh victim <> [] && victim_signed_final)
    | Refresh_only -> true
  in
  let proactive_violations =
    (if pk_stable then []
     else
       [ {
           Oracle.oracle = "epoch-pk-invariant";
           severity = Oracle.Safety;
           party = None;
           detail = "public key changed across an epoch advance";
         } ])
    @ (if old_shares_dead then []
       else
         [ {
             Oracle.oracle = "epoch-old-shares";
             severity = Oracle.Safety;
             party = None;
             detail = "pre-epoch shares still recombine to the secret";
           } ])
    @
    if byz_active && excluded_witnessed = 0 then
      [ {
          Oracle.oracle = "epoch-equivocation";
          severity = Oracle.Liveness;
          party = Some byz;
          detail = "equivocating refresher never excluded";
        } ]
    else []
  in
  let violations = order_violations @ proactive_violations in
  let safety = Oracle.count_safety violations in
  let epochs_reached =
    Array.fold_left (fun acc node -> min acc (Epoch.epoch node)) max_int
      (nodes ())
  in
  {
    er_scenario = scenario;
    er_seed = seed;
    er_variant = variant;
    er_victim = victim;
    er_epochs = (if epochs_reached = max_int then 0 else epochs_reached);
    er_completed = done_ () && safety = 0;
    er_pk_stable = pk_stable;
    er_old_shares_dead = old_shares_dead;
    er_certs_ok = !certs_ok;
    er_excluded = excluded_witnessed;
    er_replaced_serving = replaced_serving;
    er_violations = violations;
    er_steps = Sim.steps sim;
  }

(* ---------- the sweep -------------------------------------------------- *)

type report = {
  config : config;
  results : run_result list;  (* in execution order *)
  obs : Obs.t;
}

let run ?(progress = fun _ -> ()) cfg =
  let env = prepare cfg in
  let results = ref [] in
  let total =
    List.length cfg.e_scenarios * List.length cfg.e_variants * cfg.e_seeds
  in
  let done_runs = ref 0 in
  List.iter
    (fun scenario ->
      List.iter
        (fun variant ->
          for i = 0 to cfg.e_seeds - 1 do
            let seed = cfg.e_seed_base + i in
            let r = run_one env cfg ~scenario ~variant ~seed in
            results := r :: !results;
            incr done_runs;
            progress (!done_runs, total)
          done)
        cfg.e_variants)
    cfg.e_scenarios;
  { config = cfg; results = List.rev !results; obs = env.v_obs }

let safety_count rep =
  List.fold_left
    (fun acc r -> acc + Oracle.count_safety r.er_violations)
    0 rep.results

let liveness_count rep =
  List.fold_left
    (fun acc r -> acc + Oracle.count_liveness r.er_violations)
    0 rep.results

let completed_count rep =
  List.length (List.filter (fun r -> r.er_completed) rep.results)

let ok rep =
  safety_count rep = 0
  && completed_count rep = List.length rep.results
  && List.for_all
       (fun r ->
         r.er_pk_stable && r.er_old_shares_dead && r.er_replaced_serving
         && r.er_certs_ok = rep.config.e_payloads)
       rep.results

(* ---------- report output ---------------------------------------------- *)

let schema = "sintra-epoch/1"

let out_path id = Printf.sprintf "EPOCH_%s.json" id

let config_json cfg =
  Obs_json.Obj
    [
      ("seeds", Obs_json.Int cfg.e_seeds);
      ("seed_base", Obs_json.Int cfg.e_seed_base);
      ("n", Obs_json.Int cfg.e_n);
      ("t", Obs_json.Int cfg.e_t);
      ("payloads", Obs_json.Int cfg.e_payloads);
      ("interval", Obs_json.Int cfg.e_interval);
      ("drop", Obs_json.Float cfg.e_drop);
      ("down_frac", Obs_json.Float cfg.e_down_frac);
      ("up_frac", Obs_json.Float cfg.e_up_frac);
      ( "scenarios",
        Obs_json.Arr
          (List.map
             (fun s -> Obs_json.Str (scenario_label s))
             cfg.e_scenarios) );
      ( "variants",
        Obs_json.Arr
          (List.map (fun v -> Obs_json.Str (variant_label v)) cfg.e_variants)
      );
      ("max_steps", Obs_json.Int cfg.e_max_steps);
    ]

let run_json r =
  Obs_json.Obj
    [
      ("scenario", Obs_json.Str (scenario_label r.er_scenario));
      ("seed", Obs_json.Int r.er_seed);
      ("variant", Obs_json.Str (variant_label r.er_variant));
      ("victim", Obs_json.Int r.er_victim);
      ("epochs", Obs_json.Int r.er_epochs);
      ("completed", Obs_json.Bool r.er_completed);
      ("pk_stable", Obs_json.Bool r.er_pk_stable);
      ("old_shares_dead", Obs_json.Bool r.er_old_shares_dead);
      ("certs_ok", Obs_json.Int r.er_certs_ok);
      ("excluded", Obs_json.Int r.er_excluded);
      ("replaced_serving", Obs_json.Bool r.er_replaced_serving);
      ("safety", Obs_json.Int (Oracle.count_safety r.er_violations));
      ("liveness", Obs_json.Int (Oracle.count_liveness r.er_violations));
      ("steps", Obs_json.Int r.er_steps);
    ]

let to_json ~id ~wall rep =
  Obs_json.Obj
    [
      ("experiment", Obs_json.Str id);
      ("schema", Obs_json.Str schema);
      ("wall_time_s", Obs_json.Float wall);
      ("config", config_json rep.config);
      ("runs", Obs_json.Int (List.length rep.results));
      ("completed", Obs_json.Int (completed_count rep));
      ( "excluded_total",
        Obs_json.Int
          (List.fold_left (fun a r -> a + r.er_excluded) 0 rep.results) );
      ( "violations",
        Obs_json.Obj
          [
            ("safety", Obs_json.Int (safety_count rep));
            ("liveness", Obs_json.Int (liveness_count rep));
          ] );
      ("per_run", Obs_json.Arr (List.map run_json rep.results));
      ("metrics", Obs_registry.snapshot_to_json (Obs.snapshot rep.obs));
    ]

let write ~id ~wall rep =
  let path = out_path id in
  let oc = open_out path in
  output_string oc (Obs_json.to_canonical_string (to_json ~id ~wall rep));
  output_char oc '\n';
  close_out oc;
  path

(* Shape + invariant validator for sintra-epoch/1 documents, dispatched
   from the CLI's bench-check like the other schemas. *)
let validate_json (doc : Obs_json.t) : (unit, string) result =
  let ( let* ) = Result.bind in
  let need kind name conv =
    match Option.bind (Obs_json.member name doc) conv with
    | Some v -> Ok v
    | None -> Error (Printf.sprintf "missing or non-%s member %S" kind name)
  in
  let* s = need "string" "schema" Obs_json.to_str in
  let* () = if s = schema then Ok () else Error ("unexpected schema " ^ s) in
  let* _ = need "string" "experiment" Obs_json.to_str in
  let* _ = need "float" "wall_time_s" Obs_json.to_float in
  let* runs = need "int" "runs" Obs_json.to_int in
  let* () = if runs > 0 then Ok () else Error "no runs" in
  let* completed = need "int" "completed" Obs_json.to_int in
  let* () =
    if completed = runs then Ok ()
    else
      Error
        (Printf.sprintf "%d of %d runs failed to complete" (runs - completed)
           runs)
  in
  let* safety =
    match
      Option.bind (Obs_json.member "violations" doc) (fun o ->
          Option.bind (Obs_json.member "safety" o) Obs_json.to_int)
    with
    | Some v -> Ok v
    | None -> Error "missing \"violations\".\"safety\""
  in
  let* () =
    if safety = 0 then Ok ()
    else Error (Printf.sprintf "%d safety violations" safety)
  in
  let* payloads =
    match
      Option.bind (Obs_json.member "config" doc) (fun o ->
          Option.bind (Obs_json.member "payloads" o) Obs_json.to_int)
    with
    | Some v -> Ok v
    | None -> Error "missing \"config\".\"payloads\""
  in
  let* rows =
    match Option.bind (Obs_json.member "per_run" doc) Obs_json.to_list with
    | Some rows -> Ok rows
    | None -> Error "missing or non-array \"per_run\""
  in
  let* () =
    if List.length rows = runs then Ok ()
    else
      Error
        (Printf.sprintf "\"per_run\" has %d rows for %d runs"
           (List.length rows) runs)
  in
  let check_row i row =
    let field name conv =
      match Option.bind (Obs_json.member name row) conv with
      | Some v -> Ok v
      | None ->
        Error (Printf.sprintf "per_run row %d: missing or ill-typed %S" i name)
    in
    let* scenario = field "scenario" Obs_json.to_str in
    let* () =
      if scenario_of_string scenario <> None then Ok ()
      else
        Error (Printf.sprintf "per_run row %d: unknown scenario %S" i scenario)
    in
    let* variant = field "variant" Obs_json.to_str in
    let* () =
      if variant_of_string variant <> None then Ok ()
      else Error (Printf.sprintf "per_run row %d: unknown variant %S" i variant)
    in
    let* seed = field "seed" Obs_json.to_int in
    let* completed = field "completed" Obs_json.to_bool in
    let* pk_stable = field "pk_stable" Obs_json.to_bool in
    let* dead = field "old_shares_dead" Obs_json.to_bool in
    let* serving = field "replaced_serving" Obs_json.to_bool in
    let* certs = field "certs_ok" Obs_json.to_int in
    let* excluded = field "excluded" Obs_json.to_int in
    let* () =
      if completed then Ok ()
      else
        Error (Printf.sprintf "per_run row %d (seed %d): not completed" i seed)
    in
    let* () =
      if pk_stable then Ok ()
      else
        Error
          (Printf.sprintf "per_run row %d (seed %d): public key changed" i seed)
    in
    let* () =
      if dead then Ok ()
      else
        Error
          (Printf.sprintf "per_run row %d (seed %d): old shares still live" i
             seed)
    in
    let* () =
      if serving then Ok ()
      else
        Error
          (Printf.sprintf
             "per_run row %d (seed %d): replaced replica not serving" i seed)
    in
    let* () =
      if certs = payloads then Ok ()
      else
        Error
          (Printf.sprintf
             "per_run row %d (seed %d): %d of %d reply certificates" i seed
             certs payloads)
    in
    Ok (variant = "byz-refresher" && excluded > 0)
  in
  let rec check_rows i any_byz caught = function
    | [] ->
      if any_byz && not caught then
        Error "byzantine sweep never witnessed a dealer exclusion"
      else Ok ()
    | row :: rest ->
      let* byz_caught = check_row i row in
      let byz =
        Option.bind (Obs_json.member "variant" row) Obs_json.to_str
        = Some "byz-refresher"
      in
      check_rows (i + 1) (any_byz || byz) (caught || byz_caught) rest
  in
  check_rows 0 false false rows

(* ---------- summary ---------------------------------------------------- *)

let pp_summary fmt rep =
  let cells = Hashtbl.create 8 in
  let order = ref [] in
  List.iter
    (fun r ->
      let key = (scenario_label r.er_scenario, variant_label r.er_variant) in
      let cell =
        match Hashtbl.find_opt cells key with
        | Some c -> c
        | None ->
          let c = ref [] in
          Hashtbl.add cells key c;
          order := key :: !order;
          c
      in
      cell := r :: !cell)
    rep.results;
  List.iter
    (fun ((scen, var) as key) ->
      let rs = !(Hashtbl.find cells key) in
      let total = List.length rs in
      let comp = List.length (List.filter (fun r -> r.er_completed) rs) in
      let certs = List.fold_left (fun a r -> a + r.er_certs_ok) 0 rs in
      let excl = List.fold_left (fun a r -> a + r.er_excluded) 0 rs in
      let safety =
        List.fold_left
          (fun a r -> a + Oracle.count_safety r.er_violations)
          0 rs
      in
      Format.fprintf fmt
        "%-17s %-13s %3d/%-3d completed  %4d certs  %3d excluded  safety %d%s@."
        scen var comp total certs excl safety
        (if safety > 0 then "  << SAFETY VIOLATION" else ""))
    (List.rev !order);
  Format.fprintf fmt "total: %d runs, %d completed, %d safety violations@."
    (List.length rep.results) (completed_count rep) (safety_count rep)
