(* Crash-and-rejoin and partition-heal campaigns over the recovery
   subsystem: seeded scenario runs with recovery oracles and a
   machine-readable RECOV report.

   Each run streams payloads through a recovery-wrapped atomic-broadcast
   deployment (checkpointing on, reliable link on, lossy chaos), knocks
   one replica out mid-stream — a hard crash followed by [Recovery.revive],
   or a network partition that heals — and checks with the digest-history
   oracles that the victim catches back up to the *whole* order, certified
   prefix included.  The optional forged variant corrupts one survivor
   with {!Byzantine.For_recovery.forged_server}, so every run also
   witnesses the fetcher rejecting a forged snapshot.

   A separate bounded-memory probe runs one sustained-load stream twice —
   checkpoint GC on and off — and reports the delivered-log high-water
   marks, the boundedness evidence the report's validator gates on. *)

type scenario = Crash_rejoin | Partition_heal

let scenario_label = function
  | Crash_rejoin -> "crash-rejoin"
  | Partition_heal -> "partition-heal"

let scenario_of_string = function
  | "crash-rejoin" -> Some Crash_rejoin
  | "partition-heal" -> Some Partition_heal
  | _ -> None

type config = {
  j_seeds : int;
  j_seed_base : int;
  j_n : int;
  j_t : int;
  j_rsa_bits : int;
  j_group_bits : int;
  j_payloads : int;
  j_submit_gap : float;  (* virtual time between payload submissions *)
  j_interval : int;  (* checkpoint period in rounds *)
  j_drop : float;  (* chaos drop rate (the link layer restores) *)
  j_abc_policy : Abc.policy;
  j_link : Link.policy;
  (* The outage is progress-driven, not wall-clock-driven: virtual round
     duration varies by orders of magnitude with the drop rate, so fixed
     times would land before the stream starts or after it ends.  A
     monitor party polls honest delivered counts and triggers the outage
     / comeback when the stream crosses these fractions. *)
  j_down_frac : float;  (* outage when progress >= this fraction *)
  j_up_frac : float;  (* comeback when progress >= this fraction *)
  j_poll : float;  (* monitor poll period, virtual time *)
  j_scenarios : scenario list;
  j_variants : bool list;  (* forged-server variants to sweep *)
  j_max_steps : int;
  j_mem_payloads : int;  (* bounded-memory probe stream length *)
}

let default_config ?(seeds = 50) ?(seed_base = 1) ?(n = 4) ?(t = 1)
    ?(rsa_bits = 192) ?(group_bits = 128) ?(payloads = 24)
    ?(submit_gap = 6.0) ?(interval = 4) ?(drop = 0.3) ?abc_policy ?link
    ?(down_frac = 0.35) ?(up_frac = 0.75) ?(poll = 200.0) ?scenarios
    ?variants ?(max_steps = 600_000) ?(mem_payloads = 192) () =
  {
    j_seeds = seeds;
    j_seed_base = seed_base;
    j_n = n;
    j_t = t;
    j_rsa_bits = rsa_bits;
    j_group_bits = group_bits;
    j_payloads = payloads;
    j_submit_gap = submit_gap;
    j_interval = interval;
    j_drop = drop;
    j_abc_policy =
      Option.value abc_policy
        ~default:
          { Abc.default_policy with Abc.max_batch_msgs = 4; window = 2 };
    j_link = Option.value link ~default:Link.default_policy;
    j_down_frac = down_frac;
    j_up_frac = up_frac;
    j_poll = poll;
    j_scenarios =
      Option.value scenarios ~default:[ Crash_rejoin; Partition_heal ];
    j_variants = Option.value variants ~default:[ false; true ];
    j_max_steps = max_steps;
    j_mem_payloads = mem_payloads;
  }

type run_result = {
  jr_scenario : scenario;
  jr_seed : int;
  jr_forged : bool;
  jr_victim : int;
  jr_recovered : bool;  (* full history present, no safety violation *)
  jr_transferred : bool;  (* victim installed via certified transfer *)
  jr_transfer_bytes : int;
  jr_rejected : int;  (* forged/malformed replies the victim dropped *)
  jr_log_peak : int;  (* max delivered-log high-water across honest *)
  jr_retired : int;  (* max per-round structures retired across honest *)
  jr_ckpt_round : int;  (* highest certified boundary across honest *)
  jr_violations : Oracle.violation list;
  jr_steps : int;
}

(* Shared dealt keyring + obs, as in {!Campaign.prepare}. *)
type env = { e_keyring : Keyring.t; e_obs : Obs.t }

let prepare cfg =
  let structure = Adversary_structure.threshold ~n:cfg.j_n ~t:cfg.j_t in
  let keyring =
    Keyring.deal ~group_bits:cfg.j_group_bits ~rsa_bits:cfg.j_rsa_bits
      ~seed:(cfg.j_seed_base + 9990) structure
  in
  { e_keyring = keyring; e_obs = Obs.create () }

let env_obs env = env.e_obs

(* Flight-recorder glue, mirroring the campaign runner's. *)
let flight_begin flight sim =
  Option.iter
    (fun fl -> Flight.run_begin fl ~now:(fun () -> Sim.clock sim))
    flight

let flight_stall flight ~at_clock ~detail =
  Option.iter
    (fun fl -> Flight.note_anomaly fl Flight.Stall ~at:at_clock ~detail)
    flight

(* ---------- one scenario run ------------------------------------------ *)

let run_one ?flight env cfg ~scenario ~forged ~seed =
  let n = cfg.j_n in
  let keyring = env.e_keyring and obs = env.e_obs in
  let victim = abs seed mod n in
  let forger = (victim + 1) mod n in
  let honest =
    if forged then Pset.remove forger (Pset.full n) else Pset.full n
  in
  let sim = Sim.create ~n ~seed ~obs () in
  let base_chaos =
    {
      Sim.benign_chaos with
      Sim.default_link = { Sim.no_fault with Sim.drop = cfg.j_drop };
    }
  in
  (* The partition-heal outage is applied by swapping this in and the
     base spec back out, so its window is progress-driven: the cut is an
     open-ended [Sim.partition] (the victim alone in one cell) starting
     at the moment the monitor trips it, healed by restoring the base
     spec.  Open-ended windows are safe since the scheduler treats an
     all-blocked step as a clock advance to the next timer, so the
     survivors' traffic and every retransmit timer keep running behind
     the cut. *)
  let cut_chaos () =
    {
      base_chaos with
      Sim.partitions =
        [ { Sim.from_t = Sim.clock sim;
            until_t = infinity;
            cells = [ Pset.singleton victim ] } ];
    }
  in
  Sim.set_chaos sim (Some base_chaos);
  flight_begin flight sim;
  let tag = Printf.sprintf "recov-%s-%d" (scenario_label scenario) seed in
  let wrap =
    if forged then
      Some
        (Byzantine.wrap_of ~sim ~keyring ~seed:(seed lxor 0x5eed)
           ~set:(Pset.singleton forger)
           (Byzantine.For_recovery.forged_server ()))
    else None
  in
  let dep =
    Recovery.deploy ?wrap ~policy:cfg.j_abc_policy ~link:cfg.j_link
      ~interval:cfg.j_interval ~sim ~keyring ~tag
      ~deliver:(fun _ _ -> ())
      ()
  in
  let note_transfer party ~bytes ~round =
    Option.iter
      (fun fl ->
        Flight.note_anomaly fl Flight.State_transfer ~at:(Sim.clock sim)
          ~detail:
            (Printf.sprintf "party %d adopted %d bytes up to round %d"
               party bytes round))
      flight
  in
  Array.iteri
    (fun p node -> Recovery.set_on_transfer node (note_transfer p))
    (Recovery.nodes dep);
  (* Submissions are staggered so the outage lands mid-stream; the
     victim never submits (a crash would purge its submission timers and
     silently shrink the expected total). *)
  let submitters =
    List.filter (fun p -> p <> victim) (List.init n Fun.id)
  in
  List.iteri
    (fun k payload ->
      let s = List.nth submitters (k mod List.length submitters) in
      Sim.set_timer sim s
        ~delay:(float_of_int k *. cfg.j_submit_gap)
        (fun () -> Recovery.submit (Recovery.nodes dep).(s) payload))
    (List.init cfg.j_payloads (fun k -> Printf.sprintf "rtx-%d-%d" seed k));
  let nodes () = Recovery.nodes dep in
  let count p = Abc.delivered_count (Recovery.abc (nodes ()).(p)) in
  (* The outage and the comeback, driven by stream progress at the
     surviving honest parties.  The monitor is honest and never the
     victim (for n = 4 it also avoids the forger at victim + 1), so its
     poll timer survives the whole run. *)
  let monitor = (victim + 2) mod n in
  let progress () =
    Pset.fold
      (fun p acc -> if p = victim then acc else max acc (count p))
      honest 0
  in
  let down_th =
    max 1 (int_of_float (cfg.j_down_frac *. float_of_int cfg.j_payloads))
  in
  let up_th =
    min
      (cfg.j_payloads - 1)
      (int_of_float (cfg.j_up_frac *. float_of_int cfg.j_payloads))
  in
  let phase = ref `Wait_down in
  let rec poll () =
    (match !phase with
    | `Wait_down when progress () >= down_th ->
      (match scenario with
      | Crash_rejoin -> Sim.crash sim victim
      | Partition_heal -> Sim.set_chaos sim (Some (cut_chaos ())));
      phase := `Wait_up
    | `Wait_up when progress () >= up_th ->
      (match scenario with
      | Crash_rejoin ->
        let node = Recovery.revive dep victim in
        Recovery.set_on_transfer node (note_transfer victim)
      | Partition_heal ->
        Sim.set_chaos sim (Some base_chaos);
        (* Resync on heal, as an operator would after a long cut: the
           victim races native ARQ catch-up against certified state
           transfer, and a forged server gets fetched (and rejected)
           either way. *)
        Recovery.start_catch_up (nodes ()).(victim));
      phase := `Done
    | _ -> ());
    if !phase <> `Done then Sim.set_timer sim monitor ~delay:cfg.j_poll poll
  in
  Sim.set_timer sim monitor ~delay:cfg.j_poll poll;
  let done_ () =
    Pset.for_all (fun p -> count p >= cfg.j_payloads) honest
  in
  let stall = ref [] in
  let run_once () =
    try Sim.run ~max_steps:cfg.j_max_steps ~until:done_ sim with
    | Sim.Out_of_steps { at_clock; pending; timers; detail } ->
      flight_stall flight ~at_clock ~detail;
      stall := [ Oracle.out_of_steps ~detail ~at_clock ~pending ~timers () ]
  in
  run_once ();
  (* A replica can quiesce slightly behind with no new checkpoint share
     to trip its lag detector; nudge it the way an operator would. *)
  let nudges = ref 0 in
  while (not (done_ ())) && !stall = [] && !nudges < 3 do
    incr nudges;
    Pset.iter
      (fun p ->
        if count p < cfg.j_payloads && not (Sim.is_crashed sim p) then
          Recovery.start_catch_up (nodes ()).(p))
      honest;
    run_once ()
  done;
  let victim_node = (nodes ()).(victim) in
  let histories =
    Array.map
      (fun node -> Abc.delivered_digests (Recovery.abc node))
      (nodes ())
  in
  let violations =
    Oracle.check_recovery ~honest ~expected:cfg.j_payloads histories
    @ !stall
  in
  let safety = Oracle.count_safety violations in
  let fold_honest f =
    Pset.fold
      (fun p acc -> max acc (f (Recovery.abc (nodes ()).(p))))
      honest 0
  in
  let result =
    {
      jr_scenario = scenario;
      jr_seed = seed;
      jr_forged = forged;
      jr_victim = victim;
      jr_recovered = count victim >= cfg.j_payloads && safety = 0;
      jr_transferred = Recovery.transfers victim_node > 0;
      jr_transfer_bytes = Recovery.transfer_bytes victim_node;
      jr_rejected = Recovery.rejected_replies victim_node;
      jr_log_peak = fold_honest Abc.log_peak;
      jr_retired = fold_honest Abc.retired_rounds;
      jr_ckpt_round =
        Pset.fold
          (fun p acc -> max acc (Recovery.certified_round (nodes ()).(p)))
          honest 0;
      jr_violations = violations;
      jr_steps = Sim.steps sim;
    }
  in
  Option.iter
    (fun fl ->
      List.iter
        (fun (v : Oracle.violation) ->
          if v.Oracle.severity = Oracle.Safety then
            Flight.note_anomaly fl Flight.Safety_trip
              ~detail:(Oracle.violation_to_string v))
        violations;
      Flight.run_end fl
        ~key:
          {
            Flight.protocol = "recov";
            policy = scenario_label scenario;
            mix = (if forged then "forged" else "plain");
            seed;
          }
        ~decided:(done_ ()) ~gating:true
        ~decide_clock:(if done_ () then Some (Sim.clock sim) else None)
        ~steps:(Sim.steps sim) ~safety
        ~liveness:(Oracle.count_liveness violations)
        ~buffer_peak:0)
    flight;
  result

(* ---------- bounded-memory probe -------------------------------------- *)

type memory_probe = {
  m_payloads : int;
  m_gc_on_peak : int;  (* delivered-log high-water, checkpoint GC on *)
  m_gc_on_retired : int;  (* per-round structures retired *)
  m_gc_on_ckpt_round : int;  (* last certified boundary *)
  m_gc_off_peak : int;  (* the unbounded baseline: equals the stream *)
}

(* One sustained-load stream, no faults, link off: every party submits
   round-robin up front and the run drains under back-pressure.  Returns
   (log peak, rounds retired, certified round) maxed over parties. *)
let memory_run env ~payloads ~interval ~abc_policy ~max_steps ~seed =
  let keyring = env.e_keyring in
  let n = Keyring.n keyring in
  let sim = Sim.create ~n ~seed ~obs:env.e_obs () in
  let dep =
    Recovery.deploy ~policy:abc_policy ~interval ~sim ~keyring
      ~tag:(Printf.sprintf "recov-mem-%d-%d" interval seed)
      ~deliver:(fun _ _ -> ())
      ()
  in
  let nodes = Recovery.nodes dep in
  List.iteri
    (fun k payload -> Recovery.submit nodes.(k mod n) payload)
    (List.init payloads (fun k -> Printf.sprintf "mtx-%d-%d" seed k));
  let done_ () =
    Array.for_all
      (fun node -> Abc.delivered_count (Recovery.abc node) >= payloads)
      nodes
  in
  Sim.run ~max_steps ~until:done_ sim;
  let fold f =
    Array.fold_left (fun acc node -> max acc (f node)) 0 nodes
  in
  ( fold (fun nd -> Abc.log_peak (Recovery.abc nd)),
    fold (fun nd -> Abc.retired_rounds (Recovery.abc nd)),
    fold Recovery.certified_round )

let memory_probe env cfg ~seed =
  let payloads = cfg.j_mem_payloads in
  let abc_policy = cfg.j_abc_policy and max_steps = cfg.j_max_steps in
  let on_peak, on_retired, on_ckpt =
    memory_run env ~payloads ~interval:cfg.j_interval ~abc_policy
      ~max_steps ~seed
  in
  let off_peak, _, _ =
    memory_run env ~payloads ~interval:0 ~abc_policy ~max_steps ~seed
  in
  {
    m_payloads = payloads;
    m_gc_on_peak = on_peak;
    m_gc_on_retired = on_retired;
    m_gc_on_ckpt_round = on_ckpt;
    m_gc_off_peak = off_peak;
  }

(* ---------- the sweep -------------------------------------------------- *)

type report = {
  config : config;
  results : run_result list;  (* in execution order *)
  memory : memory_probe option;
  obs : Obs.t;
}

let run ?(progress = fun _ -> ()) ?flight ?(memory = true) cfg =
  let env = prepare cfg in
  let results = ref [] in
  let total =
    List.length cfg.j_scenarios * List.length cfg.j_variants * cfg.j_seeds
  in
  let done_runs = ref 0 in
  List.iter
    (fun scenario ->
      List.iter
        (fun forged ->
          for i = 0 to cfg.j_seeds - 1 do
            let seed = cfg.j_seed_base + i in
            let r = run_one ?flight env cfg ~scenario ~forged ~seed in
            results := r :: !results;
            incr done_runs;
            progress (!done_runs, total)
          done)
        cfg.j_variants)
    cfg.j_scenarios;
  let memory =
    if memory then Some (memory_probe env cfg ~seed:cfg.j_seed_base)
    else None
  in
  { config = cfg; results = List.rev !results; memory; obs = env.e_obs }

let safety_count rep =
  List.fold_left
    (fun acc r -> acc + Oracle.count_safety r.jr_violations)
    0 rep.results

let liveness_count rep =
  List.fold_left
    (fun acc r -> acc + Oracle.count_liveness r.jr_violations)
    0 rep.results

let recovered_count rep =
  List.length (List.filter (fun r -> r.jr_recovered) rep.results)

(* The forged sweep witnessed at least one explicit rejection.  Per-run
   counts can legitimately be zero — the forged reply is a raw frame, so
   lossy chaos can eat every copy before the honest quorum installs —
   but across a sweep the forger must have been caught red-handed.  The
   per-run guarantee ("never installed") is enforced by certificate
   verification and checked by the digest-history oracles. *)
let forged_witnessed rep =
  let forged = List.filter (fun r -> r.jr_forged) rep.results in
  forged = [] || List.exists (fun r -> r.jr_rejected > 0) forged

let ok rep =
  safety_count rep = 0
  && recovered_count rep = List.length rep.results
  && forged_witnessed rep
  && match rep.memory with
     | None -> true
     | Some m -> m.m_gc_on_peak < m.m_gc_off_peak

(* ---------- report output ---------------------------------------------- *)

let schema = "sintra-recov/1"

let out_path id = Printf.sprintf "RECOV_%s.json" id

let config_json cfg =
  Obs_json.Obj
    [
      ("seeds", Obs_json.Int cfg.j_seeds);
      ("seed_base", Obs_json.Int cfg.j_seed_base);
      ("n", Obs_json.Int cfg.j_n);
      ("t", Obs_json.Int cfg.j_t);
      ("payloads", Obs_json.Int cfg.j_payloads);
      ("interval", Obs_json.Int cfg.j_interval);
      ("drop", Obs_json.Float cfg.j_drop);
      ("down_frac", Obs_json.Float cfg.j_down_frac);
      ("up_frac", Obs_json.Float cfg.j_up_frac);
      ( "scenarios",
        Obs_json.Arr
          (List.map
             (fun s -> Obs_json.Str (scenario_label s))
             cfg.j_scenarios) );
      ( "variants",
        Obs_json.Arr (List.map (fun b -> Obs_json.Bool b) cfg.j_variants) );
      ("max_steps", Obs_json.Int cfg.j_max_steps);
    ]

let run_json r =
  Obs_json.Obj
    [
      ("scenario", Obs_json.Str (scenario_label r.jr_scenario));
      ("seed", Obs_json.Int r.jr_seed);
      ("forged", Obs_json.Bool r.jr_forged);
      ("victim", Obs_json.Int r.jr_victim);
      ("recovered", Obs_json.Bool r.jr_recovered);
      ("transferred", Obs_json.Bool r.jr_transferred);
      ("transfer_bytes", Obs_json.Int r.jr_transfer_bytes);
      ("rejected", Obs_json.Int r.jr_rejected);
      ("log_peak", Obs_json.Int r.jr_log_peak);
      ("retired", Obs_json.Int r.jr_retired);
      ("ckpt_round", Obs_json.Int r.jr_ckpt_round);
      ("safety", Obs_json.Int (Oracle.count_safety r.jr_violations));
      ("liveness", Obs_json.Int (Oracle.count_liveness r.jr_violations));
      ("steps", Obs_json.Int r.jr_steps);
    ]

let memory_json m =
  Obs_json.Obj
    [
      ("payloads", Obs_json.Int m.m_payloads);
      ( "gc_on",
        Obs_json.Obj
          [
            ("log_peak", Obs_json.Int m.m_gc_on_peak);
            ("retired", Obs_json.Int m.m_gc_on_retired);
            ("ckpt_round", Obs_json.Int m.m_gc_on_ckpt_round);
          ] );
      ("gc_off", Obs_json.Obj [ ("log_peak", Obs_json.Int m.m_gc_off_peak) ]);
    ]

let to_json ~id ~wall rep =
  Obs_json.Obj
    [
      ("experiment", Obs_json.Str id);
      ("schema", Obs_json.Str schema);
      ("wall_time_s", Obs_json.Float wall);
      ("config", config_json rep.config);
      ("runs", Obs_json.Int (List.length rep.results));
      ("recovered", Obs_json.Int (recovered_count rep));
      ( "transferred",
        Obs_json.Int
          (List.length (List.filter (fun r -> r.jr_transferred) rep.results))
      );
      ( "rejected_total",
        Obs_json.Int
          (List.fold_left (fun a r -> a + r.jr_rejected) 0 rep.results) );
      ( "violations",
        Obs_json.Obj
          [
            ("safety", Obs_json.Int (safety_count rep));
            ("liveness", Obs_json.Int (liveness_count rep));
          ] );
      ( "memory",
        match rep.memory with
        | None -> Obs_json.Null
        | Some m -> memory_json m );
      ("per_run", Obs_json.Arr (List.map run_json rep.results));
      ("metrics", Obs_registry.snapshot_to_json (Obs.snapshot rep.obs));
    ]

let write ~id ~wall rep =
  let path = out_path id in
  let oc = open_out path in
  output_string oc (Obs_json.to_canonical_string (to_json ~id ~wall rep));
  output_char oc '\n';
  close_out oc;
  path

(* Shape + invariant validator for sintra-recov/1 documents, dispatched
   from the CLI's bench-check like the bench/faults/flight schemas. *)
let validate_json (doc : Obs_json.t) : (unit, string) result =
  let ( let* ) = Result.bind in
  let need kind name conv =
    match Option.bind (Obs_json.member name doc) conv with
    | Some v -> Ok v
    | None -> Error (Printf.sprintf "missing or non-%s member %S" kind name)
  in
  let* s = need "string" "schema" Obs_json.to_str in
  let* () = if s = schema then Ok () else Error ("unexpected schema " ^ s) in
  let* _ = need "string" "experiment" Obs_json.to_str in
  let* _ = need "float" "wall_time_s" Obs_json.to_float in
  let* runs = need "int" "runs" Obs_json.to_int in
  let* () = if runs > 0 then Ok () else Error "no runs" in
  let* recovered = need "int" "recovered" Obs_json.to_int in
  let* () =
    if recovered = runs then Ok ()
    else
      Error
        (Printf.sprintf "%d of %d victims failed to recover" (runs - recovered)
           runs)
  in
  let* safety =
    match
      Option.bind (Obs_json.member "violations" doc) (fun o ->
          Option.bind (Obs_json.member "safety" o) Obs_json.to_int)
    with
    | Some v -> Ok v
    | None -> Error "missing \"violations\".\"safety\""
  in
  let* () =
    if safety = 0 then Ok ()
    else Error (Printf.sprintf "%d safety violations" safety)
  in
  let* rows =
    match Option.bind (Obs_json.member "per_run" doc) Obs_json.to_list with
    | Some rows -> Ok rows
    | None -> Error "missing or non-array \"per_run\""
  in
  let* () =
    if List.length rows = runs then Ok ()
    else
      Error
        (Printf.sprintf "\"per_run\" has %d rows for %d runs"
           (List.length rows) runs)
  in
  let check_row i row =
    let field name conv =
      match Option.bind (Obs_json.member name row) conv with
      | Some v -> Ok v
      | None ->
        Error (Printf.sprintf "per_run row %d: missing or ill-typed %S" i name)
    in
    let* scenario = field "scenario" Obs_json.to_str in
    let* () =
      if scenario_of_string scenario <> None then Ok ()
      else Error (Printf.sprintf "per_run row %d: unknown scenario %S" i scenario)
    in
    let* forged = field "forged" Obs_json.to_bool in
    let* recovered = field "recovered" Obs_json.to_bool in
    let* transferred = field "transferred" Obs_json.to_bool in
    let* rejected = field "rejected" Obs_json.to_int in
    let* seed = field "seed" Obs_json.to_int in
    let* () =
      if recovered then Ok ()
      else Error (Printf.sprintf "per_run row %d (seed %d): not recovered" i seed)
    in
    let* () =
      (* A revived replica is amnesiac; catching up without a certified
         transfer would mean it resurrected state out of thin air. *)
      if scenario <> "crash-rejoin" || transferred then Ok ()
      else
        Error
          (Printf.sprintf
             "per_run row %d (seed %d): crash-rejoin without state transfer" i
             seed)
    in
    Ok (forged && rejected > 0)
  in
  let rec check_rows i any_forged caught = function
    | [] ->
      if any_forged && not caught then
        Error "forged sweep never witnessed an explicit rejection"
      else Ok ()
    | row :: rest ->
      let* forged_caught = check_row i row in
      let forged =
        Option.bind (Obs_json.member "forged" row) Obs_json.to_bool
        = Some true
      in
      check_rows (i + 1) (any_forged || forged) (caught || forged_caught) rest
  in
  let* () = check_rows 0 false false rows in
  (* The bounded-memory invariant, when the probe ran. *)
  match Obs_json.member "memory" doc with
  | None | Some Obs_json.Null -> Ok ()
  | Some m ->
    let peak section =
      match
        Option.bind (Obs_json.member section m) (fun o ->
            Option.bind (Obs_json.member "log_peak" o) Obs_json.to_int)
      with
      | Some v -> Ok v
      | None ->
        Error (Printf.sprintf "missing \"memory\".%S.\"log_peak\"" section)
    in
    let* on_peak = peak "gc_on" in
    let* off_peak = peak "gc_off" in
    if on_peak < off_peak then Ok ()
    else
      Error
        (Printf.sprintf
           "memory not bounded: gc-on log peak %d >= gc-off %d" on_peak
           off_peak)

(* ---------- summary ---------------------------------------------------- *)

let pp_summary fmt rep =
  let cells = Hashtbl.create 8 in
  let order = ref [] in
  List.iter
    (fun r ->
      let key = (scenario_label r.jr_scenario, r.jr_forged) in
      let cell =
        match Hashtbl.find_opt cells key with
        | Some c -> c
        | None ->
          let c = ref [] in
          Hashtbl.add cells key c;
          order := key :: !order;
          c
      in
      cell := r :: !cell)
    rep.results;
  List.iter
    (fun ((label, forged) as key) ->
      let rs = !(Hashtbl.find cells key) in
      let total = List.length rs in
      let rec_ = List.length (List.filter (fun r -> r.jr_recovered) rs) in
      let xfer = List.length (List.filter (fun r -> r.jr_transferred) rs) in
      let rej = List.fold_left (fun a r -> a + r.jr_rejected) 0 rs in
      let safety =
        List.fold_left (fun a r -> a + Oracle.count_safety r.jr_violations) 0 rs
      in
      Format.fprintf fmt
        "%-15s %-7s %3d/%-3d recovered  %3d transferred  %3d rejected  safety %d%s@."
        label
        (if forged then "forged" else "plain")
        rec_ total xfer rej safety
        (if safety > 0 then "  << SAFETY VIOLATION" else ""))
    (List.rev !order);
  (match rep.memory with
  | None -> ()
  | Some m ->
    Format.fprintf fmt
      "memory: %d payloads, log peak %d (gc on, %d rounds retired, ckpt r%d) vs %d (gc off)@."
      m.m_payloads m.m_gc_on_peak m.m_gc_on_retired m.m_gc_on_ckpt_round
      m.m_gc_off_peak);
  Format.fprintf fmt "total: %d runs, %d recovered, %d safety violations@."
    (List.length rep.results) (recovered_count rep) (safety_count rep)
