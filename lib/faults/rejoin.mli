(** Crash-and-rejoin / partition-heal campaigns over the recovery layer.

    Each run streams payloads through a checkpointing, link-on
    {!Recovery.deploy}ment under lossy chaos, knocks one replica out
    mid-stream (hard crash + {!Recovery.revive}, or a healing network
    partition) and checks with {!Oracle.check_recovery} that the victim
    rejoins the {e whole} total order — certified-and-truncated prefix
    included — via state transfer.  The forged variant corrupts one
    survivor with {!Byzantine.For_recovery.forged_server}, so every such
    run also witnesses a forged snapshot being rejected on certificate
    verification.

    A bounded-memory probe runs one sustained stream with checkpoint GC
    on and off and reports the delivered-log high-water marks; the
    report validator gates on [gc_on < gc_off]. *)

type scenario = Crash_rejoin | Partition_heal

val scenario_label : scenario -> string
(** ["crash-rejoin"] / ["partition-heal"]. *)

val scenario_of_string : string -> scenario option

type config = {
  j_seeds : int;
  j_seed_base : int;
  j_n : int;
  j_t : int;
  j_rsa_bits : int;
  j_group_bits : int;
  j_payloads : int;
  j_submit_gap : float;  (** virtual time between payload submissions *)
  j_interval : int;  (** checkpoint period in rounds *)
  j_drop : float;  (** chaos drop rate (the link layer restores) *)
  j_abc_policy : Abc.policy;
  j_link : Link.policy;
  j_down_frac : float;
      (** trigger the outage when honest progress crosses this fraction
          of the stream — progress-driven because virtual round duration
          varies by orders of magnitude with the drop rate *)
  j_up_frac : float;  (** revive / heal at this progress fraction *)
  j_poll : float;  (** monitor poll period, virtual time *)
  j_scenarios : scenario list;
  j_variants : bool list;  (** forged-server variants to sweep *)
  j_max_steps : int;
  j_mem_payloads : int;  (** bounded-memory probe stream length *)
}

val default_config :
  ?seeds:int ->
  ?seed_base:int ->
  ?n:int ->
  ?t:int ->
  ?rsa_bits:int ->
  ?group_bits:int ->
  ?payloads:int ->
  ?submit_gap:float ->
  ?interval:int ->
  ?drop:float ->
  ?abc_policy:Abc.policy ->
  ?link:Link.policy ->
  ?down_frac:float ->
  ?up_frac:float ->
  ?poll:float ->
  ?scenarios:scenario list ->
  ?variants:bool list ->
  ?max_steps:int ->
  ?mem_payloads:int ->
  unit ->
  config

type run_result = {
  jr_scenario : scenario;
  jr_seed : int;
  jr_forged : bool;
  jr_victim : int;
  jr_recovered : bool;  (** full history present, no safety violation *)
  jr_transferred : bool;  (** victim installed via certified transfer *)
  jr_transfer_bytes : int;
  jr_rejected : int;  (** forged/malformed replies the victim dropped *)
  jr_log_peak : int;  (** max delivered-log high-water across honest *)
  jr_retired : int;  (** max per-round structures retired across honest *)
  jr_ckpt_round : int;  (** highest certified boundary across honest *)
  jr_violations : Oracle.violation list;
  jr_steps : int;
}

type env
(** Keyring dealt once, shared across runs, as in {!Campaign.prepare}. *)

val prepare : config -> env
val env_obs : env -> Obs.t

val run_one :
  ?flight:Flight.recorder ->
  env ->
  config ->
  scenario:scenario ->
  forged:bool ->
  seed:int ->
  run_result

type memory_probe = {
  m_payloads : int;
  m_gc_on_peak : int;  (** delivered-log high-water, checkpoint GC on *)
  m_gc_on_retired : int;  (** per-round structures retired *)
  m_gc_on_ckpt_round : int;  (** last certified boundary *)
  m_gc_off_peak : int;  (** unbounded baseline: equals the stream *)
}

val memory_probe : env -> config -> seed:int -> memory_probe
(** One sustained-load stream (no faults, link off), run twice —
    checkpoint interval from the config, then interval 0. *)

type report = {
  config : config;
  results : run_result list;  (** in execution order *)
  memory : memory_probe option;
  obs : Obs.t;
}

val run :
  ?progress:(int * int -> unit) ->
  ?flight:Flight.recorder ->
  ?memory:bool ->
  config ->
  report
(** The full sweep: scenarios × variants × seeds, then the memory probe
    (unless [~memory:false]). *)

val safety_count : report -> int
val liveness_count : report -> int
val recovered_count : report -> int

val forged_witnessed : report -> bool
(** The forged sweep rejected the forger explicitly at least once.
    Per-run counts can be zero (the forged reply is a raw frame, so
    lossy chaos can eat every copy before the honest quorum installs);
    the per-run "never installed" guarantee is certificate verification
    plus the digest-history oracles. *)

val ok : report -> bool
(** No safety violations, every victim recovered, every forged run
    caught, and the memory probe (if present) shows a bounded log. *)

val schema : string
(** ["sintra-recov/1"]. *)

val out_path : string -> string
(** [out_path id = "RECOV_<id>.json"]. *)

val to_json : id:string -> wall:float -> report -> Obs_json.t
val write : id:string -> wall:float -> report -> string

val validate_json : Obs_json.t -> (unit, string) result
(** Shape + invariant check for a sintra-recov/1 document: schema, row
    counts, zero safety violations, every run recovered, crash-rejoin
    rows transferred, a forged sweep witnessing at least one explicit
    rejection, and [gc_on.log_peak < gc_off.log_peak] when the memory
    probe ran. *)

val pp_summary : Format.formatter -> report -> unit
