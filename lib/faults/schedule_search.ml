(* Adversarial schedule search: a seeded hill-climber over chaos
   genomes — drop / delay / duplication / reordering rates plus a
   healing-partition window — maximising how badly the stack behaves
   under them.  Two objectives:

   - [Decide_time]: mean simulator steps to completion across the
     evaluation seeds, with a large penalty per undecided run, so the
     climber is pushed first towards schedules that stall runs outright
     and then towards the slowest ones that still decide;

   - [Buffer_peak]: the worst per-run link send-buffer depth — the
     back-pressure the retransmission machinery accumulates when the
     schedule starves acks; meaningful only with the link layer on, so
     that objective forces [link = true].

   The climber mutates one gene per iteration (clamped to its bounds),
   accepts on strict improvement, and archives every distinct evaluated
   schedule; the top few become replayable fixtures
   (test/fixtures/worst_*.json, schema sintra-schedule/1) that the test
   suite re-runs, asserting that even the worst schedules the search
   found never cost safety — the paper's claim under exactly the
   adversary the search plays.

   Everything is derived from [params.search_seed]: same seed, same
   mutations, same evaluations, same fixtures, byte for byte. *)

type genome = {
  g_drop : float;  (* [0, 0.4] per-delivery loss *)
  g_delay : float;  (* [0, 8] extra latency multiplier (Sim delay knob) *)
  g_dup : float;  (* [0, 0.5] duplication *)
  g_reorder : float;  (* [0, 0.5] extra reordering *)
  g_part_start : float;  (* [0, 600] partition window start *)
  g_part_len : float;  (* [0, 800] partition window length; < 1 = none *)
  g_part_frac : float;  (* [0, 0.5] fraction of parties cut off *)
}

let bounds =
  [ (0.0, 0.4); (0.0, 8.0); (0.0, 0.5); (0.0, 0.5); (0.0, 600.0);
    (0.0, 800.0); (0.0, 0.5) ]

let gene g = function
  | 0 -> g.g_drop
  | 1 -> g.g_delay
  | 2 -> g.g_dup
  | 3 -> g.g_reorder
  | 4 -> g.g_part_start
  | 5 -> g.g_part_len
  | _ -> g.g_part_frac

let with_gene g i v =
  match i with
  | 0 -> { g with g_drop = v }
  | 1 -> { g with g_delay = v }
  | 2 -> { g with g_dup = v }
  | 3 -> { g with g_reorder = v }
  | 4 -> { g with g_part_start = v }
  | 5 -> { g with g_part_len = v }
  | _ -> { g with g_part_frac = v }

let n_genes = 7

let clamp lo hi v = Float.max lo (Float.min hi v)

let benign_genome =
  { g_drop = 0.0; g_delay = 0.0; g_dup = 0.0; g_reorder = 0.0;
    g_part_start = 0.0; g_part_len = 0.0; g_part_frac = 0.0 }

(* A mild starting point: every knob slightly on, so a single mutation
   can already interact with the others. *)
let seed_genome =
  { g_drop = 0.02; g_delay = 0.5; g_dup = 0.05; g_reorder = 0.05;
    g_part_start = 50.0; g_part_len = 100.0; g_part_frac = 0.25 }

(* One gene per step: scale-free perturbation by up to ±30% of the
   gene's range, clamped. *)
let mutate rng g =
  let i = Prng.int rng n_genes in
  let lo, hi = List.nth bounds i in
  let step = (Prng.float rng -. 0.5) *. 0.6 *. (hi -. lo) in
  with_gene g i (clamp lo hi (gene g i +. step))

(* ---------- genome -> campaign policy -------------------------------- *)

let partition_of ~n g =
  let k = int_of_float (Float.round (g.g_part_frac *. float_of_int n)) in
  if g.g_part_len < 1.0 || k < 1 then []
  else
    let cut = Pset.of_list (List.init k Fun.id) in
    let rest = Pset.of_list (List.init (n - k) (fun i -> k + i)) in
    [ { Sim.from_t = g.g_part_start;
        until_t = g.g_part_start +. g.g_part_len;
        cells = [ cut; rest ] } ]

let policy_of_genome ~n g =
  {
    Campaign.p_name = "searched";
    (* probabilistic loss breaks eventual delivery on its own; every
       partition the search emits heals, so the link layer restores
       delivery whenever it is enabled *)
    p_reliable = g.g_drop = 0.0;
    p_link_restores = true;
    p_chaos =
      {
        Sim.default_link =
          { Sim.drop = g.g_drop; duplicate = g.g_dup; reorder = g.g_reorder;
            delay = g.g_delay };
        links = [];
        partitions = partition_of ~n g;
      };
  }

(* ---------- evaluation ------------------------------------------------ *)

type objective = Decide_time | Buffer_peak

let objective_label = function
  | Decide_time -> "decide-time"
  | Buffer_peak -> "buffer-peak"

let objective_of_label = function
  | "decide-time" -> Some Decide_time
  | "buffer-peak" -> Some Buffer_peak
  | _ -> None

type params = {
  search_seed : int;  (* drives mutations; evaluation seeds are fixed *)
  iters : int;
  eval_seeds : int;
  seed_base : int;
  n : int;
  t : int;
  protocol : Campaign.protocol;
  payloads : int;
  link : bool;  (* forced on under Buffer_peak *)
  max_steps : int;
}

let default_params =
  {
    search_seed = 1;
    iters = 40;
    eval_seeds = 2;
    seed_base = 1;
    n = 4;
    t = 1;
    protocol = Campaign.P_abc;
    payloads = 2;
    link = false;
    max_steps = 60_000;
  }

let config_of p ~link =
  Campaign.default_config ~seeds:p.eval_seeds ~seed_base:p.seed_base ~n:p.n
    ~t:p.t ~protocols:[ p.protocol ]
    ~mixes:[ { Campaign.m_name = "silent"; m_kind = Campaign.Silent } ]
    ~payloads:p.payloads ~max_steps:p.max_steps
    ?link:(if link then Some Link.default_policy else None)
    ()

(* Undecided runs dominate any decided one; among schedules with the
   same number of stalls, slower (more steps) wins. *)
let undecided_penalty p = float_of_int (10 * p.max_steps)

let score_of_results p objective results =
  match objective with
  | Decide_time ->
    let total =
      List.fold_left
        (fun acc (r : Campaign.run_result) ->
          acc
          +. float_of_int r.Campaign.r_steps
          +. (if r.Campaign.r_decided then 0.0 else undecided_penalty p))
        0.0 results
    in
    total /. float_of_int (max 1 (List.length results))
  | Buffer_peak ->
    List.fold_left
      (fun acc (r : Campaign.run_result) ->
        Float.max acc (float_of_int r.Campaign.r_buffer_peak))
      0.0 results

type eval = {
  e_genome : genome;
  e_score : float;
  e_safety : int;  (* safety violations seen while evaluating *)
  e_decided : int;
  e_runs : int;
}

let evaluate env p objective g =
  let link = p.link || objective = Buffer_peak in
  let cfg = config_of p ~link in
  let policy = policy_of_genome ~n:p.n g in
  let mix = List.hd cfg.Campaign.mixes in
  let results =
    List.init p.eval_seeds (fun i ->
        Campaign.run_one env cfg ~protocol:p.protocol ~policy ~mix
          ~seed:(p.seed_base + i))
  in
  {
    e_genome = g;
    e_score = score_of_results p objective results;
    e_safety =
      List.fold_left
        (fun a (r : Campaign.run_result) ->
          a + Oracle.count_safety r.Campaign.r_violations)
        0 results;
    e_decided =
      List.length (List.filter (fun r -> r.Campaign.r_decided) results);
    e_runs = List.length results;
  }

type outcome = {
  o_best : eval;
  o_archive : eval list;  (* distinct evaluated schedules, worst first *)
  o_evaluations : int;
}

let genome_key g =
  Printf.sprintf "%.4f/%.4f/%.4f/%.4f/%.1f/%.1f/%.2f" g.g_drop g.g_delay
    g.g_dup g.g_reorder g.g_part_start g.g_part_len g.g_part_frac

let search ?(progress = fun _ -> ()) ?(params = default_params) ~objective ()
    =
  let link = params.link || objective = Buffer_peak in
  let env = Campaign.prepare (config_of params ~link) in
  let rng = Prng.create ~seed:(params.search_seed * 2654435761 + 1) in
  let seen = Hashtbl.create 64 in
  let archive = ref [] in
  let evals = ref 0 in
  let eval g =
    let e = evaluate env params objective g in
    incr evals;
    if not (Hashtbl.mem seen (genome_key g)) then begin
      Hashtbl.add seen (genome_key g) ();
      archive := e :: !archive
    end;
    progress (!evals, params.iters + 1, e.e_score);
    e
  in
  let current = ref (eval seed_genome) in
  for _ = 1 to params.iters do
    let candidate = mutate rng !current.e_genome in
    let e = eval candidate in
    if e.e_score > !current.e_score then current := e
  done;
  let worst_first =
    List.stable_sort (fun a b -> compare b.e_score a.e_score) (List.rev !archive)
  in
  { o_best = !current; o_archive = worst_first; o_evaluations = !evals }

(* ---------- fixtures -------------------------------------------------- *)

let schema = "sintra-schedule/1"

let genome_json g =
  Obs_json.Obj
    [ ("drop", Obs_json.Float g.g_drop);
      ("delay", Obs_json.Float g.g_delay);
      ("duplicate", Obs_json.Float g.g_dup);
      ("reorder", Obs_json.Float g.g_reorder);
      ("part_start", Obs_json.Float g.g_part_start);
      ("part_len", Obs_json.Float g.g_part_len);
      ("part_frac", Obs_json.Float g.g_part_frac) ]

let genome_of_json v =
  let f k = Option.bind (Obs_json.member k v) Obs_json.to_float in
  match (f "drop", f "delay", f "duplicate", f "reorder", f "part_start",
         f "part_len", f "part_frac")
  with
  | ( Some g_drop, Some g_delay, Some g_dup, Some g_reorder,
      Some g_part_start, Some g_part_len, Some g_part_frac ) ->
    Some { g_drop; g_delay; g_dup; g_reorder; g_part_start; g_part_len;
           g_part_frac }
  | _ -> None

let fixture_json ~params:p ~objective (e : eval) =
  let link = p.link || objective = Buffer_peak in
  Obs_json.Obj
    [ ("schema", Obs_json.Str schema);
      ("objective", Obs_json.Str (objective_label objective));
      ("score", Obs_json.Float e.e_score);
      ("genome", genome_json e.e_genome);
      ("link", Obs_json.Bool link);
      ( "eval",
        Obs_json.Obj
          [ ("n", Obs_json.Int p.n);
            ("t", Obs_json.Int p.t);
            ("protocol", Obs_json.Str (Campaign.protocol_label p.protocol));
            ("seeds", Obs_json.Int p.eval_seeds);
            ("seed_base", Obs_json.Int p.seed_base);
            ("payloads", Obs_json.Int p.payloads);
            ("max_steps", Obs_json.Int p.max_steps) ] );
      ( "provenance",
        Obs_json.Obj
          [ ("search_seed", Obs_json.Int p.search_seed);
            ("decided", Obs_json.Int e.e_decided);
            ("runs", Obs_json.Int e.e_runs);
            ("safety", Obs_json.Int e.e_safety) ] ) ]

let write_fixtures ~dir ~params ~objective (o : outcome) ~top =
  if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
  let picked = List.filteri (fun i _ -> i < top) o.o_archive in
  List.mapi
    (fun i e ->
      let path =
        Filename.concat dir
          (Printf.sprintf "worst_%s_%d.json" (objective_label objective) i)
      in
      let oc = open_out path in
      output_string oc
        (Obs_json.to_canonical_string (fixture_json ~params ~objective e));
      output_char oc '\n';
      close_out oc;
      path)
    picked

(* Rebuild the campaign configuration a fixture describes and re-run it;
   the test suite asserts [Campaign.safety_count = 0] over the result.
   Structural problems are [Error]s. *)
let replay (doc : Obs_json.t) : (Campaign.report, string) result =
  let ( let* ) = Result.bind in
  let* () =
    match Option.bind (Obs_json.member "schema" doc) Obs_json.to_str with
    | Some s when s = schema -> Ok ()
    | Some s -> Error ("unexpected schema " ^ s)
    | None -> Error "missing \"schema\""
  in
  let* g =
    match Option.bind (Obs_json.member "genome" doc) genome_of_json with
    | Some g -> Ok g
    | None -> Error "missing or malformed \"genome\""
  in
  let* link =
    match Option.bind (Obs_json.member "link" doc) Obs_json.to_bool with
    | Some b -> Ok b
    | None -> Error "missing \"link\""
  in
  let* ev =
    match Obs_json.member "eval" doc with
    | Some e -> Ok e
    | None -> Error "missing \"eval\""
  in
  let int k =
    match Option.bind (Obs_json.member k ev) Obs_json.to_int with
    | Some v -> Ok v
    | None -> Error (Printf.sprintf "missing or non-int \"eval\".%S" k)
  in
  let* n = int "n" in
  let* t = int "t" in
  let* seeds = int "seeds" in
  let* seed_base = int "seed_base" in
  let* payloads = int "payloads" in
  let* max_steps = int "max_steps" in
  let* protocol =
    match
      Option.bind
        (Option.bind (Obs_json.member "protocol" ev) Obs_json.to_str)
        Campaign.protocol_of_string
    with
    | Some p -> Ok p
    | None -> Error "missing or unknown \"eval\".\"protocol\""
  in
  let cfg =
    Campaign.default_config ~seeds ~seed_base ~n ~t ~protocols:[ protocol ]
      ~policies:[ policy_of_genome ~n g ]
      ~mixes:[ { Campaign.m_name = "silent"; m_kind = Campaign.Silent } ]
      ~payloads ~max_steps
      ?link:(if link then Some Link.default_policy else None)
      ()
  in
  Ok (Campaign.run cfg)
