(** Adversarial schedule search: a seeded hill-climber over chaos
    genomes (drop / delay / duplication / reordering rates plus a
    healing-partition window), maximising steps-to-decide or the link
    layer's send-buffer peak.  The worst schedules found are archived as
    replayable fixtures (schema ["sintra-schedule/1"]) that the test
    suite re-runs, asserting that even searched-for worst cases never
    cost safety.  Fully deterministic in [params.search_seed]. *)

type genome = {
  g_drop : float;  (** [\[0, 0.4\]] per-delivery loss *)
  g_delay : float;  (** [\[0, 8\]] extra latency multiplier *)
  g_dup : float;  (** [\[0, 0.5\]] duplication *)
  g_reorder : float;  (** [\[0, 0.5\]] extra reordering *)
  g_part_start : float;  (** [\[0, 600\]] partition window start *)
  g_part_len : float;  (** [\[0, 800\]] window length; < 1 means none *)
  g_part_frac : float;  (** [\[0, 0.5\]] fraction of parties cut off *)
}

val benign_genome : genome
val seed_genome : genome
(** The climb's starting point: every knob slightly on. *)

val policy_of_genome : n:int -> genome -> Campaign.policy_spec
(** Lossy genomes ([g_drop > 0]) are not reliable on their own; every
    partition the search emits heals, so [p_link_restores] always
    holds. *)

type objective = Decide_time | Buffer_peak

val objective_label : objective -> string
(** ["decide-time"] / ["buffer-peak"]. *)

val objective_of_label : string -> objective option

type params = {
  search_seed : int;
  iters : int;
  eval_seeds : int;  (** runs per evaluation (seeds [seed_base ..]) *)
  seed_base : int;
  n : int;
  t : int;
  protocol : Campaign.protocol;
  payloads : int;
  link : bool;  (** forced on under {!Buffer_peak} *)
  max_steps : int;
}

val default_params : params
(** 40 iterations, 2 evaluation seeds, n = 4 / t = 1, ABC, link off,
    60k steps. *)

type eval = {
  e_genome : genome;
  e_score : float;
  e_safety : int;  (** safety violations seen while evaluating *)
  e_decided : int;
  e_runs : int;
}

type outcome = {
  o_best : eval;  (** where the climb ended *)
  o_archive : eval list;  (** distinct evaluated schedules, worst first *)
  o_evaluations : int;
}

val search :
  ?progress:(int * int * float -> unit) ->
  ?params:params ->
  objective:objective ->
  unit ->
  outcome
(** Hill-climb: mutate one gene per iteration, accept on strict score
    improvement.  [progress (evals, budget, score)] after each
    evaluation.  The keyring is dealt once ({!Campaign.prepare}) and
    shared across all evaluations. *)

(** {2 Fixtures} *)

val schema : string
(** ["sintra-schedule/1"]. *)

val genome_json : genome -> Obs_json.t
val genome_of_json : Obs_json.t -> genome option
val fixture_json : params:params -> objective:objective -> eval -> Obs_json.t

val write_fixtures :
  dir:string ->
  params:params ->
  objective:objective ->
  outcome ->
  top:int ->
  string list
(** Write the [top] worst schedules as
    [dir/worst_<objective>_<rank>.json] (canonical bytes); returns the
    paths. *)

val replay : Obs_json.t -> (Campaign.report, string) result
(** Rebuild the campaign configuration a fixture describes and re-run
    it — the test suite asserts zero safety violations over the
    result. *)
