(* Sustained-load service campaigns: closed-loop clients driving the
   Section 5 services end to end — SVQ1 submission, threshold reply
   certificates, the read-only fast path, resend-based loss recovery —
   under benign, lossy and crash-rejoin schedules, with certificate /
   dedup / total-order / bounded-memory oracles and a machine-readable
   BENCH_SVC report ("sintra-svc/1").

   The driver is a closed loop, not an open stream: each client keeps at
   most a window of requests in flight and tops the window up from a
   monitor poll timer until its quota of completed certificates is met.
   Abandoned requests (the client's resend budget ran out) shrink the
   in-flight count without completing, so the loop naturally re-submits
   fresh requests until the quota closes — the campaign measures the
   pipeline's goodput, not its luck. *)

type service_kind = Ca_svc | Directory_svc | Notary_svc

let kind_label = function
  | Ca_svc -> "ca"
  | Directory_svc -> "directory"
  | Notary_svc -> "notary"

let kind_of_string = function
  | "ca" -> Some Ca_svc
  | "directory" -> Some Directory_svc
  | "notary" -> Some Notary_svc
  | _ -> None

type variant = Benign | Drop_arq | Crash_rejoin

let variant_label = function
  | Benign -> "benign"
  | Drop_arq -> "drop-arq"
  | Crash_rejoin -> "crash-rejoin"

let variant_of_string = function
  | "benign" -> Some Benign
  | "drop-arq" -> Some Drop_arq
  | "crash-rejoin" -> Some Crash_rejoin
  | _ -> None

(* The notary runs over secure causal broadcast, which has no recovery
   wrapper (re-keying a revived replica's decryption share is future
   work; see the refusal note on {!Recovery.deploy}), so it cannot host
   the crash-rejoin variant. *)
let variants_for kind variants =
  match kind with
  | Notary_svc -> List.filter (fun v -> v <> Crash_rejoin) variants
  | Ca_svc | Directory_svc -> variants

(* Why a (kind, variant) cell is absent from the sweep — reported in
   the summary and the JSON artifact so a dropped cell reads as a
   documented refusal, not silent shrinkage of the matrix. *)
let skip_reason kind variant =
  match (kind, variant) with
  | Notary_svc, Crash_rejoin ->
    Some
      "secure causal broadcast has no recovery wrapper: re-keying a \
       revived replica's decryption share is future work"
  | _ -> None

type config = {
  v_seeds : int;
  v_seed_base : int;
  v_n : int;
  v_t : int;
  v_rsa_bits : int;
  v_group_bits : int;
  v_requests : int;
  v_clients : int;
  v_window : int;
  v_read_frac : float;
  v_keyspace : int;
  v_interval : int;
  v_drop : float;
  v_abc_policy : Abc.policy;
  v_link : Link.policy;
  v_down_frac : float;
  v_up_frac : float;
  v_poll : float;
  v_kinds : service_kind list;
  v_variants : variant list;
  v_max_steps : int;
  v_mem_bound : int;
}

let default_config ?(seeds = 5) ?(seed_base = 1) ?(n = 4) ?(t = 1)
    ?(rsa_bits = 192) ?(group_bits = 128) ?(requests = 60) ?(clients = 3)
    ?(window = 4) ?(read_frac = 0.75) ?(keyspace = 16) ?(interval = 2)
    ?(drop = 0.3) ?abc_policy ?link ?(down_frac = 0.3) ?(up_frac = 0.7)
    ?(poll = 400.0) ?kinds ?variants ?(max_steps = 2_000_000)
    ?(mem_bound = 40) () =
  {
    v_seeds = seeds;
    v_seed_base = seed_base;
    v_n = n;
    v_t = t;
    v_rsa_bits = rsa_bits;
    v_group_bits = group_bits;
    v_requests = requests;
    v_clients = clients;
    v_window = window;
    v_read_frac = read_frac;
    v_keyspace = keyspace;
    v_interval = interval;
    v_drop = drop;
    v_abc_policy =
      Option.value abc_policy
        ~default:
          { Abc.default_policy with Abc.max_batch_msgs = 8; window = 2 };
    v_link = Option.value link ~default:Link.default_policy;
    v_down_frac = down_frac;
    v_up_frac = up_frac;
    v_poll = poll;
    v_kinds = Option.value kinds ~default:[ Ca_svc; Directory_svc; Notary_svc ];
    v_variants =
      Option.value variants ~default:[ Benign; Drop_arq; Crash_rejoin ];
    v_max_steps = max_steps;
    v_mem_bound = mem_bound;
  }

type run_result = {
  vr_kind : service_kind;
  vr_variant : variant;
  vr_seed : int;
  vr_target : int;
  vr_completed : int;
  vr_verified : int;
  vr_cert_failures : int;
  vr_reads : int;
  vr_fast_hits : int;
  vr_fallbacks : int;
  vr_retries : int;
  vr_timeouts : int;
  vr_rejected : int;
  vr_ordered : int;
  vr_executed : int;
  vr_dup_suppressed : int;
  vr_log_peak : int;
  vr_victim : int;
  vr_violations : Oracle.violation list;
  vr_steps : int;
  vr_clock : float;
}

type env = { s_keyring : Keyring.t; s_obs : Obs.t }

let prepare cfg =
  let structure = Adversary_structure.threshold ~n:cfg.v_n ~t:cfg.v_t in
  let keyring =
    Keyring.deal ~group_bits:cfg.v_group_bits ~rsa_bits:cfg.v_rsa_bits
      ~seed:(cfg.v_seed_base + 7770) structure
  in
  { s_keyring = keyring; s_obs = Obs.create () }

let env_obs env = env.s_obs

(* ---------- per-kind deployment + workload ----------------------------- *)

let kind_mode = function
  | Notary_svc -> Service.Confidential
  | Ca_svc | Directory_svc -> Service.Plain

let kind_make_app = function
  | Ca_svc -> Ca.make_app
  | Directory_svc -> Directory_service.make_app
  | Notary_svc -> Notary.make_app

let kind_read_only = function
  | Ca_svc -> Ca.read_only
  | Directory_svc -> Directory_service.read_only
  | Notary_svc -> Notary.read_only

(* Checkpoint GC applies to the Plain kinds; the confidential engine has
   no recovery wrapper, so the notary runs un-truncated (its un-GC'd log
   is reported but not gated). *)
let kind_interval cfg = function
  | Notary_svc -> 0
  | Ca_svc | Directory_svc -> cfg.v_interval

(* Writes land in a bounded entity space keyed by [idx mod keyspace], so
   the read mix mostly hits state some earlier write created — the fast
   path serves real lookups, not just "not found" certificates (which
   are themselves valid, signed answers). *)
let write_body kind ~seed ~keyspace ~idx =
  let k = idx mod keyspace in
  match kind with
  | Ca_svc ->
    Ca.issue_request
      ~id:(Printf.sprintf "id-%d" k)
      ~pubkey:(Printf.sprintf "pk-%d-%d" seed idx)
      ~credentials:"svc!ok"
  | Directory_svc ->
    Directory_service.bind_request
      ~key:(Printf.sprintf "k-%d" k)
      ~value:(Printf.sprintf "v-%d-%d" seed idx)
  | Notary_svc ->
    Notary.register_request ~document:(Printf.sprintf "doc-%d-%d" seed k)

let read_body kind ~seed ~keyspace ~idx =
  let k = idx mod keyspace in
  match kind with
  | Ca_svc -> Ca.lookup_request ~id:(Printf.sprintf "id-%d" k)
  | Directory_svc ->
    if k land 7 = 0 then Directory_service.list_request ()
    else Directory_service.lookup_request ~key:(Printf.sprintf "k-%d" k)
  | Notary_svc ->
    (* The registry is keyed by document digest. *)
    Notary.query_request
      ~digest:(Sha256.digest (Printf.sprintf "doc-%d-%d" seed k))

(* ---------- one campaign run ------------------------------------------ *)

let run_one env cfg ~kind ~variant ~seed =
  let n = cfg.v_n in
  let keyring = env.s_keyring and obs = env.s_obs in
  let mode = kind_mode kind in
  let interval = kind_interval cfg kind in
  if variant = Crash_rejoin && interval = 0 then
    invalid_arg "Svc.run_one: crash-rejoin needs a checkpointing kind";
  let sim = Sim.create ~n ~extra:(cfg.v_clients + 2) ~seed ~obs () in
  (match variant with
  | Benign | Crash_rejoin -> ()
  | Drop_arq ->
    Sim.set_chaos sim
      (Some
         {
           Sim.benign_chaos with
           Sim.default_link = { Sim.no_fault with Sim.drop = cfg.v_drop };
         }));
  let link = match variant with Drop_arq -> Some cfg.v_link | _ -> None in
  let dep =
    Service.deploy ~policy:cfg.v_abc_policy ?link
      ?ckpt_interval:(if interval > 0 then Some interval else None)
      ~read_only:(kind_read_only kind) ~sim ~keyring ~mode
      ~make_app:(kind_make_app kind) ()
  in
  let clients =
    Array.init cfg.v_clients (fun i ->
        Service.Client.create ~sim ~keyring ~slot:(n + i)
          ~seed:((seed * 131) + i)
          ())
  in
  (* Quotas: v_requests completions split across clients. *)
  let quota =
    Array.init cfg.v_clients (fun i ->
        (cfg.v_requests / cfg.v_clients)
        + if i < cfg.v_requests mod cfg.v_clients then 1 else 0)
  in
  let target = Array.fold_left ( + ) 0 quota in
  let completed = Array.make cfg.v_clients 0 in
  let verified = ref 0 and cert_bad = ref 0 in
  let reads = ref 0 and issued = ref 0 in
  let rng = Prng.create ~seed:(seed lxor 0x51c5) in
  let submit ci =
    let idx = !issued in
    incr issued;
    let read = Prng.float rng < cfg.v_read_frac in
    let body =
      if read then (
        incr reads;
        read_body kind ~seed ~keyspace:cfg.v_keyspace ~idx)
      else write_body kind ~seed ~keyspace:cfg.v_keyspace ~idx
    in
    let fin rc =
      (* Every accepted certificate is re-verified by the harness — the
         "all accepted reply certificates verify" acceptance check. *)
      if Service.verify_reply_cert keyring rc then incr verified
      else incr cert_bad;
      completed.(ci) <- completed.(ci) + 1
    in
    if read then Service.Client.query clients.(ci) ~mode body fin
    else Service.Client.request clients.(ci) ~mode body fin
  in
  let top_up () =
    Array.iteri
      (fun ci c ->
        while
          completed.(ci) + Service.Client.inflight c < quota.(ci)
          && Service.Client.inflight c < cfg.v_window
        do
          submit ci
        done)
      clients
  in
  let total_completed () = Array.fold_left ( + ) 0 completed in
  (* The crash and the comeback are progress-driven (completed
     certificates), exactly like the recovery campaigns' outages: virtual
     round duration varies wildly across variants, so wall-clock triggers
     would miss the stream. *)
  let victim = if variant = Crash_rejoin then abs seed mod n else -1 in
  let down_th =
    max 1 (int_of_float (cfg.v_down_frac *. float_of_int target))
  in
  let up_th =
    min (target - 1) (int_of_float (cfg.v_up_frac *. float_of_int target))
  in
  let phase = ref (if variant = Crash_rejoin then `Wait_down else `Done) in
  let monitor = n + cfg.v_clients in
  let rec poll () =
    (match !phase with
    | `Wait_down when total_completed () >= down_th ->
      Sim.crash sim victim;
      phase := `Wait_up
    | `Wait_up when total_completed () >= up_th ->
      ignore (Service.revive dep victim);
      phase := `Done
    | _ -> ());
    top_up ();
    if total_completed () < target then
      Sim.set_timer sim monitor ~delay:cfg.v_poll poll
  in
  top_up ();
  Sim.set_timer sim monitor ~delay:cfg.v_poll poll;
  let done_ () = total_completed () >= target in
  let stall = ref [] in
  (try Sim.run ~max_steps:cfg.v_max_steps ~until:done_ sim with
  | Sim.Out_of_steps { at_clock; pending; timers; detail } ->
    stall := [ Oracle.out_of_steps ~detail ~at_clock ~pending ~timers () ]);
  let nodes = Service.nodes dep in
  let never_crashed p = p <> victim in
  (* Oracles.  Certificate re-checks and the client's own internal
     failure counters must both be zero: with no corrupted servers in
     the sweep, any combine-but-not-verify event is a pipeline bug. *)
  let client_cert_failures =
    Array.fold_left
      (fun a c -> a + Service.Client.cert_failures c)
      0 clients
  in
  let cert_violations =
    if !cert_bad > 0 || client_cert_failures > 0 then
      [
        {
          Oracle.oracle = "svc-cert";
          severity = Oracle.Safety;
          party = None;
          detail =
            Printf.sprintf
              "%d accepted certificates failed re-verification, %d client-side"
              !cert_bad client_cert_failures;
        };
      ]
    else []
  in
  (* Dedup bookkeeping: every ordered delivery is either executed or
     suppressed as a replay — a mismatch means a request was silently
     dropped or double-executed.  Replicas that crashed restart their
     counters at revive, so the check covers never-crashed replicas. *)
  let dedup_violations =
    List.concat_map
      (fun p ->
        if not (never_crashed p) then []
        else
          let nd = nodes.(p) in
          let drift =
            nd.Service.ordered
            - (nd.Service.executed + nd.Service.dup_suppressed)
          in
          if drift = 0 && nd.Service.malformed = 0 then []
          else
            [
              {
                Oracle.oracle = "svc-dedup";
                severity = Oracle.Safety;
                party = Some p;
                detail =
                  Printf.sprintf
                    "ordered %d <> executed %d + dup_suppressed %d (malformed %d)"
                    nd.Service.ordered nd.Service.executed
                    nd.Service.dup_suppressed nd.Service.malformed;
              };
            ])
      (List.init n Fun.id)
  in
  let histories =
    Array.map
      (fun nd ->
        match Service.abc_of nd with
        | Some abc -> Abc.delivered_digests abc
        | None -> [])
      nodes
  in
  let order_violations =
    Oracle.total_order ~honest:(Pset.full n) histories
  in
  let fold_engines f =
    Array.fold_left
      (fun acc nd ->
        match Service.abc_of nd with
        | Some abc -> max acc (f abc)
        | None -> acc)
      0 nodes
  in
  let log_peak = fold_engines Abc.log_peak in
  let memory_violations =
    if interval > 0 && log_peak > cfg.v_mem_bound then
      [
        {
          Oracle.oracle = "svc-memory";
          severity = Oracle.Safety;
          party = None;
          detail =
            Printf.sprintf "GC'd delivered-log peak %d exceeds bound %d"
              log_peak cfg.v_mem_bound;
        };
      ]
    else []
  in
  let quota_violations =
    if done_ () then []
    else
      [
        {
          Oracle.oracle = "svc-quota";
          severity = Oracle.Liveness;
          party = None;
          detail =
            Printf.sprintf "completed %d of %d before quiescence"
              (total_completed ()) target;
        };
      ]
  in
  let sum_clients f = Array.fold_left (fun a c -> a + f c) 0 clients in
  let sum_replicas f =
    Array.to_list nodes
    |> List.mapi (fun p nd -> if never_crashed p then f nd else 0)
    |> List.fold_left ( + ) 0
  in
  {
    vr_kind = kind;
    vr_variant = variant;
    vr_seed = seed;
    vr_target = target;
    vr_completed = total_completed ();
    vr_verified = !verified;
    vr_cert_failures = !cert_bad + client_cert_failures;
    vr_reads = !reads;
    vr_fast_hits = sum_clients Service.Client.fastpath_hits;
    vr_fallbacks = sum_clients Service.Client.fallbacks;
    vr_retries = sum_clients Service.Client.retries;
    vr_timeouts = sum_clients Service.Client.timeouts;
    vr_rejected = sum_clients Service.Client.rejected_replies;
    vr_ordered = sum_replicas (fun nd -> nd.Service.ordered);
    vr_executed = sum_replicas (fun nd -> nd.Service.executed);
    vr_dup_suppressed = sum_replicas (fun nd -> nd.Service.dup_suppressed);
    vr_log_peak = log_peak;
    vr_victim = victim;
    vr_violations =
      !stall @ cert_violations @ dedup_violations @ order_violations
      @ memory_violations @ quota_violations;
    vr_steps = Sim.steps sim;
    vr_clock = Sim.clock sim;
  }

(* ---------- the sweep -------------------------------------------------- *)

type report = {
  config : config;
  results : run_result list;
  skipped : (service_kind * variant * string) list;
  obs : Obs.t;
}

let run ?(progress = fun _ -> ()) cfg =
  let env = prepare cfg in
  let cells =
    List.concat_map
      (fun kind ->
        List.map (fun v -> (kind, v)) (variants_for kind cfg.v_variants))
      cfg.v_kinds
  in
  let skipped =
    List.concat_map
      (fun kind ->
        List.filter_map
          (fun v ->
            if List.mem v (variants_for kind cfg.v_variants) then None
            else
              Some
                ( kind,
                  v,
                  Option.value
                    (skip_reason kind v)
                    ~default:"unsupported cell" ))
          cfg.v_variants)
      cfg.v_kinds
  in
  let total = List.length cells * cfg.v_seeds in
  let done_runs = ref 0 in
  let results = ref [] in
  List.iter
    (fun (kind, variant) ->
      for i = 0 to cfg.v_seeds - 1 do
        let seed = cfg.v_seed_base + i in
        let r = run_one env cfg ~kind ~variant ~seed in
        results := r :: !results;
        incr done_runs;
        progress (!done_runs, total)
      done)
    cells;
  { config = cfg; results = List.rev !results; skipped; obs = env.s_obs }

let sum f rep = List.fold_left (fun a r -> a + f r) 0 rep.results

let safety_count rep =
  sum (fun r -> Oracle.count_safety r.vr_violations) rep

let liveness_count rep =
  sum (fun r -> Oracle.count_liveness r.vr_violations) rep

let completed_total rep = sum (fun r -> r.vr_completed) rep
let target_total rep = sum (fun r -> r.vr_target) rep
let cert_failures_total rep = sum (fun r -> r.vr_cert_failures) rep
let fast_hits_total rep = sum (fun r -> r.vr_fast_hits) rep
let reads_total rep = sum (fun r -> r.vr_reads) rep

let plain_log_peak rep =
  List.fold_left
    (fun acc r ->
      if kind_mode r.vr_kind = Service.Plain then max acc r.vr_log_peak
      else acc)
    0 rep.results

let ok rep =
  safety_count rep = 0
  && completed_total rep >= target_total rep
  && cert_failures_total rep = 0
  && (reads_total rep = 0 || fast_hits_total rep > 0)
  && plain_log_peak rep <= rep.config.v_mem_bound

(* ---------- report output ---------------------------------------------- *)

let schema = "sintra-svc/1"

let out_path id =
  if id = "svc" then "BENCH_SVC.json"
  else Printf.sprintf "BENCH_SVC_%s.json" id

let config_json cfg =
  Obs_json.Obj
    [
      ("seeds", Obs_json.Int cfg.v_seeds);
      ("seed_base", Obs_json.Int cfg.v_seed_base);
      ("n", Obs_json.Int cfg.v_n);
      ("t", Obs_json.Int cfg.v_t);
      ("requests", Obs_json.Int cfg.v_requests);
      ("clients", Obs_json.Int cfg.v_clients);
      ("window", Obs_json.Int cfg.v_window);
      ("read_frac", Obs_json.Float cfg.v_read_frac);
      ("keyspace", Obs_json.Int cfg.v_keyspace);
      ("interval", Obs_json.Int cfg.v_interval);
      ("drop", Obs_json.Float cfg.v_drop);
      ("down_frac", Obs_json.Float cfg.v_down_frac);
      ("up_frac", Obs_json.Float cfg.v_up_frac);
      ( "kinds",
        Obs_json.Arr
          (List.map (fun k -> Obs_json.Str (kind_label k)) cfg.v_kinds) );
      ( "variants",
        Obs_json.Arr
          (List.map (fun v -> Obs_json.Str (variant_label v)) cfg.v_variants)
      );
      ("max_steps", Obs_json.Int cfg.v_max_steps);
      ("mem_bound", Obs_json.Int cfg.v_mem_bound);
    ]

let run_json r =
  Obs_json.Obj
    [
      ("kind", Obs_json.Str (kind_label r.vr_kind));
      ("variant", Obs_json.Str (variant_label r.vr_variant));
      ("seed", Obs_json.Int r.vr_seed);
      ("target", Obs_json.Int r.vr_target);
      ("completed", Obs_json.Int r.vr_completed);
      ("verified", Obs_json.Int r.vr_verified);
      ("cert_failures", Obs_json.Int r.vr_cert_failures);
      ("reads", Obs_json.Int r.vr_reads);
      ("fast_hits", Obs_json.Int r.vr_fast_hits);
      ("fallbacks", Obs_json.Int r.vr_fallbacks);
      ("retries", Obs_json.Int r.vr_retries);
      ("timeouts", Obs_json.Int r.vr_timeouts);
      ("rejected", Obs_json.Int r.vr_rejected);
      ("ordered", Obs_json.Int r.vr_ordered);
      ("executed", Obs_json.Int r.vr_executed);
      ("dup_suppressed", Obs_json.Int r.vr_dup_suppressed);
      ("log_peak", Obs_json.Int r.vr_log_peak);
      ("victim", Obs_json.Int r.vr_victim);
      ("safety", Obs_json.Int (Oracle.count_safety r.vr_violations));
      ("liveness", Obs_json.Int (Oracle.count_liveness r.vr_violations));
      ("steps", Obs_json.Int r.vr_steps);
      ("clock", Obs_json.Float r.vr_clock);
    ]

let steps_total rep = sum (fun r -> r.vr_steps) rep

(* Deterministic throughput: completions per thousand simulator steps.
   Wall-clock requests/sec depend on the host and are derived by readers
   from [wall_time_s]; regression gating uses this one. *)
let requests_per_kstep rep =
  let steps = steps_total rep in
  if steps = 0 then 0.0
  else 1000.0 *. float_of_int (completed_total rep) /. float_of_int steps

let fastpath_rate rep =
  let reads = reads_total rep in
  if reads = 0 then 0.0
  else float_of_int (fast_hits_total rep) /. float_of_int reads

let to_json ~id ~wall rep =
  Obs_json.Obj
    [
      ("experiment", Obs_json.Str id);
      ("schema", Obs_json.Str schema);
      ("wall_time_s", Obs_json.Float wall);
      ("config", config_json rep.config);
      ("runs", Obs_json.Int (List.length rep.results));
      ( "requests",
        Obs_json.Obj
          [
            ("target", Obs_json.Int (target_total rep));
            ("completed", Obs_json.Int (completed_total rep));
            ("verified", Obs_json.Int (sum (fun r -> r.vr_verified) rep));
            ("cert_failures", Obs_json.Int (cert_failures_total rep));
          ] );
      ( "fastpath",
        Obs_json.Obj
          [
            ("reads", Obs_json.Int (reads_total rep));
            ("hits", Obs_json.Int (fast_hits_total rep));
            ("fallbacks", Obs_json.Int (sum (fun r -> r.vr_fallbacks) rep));
            ("rate", Obs_json.Float (fastpath_rate rep));
          ] );
      ( "loss",
        Obs_json.Obj
          [
            ("retries", Obs_json.Int (sum (fun r -> r.vr_retries) rep));
            ("timeouts", Obs_json.Int (sum (fun r -> r.vr_timeouts) rep));
            ("rejected", Obs_json.Int (sum (fun r -> r.vr_rejected) rep));
          ] );
      ( "dedup",
        Obs_json.Obj
          [
            ("ordered", Obs_json.Int (sum (fun r -> r.vr_ordered) rep));
            ("executed", Obs_json.Int (sum (fun r -> r.vr_executed) rep));
            ( "dup_suppressed",
              Obs_json.Int (sum (fun r -> r.vr_dup_suppressed) rep) );
          ] );
      ( "violations",
        Obs_json.Obj
          [
            ("safety", Obs_json.Int (safety_count rep));
            ("liveness", Obs_json.Int (liveness_count rep));
          ] );
      ( "memory",
        Obs_json.Obj
          [
            ("bound", Obs_json.Int rep.config.v_mem_bound);
            ("plain_log_peak", Obs_json.Int (plain_log_peak rep));
            ( "overall_log_peak",
              Obs_json.Int
                (List.fold_left
                   (fun a r -> max a r.vr_log_peak)
                   0 rep.results) );
          ] );
      ( "throughput",
        Obs_json.Obj
          [
            ("steps_total", Obs_json.Int (steps_total rep));
            ("requests_per_kstep", Obs_json.Float (requests_per_kstep rep));
          ] );
      ( "skipped",
        Obs_json.Arr
          (List.map
             (fun (kind, variant, reason) ->
               Obs_json.Obj
                 [
                   ("kind", Obs_json.Str (kind_label kind));
                   ("variant", Obs_json.Str (variant_label variant));
                   ("reason", Obs_json.Str reason);
                 ])
             rep.skipped) );
      ("per_run", Obs_json.Arr (List.map run_json rep.results));
      ("metrics", Obs_registry.snapshot_to_json (Obs.snapshot rep.obs));
    ]

let write ~id ~wall rep =
  let path = out_path id in
  let oc = open_out path in
  output_string oc (Obs_json.to_canonical_string (to_json ~id ~wall rep));
  output_char oc '\n';
  close_out oc;
  path

(* Shape + invariant validator for sintra-svc/1 documents, dispatched
   from the CLI's bench-check like the bench/faults/recov schemas. *)
let validate_json (doc : Obs_json.t) : (unit, string) result =
  let ( let* ) = Result.bind in
  let need kind name conv =
    match Option.bind (Obs_json.member name doc) conv with
    | Some v -> Ok v
    | None -> Error (Printf.sprintf "missing or non-%s member %S" kind name)
  in
  let nested path conv =
    match
      List.fold_left
        (fun acc name -> Option.bind acc (Obs_json.member name))
        (Some doc) path
    with
    | Some v -> conv v
    | None -> None
  in
  let need_nested path =
    match nested path Obs_json.to_int with
    | Some v -> Ok v
    | None ->
      Error
        (Printf.sprintf "missing or non-int member %S"
           (String.concat "." path))
  in
  let* s = need "string" "schema" Obs_json.to_str in
  let* () = if s = schema then Ok () else Error ("unexpected schema " ^ s) in
  let* _ = need "string" "experiment" Obs_json.to_str in
  let* _ = need "float" "wall_time_s" Obs_json.to_float in
  let* runs = need "int" "runs" Obs_json.to_int in
  let* () = if runs > 0 then Ok () else Error "no runs" in
  let* target = need_nested [ "requests"; "target" ] in
  let* completed = need_nested [ "requests"; "completed" ] in
  let* () =
    if completed >= target then Ok ()
    else
      Error
        (Printf.sprintf "only %d of %d requests completed" completed target)
  in
  let* cert_failures = need_nested [ "requests"; "cert_failures" ] in
  let* () =
    if cert_failures = 0 then Ok ()
    else Error (Printf.sprintf "%d certificate failures" cert_failures)
  in
  let* safety = need_nested [ "violations"; "safety" ] in
  let* () =
    if safety = 0 then Ok ()
    else Error (Printf.sprintf "%d safety violations" safety)
  in
  let* reads = need_nested [ "fastpath"; "reads" ] in
  let* hits = need_nested [ "fastpath"; "hits" ] in
  let* () =
    if reads = 0 || hits > 0 then Ok ()
    else Error "read mix present but the fast path never assembled"
  in
  let* bound = need_nested [ "memory"; "bound" ] in
  let* peak = need_nested [ "memory"; "plain_log_peak" ] in
  let* () =
    if peak <= bound then Ok ()
    else
      Error
        (Printf.sprintf "memory not bounded: GC'd log peak %d > bound %d"
           peak bound)
  in
  let* rows =
    match Option.bind (Obs_json.member "per_run" doc) Obs_json.to_list with
    | Some rows -> Ok rows
    | None -> Error "missing or non-array \"per_run\""
  in
  let* () =
    if List.length rows = runs then Ok ()
    else
      Error
        (Printf.sprintf "\"per_run\" has %d rows for %d runs"
           (List.length rows) runs)
  in
  let check_row i row =
    let field name conv =
      match Option.bind (Obs_json.member name row) conv with
      | Some v -> Ok v
      | None ->
        Error (Printf.sprintf "per_run row %d: missing or ill-typed %S" i name)
    in
    let* kind = field "kind" Obs_json.to_str in
    let* () =
      if kind_of_string kind <> None then Ok ()
      else Error (Printf.sprintf "per_run row %d: unknown kind %S" i kind)
    in
    let* variant = field "variant" Obs_json.to_str in
    let* () =
      if variant_of_string variant <> None then Ok ()
      else
        Error (Printf.sprintf "per_run row %d: unknown variant %S" i variant)
    in
    let* seed = field "seed" Obs_json.to_int in
    let* target = field "target" Obs_json.to_int in
    let* completed = field "completed" Obs_json.to_int in
    let* () =
      if completed >= target then Ok ()
      else
        Error
          (Printf.sprintf "per_run row %d (seed %d): %d of %d completed" i
             seed completed target)
    in
    let* cf = field "cert_failures" Obs_json.to_int in
    let* () =
      if cf = 0 then Ok ()
      else
        Error
          (Printf.sprintf "per_run row %d (seed %d): %d cert failures" i seed
             cf)
    in
    let* row_safety = field "safety" Obs_json.to_int in
    if row_safety = 0 then Ok ()
    else
      Error
        (Printf.sprintf "per_run row %d (seed %d): %d safety violations" i
           seed row_safety)
  in
  let rec check_rows i = function
    | [] -> Ok ()
    | row :: rest ->
      let* () = check_row i row in
      check_rows (i + 1) rest
  in
  let* () = check_rows 0 rows in
  (* "skipped" is optional (older artifacts predate it), but a present
     entry must name a known cell and carry a non-empty reason. *)
  match Obs_json.member "skipped" doc with
  | None -> Ok ()
  | Some s -> (
    match Obs_json.to_list s with
    | None -> Error "non-array \"skipped\""
    | Some entries ->
      let check_skip i e =
        let field name =
          match Option.bind (Obs_json.member name e) Obs_json.to_str with
          | Some v -> Ok v
          | None ->
            Error
              (Printf.sprintf "skipped row %d: missing or ill-typed %S" i
                 name)
        in
        let* kind = field "kind" in
        let* () =
          if kind_of_string kind <> None then Ok ()
          else Error (Printf.sprintf "skipped row %d: unknown kind %S" i kind)
        in
        let* variant = field "variant" in
        let* () =
          if variant_of_string variant <> None then Ok ()
          else
            Error
              (Printf.sprintf "skipped row %d: unknown variant %S" i variant)
        in
        let* reason = field "reason" in
        if reason <> "" then Ok ()
        else Error (Printf.sprintf "skipped row %d: empty reason" i)
      in
      let rec check_skips i = function
        | [] -> Ok ()
        | e :: rest ->
          let* () = check_skip i e in
          check_skips (i + 1) rest
      in
      check_skips 0 entries)

(* ---------- summary ---------------------------------------------------- *)

let pp_summary fmt rep =
  let cells = Hashtbl.create 8 in
  let order = ref [] in
  List.iter
    (fun r ->
      let key = (kind_label r.vr_kind, variant_label r.vr_variant) in
      let cell =
        match Hashtbl.find_opt cells key with
        | Some c -> c
        | None ->
          let c = ref [] in
          Hashtbl.add cells key c;
          order := key :: !order;
          c
      in
      cell := r :: !cell)
    rep.results;
  List.iter
    (fun ((kind, variant) as key) ->
      let rs = !(Hashtbl.find cells key) in
      let sum f = List.fold_left (fun a r -> a + f r) 0 rs in
      let completed = sum (fun r -> r.vr_completed) in
      let target = sum (fun r -> r.vr_target) in
      let reads = sum (fun r -> r.vr_reads) in
      let hits = sum (fun r -> r.vr_fast_hits) in
      let safety =
        List.fold_left
          (fun a r -> a + Oracle.count_safety r.vr_violations)
          0 rs
      in
      Format.fprintf fmt
        "%-10s %-12s %5d/%-5d done  fast %4d/%-4d  retry %4d  timeout %3d  dup %3d  peak %3d  safety %d%s@."
        kind variant completed target hits reads
        (sum (fun r -> r.vr_retries))
        (sum (fun r -> r.vr_timeouts))
        (sum (fun r -> r.vr_dup_suppressed))
        (List.fold_left (fun a r -> max a r.vr_log_peak) 0 rs)
        safety
        (if safety > 0 then "  << SAFETY VIOLATION" else ""))
    (List.rev !order);
  List.iter
    (fun (kind, variant, reason) ->
      Format.fprintf fmt "%-10s %-12s skipped: %s@." (kind_label kind)
        (variant_label variant) reason)
    rep.skipped;
  Format.fprintf fmt
    "total: %d runs, %d/%d completed, fast-path rate %.2f, %.2f req/kstep, GC'd log peak %d (bound %d), %d safety violations@."
    (List.length rep.results) (completed_total rep) (target_total rep)
    (fastpath_rate rep) (requests_per_kstep rep) (plain_log_peak rep)
    rep.config.v_mem_bound (safety_count rep)
