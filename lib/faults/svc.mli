(** Sustained-load service campaigns: closed-loop clients driving the
    CA / directory / notary services through the full request pipeline
    (ordered submissions, read-only fast path, resend-based loss
    recovery) with certificate, dedup and memory oracles and a
    machine-readable BENCH_SVC report.

    Each run deploys one service kind over the appropriate broadcast
    flavour (notary over secure causal, the rest over plain atomic
    broadcast with checkpoint GC), attaches a small fleet of clients in
    closed loop — every client keeps a bounded window of requests in
    flight until its quota of completed reply certificates is met — and
    mixes reads and writes over a bounded entity space so the read-only
    fast path actually serves cached state.  Variants re-run the same
    workload under lossy chaos with an ARQ engine link, and under a
    crash mid-campaign followed by {!Service.revive}. *)

type service_kind = Ca_svc | Directory_svc | Notary_svc

val kind_label : service_kind -> string
(** ["ca"] / ["directory"] / ["notary"]. *)

val kind_of_string : string -> service_kind option

type variant =
  | Benign  (** no faults *)
  | Drop_arq  (** lossy chaos on every link; ARQ endpoints for engine
                  traffic; clients survive on protocol-level resends *)
  | Crash_rejoin
      (** one replica hard-crashes mid-campaign and is revived via
          certified state transfer; Plain-mode kinds only *)

val variant_label : variant -> string
(** ["benign"] / ["drop-arq"] / ["crash-rejoin"]. *)

val variant_of_string : string -> variant option

val variants_for : service_kind -> variant list -> variant list
(** Filter a variant sweep down to what the kind supports: the notary
    runs over secure causal broadcast, which has no recovery wrapper, so
    [Crash_rejoin] is dropped for it. *)

type config = {
  v_seeds : int;
  v_seed_base : int;
  v_n : int;
  v_t : int;
  v_rsa_bits : int;
  v_group_bits : int;
  v_requests : int;  (** completed certificates per run, all clients *)
  v_clients : int;
  v_window : int;  (** per-client in-flight bound (closed loop) *)
  v_read_frac : float;  (** fraction of submissions routed read-only *)
  v_keyspace : int;  (** entity-space bound, so reads hit prior writes *)
  v_interval : int;  (** checkpoint period for Plain kinds (GC on) *)
  v_drop : float;  (** chaos drop rate for the [Drop_arq] variant *)
  v_abc_policy : Abc.policy;
  v_link : Link.policy;
  v_down_frac : float;  (** crash when progress >= this fraction *)
  v_up_frac : float;  (** revive when progress >= this fraction *)
  v_poll : float;  (** monitor poll period, virtual time *)
  v_kinds : service_kind list;
  v_variants : variant list;
  v_max_steps : int;
  v_mem_bound : int;  (** acceptance bound on GC'd delivered-log peak *)
}

val default_config :
  ?seeds:int ->
  ?seed_base:int ->
  ?n:int ->
  ?t:int ->
  ?rsa_bits:int ->
  ?group_bits:int ->
  ?requests:int ->
  ?clients:int ->
  ?window:int ->
  ?read_frac:float ->
  ?keyspace:int ->
  ?interval:int ->
  ?drop:float ->
  ?abc_policy:Abc.policy ->
  ?link:Link.policy ->
  ?down_frac:float ->
  ?up_frac:float ->
  ?poll:float ->
  ?kinds:service_kind list ->
  ?variants:variant list ->
  ?max_steps:int ->
  ?mem_bound:int ->
  unit ->
  config

type run_result = {
  vr_kind : service_kind;
  vr_variant : variant;
  vr_seed : int;
  vr_target : int;  (** the run's completion quota *)
  vr_completed : int;  (** certificates delivered to callbacks *)
  vr_verified : int;  (** of those, re-verified by the harness *)
  vr_cert_failures : int;  (** harness re-checks failed + client internal *)
  vr_reads : int;  (** submissions routed through {!Service.Client.query} *)
  vr_fast_hits : int;
  vr_fallbacks : int;
  vr_retries : int;
  vr_timeouts : int;  (** abandoned requests (the loop re-submits) *)
  vr_rejected : int;  (** forged/ill-bound replies clients dropped *)
  vr_ordered : int;  (** sum over never-crashed replicas *)
  vr_executed : int;
  vr_dup_suppressed : int;
  vr_log_peak : int;  (** max delivered-log high-water across replicas *)
  vr_victim : int;  (** crashed replica, or -1 *)
  vr_violations : Oracle.violation list;
  vr_steps : int;
  vr_clock : float;  (** virtual completion time *)
}

type env

val prepare : config -> env
(** Deal the shared keyring once (dealing dominates setup cost). *)

val env_obs : env -> Obs.t

val run_one :
  env -> config -> kind:service_kind -> variant:variant -> seed:int ->
  run_result
(** One seeded campaign run; see the module header for the shape. *)

type report = {
  config : config;
  results : run_result list;  (** in execution order *)
  skipped : (service_kind * variant * string) list;
      (** configured cells the sweep refused, with the reason (the
          notary's secure causal broadcast has no recovery wrapper, so
          it cannot host crash-rejoin); surfaced in the summary and the
          JSON artifact rather than silently shrinking the matrix *)
  obs : Obs.t;
}

val run : ?progress:(int * int -> unit) -> config -> report
(** The full sweep: kinds x supported variants x seeds. *)

val safety_count : report -> int
val liveness_count : report -> int
val completed_total : report -> int
val target_total : report -> int
val cert_failures_total : report -> int
val fast_hits_total : report -> int
val reads_total : report -> int

val plain_log_peak : report -> int
(** Max delivered-log high-water across runs of checkpointed (Plain)
    kinds — the bounded-memory evidence the validator gates on. *)

val ok : report -> bool
(** Every run met its quota, every accepted certificate verified, no
    safety violations, fast path exercised, GC'd log peak within
    [v_mem_bound]. *)

(** {2 Report output} *)

val schema : string
(** ["sintra-svc/1"]. *)

val out_path : string -> string
(** [out_path id] is ["BENCH_SVC_<id>.json"] — except the conventional
    [id = "svc"], which maps to plain ["BENCH_SVC.json"]. *)

val to_json : id:string -> wall:float -> report -> Obs_json.t
val write : id:string -> wall:float -> report -> string

val validate_json : Obs_json.t -> (unit, string) result
(** Shape + invariant checks for a sintra-svc/1 document: schema and
    required members present, all quotas met, zero certificate failures,
    zero safety violations, fast path non-trivially exercised, and the
    checkpointed log peak within the recorded memory bound. *)

val pp_summary : Format.formatter -> report -> unit
