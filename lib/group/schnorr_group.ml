(* Schnorr group: the subgroup of prime order [q] of Z_p^*, for a safe
   prime p = 2q + 1.

   This is the discrete-log setting used by the threshold coin of Cachin,
   Kursawe and Shoup and by the Shoup-Gennaro TDH2 threshold cryptosystem.
   The group of quadratic residues mod p has prime order q, so hashing
   into it is simply squaring, and every non-unit element is a
   generator. *)

module B = Bignum

type params = { p : B.t; q : B.t; g : B.t }

type elt = B.t
(* Invariant: an [elt] is a quadratic residue mod p, i.e. x^q = 1. *)

let params_equal a b = B.equal a.p b.p && B.equal a.q b.q && B.equal a.g b.g

let generate ?(bits = 128) rng : params =
  let p, q = Primes.random_safe_prime rng ~bits in
  (* 4 = 2^2 is a quadratic residue and not 1, hence a generator of the
     order-q subgroup. *)
  let g = B.erem (B.of_int 4) p in
  { p; q; g }

(* Shared test/bench parameter sets, memoized per bit size so that suites
   do not regenerate safe primes repeatedly. *)
let default_cache : (int, params) Hashtbl.t = Hashtbl.create 4

let default ?(bits = 128) () : params =
  match Hashtbl.find_opt default_cache bits with
  | Some ps -> ps
  | None ->
    let ps = generate ~bits (Prng.create ~seed:(0x5EC5E7 + bits)) in
    Hashtbl.add default_cache bits ps;
    ps

let one (_ : params) : elt = B.one
let generator ps : elt = ps.g
let elt_equal (a : elt) (b : elt) = B.equal a b

let is_element ps (x : B.t) : bool =
  B.sign x > 0 && B.lt x ps.p
  && B.equal (B.pow_mod ~base:x ~exp:ps.q ~modulus:ps.p) B.one

let mul ps (a : elt) (b : elt) : elt = B.mul_mod a b ps.p

let exp ps (a : elt) (e : B.t) : elt =
  B.pow_mod ~base:a ~exp:(B.erem e ps.q) ~modulus:ps.p

let exp_g ps (e : B.t) : elt = exp ps ps.g e

let inv ps (a : elt) : elt =
  match B.inv_mod a ps.p with
  | Some i -> i
  | None -> invalid_arg "Schnorr_group.inv: not invertible"

let div ps (a : elt) (b : elt) : elt = mul ps a (inv ps b)

let elt_to_bytes ps (a : elt) : string =
  B.to_bytes_be ~len:((B.numbits ps.p + 7) / 8) a

let elt_of_bytes ps (s : string) : elt option =
  let x = B.of_bytes_be s in
  if is_element ps x then Some x else None

(* Hash arbitrary strings into the group: reduce mod p, then square.
   Squaring maps onto the quadratic residues, i.e. into the subgroup. *)
let hash_to_elt ps ~domain (parts : string list) : elt =
  Obs_crypto.hash_to_group ();
  let x = Ro.hash_to_bignum_below ~domain parts ps.p in
  let x = if B.is_zero x then B.one else x in
  B.mul_mod x x ps.p

(* Random exponent in Z_q. *)
let random_exponent ps rng : B.t = Prng.bignum_below rng ps.q

(* Hash group elements and strings to a challenge in Z_q (Fiat-Shamir). *)
let hash_to_exponent ps ~domain (parts : string list) : B.t =
  Ro.hash_to_bignum_below ~domain parts ps.q

let pp_params fmt ps =
  Format.fprintf fmt "p=%s (%d bits), q=%s, g=%s" (B.to_string ps.p)
    (B.numbits ps.p) (B.to_string ps.q) (B.to_string ps.g)
