(* Schnorr group: the subgroup of prime order [q] of Z_p^*, for a safe
   prime p = 2q + 1.

   This is the discrete-log setting used by the threshold coin of Cachin,
   Kursawe and Shoup and by the Shoup-Gennaro TDH2 threshold cryptosystem.
   The group of quadratic residues mod p has prime order q, so hashing
   into it is simply squaring, and every non-unit element is a
   generator.

   Exponentiation fast paths: [params] carries a small cache of
   fixed-base comb tables.  A table for base b stores b^(d * 16^i) for
   every 4-bit window position i and digit d, so an exponentiation by a
   prepared base costs at most numbits(q)/4 modular multiplications and
   no squarings at all.  Unprepared bases go through
   [Bignum.pow_mod] (Montgomery-windowed for the odd prime p), and the
   double/multi-exponentiations fall back to the shared-squaring-chain
   kernels in [Bignum]. *)

module B = Bignum

type table = B.t array array
(* tbl.(i).(d-1) = base^(d * 16^i) mod p, for d in 1..15.  Row count is
   ceil(numbits q / 4): exponents are always reduced mod q first. *)

type cache = { mutable tables : (B.t * table) list }
(* Move-to-front association list keyed by the base element.  Protocols
   exponentiate a handful of bases (g, the coin/TDH2 hash bases, leaf
   public keys), so a short list beats a hash table here. *)

type params = { p : B.t; q : B.t; g : B.t; cache : cache }

type elt = B.t
(* Invariant: an [elt] is a quadratic residue mod p, i.e. x^q = 1. *)

let params_equal a b = B.equal a.p b.p && B.equal a.q b.q && B.equal a.g b.g

let unsafe_params ~p ~q ~g : params = { p; q; g; cache = { tables = [] } }

let generate ?(bits = 128) rng : params =
  let p, q = Primes.random_safe_prime rng ~bits in
  (* 4 = 2^2 is a quadratic residue and not 1, hence a generator of the
     order-q subgroup. *)
  let g = B.erem (B.of_int 4) p in
  unsafe_params ~p ~q ~g

(* Shared test/bench parameter sets, memoized per bit size so that suites
   do not regenerate safe primes repeatedly.  Memoization also shares the
   fixed-base table cache across every user of the same size. *)
let default_cache : (int, params) Hashtbl.t = Hashtbl.create 4

let default ?(bits = 128) () : params =
  match Hashtbl.find_opt default_cache bits with
  | Some ps -> ps
  | None ->
    let ps = generate ~bits (Prng.create ~seed:(0x5EC5E7 + bits)) in
    Hashtbl.add default_cache bits ps;
    ps

let one (_ : params) : elt = B.one
let generator ps : elt = ps.g
let elt_equal (a : elt) (b : elt) = B.equal a b

let is_element ps (x : B.t) : bool =
  B.sign x > 0 && B.lt x ps.p
  && B.equal (B.pow_mod ~base:x ~exp:ps.q ~modulus:ps.p) B.one

let mul ps (a : elt) (b : elt) : elt = B.mul_mod a b ps.p

(* ------------------------------------------------------------------ *)
(* Fixed-base comb tables                                              *)
(* ------------------------------------------------------------------ *)

let window_bits = 4
(* Enough slots for a deployment's long-lived bases: the generator, the
   TDH2 g', and the leaf verification keys of a sharing (batch
   verification exponentiates those directly), with headroom for the
   churning per-round coin bases. *)
let max_tables = 48

let find_table (c : cache) (base : elt) : table option =
  let rec go acc = function
    | [] -> None
    | ((b, t) as hd) :: tl ->
      if B.equal b base then begin
        c.tables <- hd :: List.rev_append acc tl;
        Some t
      end
      else go (hd :: acc) tl
  in
  go [] c.tables

let build_table ps (base : elt) : table =
  let rows = (B.numbits ps.q + window_bits - 1) / window_bits in
  let tbl = Array.make (max rows 1) [||] in
  let cur = ref (B.erem base ps.p) in
  for i = 0 to Array.length tbl - 1 do
    let row = Array.make 15 B.one in
    row.(0) <- !cur;
    for d = 1 to 14 do
      row.(d) <- B.mul_mod row.(d - 1) !cur ps.p
    done;
    tbl.(i) <- row;
    (* cur^16 = row.(14) * cur: the table builds itself with plain
       multiplications, no squarings. *)
    cur := B.mul_mod row.(14) !cur ps.p
  done;
  tbl

let prepare_base ps (base : elt) : unit =
  match find_table ps.cache base with
  | Some _ -> ()
  | None ->
    let t = build_table ps base in
    let ts = (base, t) :: ps.cache.tables in
    ps.cache.tables <- List.filteri (fun i _ -> i < max_tables) ts

(* Exponent digit i (4 bits), for an exponent already reduced mod q. *)
let digit (e : B.t) (i : int) : int =
  let lo = i * window_bits in
  (if B.testbit e lo then 1 else 0)
  lor (if B.testbit e (lo + 1) then 2 else 0)
  lor (if B.testbit e (lo + 2) then 4 else 0)
  lor (if B.testbit e (lo + 3) then 8 else 0)

let table_exp ps (tbl : table) (e : B.t) : elt =
  Obs_crypto.fixed_base_exp ();
  let nwin = (B.numbits e + window_bits - 1) / window_bits in
  let acc = ref B.one in
  for i = 0 to nwin - 1 do
    let d = digit e i in
    if d <> 0 then acc := B.mul_mod !acc tbl.(i).(d - 1) ps.p
  done;
  !acc

(* ------------------------------------------------------------------ *)
(* Exponentiation entry points                                         *)
(* ------------------------------------------------------------------ *)

let exp ps (a : elt) (e : B.t) : elt =
  let e = B.erem e ps.q in
  match find_table ps.cache a with
  | Some tbl -> table_exp ps tbl e
  | None -> B.pow_mod ~base:a ~exp:e ~modulus:ps.p

(* The group generator is exponentiated on every share, proof and
   signature, so its table is built eagerly on first use. *)
let exp_g ps (e : B.t) : elt =
  prepare_base ps ps.g;
  exp ps ps.g e

let exp2 ps (a : elt) (x : B.t) (b : elt) (y : B.t) : elt =
  let x = B.erem x ps.q and y = B.erem y ps.q in
  match (find_table ps.cache a, find_table ps.cache b) with
  | Some ta, Some tb -> mul ps (table_exp ps ta x) (table_exp ps tb y)
  | Some ta, None ->
    mul ps (table_exp ps ta x) (B.pow_mod ~base:b ~exp:y ~modulus:ps.p)
  | None, Some tb ->
    mul ps (B.pow_mod ~base:a ~exp:x ~modulus:ps.p) (table_exp ps tb y)
  | None, None -> B.pow2_mod ~b1:a ~e1:x ~b2:b ~e2:y ~modulus:ps.p

let multi_exp ps (pairs : (elt * B.t) list) : elt =
  let pairs = List.map (fun (b, e) -> (b, B.erem e ps.q)) pairs in
  (* Prepared bases go through their tables; the rest share one
     interleaved squaring chain. *)
  let tabled, rest =
    List.fold_left
      (fun (t, r) (b, e) ->
        match find_table ps.cache b with
        | Some tbl -> ((tbl, e) :: t, r)
        | None -> (t, (b, e) :: r))
      ([], []) pairs
  in
  let acc =
    List.fold_left
      (fun acc (tbl, e) -> mul ps acc (table_exp ps tbl e))
      B.one tabled
  in
  match rest with
  | [] -> B.erem acc ps.p
  | [ (b, e) ] -> mul ps acc (B.pow_mod ~base:b ~exp:e ~modulus:ps.p)
  | _ -> mul ps acc (B.pow_multi_mod rest ~modulus:ps.p)

let inv ps (a : elt) : elt =
  match B.inv_mod a ps.p with
  | Some i -> i
  | None -> invalid_arg "Schnorr_group.inv: not invertible"

let div ps (a : elt) (b : elt) : elt = mul ps a (inv ps b)

let elt_to_bytes ps (a : elt) : string =
  B.to_bytes_be ~len:((B.numbits ps.p + 7) / 8) a

let elt_of_bytes ps (s : string) : elt option =
  let x = B.of_bytes_be s in
  if is_element ps x then Some x else None

(* Hash arbitrary strings into the group: reduce mod p, then square.
   Squaring maps onto the quadratic residues, i.e. into the subgroup. *)
let hash_to_elt ps ~domain (parts : string list) : elt =
  Obs_crypto.hash_to_group ();
  let x = Ro.hash_to_bignum_below ~domain parts ps.p in
  let x = if B.is_zero x then B.one else x in
  B.mul_mod x x ps.p

(* Random exponent in Z_q. *)
let random_exponent ps rng : B.t = Prng.bignum_below rng ps.q

(* Hash group elements and strings to a challenge in Z_q (Fiat-Shamir). *)
let hash_to_exponent ps ~domain (parts : string list) : B.t =
  Ro.hash_to_bignum_below ~domain parts ps.q

let pp_params fmt ps =
  Format.fprintf fmt "p=%s (%d bits), q=%s, g=%s" (B.to_string ps.p)
    (B.numbits ps.p) (B.to_string ps.q) (B.to_string ps.g)
