(** Schnorr group: prime-order-[q] subgroup of Z{_p}{^*} for a safe prime
    [p = 2q + 1] — the discrete-log setting of the threshold coin (Cachin,
    Kursawe & Shoup) and of the Shoup–Gennaro TDH2 cryptosystem. *)

type cache
(** Mutable per-params cache of fixed-base exponentiation tables; opaque
    to callers, populated lazily by {!prepare_base} / {!exp_g}. *)

type params = { p : Bignum.t; q : Bignum.t; g : Bignum.t; cache : cache }

type elt = Bignum.t
(** A quadratic residue mod [p]; treat as abstract, validate foreign
    values with {!is_element} / {!elt_of_bytes}. *)

val params_equal : params -> params -> bool

val generate : ?bits:int -> Prng.t -> params
(** Fresh group parameters with a [bits]-bit safe prime (default 128;
    toy-sized for simulation speed — all algorithms are size-agnostic). *)

val default : ?bits:int -> unit -> params
(** Deterministic, memoized parameters shared by tests and benches. *)

val unsafe_params : p:Bignum.t -> q:Bignum.t -> g:Bignum.t -> params
(** Wrap raw values as [params] with an empty table cache and {e no
    validation whatsoever} — for benchmarks that need arbitrary-size
    moduli without paying for safe-prime generation.  Never use with
    values received from another party. *)

val one : params -> elt
val generator : params -> elt
val elt_equal : elt -> elt -> bool

val is_element : params -> Bignum.t -> bool
(** Subgroup membership check ([x{^q} = 1 mod p]); must be applied to any
    value received from another (possibly corrupted) party. *)

val mul : params -> elt -> elt -> elt

val exp : params -> elt -> Bignum.t -> elt
(** [exp ps a e] is [a^e] with the exponent reduced mod [q].  Bases
    registered with {!prepare_base} are served from their fixed-base
    table (no squarings); others go through [Bignum.pow_mod]. *)

val exp_g : params -> Bignum.t -> elt
(** Like [exp ps ps.g], but builds the generator's fixed-base table on
    first use. *)

val prepare_base : params -> elt -> unit
(** Build (idempotently) a fixed-base table for [base], so subsequent
    {!exp} / {!exp2} / {!multi_exp} calls on it cost ~numbits(q)/4
    multiplications and no squarings.  Worth it from roughly three
    exponentiations on the same base; the cache keeps the most recently
    used handful of bases. *)

val exp2 : params -> elt -> Bignum.t -> elt -> Bignum.t -> elt
(** [exp2 ps a x b y = mul ps (exp ps a x) (exp ps b y)], computed with
    fixed-base tables where available and a shared squaring chain
    (Shamir's trick) otherwise — the shape of every DLEQ/Schnorr
    verification equation [g^z * h^-c]. *)

val multi_exp : params -> (elt * Bignum.t) list -> elt
(** Product of [base^exp] over the list (empty product is [one]), using
    fixed-base tables where available and one interleaved squaring
    chain (Straus) for the rest — the shape of Feldman share
    verification. *)

val inv : params -> elt -> elt
val div : params -> elt -> elt -> elt
val elt_to_bytes : params -> elt -> string
val elt_of_bytes : params -> string -> elt option

val hash_to_elt : params -> domain:string -> string list -> elt
(** Random oracle into the group (reduce then square). *)

val random_exponent : params -> Prng.t -> Bignum.t

val hash_to_exponent : params -> domain:string -> string list -> Bignum.t
(** Random oracle into Z{_q} (Fiat–Shamir challenges). *)

val pp_params : Format.formatter -> params -> unit
