(* Random-oracle helpers: domain separation, unambiguous encoding of
   structured inputs, and hashing into integer ranges.

   Every protocol use of a hash function in the paper's model is a random
   oracle with its own domain (coin names, Fiat-Shamir challenges, TDH2
   key derivation, message digests for signing).  These helpers make each
   use an injective encoding under a distinct tag. *)

(* Length-prefixed concatenation: unambiguous for any list of strings. *)
let encode (parts : string list) : string =
  let buf = Buffer.create 64 in
  List.iter
    (fun p ->
      let n = String.length p in
      for i = 7 downto 0 do
        Buffer.add_char buf (Char.chr ((n lsr (8 * i)) land 0xff))
      done;
      Buffer.add_string buf p)
    parts;
  Buffer.contents buf

let hash ~domain (parts : string list) : string =
  Sha256.digest_list [ encode (domain :: parts) ]

(* Expand to arbitrary length by counter mode over the oracle. *)
let hash_expand ~domain (parts : string list) ~(len : int) : string =
  let seed = hash ~domain parts in
  if len <= 32 then
    (* single counter block; same bytes as one loop iteration *)
    String.sub (Sha256.digest_list [ seed; "0" ]) 0 len
  else begin
    let buf = Buffer.create len in
    let ctr = ref 0 in
    while Buffer.length buf < len do
      Buffer.add_string buf
        (Sha256.digest_list [ seed; string_of_int !ctr ]);
      incr ctr
    done;
    String.sub (Buffer.contents buf) 0 len
  end

(* Hash into [0, bound).  Oversample by 64 bits so the modular reduction
   bias is negligible even for small bounds. *)
let hash_to_bignum_below ~domain (parts : string list) (bound : Bignum.t) :
    Bignum.t =
  if Bignum.sign bound <= 0 then invalid_arg "Ro.hash_to_bignum_below";
  let nbytes = ((Bignum.numbits bound + 7) / 8) + 8 in
  let raw = hash_expand ~domain parts ~len:nbytes in
  Bignum.erem (Bignum.of_bytes_be raw) bound

let hash_to_bit ~domain (parts : string list) : bool =
  Char.code (hash ~domain parts).[0] land 1 = 1

(* One-time pad keystream for hybrid encryption: XOR with an expansion of
   the shared secret.  Symmetric, so it both encrypts and decrypts. *)
let xor_pad ~domain ~(key : string) (data : string) : string =
  let pad = hash_expand ~domain [ key ] ~len:(String.length data) in
  String.init (String.length data) (fun i ->
      Char.chr (Char.code data.[i] lxor Char.code pad.[i]))
