(* SHA-256 (FIPS 180-4), pure OCaml.

   Words are kept in native ints masked to 32 bits; on a 64-bit platform
   all intermediate sums fit without overflow.  This instantiates the
   random oracles required by the threshold coin, the TDH2 cryptosystem
   and the Fiat-Shamir proofs. *)

let word_mask = 0xFFFFFFFF

let k =
  [| 0x428a2f98; 0x71374491; 0xb5c0fbcf; 0xe9b5dba5; 0x3956c25b; 0x59f111f1;
     0x923f82a4; 0xab1c5ed5; 0xd807aa98; 0x12835b01; 0x243185be; 0x550c7dc3;
     0x72be5d74; 0x80deb1fe; 0x9bdc06a7; 0xc19bf174; 0xe49b69c1; 0xefbe4786;
     0x0fc19dc6; 0x240ca1cc; 0x2de92c6f; 0x4a7484aa; 0x5cb0a9dc; 0x76f988da;
     0x983e5152; 0xa831c66d; 0xb00327c8; 0xbf597fc7; 0xc6e00bf3; 0xd5a79147;
     0x06ca6351; 0x14292967; 0x27b70a85; 0x2e1b2138; 0x4d2c6dfc; 0x53380d13;
     0x650a7354; 0x766a0abb; 0x81c2c92e; 0x92722c85; 0xa2bfe8a1; 0xa81a664b;
     0xc24b8b70; 0xc76c51a3; 0xd192e819; 0xd6990624; 0xf40e3585; 0x106aa070;
     0x19a4c116; 0x1e376c08; 0x2748774c; 0x34b0bcb5; 0x391c0cb3; 0x4ed8aa4a;
     0x5b9cca4f; 0x682e6ff3; 0x748f82ee; 0x78a5636f; 0x84c87814; 0x8cc70208;
     0x90befffa; 0xa4506ceb; 0xbef9a3f7; 0xc67178f2 |]

type ctx = { h : int array; block : Bytes.t; mutable fill : int; mutable total : int }
(* [block] holds the sub-block tail between feeds; full blocks compress
   straight out of the input string, uncopied. *)

let init () =
  { h =
      [| 0x6a09e667; 0xbb67ae85; 0x3c6ef372; 0xa54ff53a; 0x510e527f;
         0x9b05688c; 0x1f83d9ab; 0x5be0cd19 |];
    block = Bytes.create 64;
    fill = 0;
    total = 0 }

(* One message schedule buffer, reused across blocks: [compress] is the
   single hottest loop of the whole stack (every Fiat-Shamir challenge,
   coin name and batch coefficient goes through it), so it avoids
   per-block allocation and bounds checks, and spells the rotations out
   inline.  Not re-entrant, which SHA-256 chaining never needs. *)
let sched = Array.make 64 0

let compress (h : int array) (block : string) (off : int) =
  let w = sched in
  for i = 0 to 15 do
    let o = off + (4 * i) in
    Array.unsafe_set w i
      ((Char.code (String.unsafe_get block o) lsl 24)
      lor (Char.code (String.unsafe_get block (o + 1)) lsl 16)
      lor (Char.code (String.unsafe_get block (o + 2)) lsl 8)
      lor Char.code (String.unsafe_get block (o + 3)))
  done;
  for i = 16 to 63 do
    let x = Array.unsafe_get w (i - 15) in
    let s0 =
      (((x lsr 7) lor (x lsl 25)) lxor ((x lsr 18) lor (x lsl 14))
      lxor (x lsr 3))
      land word_mask
    in
    let y = Array.unsafe_get w (i - 2) in
    let s1 =
      (((y lsr 17) lor (y lsl 15)) lxor ((y lsr 19) lor (y lsl 13))
      lxor (y lsr 10))
      land word_mask
    in
    Array.unsafe_set w i
      ((Array.unsafe_get w (i - 16) + s0 + Array.unsafe_get w (i - 7) + s1)
      land word_mask)
  done;
  let a = ref h.(0) and b = ref h.(1) and c = ref h.(2) and d = ref h.(3) in
  let e = ref h.(4) and f = ref h.(5) and g = ref h.(6) and hh = ref h.(7) in
  for i = 0 to 63 do
    let ev = !e in
    let s1 =
      (((ev lsr 6) lor (ev lsl 26)) lxor ((ev lsr 11) lor (ev lsl 21))
      lxor ((ev lsr 25) lor (ev lsl 7)))
      land word_mask
    in
    let ch = (ev land !f) lxor (lnot ev land !g) in
    let t1 =
      (!hh + s1 + ch + Array.unsafe_get k i + Array.unsafe_get w i)
      land word_mask
    in
    let av = !a in
    let s0 =
      (((av lsr 2) lor (av lsl 30)) lxor ((av lsr 13) lor (av lsl 19))
      lxor ((av lsr 22) lor (av lsl 10)))
      land word_mask
    in
    let maj = (av land !b) lxor (av land !c) lxor (!b land !c) in
    let t2 = (s0 + maj) land word_mask in
    hh := !g;
    g := !f;
    f := ev;
    e := (!d + t1) land word_mask;
    d := !c;
    c := !b;
    b := av;
    a := (t1 + t2) land word_mask
  done;
  h.(0) <- (h.(0) + !a) land word_mask;
  h.(1) <- (h.(1) + !b) land word_mask;
  h.(2) <- (h.(2) + !c) land word_mask;
  h.(3) <- (h.(3) + !d) land word_mask;
  h.(4) <- (h.(4) + !e) land word_mask;
  h.(5) <- (h.(5) + !f) land word_mask;
  h.(6) <- (h.(6) + !g) land word_mask;
  h.(7) <- (h.(7) + !hh) land word_mask

let feed ctx (s : string) =
  let len = String.length s in
  ctx.total <- ctx.total + len;
  let pos = ref 0 in
  (* top up a partial block first *)
  if ctx.fill > 0 then begin
    let take = min (64 - ctx.fill) len in
    Bytes.blit_string s 0 ctx.block ctx.fill take;
    ctx.fill <- ctx.fill + take;
    pos := take;
    if ctx.fill = 64 then begin
      compress ctx.h (Bytes.unsafe_to_string ctx.block) 0;
      ctx.fill <- 0
    end
  end;
  (* full blocks straight from the input *)
  while len - !pos >= 64 do
    compress ctx.h s !pos;
    pos := !pos + 64
  done;
  if !pos < len then begin
    Bytes.blit_string s !pos ctx.block 0 (len - !pos);
    ctx.fill <- len - !pos
  end

let finalize ctx : string =
  let bitlen = 8 * ctx.total in
  (* Append 0x80, zeros to 56 mod 64, then the 64-bit big-endian length. *)
  let pad = Bytes.make (if ctx.fill < 56 then 64 - ctx.fill else 128 - ctx.fill) '\000' in
  Bytes.set pad 0 '\x80';
  let plen = Bytes.length pad in
  for i = 0 to 7 do
    Bytes.set pad (plen - 8 + i)
      (Char.chr ((bitlen lsr (8 * (7 - i))) land 0xff))
  done;
  feed ctx (Bytes.unsafe_to_string pad);
  assert (ctx.fill = 0);
  String.init 32 (fun i ->
      Char.chr ((ctx.h.(i / 4) lsr (8 * (3 - (i mod 4)))) land 0xff))

let digest (s : string) : string =
  let ctx = init () in
  feed ctx s;
  finalize ctx

let digest_list (parts : string list) : string =
  let ctx = init () in
  List.iter (feed ctx) parts;
  finalize ctx

let to_hex (d : string) : string =
  let buf = Buffer.create (2 * String.length d) in
  String.iter
    (fun c -> Buffer.add_string buf (Printf.sprintf "%02x" (Char.code c)))
    d;
  Buffer.contents buf

let hex (s : string) : string = to_hex (digest s)
