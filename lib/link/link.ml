(* Reliable point-to-point channel layer, interposed between the typed
   protocol transport (Proto_io) and the raw network.

   The paper's architecture (Section 2.1) assumes reliable authenticated
   point-to-point links over a fully asynchronous network; the simulator's
   chaos policies deliberately break that assumption with probabilistic
   message loss.  This layer restores it the way real deployments do: a
   per-peer sliding window of sequenced DATA frames, cumulative plus
   selective ACKs, and timer-driven retransmission with exponential
   backoff and deterministic jitter, so that any message sent between two
   live, eventually-connected parties is delivered exactly once.

   Design points:
   - Frames are polymorphic in the payload type, so the same layer runs
     under the typed simulator ([Stack.deploy ?link]) and — via the
     string instantiation in {!Codec} — over a real byte transport.
   - Delivery is reliable and exactly-once but deliberately NOT ordered:
     the protocols above are asynchronous and tolerate reordering, and
     holding back out-of-order frames would add head-of-line latency the
     model does not require.  Receive state is a cumulative watermark
     plus the (window-bounded) set of out-of-order sequence numbers.
   - The retransmit buffer is bounded: at most [policy.window] unacked
     frames per peer are in flight; further sends queue in a FIFO
     backlog that drains as ACKs arrive.  An unreachable peer therefore
     back-pressures the sender (visible through the [link_buffer_peak]
     gauge and a tagged "backpressure" point) instead of flooding the
     network with an unbounded retransmit set.
   - All randomness (retransmit jitter) comes from a PRNG derived from
     [policy.seed] and the party id, so simulated runs remain exactly
     reproducible and two runs with equal seeds retransmit at equal
     virtual times. *)

type 'm frame =
  | Raw of 'm  (* unsequenced passthrough: link-off traffic, injections *)
  | Data of { seq : int; payload : 'm }
  | Ack of { cum : int; sel : int list }

let raw m = Raw m

let payload = function
  | Raw m | Data { payload = m; _ } -> Some m
  | Ack _ -> None

(* Wire-size estimates matching the {!Codec} link-frame format: magic
   (4) + kind (1), DATA adds seq (8) + length prefix (8), ACK adds cum
   (8) + count (8) + 8 bytes per selective entry.  [Raw] deliberately
   costs exactly the payload estimate, so a link-off deployment reports
   byte-identical metrics to the pre-link transport. *)
let data_overhead = 4 + 1 + 8 + 8

let ack_size sel = 4 + 1 + 8 + 8 + (8 * List.length sel)

let frame_size size = function
  | Raw m -> size m
  | Data { payload; _ } -> data_overhead + size payload
  | Ack { sel; _ } -> ack_size sel

let frame_summary summarize = function
  | Raw m -> summarize m
  | Data { seq; payload } -> Printf.sprintf "data#%d %s" seq (summarize payload)
  | Ack { cum; sel } ->
    Printf.sprintf "ack cum=%d sel=[%s]" cum
      (String.concat "," (List.map string_of_int sel))

(* ---------- policy ---------------------------------------------------- *)

type policy = {
  rto : float;
  backoff : float;
  max_rto : float;
  jitter : float;
  window : int;
  ack_delay : float;
  seed : int;
}

let default_policy =
  { rto = 300.0;
    backoff = 2.0;
    max_rto = 4_000.0;
    jitter = 0.1;
    window = 32;
    ack_delay = 0.0;
    seed = 0x114c }

let validate_policy p =
  let bad fmt = Printf.ksprintf invalid_arg ("Link.policy: " ^^ fmt) in
  if not (p.rto > 0.0) then bad "rto %g must be positive" p.rto;
  if not (p.backoff >= 1.0) then bad "backoff %g must be >= 1" p.backoff;
  if not (p.max_rto >= p.rto) then bad "max_rto %g below rto %g" p.max_rto p.rto;
  if not (p.jitter >= 0.0) then bad "jitter %g must be >= 0" p.jitter;
  if p.window < 1 then bad "window %d must be >= 1" p.window;
  if not (p.ack_delay >= 0.0) then bad "ack_delay %g must be >= 0" p.ack_delay

(* ---------- endpoint state ------------------------------------------- *)

type 'm tx = {
  mutable next_seq : int;  (* next sequence number to assign (from 1) *)
  mutable unacked : (int * 'm) list;  (* oldest first; length <= window *)
  backlog : 'm Queue.t;  (* sends beyond the window, FIFO *)
  mutable rto_cur : float;
  mutable timer_armed : bool;
}

type rx = {
  mutable cum : int;  (* every seq <= cum has been delivered *)
  mutable ooo : int list;  (* received seqs > cum, ascending *)
  mutable ack_armed : bool;  (* a delayed-ack timer is pending *)
}

type 'm t = {
  me : int;
  n : int;
  policy : policy;
  prng : Prng.t;
  txs : 'm tx array;
  rxs : rx array;
  raw_send : int -> 'm frame -> unit;
  timer : delay:float -> (unit -> unit) -> unit;
  mutable deliver : src:int -> 'm -> unit;
  obs : Obs.t;
  c_retransmit : Obs_registry.counter;
  c_dup : Obs_registry.counter;
  c_ack_bytes : Obs_registry.counter;
  g_peak : Obs_registry.gauge;
  (* registry-independent mirrors, for tests and per-endpoint queries *)
  mutable retransmits : int;
  mutable dups : int;
  mutable peak : int;
}

let create ?(obs = Obs.noop) ~policy ~me ~n ~raw_send ~timer ~deliver () =
  validate_policy policy;
  let labels = [ ("layer", "link") ] in
  { me;
    n;
    policy;
    (* Per-party stream: equal (seed, me) pairs yield equal jitter
       draws, hence equal retransmit schedules. *)
    prng = Prng.create ~seed:(policy.seed + (me * 0x9e3779b9));
    txs =
      Array.init n (fun _ ->
          { next_seq = 1;
            unacked = [];
            backlog = Queue.create ();
            rto_cur = policy.rto;
            timer_armed = false });
    rxs = Array.init n (fun _ -> { cum = 0; ooo = []; ack_armed = false });
    raw_send;
    timer;
    deliver;
    obs;
    c_retransmit = Obs.counter obs ~labels "link_retransmit";
    c_dup = Obs.counter obs ~labels "link_dup_suppressed";
    c_ack_bytes = Obs.counter obs ~labels "link_ack_bytes";
    g_peak = Obs.gauge obs ~labels "link_buffer_peak";
    retransmits = 0;
    dups = 0;
    peak = 0 }

let set_deliver t deliver = t.deliver <- deliver

(* ---------- sending side ---------------------------------------------- *)

let jittered_delay t tx =
  tx.rto_cur *. (1.0 +. (t.policy.jitter *. Prng.float t.prng))

let note_buffer t tx =
  let depth = List.length tx.unacked + Queue.length tx.backlog in
  if depth > t.peak then begin
    t.peak <- depth;
    Obs_registry.set_max t.g_peak (float_of_int depth)
  end

let send_data t dst seq m = t.raw_send dst (Data { seq; payload = m })

let rec arm_timer t dst =
  let tx = t.txs.(dst) in
  if not tx.timer_armed then begin
    tx.timer_armed <- true;
    t.timer ~delay:(jittered_delay t tx) (fun () -> on_timer t dst)
  end

and on_timer t dst =
  let tx = t.txs.(dst) in
  tx.timer_armed <- false;
  match tx.unacked with
  | [] -> ()  (* everything acked since arming: channel is idle *)
  | unacked ->
    List.iter (fun (seq, m) -> send_data t dst seq m) unacked;
    let k = List.length unacked in
    t.retransmits <- t.retransmits + k;
    Obs_registry.incr ~by:k t.c_retransmit;
    Obs.point t.obs ~party:t.me ~src:dst ~layer:"link" ~tag:"retransmit"
      ~detail:(Printf.sprintf "peer %d: %d frames, rto %.0f" dst k tx.rto_cur)
      "retransmit";
    tx.rto_cur <- Float.min t.policy.max_rto (tx.rto_cur *. t.policy.backoff);
    arm_timer t dst

(* Admit one payload into the window and put it on the wire. *)
let admit t dst tx m =
  let seq = tx.next_seq in
  tx.next_seq <- seq + 1;
  tx.unacked <- tx.unacked @ [ (seq, m) ];
  send_data t dst seq m;
  arm_timer t dst

let send t dst m =
  if dst < 0 || dst >= t.n then
    (* Slots outside the server set (e.g. simulator client slots) have
       no link endpoint to ack; pass through unsequenced. *)
    t.raw_send dst (Raw m)
  else begin
    let tx = t.txs.(dst) in
    if List.length tx.unacked < t.policy.window then admit t dst tx m
    else begin
      (* Window full: back-pressure.  The payload waits its turn in the
         FIFO backlog; nothing new reaches the wire for this peer until
         an ACK opens the window. *)
      Queue.push m tx.backlog;
      Obs.point t.obs ~party:t.me ~src:dst ~layer:"link" ~tag:"backpressure"
        ~detail:
          (Printf.sprintf "peer %d: window %d full, backlog %d" dst
             t.policy.window (Queue.length tx.backlog))
        "backpressure"
    end;
    note_buffer t tx
  end

let broadcast t m =
  for dst = 0 to t.n - 1 do
    send t dst m
  done

(* ---------- receiving side -------------------------------------------- *)

let send_ack t dst =
  let rx = t.rxs.(dst) in
  let sel = rx.ooo in
  t.raw_send dst (Ack { cum = rx.cum; sel });
  Obs_registry.incr ~by:(ack_size sel) t.c_ack_bytes

let schedule_ack t src =
  if t.policy.ack_delay <= 0.0 then send_ack t src
  else begin
    let rx = t.rxs.(src) in
    if not rx.ack_armed then begin
      rx.ack_armed <- true;
      t.timer ~delay:t.policy.ack_delay (fun () ->
          rx.ack_armed <- false;
          send_ack t src)
    end
  end

let rec insert_sorted x = function
  | [] -> [ x ]
  | y :: rest as l ->
    if x < y then x :: l
    else if x = y then l
    else y :: insert_sorted x rest

let on_data t ~src seq m =
  let rx = t.rxs.(src) in
  if seq <= rx.cum || List.mem seq rx.ooo then begin
    (* Duplicate: the sender missed our ACK (or chaos duplicated the
       frame).  Suppress, but re-ack immediately so retransmission
       stops. *)
    t.dups <- t.dups + 1;
    Obs_registry.incr t.c_dup;
    send_ack t src
  end
  else begin
    rx.ooo <- insert_sorted seq rx.ooo;
    let rec advance () =
      match rx.ooo with
      | s :: rest when s = rx.cum + 1 ->
        rx.cum <- s;
        rx.ooo <- rest;
        advance ()
      | _ -> ()
    in
    advance ();
    (* Exactly-once but unordered: deliver on first receipt. *)
    t.deliver ~src m;
    schedule_ack t src
  end

let on_ack t ~src cum sel =
  let tx = t.txs.(src) in
  let before = List.length tx.unacked in
  tx.unacked <-
    List.filter (fun (seq, _) -> seq > cum && not (List.mem seq sel)) tx.unacked;
  if List.length tx.unacked < before then
    (* Forward progress: the peer is reachable again, reset the backoff. *)
    tx.rto_cur <- t.policy.rto;
  (* Drain the backlog into the freed window. *)
  while
    List.length tx.unacked < t.policy.window
    && not (Queue.is_empty tx.backlog)
  do
    admit t src tx (Queue.pop tx.backlog)
  done;
  if tx.unacked <> [] then arm_timer t src

let handle t ~src frame =
  match frame with
  | Raw m -> t.deliver ~src m
  | Data { seq; payload } ->
    if src >= 0 && src < t.n then on_data t ~src seq payload
    else t.deliver ~src payload  (* sequenced frame from a non-peer slot *)
  | Ack { cum; sel } -> if src >= 0 && src < t.n then on_ack t ~src cum sel

(* ---------- crash-rejoin resynchronization ---------------------------- *)

(* A peer that crashed and came back has lost its endpoint: its fresh tx
   restarts at seq 1, while our rx watermark (and any of its pre-crash
   frames still in flight) remember the dead incarnation.  Naively
   resetting both sides reuses sequence numbers, and a stale in-flight
   DATA frame then occupies a seq the new incarnation will assign — its
   fresh payload would be dup-suppressed and silently lost.  The resync
   below keeps every sequence number monotone instead (TCP-style):

   - Serving side ([prepare_rejoin]): drop all tx state toward the peer
     (its dead incarnation can never ack the old frames, and the
     protocols above re-derive anything that still matters), keep
     [next_seq] so our own numbering never restarts, and fast-forward
     the rx watermark past every seq the dead incarnation could have
     emitted: at most [window] frames beyond the highest we have seen
     were ever in flight, so [maxseen + window] bounds the stale world.
   - Rejoining side ([rejoin]): adopt the resume points the peer
     reported — expect the peer's frames from its [next_seq] (so its
     stale in-flight frames land at or below our watermark and are
     suppressed as the obsolete traffic they are), and start our own
     numbering at the first seq the peer now accepts. *)

let prepare_rejoin t ~peer =
  if peer < 0 || peer >= t.n then invalid_arg "Link.prepare_rejoin";
  let tx = t.txs.(peer) and rx = t.rxs.(peer) in
  tx.unacked <- [];
  Queue.clear tx.backlog;
  tx.rto_cur <- t.policy.rto;
  let maxseen = List.fold_left max rx.cum rx.ooo in
  let restart = maxseen + t.policy.window + 1 in
  rx.cum <- restart - 1;
  rx.ooo <- [];
  (tx.next_seq, restart)

let rejoin t ~peer ~expect ~start =
  if peer < 0 || peer >= t.n then invalid_arg "Link.rejoin";
  if expect >= 1 && start >= 1 then begin
    let rx = t.rxs.(peer) and tx = t.txs.(peer) in
    rx.cum <- max rx.cum (expect - 1);
    rx.ooo <- List.filter (fun s -> s > rx.cum) rx.ooo;
    (* max keeps repeated replies for the same episode idempotent: once
       we have sent at or beyond [start], moving back would reuse seqs. *)
    tx.next_seq <- max tx.next_seq start
  end

(* ---------- introspection --------------------------------------------- *)

let in_flight t dst = List.length t.txs.(dst).unacked
let backlog t dst = Queue.length t.txs.(dst).backlog
let buffer_peak t = t.peak
let retransmits t = t.retransmits
let dup_suppressed t = t.dups
let rto_current t dst = t.txs.(dst).rto_cur
