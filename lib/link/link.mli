(** Reliable point-to-point channel layer: the substrate that realizes
    the paper's Section 2.1 assumption of reliable authenticated links
    on top of a lossy transport.

    Each endpoint keeps, per peer, a sliding window of sequenced DATA
    frames awaiting acknowledgement, retransmitted on a timer with
    exponential backoff and deterministic jitter; receivers suppress
    duplicates (exactly-once delivery, deliberately {e unordered} — the
    asynchronous protocols above tolerate reordering, so there is no
    head-of-line blocking) and answer with cumulative + selective ACKs.

    The retransmit buffer is bounded: at most [window] frames per peer
    are in flight, and further sends wait in a FIFO backlog that drains
    as ACKs arrive — an unreachable peer back-pressures the sender
    (observable via the [link_buffer_peak] gauge and a tagged
    ["backpressure"] observability point) instead of growing the pending
    network without bound.

    All jitter randomness derives from [policy.seed] and the party id:
    equal seeds give equal retransmit schedules, keeping simulated runs
    exactly reproducible.

    Obs integration (registry of the [obs] handle, labels
    [layer=link]): counters [link_retransmit], [link_dup_suppressed],
    [link_ack_bytes]; gauge [link_buffer_peak]; points tagged
    ["retransmit"] / ["backpressure"] when a tracer is installed. *)

type 'm frame =
  | Raw of 'm
      (** unsequenced passthrough — link-off deployments and raw
          injections; delivered directly, never acked or deduplicated *)
  | Data of { seq : int; payload : 'm }  (** sequenced, per (src, dst) *)
  | Ack of { cum : int; sel : int list }
      (** every seq <= [cum] plus each seq in [sel] has been received *)

val raw : 'm -> 'm frame

val payload : 'm frame -> 'm option
(** The carried payload ([None] for ACKs). *)

val frame_size : ('m -> int) -> 'm frame -> int
(** Lift a payload wire-size estimate to frames.  [Raw] costs exactly
    the payload estimate — a link-off deployment reports byte-identical
    metrics to the pre-link transport; DATA/ACK add the {!Codec}
    link-frame header overheads. *)

val frame_summary : ('m -> string) -> 'm frame -> string
(** Lift a payload summary to frames; [Raw] renders exactly as the
    payload. *)

type policy = {
  rto : float;  (** initial retransmission timeout (virtual time) *)
  backoff : float;  (** RTO multiplier per unanswered retransmission *)
  max_rto : float;  (** backoff ceiling *)
  jitter : float;
      (** each armed timer waits [rto * (1 + jitter * u)], [u] uniform
          in [0, 1) from the deterministic per-party stream *)
  window : int;  (** max unacked DATA frames per peer *)
  ack_delay : float;
      (** [> 0]: batch ACKs behind a timer; [0] (default) acks every
          DATA frame immediately.  Duplicates are always re-acked
          immediately. *)
  seed : int;  (** jitter PRNG seed, mixed with the party id *)
}

val default_policy : policy
(** [rto = 300], [backoff = 2], [max_rto = 4000], [jitter = 0.1],
    [window = 32], [ack_delay = 0], [seed = 0x114c]. *)

val validate_policy : policy -> unit
(** @raise Invalid_argument on non-positive [rto]/[window], [backoff]
    below 1, [max_rto] below [rto], or negative [jitter]/[ack_delay]. *)

type 'm t
(** One party's link endpoint: [n] transmit windows and [n] receive
    watermarks, one per peer (including the self-channel). *)

val create :
  ?obs:Obs.t ->
  policy:policy ->
  me:int ->
  n:int ->
  raw_send:(int -> 'm frame -> unit) ->
  timer:(delay:float -> (unit -> unit) -> unit) ->
  deliver:(src:int -> 'm -> unit) ->
  unit ->
  'm t
(** [raw_send] puts a frame on the (lossy) wire; [timer] schedules the
    retransmit/delayed-ack callbacks ({!Proto_io.timer} under
    [Stack.deploy]); [deliver] receives each payload exactly once. *)

val set_deliver : 'm t -> (src:int -> 'm -> unit) -> unit
(** Replace the delivery callback (deployment glue needs this to tie
    the knot between the endpoint and the protocol handler). *)

val send : 'm t -> int -> 'm -> unit
(** Reliably send to a peer.  Peers outside [0, n) (e.g. simulator
    client slots) have no endpoint to ack, so the payload passes
    through as [Raw]. *)

val broadcast : 'm t -> 'm -> unit
(** {!send} to every peer [0 .. n-1], including self. *)

val handle : 'm t -> src:int -> 'm frame -> unit
(** Feed one received frame through the link machinery: [Raw] delivers
    directly, [Data] deduplicates / delivers / acks, [Ack] clears the
    transmit window and drains the backlog. *)

(** {2 Crash-rejoin resynchronization}

    A peer that crashed and came back restarts its endpoint at seq 1
    while the surviving side's watermarks — and any stale in-flight
    frames — remember the dead incarnation; naive resets reuse sequence
    numbers and silently lose the new incarnation's payloads to
    dup-suppression.  These two calls resynchronize a channel pair the
    TCP way: sequence numbers only ever move forward. *)

val prepare_rejoin : 'm t -> peer:int -> int * int
(** Serving side, on a rejoin request from [peer]: drop all transmit
    state toward it (the dead incarnation can never ack the old frames),
    keep our [next_seq] monotone, and fast-forward the receive watermark
    past every seq the dead incarnation could still have in flight (at
    most [window] beyond the highest seen).  Returns
    [(expect, start)]: the peer should expect our frames from [expect]
    (our next_seq) and emit its own from [start].  Call once per rejoin
    episode; a second call invalidates the first episode's [start]. *)

val rejoin : 'm t -> peer:int -> expect:int -> start:int -> unit
(** Rejoining side: adopt a peer's {!prepare_rejoin} resume points —
    expect its frames from [expect] (stale pre-reset traffic lands at or
    below the watermark and is suppressed) and emit our own from
    [start].  Monotone (uses max), so repeated replies for the same
    episode are idempotent; resume points below 1 are ignored as
    malformed. *)

(** {2 Introspection} *)

val in_flight : 'm t -> int -> int
(** Unacked DATA frames currently in flight to a peer ([<= window]). *)

val backlog : 'm t -> int -> int
(** Payloads waiting behind a full window for a peer. *)

val buffer_peak : 'm t -> int
(** Highest [in_flight + backlog] depth seen for any single peer. *)

val retransmits : 'm t -> int
val dup_suppressed : 'm t -> int

val rto_current : 'm t -> int -> float
(** The peer channel's current (possibly backed-off) RTO. *)
