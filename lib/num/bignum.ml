(* Signed arbitrary-precision integers on top of {!Limbs}. *)

type t = { sign : int; mag : int array }
(* Invariant: sign is -1, 0 or 1; sign = 0 iff mag is empty. *)

let make sign mag =
  if Limbs.is_zero mag then { sign = 0; mag = Limbs.zero } else { sign; mag }

let zero = { sign = 0; mag = Limbs.zero }
let one = { sign = 1; mag = [| 1 |] }
let two = { sign = 1; mag = [| 2 |] }

let of_int x =
  if x = 0 then zero
  else if x > 0 then { sign = 1; mag = Limbs.of_int x }
  else { sign = -1; mag = Limbs.of_int (-x) }

let to_int_opt v =
  match Limbs.to_int_opt v.mag with
  | Some m -> Some (v.sign * m)
  | None -> None

let sign v = v.sign
let is_zero v = v.sign = 0
let neg v = { v with sign = -v.sign }
let abs v = if v.sign < 0 then neg v else v

let compare a b =
  if a.sign <> b.sign then Stdlib.compare a.sign b.sign
  else a.sign * Limbs.compare a.mag b.mag

let equal a b = compare a b = 0
let lt a b = compare a b < 0
let leq a b = compare a b <= 0
let geq a b = compare a b >= 0

let add a b =
  if a.sign = 0 then b
  else if b.sign = 0 then a
  else if a.sign = b.sign then make a.sign (Limbs.add a.mag b.mag)
  else begin
    let c = Limbs.compare a.mag b.mag in
    if c = 0 then zero
    else if c > 0 then make a.sign (Limbs.sub a.mag b.mag)
    else make b.sign (Limbs.sub b.mag a.mag)
  end

let sub a b = add a (neg b)

let mul a b =
  if a.sign = 0 || b.sign = 0 then zero
  else make (a.sign * b.sign) (Limbs.mul a.mag b.mag)

let mul_int a x =
  if x = 0 then zero
  else begin
    let xs = if x > 0 then 1 else -1 in
    let ax = abs (of_int x) in
    make (a.sign * xs) (Limbs.mul a.mag ax.mag)
  end

let succ a = add a one
let pred a = sub a one

(* Truncated division (like OCaml's / and mod on int): the remainder has
   the sign of the dividend. *)
let divmod a b =
  if b.sign = 0 then raise Division_by_zero;
  let q, r = Limbs.divmod a.mag b.mag in
  (make (a.sign * b.sign) q, make a.sign r)

let div a b = fst (divmod a b)
let rem a b = snd (divmod a b)

(* Euclidean remainder: result always in [0, |b|). *)
let erem a b =
  let r = rem a b in
  if r.sign < 0 then add r (abs b) else r

let shift_left a k = make a.sign (Limbs.shift_left a.mag k)
let shift_right a k = make a.sign (Limbs.shift_right a.mag k)
let numbits a = Limbs.numbits a.mag
let testbit a i = Limbs.testbit a.mag i
let is_even a = not (testbit a 0)

let rec gcd a b =
  let a = abs a and b = abs b in
  if is_zero b then a else gcd b (rem a b)

(* Extended Euclid: returns (g, u, v) with u*a + v*b = g = gcd(a, b). *)
let egcd a b =
  let rec go r0 r1 u0 u1 v0 v1 =
    if is_zero r1 then (r0, u0, v0)
    else begin
      let q, r = divmod r0 r1 in
      go r1 r u1 (sub u0 (mul q u1)) v1 (sub v0 (mul q v1))
    end
  in
  go a b one zero zero one

(* Jacobi symbol (a/n) for odd positive n, by the binary reciprocity
   algorithm: GCD-style reductions only, no exponentiation.  For a prime
   n this decides quadratic residuosity, which is what makes it the
   cheap subgroup-membership test for Schnorr groups (p = 2q + 1): an
   element lies in the order-q subgroup iff its Jacobi symbol mod p is
   1.  Cost is a handful of divisions — negligible next to the
   [pow_mod] that [x^q = 1] membership testing would spend. *)
let jacobi a n =
  if n.sign <= 0 || is_even n then
    invalid_arg "Bignum.jacobi: modulus must be odd and positive";
  let low3 v = (* v mod 8, for the 2-adic reciprocity rule *)
    (if testbit v 0 then 1 else 0)
    lor (if testbit v 1 then 2 else 0)
    lor (if testbit v 2 then 4 else 0)
  in
  (* Native-int tail: most of the Euclid chain runs on operands that fit
     a machine word, where a division step costs nanoseconds instead of
     a multi-limb divmod.  Same reciprocity rules, int arithmetic. *)
  let rec go_int a n acc =
    if a = 0 then if n = 1 then acc else 0
    else begin
      let tz =
        let rec count a i = if a land 1 = 1 then i else count (a lsr 1) (i + 1) in
        count a 0
      in
      let a = a lsr tz in
      let n8 = n land 7 in
      let acc = if tz land 1 = 1 && (n8 = 3 || n8 = 5) then -acc else acc in
      let acc = if a land 2 = 2 && n land 2 = 2 then -acc else acc in
      go_int (n mod a) a acc
    end
  in
  let to_int v = match to_int_opt v with Some i -> i | None -> assert false in
  let rec go a n acc =
    (* invariant: n odd positive, 0 <= a < n *)
    if is_zero a then if equal n one then acc else 0
    else if numbits n <= 62 then go_int (to_int a) (to_int n) acc
    else begin
      (* strip factors of two: (2/n) = -1 iff n = ±3 mod 8 *)
      let tz =
        let rec count i = if testbit a i then i else count (i + 1) in
        count 0
      in
      let a = if tz = 0 then a else shift_right a tz in
      let n8 = low3 n in
      let acc =
        if tz land 1 = 1 && (n8 = 3 || n8 = 5) then -acc else acc
      in
      (* reciprocity: flip sign iff both a, n = 3 mod 4 *)
      let acc =
        if testbit a 1 && testbit n 1 then -acc else acc
      in
      go (erem n a) a acc
    end
  in
  go (erem a n) n 1

let add_mod a b m = erem (add a b) m
let sub_mod a b m = erem (sub a b) m
let mul_mod a b m = erem (mul a b) m

let inv_mod a m =
  let g, u, _ = egcd (erem a m) m in
  if equal g one then Some (erem u m) else None

(* Barrett reduction: for a fixed modulus m of k limbs, precompute
   mu = floor(base^(2k) / m); then any x < base^(2k) reduces with two
   multiplications instead of a long division:

     q = ((x >> (k-1) limbs) * mu) >> (k+1) limbs
     r = x - q*m,   then at most two final subtractions of m.

   This speeds up modular exponentiation (the cost centre of the entire
   crypto stack) by amortizing one division over the ~1.5 * numbits
   multiplications of a pow_mod. *)
module Barrett = struct
  type ctx = { m : t; k_limbs : int; mu : t }

  let limb_bits = 31  (* Limbs.base_bits *)

  let create (m : t) : ctx =
    let k_limbs = (numbits m + limb_bits - 1) / limb_bits in
    let b2k = shift_left one (2 * k_limbs * limb_bits) in
    { m; k_limbs; mu = div b2k m }

  let reduce (ctx : ctx) (x : t) : t =
    (* precondition: 0 <= x < base^(2k) *)
    let q1 = shift_right x ((ctx.k_limbs - 1) * limb_bits) in
    let q2 = mul q1 ctx.mu in
    let q3 = shift_right q2 ((ctx.k_limbs + 1) * limb_bits) in
    let r = sub x (mul q3 ctx.m) in
    let r = if geq r ctx.m then sub r ctx.m else r in
    let r = if geq r ctx.m then sub r ctx.m else r in
    if r.sign < 0 || geq r ctx.m then erem x ctx.m (* safety net *) else r

  let mul_mod (ctx : ctx) a b = reduce ctx (mul a b)
end

(* An odd modulus of at least two limbs goes through Montgomery REDC;
   below that the plain ladder's constant factor wins, and the context
   setup would not amortize over the few squarings of a tiny exponent. *)
let montgomery_eligible m nb_exp =
  not (is_even m) && numbits m >= 2 * Limbs.base_bits && nb_exp > 4

let pow_mod ~base:b ~exp:e ~modulus:m =
  Obs_crypto.modexp ();
  if m.sign <= 0 then invalid_arg "Bignum.pow_mod: modulus must be positive";
  if e.sign < 0 then invalid_arg "Bignum.pow_mod: negative exponent";
  if equal m one then zero
  else begin
    let nb = numbits e in
    if nb = 0 then one (* 0^0 = 1 by convention, as in the old ladder *)
    else begin
      let b = erem b m in
      if is_zero b then zero
      else if montgomery_eligible m nb then begin
        match Montgomery.create_cached m.mag with
        | Some ctx ->
          Obs_crypto.modexp_window ();
          make 1 (Montgomery.pow ctx ~base:b.mag ~exp:e.mag)
        | None -> assert false (* eligible implies odd, non-zero *)
      end
      else if nb <= 4 || numbits m < 200 then begin
        (* small cases: plain square-and-multiply *)
        let b = ref b and r = ref one in
        for i = 0 to nb - 1 do
          if testbit e i then r := mul_mod !r !b m;
          if i < nb - 1 then b := mul_mod !b !b m
        done;
        !r
      end
      else begin
        (* big even modulus: Barrett reduction amortizes the division.
           Barrett wins only once the modulus is wide enough that a long
           division clearly dominates two extra multiplications (~200
           bits with 31-bit limbs). *)
        let ctx = Barrett.create m in
        let b = ref b and r = ref one in
        for i = 0 to nb - 1 do
          if testbit e i then r := Barrett.mul_mod ctx !r !b;
          if i < nb - 1 then b := Barrett.mul_mod ctx !b !b
        done;
        !r
      end
    end
  end

let pow2_mod ~b1 ~e1 ~b2 ~e2 ~modulus:m =
  if m.sign <= 0 then invalid_arg "Bignum.pow2_mod: modulus must be positive";
  if e1.sign < 0 || e2.sign < 0 then
    invalid_arg "Bignum.pow2_mod: negative exponent";
  if equal m one then zero
  else if is_zero e1 then pow_mod ~base:b2 ~exp:e2 ~modulus:m
  else if is_zero e2 then pow_mod ~base:b1 ~exp:e1 ~modulus:m
  else begin
    let nb = max (numbits e1) (numbits e2) in
    if montgomery_eligible m nb then begin
      match Montgomery.create_cached m.mag with
      | Some ctx ->
        Obs_crypto.multi_exp ();
        let b1 = erem b1 m and b2 = erem b2 m in
        make 1
          (Montgomery.pow2 ctx ~b1:b1.mag ~e1:e1.mag ~b2:b2.mag ~e2:e2.mag)
      | None -> assert false
    end
    else
      mul_mod
        (pow_mod ~base:b1 ~exp:e1 ~modulus:m)
        (pow_mod ~base:b2 ~exp:e2 ~modulus:m)
        m
  end

let pow_multi_mod pairs ~modulus:m =
  if m.sign <= 0 then
    invalid_arg "Bignum.pow_multi_mod: modulus must be positive";
  List.iter
    (fun (_, e) ->
      if e.sign < 0 then invalid_arg "Bignum.pow_multi_mod: negative exponent")
    pairs;
  if equal m one then zero
  else begin
    (* Zero exponents contribute a factor of one; drop them up front. *)
    let pairs = List.filter (fun (_, e) -> not (is_zero e)) pairs in
    match pairs with
    | [] -> one
    | [ (b, e) ] -> pow_mod ~base:b ~exp:e ~modulus:m
    | _ ->
      let nb =
        List.fold_left (fun acc (_, e) -> max acc (numbits e)) 0 pairs
      in
      if montgomery_eligible m nb then begin
        match Montgomery.create_cached m.mag with
        | Some ctx ->
          Obs_crypto.multi_exp ();
          make 1
            (Montgomery.pow_multi ctx
               (List.map (fun (b, e) -> ((erem b m).mag, e.mag)) pairs))
        | None -> assert false
      end
      else
        List.fold_left
          (fun acc (b, e) ->
            mul_mod acc (pow_mod ~base:b ~exp:e ~modulus:m) m)
          one pairs
  end

let to_string v =
  if v.sign = 0 then "0"
  else begin
    let buf = Buffer.create 32 in
    let rec go mag =
      if Limbs.is_zero mag then ()
      else begin
        let q, r = Limbs.divmod_int mag 1_000_000_000 in
        if Limbs.is_zero q then Buffer.add_string buf (string_of_int r)
        else begin
          go q;
          Buffer.add_string buf (Printf.sprintf "%09d" r)
        end
      end
    in
    go v.mag;
    (if v.sign < 0 then "-" else "") ^ Buffer.contents buf
  end

let of_string s =
  let s, sgn =
    if String.length s > 0 && s.[0] = '-' then
      (String.sub s 1 (String.length s - 1), -1)
    else (s, 1)
  in
  if s = "" then invalid_arg "Bignum.of_string: empty";
  let acc = ref zero and ten = of_int 10 in
  String.iter
    (fun c ->
      if c < '0' || c > '9' then invalid_arg "Bignum.of_string: bad digit";
      acc := add (mul !acc ten) (of_int (Char.code c - Char.code '0')))
    s;
  if sgn < 0 then neg !acc else !acc

let to_hex v =
  if v.sign = 0 then "0"
  else begin
    let nb = numbits v in
    let digits = (nb + 3) / 4 in
    let buf = Buffer.create digits in
    if v.sign < 0 then Buffer.add_char buf '-';
    for i = digits - 1 downto 0 do
      let d = ref 0 in
      for j = 3 downto 0 do
        d := (!d lsl 1) lor (if testbit v ((i * 4) + j) then 1 else 0)
      done;
      Buffer.add_char buf "0123456789abcdef".[!d]
    done;
    Buffer.contents buf
  end

let of_hex s =
  let s, sgn =
    if String.length s > 0 && s.[0] = '-' then
      (String.sub s 1 (String.length s - 1), -1)
    else (s, 1)
  in
  if s = "" then invalid_arg "Bignum.of_hex: empty";
  let acc = ref zero and sixteen = of_int 16 in
  String.iter
    (fun c ->
      let d =
        match c with
        | '0' .. '9' -> Char.code c - Char.code '0'
        | 'a' .. 'f' -> Char.code c - Char.code 'a' + 10
        | 'A' .. 'F' -> Char.code c - Char.code 'A' + 10
        | _ -> invalid_arg "Bignum.of_hex: bad digit"
      in
      acc := add (mul !acc sixteen) (of_int d))
    s;
  if sgn < 0 then neg !acc else !acc

(* Big-endian byte encoding of the magnitude, zero-padded to [len] when
   given.  Raises if the value does not fit.  Bytes are read straight
   out of the 31-bit limbs (at most one limb-boundary straddle each):
   serialization sits on the hash hot path, where a per-bit loop would
   cost more than the hashing itself. *)
let to_bytes_be ?len v =
  if v.sign < 0 then invalid_arg "Bignum.to_bytes_be: negative";
  let needed = (numbits v + 7) / 8 in
  let len = match len with Some l -> l | None -> max 1 needed in
  if needed > len then invalid_arg "Bignum.to_bytes_be: does not fit";
  let b = Bytes.make len '\000' in
  let mag = v.mag in
  let nlimbs = Array.length mag in
  for i = 0 to needed - 1 do
    let lo = 8 * i in
    let li = lo / Limbs.base_bits and off = lo mod Limbs.base_bits in
    let x = Array.unsafe_get mag li lsr off in
    let x =
      if off + 8 > Limbs.base_bits && li + 1 < nlimbs then
        x lor (Array.unsafe_get mag (li + 1) lsl (Limbs.base_bits - off))
      else x
    in
    Bytes.unsafe_set b (len - 1 - i) (Char.unsafe_chr (x land 0xff))
  done;
  Bytes.unsafe_to_string b

let of_bytes_be s =
  let len = String.length s in
  let nlimbs = ((8 * len) + Limbs.base_bits - 1) / Limbs.base_bits in
  if nlimbs = 0 then zero
  else begin
    let mag = Array.make nlimbs 0 in
    let mask = (1 lsl Limbs.base_bits) - 1 in
    for i = 0 to len - 1 do
      let v = Char.code (String.unsafe_get s (len - 1 - i)) in
      let lo = 8 * i in
      let li = lo / Limbs.base_bits and off = lo mod Limbs.base_bits in
      mag.(li) <- mag.(li) lor ((v lsl off) land mask);
      if off + 8 > Limbs.base_bits then
        mag.(li + 1) <- mag.(li + 1) lor (v lsr (Limbs.base_bits - off))
    done;
    make 1 (Limbs.normalize mag)
  end

let pp fmt v = Format.pp_print_string fmt (to_string v)
