(** Signed arbitrary-precision integers.

    Pure-OCaml bignums backed by base-2{^31} limb arrays.  This module is
    the arithmetic substrate for every cryptographic component of the
    architecture (threshold coin, TDH2 encryption, RSA threshold
    signatures); the container provides no external bignum library. *)

type t

val zero : t
val one : t
val two : t

val of_int : int -> t

val to_int_opt : t -> int option
(** [to_int_opt v] is [Some i] when [v] fits in a native [int]. *)

val sign : t -> int
(** [-1], [0] or [1]. *)

val is_zero : t -> bool
val neg : t -> t
val abs : t -> t
val compare : t -> t -> int
val equal : t -> t -> bool
val lt : t -> t -> bool
val leq : t -> t -> bool
val geq : t -> t -> bool
val add : t -> t -> t
val sub : t -> t -> t
val mul : t -> t -> t
val mul_int : t -> int -> t
val succ : t -> t
val pred : t -> t

val divmod : t -> t -> t * t
(** Truncated division; the remainder carries the sign of the dividend.
    Raises [Division_by_zero]. *)

val div : t -> t -> t
val rem : t -> t -> t

val erem : t -> t -> t
(** Euclidean remainder, always in [\[0, |b|)]. *)

val shift_left : t -> int -> t
val shift_right : t -> int -> t

val numbits : t -> int
(** Number of significant bits of the magnitude; [numbits zero = 0]. *)

val testbit : t -> int -> bool
val is_even : t -> bool
val gcd : t -> t -> t

val egcd : t -> t -> t * t * t
(** [egcd a b] is [(g, u, v)] with [u*a + v*b = g = gcd a b]. *)

val jacobi : t -> t -> int
(** [jacobi a n] is the Jacobi symbol (a/n) in [{-1; 0; 1}] for odd
    positive [n] (raises [Invalid_argument] otherwise).  For prime [n]
    this decides quadratic residuosity without an exponentiation, which
    makes it the cheap subgroup-membership test for safe-prime Schnorr
    groups. *)

val add_mod : t -> t -> t -> t
val sub_mod : t -> t -> t -> t
val mul_mod : t -> t -> t -> t

val inv_mod : t -> t -> t option
(** Modular inverse, [None] when the operand is not coprime with the
    modulus. *)

val pow_mod : base:t -> exp:t -> modulus:t -> t
(** [pow_mod ~base ~exp ~modulus] is [base^exp mod modulus], reduced to
    [\[0, modulus)].

    Exponent-sign contract: [exp] must be non-negative — a negative
    exponent raises [Invalid_argument] (callers that need [b^-e] invert
    the base with {!inv_mod} first, since inversion only exists for
    operands coprime with the modulus).  [modulus] must be positive or
    [Invalid_argument] is raised.  Edge cases are short-circuited
    consistently: [modulus = 1] yields [0]; [exp = 0] yields [1]
    (including [0^0 = 1]); [base ≡ 0 (mod modulus)] with [exp > 0]
    yields [0].

    Odd moduli of at least two limbs are served by a 4-bit fixed-window
    ladder over Montgomery (REDC) arithmetic; even moduli fall back to
    square-and-multiply (Barrett-reduced above ~200 bits). *)

val pow2_mod : b1:t -> e1:t -> b2:t -> e2:t -> modulus:t -> t
(** [pow2_mod ~b1 ~e1 ~b2 ~e2 ~modulus] is [b1^e1 * b2^e2 mod modulus]
    computed with one shared squaring chain (Shamir's trick) when the
    modulus is odd, and as two {!pow_mod}s otherwise.  Same sign
    contract as {!pow_mod}. *)

val pow_multi_mod : (t * t) list -> modulus:t -> t
(** [pow_multi_mod [(b1, e1); ...] ~modulus] is the product of all
    [bi^ei mod modulus] by Straus interleaving (shared squarings) when
    the modulus is odd.  The empty product is [1].  Same sign contract
    as {!pow_mod}. *)

val to_string : t -> string
val of_string : string -> t
val to_hex : t -> string
val of_hex : string -> t

val to_bytes_be : ?len:int -> t -> string
(** Big-endian byte string of a non-negative value, zero-padded on the
    left to [len] bytes when given. *)

val of_bytes_be : string -> t
val pp : Format.formatter -> t -> unit
