(* Montgomery (REDC) arithmetic over the {!Limbs} representation.

   For an odd k-limb modulus m, residues are kept in Montgomery form
   x~ = x * R mod m with R = 2^(31k).  The word-level CIOS loop (Koc,
   Acar & Kaliski) interleaves multiplication and reduction, so one
   Montgomery multiplication costs 2k^2 + k single-limb multiplies and
   never performs a long division — the division that dominates every
   plain [erem]-based modular multiplication is replaced by shifts that
   fall out of the loop structure for free.

   Limb products fit the native int exactly: with 31-bit limbs the
   worst-case accumulation (base-1)^2 + 2*(base-1) = 2^62 - 1 equals
   OCaml's max_int on 64-bit platforms, the same headroom argument as
   {!Limbs.mul}.

   Montgomery residues are held in raw [int array]s of length exactly
   [k] (zero-padded, not normalized) so the inner loops never bounds-
   check against ragged lengths.  Conversions in and out normalize. *)

let base_bits = Limbs.base_bits
let mask = Limbs.mask

type ctx = {
  m : int array;  (* the odd modulus, normalized, k limbs *)
  k : int;
  m0' : int;  (* -m^{-1} mod 2^31 *)
  r2 : int array;  (* R^2 mod m, k limbs: converts into Montgomery form *)
  one : int array;  (* R mod m, k limbs: the Montgomery form of 1 *)
}

(* Zero-pad a normalized magnitude to exactly [k] limbs. *)
let pad (k : int) (a : int array) : int array =
  let r = Array.make k 0 in
  Array.blit a 0 r 0 (Array.length a);
  r

let create (m : int array) : ctx option =
  if Limbs.is_zero m || m.(0) land 1 = 0 then None
  else begin
    let k = Array.length m in
    (* Hensel lifting: for odd m0, m0 is its own inverse mod 8; each
       Newton step x <- x*(2 - m0*x) doubles the valid bits, so four
       steps reach 48 >= 31 bits. *)
    let m0 = m.(0) in
    let inv = ref m0 in
    for _ = 1 to 4 do
      inv := (!inv * (2 - ((m0 * !inv) land mask))) land mask
    done;
    let r_mod_m =
      snd (Limbs.divmod (Limbs.shift_left [| 1 |] (base_bits * k)) m)
    in
    let r2 =
      snd (Limbs.divmod (Limbs.shift_left [| 1 |] (2 * base_bits * k)) m)
    in
    Some
      { m;
        k;
        m0' = (Limbs.base - !inv) land mask;
        r2 = pad k r2;
        one = pad k r_mod_m }
  end

(* c = a * b * R^{-1} mod m for k-limb Montgomery residues a, b < m.
   CIOS: one outer pass per limb of [a], each pass adding a_i * b and
   then folding one limb of the Montgomery quotient u * m, shifting the
   accumulator down a limb as it goes. *)
let mul (ctx : ctx) (a : int array) (b : int array) : int array =
  let k = ctx.k and m = ctx.m and m0' = ctx.m0' in
  let t = Array.make (k + 2) 0 in
  for i = 0 to k - 1 do
    let ai = a.(i) in
    let carry = ref 0 in
    for j = 0 to k - 1 do
      let x = t.(j) + (ai * b.(j)) + !carry in
      t.(j) <- x land mask;
      carry := x lsr base_bits
    done;
    let x = t.(k) + !carry in
    t.(k) <- x land mask;
    t.(k + 1) <- x lsr base_bits;
    let u = (t.(0) * m0') land mask in
    (* t.(0) + u*m.(0) is divisible by the base by construction. *)
    let carry = ref ((t.(0) + (u * m.(0))) lsr base_bits) in
    for j = 1 to k - 1 do
      let x = t.(j) + (u * m.(j)) + !carry in
      t.(j - 1) <- x land mask;
      carry := x lsr base_bits
    done;
    let x = t.(k) + !carry in
    t.(k - 1) <- x land mask;
    t.(k) <- t.(k + 1) + (x lsr base_bits)
  done;
  (* The accumulator is < 2m; one conditional subtraction finishes. *)
  let ge =
    t.(k) > 0
    ||
    let rec cmp i =
      if i < 0 then true
      else if t.(i) <> m.(i) then t.(i) > m.(i)
      else cmp (i - 1)
    in
    cmp (k - 1)
  in
  let r = Array.make k 0 in
  if ge then begin
    let borrow = ref 0 in
    for j = 0 to k - 1 do
      let d = t.(j) - m.(j) - !borrow in
      if d < 0 then begin
        r.(j) <- d + Limbs.base;
        borrow := 1
      end
      else begin
        r.(j) <- d;
        borrow := 0
      end
    done
  end
  else Array.blit t 0 r 0 k;
  r

let to_mont (ctx : ctx) (x : int array) : int array =
  let x = if Limbs.compare x ctx.m >= 0 then snd (Limbs.divmod x ctx.m) else x in
  mul ctx (pad ctx.k x) ctx.r2

(* REDC(a * 1) drops the R factor and leaves a normalized magnitude. *)
let from_mont (ctx : ctx) (a : int array) : int array =
  let one_raw = Array.make ctx.k 0 in
  one_raw.(0) <- 1;
  Limbs.normalize (mul ctx a one_raw)

(* ------------------------------------------------------------------ *)
(* Exponentiation kernels                                              *)
(* ------------------------------------------------------------------ *)

let window_bits = 4

(* Exponent bits [lo, lo+4) as an integer in 0..15. *)
let window (e : int array) (lo : int) : int =
  (if Limbs.testbit e lo then 1 else 0)
  lor (if Limbs.testbit e (lo + 1) then 2 else 0)
  lor (if Limbs.testbit e (lo + 2) then 4 else 0)
  lor (if Limbs.testbit e (lo + 3) then 8 else 0)

(* base^exp mod m by left-to-right fixed 4-bit windows: 4 squarings plus
   at most one table multiply per window, against one multiply per set
   bit for the binary ladder. *)
let pow (ctx : ctx) ~(base : int array) ~(exp : int array) : int array =
  let nb = Limbs.numbits exp in
  if nb = 0 then from_mont ctx ctx.one
  else begin
    let bm = to_mont ctx base in
    let tbl = Array.make 16 ctx.one in
    tbl.(1) <- bm;
    for d = 2 to 15 do
      tbl.(d) <- mul ctx tbl.(d - 1) bm
    done;
    let nwin = (nb + window_bits - 1) / window_bits in
    (* The top window contains the most significant bit, so it is
       non-zero and seeds the accumulator without leading squarings. *)
    let acc = ref tbl.(window exp ((nwin - 1) * window_bits)) in
    for wi = nwin - 2 downto 0 do
      acc := mul ctx !acc !acc;
      acc := mul ctx !acc !acc;
      acc := mul ctx !acc !acc;
      acc := mul ctx !acc !acc;
      let d = window exp (wi * window_bits) in
      if d <> 0 then acc := mul ctx !acc tbl.(d)
    done;
    from_mont ctx !acc
  end

(* b1^e1 * b2^e2 mod m, sharing one squaring chain (Shamir's trick):
   max-bits squarings plus one multiply per joint non-zero bit pair,
   against two full independent chains. *)
let pow2 (ctx : ctx) ~(b1 : int array) ~(e1 : int array) ~(b2 : int array)
    ~(e2 : int array) : int array =
  let nb = max (Limbs.numbits e1) (Limbs.numbits e2) in
  if nb = 0 then from_mont ctx ctx.one
  else begin
    let m1 = to_mont ctx b1 in
    let m2 = to_mont ctx b2 in
    let m12 = mul ctx m1 m2 in
    let acc = ref ctx.one and started = ref false in
    for i = nb - 1 downto 0 do
      if !started then acc := mul ctx !acc !acc;
      let d =
        (if Limbs.testbit e1 i then 1 else 0)
        lor (if Limbs.testbit e2 i then 2 else 0)
      in
      if d <> 0 then begin
        let f = match d with 1 -> m1 | 2 -> m2 | _ -> m12 in
        if !started then acc := mul ctx !acc f
        else begin
          acc := f;
          started := true
        end
      end
    done;
    from_mont ctx !acc
  end

(* The w bits of magnitude [e] starting at bit [lo] (little-endian bit
   order), read straight out of the limbs; w never exceeds a limb. *)
let bits_at (e : int array) (lo : int) (w : int) : int =
  let li = lo / Limbs.base_bits and off = lo mod Limbs.base_bits in
  let len = Array.length e in
  if li >= len then 0
  else begin
    let v = Array.unsafe_get e li lsr off in
    let v =
      if off + w > Limbs.base_bits && li + 1 < len then
        v lor (Array.unsafe_get e (li + 1) lsl (Limbs.base_bits - off))
      else v
    in
    v land ((1 lsl w) - 1)
  end

(* Interleaved (Straus) product of base^exp over any number of pairs:
   one shared squaring chain for the whole product.  Each base picks a
   window width by its exponent size — wide exponents amortize a
   per-base digit table (w-bit windows cost one multiply per non-zero
   digit instead of one per set bit), short ones stay narrow so the
   table build is never wasted.  Digit schedules are extracted up front
   and the pairs grouped by width, so the chain's inner loop touches a
   base only at its own digit boundaries. *)
let pow_multi (ctx : ctx) (pairs : (int array * int array) list) : int array =
  let nb =
    List.fold_left (fun acc (_, e) -> max acc (Limbs.numbits e)) 0 pairs
  in
  if nb = 0 then from_mont ctx ctx.one
  else begin
    (* A w-bit window trades a (2^w - 2)-multiply table build for one
       multiply per non-zero w-digit: worthwhile once the exponent has
       enough digits to repay the build. *)
    let prep w =
      List.filter_map
        (fun (b, e) ->
          let n = Limbs.numbits e in
          let w' = if n >= 96 then 4 else if n >= 24 then 2 else 1 in
          if w' <> w || n = 0 then None
          else begin
            let bm = to_mont ctx b in
            let tbl = Array.make ((1 lsl w) - 1) bm in
            for d = 1 to Array.length tbl - 1 do
              tbl.(d) <- mul ctx tbl.(d - 1) bm
            done;
            let nwin = (nb + w - 1) / w in
            let digits = Array.init nwin (fun j -> bits_at e (j * w) w) in
            Some (tbl, digits)
          end)
        pairs
      |> Array.of_list
    in
    let w4 = prep 4 and w2 = prep 2 and w1 = prep 1 in
    let acc = ref ctx.one and started = ref false in
    let mul_acc f =
      if !started then acc := mul ctx !acc f
      else begin
        acc := f;
        started := true
      end
    in
    let apply (group : (int array array * int array) array) (win : int) =
      for j = 0 to Array.length group - 1 do
        let tbl, digits = Array.unsafe_get group j in
        let d = Array.unsafe_get digits win in
        if d <> 0 then mul_acc (Array.unsafe_get tbl (d - 1))
      done
    in
    for i = nb - 1 downto 0 do
      if !started then acc := mul ctx !acc !acc;
      if i land 3 = 0 then apply w4 (i lsr 2);
      if i land 1 = 0 then apply w2 (i lsr 1);
      apply w1 i
    done;
    from_mont ctx !acc
  end

(* ------------------------------------------------------------------ *)
(* Context cache                                                       *)
(* ------------------------------------------------------------------ *)

(* Protocols hammer a handful of moduli (the group prime p, the RSA
   modulus N); a small move-to-front list amortizes the two long
   divisions of [create] across every exponentiation with the same
   modulus. *)
let cache_capacity = 8
let cache : (int array * ctx) list ref = ref []

let create_cached (m : int array) : ctx option =
  let rec take acc = function
    | [] -> None
    | ((m', ctx) as hd) :: tl ->
      if Limbs.compare m m' = 0 then begin
        cache := hd :: List.rev_append acc tl;
        Some ctx
      end
      else take (hd :: acc) tl
  in
  match take [] !cache with
  | Some ctx -> Some ctx
  | None ->
    (match create m with
    | None -> None
    | Some ctx ->
      cache := (m, ctx) :: !cache;
      (match List.filteri (fun i _ -> i < cache_capacity) !cache with
      | trimmed -> cache := trimmed);
      Some ctx)
