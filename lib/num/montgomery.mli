(** Montgomery (REDC) arithmetic over raw {!Limbs} magnitudes.

    Internal fast-path layer: {!Bignum} chooses when to route an
    exponentiation here (odd, sufficiently large moduli).  All arrays
    are little-endian base-2{^31} limb magnitudes as in {!Limbs};
    Montgomery residues are zero-padded to exactly [k] limbs and are
    only meaningful with respect to the context that produced them. *)

type ctx
(** Precomputed data for one odd modulus: -m{^-1} mod 2{^31},
    R mod m and R{^2} mod m with R = 2{^31k}. *)

val create : int array -> ctx option
(** [create m] builds a context for the normalized magnitude [m].
    Returns [None] when [m] is zero or even (REDC requires odd moduli). *)

val create_cached : int array -> ctx option
(** Like {!create} but consults a small process-global move-to-front
    cache first, so repeated exponentiations modulo the same prime or
    RSA modulus pay for the context setup once. *)

val to_mont : ctx -> int array -> int array
(** Convert a magnitude (any length; reduced mod m if needed) into
    Montgomery form. *)

val from_mont : ctx -> int array -> int array
(** Convert a Montgomery residue back to a normalized magnitude. *)

val mul : ctx -> int array -> int array -> int array
(** Montgomery product of two residues: [a * b * R^-1 mod m], via the
    word-interleaved CIOS loop. *)

val pow : ctx -> base:int array -> exp:int array -> int array
(** [pow ctx ~base ~exp] = [base^exp mod m] as a normalized magnitude,
    by 4-bit fixed-window exponentiation.  [base] and the result are
    plain magnitudes; conversion happens inside.  [exp = 0] yields 1
    reduced mod m. *)

val pow2 :
  ctx ->
  b1:int array ->
  e1:int array ->
  b2:int array ->
  e2:int array ->
  int array
(** [pow2 ctx ~b1 ~e1 ~b2 ~e2] = [b1^e1 * b2^e2 mod m] with one shared
    squaring chain (Shamir's trick). *)

val pow_multi : ctx -> (int array * int array) list -> int array
(** [pow_multi ctx [(b1, e1); ...]] = product of [bi^ei mod m] by
    Straus interleaving: one squaring chain for the whole product. *)
