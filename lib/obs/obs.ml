(* Facade tying the observability pieces together.

   An [Obs.t] is what gets threaded through the stack: a metrics
   registry plus an optional span tracer.  The [noop] instance is
   inactive — registering against it still hands back real (orphan)
   handles so call sites need no option-juggling, but snapshots are
   empty, [set_tracer] is ignored, and span calls return 0/do nothing.
   Code that conditions on [active] (Proto_io's counting send wrappers
   do) can skip instrumentation entirely in the default path. *)

type t = {
  active : bool;
  registry : Obs_registry.t;
  mutable tracer : Obs_trace.t option;
}

let create ?tracer () =
  { active = true; registry = Obs_registry.create (); tracer }

(* A shared inactive instance.  Its registry exists (so [counter] etc.
   type-check and return usable handles) but is never snapshotted by
   anyone holding only [noop], and its tracer stays [None]. *)
let noop = { active = false; registry = Obs_registry.create (); tracer = None }

let active t = t.active
let registry t = t.registry
let tracer t = if t.active then t.tracer else None

let set_tracer t tr = if t.active then t.tracer <- Some tr

(* ---------- registry conveniences ----------------------------------- *)

let counter t ?labels name = Obs_registry.counter t.registry ?labels name
let gauge t ?labels name = Obs_registry.gauge t.registry ?labels name

let histogram t ?labels name =
  Obs_registry.histogram t.registry ?labels name

let incr t ?labels ?by name =
  if t.active then Obs_registry.incr ?by (counter t ?labels name)

let observe t ?labels name v =
  if t.active then Obs_registry.observe t.registry ?labels name v

let snapshot t = Obs_registry.snapshot t.registry

(* ---------- tracer conveniences ------------------------------------- *)

(* Span id 0 means "no span": returned when tracing is off, accepted and
   ignored by [span_end]. *)
let span_begin t ?party ?src ?tag ?detail ~layer name =
  match tracer t with
  | None -> 0
  | Some tr -> Obs_trace.span_begin tr ?party ?src ?tag ?detail ~layer name

let span_end t ?detail id =
  if id > 0 then
    match tracer t with
    | None -> ()
    | Some tr -> Obs_trace.span_end tr ?detail id

let point t ?party ?src ?tag ?detail ~layer name =
  match tracer t with
  | None -> ()
  | Some tr -> Obs_trace.point tr ?party ?src ?tag ?detail ~layer name
