(** Observability facade: a metrics registry plus an optional span
    tracer, threaded through the simulator and the protocol stack.

    The {!noop} instance is the default everywhere: registering against
    it still returns real handles (so call sites need no options), but
    it is never snapshotted, its tracer stays absent, and span calls
    return 0 / do nothing.  Hot paths test {!active} once and skip
    instrumentation entirely when it is false, which keeps the disabled
    cost near zero. *)

type t

val create : ?tracer:Obs_trace.t -> unit -> t
(** A fresh, active instance with its own registry. *)

val noop : t
(** The shared inactive instance. *)

val active : t -> bool
val registry : t -> Obs_registry.t

val tracer : t -> Obs_trace.t option
(** Always [None] on {!noop}. *)

val set_tracer : t -> Obs_trace.t -> unit
(** Ignored on {!noop}. *)

(** {2 Registry conveniences} *)

val counter : t -> ?labels:Obs_registry.labels -> string -> Obs_registry.counter
val gauge : t -> ?labels:Obs_registry.labels -> string -> Obs_registry.gauge
val histogram : t -> ?labels:Obs_registry.labels -> string -> Obs_histogram.t

val incr : t -> ?labels:Obs_registry.labels -> ?by:int -> string -> unit
val observe : t -> ?labels:Obs_registry.labels -> string -> float -> unit
val snapshot : t -> Obs_registry.snapshot

(** {2 Tracer conveniences}

    Span id 0 means "no span": it is what {!span_begin} returns when no
    tracer is installed, and {!span_end} ignores it, so protocol code
    can store ids unconditionally. *)

val span_begin :
  t ->
  ?party:int ->
  ?src:int ->
  ?tag:string ->
  ?detail:string ->
  layer:string ->
  string ->
  int

val span_end : t -> ?detail:string -> int -> unit

val point :
  t ->
  ?party:int ->
  ?src:int ->
  ?tag:string ->
  ?detail:string ->
  layer:string ->
  string ->
  unit
