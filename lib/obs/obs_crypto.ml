(* Global crypto operation counters.

   The number-theoretic layers (lib/num, lib/group, lib/crypto) sit
   below any place a registry could be threaded through, and their hot
   paths (modular exponentiation above all) must not pay for plumbing.
   So the sink is a handful of global ints behind one [enabled] flag:
   disabled — the default — each instrumentation site costs a single
   branch on an immediate bool, which is as close to free as OCaml
   gets without compiling the calls out. *)

let enabled_flag = ref false

type kind =
  | Modexp  (* Bignum.pow_mod: the dominant cost in every protocol *)
  | Hash_to_group  (* hashing onto the group, for coin/TDH2 bases *)
  | Sign  (* ordinary and threshold signature share generation *)
  | Verify  (* ordinary signature / assembled certificate checks *)
  | Share_verify  (* per-share proof checks: coin, TDH2, RSA, certs *)
  | Combine  (* Lagrange/threshold combination of shares *)
  | Modexp_window  (* pow_mod calls served by the Montgomery window *)
  | Multi_exp  (* simultaneous multi-exponentiations (Shamir/Straus) *)
  | Fixed_base_exp  (* exponentiations served by a fixed-base table *)
  | Batch_verify  (* random-linear-combination batched proof checks *)
  | Batch_verify_size  (* total proofs covered by those batched checks *)
  | Batch_verify_fallback  (* failed batches that triggered bisection *)
  | Lazy_verify_hit  (* lazy combines whose optimistic check succeeded *)
  | Recomb_cache_hit  (* recombination vectors served from the LRU *)
  | Recomb_cache_miss  (* recombination vectors recomputed *)

let n_kinds = 15

let index = function
  | Modexp -> 0
  | Hash_to_group -> 1
  | Sign -> 2
  | Verify -> 3
  | Share_verify -> 4
  | Combine -> 5
  | Modexp_window -> 6
  | Multi_exp -> 7
  | Fixed_base_exp -> 8
  | Batch_verify -> 9
  | Batch_verify_size -> 10
  | Batch_verify_fallback -> 11
  | Lazy_verify_hit -> 12
  | Recomb_cache_hit -> 13
  | Recomb_cache_miss -> 14

let name = function
  | Modexp -> "modexp"
  | Hash_to_group -> "hash_to_group"
  | Sign -> "sign"
  | Verify -> "verify"
  | Share_verify -> "share_verify"
  | Combine -> "combine"
  | Modexp_window -> "modexp_window"
  | Multi_exp -> "multi_exp"
  | Fixed_base_exp -> "fixed_base_exp"
  | Batch_verify -> "batch_verify"
  | Batch_verify_size -> "batch_verify_size"
  | Batch_verify_fallback -> "batch_verify_fallback"
  | Lazy_verify_hit -> "lazy_verify_hits"
  | Recomb_cache_hit -> "recomb_cache_hits"
  | Recomb_cache_miss -> "recomb_cache_misses"

let all_kinds =
  [ Modexp; Hash_to_group; Sign; Verify; Share_verify; Combine;
    Modexp_window; Multi_exp; Fixed_base_exp; Batch_verify;
    Batch_verify_size; Batch_verify_fallback; Lazy_verify_hit;
    Recomb_cache_hit; Recomb_cache_miss ]

let counts_arr = Array.make n_kinds 0

let enable () = enabled_flag := true
let disable () = enabled_flag := false
let enabled () = !enabled_flag

let reset () = Array.fill counts_arr 0 n_kinds 0

let count kind = counts_arr.(index kind)
let counts () = List.map (fun k -> (name k, count k)) all_kinds
let total () = Array.fold_left ( + ) 0 counts_arr

(* Instrumentation entry points, one per kind so call sites stay
   grep-able.  The [if] on the deref'd flag is the whole disabled-path
   cost. *)
let modexp () =
  if !enabled_flag then counts_arr.(0) <- counts_arr.(0) + 1

let hash_to_group () =
  if !enabled_flag then counts_arr.(1) <- counts_arr.(1) + 1

let sign () = if !enabled_flag then counts_arr.(2) <- counts_arr.(2) + 1
let verify () = if !enabled_flag then counts_arr.(3) <- counts_arr.(3) + 1

let share_verify () =
  if !enabled_flag then counts_arr.(4) <- counts_arr.(4) + 1

let combine () = if !enabled_flag then counts_arr.(5) <- counts_arr.(5) + 1

let modexp_window () =
  if !enabled_flag then counts_arr.(6) <- counts_arr.(6) + 1

let multi_exp () = if !enabled_flag then counts_arr.(7) <- counts_arr.(7) + 1

let fixed_base_exp () =
  if !enabled_flag then counts_arr.(8) <- counts_arr.(8) + 1

(* [batch_verify k] records one batched check covering [k] proofs, so
   average batch size = batch_verify_size / batch_verify. *)
let batch_verify k =
  if !enabled_flag then begin
    counts_arr.(9) <- counts_arr.(9) + 1;
    counts_arr.(10) <- counts_arr.(10) + k
  end

let batch_verify_fallback () =
  if !enabled_flag then counts_arr.(11) <- counts_arr.(11) + 1

let lazy_verify_hit () =
  if !enabled_flag then counts_arr.(12) <- counts_arr.(12) + 1

let recomb_cache_hit () =
  if !enabled_flag then counts_arr.(13) <- counts_arr.(13) + 1

let recomb_cache_miss () =
  if !enabled_flag then counts_arr.(14) <- counts_arr.(14) + 1

let to_json () : Obs_json.t =
  Obs_json.Obj (List.map (fun (n, c) -> (n, Obs_json.Int c)) (counts ()))
