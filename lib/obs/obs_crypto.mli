(** Global crypto operation counters.

    lib/num, lib/group and lib/crypto sit below anything a registry
    handle could be threaded through, so their instrumentation is a set
    of global counters behind one flag.  Disabled (the default), each
    site costs a single branch on a bool ref — effectively free.  The
    counters are process-global: callers that want per-run numbers
    bracket the run with [reset]/[counts] (the bench harness does). *)

type kind =
  | Modexp  (** modular exponentiation ([Bignum.pow_mod]) *)
  | Hash_to_group  (** hashing onto the group *)
  | Sign  (** signature / signature-share generation *)
  | Verify  (** full signature or assembled-certificate checks *)
  | Share_verify  (** per-share proof checks (coin, TDH2, RSA, certs) *)
  | Combine  (** threshold combination of shares *)
  | Modexp_window  (** [pow_mod] calls served by the Montgomery window *)
  | Multi_exp  (** simultaneous multi-exponentiations (Shamir/Straus) *)
  | Fixed_base_exp  (** exponentiations served by a fixed-base table *)
  | Batch_verify  (** random-linear-combination batched proof checks *)
  | Batch_verify_size  (** total proofs covered by batched checks *)
  | Batch_verify_fallback  (** failed batches that triggered bisection *)
  | Lazy_verify_hit  (** lazy combines whose optimistic check passed *)
  | Recomb_cache_hit  (** recombination vectors served from the LRU *)
  | Recomb_cache_miss  (** recombination vectors recomputed *)

val all_kinds : kind list
val name : kind -> string

val enable : unit -> unit
val disable : unit -> unit
val enabled : unit -> bool
val reset : unit -> unit

val count : kind -> int
val counts : unit -> (string * int) list
(** All kinds in declaration order, including zeros. *)

val total : unit -> int

(** {2 Instrumentation entry points} (no-ops unless enabled) *)

val modexp : unit -> unit
val hash_to_group : unit -> unit
val sign : unit -> unit
val verify : unit -> unit
val share_verify : unit -> unit
val combine : unit -> unit
val modexp_window : unit -> unit
val multi_exp : unit -> unit
val fixed_base_exp : unit -> unit

val batch_verify : int -> unit
(** [batch_verify k]: one batched check covering [k] proofs (increments
    [Batch_verify] by one and [Batch_verify_size] by [k]). *)

val batch_verify_fallback : unit -> unit
val lazy_verify_hit : unit -> unit
val recomb_cache_hit : unit -> unit
val recomb_cache_miss : unit -> unit

val to_json : unit -> Obs_json.t
(** [{"modexp": n, ...}] — every kind, including zeros. *)
