(* Log-scale histograms with power-of-two buckets.

   Bucket 0 collects every observation below 1.0 (including negatives);
   bucket i >= 1 collects [2^(i-1), 2^i); the last bucket is unbounded
   above.  The index is computed with [Float.frexp], so boundaries are
   exact: observing 2.0 lands in the [2,4) bucket, never in [1,2).

   This shape covers everything the protocol stack observes — message
   sizes in bytes, virtual-time latencies, round counts — in a fixed
   64-slot array with O(1) updates, which is what an always-on sink
   needs (cf. the ring-buffer design constraint of flight-recorder-style
   telemetry). *)

type t = {
  mutable count : int;
  mutable sum : float;
  mutable vmin : float;  (* meaningful only when count > 0 *)
  mutable vmax : float;
  buckets : int array;
}

let n_buckets = 64

let create () =
  { count = 0; sum = 0.0; vmin = infinity; vmax = neg_infinity;
    buckets = Array.make n_buckets 0 }

let copy t =
  { count = t.count; sum = t.sum; vmin = t.vmin; vmax = t.vmax;
    buckets = Array.copy t.buckets }

(* [2^(i-1), 2^i) for i >= 1; everything below 1.0 in bucket 0. *)
let bucket_index v =
  if v < 1.0 || Float.is_nan v then 0
  else begin
    let _, e = Float.frexp v in
    (* v = m * 2^e with m in [0.5, 1), hence 2^(e-1) <= v < 2^e *)
    min (n_buckets - 1) e
  end

let bucket_lower i = if i <= 0 then 0.0 else Float.ldexp 1.0 (i - 1)

let bucket_upper i =
  if i >= n_buckets - 1 then infinity else Float.ldexp 1.0 i

let observe t v =
  t.count <- t.count + 1;
  t.sum <- t.sum +. v;
  if v < t.vmin then t.vmin <- v;
  if v > t.vmax then t.vmax <- v;
  let i = bucket_index v in
  t.buckets.(i) <- t.buckets.(i) + 1

let count t = t.count
let sum t = t.sum
let min_value t = if t.count = 0 then None else Some t.vmin
let max_value t = if t.count = 0 then None else Some t.vmax
let mean t = if t.count = 0 then None else Some (t.sum /. float_of_int t.count)
let bucket t i = t.buckets.(i)

let reset t =
  t.count <- 0;
  t.sum <- 0.0;
  t.vmin <- infinity;
  t.vmax <- neg_infinity;
  Array.fill t.buckets 0 n_buckets 0

let merge a b =
  let r = copy a in
  r.count <- a.count + b.count;
  r.sum <- a.sum +. b.sum;
  r.vmin <- Float.min a.vmin b.vmin;
  r.vmax <- Float.max a.vmax b.vmax;
  Array.iteri (fun i c -> r.buckets.(i) <- a.buckets.(i) + c) b.buckets;
  r

(* [diff newer older]: the observations recorded after [older] was
   snapshotted.  min/max cannot be subtracted, so the newer extremes are
   kept; bucket counts clamp at zero to stay meaningful if [older] is
   not actually a prefix of [newer]. *)
let diff newer older =
  let r = copy newer in
  r.count <- max 0 (newer.count - older.count);
  r.sum <- newer.sum -. older.sum;
  Array.iteri
    (fun i c -> r.buckets.(i) <- max 0 (newer.buckets.(i) - c))
    older.buckets;
  r

(* Upper bound of the bucket holding the p-th percentile (0 < p <= 100):
   a conservative estimate good enough for bench summaries. *)
let percentile t p =
  if t.count = 0 then None
  else begin
    let target =
      int_of_float (ceil (float_of_int t.count *. p /. 100.0))
    in
    let target = max 1 (min t.count target) in
    let acc = ref 0 and found = ref None in
    Array.iteri
      (fun i c ->
        acc := !acc + c;
        if !found = None && !acc >= target then found := Some i)
      t.buckets;
    match !found with
    | Some i when i = n_buckets - 1 -> Some t.vmax
    | Some i -> Some (Float.min (bucket_upper i) t.vmax)
    | None -> None
  end

(* Sparse JSON rendering: only non-empty buckets, as [index, count]
   pairs, so 64 mostly-zero slots do not bloat the bench records. *)
let to_json t =
  let buckets =
    Array.to_list t.buckets
    |> List.mapi (fun i c -> (i, c))
    |> List.filter (fun (_, c) -> c > 0)
    |> List.map (fun (i, c) -> Obs_json.Arr [ Obs_json.Int i; Obs_json.Int c ])
  in
  Obs_json.Obj
    ([ ("count", Obs_json.Int t.count); ("sum", Obs_json.Float t.sum) ]
    @ (if t.count = 0 then []
       else
         [ ("min", Obs_json.Float t.vmin); ("max", Obs_json.Float t.vmax) ])
    @ [ ("buckets", Obs_json.Arr buckets) ])
