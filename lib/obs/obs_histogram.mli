(** Log-scale histograms with power-of-two buckets: bucket 0 holds every
    observation below 1.0, bucket [i >= 1] holds [\[2^(i-1), 2^i)], and
    the last of the 64 buckets is unbounded above.  Boundaries are exact
    (computed with [Float.frexp]), updates are O(1), and the footprint is
    fixed — suitable for an always-on sink. *)

type t

val n_buckets : int
(** 64. *)

val create : unit -> t
val copy : t -> t
val observe : t -> float -> unit
val reset : t -> unit

val bucket_index : float -> int
(** Index of the bucket an observation falls into. *)

val bucket_lower : int -> float
(** Inclusive lower bound of a bucket (0.0 for bucket 0). *)

val bucket_upper : int -> float
(** Exclusive upper bound ([infinity] for the last bucket). *)

val count : t -> int
val sum : t -> float
val min_value : t -> float option
val max_value : t -> float option
val mean : t -> float option
val bucket : t -> int -> int

val merge : t -> t -> t
(** Pointwise sum, as a fresh histogram. *)

val diff : t -> t -> t
(** [diff newer older]: observations recorded after [older] was taken
    (bucket-wise subtraction, clamped at zero; extremes kept from
    [newer]). *)

val percentile : t -> float -> float option
(** Conservative percentile estimate: the upper bound of the bucket
    containing the p-th ordered observation, capped at the true max. *)

val to_json : t -> Obs_json.t
(** Sparse rendering: only non-empty buckets, as [index, count] pairs. *)
