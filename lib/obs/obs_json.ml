(* Minimal JSON values: just enough to emit and re-read the machine-
   readable artifacts of the observability layer (BENCH_<id>.json
   records, span JSONL lines) without an external dependency.

   The emitter guarantees that every value survives a round trip through
   [to_string]/[of_string], including floats: a float is printed with the
   shortest of %.1f / %.12g / %.17g that parses back to the same bits. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

(* ---------- emission ------------------------------------------------ *)

let escape_string b s =
  Buffer.add_char b '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.add_char b '"'

let float_repr f =
  match Float.classify_float f with
  | FP_nan | FP_infinite -> "null"  (* not representable in JSON *)
  | FP_zero | FP_subnormal | FP_normal ->
    if Float.is_integer f && Float.abs f < 1e15 then Printf.sprintf "%.1f" f
    else
      let s = Printf.sprintf "%.12g" f in
      if float_of_string s = f then s else Printf.sprintf "%.17g" f

let rec emit b = function
  | Null -> Buffer.add_string b "null"
  | Bool v -> Buffer.add_string b (if v then "true" else "false")
  | Int i -> Buffer.add_string b (string_of_int i)
  | Float f -> Buffer.add_string b (float_repr f)
  | Str s -> escape_string b s
  | Arr items ->
    Buffer.add_char b '[';
    List.iteri
      (fun i item ->
        if i > 0 then Buffer.add_char b ',';
        emit b item)
      items;
    Buffer.add_char b ']'
  | Obj fields ->
    Buffer.add_char b '{';
    List.iteri
      (fun i (k, v) ->
        if i > 0 then Buffer.add_char b ',';
        escape_string b k;
        Buffer.add_char b ':';
        emit b v)
      fields;
    Buffer.add_char b '}'

let to_string v =
  let b = Buffer.create 256 in
  emit b v;
  Buffer.contents b

(* Canonical form: every object's fields sorted by key (stable, so a
   duplicated key keeps its first occurrence ahead), applied
   recursively.  Arrays keep their order — element order is data (bucket
   lists, progress curves), field order is not.  Two documents built
   from the same values render byte-identically regardless of the order
   their fields were assembled in, which is what makes FLIGHT_* /
   BENCH_* / FAULTS_* artifacts diffable across runs and revisions. *)
let rec sort_fields = function
  | (Null | Bool _ | Int _ | Float _ | Str _) as v -> v
  | Arr items -> Arr (List.map sort_fields items)
  | Obj fields ->
    Obj
      (List.stable_sort
         (fun (a, _) (b, _) -> String.compare a b)
         (List.map (fun (k, v) -> (k, sort_fields v)) fields))

let to_canonical_string v = to_string (sort_fields v)

(* ---------- parsing ------------------------------------------------- *)

exception Parse_error of string

type state = { s : string; mutable pos : int }

let error st msg =
  raise (Parse_error (Printf.sprintf "%s at offset %d" msg st.pos))

let peek st = if st.pos < String.length st.s then Some st.s.[st.pos] else None

let skip_ws st =
  while
    st.pos < String.length st.s
    && (match st.s.[st.pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false)
  do
    st.pos <- st.pos + 1
  done

let expect st c =
  match peek st with
  | Some c' when c' = c -> st.pos <- st.pos + 1
  | _ -> error st (Printf.sprintf "expected %c" c)

let literal st word value =
  let len = String.length word in
  if
    st.pos + len <= String.length st.s
    && String.sub st.s st.pos len = word
  then begin
    st.pos <- st.pos + len;
    value
  end
  else error st ("expected " ^ word)

let parse_string st =
  expect st '"';
  let b = Buffer.create 16 in
  let rec go () =
    if st.pos >= String.length st.s then error st "unterminated string";
    let c = st.s.[st.pos] in
    st.pos <- st.pos + 1;
    match c with
    | '"' -> Buffer.contents b
    | '\\' ->
      (if st.pos >= String.length st.s then error st "bad escape";
       let e = st.s.[st.pos] in
       st.pos <- st.pos + 1;
       match e with
       | '"' -> Buffer.add_char b '"'
       | '\\' -> Buffer.add_char b '\\'
       | '/' -> Buffer.add_char b '/'
       | 'n' -> Buffer.add_char b '\n'
       | 'r' -> Buffer.add_char b '\r'
       | 't' -> Buffer.add_char b '\t'
       | 'b' -> Buffer.add_char b '\b'
       | 'f' -> Buffer.add_char b '\012'
       | 'u' ->
         if st.pos + 4 > String.length st.s then error st "bad \\u escape";
         let hex = String.sub st.s st.pos 4 in
         st.pos <- st.pos + 4;
         (match int_of_string_opt ("0x" ^ hex) with
         | Some code when code < 0x80 -> Buffer.add_char b (Char.chr code)
         | Some code ->
           (* non-ASCII escapes: emit UTF-8 *)
           if code < 0x800 then begin
             Buffer.add_char b (Char.chr (0xC0 lor (code lsr 6)));
             Buffer.add_char b (Char.chr (0x80 lor (code land 0x3F)))
           end
           else begin
             Buffer.add_char b (Char.chr (0xE0 lor (code lsr 12)));
             Buffer.add_char b (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
             Buffer.add_char b (Char.chr (0x80 lor (code land 0x3F)))
           end
         | None -> error st "bad \\u escape")
       | _ -> error st "bad escape");
      go ()
    | c -> Buffer.add_char b c; go ()
  in
  go ()

let parse_number st =
  let start = st.pos in
  let is_num_char c =
    match c with
    | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
    | _ -> false
  in
  while
    st.pos < String.length st.s && is_num_char st.s.[st.pos]
  do
    st.pos <- st.pos + 1
  done;
  let tok = String.sub st.s start (st.pos - start) in
  let has c = String.contains tok c in
  if has '.' || has 'e' || has 'E' then
    match float_of_string_opt tok with
    | Some f -> Float f
    | None -> error st "bad number"
  else
    match int_of_string_opt tok with
    | Some i -> Int i
    | None ->
      (match float_of_string_opt tok with
      | Some f -> Float f
      | None -> error st "bad number")

let rec parse_value st =
  skip_ws st;
  match peek st with
  | None -> error st "unexpected end of input"
  | Some '{' ->
    expect st '{';
    skip_ws st;
    if peek st = Some '}' then begin
      expect st '}';
      Obj []
    end
    else begin
      let rec fields acc =
        skip_ws st;
        let k = parse_string st in
        skip_ws st;
        expect st ':';
        let v = parse_value st in
        skip_ws st;
        match peek st with
        | Some ',' ->
          expect st ',';
          fields ((k, v) :: acc)
        | Some '}' ->
          expect st '}';
          List.rev ((k, v) :: acc)
        | _ -> error st "expected , or }"
      in
      Obj (fields [])
    end
  | Some '[' ->
    expect st '[';
    skip_ws st;
    if peek st = Some ']' then begin
      expect st ']';
      Arr []
    end
    else begin
      let rec items acc =
        let v = parse_value st in
        skip_ws st;
        match peek st with
        | Some ',' ->
          expect st ',';
          items (v :: acc)
        | Some ']' ->
          expect st ']';
          List.rev (v :: acc)
        | _ -> error st "expected , or ]"
      in
      Arr (items [])
    end
  | Some '"' -> Str (parse_string st)
  | Some 't' -> literal st "true" (Bool true)
  | Some 'f' -> literal st "false" (Bool false)
  | Some 'n' -> literal st "null" Null
  | Some _ -> parse_number st

let of_string s =
  let st = { s; pos = 0 } in
  try
    let v = parse_value st in
    skip_ws st;
    if st.pos <> String.length s then Error "trailing garbage"
    else Ok v
  with Parse_error msg -> Error msg

(* ---------- accessors ----------------------------------------------- *)

let member key = function
  | Obj fields -> List.assoc_opt key fields
  | Null | Bool _ | Int _ | Float _ | Str _ | Arr _ -> None

let to_int = function Int i -> Some i | _ -> None
let to_bool = function Bool b -> Some b | _ -> None
let to_float = function Float f -> Some f | Int i -> Some (float_of_int i) | _ -> None
let to_str = function Str s -> Some s | _ -> None
let to_list = function Arr l -> Some l | _ -> None
