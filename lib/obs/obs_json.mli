(** Minimal JSON values for the observability artifacts (bench records,
    span JSONL) — emitter plus a strict parser, no external deps.

    Floats are printed with the shortest representation that parses back
    to the same bits, so [to_string] / [of_string] round-trips exactly. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

val to_string : t -> string

val sort_fields : t -> t
(** Canonical form: object fields sorted by key, recursively (stable —
    a duplicate key keeps its first occurrence ahead).  Array order is
    preserved: element order is data, field order is not. *)

val to_canonical_string : t -> string
(** [to_string] of {!sort_fields} — the byte-stable rendering every
    machine-readable artifact (FLIGHT/BENCH/FAULTS) is written with, so
    files from identical configurations diff cleanly. *)

val of_string : string -> (t, string) result
(** Strict parse of a complete JSON document; [Error] carries a message
    with the failing offset. *)

(** Accessors; [None] on shape mismatch. *)

val member : string -> t -> t option
val to_int : t -> int option
val to_bool : t -> bool option
val to_float : t -> float option
(** [to_float] also accepts [Int]. *)

val to_str : t -> string option
val to_list : t -> t list option
