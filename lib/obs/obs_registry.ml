(* Metrics registry: named counters, gauges and log-scale histograms,
   each carrying a label set (protocol layer, instance tag, party, ...).

   Handles returned by [counter] / [gauge] / [histogram] are plain
   mutable cells, so the hot path pays one record-field update per
   event; the hashtable lookup happens once, at registration.  The
   snapshot/diff pair turns the registry into an interval meter: take a
   snapshot before an experiment, one after, and [diff] yields exactly
   the traffic of that interval — the algebra the bench harness uses to
   attribute work to each run. *)

type labels = (string * string) list

type counter = { mutable c : int }
type gauge = { mutable g : float }

type metric =
  | Counter of counter
  | Gauge of gauge
  | Histogram of Obs_histogram.t

type key = { name : string; labels : labels }

type t = {
  tbl : (key, metric) Hashtbl.t;
  mutable keys : key list;  (* registration order, newest first *)
}

let create () = { tbl = Hashtbl.create 32; keys = [] }

(* Sorted by (key, value) before deduplicating by key, so when a caller
   passes the same key twice the survivor is deterministic (smallest
   value) instead of depending on the sort's internals. *)
let canon_labels labels =
  let rec dedup = function
    | ((k1, _) as a) :: (k2, _) :: rest when k1 = k2 -> dedup (a :: rest)
    | a :: rest -> a :: dedup rest
    | [] -> []
  in
  dedup (List.sort compare labels)

let kind_name = function
  | Counter _ -> "counter"
  | Gauge _ -> "gauge"
  | Histogram _ -> "histogram"

let register t ~name ~labels fresh project =
  let key = { name; labels = canon_labels labels } in
  match Hashtbl.find_opt t.tbl key with
  | Some m ->
    (match project m with
    | Some v -> v
    | None ->
      invalid_arg
        (Printf.sprintf "Obs_registry: %s already registered as a %s" name
           (kind_name m)))
  | None ->
    let m = fresh () in
    Hashtbl.add t.tbl key m;
    t.keys <- key :: t.keys;
    (match project m with Some v -> v | None -> assert false)

let counter t ?(labels = []) name =
  register t ~name ~labels
    (fun () -> Counter { c = 0 })
    (function Counter c -> Some c | Gauge _ | Histogram _ -> None)

let gauge t ?(labels = []) name =
  register t ~name ~labels
    (fun () -> Gauge { g = 0.0 })
    (function Gauge g -> Some g | Counter _ | Histogram _ -> None)

let histogram t ?(labels = []) name =
  register t ~name ~labels
    (fun () -> Histogram (Obs_histogram.create ()))
    (function Histogram h -> Some h | Counter _ | Gauge _ -> None)

let incr ?(by = 1) c = c.c <- c.c + by
let value c = c.c
let set g v = g.g <- v
let set_max g v = if v > g.g then g.g <- v
let gauge_value g = g.g

let observe t ?labels name v =
  Obs_histogram.observe (histogram t ?labels name) v

let reset t =
  Hashtbl.iter
    (fun _ m ->
      match m with
      | Counter c -> c.c <- 0
      | Gauge g -> g.g <- 0.0
      | Histogram h -> Obs_histogram.reset h)
    t.tbl

(* ---------- snapshots ----------------------------------------------- *)

type value =
  | Vcounter of int
  | Vgauge of float
  | Vhistogram of Obs_histogram.t  (* a private copy *)

type snapshot = (key * value) list  (* sorted by key *)

let snapshot t : snapshot =
  Hashtbl.fold
    (fun key m acc ->
      let v =
        match m with
        | Counter c -> Vcounter c.c
        | Gauge g -> Vgauge g.g
        | Histogram h -> Vhistogram (Obs_histogram.copy h)
      in
      (key, v) :: acc)
    t.tbl []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

(* [diff newer older]: what happened between the two snapshots.
   Counters and histograms subtract; gauges keep the newer level.
   Entries that exist only in [newer] count from zero; entries that
   exist only in [older] are dropped. *)
let diff (newer : snapshot) (older : snapshot) : snapshot =
  List.filter_map
    (fun (key, nv) ->
      match (nv, List.assoc_opt key older) with
      | Vcounter n, Some (Vcounter o) ->
        if n = o then None else Some (key, Vcounter (n - o))
      | Vcounter n, _ -> if n = 0 then None else Some (key, Vcounter n)
      | Vgauge g, _ -> Some (key, Vgauge g)
      | Vhistogram h, Some (Vhistogram o) ->
        let d = Obs_histogram.diff h o in
        if Obs_histogram.count d = 0 then None else Some (key, Vhistogram d)
      | Vhistogram h, _ ->
        if Obs_histogram.count h = 0 then None else Some (key, Vhistogram h))
    newer

let find (snap : snapshot) ?(labels = []) name =
  List.assoc_opt { name; labels = canon_labels labels } snap

let counter_value snap ?labels name =
  match find snap ?labels name with
  | Some (Vcounter c) -> Some c
  | Some (Vgauge _ | Vhistogram _) | None -> None

let labels_to_json labels =
  Obs_json.Obj (List.map (fun (k, v) -> (k, Obs_json.Str v)) labels)

let snapshot_to_json (snap : snapshot) : Obs_json.t =
  let entry kind (key, payload) =
    Obs_json.Obj
      (( "name", Obs_json.Str key.name )
       :: (if key.labels = [] then []
           else [ ("labels", labels_to_json key.labels) ])
       @ [ (kind, payload) ])
  in
  let counters =
    List.filter_map
      (function
        | key, Vcounter c -> Some (entry "value" (key, Obs_json.Int c))
        | _, (Vgauge _ | Vhistogram _) -> None)
      snap
  and gauges =
    List.filter_map
      (function
        | key, Vgauge g -> Some (entry "value" (key, Obs_json.Float g))
        | _, (Vcounter _ | Vhistogram _) -> None)
      snap
  and histograms =
    List.filter_map
      (function
        | key, Vhistogram h ->
          Some (entry "histogram" (key, Obs_histogram.to_json h))
        | _, (Vcounter _ | Vgauge _) -> None)
      snap
  in
  Obs_json.Obj
    [ ("counters", Obs_json.Arr counters);
      ("gauges", Obs_json.Arr gauges);
      ("histograms", Obs_json.Arr histograms) ]

let pp_key fmt key =
  Format.fprintf fmt "%s" key.name;
  if key.labels <> [] then
    Format.fprintf fmt "{%s}"
      (String.concat ","
         (List.map (fun (k, v) -> k ^ "=" ^ v) key.labels))

let pp fmt t =
  List.iter
    (fun (key, v) ->
      match v with
      | Vcounter c -> Format.fprintf fmt "%a = %d@." pp_key key c
      | Vgauge g -> Format.fprintf fmt "%a = %g@." pp_key key g
      | Vhistogram h ->
        Format.fprintf fmt "%a = histogram(count=%d sum=%g)@." pp_key key
          (Obs_histogram.count h) (Obs_histogram.sum h))
    (snapshot t)
