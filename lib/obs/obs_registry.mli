(** Metrics registry: named counters, gauges and log-scale histograms
    with labels (protocol layer, instance tag, party, ...).

    Registration ([counter] / [gauge] / [histogram]) pays one hashtable
    lookup and returns a mutable handle; updates through the handle are
    single field writes, cheap enough for protocol hot paths.  The
    snapshot/diff pair is the interval algebra the bench harness uses:
    snapshot before a run, snapshot after, [diff] is the run. *)

type labels = (string * string) list
(** Label order is irrelevant: keys are canonicalized by sorting. *)

type t

type counter
type gauge

val create : unit -> t

val counter : t -> ?labels:labels -> string -> counter
(** Get or create.  @raise Invalid_argument if the name+labels pair is
    already registered with a different kind. *)

val gauge : t -> ?labels:labels -> string -> gauge
val histogram : t -> ?labels:labels -> string -> Obs_histogram.t

val incr : ?by:int -> counter -> unit
val value : counter -> int
val set : gauge -> float -> unit

val set_max : gauge -> float -> unit
(** Raise the gauge to [v] if below it (high-water marks, e.g. the link
    layer's peak retransmit-buffer depth). *)

val gauge_value : gauge -> float

val observe : t -> ?labels:labels -> string -> float -> unit
(** Convenience: get-or-create the histogram and observe into it. *)

val reset : t -> unit
(** Zero every registered metric (registrations are kept). *)

(** {2 Snapshots} *)

type value =
  | Vcounter of int
  | Vgauge of float
  | Vhistogram of Obs_histogram.t

type key = private { name : string; labels : labels }
type snapshot = (key * value) list

val snapshot : t -> snapshot
(** Deterministic order (sorted by name, then labels); histograms are
    private copies. *)

val diff : snapshot -> snapshot -> snapshot
(** [diff newer older]: counters and histograms subtract (zero-valued
    entries are dropped), gauges keep the newer level, entries only in
    [older] disappear. *)

val find : snapshot -> ?labels:labels -> string -> value option
val counter_value : snapshot -> ?labels:labels -> string -> int option

val snapshot_to_json : snapshot -> Obs_json.t
(** [{"counters": [...], "gauges": [...], "histograms": [...]}] with one
    [{"name", "labels"?, "value" | "histogram"}] entry per metric. *)

val pp : Format.formatter -> t -> unit
(** One [name{labels} = value] line per metric, sorted. *)
