(* Span-based tracer over a bounded ring buffer.

   A span marks an interval of a protocol instance's life (an RBC echo
   phase, an ABBA round, an ABC epoch) against whatever clock the host
   provides — under the simulator that is the virtual clock, so spans
   line up with the adversary's schedule, not wall time.  Points are
   zero-length records (a delivery, a decision).

   Completed records land in a fixed-capacity ring, overwriting the
   oldest when full (the flight-recorder discipline: always-on tracing
   must have bounded memory, and the recent past is the interesting
   part); the number of overwritten records is counted, never silent.
   Everything exports to JSONL, one record per line, and parses back for
   offline analysis. *)

type record = {
  id : int;  (* > 0 for spans, 0 for points *)
  name : string;
  layer : string;
  tag : string;
  party : int;  (* -1 when not bound to a party *)
  src : int;  (* message source for delivery points; -1 otherwise *)
  depth : int;  (* number of spans open when this record began *)
  t_start : float;
  mutable t_end : float;
  mutable detail : string;
}

type t = {
  capacity : int;
  ring : record option array;
  mutable head : int;  (* next write position *)
  mutable filled : int;
  opened : (int, record) Hashtbl.t;
  mutable next_id : int;
  mutable started : int;
  mutable ended : int;
  mutable points : int;
  mutable dropped : int;  (* completed records overwritten by the ring *)
  now : unit -> float;
}

let create ?(capacity = 8192) ~now () =
  if capacity < 1 then invalid_arg "Obs_trace.create: capacity < 1";
  { capacity;
    ring = Array.make capacity None;
    head = 0;
    filled = 0;
    opened = Hashtbl.create 32;
    next_id = 1;
    started = 0;
    ended = 0;
    points = 0;
    dropped = 0;
    now }

let push t r =
  if t.filled = t.capacity then t.dropped <- t.dropped + 1
  else t.filled <- t.filled + 1;
  t.ring.(t.head) <- Some r;
  t.head <- (t.head + 1) mod t.capacity

let span_begin t ?(party = -1) ?(src = -1) ?(tag = "") ?(detail = "") ~layer
    name =
  let id = t.next_id in
  t.next_id <- id + 1;
  t.started <- t.started + 1;
  let at = t.now () in
  let r =
    { id; name; layer; tag; party; src;
      depth = Hashtbl.length t.opened;
      t_start = at; t_end = Float.nan; detail }
  in
  Hashtbl.add t.opened id r;
  id

let span_end t ?detail id =
  if id > 0 then
    match Hashtbl.find_opt t.opened id with
    | None -> ()  (* unknown or already ended: ignore *)
    | Some r ->
      Hashtbl.remove t.opened id;
      r.t_end <- t.now ();
      (match detail with Some d -> r.detail <- d | None -> ());
      t.ended <- t.ended + 1;
      push t r

let point t ?(party = -1) ?(src = -1) ?(tag = "") ?(detail = "") ~layer name =
  let at = t.now () in
  t.points <- t.points + 1;
  push t
    { id = 0; name; layer; tag; party; src;
      depth = Hashtbl.length t.opened;
      t_start = at; t_end = at; detail }

(* Completed records, oldest first, followed by still-open spans (their
   t_end is nan), ordered by start time. *)
let records t =
  let completed = ref [] in
  for i = t.capacity - 1 downto 0 do
    let j = (t.head + i) mod t.capacity in
    match t.ring.(j) with
    | Some r -> completed := r :: !completed
    | None -> ()
  done;
  let still_open =
    Hashtbl.fold (fun _ r acc -> r :: acc) t.opened []
    |> List.sort (fun a b -> compare (a.t_start, a.id) (b.t_start, b.id))
  in
  !completed @ still_open

type stats = {
  spans_started : int;
  spans_ended : int;
  points_recorded : int;
  records_dropped : int;
}

let stats t =
  { spans_started = t.started;
    spans_ended = t.ended;
    points_recorded = t.points;
    records_dropped = t.dropped }

let truncated t = t.dropped > 0

(* The drop count was tracked internally from the start but surfaced
   nowhere machine-readable, so a consumer of an exported window could
   not tell a quiet run from one whose history was overwritten.  Flight
   records embed this object next to every captured window. *)
let stats_to_json (s : stats) : Obs_json.t =
  Obs_json.Obj
    [ ("spans_started", Obs_json.Int s.spans_started);
      ("spans_ended", Obs_json.Int s.spans_ended);
      ("points", Obs_json.Int s.points_recorded);
      ("dropped_events", Obs_json.Int s.records_dropped);
      ("truncated", Obs_json.Bool (s.records_dropped > 0)) ]

(* Bounded window around an anomaly: the records whose start lies within
   [around - span, around + span], newest-biased — when more than
   [max_events] qualify, the ones closest to (and after) the anomaly
   survive and the count of elided earlier records is returned, so the
   hot tier never dumps the whole ring yet always says what it cut. *)
let window t ~around ~span ~max_events =
  let lo = around -. span and hi = around +. span in
  let in_window =
    List.filter (fun r -> r.t_start >= lo && r.t_start <= hi) (records t)
  in
  let total = List.length in_window in
  if total <= max_events then (in_window, 0)
  else
    let elide = total - max_events in
    let rec drop k = function
      | rest when k = 0 -> rest
      | _ :: rest -> drop (k - 1) rest
      | [] -> []
    in
    (drop elide in_window, elide)

let open_count t = Hashtbl.length t.opened

let clear t =
  Array.fill t.ring 0 t.capacity None;
  t.head <- 0;
  t.filled <- 0;
  Hashtbl.reset t.opened;
  t.started <- 0;
  t.ended <- 0;
  t.points <- 0;
  t.dropped <- 0

(* ---------- JSONL --------------------------------------------------- *)

let record_to_json (r : record) : Obs_json.t =
  Obs_json.Obj
    [ ("id", Obs_json.Int r.id);
      ("name", Obs_json.Str r.name);
      ("layer", Obs_json.Str r.layer);
      ("tag", Obs_json.Str r.tag);
      ("party", Obs_json.Int r.party);
      ("src", Obs_json.Int r.src);
      ("depth", Obs_json.Int r.depth);
      ("start", Obs_json.Float r.t_start);
      ("end",
       if Float.is_nan r.t_end then Obs_json.Null else Obs_json.Float r.t_end);
      ("detail", Obs_json.Str r.detail) ]

let record_of_json (j : Obs_json.t) : record option =
  let ( let* ) = Option.bind in
  let int k = Option.bind (Obs_json.member k j) Obs_json.to_int in
  let str k = Option.bind (Obs_json.member k j) Obs_json.to_str in
  let flt k = Option.bind (Obs_json.member k j) Obs_json.to_float in
  let* id = int "id" in
  let* name = str "name" in
  let* layer = str "layer" in
  let* tag = str "tag" in
  let* party = int "party" in
  let* src = int "src" in
  let* depth = int "depth" in
  let* t_start = flt "start" in
  let t_end =
    match Obs_json.member "end" j with
    | Some Obs_json.Null | None -> Float.nan
    | Some v -> (match Obs_json.to_float v with Some f -> f | None -> Float.nan)
  in
  let* detail = str "detail" in
  Some { id; name; layer; tag; party; src; depth; t_start; t_end; detail }

let to_jsonl t =
  let b = Buffer.create 4096 in
  List.iter
    (fun r ->
      Buffer.add_string b (Obs_json.to_string (record_to_json r));
      Buffer.add_char b '\n')
    (records t);
  Buffer.contents b

let of_jsonl (s : string) : (record list, string) result =
  let lines =
    String.split_on_char '\n' s |> List.filter (fun l -> String.trim l <> "")
  in
  let rec go acc lineno = function
    | [] -> Ok (List.rev acc)
    | line :: rest ->
      (match Obs_json.of_string line with
      | Error e -> Error (Printf.sprintf "line %d: %s" lineno e)
      | Ok j ->
        (match record_of_json j with
        | None -> Error (Printf.sprintf "line %d: not a span record" lineno)
        | Some r -> go (r :: acc) (lineno + 1) rest))
  in
  go [] 1 lines
