(** Span-based tracer over a bounded ring buffer.

    Spans mark intervals of a protocol instance's life (an RBC echo
    phase, an ABBA round, an ABC epoch) against a caller-supplied clock
    — under the simulator, the virtual clock.  Points are zero-length
    records (a delivery, a decision).  Completed records land in a
    fixed-capacity ring that overwrites the oldest when full, counting
    what it drops; [to_jsonl]/[of_jsonl] round-trip the buffer as one
    JSON object per line. *)

type record = {
  id : int;  (** > 0 for spans, 0 for points *)
  name : string;
  layer : string;  (** protocol layer: "rbc", "abba", "abc", ... *)
  tag : string;  (** instance tag, e.g. the composed protocol tag *)
  party : int;  (** -1 when not bound to a party *)
  src : int;  (** message source for delivery points; -1 otherwise *)
  depth : int;  (** spans open when this record began *)
  t_start : float;
  mutable t_end : float;  (** [nan] while the span is still open *)
  mutable detail : string;
}

type t

val create : ?capacity:int -> now:(unit -> float) -> unit -> t
(** [capacity] defaults to 8192 completed records.
    @raise Invalid_argument if [capacity < 1]. *)

val span_begin :
  t ->
  ?party:int ->
  ?src:int ->
  ?tag:string ->
  ?detail:string ->
  layer:string ->
  string ->
  int
(** Open a span; returns its id (always > 0). *)

val span_end : t -> ?detail:string -> int -> unit
(** Close a span by id.  Ignores id 0 and unknown/already-closed ids, so
    callers can keep "no span" as 0 without guarding. *)

val point :
  t ->
  ?party:int ->
  ?src:int ->
  ?tag:string ->
  ?detail:string ->
  layer:string ->
  string ->
  unit
(** Record a zero-length event. *)

val records : t -> record list
(** Completed records oldest-first, then still-open spans by start
    time. *)

val open_count : t -> int
(** Number of spans begun but not yet ended. *)

type stats = {
  spans_started : int;
  spans_ended : int;
  points_recorded : int;
  records_dropped : int;  (** completed records overwritten by the ring *)
}

val stats : t -> stats
val clear : t -> unit

val truncated : t -> bool
(** True once the ring has overwritten at least one completed record —
    i.e. any exported window may be missing its oldest history. *)

val stats_to_json : stats -> Obs_json.t
(** Machine-readable stats, including the ["dropped_events"] count and a
    ["truncated"] flag, embedded by flight records so truncated hot
    windows are explicit rather than silently short. *)

val window :
  t -> around:float -> span:float -> max_events:int -> record list * int
(** Records whose start time lies within [around ± span], oldest first,
    capped to the [max_events] closest to the anomaly (earlier records
    are elided first); the second component counts the elided in-window
    records. *)

val record_to_json : record -> Obs_json.t
val record_of_json : Obs_json.t -> record option

val to_jsonl : t -> string
val of_jsonl : string -> (record list, string) result
