(* Cross-run regression diffing over the machine-readable artifacts.

   [sintra compare OLD NEW] loads two summaries of the same schema —
   sintra-flight/1 (campaign flight records), sintra-faults/2 (fault
   campaign reports), sintra-bench/1 (bench records) or sintra-svc/1
   (sustained-load service campaigns) — extracts a flat
   list of named metrics from each, and classifies every delta as
   improved / regressed / neutral.  The first file is the baseline, the
   second the candidate; any regression makes the comparison fail, which
   is what turns a checked-in FLIGHT baseline into a CI gate.

   Two classification regimes:

   - strict metrics (safety violations, gating-liveness violations,
     decided counts) regress on ANY worsening — one new safety trip is a
     regression no threshold excuses;

   - thresholded metrics (decide-time percentiles, retransmit totals,
     buffer peaks, crypto op counts) regress only when the candidate is
     worse by more than [max(abs_eps, rel * |baseline|)], so byte-stable
     reruns compare equal and honest noise stays neutral;

   - informational metrics (wall time — the one wall-clock field the
     artifacts carry) are reported but never classified: they vary by
     machine, not by code under test.

   Structural mismatches — different schemas, or flight cells present on
   one side only — are errors, not regressions: the two files do not
   describe the same experiment, so a verdict would be meaningless. *)

type direction = Lower_better | Higher_better | Info

type strictness = Strict | Threshold

type verdict = Improved | Regressed | Neutral | Informational

type row = {
  metric : string;
  dir : direction;
  strict : strictness;
  baseline : float;
  candidate : float;
  verdict : verdict;
}

type thresholds = { rel : float; abs_eps : float }

let default_thresholds = { rel = 0.10; abs_eps = 1e-9 }

type report = {
  schema : string;
  rows : row list;
  regressed : int;
  improved : int;
}

(* ---------- classification ------------------------------------------- *)

let classify th ~dir ~strict ~baseline ~candidate =
  match dir with
  | Info -> Informational
  | Lower_better | Higher_better ->
    (* worse > 0 means the candidate moved in the bad direction *)
    let worse =
      match dir with
      | Lower_better -> candidate -. baseline
      | Higher_better -> baseline -. candidate
      | Info -> 0.0
    in
    let tol =
      match strict with
      | Strict -> 0.0
      | Threshold -> Float.max th.abs_eps (th.rel *. Float.abs baseline)
    in
    if worse > tol then Regressed
    else if worse < -.tol then Improved
    else Neutral

let make_report ~schema th specs =
  let rows =
    List.map
      (fun (metric, dir, strict, baseline, candidate) ->
        { metric;
          dir;
          strict;
          baseline;
          candidate;
          verdict = classify th ~dir ~strict ~baseline ~candidate })
      specs
  in
  { schema;
    rows;
    regressed = List.length (List.filter (fun r -> r.verdict = Regressed) rows);
    improved = List.length (List.filter (fun r -> r.verdict = Improved) rows) }

(* ---------- JSON helpers --------------------------------------------- *)

let ( let* ) = Result.bind

let ( and* ) a b =
  match (a, b) with
  | Ok x, Ok y -> Ok (x, y)
  | Error e, _ -> Error e
  | _, Error e -> Error e

let path_num doc path =
  let rec walk v = function
    | [] -> Obs_json.to_float v
    | k :: rest -> Option.bind (Obs_json.member k v) (fun v -> walk v rest)
  in
  walk doc path

let need_num doc path =
  match path_num doc path with
  | Some v -> Ok v
  | None ->
    Error
      (Printf.sprintf "missing or non-numeric %S" (String.concat "." path))

(* Stats out of an [Obs_histogram.to_json] object: the sparse
   [[index, count], ...] bucket list reconstructs the same conservative
   percentile the histogram itself reports (bucket upper bound, clamped
   to the observed max). *)
let hist_stats v =
  let num k = Option.bind (Obs_json.member k v) Obs_json.to_float in
  match Option.bind (Obs_json.member "count" v) Obs_json.to_int with
  | None -> None
  | Some 0 -> Some (0, 0.0, 0.0, 0.0)
  | Some count ->
    let sum = Option.value (num "sum") ~default:0.0 in
    let vmax = Option.value (num "max") ~default:0.0 in
    let buckets =
      Option.value
        (Option.bind (Obs_json.member "buckets" v) Obs_json.to_list)
        ~default:[]
      |> List.filter_map (fun pair ->
             match Obs_json.to_list pair with
             | Some [ i; c ] ->
               (match (Obs_json.to_int i, Obs_json.to_int c) with
               | Some i, Some c -> Some (i, c)
               | _ -> None)
             | _ -> None)
    in
    let p95 =
      let target =
        max 1 (min count (int_of_float (ceil (float_of_int count *. 0.95))))
      in
      let rec walk acc = function
        | [] -> vmax
        | (i, c) :: rest ->
          let acc = acc + c in
          if acc >= target then
            if i >= 63 then vmax else Float.min (Float.ldexp 1.0 i) vmax
          else walk acc rest
      in
      walk 0 buckets
    in
    Some (count, sum, vmax, p95)

let hist_mean (count, sum, _, _) =
  if count = 0 then 0.0 else sum /. float_of_int count

(* ---------- per-schema metric extraction ----------------------------- *)

(* flight cells are matched by identity (protocol, policy, mix); a cell
   on one side only is a structural error. *)
let flight_cells doc =
  match Option.bind (Obs_json.member "cells" doc) Obs_json.to_list with
  | None -> Error "missing or non-array \"cells\""
  | Some cells ->
    let tag c =
      let s k =
        Option.value (Option.bind (Obs_json.member k c) Obs_json.to_str)
          ~default:"?"
      in
      Printf.sprintf "%s/%s/%s" (s "protocol") (s "policy") (s "mix")
    in
    Ok (List.map (fun c -> (tag c, c)) cells)

let cell_metrics tag a_cell b_cell =
  let pair name sub =
    let stats c =
      Option.bind (Obs_json.member name c) hist_stats
      |> Option.value ~default:(0, 0.0, 0.0, 0.0)
    in
    let sa = stats a_cell and sb = stats b_cell in
    let pick (_, _, vmax, p95) = function
      | `P95 -> p95
      | `Max -> vmax
    in
    (pick sa sub, pick sb sub)
  in
  let int name =
    let v c =
      Option.value (Option.bind (Obs_json.member name c) Obs_json.to_float)
        ~default:0.0
    in
    (v a_cell, v b_cell)
  in
  let decided_a, decided_b = int "decided" in
  let clock_a, clock_b = pair "decide_clock" `P95 in
  let mean name =
    let m c =
      Option.bind (Obs_json.member name c) hist_stats
      |> Option.value ~default:(0, 0.0, 0.0, 0.0)
      |> hist_mean
    in
    (m a_cell, m b_cell)
  in
  let steps_a, steps_b = mean "steps" in
  let retx_a, retx_b = mean "retransmits" in
  let peak_a, peak_b = pair "buffer_peak" `Max in
  [ (tag ^ " decided", Higher_better, Strict, decided_a, decided_b);
    (tag ^ " decide_clock p95", Lower_better, Threshold, clock_a, clock_b);
    (tag ^ " steps mean", Lower_better, Threshold, steps_a, steps_b);
    (tag ^ " retransmits mean", Lower_better, Threshold, retx_a, retx_b);
    (tag ^ " buffer_peak max", Lower_better, Threshold, peak_a, peak_b) ]

let extract_flight th a b =
  let* runs_a = need_num a [ "runs" ] and* runs_b = need_num b [ "runs" ] in
  let* () =
    if runs_a = runs_b then Ok ()
    else
      Error
        (Printf.sprintf
           "run counts differ (%.0f vs %.0f): not the same experiment shape"
           runs_a runs_b)
  in
  let* cells_a = flight_cells a and* cells_b = flight_cells b in
  let* () =
    let tags cs = List.map fst cs in
    let only_in name xs ys =
      match List.filter (fun t -> not (List.mem t ys)) xs with
      | [] -> Ok ()
      | missing ->
        Error
          (Printf.sprintf "cells only in %s: %s" name
             (String.concat ", " missing))
    in
    let* () = only_in "baseline" (tags cells_a) (tags cells_b) in
    only_in "candidate" (tags cells_b) (tags cells_a)
  in
  let* decided_a = need_num a [ "decided" ]
  and* decided_b = need_num b [ "decided" ] in
  let* safety_a = need_num a [ "violations"; "safety" ]
  and* safety_b = need_num b [ "violations"; "safety" ] in
  let* gating_a = need_num a [ "violations"; "liveness_gating" ]
  and* gating_b = need_num b [ "violations"; "liveness_gating" ] in
  let* dropped_a = need_num a [ "trace"; "dropped_events" ]
  and* dropped_b = need_num b [ "trace"; "dropped_events" ] in
  let anomalies doc kind =
    Option.value
      (path_num doc [ "anomalies"; "counts"; kind ])
      ~default:0.0
  in
  let per_cell =
    List.concat_map
      (fun (tag, cell_a) -> cell_metrics tag cell_a (List.assoc tag cells_b))
      cells_a
  in
  Ok
    (make_report ~schema:"sintra-flight/1" th
       ([ ("decided runs", Higher_better, Strict, decided_a, decided_b);
          ("safety violations", Lower_better, Strict, safety_a, safety_b);
          ( "gating liveness violations",
            Lower_better,
            Strict,
            gating_a,
            gating_b );
          ( "trace dropped_events",
            Lower_better,
            Threshold,
            dropped_a,
            dropped_b );
          ( "anomalies: stall",
            Lower_better,
            Strict,
            anomalies a "stall",
            anomalies b "stall" );
          ( "anomalies: retransmit-storm",
            Lower_better,
            Threshold,
            anomalies a "retransmit-storm",
            anomalies b "retransmit-storm" );
          ( "anomalies: backpressure-peak",
            Lower_better,
            Threshold,
            anomalies a "backpressure-peak",
            anomalies b "backpressure-peak" ) ]
       @ per_cell))

let extract_faults th a b =
  let* safety_a = need_num a [ "violations"; "safety" ]
  and* safety_b = need_num b [ "violations"; "safety" ] in
  let* gating_a = need_num a [ "violations"; "liveness_gating" ]
  and* gating_b = need_num b [ "violations"; "liveness_gating" ] in
  let* liveness_a = need_num a [ "violations"; "liveness" ]
  and* liveness_b = need_num b [ "violations"; "liveness" ] in
  let* retx_a = need_num a [ "link"; "retransmits_total" ]
  and* retx_b = need_num b [ "link"; "retransmits_total" ] in
  let* wall_a = need_num a [ "wall_time_s" ]
  and* wall_b = need_num b [ "wall_time_s" ] in
  Ok
    (make_report ~schema:"sintra-faults/2" th
       [ ("safety violations", Lower_better, Strict, safety_a, safety_b);
         ( "gating liveness violations",
           Lower_better,
           Strict,
           gating_a,
           gating_b );
         ("liveness violations", Lower_better, Threshold, liveness_a, liveness_b);
         ("link retransmits", Lower_better, Threshold, retx_a, retx_b);
         ("wall time (s)", Info, Threshold, wall_a, wall_b) ])

let extract_bench th a b =
  let* vt_a = need_num a [ "virtual_time_total" ]
  and* vt_b = need_num b [ "virtual_time_total" ] in
  let* wall_a = need_num a [ "wall_time_s" ]
  and* wall_b = need_num b [ "wall_time_s" ] in
  let crypto doc =
    match Obs_json.member "crypto_ops" doc with
    | Some (Obs_json.Obj fields) ->
      List.filter_map
        (fun (k, v) -> Option.map (fun f -> (k, f)) (Obs_json.to_float v))
        fields
    | _ -> []
  in
  let ca = crypto a and cb = crypto b in
  let crypto_rows =
    List.filter_map
      (fun (k, va) ->
        Option.map
          (fun vb -> ("crypto " ^ k, Lower_better, Threshold, va, vb))
          (List.assoc_opt k cb))
      ca
  in
  (* throughput extras, when both sides carry them *)
  let tput_rows =
    match (path_num a [ "decided_per_1k_steps" ], path_num b [ "decided_per_1k_steps" ]) with
    | Some va, Some vb ->
      [ ("decided per 1k steps", Higher_better, Threshold, va, vb) ]
    | _ -> []
  in
  Ok
    (make_report ~schema:"sintra-bench/1" th
       ([ ("virtual time total", Lower_better, Threshold, vt_a, vt_b);
          ("wall time (s)", Info, Threshold, wall_a, wall_b) ]
       @ crypto_rows @ tput_rows))

let extract_svc th a b =
  let* safety_a = need_num a [ "violations"; "safety" ]
  and* safety_b = need_num b [ "violations"; "safety" ] in
  let* cert_a = need_num a [ "requests"; "cert_failures" ]
  and* cert_b = need_num b [ "requests"; "cert_failures" ] in
  let* target_a = need_num a [ "requests"; "target" ]
  and* target_b = need_num b [ "requests"; "target" ] in
  let* compl_a = need_num a [ "requests"; "completed" ]
  and* compl_b = need_num b [ "requests"; "completed" ] in
  let* rate_a = need_num a [ "fastpath"; "rate" ]
  and* rate_b = need_num b [ "fastpath"; "rate" ] in
  let* tput_a = need_num a [ "throughput"; "requests_per_kstep" ]
  and* tput_b = need_num b [ "throughput"; "requests_per_kstep" ] in
  let* peak_a = need_num a [ "memory"; "plain_log_peak" ]
  and* peak_b = need_num b [ "memory"; "plain_log_peak" ] in
  let* retries_a = need_num a [ "loss"; "retries" ]
  and* retries_b = need_num b [ "loss"; "retries" ] in
  let* timeouts_a = need_num a [ "loss"; "timeouts" ]
  and* timeouts_b = need_num b [ "loss"; "timeouts" ] in
  let* wall_a = need_num a [ "wall_time_s" ]
  and* wall_b = need_num b [ "wall_time_s" ] in
  Ok
    (make_report ~schema:"sintra-svc/1" th
       [ ("safety violations", Lower_better, Strict, safety_a, safety_b);
         ("certificate failures", Lower_better, Strict, cert_a, cert_b);
         ( "missed requests",
           Lower_better,
           Strict,
           target_a -. compl_a,
           target_b -. compl_b );
         ( "requests per 1k steps",
           Higher_better,
           Threshold,
           tput_a,
           tput_b );
         ("fast-path rate", Higher_better, Threshold, rate_a, rate_b);
         ("GC'd log peak", Lower_better, Threshold, peak_a, peak_b);
         ("client retries", Lower_better, Threshold, retries_a, retries_b);
         ( "client timeouts",
           Lower_better,
           Threshold,
           timeouts_a,
           timeouts_b );
         ("wall time (s)", Info, Threshold, wall_a, wall_b) ])

(* ---------- entry points --------------------------------------------- *)

let schema_of doc =
  match Option.bind (Obs_json.member "schema" doc) Obs_json.to_str with
  | Some s -> Ok s
  | None -> Error "missing \"schema\" member"

let compare_docs ?(thresholds = default_thresholds) ~baseline ~candidate () =
  let* sa = schema_of baseline in
  let* sb = schema_of candidate in
  let* () =
    if sa = sb then Ok ()
    else Error (Printf.sprintf "schema mismatch: %s vs %s" sa sb)
  in
  match sa with
  | "sintra-flight/1" -> extract_flight thresholds baseline candidate
  | "sintra-faults/2" -> extract_faults thresholds baseline candidate
  | "sintra-bench/1" -> extract_bench thresholds baseline candidate
  | "sintra-svc/1" -> extract_svc thresholds baseline candidate
  | s -> Error (Printf.sprintf "cannot compare schema %s" s)

let load_file path =
  match
    let ic = open_in_bin path in
    let n = in_channel_length ic in
    let s = really_input_string ic n in
    close_in ic;
    s
  with
  | s ->
    (match Obs_json.of_string (String.trim s) with
    | Ok doc -> Ok doc
    | Error e -> Error (Printf.sprintf "%s: %s" path e))
  | exception Sys_error e -> Error e

let compare_files ?thresholds a b =
  let* baseline = load_file a in
  let* candidate = load_file b in
  compare_docs ?thresholds ~baseline ~candidate ()

(* ---------- rendering ------------------------------------------------- *)

let verdict_label = function
  | Improved -> "improved"
  | Regressed -> "REGRESSED"
  | Neutral -> "neutral"
  | Informational -> "info"

let pp_report fmt (r : report) =
  Format.fprintf fmt "schema %s: %d metrics, %d improved, %d regressed@."
    r.schema (List.length r.rows) r.improved r.regressed;
  List.iter
    (fun row ->
      let delta = row.candidate -. row.baseline in
      Format.fprintf fmt "  %-9s %-34s %14.2f -> %14.2f  (%+.2f)@."
        (verdict_label row.verdict)
        row.metric row.baseline row.candidate delta)
    r.rows;
  if r.regressed > 0 then
    Format.fprintf fmt "REGRESSION: %d metric(s) worsened@." r.regressed
  else Format.fprintf fmt "no regressions@."

let ok (r : report) = r.regressed = 0
