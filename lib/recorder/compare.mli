(** Cross-run regression diffing over the machine-readable artifacts
    (sintra-flight/1, sintra-faults/2, sintra-bench/1).

    [compare OLD NEW] treats the first document as the baseline and the
    second as the candidate, extracts a flat list of named metrics from
    each, and classifies every delta.  Strict metrics (safety
    violations, gating-liveness violations, decided counts) regress on
    any worsening; thresholded metrics tolerate
    [max(abs_eps, rel * |baseline|)]; wall time is reported but never
    classified.  Structural mismatches — different schemas, flight
    cells present on one side only, different run counts — are errors
    ([Error _]), not regressions: the files do not describe the same
    experiment. *)

type direction = Lower_better | Higher_better | Info
type strictness = Strict | Threshold
type verdict = Improved | Regressed | Neutral | Informational

type row = {
  metric : string;
  dir : direction;
  strict : strictness;
  baseline : float;
  candidate : float;
  verdict : verdict;
}

type thresholds = { rel : float; abs_eps : float }

val default_thresholds : thresholds
(** [rel = 0.10], [abs_eps = 1e-9] — byte-stable reruns compare equal. *)

type report = {
  schema : string;
  rows : row list;
  regressed : int;
  improved : int;
}

val classify :
  thresholds ->
  dir:direction ->
  strict:strictness ->
  baseline:float ->
  candidate:float ->
  verdict

val compare_docs :
  ?thresholds:thresholds ->
  baseline:Obs_json.t ->
  candidate:Obs_json.t ->
  unit ->
  (report, string) result

val compare_files :
  ?thresholds:thresholds -> string -> string -> (report, string) result
(** [compare_files baseline candidate]. *)

val ok : report -> bool
(** No regressed rows. *)

val pp_report : Format.formatter -> report -> unit
