(* Campaign flight recorder: tiered telemetry for fault campaigns.

   Tier 1 (hot): while a run executes, a span tracer fills a bounded
   ring (the flight-recorder discipline — always on, bounded memory, the
   recent past is the interesting part).  The ring is only *kept* when
   something anomalous happened: a safety-oracle trip, an Out_of_steps
   stall, a retransmit storm or a back-pressure peak.  Around each
   anomaly a bounded window of trace records is cut out of the ring; the
   rest is discarded, and every window states explicitly how much of its
   in-window history was elided (cap) or overwritten (ring truncation —
   the [dropped_events] counter).

   Tier 2 (durable): per-run scalars are aggregated into one
   FLIGHT_<id>.json per campaign — per-cell histograms (decide time,
   steps, retransmits, buffer peaks), per-layer counter rollups,
   worst-run pointers, anomaly records.  The summary is derived from
   seeded runs only (virtual time, registry deltas — never wall time)
   and rendered canonically, so identical configurations produce
   byte-identical summaries: the property the compare engine's
   regression gate rests on.

   This module knows nothing about protocols or campaigns: the campaign
   runner (lib/faults) feeds it via [run_begin] / [note_anomaly] /
   [run_end], passing plain strings and scalars. *)

type window_policy = {
  trace_capacity : int;  (* hot ring size (records) per run *)
  window_span : float;  (* virtual-time radius captured around an anomaly *)
  max_window_events : int;  (* per-anomaly record cap *)
  max_anomalies_per_run : int;
  retransmit_storm : int;  (* per-run retransmit delta that counts as a storm *)
  backpressure_peak : int;  (* per-run link buffer peak that counts as a spike *)
}

let default_policy =
  { trace_capacity = 4096;
    window_span = 300.0;
    max_window_events = 48;
    max_anomalies_per_run = 4;
    retransmit_storm = 200;
    backpressure_peak = 48 }

type anomaly_kind =
  | Safety_trip
  | Stall
  | Retransmit_storm
  | Backpressure_peak
  | State_transfer

let kind_label = function
  | Safety_trip -> "safety-trip"
  | Stall -> "stall"
  | Retransmit_storm -> "retransmit-storm"
  | Backpressure_peak -> "backpressure-peak"
  | State_transfer -> "state-transfer"

let kind_of_label = function
  | "safety-trip" -> Some Safety_trip
  | "stall" -> Some Stall
  | "retransmit-storm" -> Some Retransmit_storm
  | "backpressure-peak" -> Some Backpressure_peak
  | "state-transfer" -> Some State_transfer
  | _ -> None

let all_kinds =
  [ Safety_trip; Stall; Retransmit_storm; Backpressure_peak; State_transfer ]

(* Severity order for the capped anomaly archive: safety first. *)
let kind_rank = function
  | Safety_trip -> 0
  | Stall -> 1
  | Retransmit_storm -> 2
  | Backpressure_peak -> 3
  | State_transfer -> 4

type run_key = { protocol : string; policy : string; mix : string; seed : int }

let key_to_string k =
  Printf.sprintf "%s/%s/%s/%d" k.protocol k.policy k.mix k.seed

type anomaly = {
  a_kind : anomaly_kind;
  a_at : float;  (* virtual time the anomaly was noted at *)
  a_detail : string;
  a_window : Obs_trace.record list;  (* bounded hot window, oldest first *)
  a_elided : int;  (* in-window records cut by the per-anomaly cap *)
}

type run_flight = {
  f_key : run_key;
  f_decided : bool;
  f_gating : bool;  (* effectively reliable: liveness violations gate *)
  f_decide_clock : float option;
  f_steps : int;
  f_safety : int;
  f_liveness : int;
  f_retransmits : int;
  f_buffer_peak : int;
  f_counters : (Obs_registry.labels * string * int) list;
      (* this run's counter deltas, flattened for layer rollups *)
  f_trace : Obs_trace.stats;  (* incl. dropped_events (ring overwrites) *)
  f_anomalies : anomaly list;
}

type recorder = {
  policy : window_policy;
  obs : Obs.t;
  tracer : Obs_trace.t;
  clock : (unit -> float) ref;
  mutable snap0 : Obs_registry.snapshot;
  mutable stats0 : Obs_trace.stats;
  mutable notes : (anomaly_kind * float * string) list;  (* newest first *)
  mutable runs_rev : run_flight list;
}

let create ?(policy = default_policy) ~obs () =
  let clock = ref (fun () -> 0.0) in
  let tracer =
    Obs_trace.create ~capacity:policy.trace_capacity
      ~now:(fun () -> !clock ())
      ()
  in
  Obs.set_tracer obs tracer;
  { policy;
    obs;
    tracer;
    clock;
    snap0 = Obs.snapshot obs;
    stats0 = Obs_trace.stats tracer;
    notes = [];
    runs_rev = [] }

let run_begin t ~now =
  t.clock := now;
  Obs_trace.clear t.tracer;
  t.notes <- [];
  t.stats0 <- Obs_trace.stats t.tracer;
  t.snap0 <- Obs.snapshot t.obs

let note_anomaly t ?at ~detail kind =
  let at = match at with Some a -> a | None -> !(t.clock) () in
  t.notes <- (kind, at, detail) :: t.notes

let link_labels = [ ("layer", "link") ]

let counter_delta counters ?(labels = []) name =
  match
    List.find_opt
      (fun (ls, n, _) -> n = name && ls = List.sort compare labels)
      counters
  with
  | Some (_, _, v) -> v
  | None -> 0

let run_end t ~key ~decided ~gating ~decide_clock ~steps ~safety ~liveness
    ~buffer_peak =
  let snap1 = Obs.snapshot t.obs in
  let delta = Obs_registry.diff snap1 t.snap0 in
  let counters =
    List.filter_map
      (fun ((k : Obs_registry.key), v) ->
        match v with
        | Obs_registry.Vcounter c -> Some (k.Obs_registry.labels, k.name, c)
        | Obs_registry.Vgauge _ | Obs_registry.Vhistogram _ -> None)
      delta
  in
  let retransmits = counter_delta counters ~labels:link_labels "link_retransmit" in
  (* Derived anomalies from the per-run registry delta. *)
  if retransmits >= t.policy.retransmit_storm then
    note_anomaly t Retransmit_storm
      ~detail:(Printf.sprintf "%d retransmissions in one run" retransmits);
  if buffer_peak >= t.policy.backpressure_peak then
    note_anomaly t Backpressure_peak
      ~detail:(Printf.sprintf "link buffer peaked at %d frames" buffer_peak);
  let trace_stats =
    let s1 = Obs_trace.stats t.tracer and s0 = t.stats0 in
    { Obs_trace.spans_started = s1.Obs_trace.spans_started - s0.Obs_trace.spans_started;
      spans_ended = s1.Obs_trace.spans_ended - s0.Obs_trace.spans_ended;
      points_recorded = s1.Obs_trace.points_recorded - s0.Obs_trace.points_recorded;
      records_dropped = s1.Obs_trace.records_dropped - s0.Obs_trace.records_dropped }
  in
  (* Cut a bounded window out of the hot ring for each noted anomaly,
     oldest note first, capped per run. *)
  let anomalies =
    List.rev t.notes
    |> List.filteri (fun i _ -> i < t.policy.max_anomalies_per_run)
    |> List.map (fun (kind, at, detail) ->
           let w, elided =
             Obs_trace.window t.tracer ~around:at ~span:t.policy.window_span
               ~max_events:t.policy.max_window_events
           in
           { a_kind = kind; a_at = at; a_detail = detail; a_window = w;
             a_elided = elided })
  in
  (* Mirror the hot tier's accounting into the registry, so ordinary
     metric snapshots state how often windows were truncated and what
     anomaly kinds fired (satellite: dropped_events in snapshots).  This
     happens after the delta above, so it lands in campaign-level
     snapshots without polluting the next run's delta ([run_begin]
     re-snapshots). *)
  if trace_stats.Obs_trace.records_dropped > 0 then
    Obs.incr t.obs
      ~labels:[ ("layer", "obs") ]
      ~by:trace_stats.Obs_trace.records_dropped "trace_dropped_events";
  List.iter
    (fun a ->
      Obs.incr t.obs
        ~labels:[ ("layer", "flight"); ("kind", kind_label a.a_kind) ]
        "flight_anomaly")
    anomalies;
  t.runs_rev <-
    { f_key = key;
      f_decided = decided;
      f_gating = gating;
      f_decide_clock = decide_clock;
      f_steps = steps;
      f_safety = safety;
      f_liveness = liveness;
      f_retransmits = retransmits;
      f_buffer_peak = buffer_peak;
      f_counters = counters;
      f_trace = trace_stats;
      f_anomalies = anomalies }
    :: t.runs_rev;
  t.notes <- []

let runs t = List.rev t.runs_rev

(* ---------- durable tier: the campaign summary ----------------------- *)

type cell = {
  c_protocol : string;
  c_policy : string;
  c_mix : string;
  c_runs : int;
  c_decided : int;
  c_safety : int;
  c_liveness : int;
  c_decide : Obs_histogram.t;  (* decide clocks of decided runs *)
  c_steps : Obs_histogram.t;
  c_retransmits : Obs_histogram.t;
  c_peak : Obs_histogram.t;
}

type worst = {
  w_slowest : (run_key * float) option;  (* largest decide clock *)
  w_undecided : run_key option;  (* first run that never decided *)
  w_retransmits : (run_key * int) option;
  w_peak : (run_key * int) option;
}

type summary = {
  s_id : string;
  s_config : Obs_json.t;  (* opaque configuration echo from the caller *)
  s_runs : int;
  s_decided : int;
  s_safety : int;
  s_liveness : int;
  s_gating_liveness : int;
  s_cells : cell list;  (* first-seen order, which is execution order *)
  s_rollups : ((string * string) * int) list;  (* (layer, counter) totals *)
  s_dropped_events : int;  (* hot-ring overwrites across all runs *)
  s_truncated_runs : int;  (* runs whose ring overwrote at least once *)
  s_worst : worst;
  s_anomaly_counts : (anomaly_kind * int) list;
  s_anomalies : (run_key * anomaly) list;  (* capped archive *)
}

let max_archived_anomalies = 12

let label_value labels k =
  match List.assoc_opt k labels with Some v -> v | None -> ""

let summarize ~id ~config (runs : run_flight list) =
  let cells = Hashtbl.create 16 in
  let order = ref [] in
  let cell_of r =
    let key = (r.f_key.protocol, r.f_key.policy, r.f_key.mix) in
    match Hashtbl.find_opt cells key with
    | Some c -> c
    | None ->
      let c =
        ref
          { c_protocol = r.f_key.protocol;
            c_policy = r.f_key.policy;
            c_mix = r.f_key.mix;
            c_runs = 0;
            c_decided = 0;
            c_safety = 0;
            c_liveness = 0;
            c_decide = Obs_histogram.create ();
            c_steps = Obs_histogram.create ();
            c_retransmits = Obs_histogram.create ();
            c_peak = Obs_histogram.create () }
      in
      Hashtbl.add cells key c;
      order := key :: !order;
      c
  in
  let rollups = Hashtbl.create 32 in
  let worst_slow = ref None and worst_undecided = ref None in
  let worst_retx = ref None and worst_peak = ref None in
  let anomaly_counts = Hashtbl.create 4 in
  let archived = ref [] in
  let dropped = ref 0 and truncated_runs = ref 0 in
  List.iter
    (fun r ->
      let c = cell_of r in
      let v = !c in
      (match r.f_decide_clock with
      | Some clk ->
        Obs_histogram.observe v.c_decide clk;
        (match !worst_slow with
        | Some (_, best) when best >= clk -> ()
        | _ -> worst_slow := Some (r.f_key, clk))
      | None ->
        if !worst_undecided = None then worst_undecided := Some r.f_key);
      Obs_histogram.observe v.c_steps (float_of_int r.f_steps);
      Obs_histogram.observe v.c_retransmits (float_of_int r.f_retransmits);
      Obs_histogram.observe v.c_peak (float_of_int r.f_buffer_peak);
      c :=
        { v with
          c_runs = v.c_runs + 1;
          c_decided = (v.c_decided + if r.f_decided then 1 else 0);
          c_safety = v.c_safety + r.f_safety;
          c_liveness = v.c_liveness + r.f_liveness };
      (match !worst_retx with
      | Some (_, best) when best >= r.f_retransmits -> ()
      | _ -> worst_retx := Some (r.f_key, r.f_retransmits));
      (match !worst_peak with
      | Some (_, best) when best >= r.f_buffer_peak -> ()
      | _ -> worst_peak := Some (r.f_key, r.f_buffer_peak));
      List.iter
        (fun (labels, name, v) ->
          let k = (label_value labels "layer", name) in
          Hashtbl.replace rollups k
            (v + Option.value (Hashtbl.find_opt rollups k) ~default:0))
        r.f_counters;
      let d = r.f_trace.Obs_trace.records_dropped in
      dropped := !dropped + d;
      if d > 0 then incr truncated_runs;
      List.iter
        (fun a ->
          Hashtbl.replace anomaly_counts a.a_kind
            (1 + Option.value (Hashtbl.find_opt anomaly_counts a.a_kind) ~default:0);
          archived := (r.f_key, a) :: !archived)
        r.f_anomalies)
    runs;
  let cells_list =
    List.rev_map (fun key -> !(Hashtbl.find cells key)) !order
  in
  let archived =
    (* safety first, then stalls, then storms/peaks; stable within a
       kind (execution order), capped *)
    List.stable_sort
      (fun (_, a) (_, b) -> compare (kind_rank a.a_kind) (kind_rank b.a_kind))
      (List.rev !archived)
    |> List.filteri (fun i _ -> i < max_archived_anomalies)
  in
  { s_id = id;
    s_config = config;
    s_runs = List.length runs;
    s_decided = List.length (List.filter (fun r -> r.f_decided) runs);
    s_safety = List.fold_left (fun a r -> a + r.f_safety) 0 runs;
    s_liveness = List.fold_left (fun a r -> a + r.f_liveness) 0 runs;
    s_gating_liveness =
      List.fold_left
        (fun a r -> if r.f_gating then a + r.f_liveness else a)
        0 runs;
    s_cells = cells_list;
    s_rollups =
      Hashtbl.fold (fun k v acc -> (k, v) :: acc) rollups []
      |> List.sort compare;
    s_dropped_events = !dropped;
    s_truncated_runs = !truncated_runs;
    s_worst =
      { w_slowest = !worst_slow;
        w_undecided = !worst_undecided;
        w_retransmits = !worst_retx;
        w_peak = !worst_peak };
    s_anomaly_counts =
      List.filter_map
        (fun k ->
          Option.map (fun c -> (k, c)) (Hashtbl.find_opt anomaly_counts k))
        all_kinds;
    s_anomalies = archived }

(* ---------- JSON ------------------------------------------------------ *)

(* /1: first version of the flight summary. *)
let schema = "sintra-flight/1"

let out_path id = Printf.sprintf "FLIGHT_%s.json" id

let key_json k =
  Obs_json.Obj
    [ ("protocol", Obs_json.Str k.protocol);
      ("policy", Obs_json.Str k.policy);
      ("mix", Obs_json.Str k.mix);
      ("seed", Obs_json.Int k.seed) ]

let anomaly_json (k, a) =
  Obs_json.Obj
    [ ("kind", Obs_json.Str (kind_label a.a_kind));
      ("run", key_json k);
      ("at", Obs_json.Float a.a_at);
      ("detail", Obs_json.Str a.a_detail);
      ("window_elided", Obs_json.Int a.a_elided);
      ( "window",
        Obs_json.Arr (List.map Obs_trace.record_to_json a.a_window) ) ]

let cell_json c =
  Obs_json.Obj
    [ ("protocol", Obs_json.Str c.c_protocol);
      ("policy", Obs_json.Str c.c_policy);
      ("mix", Obs_json.Str c.c_mix);
      ("runs", Obs_json.Int c.c_runs);
      ("decided", Obs_json.Int c.c_decided);
      ("safety", Obs_json.Int c.c_safety);
      ("liveness", Obs_json.Int c.c_liveness);
      ("decide_clock", Obs_histogram.to_json c.c_decide);
      ("steps", Obs_histogram.to_json c.c_steps);
      ("retransmits", Obs_histogram.to_json c.c_retransmits);
      ("buffer_peak", Obs_histogram.to_json c.c_peak) ]

let worst_ref_json = function
  | None -> Obs_json.Null
  | Some (k, v) ->
    Obs_json.Obj [ ("run", key_json k); ("value", Obs_json.Float v) ]

let to_json (s : summary) : Obs_json.t =
  Obs_json.Obj
    [ ("schema", Obs_json.Str schema);
      ("experiment", Obs_json.Str s.s_id);
      ("config", s.s_config);
      ("runs", Obs_json.Int s.s_runs);
      ("decided", Obs_json.Int s.s_decided);
      ( "violations",
        Obs_json.Obj
          [ ("safety", Obs_json.Int s.s_safety);
            ("liveness", Obs_json.Int s.s_liveness);
            ("liveness_gating", Obs_json.Int s.s_gating_liveness) ] );
      ("cells", Obs_json.Arr (List.map cell_json s.s_cells));
      ( "rollups",
        Obs_json.Arr
          (List.map
             (fun ((layer, name), total) ->
               Obs_json.Obj
                 [ ("layer", Obs_json.Str layer);
                   ("counter", Obs_json.Str name);
                   ("total", Obs_json.Int total) ])
             s.s_rollups) );
      ( "trace",
        Obs_json.Obj
          [ ("dropped_events", Obs_json.Int s.s_dropped_events);
            ("truncated_runs", Obs_json.Int s.s_truncated_runs) ] );
      ( "worst",
        Obs_json.Obj
          [ ("slowest", worst_ref_json s.s_worst.w_slowest);
            ( "undecided",
              match s.s_worst.w_undecided with
              | None -> Obs_json.Null
              | Some k -> key_json k );
            ( "retransmits",
              worst_ref_json
                (Option.map
                   (fun (k, v) -> (k, float_of_int v))
                   s.s_worst.w_retransmits) );
            ( "buffer_peak",
              worst_ref_json
                (Option.map
                   (fun (k, v) -> (k, float_of_int v))
                   s.s_worst.w_peak) ) ] );
      ( "anomalies",
        Obs_json.Obj
          [ ( "counts",
              Obs_json.Obj
                (List.map
                   (fun (k, c) -> (kind_label k, Obs_json.Int c))
                   s.s_anomaly_counts) );
            ("records", Obs_json.Arr (List.map anomaly_json s.s_anomalies)) ]
      ) ]

let write ~id (s : summary) =
  let path = out_path id in
  let oc = open_out path in
  output_string oc (Obs_json.to_canonical_string (to_json s));
  output_char oc '\n';
  close_out oc;
  path

(* Shape validator, dispatched by the CLI's bench-check like the bench
   and faults schemas. *)
let validate_json (doc : Obs_json.t) : (unit, string) result =
  let ( let* ) = Result.bind in
  let need kind name conv =
    match Option.bind (Obs_json.member name doc) conv with
    | Some v -> Ok v
    | None -> Error (Printf.sprintf "missing or non-%s member %S" kind name)
  in
  let* s = need "string" "schema" Obs_json.to_str in
  let* () = if s = schema then Ok () else Error ("unexpected schema " ^ s) in
  let* _ = need "string" "experiment" Obs_json.to_str in
  let* runs = need "int" "runs" Obs_json.to_int in
  let* decided = need "int" "decided" Obs_json.to_int in
  let* () =
    if runs >= 0 && decided >= 0 && decided <= runs then Ok ()
    else Error "\"decided\" outside [0, runs]"
  in
  let obj_int parent name =
    match
      Option.bind (Obs_json.member parent doc) (fun o ->
          Option.bind (Obs_json.member name o) Obs_json.to_int)
    with
    | Some v -> Ok v
    | None ->
      Error (Printf.sprintf "missing or non-int member %S.%S" parent name)
  in
  let* safety = obj_int "violations" "safety" in
  let* gating = obj_int "violations" "liveness_gating" in
  let* () =
    if safety >= 0 && gating >= 0 then Ok ()
    else Error "negative violation count"
  in
  let* dropped = obj_int "trace" "dropped_events" in
  let* () =
    if dropped >= 0 then Ok () else Error "negative \"trace\".\"dropped_events\""
  in
  let* cells =
    match Option.bind (Obs_json.member "cells" doc) Obs_json.to_list with
    | Some cs -> Ok cs
    | None -> Error "missing or non-array \"cells\""
  in
  let* () =
    if runs = 0 || cells <> [] then Ok ()
    else Error "non-empty campaign with no cells"
  in
  let check_cell i c =
    let int k = Option.bind (Obs_json.member k c) Obs_json.to_int in
    match (int "runs", int "decided") with
    | Some r, Some d when d >= 0 && d <= r ->
      (match
         Option.bind (Obs_json.member "decide_clock" c) (Obs_json.member "count")
       with
      | Some _ -> Ok ()
      | None -> Error (Printf.sprintf "cell %d: missing decide_clock histogram" i))
    | _ -> Error (Printf.sprintf "cell %d: bad runs/decided" i)
  in
  let rec check_cells i = function
    | [] -> Ok ()
    | c :: rest ->
      let* () = check_cell i c in
      check_cells (i + 1) rest
  in
  let* () = check_cells 0 cells in
  let* () =
    match Obs_json.member "anomalies" doc with
    | Some a when Obs_json.member "counts" a <> None -> Ok ()
    | Some _ -> Error "\"anomalies\" has no \"counts\""
    | None -> Error "missing \"anomalies\" section"
  in
  Ok ()

(* ---------- pretty summary ------------------------------------------- *)

let pp_summary fmt (s : summary) =
  Format.fprintf fmt "flight %s: %d runs, %d decided, %d safety, %d gating liveness@."
    s.s_id s.s_runs s.s_decided s.s_safety s.s_gating_liveness;
  List.iter
    (fun c ->
      Format.fprintf fmt
        "  %-5s %-11s %-10s %3d/%-3d decided  p95 clock %8.0f  retx p95 %6.0f  peak max %4.0f@."
        c.c_protocol c.c_policy c.c_mix c.c_decided c.c_runs
        (Option.value (Obs_histogram.percentile c.c_decide 95.0) ~default:nan)
        (Option.value (Obs_histogram.percentile c.c_retransmits 95.0)
           ~default:0.0)
        (Option.value (Obs_histogram.max_value c.c_peak) ~default:0.0))
    s.s_cells;
  List.iter
    (fun (k, c) ->
      Format.fprintf fmt "  anomaly %-17s x%d@." (kind_label k) c)
    s.s_anomaly_counts;
  if s.s_dropped_events > 0 then
    Format.fprintf fmt
      "  hot ring truncated in %d runs (%d records overwritten)@."
      s.s_truncated_runs s.s_dropped_events
