(** Campaign flight recorder: tiered telemetry for fault campaigns.

    The hot tier taps the {!Obs_trace} ring while a run executes and
    keeps bounded event windows only around anomalies (safety-oracle
    trips, [Out_of_steps] stalls, retransmit storms, back-pressure
    peaks); every window states how much history was elided or
    overwritten.  The durable tier aggregates per-run scalars into one
    [FLIGHT_<id>.json] per campaign — per-cell histograms, per-layer
    counter rollups, worst-run pointers — derived exclusively from
    seeded virtual-time runs and rendered canonically, so identical
    configurations produce byte-identical summaries.  {!Compare} builds
    its regression gate on that property.

    The recorder depends only on sintra_obs: the campaign runner
    (lib/faults) feeds it plain strings and scalars through
    {!run_begin} / {!note_anomaly} / {!run_end}. *)

(** {2 Hot tier} *)

type window_policy = {
  trace_capacity : int;  (** hot ring size (records) per run *)
  window_span : float;  (** virtual-time radius captured around an anomaly *)
  max_window_events : int;  (** per-anomaly record cap *)
  max_anomalies_per_run : int;
  retransmit_storm : int;
      (** per-run retransmit delta that counts as a storm *)
  backpressure_peak : int;
      (** per-run link buffer peak that counts as a spike *)
}

val default_policy : window_policy

type anomaly_kind =
  | Safety_trip
  | Stall
  | Retransmit_storm
  | Backpressure_peak
  | State_transfer
      (** a replica adopted remote state via certified catch-up — rare
          enough that the surrounding trace window is always worth
          keeping *)

val kind_label : anomaly_kind -> string
(** ["safety-trip"], ["stall"], ["retransmit-storm"],
    ["backpressure-peak"] — the [kind] strings in FLIGHT files and the
    [flight_anomaly] counter labels. *)

val kind_of_label : string -> anomaly_kind option

type run_key = { protocol : string; policy : string; mix : string; seed : int }

val key_to_string : run_key -> string
(** ["protocol/policy/mix/seed"]. *)

type anomaly = {
  a_kind : anomaly_kind;
  a_at : float;  (** virtual time the anomaly was noted at *)
  a_detail : string;
  a_window : Obs_trace.record list;  (** bounded hot window, oldest first *)
  a_elided : int;  (** in-window records cut by the per-anomaly cap *)
}

type run_flight = {
  f_key : run_key;
  f_decided : bool;
  f_gating : bool;  (** effectively reliable: liveness violations gate *)
  f_decide_clock : float option;
  f_steps : int;
  f_safety : int;
  f_liveness : int;
  f_retransmits : int;
  f_buffer_peak : int;
  f_counters : (Obs_registry.labels * string * int) list;
      (** this run's counter deltas (registry diff), for layer rollups *)
  f_trace : Obs_trace.stats;
      (** per-run tracer deltas, incl. ring overwrites ([records_dropped]) *)
  f_anomalies : anomaly list;
}

type recorder

val create : ?policy:window_policy -> obs:Obs.t -> unit -> recorder
(** Installs a fresh bounded tracer on [obs] (so spans/points recorded
    by the stack land in the recorder's ring). *)

val run_begin : recorder -> now:(unit -> float) -> unit
(** Start a run: bind the tracer clock to the new simulator's virtual
    clock, clear the ring, snapshot the registry for per-run deltas. *)

val note_anomaly :
  recorder -> ?at:float -> detail:string -> anomaly_kind -> unit
(** Note an anomaly at virtual time [at] (default: the current clock);
    its hot window is cut at {!run_end}.  Retransmit storms and
    back-pressure peaks are derived automatically from the run's
    registry delta — callers typically only report {!Safety_trip} and
    {!Stall}. *)

val run_end :
  recorder ->
  key:run_key ->
  decided:bool ->
  gating:bool ->
  decide_clock:float option ->
  steps:int ->
  safety:int ->
  liveness:int ->
  buffer_peak:int ->
  unit
(** Close the run: compute the registry delta, derive storm/peak
    anomalies, cut bounded windows around every noted anomaly (capped
    per run), and mirror ring-overwrite counts and anomaly kinds into
    the registry ([trace_dropped_events] under layer ["obs"],
    [flight_anomaly] under layer ["flight"]) — after the delta, so they
    appear in campaign-level snapshots without polluting the next run's
    delta. *)

val runs : recorder -> run_flight list
(** Completed runs, oldest first. *)

(** {2 Durable tier} *)

type cell = {
  c_protocol : string;
  c_policy : string;
  c_mix : string;
  c_runs : int;
  c_decided : int;
  c_safety : int;
  c_liveness : int;
  c_decide : Obs_histogram.t;  (** decide clocks of decided runs *)
  c_steps : Obs_histogram.t;
  c_retransmits : Obs_histogram.t;
  c_peak : Obs_histogram.t;
}

type worst = {
  w_slowest : (run_key * float) option;  (** largest decide clock *)
  w_undecided : run_key option;  (** first run that never decided *)
  w_retransmits : (run_key * int) option;
  w_peak : (run_key * int) option;
}

type summary = {
  s_id : string;
  s_config : Obs_json.t;  (** opaque configuration echo from the caller *)
  s_runs : int;
  s_decided : int;
  s_safety : int;
  s_liveness : int;
  s_gating_liveness : int;
  s_cells : cell list;  (** execution order *)
  s_rollups : ((string * string) * int) list;
      (** [(layer, counter)] totals across all runs, sorted *)
  s_dropped_events : int;  (** hot-ring overwrites across all runs *)
  s_truncated_runs : int;  (** runs whose ring overwrote at least once *)
  s_worst : worst;
  s_anomaly_counts : (anomaly_kind * int) list;
  s_anomalies : (run_key * anomaly) list;
      (** capped archive, safety trips first *)
}

val summarize : id:string -> config:Obs_json.t -> run_flight list -> summary

(** {2 JSON} *)

val schema : string
(** ["sintra-flight/1"]. *)

val out_path : string -> string
(** [out_path id] is ["FLIGHT_<id>.json"]. *)

val to_json : summary -> Obs_json.t
(** Canonical content: derived from seeded virtual-time runs only (no
    wall time), so identical configurations give identical bytes. *)

val write : id:string -> summary -> string
(** Write [to_json] canonically to {!out_path}; returns the path. *)

val validate_json : Obs_json.t -> (unit, string) result
(** Shape check for the ["sintra-flight/1"] schema (CI gate). *)

val pp_summary : Format.formatter -> summary -> unit
