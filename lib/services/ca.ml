(* Distributed certification authority (paper, Section 5.1).

   A certificate is "simply a digital signature under the CA's private
   signing key on the public key and the identity claimed by the user" —
   here the service signature the client assembles from the replicas'
   shares *is* the certificate, issued under the CA's single public key
   even though no server ever holds the signing key.

   Requests (all state-changing requests go through atomic broadcast so
   every replica answers identically):
     issue  <id> <public-key> <credentials>   -> certificate body or denial
     lookup <id>                              -> certificate body or "none"
     revoke <id>                              -> confirmation or "none"

   The policy (which credentials are acceptable) is deliberately simple:
   a non-empty credential string that ends in "!ok" passes; real
   deployments substitute their vetting procedure. *)

type entry = { pubkey : string; serial : int; revoked : bool }

type state = {
  table : (string, entry) Hashtbl.t;
  mutable next_serial : int;
}

let credentials_pass (credentials : string) =
  String.length credentials >= 3
  && String.sub credentials (String.length credentials - 3) 3 = "!ok"

let certificate_body ~id ~pubkey ~serial =
  Codec.encode [ "certificate"; id; pubkey; string_of_int serial ]

let issue_request ~id ~pubkey ~credentials =
  Codec.encode [ "issue"; id; pubkey; credentials ]

let lookup_request ~id = Codec.encode [ "lookup"; id ]
let revoke_request ~id = Codec.encode [ "revoke"; id ]

let denial reason = Codec.encode [ "denied"; reason ]

let execute (st : state) (request : string) : string =
  match Codec.decode request with
  | Some [ "issue"; id; pubkey; credentials ] ->
    if not (credentials_pass credentials) then denial "bad credentials"
    else if Hashtbl.mem st.table id then denial "identity already bound"
    else begin
      let serial = st.next_serial in
      st.next_serial <- serial + 1;
      Hashtbl.replace st.table id { pubkey; serial; revoked = false };
      certificate_body ~id ~pubkey ~serial
    end
  | Some [ "lookup"; id ] ->
    (match Hashtbl.find_opt st.table id with
    | Some e when not e.revoked ->
      certificate_body ~id ~pubkey:e.pubkey ~serial:e.serial
    | Some _ -> denial "revoked"
    | None -> denial "unknown identity")
  | Some [ "revoke"; id ] ->
    (match Hashtbl.find_opt st.table id with
    | Some e when not e.revoked ->
      Hashtbl.replace st.table id { e with revoked = true };
      Codec.encode [ "revoked"; id; string_of_int e.serial ]
    | Some _ -> denial "already revoked"
    | None -> denial "unknown identity")
  | Some _ | None -> denial "malformed request"

(* Fast-path admission: lookups read the table without touching it, so
   replicas may answer them directly; issue and revoke mutate and must
   be ordered. *)
let read_only (request : string) : bool =
  match Codec.decode request with
  | Some [ "lookup"; _ ] -> true
  | Some _ | None -> false

(* Fresh per-replica state machine. *)
let make_app () : string -> string =
  let st = { table = Hashtbl.create 16; next_serial = 0 } in
  execute st

(* Client-side check: a certificate for [id] binding [pubkey] is a CA
   response of the right shape together with a valid service signature
   (the caller verifies the signature via {!Keyring.service_verify}). *)
let parse_certificate (body : string) : (string * string * int) option =
  match Codec.decode body with
  | Some [ "certificate"; id; pubkey; serial ] ->
    Option.map (fun s -> (id, pubkey, s)) (int_of_string_opt serial)
  | Some _ | None -> None
