(** Distributed certification authority (paper, Section 5.1): the
    threshold service signature the client assembles *is* the
    certificate — issued under the CA's single public key although no
    server holds the signing key.  All requests (issue / lookup /
    revoke) go through atomic broadcast so every replica answers from
    the same database version. *)

val issue_request : id:string -> pubkey:string -> credentials:string -> string
val lookup_request : id:string -> string
val revoke_request : id:string -> string

val certificate_body : id:string -> pubkey:string -> serial:int -> string

val credentials_pass : string -> bool
(** The toy vetting policy: non-empty credentials ending in ["!ok"]. *)

val read_only : string -> bool
(** Fast-path admission predicate: true for lookups (pure reads);
    issue and revoke mutate state and must be ordered. *)

val make_app : unit -> string -> string
(** Fresh per-replica CA state machine. *)

val parse_certificate : string -> (string * string * int) option
(** [(id, pubkey, serial)] when the response is a certificate body. *)
