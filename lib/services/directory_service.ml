(* Secure directory service (paper, Section 5.1): a replicated database
   whose lookup answers come back authenticated by the service signature
   — "DNS authentication" style.  Updates change global state and hence
   must be delivered by atomic broadcast, exactly like lookups, so that
   every replica answers every query from the same database version.

   Requests:
     bind   <key> <value>    -> "bound" confirmation (overwrites)
     unbind <key>            -> confirmation or "none"
     lookup <key>            -> signed value or signed "none"
     list                    -> signed sorted key list *)

type state = (string, string) Hashtbl.t

let bind_request ~key ~value = Codec.encode [ "bind"; key; value ]
let unbind_request ~key = Codec.encode [ "unbind"; key ]
let lookup_request ~key = Codec.encode [ "lookup"; key ]
let list_request () = Codec.encode [ "list" ]

let execute (st : state) (request : string) : string =
  match Codec.decode request with
  | Some [ "bind"; key; value ] ->
    Hashtbl.replace st key value;
    Codec.encode [ "bound"; key ]
  | Some [ "unbind"; key ] ->
    if Hashtbl.mem st key then begin
      Hashtbl.remove st key;
      Codec.encode [ "unbound"; key ]
    end
    else Codec.encode [ "none"; key ]
  | Some [ "lookup"; key ] ->
    (match Hashtbl.find_opt st key with
    | Some value -> Codec.encode [ "value"; key; value ]
    | None -> Codec.encode [ "none"; key ])
  | Some [ "list" ] ->
    let keys = Hashtbl.fold (fun k _ acc -> k :: acc) st [] in
    Codec.encode ("keys" :: List.sort compare keys)
  | Some _ | None -> Codec.encode [ "error"; "malformed request" ]

(* Fast-path admission: lookup and list read without mutating; bind and
   unbind must be ordered. *)
let read_only (request : string) : bool =
  match Codec.decode request with
  | Some [ "lookup"; _ ] | Some [ "list" ] -> true
  | Some _ | None -> false

let make_app () : string -> string =
  let st : state = Hashtbl.create 16 in
  execute st

let parse_value (body : string) : (string * string) option =
  match Codec.decode body with
  | Some [ "value"; key; value ] -> Some (key, value)
  | Some _ | None -> None
