(** Secure directory service (paper, Section 5.1): a replicated
    key-value database whose answers come back authenticated by the
    service signature.  Updates and lookups alike are delivered by
    atomic broadcast, so all replicas answer from the same version. *)

val bind_request : key:string -> value:string -> string
val unbind_request : key:string -> string
val lookup_request : key:string -> string
val list_request : unit -> string

val read_only : string -> bool
(** Fast-path admission predicate: true for lookup and list (pure
    reads); bind and unbind mutate state and must be ordered. *)

val make_app : unit -> string -> string
(** Fresh per-replica directory state machine. *)

val parse_value : string -> (string * string) option
(** [(key, value)] from a successful lookup response. *)
