(* Trusted third party for fair exchange (paper, Section 5: the MAFTIA
   deliverable's "trusted party for fair exchange").

   Two clients want to swap digital items so that either both obtain the
   counterpart or neither does.  Each deposits its item together with the
   digest of the item it expects in return; the replicated service
   releases an item only when both deposits are present and each item
   matches the other side's expectation.  Atomic broadcast makes the
   deposit order — and hence the exchange outcome — identical at every
   replica; the confidential engine keeps items secret until ordered, so
   a corrupted server cannot leak an item before the counterpart is
   committed.

   Requests:
     open    <xid> <left-digest-expected> <right-digest-expected>
     deposit <xid> <left|right> <item>
     collect <xid> <left|right>       -> counterpart item once complete
     status  <xid>
     abort   <xid>                    -> refuse further deposits; each
                                         side may still collect its OWN
                                         item back (refund) *)

type side = Left | Right

type exchange = {
  expect_left : string;  (* digest the LEFT party must deposit *)
  expect_right : string;
  mutable left_item : string option;
  mutable right_item : string option;
  mutable aborted : bool;
}

type state = (string, exchange) Hashtbl.t

let side_to_string = function Left -> "left" | Right -> "right"
let side_of_string = function
  | "left" -> Some Left
  | "right" -> Some Right
  | _ -> None

let open_request ~xid ~expect_left ~expect_right =
  Codec.encode [ "open"; xid; expect_left; expect_right ]

let deposit_request ~xid ~side ~item =
  Codec.encode [ "deposit"; xid; side_to_string side; item ]

let collect_request ~xid ~side =
  Codec.encode [ "collect"; xid; side_to_string side ]

let status_request ~xid = Codec.encode [ "status"; xid ]
let abort_request ~xid = Codec.encode [ "abort"; xid ]

let item_digest item = Sha256.to_hex (Sha256.digest item)

let denial reason = Codec.encode [ "denied"; reason ]

let complete (x : exchange) =
  (not x.aborted) && x.left_item <> None && x.right_item <> None

let execute (st : state) (request : string) : string =
  match Codec.decode request with
  | Some [ "open"; xid; expect_left; expect_right ] ->
    if Hashtbl.mem st xid then denial "exchange exists"
    else begin
      Hashtbl.replace st xid
        { expect_left; expect_right; left_item = None; right_item = None;
          aborted = false };
      Codec.encode [ "opened"; xid ]
    end
  | Some [ "deposit"; xid; side; item ] ->
    (match (Hashtbl.find_opt st xid, side_of_string side) with
    | None, _ -> denial "unknown exchange"
    | _, None -> denial "bad side"
    | Some x, Some _ when x.aborted -> denial "aborted"
    | Some x, Some s ->
      let expected =
        match s with Left -> x.expect_left | Right -> x.expect_right
      in
      if item_digest item <> expected then denial "item does not match description"
      else begin
        (match s with
        | Left ->
          if x.left_item <> None then () else x.left_item <- Some item
        | Right ->
          if x.right_item <> None then () else x.right_item <- Some item);
        Codec.encode
          [ "deposited"; xid; side;
            (if complete x then "complete" else "waiting") ]
      end)
  | Some [ "collect"; xid; side ] ->
    (match (Hashtbl.find_opt st xid, side_of_string side) with
    | None, _ -> denial "unknown exchange"
    | _, None -> denial "bad side"
    | Some x, Some s ->
      if complete x then begin
        (* release the counterpart item *)
        let item =
          match s with
          | Left -> Option.get x.right_item
          | Right -> Option.get x.left_item
        in
        Codec.encode [ "item"; xid; item ]
      end
      else if x.aborted then begin
        (* refund: each side may recover its own deposit *)
        let own =
          match s with Left -> x.left_item | Right -> x.right_item
        in
        match own with
        | Some item -> Codec.encode [ "refund"; xid; item ]
        | None -> denial "nothing deposited"
      end
      else denial "exchange not complete")
  | Some [ "status"; xid ] ->
    (match Hashtbl.find_opt st xid with
    | None -> denial "unknown exchange"
    | Some x ->
      Codec.encode
        [ "status"; xid;
          (if x.aborted then "aborted"
           else if complete x then "complete"
           else "waiting");
          (if x.left_item <> None then "left-deposited" else "left-missing");
          (if x.right_item <> None then "right-deposited" else "right-missing") ])
  | Some [ "abort"; xid ] ->
    (match Hashtbl.find_opt st xid with
    | None -> denial "unknown exchange"
    | Some x ->
      if complete x then denial "already complete"
      else begin
        x.aborted <- true;
        Codec.encode [ "aborted"; xid ]
      end)
  | Some _ | None -> denial "malformed request"

(* Fast-path admission: status reads the exchange without touching it;
   everything else (open, deposit, collect, abort) mutates. *)
let read_only (request : string) : bool =
  match Codec.decode request with
  | Some [ "status"; _ ] -> true
  | Some _ | None -> false

let make_app () : string -> string =
  let st : state = Hashtbl.create 8 in
  execute st

let parse_item (body : string) : (string * string) option =
  match Codec.decode body with
  | Some [ "item"; xid; item ] -> Some (xid, item)
  | Some _ | None -> None

let parse_refund (body : string) : (string * string) option =
  match Codec.decode body with
  | Some [ "refund"; xid; item ] -> Some (xid, item)
  | Some _ | None -> None
