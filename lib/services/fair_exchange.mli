(** Trusted third party for fair exchange (paper Section 5 / MAFTIA
    deliverable): two clients swap digital items; the replicated service
    releases an item only when both deposits are present and match the
    agreed descriptions (digests), so either both sides obtain the
    counterpart or neither does.  Aborting an incomplete exchange lets
    each side recover its own deposit.  Deploy over secure causal
    broadcast so items stay secret until ordered. *)

type side = Left | Right

val open_request : xid:string -> expect_left:string -> expect_right:string -> string
val deposit_request : xid:string -> side:side -> item:string -> string
val collect_request : xid:string -> side:side -> string
val status_request : xid:string -> string
val abort_request : xid:string -> string

val item_digest : string -> string
(** The description format: hex digest of the item. *)

val read_only : string -> bool
(** Fast-path admission predicate: true for status (a pure read). *)

val make_app : unit -> string -> string

val parse_item : string -> (string * string) option
val parse_refund : string -> (string * string) option
