(* Digital notary / time-stamping service (paper, Section 5.2): receives
   documents, assigns them consecutive sequence numbers (a logical
   clock), and certifies the assignment with the service signature — a
   secure document registry for, e.g., patent filings or domain-name
   assignment.

   The notary must be deployed over *secure causal* atomic broadcast:
   requests stay encrypted until their position in the order is fixed,
   so a corrupted server cannot read a pending filing and front-run it
   with a related one (and CCA security of TDH2 prevents submitting a
   mauled, related ciphertext).  The service logic itself is oblivious
   to the transport; the deployment picks the broadcast flavour.

   Requests:
     register <document>   -> "registered" seq digest (first-come wins)
     query <digest>        -> the registration record, or "unregistered" *)

type record = { seq : int; digest : string }

type state = {
  by_digest : (string, record) Hashtbl.t;
  mutable next_seq : int;
}

let register_request ~document = Codec.encode [ "register"; document ]
let query_request ~digest = Codec.encode [ "query"; digest ]

let registration_body ~seq ~digest =
  Codec.encode [ "registered"; string_of_int seq; digest ]

let execute (st : state) (request : string) : string =
  match Codec.decode request with
  | Some [ "register"; document ] ->
    let digest = Sha256.digest document in
    (match Hashtbl.find_opt st.by_digest digest with
    | Some r ->
      (* Already registered: certify the original sequence number, so
         the later filer learns it lost the race. *)
      registration_body ~seq:r.seq ~digest
    | None ->
      let seq = st.next_seq in
      st.next_seq <- seq + 1;
      Hashtbl.replace st.by_digest digest { seq; digest };
      registration_body ~seq ~digest)
  | Some [ "query"; digest ] ->
    (match Hashtbl.find_opt st.by_digest digest with
    | Some r -> registration_body ~seq:r.seq ~digest
    | None -> Codec.encode [ "unregistered"; digest ])
  | Some _ | None -> Codec.encode [ "error"; "malformed request" ]

(* Fast-path admission: queries read the registry without touching it.
   Registrations must be ordered — and confidentially so (a direct
   plaintext registration would reopen the front-running window the
   secure causal broadcast closes). *)
let read_only (request : string) : bool =
  match Codec.decode request with
  | Some [ "query"; _ ] -> true
  | Some _ | None -> false

let make_app () : string -> string =
  let st = { by_digest = Hashtbl.create 16; next_seq = 0 } in
  execute st

let parse_registration (body : string) : (int * string) option =
  match Codec.decode body with
  | Some [ "registered"; seq; digest ] ->
    Option.map (fun s -> (s, digest)) (int_of_string_opt seq)
  | Some _ | None -> None
