(** Digital notary / time-stamping service (paper, Section 5.2): assigns
    consecutive sequence numbers to documents and certifies the
    assignment with the service signature.  Deploy it over secure causal
    atomic broadcast so filings stay confidential until their position
    in the order is fixed (front-running protection). *)

val register_request : document:string -> string
val query_request : digest:string -> string
val registration_body : seq:int -> digest:string -> string

val read_only : string -> bool
(** Fast-path admission predicate: true for queries (pure reads);
    registrations mutate state, must be ordered, and only queries are
    safe to expose in plaintext anyway. *)

val make_app : unit -> string -> string
(** Fresh per-replica notary state machine. *)

val parse_registration : string -> (int * string) option
(** [(sequence_number, document_digest)] from a registration response. *)
